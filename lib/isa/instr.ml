type reg = int
type loc = int
type value = int

type barrier =
  | Dmb_ish
  | Dmb_ishld
  | Dmb_ishst
  | Isb
  | Sync
  | Lwsync
  | Isync
  | Eieio
  | Fence_acq
  | Fence_rel
  | Fence_acq_rel
  | Fence_sc

let barrier_mnemonic = function
  | Dmb_ish -> "dmb ish"
  | Dmb_ishld -> "dmb ishld"
  | Dmb_ishst -> "dmb ishst"
  | Isb -> "isb"
  | Sync -> "sync"
  | Lwsync -> "lwsync"
  | Isync -> "isync"
  | Eieio -> "eieio"
  | Fence_acq -> "fence.acq"
  | Fence_rel -> "fence.rel"
  | Fence_acq_rel -> "fence.acqrel"
  | Fence_sc -> "fence.sc"

let is_language_barrier = function
  | Fence_acq | Fence_rel | Fence_acq_rel | Fence_sc -> true
  | Dmb_ish | Dmb_ishld | Dmb_ishst | Isb | Sync | Lwsync | Isync | Eieio -> false

let barrier_arch = function
  | Dmb_ish | Dmb_ishld | Dmb_ishst | Isb -> Arch.Armv8
  | Sync | Lwsync | Isync | Eieio -> Arch.Power7
  | (Fence_acq | Fence_rel | Fence_acq_rel | Fence_sc) as b ->
      invalid_arg ("Instr.barrier_arch: language-level fence " ^ barrier_mnemonic b)

type order = Plain | Acquire | Release | Acq_rel | Sc

type operand = Imm of value | Reg of reg

type binop = Add | Sub | Xor | And

type t =
  | Load of { dst : reg; addr : operand; order : order }
  | Store of { src : operand; addr : operand; order : order }
  | Load_exclusive of { dst : reg; addr : operand; order : order }
  | Store_exclusive of { status : reg; src : operand; addr : operand; order : order }
  | Barrier of barrier
  | Mov of { dst : reg; src : operand }
  | Op of { op : binop; dst : reg; a : operand; b : operand }
  | Cbnz of { src : reg; offset : int }
  | Cbz of { src : reg; offset : int }
  | Nop

let eval_binop op a b =
  match op with Add -> a + b | Sub -> a - b | Xor -> a lxor b | And -> a land b

let operand_regs = function Imm _ -> [] | Reg r -> [ r ]

let input_regs = function
  | Load { addr; _ } | Load_exclusive { addr; _ } -> operand_regs addr
  | Store { src; addr; _ } | Store_exclusive { src; addr; _ } ->
      operand_regs src @ operand_regs addr
  | Barrier _ | Nop -> []
  | Mov { src; _ } -> operand_regs src
  | Op { a; b; _ } -> operand_regs a @ operand_regs b
  | Cbnz { src; _ } | Cbz { src; _ } -> [ src ]

let output_reg = function
  | Load { dst; _ } | Load_exclusive { dst; _ } | Mov { dst; _ } | Op { dst; _ } ->
      Some dst
  | Store_exclusive { status; _ } -> Some status
  | Store _ | Barrier _ | Cbnz _ | Cbz _ | Nop -> None

let is_memory_access = function
  | Load _ | Store _ | Load_exclusive _ | Store_exclusive _ -> true
  | _ -> false

let is_branch = function Cbnz _ | Cbz _ -> true | _ -> false
