let reg_name arch r =
  match arch with
  | Arch.Armv8 -> "x" ^ string_of_int r
  | Arch.Power7 -> "r" ^ string_of_int r

let operand arch = function
  | Instr.Imm v -> "#" ^ string_of_int v
  | Instr.Reg r -> reg_name arch r

let address arch names = function
  | Instr.Imm l -> "&" ^ names l
  | Instr.Reg r -> ( match arch with Arch.Armv8 -> "[" ^ reg_name arch r ^ "]" | Arch.Power7 -> "0(" ^ reg_name arch r ^ ")")

let instr_named arch names i =
  let reg = reg_name arch in
  match (arch, i) with
  | Arch.Armv8, Instr.Load { dst; addr; order } ->
      let mnemonic =
        match order with
        | Instr.Plain | Instr.Release -> "ldr"
        | Instr.Acquire | Instr.Acq_rel | Instr.Sc -> "ldar"
      in
      Printf.sprintf "%s %s, %s" mnemonic (reg dst) (address arch names addr)
  | Arch.Armv8, Instr.Store { src; addr; order } ->
      let mnemonic =
        match order with
        | Instr.Plain | Instr.Acquire -> "str"
        | Instr.Release | Instr.Acq_rel | Instr.Sc -> "stlr"
      in
      Printf.sprintf "%s %s, %s" mnemonic (operand arch src) (address arch names addr)
  | Arch.Power7, Instr.Load { dst; addr; order } ->
      let suffix =
        match order with
        | Instr.Acquire | Instr.Acq_rel | Instr.Sc -> " ; cmp; bc; isync"
        | _ -> ""
      in
      Printf.sprintf "ld %s, %s%s" (reg dst) (address arch names addr) suffix
  | Arch.Power7, Instr.Store { src; addr; order } ->
      let prefix =
        match order with
        | Instr.Release | Instr.Acq_rel | Instr.Sc -> "lwsync ; "
        | _ -> ""
      in
      Printf.sprintf "%sstd %s, %s" prefix (operand arch src) (address arch names addr)
  | Arch.Armv8, Instr.Load_exclusive { dst; addr; order } ->
      let mnemonic =
        match order with
        | Instr.Acquire | Instr.Acq_rel | Instr.Sc -> "ldaxr"
        | _ -> "ldxr"
      in
      Printf.sprintf "%s %s, %s" mnemonic (reg dst) (address arch names addr)
  | Arch.Armv8, Instr.Store_exclusive { status; src; addr; order } ->
      let mnemonic =
        match order with
        | Instr.Release | Instr.Acq_rel | Instr.Sc -> "stlxr"
        | _ -> "stxr"
      in
      Printf.sprintf "%s %s, %s, %s" mnemonic (reg status) (operand arch src)
        (address arch names addr)
  | Arch.Power7, Instr.Load_exclusive { dst; addr; _ } ->
      Printf.sprintf "larx %s, %s" (reg dst) (address arch names addr)
  | Arch.Power7, Instr.Store_exclusive { status; src; addr; _ } ->
      Printf.sprintf "stcx. %s, %s ; mfcr %s" (operand arch src)
        (address arch names addr) (reg status)
  | _, Instr.Barrier b -> Instr.barrier_mnemonic b
  | _, Instr.Mov { dst; src } -> (
      match arch with
      | Arch.Armv8 -> Printf.sprintf "mov %s, %s" (reg dst) (operand arch src)
      | Arch.Power7 -> Printf.sprintf "li %s, %s" (reg dst) (operand arch src))
  | _, Instr.Op { op; dst; a; b } ->
      let mnemonic =
        match op with Instr.Add -> "add" | Instr.Sub -> "sub" | Instr.Xor -> "eor" | Instr.And -> "and"
      in
      let mnemonic =
        match (arch, mnemonic) with Arch.Power7, "eor" -> "xor" | _, m -> m
      in
      Printf.sprintf "%s %s, %s, %s" mnemonic (reg dst) (operand arch a)
        (operand arch b)
  | _, Instr.Cbnz { src; offset } -> Printf.sprintf "cbnz %s, %+d" (reg src) offset
  | _, Instr.Cbz { src; offset } -> Printf.sprintf "cbz %s, %+d" (reg src) offset
  | _, Instr.Nop -> "nop"

let default_name l = "m" ^ string_of_int l

let instr arch i = instr_named arch default_name i

let thread arch names t = Array.to_list (Array.map (instr_named arch names) t)

let program arch (p : Program.t) =
  let names l = Program.location_name p l in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer p.Program.name;
  Buffer.add_string buffer "\n{ ";
  Buffer.add_string buffer
    (String.concat "; "
       (List.map
          (fun l -> Printf.sprintf "%s=%d" (names l) (Program.initial_value p l))
          (Program.locations p)));
  Buffer.add_string buffer " }\n";
  let columns = Array.map (fun t -> thread arch names t) p.Program.threads in
  let widths =
    Array.map
      (fun lines -> List.fold_left (fun acc s -> max acc (String.length s)) 10 lines)
      columns
  in
  let height = Array.fold_left (fun acc lines -> max acc (List.length lines)) 0 columns in
  for row = 0 to height - 1 do
    Array.iteri
      (fun col lines ->
        let cell = match List.nth_opt lines row with Some s -> s | None -> "" in
        Buffer.add_string buffer cell;
        Buffer.add_string buffer (String.make (widths.(col) - String.length cell + 3) ' ');
        if col = Array.length columns - 1 then Buffer.add_char buffer '\n')
      columns
  done;
  Buffer.contents buffer
