(** The abstract instruction set executed by the operational litmus
    machine and checked by the axiomatic models.

    This is a deliberately small common core of ARMv8 and POWER:
    loads and stores (plain, acquire, release), the barrier
    instructions discussed in the paper, register moves and ALU
    operations (used to build address / data dependencies), and
    conditional branches (used to build control dependencies and spin
    loops). *)

type reg = int
(** Register index.  Rendered as [xN] on ARM and [rN] on POWER. *)

type loc = int
(** Shared-memory location index.  Litmus tests give them names. *)

type value = int

type barrier =
  | Dmb_ish  (** ARMv8 full barrier [dmb ish]. *)
  | Dmb_ishld  (** ARMv8 load barrier [dmb ishld]: orders R->R, R->W. *)
  | Dmb_ishst  (** ARMv8 store barrier [dmb ishst]: orders W->W. *)
  | Isb  (** ARMv8 instruction barrier (pipeline flush). *)
  | Sync  (** POWER heavyweight sync ([hwsync]). *)
  | Lwsync  (** POWER lightweight sync: all but W->R. *)
  | Isync  (** POWER instruction sync. *)
  | Eieio  (** POWER store ordering for cacheable memory (W->W). *)
  | Fence_acq  (** C11 [atomic_thread_fence(memory_order_acquire)]. *)
  | Fence_rel  (** C11 [atomic_thread_fence(memory_order_release)]. *)
  | Fence_acq_rel  (** C11 [atomic_thread_fence(memory_order_acq_rel)]. *)
  | Fence_sc  (** C11 [atomic_thread_fence(memory_order_seq_cst)]. *)

val barrier_mnemonic : barrier -> string

val is_language_barrier : barrier -> bool
(** True for the C11 fences, which belong to the language tier and
    must be compiled away before reaching a hardware model. *)

val barrier_arch : barrier -> Arch.t
(** The architecture a hardware barrier instruction belongs to.
    Raises [Invalid_argument] on a language-level (C11) fence. *)

type order =
  | Plain
  | Acquire  (** ARMv8 [ldar]; C11 [memory_order_acquire] at the language tier. *)
  | Release  (** ARMv8 [stlr]; C11 [memory_order_release]. *)
  | Acq_rel  (** C11 [memory_order_acq_rel] (language tier; RMWs). *)
  | Sc  (** C11 [memory_order_seq_cst] (language tier). *)

type operand = Imm of value | Reg of reg

type binop = Add | Sub | Xor | And

type t =
  | Load of { dst : reg; addr : operand; order : order }
      (** [addr] is a location index (or register holding one). *)
  | Store of { src : operand; addr : operand; order : order }
  | Load_exclusive of { dst : reg; addr : operand; order : order }
      (** ARMv8 [ldxr]/[ldaxr], POWER [larx]: opens an exclusive
          monitor on the location. *)
  | Store_exclusive of { status : reg; src : operand; addr : operand; order : order }
      (** ARMv8 [stxr]/[stlxr], POWER [stcx.]: succeeds (writing 0 to
          [status]) only if the monitor is still held; writes 1 and
          stores nothing on failure. *)
  | Barrier of barrier
  | Mov of { dst : reg; src : operand }
  | Op of { op : binop; dst : reg; a : operand; b : operand }
  | Cbnz of { src : reg; offset : int }
      (** Relative branch (in instructions) if [src] is non-zero.
          Positive offsets jump forward. *)
  | Cbz of { src : reg; offset : int }
  | Nop

val eval_binop : binop -> value -> value -> value

val input_regs : t -> reg list
(** Registers read by the instruction (including address
    registers). *)

val output_reg : t -> reg option
(** Register written by the instruction, if any. *)

val is_memory_access : t -> bool

val is_branch : t -> bool
