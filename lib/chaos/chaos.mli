(** Seeded fault-injection harness for the exploration daemon.

    A chaos run drives a {e live} [wmm_bench serve] process (spawned
    as a child) through a deterministic, seed-derived schedule of
    faults — [kill -9] mid-battery, cache entries corrupted on disk,
    journal lines torn or whole journals deleted, clients yanked
    mid-stream, deadline-doomed requests — while a resilient client
    keeps replaying a fixed litmus battery.  At the end it asserts
    two things:

    - {b verdicts}: every battery request's response items are
      line-for-line identical to what a pristine in-process run of
      the same requests computes ({!Wmm_served.Ops.compute} on a
      sequential engine — the same code path a one-shot CLI run
      takes);
    - {b accounting}: every injected fault is visible in a telemetry
      counter or an on-disk artefact (quarantined [.corrupt] files,
      [verify_failures], [deadline_exceeded], [executor_recycles],
      [client_retries]), i.e. nothing was silently swallowed.

    The schedule is a pure function of [seed], so a failing run is
    replayed exactly by re-running with the same seed against the
    same binary.  Wall-clock interleaving (which executor got which
    request, how many retries a kill cost) is {e not} deterministic —
    only the verdicts and the fault schedule are, which is what the
    report separates. *)

type config = {
  seed : int;  (** Root of the fault schedule; same seed, same faults. *)
  bin : string;  (** Path to the [wmm_bench] binary to spawn. *)
  socket_path : string;
  cache_dir : string;
      (** Scratch directory, {b wiped at the start of the run}. *)
  battery_limit : int;
      (** Cap on battery size; [0] = the whole litmus library. *)
  kills : int;  (** [kill -9] + restart cycles. *)
  corruptions : int;  (** Cache entries garbled on disk (distinct keys). *)
  disconnects : int;  (** Clients dropped mid-stream. *)
  deadline_probes : int;
      (** Doomed requests that must die by [deadline_ms]. *)
  slow_iterations : int;
      (** Iteration count of the slow random-mode requests kept in
          flight across kills (bigger = safer overlap, slower run). *)
  jobs : int;  (** Worker domains of the spawned daemon. *)
  executors : int;  (** Executor threads of the spawned daemon. *)
  verbose : bool;  (** Pass the daemon's stderr through. *)
}

val default_config : bin:string -> dir:string -> config
(** Seed 7; socket and cache under [dir]; whole library; 3 kills, 2
    corruptions, 2 disconnects, 1 deadline probe; 100k-iteration slow
    requests; 2 worker domains, 2 executors; quiet. *)

type report = {
  r_battery : int;  (** Requests in the battery. *)
  r_verdicts : string list;
      (** One deterministic [verdict|<id>|<seq>|<item>] line per
          response item of the final battery wave, battery order.
          Byte-identical across runs with the same seed and binary —
          this is what CI diffs. *)
  r_mismatches : (string * string) list;
      (** Battery ids whose final-wave items differ from the pristine
          in-process computation, with a short detail. *)
  r_kills : int;
  r_corruptions : int;
  r_disconnects : int;
  r_torn_appends : int;
  r_lost_journals : int;
  r_deadline_probes : int;
  r_deadline_hits : int;
      (** Probes actually answered with [deadline_exceeded]. *)
  r_client_retries : int;  (** Resends by the resilient client. *)
  r_client_reconnects : int;
  r_counters : (string * int) list;
      (** Server telemetry counters summed across daemon
          incarnations (each [kill -9] resets the live counters, so
          the harness snapshots after every wave and sums the last
          snapshot of each incarnation). *)
  r_corrupt_files : int;
      (** Quarantined [.corrupt] files on disk at the end. *)
  r_journal_fsck : Wmm_engine.Journal.fsck_report;
  r_cache_fsck : Wmm_engine.Cache.fsck_report;
  r_failures : string list;
      (** Accounting violations; empty on a clean run. *)
  r_log : string list;  (** Chronological fault/wave log. *)
}

val ok : report -> bool
(** No verdict mismatches and no accounting failures. *)

val run : config -> report
(** Execute one chaos run.  Spawns and finally terminates the daemon;
    wipes and repopulates [cache_dir].  Raises [Failure] only when
    the daemon cannot be started at all — every in-run fault is part
    of the game and lands in the report instead. *)

val render : report -> string
(** Human-readable multi-line report: the deterministic verdict lines
    first (the CI-diffable section), then the fault log, counters and
    the verdict/accounting summary. *)
