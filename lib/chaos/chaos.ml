(* Seeded chaos harness for the served daemon: see chaos.mli.

   Determinism contract: everything that decides WHAT happens - the
   battery, the fault kinds and their assignment to kill windows,
   which cache entries get corrupted, the client retry jitter seeds -
   is drawn from one Rng rooted at cfg.seed, on the main thread only.
   WHEN things happen (how far a computation got before kill -9, how
   many retries a restart cost) is wall-clock and varies run to run;
   the report keeps those in counters, never in the verdict lines. *)

module Rng = Wmm_util.Rng
module Json = Wmm_served.Json
module Client = Wmm_served.Client
module Protocol = Wmm_served.Protocol
module Ops = Wmm_served.Ops
module Cache = Wmm_engine.Cache
module Journal = Wmm_engine.Journal
module Engine = Wmm_engine.Engine

type config = {
  seed : int;
  bin : string;
  socket_path : string;
  cache_dir : string;
  battery_limit : int;
  kills : int;
  corruptions : int;
  disconnects : int;
  deadline_probes : int;
  slow_iterations : int;
  jobs : int;
  executors : int;
  verbose : bool;
}

let default_config ~bin ~dir =
  {
    seed = 7;
    bin;
    socket_path = Filename.concat dir "chaos.sock";
    cache_dir = Filename.concat dir "cache";
    battery_limit = 0;
    kills = 3;
    corruptions = 2;
    disconnects = 2;
    deadline_probes = 1;
    slow_iterations = 20_000;
    jobs = 2;
    executors = 2;
    verbose = false;
  }

type report = {
  r_battery : int;
  r_verdicts : string list;
  r_mismatches : (string * string) list;
  r_kills : int;
  r_corruptions : int;
  r_disconnects : int;
  r_torn_appends : int;
  r_lost_journals : int;
  r_deadline_probes : int;
  r_deadline_hits : int;
  r_client_retries : int;
  r_client_reconnects : int;
  r_counters : (string * int) list;
  r_corrupt_files : int;
  r_journal_fsck : Journal.fsck_report;
  r_cache_fsck : Cache.fsck_report;
  r_failures : string list;
  r_log : string list;
}

let ok r = r.r_mismatches = [] && r.r_failures = []

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Parse-and-reprint so whitespace/float formatting can never cause a
   spurious verdict diff between the wire form and Ops.compute's. *)
let normalize item =
  match Json.parse item with Ok v -> Json.to_string v | Error _ -> item

let count_suffix dir suffix =
  let n = ref 0 in
  let rec go d =
    match Sys.readdir d with
    | names ->
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then go p
            else if Filename.check_suffix name suffix then incr n)
          names
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists dir then go dir;
  !n

(* ------------------------------------------------------------------ *)
(* Battery and request lines                                           *)
(* ------------------------------------------------------------------ *)

type bt = { b_id : string; b_line : string; b_req : Protocol.request }

let battery_of cfg =
  let all =
    List.map (fun t -> t.Wmm_litmus.Test.name) Wmm_litmus.Library.all
  in
  let names = if cfg.battery_limit > 0 then take cfg.battery_limit all else all in
  List.map
    (fun name ->
      let id = "t:" ^ name in
      {
        b_id = id;
        b_line =
          Json.to_string
            (Json.Obj
               [
                 ("op", Json.Str "litmus");
                 ("tests", Json.Arr [ Json.Str name ]);
                 ("mode", Json.Str "exhaustive");
                 ("id", Json.Str id);
               ]);
        b_req =
          Protocol.Litmus
            { tests = [ name ]; program = None; model = None;
              mode = Protocol.Exhaustive; certify = false };
      })
    names

(* A whole-library random-mode run: slow enough to still be computing
   when a fault lands.  Ids are prefixed "slow:" - never compared. *)
let slow_line ~id ~iterations ?deadline_ms () =
  Json.to_string
    (Json.Obj
       ([
          ("op", Json.Str "litmus");
          ("mode", Json.Str "random");
          ("iterations", Json.of_int iterations);
          ("id", Json.Str id);
        ]
       @
       match deadline_ms with
       | None -> []
       | Some d -> [ ("deadline_ms", Json.of_int d) ]))

let ping_line =
  Json.to_string (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "ready") ])

let op_line op = Json.to_string (Json.Obj [ ("op", Json.Str op) ])

let frames_for ~id lines =
  List.filter
    (fun l ->
      match Json.parse l with
      | Ok v -> Json.str_member "id" v = Some id
      | Error _ -> false)
    lines

let items_of frames =
  List.filter_map
    (fun l ->
      match Json.parse l with
      | Ok v -> (
          match Json.member "item" v with
          | Some it -> Some (Json.to_string it)
          | None -> None)
      | Error _ -> None)
    frames

let statuses_of frames =
  List.filter_map
    (fun l ->
      match Json.parse l with
      | Ok v -> Json.str_member "status" v
      | Error _ -> None)
    frames

(* ------------------------------------------------------------------ *)
(* The daemon process                                                  *)
(* ------------------------------------------------------------------ *)

type daemon = { d_cfg : config; mutable d_pid : int; mutable d_incarnation : int }

let start_daemon d =
  let cfg = d.d_cfg in
  let args =
    [|
      cfg.bin; "serve";
      "--socket"; cfg.socket_path;
      "--cache-dir"; cfg.cache_dir;
      "--run-id"; "chaos";
      "--jobs"; string_of_int cfg.jobs;
      "--executors"; string_of_int cfg.executors;
    |]
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0o644 in
  let err = if cfg.verbose then Unix.stderr else null in
  let pid = Unix.create_process cfg.bin args null null err in
  Unix.close null;
  d.d_pid <- pid

let wait_ready cfg ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let up =
      match Client.connect ~socket_path:cfg.socket_path with
      | Error _ -> false
      | Ok c ->
          Client.set_timeout c 10.;
          let r = Client.roundtrip c ping_line in
          Client.close c;
          Result.is_ok r
    in
    if up then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.1;
      go ()
    end
  in
  go ()

let kill_daemon d =
  (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] d.d_pid) with Unix.Unix_error _ -> ());
  d.d_incarnation <- d.d_incarnation + 1

let shutdown_daemon d =
  (match Client.connect ~socket_path:d.d_cfg.socket_path with
  | Ok c ->
      Client.set_timeout c 30.;
      ignore (Client.roundtrip c (op_line "shutdown"));
      Client.close c
  | Error _ -> ());
  let rec reap tries =
    match Unix.waitpid [ Unix.WNOHANG ] d.d_pid with
    | 0, _ ->
        if tries <= 0 then begin
          (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] d.d_pid) with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.sleepf 0.1;
          reap (tries - 1)
        end
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  reap 100

(* ------------------------------------------------------------------ *)
(* Counter snapshots across incarnations                               *)
(* ------------------------------------------------------------------ *)

(* kill -9 resets the daemon's in-memory telemetry, so totals are
   reconstructed as the sum over incarnations of the last snapshot
   each incarnation answered.  Bumps between a snapshot and a kill
   are lost - the accounting checks are all >=-thresholds against
   events whose counter bump happens before the next snapshot. *)
let counter_keys =
  [
    "requests"; "ok"; "request_errors"; "overloaded"; "computed";
    "cache_hits"; "journal_hits"; "deadline_exceeded"; "executor_recycles";
    "client_retries"; "verify_failures";
  ]

let snapshot cfg =
  match Client.connect ~socket_path:cfg.socket_path with
  | Error _ -> None
  | Ok c ->
      Client.set_timeout c 30.;
      let final_of = function
        | Ok lines -> (
            match List.rev lines with
            | l :: _ -> Result.to_option (Json.parse l)
            | [] -> None)
        | Error _ -> None
      in
      let stats = final_of (Client.roundtrip c (op_line "stats")) in
      let cstats = final_of (Client.roundtrip c (op_line "cache-stats")) in
      Client.close c;
      match stats with
      | None -> None
      | Some _ ->
          let get vo name =
            match vo with
            | None -> 0
            | Some v -> Option.value ~default:0 (Json.int_member name v)
          in
          Some
            (List.map
               (fun k ->
                 let v =
                   if k = "verify_failures" then get cstats k else get stats k
                 in
                 (k, v))
               counter_keys)

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let run cfg =
  if cfg.corruptions > 0 && cfg.kills < 1 then
    invalid_arg
      "Chaos.run: corruptions need at least one kill (a live daemon's \
       in-memory journal would shadow the corrupted cache entry)";
  let rng = Rng.create cfg.seed in
  let log = ref [] in
  let logf fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  rm_rf cfg.cache_dir;
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  mkdir_p cfg.cache_dir;
  let battery = battery_of cfg in
  let n = List.length battery in
  if n = 0 then invalid_arg "Chaos.run: empty battery";
  (* Pristine expectations: the same Ops.compute a one-shot CLI run
     goes through, sequential, no cache, no daemon. *)
  let expected =
    let engine = Engine.sequential () in
    List.map
      (fun b -> (b.b_id, List.map normalize (Ops.compute ~engine b.b_req)))
      battery
  in
  let d = { d_cfg = cfg; d_pid = -1; d_incarnation = 0 } in
  start_daemon d;
  if not (wait_ready cfg ~timeout_s:60.) then begin
    kill_daemon d;
    failwith "Chaos.run: daemon did not come up"
  end;
  let snapshots = Hashtbl.create 8 in
  let snap () =
    match snapshot cfg with
    | Some s ->
        logf "snapshot incarnation %d: %s" d.d_incarnation
          (String.concat " "
             (List.filter_map
                (fun (k, v) ->
                  if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
                s));
        Hashtbl.replace snapshots d.d_incarnation s
    | None -> logf "snapshot incarnation %d: daemon unreachable" d.d_incarnation
  in
  let retries = ref 0 and reconnects = ref 0 in
  let mismatches = ref [] in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let policy seed =
    { Client.default_policy with max_attempts = 10; base_delay_s = 0.25; seed }
  in
  let run_wave ~seed ?(extra = []) name reqs =
    let lines = List.map (fun b -> b.b_line) reqs @ extra in
    match
      Client.run_resilient ~socket_path:cfg.socket_path ~policy:(policy seed)
        lines
    with
    | Error e ->
        failf "wave %s: transport failure: %s" name e;
        []
    | Ok out ->
        retries := !retries + out.Client.retries;
        reconnects := !reconnects + out.Client.reconnects;
        if out.Client.gave_up_overloaded <> [] then
          failf "wave %s: gave up overloaded: %s" name
            (String.concat "," out.Client.gave_up_overloaded);
        out.Client.lines
  in
  let check_wave name reqs lines =
    List.iter
      (fun b ->
        let exp = List.assoc b.b_id expected in
        let frames = frames_for ~id:b.b_id lines in
        let got = List.map normalize (items_of frames) in
        if List.exists (fun s -> s <> "ok") (statuses_of frames) then
          mismatches := (b.b_id, name ^ ": non-ok status frame") :: !mismatches
        else if got <> exp then begin
          let first_diff =
            match
              List.find_opt
                (fun (g, e) -> g <> e)
                (try List.combine got exp with Invalid_argument _ -> [])
            with
            | Some (g, e) -> Printf.sprintf "; first diff got %s want %s" g e
            | None -> ""
          in
          mismatches :=
            ( b.b_id,
              Printf.sprintf "%s: %d items vs %d expected%s" name
                (List.length got) (List.length exp) first_diff )
            :: !mismatches
        end)
      reqs
  in

  logf "wave warm: full battery (%d requests), pristine daemon" n;
  let w0 = run_wave ~seed:(Rng.int rng 1_000_000) "warm" battery in
  check_wave "warm" battery w0;
  snap ();

  (* Fault schedule: kills and disconnects in a seed-shuffled order.
     File faults ride kill windows (applied while the daemon is down):
     every corruption is paired with a journal deletion - otherwise
     the restarted daemon would replay the journal and never read the
     corrupted cache entry - and the torn append goes to the LAST
     kill in execution order, so no later deletion erases the
     evidence before the final fsck. *)
  let events =
    shuffle rng
      (List.init cfg.kills (fun i -> `Kill i)
      @ List.init cfg.disconnects (fun i -> `Disconnect i))
  in
  let kill_order = List.filter_map (function `Kill i -> Some i | _ -> None) events in
  let last_kill = match List.rev kill_order with i :: _ -> i | [] -> -1 in
  let corr_targets =
    match List.filter (fun i -> i <> last_kill) kill_order with
    | [] -> if last_kill >= 0 then [ last_kill ] else []
    | other -> other
  in
  let corr_windows =
    List.init cfg.corruptions (fun j ->
        List.nth corr_targets (j mod List.length corr_targets))
  in
  (* The cache handle must see the entries the *daemon* wrote, and
     filenames embed the writing binary's version digest — so derive
     the version from cfg.bin, not from whatever executable the
     harness happens to be linked into (the CLI and the daemon are the
     same binary, but the test runner is not). *)
  let bin_version =
    try Digest.to_hex (Digest.file cfg.bin) with _ -> "unversioned"
  in
  let cache_handle = Cache.create ~dir:cfg.cache_dir ~version:bin_version () in
  let journal_path =
    Filename.concat (Filename.concat cfg.cache_dir "journal") "chaos.jsonl"
  in
  let corrupted = Hashtbl.create 8 in
  let corruptions_done = ref 0 and torn_done = ref 0 and lost_done = ref 0 in
  let corrupt_one () =
    let arr = Array.of_list battery in
    let start = Rng.int rng (Array.length arr) in
    let rec go k =
      if k >= Array.length arr then
        failf "corruption: no uncorrupted cache entry left to garble"
      else begin
        let b = arr.((start + k) mod Array.length arr) in
        let key = Protocol.canonical_key b.b_req in
        if Hashtbl.mem corrupted key then go (k + 1)
        else if Cache.corrupt cache_handle ~key then begin
          Hashtbl.replace corrupted key ();
          incr corruptions_done;
          logf "fault: corrupted cache entry of %s" b.b_id
        end
        else go (k + 1)
      end
    in
    go 0
  in
  let lose_journal () =
    if Sys.file_exists journal_path then begin
      (try Sys.remove journal_path with Sys_error _ -> ());
      incr lost_done;
      logf "fault: deleted journal %s" (Filename.basename journal_path)
    end
  in
  let torn_append () =
    let fd =
      Unix.openfile journal_path
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644
    in
    let s = {|{"key": "chaos-torn", "status": "ok", "digest": "dead|} in
    ignore (Unix.write_substring fd s 0 (String.length s));
    Unix.close fd;
    incr torn_done;
    logf "fault: tore a journal append (partial line, no newline)"
  in
  let chunk_size = max 2 (n / max 1 cfg.kills) in
  let chunk_of i =
    List.init (min chunk_size n) (fun j ->
        List.nth battery (((i * chunk_size) + j) mod n))
  in
  let do_kill i =
    let chunk = chunk_of i in
    let slow =
      slow_line
        ~id:(Printf.sprintf "slow:kill%d" i)
        ~iterations:(cfg.slow_iterations + i) ()
    in
    logf "wave kill%d: %d battery requests + 1 slow request, then kill -9" i
      (List.length chunk);
    let seed = Rng.int rng 1_000_000 in
    let kill_after = 0.2 +. Rng.float rng 0.2 in
    let result = ref [] in
    let th =
      Thread.create
        (fun () ->
          result :=
            run_wave ~seed ~extra:[ slow ] (Printf.sprintf "kill%d" i) chunk)
        ()
    in
    Unix.sleepf kill_after;
    (* Snapshot the condemned incarnation first: the chunk's cache
       hits (including any verify-failure on a previously corrupted
       entry) happened microseconds after admission, and their
       counter bumps die with the process otherwise. *)
    snap ();
    kill_daemon d;
    logf "fault: kill -9 -> incarnation %d" d.d_incarnation;
    List.iter
      (fun w ->
        if w = i then begin
          corrupt_one ();
          lose_journal ()
        end)
      corr_windows;
    if i = last_kill then torn_append ();
    start_daemon d;
    if not (wait_ready cfg ~timeout_s:60.) then
      failf "kill%d: daemon did not come back after restart" i;
    Thread.join th;
    check_wave (Printf.sprintf "kill%d" i) chunk !result;
    snap ()
  in
  let do_disconnect i =
    match Client.connect ~socket_path:cfg.socket_path with
    | Error e -> failf "disconnect%d: %s" i e
    | Ok c ->
        Client.set_timeout c 60.;
        let id = Printf.sprintf "disc:%d" i in
        (* Whole-library request: streams far more frames than the
           server's per-client queue bound, so yanking the socket
           after a few reads hits the writer mid-stream. *)
        Client.send_line c
          (Json.to_string
             (Json.Obj
                [
                  ("op", Json.Str "litmus");
                  ("mode", Json.Str "exhaustive");
                  ("id", Json.Str id);
                ]));
        let reads = 1 + Rng.int rng 3 in
        for _ = 1 to reads do
          ignore (Client.recv_line c)
        done;
        Client.close c;
        logf "fault: yanked client %s after %d frames" id reads
  in
  List.iter (function `Kill i -> do_kill i | `Disconnect i -> do_disconnect i) events;

  (* Deadline probes: a doomed request must die by its deadline while
     bystander clients keep getting answers. *)
  let do_probe i =
    match Client.connect ~socket_path:cfg.socket_path with
    | Error e ->
        failf "probe%d: connect: %s" i e;
        false
    | Ok doomed -> (
        Client.set_timeout doomed 120.;
        let id = Printf.sprintf "slow:probe%d" i in
        Client.send_line doomed
          (slow_line ~id
             ~iterations:((cfg.slow_iterations * 50) + i)
             ~deadline_ms:250 ());
        let bystander_ok =
          match Client.connect ~socket_path:cfg.socket_path with
          | Error _ -> false
          | Ok c ->
              Client.set_timeout c 30.;
              let r1 = Client.roundtrip c ping_line in
              let r2 = Client.roundtrip c (List.hd battery).b_line in
              Client.close c;
              Result.is_ok r1 && Result.is_ok r2
        in
        if not bystander_ok then
          failf "probe%d: bystander requests failed while the probe burned" i;
        let rec await () =
          match Client.recv_line doomed with
          | None ->
              failf "probe%d: connection died before the deadline frame" i;
              false
          | Some l -> (
              match Json.parse l with
              | Ok v when Json.str_member "id" v = Some id -> (
                  match Json.str_member "status" v with
                  | Some "deadline_exceeded" ->
                      logf "probe%d: deadline_exceeded after %d ms (limit 250)"
                        i
                        (Option.value ~default:(-1)
                           (Json.int_member "elapsed_ms" v));
                      true
                  | Some s ->
                      failf "probe%d: answered %S, wanted deadline_exceeded" i s;
                      false
                  | None ->
                      failf "probe%d: frame without status" i;
                      false)
              | _ -> await ())
        in
        let hit = await () in
        Client.close doomed;
        hit)
  in
  let deadline_hits =
    List.length
      (List.filter (fun h -> h) (List.init cfg.deadline_probes do_probe))
  in
  if cfg.deadline_probes > 0 then snap ();

  logf "wave final: full battery (%d requests) after every fault" n;
  let wf = run_wave ~seed:(Rng.int rng 1_000_000) "final" battery in
  check_wave "final" battery wf;
  let verdicts =
    List.concat_map
      (fun b ->
        let items = List.map normalize (items_of (frames_for ~id:b.b_id wf)) in
        List.mapi
          (fun i it -> Printf.sprintf "verdict|%s|%d|%s" b.b_id i it)
          items)
      battery
  in
  snap ();
  shutdown_daemon d;

  let corrupt_files = count_suffix cfg.cache_dir ".corrupt" in
  let cache_fsck = Cache.fsck cache_handle in
  let journal_fsck =
    Journal.fsck ~dir:(Filename.concat cfg.cache_dir "journal") ~run_id:"chaos"
      ()
  in
  let totals =
    Hashtbl.fold
      (fun _ s acc ->
        List.map
          (fun (k, v) ->
            (k, v + Option.value ~default:0 (List.assoc_opt k s)))
          acc)
      snapshots
      (List.map (fun k -> (k, 0)) counter_keys)
  in
  let total k = Option.value ~default:0 (List.assoc_opt k totals) in

  (* Accounting: every injected fault must be visible somewhere. *)
  if !corruptions_done < cfg.corruptions then
    failf "only %d of %d corruptions could be applied" !corruptions_done
      cfg.corruptions;
  if
    !corruptions_done > 0
    && total "verify_failures" + cache_fsck.Cache.f_quarantined
       < !corruptions_done
  then
    failf
      "verify_failures=%d + fsck_quarantined=%d < corruptions=%d: a corrupted \
       entry was silently served"
      (total "verify_failures") cache_fsck.Cache.f_quarantined
      !corruptions_done;
  if !corruptions_done > 0 && corrupt_files < !corruptions_done then
    failf "%d .corrupt files on disk < %d corruptions: quarantine lost a body"
      corrupt_files !corruptions_done;
  if deadline_hits < cfg.deadline_probes then
    failf "only %d of %d deadline probes died by deadline" deadline_hits
      cfg.deadline_probes;
  if cfg.deadline_probes > 0 && total "deadline_exceeded" < deadline_hits then
    failf "counter deadline_exceeded=%d < observed deadline frames=%d"
      (total "deadline_exceeded") deadline_hits;
  (* executor_recycles is NOT required to be nonzero: every compute
     path polls its cancellation token, so cooperative death beats
     the watchdog's quarantine in practice.  It is reported so a
     regression in polling shows up as recycles instead. *)
  if cfg.kills > 0 && !reconnects < 1 then
    failf "client never reconnected despite %d kill -9s" cfg.kills;
  if cfg.kills > 0 && total "client_retries" < 1 then
    failf
      "server saw no retry-flagged request despite %d kill -9s (replays are \
       invisible)"
      cfg.kills;
  if
    !torn_done > 0 && journal_fsck.Journal.j_lines > 0
    && journal_fsck.Journal.j_torn < 1
  then failf "journal fsck saw no torn line despite a torn append";

  {
    r_battery = n;
    r_verdicts = verdicts;
    r_mismatches = List.rev !mismatches;
    r_kills = cfg.kills;
    r_corruptions = !corruptions_done;
    r_disconnects = cfg.disconnects;
    r_torn_appends = !torn_done;
    r_lost_journals = !lost_done;
    r_deadline_probes = cfg.deadline_probes;
    r_deadline_hits = deadline_hits;
    r_client_retries = !retries;
    r_client_reconnects = !reconnects;
    r_counters = totals;
    r_corrupt_files = corrupt_files;
    r_journal_fsck = journal_fsck;
    r_cache_fsck = cache_fsck;
    r_failures = List.rev !failures;
    r_log = List.rev !log;
  }

let render r =
  let b = Buffer.create 4096 in
  List.iter
    (fun v ->
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    r.r_verdicts;
  List.iter (fun l -> Printf.bprintf b "chaos-log: %s\n" l) r.r_log;
  Printf.bprintf b
    "chaos: battery=%d kills=%d corruptions=%d disconnects=%d torn=%d \
     lost_journals=%d probes=%d hits=%d\n"
    r.r_battery r.r_kills r.r_corruptions r.r_disconnects r.r_torn_appends
    r.r_lost_journals r.r_deadline_probes r.r_deadline_hits;
  Printf.bprintf b "chaos: client retries=%d reconnects=%d\n" r.r_client_retries
    r.r_client_reconnects;
  List.iter
    (fun (k, v) -> Printf.bprintf b "chaos: counter %s=%d\n" k v)
    r.r_counters;
  Printf.bprintf b
    "chaos: corrupt_files=%d cache_fsck={scanned=%d ok=%d quarantined=%d \
     unverified=%d} journal_fsck={lines=%d ok=%d torn=%d duplicates=%d \
     orphans=%d kept=%d compacted=%b}\n"
    r.r_corrupt_files r.r_cache_fsck.Cache.f_scanned r.r_cache_fsck.Cache.f_ok
    r.r_cache_fsck.Cache.f_quarantined r.r_cache_fsck.Cache.f_unverified
    r.r_journal_fsck.Journal.j_lines r.r_journal_fsck.Journal.j_ok
    r.r_journal_fsck.Journal.j_torn r.r_journal_fsck.Journal.j_duplicates
    r.r_journal_fsck.Journal.j_orphans r.r_journal_fsck.Journal.j_kept
    r.r_journal_fsck.Journal.j_compacted;
  List.iter
    (fun (id, detail) -> Printf.bprintf b "chaos: MISMATCH %s: %s\n" id detail)
    r.r_mismatches;
  List.iter (fun f -> Printf.bprintf b "chaos: FAIL %s\n" f) r.r_failures;
  Printf.bprintf b "chaos: %s\n" (if ok r then "OK" else "FAILED");
  Buffer.contents b
