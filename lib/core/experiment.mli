open Wmm_util
open Wmm_isa
open Wmm_workload

(** Running benchmarks across fencing strategies and extracting the
    paper's measurements: relative performance with compounded
    errors, variable-cost sensitivity sweeps with fitted [k], and
    fixed-cost ranking matrices. *)

type measure = Throughput | Response_mean | Response_max

val measure_of_profile : Profile.t -> measure
(** [Response_mean] for response-mode profiles, else [Throughput]. *)

val performance_values :
  ?samples:int ->
  ?warmups:int ->
  ?seed:int ->
  ?measure:measure ->
  Profile.t ->
  Generate.platform ->
  float array
(** The raw per-sample performance values ([samples] of them, default
    6, after [warmups] discarded runs, default 2).  The seam where
    fault-injected outlier perturbation and robust filtering apply,
    before summarisation. *)

val performance_summary :
  ?samples:int ->
  ?warmups:int ->
  ?seed:int ->
  ?measure:measure ->
  Profile.t ->
  Generate.platform ->
  Stats.summary
(** [Stats.summarise] of {!performance_values}: geometric-mean
    performance matching the paper's methodology.  Higher is better
    for every measure (response times are inverted). *)

val relative_performance :
  ?samples:int ->
  ?seed:int ->
  ?measure:measure ->
  Profile.t ->
  base:Generate.platform ->
  test:Generate.platform ->
  Stats.summary
(** Normalised performance of [test] against [base] with the paper's
    pessimistic error compounding. *)

(** {1 Variable-cost sensitivity sweeps} *)

type sweep_point = {
  iterations : int;  (** Cost-function loop count. *)
  cost_ns : float;  (** Its calibrated standalone execution time. *)
  relative : Stats.summary;  (** Performance relative to the nop base case. *)
}

type sweep = {
  benchmark : string;
  arch : Arch.t;
  code_path : string;
  points : sweep_point list;
  dropped : int;
      (** Sweep points whose sample task failed permanently; they are
          excluded from [points] and from the fit, and annotated in
          the figures. *)
  fit : Sensitivity.fit;
}

val sweep :
  ?samples:int ->
  ?seed:int ->
  ?light:bool ->
  ?iteration_counts:int list ->
  code_path:string ->
  base:Generate.platform ->
  inject:(Wmm_costfn.Cost_function.t -> Generate.platform) ->
  Profile.t ->
  sweep
(** Run the benchmark across increasing cost-function sizes injected
    by [inject], normalise each against the nop-padded [base], and
    fit the sensitivity model.  Default iteration counts are powers
    of two from 1 to 512 (covering the paper's 2^0..2^8 ns x-axis). *)

(** {1 Engine-backed execution}

    Every measurement above reduces to {!performance_summary} calls
    on independent (profile, platform, samples, seed) tuples.  The
    deferred API reifies each such call as a [wmm_engine] task:
    figure code first {e submits} all its samples into a shared
    {!batch}, the batch is fanned out across worker domains (and
    served from the result cache) by {!run_batch}, and only then are
    the per-figure finalizer closures invoked to assemble sweeps,
    ratios and tables from the completed summaries.  Assembly depends
    only on task results, never on completion order, so output is
    bit-identical for any [--jobs] setting. *)

type sample_request

val sample_request :
  ?samples:int ->
  ?warmups:int ->
  ?seed:int ->
  ?measure:measure ->
  ?robust:bool ->
  label:string ->
  Profile.t ->
  Generate.platform ->
  sample_request
(** Same defaults as {!performance_summary}.  [label] is only used
    in telemetry.  With [robust] (default false) the raw samples pass
    through MAD-based outlier rejection before summarisation.  The
    ambient fault plan ({!Wmm_engine.Fault.ambient}) is captured into
    the request: its outlier perturbation applies to the raw samples,
    and its fingerprint becomes part of the cache key. *)

val sample_key : sample_request -> string
(** The task's content key: profile name plus a digest of the
    canonically marshalled request (excluding the label). *)

type batch = Stats.summary Wmm_engine.Engine.Batch.t

val batch : unit -> batch
val run_batch : Wmm_engine.Engine.t -> batch -> unit

val submit :
  batch -> sample_request -> unit -> Stats.summary Wmm_engine.Engine.outcome

val summary_deferred :
  batch -> sample_request -> unit -> (Stats.summary, string) result

val relative_deferred :
  batch ->
  ?samples:int ->
  ?seed:int ->
  ?measure:measure ->
  ?robust:bool ->
  label:string ->
  Profile.t ->
  base:Generate.platform ->
  test:Generate.platform ->
  unit ->
  (Stats.summary, string) result
(** Deferred {!relative_performance}: submits the base and test
    samples, returns a finalizer.  [Error] when either sample
    failed. *)

val sweep_deferred :
  batch ->
  ?samples:int ->
  ?seed:int ->
  ?light:bool ->
  ?iteration_counts:int list ->
  ?robust:bool ->
  code_path:string ->
  base:Generate.platform ->
  inject:(Wmm_costfn.Cost_function.t -> Generate.platform) ->
  Profile.t ->
  unit ->
  sweep
(** Deferred {!sweep}: submits the base sample and one sample per
    cost size, returns a finalizer assembling the sweep.  Failed
    points are dropped from the fit and counted in [dropped] (crash
    isolation); a failed base - or fewer than two surviving points -
    degrades the whole sweep to [Sensitivity.unavailable] instead of
    raising.  With [robust] the samples are outlier-filtered and the
    fit is Huber-weighted ({!Sensitivity.fit_k_robust}). *)

(** {1 Fixed-cost rankings (paper Figs. 7 and 8)} *)

type cell = { benchmark : string; code_path : string; relative : Stats.summary }

val ranking_matrix :
  ?samples:int ->
  ?seed:int ->
  ?spin_iterations:int ->
  paths:(string * (Wmm_machine.Uop.t list -> Generate.platform)) list ->
  benchmarks:(Profile.t * (Wmm_machine.Uop.t list -> Generate.platform)) list ->
  unit ->
  cell list
(** For every (code path, benchmark) pair, the relative performance
    of injecting a fixed large cost function (default 1024
    iterations) into that path.  [paths] maps a path name to a
    platform builder given the injected uops; [benchmarks] carries a
    per-benchmark builder for the nop base case. *)

val sum_by_code_path : cell list -> (string * float) list
(** Paper Fig. 7: sum of relative performance per code path across
    benchmarks, ascending (most impact first). *)

val sum_by_benchmark : cell list -> (string * float) list
(** Paper Fig. 8. *)

(** {1 Cost inference (eq. 2) and micro/macro divergence} *)

val inferred_cost_ns : Sensitivity.fit -> Stats.summary -> float
(** Per-invocation cost (ns) a fencing change must have to explain
    the observed relative performance, given the benchmark's fitted
    sensitivity. *)

type divergence = {
  micro_ns : float;  (** In-vitro: microbenchmark of the sequences. *)
  macro_ns : float;  (** In-vivo: inferred from the benchmark. *)
}

val divergence_interesting : ?threshold:float -> divergence -> bool
(** True when in-vitro and in-vivo disagree by more than [threshold]
    (default 50%) relatively - which the paper reads as the benchmark
    exercising memory-system state that microbenchmarks cannot. *)
