open Wmm_util
open Wmm_isa
open Wmm_costfn
open Wmm_workload

type measure = Throughput | Response_mean | Response_max

let measure_of_profile (p : Profile.t) =
  match p.Profile.measurement with
  | Profile.Throughput -> Throughput
  | Profile.Response _ -> Response_mean

let value_of measure (r : Bench_runner.result) =
  match measure with
  | Throughput -> r.Bench_runner.throughput
  | Response_mean -> 1. /. r.Bench_runner.response_mean_ns
  | Response_max -> 1. /. r.Bench_runner.response_max_ns

let performance_values ?(samples = 6) ?(warmups = 2) ?(seed = 11) ?measure profile
    platform =
  let measure = match measure with Some m -> m | None -> measure_of_profile profile in
  (* Warm-up runs are discarded, as the paper does for JIT warm-up;
     for the simulator they only advance the seed sequence, which
     keeps sample seeds aligned between base and test cases. *)
  let seeds = List.init samples (fun i -> seed + ((warmups + i) * 1009)) in
  let results = Bench_runner.samples profile platform ~seeds in
  Array.of_list (List.map (value_of measure) results)

let performance_summary ?samples ?warmups ?seed ?measure profile platform =
  Stats.summarise (performance_values ?samples ?warmups ?seed ?measure profile platform)

let relative_performance ?(samples = 6) ?(seed = 11) ?measure profile ~base ~test =
  let t = performance_summary ~samples ~seed ?measure profile test in
  let b = performance_summary ~samples ~seed ?measure profile base in
  Stats.ratio_summary ~test:t ~base:b

type sweep_point = { iterations : int; cost_ns : float; relative : Stats.summary }

type sweep = {
  benchmark : string;
  arch : Arch.t;
  code_path : string;
  points : sweep_point list;
  dropped : int;
  fit : Sensitivity.fit;
}

let default_iteration_counts = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]

let sweep ?(samples = 6) ?(seed = 11) ?(light = false) ?iteration_counts ~code_path ~base
    ~inject profile =
  let arch = Generate.platform_arch base in
  let counts =
    match iteration_counts with Some c -> c | None -> default_iteration_counts
  in
  let base_summary = performance_summary ~samples ~seed profile base in
  let points =
    List.map
      (fun n ->
        let cf = Cost_function.make ~light arch n in
        let test_summary = performance_summary ~samples ~seed profile (inject cf) in
        {
          iterations = n;
          cost_ns = Cost_function.standalone_ns cf;
          relative = Stats.ratio_summary ~test:test_summary ~base:base_summary;
        })
      counts
  in
  let xs = Array.of_list (List.map (fun p -> p.cost_ns) points) in
  let ys = Array.of_list (List.map (fun p -> p.relative.Stats.gmean) points) in
  let fit = Sensitivity.fit_k ~xs ~ys in
  { benchmark = profile.Profile.name; arch; code_path; points; dropped = 0; fit }

(* ------------------------------------------------------------------ *)
(* Engine-backed execution: reify performance_summary calls - the    *)
(* atomic sample of every figure - as cacheable, parallelisable      *)
(* tasks.                                                             *)
(* ------------------------------------------------------------------ *)

type sample_request = {
  sr_profile : Profile.t;
  sr_platform : Generate.platform;
  sr_samples : int;
  sr_warmups : int;
  sr_seed : int;
  sr_measure : measure;
  sr_robust : bool;
  sr_plan : Wmm_engine.Fault.t;
  sr_label : string;
}

let sample_request ?(samples = 6) ?(warmups = 2) ?(seed = 11) ?measure ?(robust = false)
    ~label profile platform =
  let measure = match measure with Some m -> m | None -> measure_of_profile profile in
  {
    sr_profile = profile;
    sr_platform = platform;
    sr_samples = samples;
    sr_warmups = warmups;
    sr_seed = seed;
    sr_measure = measure;
    sr_robust = robust;
    (* Captured once, here: the plan that perturbs this request's raw
       samples is fixed when the task is built, not when it runs. *)
    sr_plan = Wmm_engine.Fault.ambient ();
    sr_label = label;
  }

let sample_key r =
  (* Everything that determines the summary, canonically serialised
     ([No_sharing] so physically different but structurally equal
     configurations produce the same bytes).  The label is display
     metadata and deliberately excluded; the robust flag and the
     fault fingerprint are included so perturbed or robustly-filtered
     summaries never pollute (or reuse) clean cache entries. *)
  let payload =
    Marshal.to_string
      (r.sr_profile, r.sr_platform, r.sr_samples, r.sr_warmups, r.sr_seed, r.sr_measure)
      [ Marshal.No_sharing ]
  in
  let fp = Wmm_engine.Fault.fingerprint r.sr_plan in
  Printf.sprintf "sample/v2|%s|%s%s%s" r.sr_profile.Profile.name
    (Digest.to_hex (Digest.string payload))
    (if r.sr_robust then "|robust" else "")
    (if fp = "" then "" else "|faults=" ^ fp)

let sample_task r =
  let key = sample_key r in
  Wmm_engine.Task.pure ~key ~label:r.sr_label (fun () ->
      let values =
        performance_values ~samples:r.sr_samples ~warmups:r.sr_warmups ~seed:r.sr_seed
          ~measure:r.sr_measure r.sr_profile r.sr_platform
      in
      let values = Wmm_engine.Fault.perturb_samples r.sr_plan ~key values in
      let values = if r.sr_robust then Stats.reject_outliers values else values in
      Stats.summarise values)

type batch = Stats.summary Wmm_engine.Engine.Batch.t

let batch () = Wmm_engine.Engine.Batch.create ()
let run_batch engine b = Wmm_engine.Engine.Batch.run engine b

let submit b r = Wmm_engine.Engine.Batch.add b (sample_task r)

let summary_deferred b r =
  let get = submit b r in
  fun () -> Wmm_engine.Engine.value (get ())

let relative_deferred b ?(samples = 6) ?(seed = 11) ?measure ?robust ~label profile ~base
    ~test =
  let test_get =
    submit b
      (sample_request ~samples ~seed ?measure ?robust ~label:(label ^ " [test]") profile
         test)
  in
  let base_get =
    submit b
      (sample_request ~samples ~seed ?measure ?robust ~label:(label ^ " [base]") profile
         base)
  in
  fun () ->
    match
      (Wmm_engine.Engine.value (test_get ()), Wmm_engine.Engine.value (base_get ()))
    with
    | Ok t, Ok bse -> Ok (Stats.ratio_summary ~test:t ~base:bse)
    | Error e, _ | _, Error e -> Error e

let sweep_deferred b ?(samples = 6) ?(seed = 11) ?(light = false) ?iteration_counts
    ?robust ~code_path ~base ~inject profile =
  let arch = Generate.platform_arch base in
  let counts =
    match iteration_counts with Some c -> c | None -> default_iteration_counts
  in
  let label suffix =
    Printf.sprintf "%s/%s/%s %s" profile.Profile.name (Arch.name arch) code_path suffix
  in
  let base_get =
    submit b (sample_request ~samples ~seed ?robust ~label:(label "base") profile base)
  in
  let point_gets =
    List.map
      (fun n ->
        let cf = Cost_function.make ~light arch n in
        let get =
          submit b
            (sample_request ~samples ~seed ?robust
               ~label:(label (Printf.sprintf "n=%d" n))
               profile (inject cf))
        in
        (n, cf, get))
      counts
  in
  let robust = robust = Some true in
  fun () ->
    let total = List.length counts in
    let assemble points =
      (* Degradation, not abortion: with too few surviving points the
         sweep reports an unavailable fit and the figure annotates the
         dropped cells; the rest of the report still renders. *)
      let dropped = total - List.length points in
      let fit =
        if List.length points < 2 then Sensitivity.unavailable
        else
          let xs = Array.of_list (List.map (fun p -> p.cost_ns) points) in
          let ys = Array.of_list (List.map (fun p -> p.relative.Stats.gmean) points) in
          if robust then Sensitivity.fit_k_robust ~xs ~ys else Sensitivity.fit_k ~xs ~ys
      in
      { benchmark = profile.Profile.name; arch; code_path; points; dropped; fit }
    in
    match Wmm_engine.Engine.value (base_get ()) with
    | Error _ ->
        (* No base case: every point is normalised against it, so the
           whole sweep degrades. *)
        assemble []
    | Ok base_summary ->
        List.filter_map
          (fun (n, cf, get) ->
            match Wmm_engine.Engine.value (get ()) with
            | Ok test_summary ->
                Some
                  {
                    iterations = n;
                    cost_ns = Cost_function.standalone_ns cf;
                    relative = Stats.ratio_summary ~test:test_summary ~base:base_summary;
                  }
            | Error _ -> None)
          point_gets
        |> assemble

type cell = { benchmark : string; code_path : string; relative : Stats.summary }

let ranking_matrix ?(samples = 3) ?(seed = 23) ?(spin_iterations = 1024) ~paths ~benchmarks ()
    =
  List.concat_map
    (fun ((profile : Profile.t), base_builder) ->
      let arch = Generate.platform_arch (base_builder []) in
      let cf = Cost_function.make arch spin_iterations in
      let base_platform = base_builder [ Cost_function.nop_padding arch cf ] in
      let base = performance_summary ~samples ~seed profile base_platform in
      List.map
        (fun (path_name, path_builder) ->
          let test_platform = path_builder [ Cost_function.uop cf ] in
          let test = performance_summary ~samples ~seed profile test_platform in
          {
            benchmark = profile.Profile.name;
            code_path = path_name;
            relative = Stats.ratio_summary ~test ~base;
          })
        paths)
    benchmarks

let sum_grouped key cells =
  let table = Hashtbl.create 16 in
  List.iter
    (fun cell ->
      let k = key cell in
      let current = try Hashtbl.find table k with Not_found -> 0. in
      Hashtbl.replace table k (current +. cell.relative.Stats.gmean))
    cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let sum_by_code_path cells = sum_grouped (fun c -> c.code_path) cells
let sum_by_benchmark cells = sum_grouped (fun c -> c.benchmark) cells

let inferred_cost_ns (fit : Sensitivity.fit) (relative : Stats.summary) =
  Sensitivity.cost_of_change ~k:fit.Sensitivity.k ~p:relative.Stats.gmean

type divergence = { micro_ns : float; macro_ns : float }

let divergence_interesting ?(threshold = 0.5) d =
  let denom = Float.max (abs_float d.micro_ns) 1e-9 in
  abs_float (d.macro_ns -. d.micro_ns) /. denom > threshold
