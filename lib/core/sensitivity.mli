(** The paper's sensitivity model (section 3).

    The normalised performance [p] of a benchmark whose code path is
    loaded with an injected per-invocation cost of [a] nanoseconds is
    modelled as

    {[ p = 1 / ((1 - k) + k * a) ]}            (paper eq. 1)

    where [k] is the benchmark's dimensionless sensitivity to the
    code path.  Inverting for [a] converts an observed relative
    performance into an equivalent per-invocation cost change:

    {[ a = -(((1 - k) * p) - 1) / (k * p) ]}    (paper eq. 2)

    [1/((1-k) + ka)] rather than [1/(1 + ka)] because the baseline is
    nop-padded: [a] is never quite zero. *)

val performance : k:float -> a:float -> float
(** Eq. 1.  [a] in nanoseconds. *)

val cost_of_change : k:float -> p:float -> float
(** Eq. 2: the per-invocation cost (ns) that explains relative
    performance [p] given sensitivity [k]. *)

type fit = {
  k : float;
  k_error_percent : float;  (** Standard error as % of [k], as reported in the figures. *)
  residual_ss : float;
  converged : bool;
}

val unavailable : fit
(** The degraded-run placeholder: [k = nan], infinite error, not
    converged.  Rendered by the figures as a failed fit instead of
    aborting the whole report. *)

val available : fit -> bool
(** False exactly for {!unavailable}-style fits (non-finite [k]). *)

val fit_k : xs:float array -> ys:float array -> fit
(** Non-linear least-squares fit of eq. 1 to (cost-function size in
    ns, relative performance) samples.  Raises [Invalid_argument] on
    fewer than two points. *)

val fit_k_robust : xs:float array -> ys:float array -> fit
(** Like {!fit_k} but with Huber-weighted iteratively reweighted
    least squares ({!Wmm_util.Fit.huber_fit}): sweep points corrupted
    by outlier samples pull on [k] with bounded force.  Identical to
    {!fit_k} on clean data. *)

val well_suited : ?max_error_percent:float -> ?min_k:float -> fit -> bool
(** The paper's usefulness criterion: a benchmark suits a code path
    when [k] is comparatively high and the fit variance low.
    Defaults: error below 15%, k at least 1e-4. *)
