open Wmm_util

let performance ~k ~a = 1. /. ((1. -. k) +. (k *. a))

let cost_of_change ~k ~p =
  if k = 0. || p = 0. then invalid_arg "Sensitivity.cost_of_change: k and p must be non-zero";
  -.(((1. -. k) *. p) -. 1.) /. (k *. p)

type fit = { k : float; k_error_percent : float; residual_ss : float; converged : bool }

let unavailable = { k = nan; k_error_percent = infinity; residual_ss = nan; converged = false }

let available f = Float.is_finite f.k

let fit_k_with fitter ~xs ~ys =
  if Array.length xs < 2 then invalid_arg "Sensitivity.fit_k: needs at least two points";
  if Array.length xs <> Array.length ys then
    invalid_arg "Sensitivity.fit_k: xs/ys length mismatch";
  (* Initial guess from the largest-cost point, solving eq. 1 for k. *)
  let last = Array.length xs - 1 in
  let init =
    let a = xs.(last) and p = ys.(last) in
    if a > 1. && p > 0. && p < 1. then ((1. /. p) -. 1.) /. (a -. 1.) else 1e-3
  in
  let model params a = performance ~k:params.(0) ~a in
  let result = fitter ~f:model ~xs ~ys ~init:[| Float.max 1e-8 init |] () in
  let k = result.Fit.params.(0) in
  let err =
    if Float.is_finite result.Fit.std_errors.(0) && k <> 0. then
      100. *. abs_float (result.Fit.std_errors.(0) /. k)
    else infinity
  in
  {
    k;
    k_error_percent = err;
    residual_ss = result.Fit.residual_ss;
    converged = result.Fit.converged;
  }

let fit_k ~xs ~ys = fit_k_with (fun ~f ~xs ~ys ~init () -> Fit.curve_fit ~f ~xs ~ys ~init ()) ~xs ~ys

let fit_k_robust ~xs ~ys =
  fit_k_with (fun ~f ~xs ~ys ~init () -> Fit.huber_fit ~f ~xs ~ys ~init ()) ~xs ~ys

let well_suited ?(max_error_percent = 15.) ?(min_k = 1e-4) fit =
  fit.converged && fit.k >= min_k && fit.k_error_percent <= max_error_percent
