type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

exception Parse_error of int * string

let fail i msg = raise (Parse_error (i, msg))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws s i = if i < String.length s && is_ws s.[i] then skip_ws s (i + 1) else i

let expect_char s i c =
  if i < String.length s && s.[i] = c then i + 1
  else fail i (Printf.sprintf "expected %C" c)

let parse_literal s i lit v =
  let n = String.length lit in
  if i + n <= String.length s && String.sub s i n = lit then (v, i + n)
  else fail i (Printf.sprintf "expected %s" lit)

let parse_string_body s i =
  let b = Buffer.create 16 in
  let rec go i =
    if i >= String.length s then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents b, i + 1)
      | '\\' ->
          if i + 1 >= String.length s then fail i "bad escape"
          else begin
            (match s.[i + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if i + 5 >= String.length s then fail i "bad \\u escape";
                let code =
                  try int_of_string ("0x" ^ String.sub s (i + 2) 4)
                  with _ -> fail i "bad \\u escape"
                in
                (* Encode the code point as UTF-8; surrogate pairs are
                   passed through as two 3-byte sequences, which is
                   lossy for astral-plane text but the protocol never
                   carries any. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail i (Printf.sprintf "unknown escape \\%c" c));
            go (if s.[i + 1] = 'u' then i + 6 else i + 2)
          end
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go i

let parse_number s i =
  let j = ref i in
  let n = String.length s in
  let advance_while p =
    while !j < n && p s.[!j] do
      incr j
    done
  in
  if !j < n && (s.[!j] = '-' || s.[!j] = '+') then incr j;
  advance_while (function '0' .. '9' -> true | _ -> false);
  if !j < n && s.[!j] = '.' then begin
    incr j;
    advance_while (function '0' .. '9' -> true | _ -> false)
  end;
  if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
    incr j;
    if !j < n && (s.[!j] = '-' || s.[!j] = '+') then incr j;
    advance_while (function '0' .. '9' -> true | _ -> false)
  end;
  match float_of_string_opt (String.sub s i (!j - i)) with
  | Some f -> (Num f, !j)
  | None -> fail i "malformed number"

let rec parse_value s i =
  let i = skip_ws s i in
  if i >= String.length s then fail i "unexpected end of input"
  else
    match s.[i] with
    | 'n' -> parse_literal s i "null" Null
    | 't' -> parse_literal s i "true" (Bool true)
    | 'f' -> parse_literal s i "false" (Bool false)
    | '"' ->
        let str, i = parse_string_body s (i + 1) in
        (Str str, i)
    | '{' -> parse_obj s (skip_ws s (i + 1)) []
    | '[' -> parse_arr s (skip_ws s (i + 1)) []
    | '-' | '0' .. '9' -> parse_number s i
    | c -> fail i (Printf.sprintf "unexpected %C" c)

and parse_obj s i acc =
  if i < String.length s && s.[i] = '}' then (Obj (List.rev acc), i + 1)
  else
    let i = expect_char s (skip_ws s i) '"' in
    let name, i = parse_string_body s i in
    let i = expect_char s (skip_ws s i) ':' in
    let v, i = parse_value s i in
    let i = skip_ws s i in
    if i < String.length s && s.[i] = ',' then
      parse_obj s (skip_ws s (i + 1)) ((name, v) :: acc)
    else
      let i = expect_char s i '}' in
      (Obj (List.rev ((name, v) :: acc)), i)

and parse_arr s i acc =
  if i < String.length s && s.[i] = ']' then (Arr (List.rev acc), i + 1)
  else
    let v, i = parse_value s i in
    let i = skip_ws s i in
    if i < String.length s && s.[i] = ',' then parse_arr s (skip_ws s (i + 1)) (v :: acc)
    else
      let i = expect_char s i ']' in
      (Arr (List.rev (v :: acc)), i)

let parse s =
  match
    let v, i = parse_value s 0 in
    let i = skip_ws s i in
    if i <> String.length s then fail i "trailing garbage" else v
  with
  | v -> Ok v
  | exception Parse_error (i, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" i msg)

let escape = Wmm_engine.Telemetry.json_escape

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Raw s -> Buffer.add_string b s
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.0f" f)
        else if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%g" f)
        else Buffer.add_string b "null"
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ", ";
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (name, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            Buffer.add_string b (escape name);
            Buffer.add_string b "\": ";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let of_int i = Num (float_of_int i)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_member name v =
  match member name v with Some (Str s) -> Some s | _ -> None

let int_member name v =
  match member name v with
  | Some (Num f) -> Some (int_of_float (Float.round f))
  | _ -> None

let bool_member name v =
  match member name v with Some (Bool b) -> Some b | _ -> None

let list_member name v =
  match member name v with
  | Some (Arr items) ->
      let strings =
        List.filter_map (function Str s -> Some s | _ -> None) items
      in
      if List.length strings = List.length items then Some strings else None
  | _ -> None
