(** A small blocking client for the served protocol, used by
    [wmm_bench query] and the tests. *)

type t

val connect : socket_path:string -> (t, string) result

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw request line (newline appended). *)

val recv_line : t -> string option
(** Next response line; [None] on EOF. *)

val set_timeout : t -> float -> unit
(** Receive timeout on the underlying socket: a {!recv_line} blocked
    longer than this returns [None] instead of hanging forever.
    Best-effort (ignored where the socket option is unsupported). *)

val roundtrip : t -> string -> (string list, string) result
(** Send one request line and collect its response frames up to and
    including the [final] one, in order.  Only valid when no other
    request is outstanding on this connection.  [Error] on EOF or an
    unparseable response frame. *)

val run_batch : t -> string list -> (string list, string) result
(** Pipeline every request line, then collect response lines until
    one [final] frame per request has arrived (frames of different
    requests may interleave; lines are returned in arrival order). *)

val is_final : string -> bool
(** Whether a response line is a [final] frame (malformed lines count
    as final, so a broken stream cannot hang a collector). *)

type retry_policy = {
  max_attempts : int;
      (** Maximum sends per request (first attempt included). *)
  base_delay_s : float;  (** First backoff step; doubles per round. *)
  max_delay_s : float;  (** Cap on any single sleep. *)
  seed : int;  (** Seeds the jitter stream — fixed seed, fixed schedule. *)
}

val default_policy : retry_policy
(** 4 attempts, 50ms base, 2s cap, seed 0. *)

type batch_outcome = {
  lines : string list;
      (** Response frames grouped per request, requests in submission
          order, each request's frames in arrival order.  A request
          that gave up keeps its last [overloaded] frame. *)
  retries : int;  (** Total resends (shed retries + replays). *)
  reconnects : int;  (** Connections re-established after a drop. *)
  gave_up_overloaded : string list;
      (** Serialized ids still shed after [max_attempts] sends. *)
}

val run_resilient :
  socket_path:string ->
  ?policy:retry_policy ->
  string list ->
  (batch_outcome, string) result
(** Like {!run_batch}, but owns the connection and survives faults:

    - requests sent without an [id] get one injected ([q<index>]) so
      responses can be demultiplexed and replayed deterministically;
    - an [overloaded] reply is retried up to [max_attempts] times,
      sleeping the larger of the server's [retry_after_ms] hint and
      the exponential backoff, scaled by seeded jitter in
      [0.75, 1.25); resends carry a [retry: n] envelope field (the
      server's [client_retries] counter);
    - a dropped connection (EOF, server restart) is re-established
      and every still-unanswered request replayed; partial frames of
      the aborted attempt are discarded so each request's frames come
      from a single complete attempt.

    [Error] is transport failure only: the socket could not be
    (re)connected, or a request's connection kept dropping through
    [max_attempts] sends.  Requests the server answered with an
    [error] or [deadline_exceeded] frame are [Ok] — the frame is in
    [lines] for the caller to classify. *)
