(** A small blocking client for the served protocol, used by
    [wmm_bench query] and the tests. *)

type t

val connect : socket_path:string -> (t, string) result

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw request line (newline appended). *)

val recv_line : t -> string option
(** Next response line; [None] on EOF. *)

val roundtrip : t -> string -> (string list, string) result
(** Send one request line and collect its response frames up to and
    including the [final] one, in order.  Only valid when no other
    request is outstanding on this connection.  [Error] on EOF or an
    unparseable response frame. *)

val run_batch : t -> string list -> (string list, string) result
(** Pipeline every request line, then collect response lines until
    one [final] frame per request has arrived (frames of different
    requests may interleave; lines are returned in arrival order). *)

val is_final : string -> bool
(** Whether a response line is a [final] frame (malformed lines count
    as final, so a broken stream cannot hang a collector). *)
