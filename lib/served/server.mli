(** The exploration daemon: a Unix-domain-socket server over the
    shared engine.

    One {!Wmm_engine.Workqueue} of worker domains is spawned at
    startup and kept warm across every request; POSIX threads handle
    the sockets (readers, per-client writers, a small executor pool)
    and submit compute work to that queue.  Identical concurrent
    requests share one computation ({!Wmm_engine.Inflight}), results
    are cached and journaled at request granularity (so a restarted
    daemon answers a repeated battery without recomputing), responses
    stream through bounded per-client queues (back-pressure), request
    scheduling is round-robin across clients, and admission control
    sheds work with a structured [overloaded] reply once too many
    requests are in flight. *)

type config = {
  socket_path : string;
  jobs : int;  (** Worker domains; [0] auto-detects. *)
  cache_dir : string option;  (** [None] disables cache and journal. *)
  run_id : string option;
      (** Journal run id; [None] derives a stable default, so a
          restarted daemon resumes the same journal. *)
  executors : int;  (** Request-servicing threads. *)
  queue_bound : int;
      (** Max admitted-but-unfinished requests before shedding. *)
  client_queue_bound : int;
      (** Max buffered response lines per client before the producer
          blocks (back-pressure). *)
  telemetry_out : string option;  (** JSON dump path, written on exit. *)
  verbose : bool;  (** Per-request log lines on stderr. *)
}

val default_config : socket_path:string -> config
(** [jobs = 0]; cache at {!Wmm_engine.Cache.default_dir}; derived run
    id; 4 executors; [queue_bound = 256]; [client_queue_bound = 64];
    no telemetry dump; quiet. *)

val serve : config -> unit
(** Bind, accept, and serve until a [shutdown] request arrives.
    In-flight requests complete and their responses flush before the
    listener returns.  The engine summary always goes to stderr on
    exit; the telemetry JSON (including the [server] section) to
    [telemetry_out] when set. *)
