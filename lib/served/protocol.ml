open Wmm_model
open Wmm_isa

(* v2 added the optional per-request "deadline_ms" and "retry"
   envelope fields and the "deadline_exceeded" response status; v3
   the conform "engine" field (named in the canonical key, so cached
   results from different exploration engines cannot alias); v4 the
   litmus "certify" flag and the per-verdict "certificate" response
   field carrying a proof-carrying certificate for the axiomatic
   verdict. *)
let schema_version = 4

type litmus_mode = Exhaustive | Random of int

type lang_action = L_explore | L_conform | L_rank

type request =
  | Litmus of {
      tests : string list;
      program : string option;
      model : Axiomatic.model option;
      mode : litmus_mode;
      certify : bool;
    }
  | Analyze of { tests : string list; arch : Arch.t; cost : bool }
  | Conform of {
      arch : Arch.t;
      max_edges : int;
      limit : int;
      infer_limit : int;
      engine : Enumerate.engine_kind;
    }
  | Lang of {
      action : lang_action;
      tests : string list;  (** Lock or litmus names; [] = default battery. *)
      schemes : string list;  (** Compilation schemes; [] = defaults. *)
      limit : int;
    }
  | Cache_stats
  | Stats
  | Ping
  | Shutdown

type envelope = {
  req_id : Json.t;
  request : request;
  deadline_ms : int option;
  retry : int;
}

let model_wire_name = Wmm_registry.Registry.model_wire_name
let model_of_string = Wmm_registry.Registry.model_of_string

let ( let* ) = Result.bind

let arch_field v =
  match Json.str_member "arch" v with
  | None -> Ok Arch.Armv8
  | Some s -> (
      match Arch.of_string s with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "unknown arch %S" s))

let int_field v name default =
  match Json.member name v with
  | None -> Ok default
  | Some (Json.Num f) -> Ok (int_of_float (Float.round f))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let bool_field v name default =
  match Json.member name v with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let tests_field v =
  match Json.member "tests" v with
  | None -> Ok []
  | Some (Json.Arr _) -> (
      match Json.list_member "tests" v with
      | Some ts -> Ok ts
      | None -> Error "field \"tests\" must be an array of strings")
  | Some (Json.Str t) -> Ok [ t ]
  | Some _ -> Error "field \"tests\" must be an array of strings"

let parse_litmus v =
  let* tests = tests_field v in
  let* program =
    match Json.member "program" v with
    | None | Some Json.Null -> Ok None
    | Some (Json.Str p) -> Ok (Some p)
    | Some _ -> Error "field \"program\" must be a string"
  in
  let* model =
    match Json.member "model" v with
    | None | Some Json.Null -> Ok None
    | Some (Json.Str s) -> (
        match model_of_string s with
        | Some m -> Ok (Some m)
        | None -> Error (Printf.sprintf "unknown model %S" s))
    | Some _ -> Error "field \"model\" must be a string"
  in
  let* mode =
    match Json.str_member "mode" v with
    | None | Some "exhaustive" ->
        Ok Exhaustive
    | Some "random" ->
        let* iters = int_field v "iterations" 2000 in
        if iters <= 0 then Error "field \"iterations\" must be positive"
        else Ok (Random iters)
    | Some m -> Error (Printf.sprintf "unknown litmus mode %S" m)
  in
  let* certify = bool_field v "certify" false in
  Ok (Litmus { tests; program; model; mode; certify })

let parse_analyze v =
  let* tests = tests_field v in
  let* arch = arch_field v in
  let* cost = bool_field v "cost" false in
  Ok (Analyze { tests; arch; cost })

let parse_conform v =
  let* arch = arch_field v in
  let* max_edges = int_field v "max_edges" 2 in
  let* limit = int_field v "limit" 64 in
  let* infer_limit = int_field v "infer_limit" 16 in
  let* engine =
    match Json.str_member "engine" v with
    | None -> Ok Enumerate.Auto
    | Some s -> (
        match Enumerate.engine_of_string s with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "unknown engine %S" s))
  in
  if max_edges < 1 then Error "field \"max_edges\" must be >= 1"
  else if limit < 1 then Error "field \"limit\" must be >= 1"
  else Ok (Conform { arch; max_edges; limit; infer_limit; engine })

let lang_action_name = function
  | L_explore -> "explore"
  | L_conform -> "conform"
  | L_rank -> "rank"

let parse_lang v =
  let* action =
    match Json.str_member "action" v with
    | None | Some "conform" -> Ok L_conform
    | Some "explore" -> Ok L_explore
    | Some "rank" -> Ok L_rank
    | Some a -> Error (Printf.sprintf "unknown lang action %S" a)
  in
  let* tests = tests_field v in
  let* schemes =
    match Json.member "schemes" v with
    | None -> Ok []
    | Some (Json.Arr _) -> (
        match Json.list_member "schemes" v with
        | Some ss -> Ok ss
        | None -> Error "field \"schemes\" must be an array of strings")
    | Some (Json.Str s) -> Ok [ s ]
    | Some _ -> Error "field \"schemes\" must be an array of strings"
  in
  let* limit = int_field v "limit" 0 in
  if limit < 0 then Error "field \"limit\" must be >= 0"
  else Ok (Lang { action; tests; schemes; limit })

let parse_request v =
  match v with
  | Json.Obj _ ->
      let req_id = Option.value ~default:Json.Null (Json.member "id" v) in
      let* request =
        match Json.str_member "op" v with
        | None -> Error "missing required string field \"op\""
        | Some "litmus" -> parse_litmus v
        | Some "analyze" -> parse_analyze v
        | Some "conform" -> parse_conform v
        | Some "lang" -> parse_lang v
        | Some "cache-stats" -> Ok Cache_stats
        | Some "stats" -> Ok Stats
        | Some "ping" -> Ok Ping
        | Some "shutdown" -> Ok Shutdown
        | Some op -> Error (Printf.sprintf "unknown op %S" op)
      in
      (* Envelope-only fields: they shape delivery, not the answer, so
         neither participates in the canonical key. *)
      let* deadline_ms =
        match Json.member "deadline_ms" v with
        | None | Some Json.Null -> Ok None
        | Some (Json.Num f) ->
            let d = int_of_float (Float.round f) in
            if d <= 0 then Error "field \"deadline_ms\" must be positive"
            else Ok (Some d)
        | Some _ -> Error "field \"deadline_ms\" must be a number"
      in
      let* retry = int_field v "retry" 0 in
      Ok { req_id; request; deadline_ms; retry }
  | _ -> Error "request must be a JSON object"

let cacheable = function
  | Litmus _ | Analyze _ | Conform _ | Lang _ -> true
  | Cache_stats | Stats | Ping | Shutdown -> false

let op_name = function
  | Litmus _ -> "litmus"
  | Analyze _ -> "analyze"
  | Conform _ -> "conform"
  | Lang _ -> "lang"
  | Cache_stats -> "cache-stats"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* The canonical key must depend only on the semantics of the query:
   field order and request ids are gone by now, list order is
   preserved (it changes result order, hence the result), and inline
   program text is digested so keys stay bounded. *)
let canonical_key req =
  match req with
  | Litmus { tests; program; model; mode; certify } ->
      Printf.sprintf "served/v%d|litmus|tests=%s|program=%s|model=%s|mode=%s|certify=%b"
        schema_version
        (String.concat "," tests)
        (match program with
        | None -> "-"
        | Some p -> Digest.to_hex (Digest.string p))
        (match model with None -> "all" | Some m -> model_wire_name m)
        (match mode with
        | Exhaustive -> "exhaustive"
        | Random n -> Printf.sprintf "random:%d" n)
        certify
  | Analyze { tests; arch; cost } ->
      Printf.sprintf "served/v%d|analyze|tests=%s|arch=%s|cost=%b" schema_version
        (String.concat "," tests) (Arch.name arch) cost
  | Conform { arch; max_edges; limit; infer_limit; engine } ->
      Printf.sprintf
        "served/v%d|conform|arch=%s|max_edges=%d|limit=%d|infer=%d|engine=%s"
        schema_version (Arch.name arch) max_edges limit infer_limit
        (Enumerate.engine_name engine)
  | Lang { action; tests; schemes; limit } ->
      Printf.sprintf "served/v%d|lang|action=%s|tests=%s|schemes=%s|limit=%d"
        schema_version (lang_action_name action) (String.concat "," tests)
        (String.concat "," schemes) limit
  | req -> invalid_arg ("Protocol.canonical_key: non-cacheable op " ^ op_name req)

let response ~id ~op ~seq ~final ?(status = "ok") ?served_from ?wall_us payload =
  let fields =
    [
      ("v", Json.of_int schema_version);
      ("id", id);
      ("op", Json.Str op);
      ("seq", Json.of_int seq);
      ("final", Json.Bool final);
      ("status", Json.Str status);
    ]
    @ (match served_from with
      | Some s -> [ ("served_from", Json.Str s) ]
      | None -> [])
    @ (match wall_us with
      | Some w -> [ ("wall_us", Json.Num (Float.round w)) ]
      | None -> [])
    @ payload
  in
  Json.to_string (Json.Obj fields)

let error_response ~id ~op msg =
  response ~id ~op ~seq:0 ~final:true ~status:"error" [ ("error", Json.Str msg) ]

let overloaded_response ~id ~op ~retry_after_ms =
  response ~id ~op ~seq:0 ~final:true ~status:"overloaded"
    [ ("retry_after_ms", Json.of_int retry_after_ms) ]

let deadline_exceeded_response ~id ~op ~deadline_ms ~elapsed_ms =
  response ~id ~op ~seq:0 ~final:true ~status:"deadline_exceeded"
    [
      ("deadline_ms", Json.of_int deadline_ms);
      ("elapsed_ms", Json.of_int elapsed_ms);
    ]
