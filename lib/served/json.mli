(** A minimal JSON value type with a parser and printer.

    The served protocol is newline-delimited JSON; requests are small
    and flat, so a purpose-built recursive-descent parser over the
    full JSON grammar (objects, arrays, strings with escapes, numbers,
    booleans, null) beats pulling in a dependency the toolchain does
    not ship.  Numbers are held as OCaml floats ({!int_member} rounds
    when a field is semantically integral). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** Insertion order preserved. *)
  | Raw of string
      (** Pre-serialized JSON spliced verbatim by {!to_string}; never
          produced by {!parse}.  Lets cached response items (stored as
          their serialized text) be framed without a re-parse. *)

val parse : string -> (t, string) result
(** Parse one JSON value (leading/trailing whitespace allowed;
    trailing garbage is an error).  Errors carry a byte offset. *)

val to_string : t -> string
(** Compact single-line rendering (never contains a raw newline, so a
    rendered value is always a valid NDJSON frame).  Integral numbers
    print without a decimal point. *)

val of_int : int -> t

(** {1 Object accessors} — all return [None] on a non-object or a
    missing/mistyped field. *)

val member : string -> t -> t option
val str_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option

val list_member : string -> t -> string list option
(** A field holding an array of strings. *)
