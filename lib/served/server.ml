module Engine = Wmm_engine.Engine
module Workqueue = Wmm_engine.Workqueue
module Inflight = Wmm_engine.Inflight
module Cache = Wmm_engine.Cache
module Journal = Wmm_engine.Journal
module Telemetry = Wmm_engine.Telemetry

type config = {
  socket_path : string;
  jobs : int;
  cache_dir : string option;
  run_id : string option;
  executors : int;
  queue_bound : int;
  client_queue_bound : int;
  telemetry_out : string option;
  verbose : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = 0;
    cache_dir = Some Cache.default_dir;
    run_id = None;
    executors = 4;
    queue_bound = 256;
    client_queue_bound = 64;
    telemetry_out = None;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Request metrics, mirrored into Telemetry.server on every dump.     *)
(* ------------------------------------------------------------------ *)

type metrics = {
  m_lock : Mutex.t;
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable computed : int;
  mutable cache_hits : int;
  mutable journal_hits : int;
  mutable dedup_joined : int;
  mutable streamed_items : int;
  mutable clients : int;
  mutable hit_wall_total_s : float;
  mutable hit_wall_max_s : float;
  mutable compute_wall_total_s : float;
  mutable compute_wall_max_s : float;
  mutable max_pending : int;
  mutable max_client_queue : int;
  mutable deadline_exceeded : int;
  mutable executor_recycles : int;
  mutable client_retries : int;
}

let metrics_create () =
  {
    m_lock = Mutex.create ();
    requests = 0;
    ok = 0;
    errors = 0;
    overloaded = 0;
    computed = 0;
    cache_hits = 0;
    journal_hits = 0;
    dedup_joined = 0;
    streamed_items = 0;
    clients = 0;
    hit_wall_total_s = 0.;
    hit_wall_max_s = 0.;
    compute_wall_total_s = 0.;
    compute_wall_max_s = 0.;
    max_pending = 0;
    max_client_queue = 0;
    deadline_exceeded = 0;
    executor_recycles = 0;
    client_retries = 0;
  }

let with_metrics m f =
  Mutex.lock m.m_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.m_lock) (fun () -> f m)

let metrics_snapshot m : Telemetry.server =
  with_metrics m (fun m ->
      {
        Telemetry.requests = m.requests;
        ok = m.ok;
        errors = m.errors;
        overloaded = m.overloaded;
        computed = m.computed;
        cache_hits = m.cache_hits;
        journal_hits = m.journal_hits;
        dedup_joined = m.dedup_joined;
        streamed_items = m.streamed_items;
        clients = m.clients;
        hit_wall_total_s = m.hit_wall_total_s;
        hit_wall_max_s = m.hit_wall_max_s;
        compute_wall_total_s = m.compute_wall_total_s;
        compute_wall_max_s = m.compute_wall_max_s;
        max_pending = m.max_pending;
        max_client_queue = m.max_client_queue;
        deadline_exceeded = m.deadline_exceeded;
        executor_recycles = m.executor_recycles;
        client_retries = m.client_retries;
      })

(* ------------------------------------------------------------------ *)
(* Clients.                                                           *)
(* ------------------------------------------------------------------ *)

type work = {
  w_id : Json.t;
  w_req : Protocol.request;
  w_admitted : float;  (* admission wall-clock, for elapsed_ms *)
  w_deadline_ms : int option;  (* as requested, echoed in the frame *)
  w_deadline : float option;  (* absolute; admission + deadline_ms *)
}

type client = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_lock : Mutex.t;
  c_out : string Queue.t;  (* response lines awaiting the writer *)
  c_out_nonempty : Condition.t;
  c_out_nonfull : Condition.t;
  c_out_drained : Condition.t;  (* broadcast whenever c_out empties *)
  c_inbox : work Queue.t;  (* admitted requests awaiting an executor *)
  mutable c_drain_deadline : float option;
      (* set by close_client; the watchdog kills the client past it *)
  mutable c_dead : bool;
  mutable c_closed : bool;  (* fd released; guards against double close *)
}

(* One request being computed right now.  [r_answered] is the
   single-assignment race arbiter between the executor delivering a
   result and the watchdog delivering a deadline frame: whoever flips
   it under [s_lock] owns the reply (and the [pending] decrement);
   the loser drops its side silently. *)
type running = {
  r_client : client;
  r_work : work;
  r_token : Wmm_util.Cancel.t;
  mutable r_answered : bool;
}

(* An executor slot.  The thread currently bound to the slot carries
   the generation it was spawned at; when the watchdog quarantines an
   overrunning executor it bumps [x_gen] and spawns a replacement, so
   the old thread discovers on its next [s_lock] acquisition that it
   has been disowned and exits instead of double-serving. *)
type slot = {
  mutable x_gen : int;
  mutable x_running : running option;
  mutable x_thread : Thread.t option;
}

type t = {
  cfg : config;
  engine : Engine.t;
  pool : Workqueue.t;
  cache : Cache.t;
  journal : Journal.t option;
  inflight : (string * string list) Inflight.t;
  metrics : metrics;
  s_lock : Mutex.t;
  s_ready : Condition.t;  (* work admitted, or stopping *)
  rr : client Queue.t;  (* round-robin: clients with a non-empty inbox *)
  slots : slot array;  (* one per executor *)
  mutable all_clients : client list;
  mutable pending : int;  (* admitted and not yet answered *)
  mutable stopping : bool;
  mutable wd_stop : bool;  (* watchdog shutdown flag; set after clients close *)
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;  (* self-pipe waking the accept loop *)
  stop_w : Unix.file_descr;
}

let log t fmt =
  Printf.ksprintf (fun s -> if t.cfg.verbose then Printf.eprintf "wmm_served: %s\n%!" s) fmt

(* Enqueue one response line for a client.  Blocks while the queue is
   at the bound - this is the back-pressure path: a slow reader stalls
   the executor streaming to it, not the whole server (other clients
   have their own queues and executors). *)
let enqueue_out t client line =
  Mutex.lock client.c_lock;
  while Queue.length client.c_out >= t.cfg.client_queue_bound && not client.c_dead do
    Condition.wait client.c_out_nonfull client.c_lock
  done;
  if not client.c_dead then begin
    Queue.push line client.c_out;
    let depth = Queue.length client.c_out in
    with_metrics t.metrics (fun m ->
        m.streamed_items <- m.streamed_items + 1;
        if depth > m.max_client_queue then m.max_client_queue <- depth);
    Condition.signal client.c_out_nonempty
  end;
  Mutex.unlock client.c_lock

let mark_dead client =
  Mutex.lock client.c_lock;
  client.c_dead <- true;
  Queue.clear client.c_out;
  Condition.broadcast client.c_out_nonempty;
  Condition.broadcast client.c_out_nonfull;
  Condition.broadcast client.c_out_drained;
  Mutex.unlock client.c_lock

let writer_thread client =
  let rec loop () =
    Mutex.lock client.c_lock;
    while Queue.is_empty client.c_out && not client.c_dead do
      Condition.wait client.c_out_nonempty client.c_lock
    done;
    if client.c_dead then Mutex.unlock client.c_lock
    else begin
      let line = Queue.pop client.c_out in
      Condition.signal client.c_out_nonfull;
      if Queue.is_empty client.c_out then Condition.broadcast client.c_out_drained;
      Mutex.unlock client.c_lock;
      let payload = Bytes.of_string (line ^ "\n") in
      (match
         let rec write_all off =
           if off < Bytes.length payload then
             let n = Unix.write client.c_fd payload off (Bytes.length payload - off) in
             write_all (off + n)
         in
         write_all 0
       with
      | () -> ()
      | exception _ -> mark_dead client);
      loop ()
    end
  in
  loop ()

(* Wait (bounded) for a client's output queue to drain, then close the
   connection: used on shutdown so the final frames reach the peer.
   The wait parks on [c_out_drained] (the writer broadcasts it when
   the queue empties, [mark_dead] when the client dies); the 5s bound
   is enforced by the watchdog, which kills any client still
   undrained past [c_drain_deadline] — no thread spins. *)
let close_client client =
  Mutex.lock client.c_lock;
  client.c_drain_deadline <- Some (Unix.gettimeofday () +. 5.);
  while not (Queue.is_empty client.c_out || client.c_dead) do
    Condition.wait client.c_out_drained client.c_lock
  done;
  let first = not client.c_closed in
  client.c_closed <- true;
  Mutex.unlock client.c_lock;
  mark_dead client;
  if first then begin
    (try Unix.shutdown client.c_fd Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close client.c_fd with _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Request execution (runs on executor threads).                      *)
(* ------------------------------------------------------------------ *)

(* Resolve a cacheable request to its items, sharing every layer:
   concurrent identical requests join one in-flight computation keyed
   on the content digest; completed ones replay from the journal or
   the cache.  Returns the items plus a provenance tag. *)
let resolve t ~token req =
  let key = Protocol.canonical_key req in
  let digest = Digest.to_hex (Digest.string key) in
  let (origin, items), joined =
    Inflight.run t.inflight ~key:digest (fun () ->
        match Option.bind t.journal (fun j -> Journal.replay j ~key) with
        | Some items -> ("journal", items)
        | None -> (
            match Cache.find t.cache ~key with
            | Some items -> ("cache", items)
            | None ->
                (* The request's cancellation token parents every
                   task token in this batch: a fired deadline stops
                   the computation mid-search, and a cancelled run is
                   neither cached nor journaled. *)
                let items =
                  Ops.compute ~engine:(Engine.with_cancel t.engine token) req
                in
                Cache.store t.cache ~key items;
                Option.iter (fun j -> Journal.record_ok j ~key items) t.journal;
                ("computed", items)))
  in
  ((if joined then "inflight" else origin), items)

let stream_items t client ~id ~op ~served_from ~wall_us items =
  match items with
  | [] ->
      enqueue_out t client
        (Protocol.response ~id ~op ~seq:0 ~final:true ~served_from ~wall_us
           [ ("items", Json.of_int 0) ])
  | items ->
      let k = List.length items in
      List.iteri
        (fun i item ->
          let final = i = k - 1 in
          let line =
            if final then
              Protocol.response ~id ~op ~seq:i ~final ~served_from ~wall_us
                [ ("item", Json.Raw item); ("items", Json.of_int k) ]
            else
              Protocol.response ~id ~op ~seq:i ~final [ ("item", Json.Raw item) ]
          in
          enqueue_out t client line)
        items

let deadline_frame work =
  let elapsed_ms =
    int_of_float (1e3 *. (Unix.gettimeofday () -. work.w_admitted))
  in
  Protocol.deadline_exceeded_response ~id:work.w_id
    ~op:(Protocol.op_name work.w_req)
    ~deadline_ms:(Option.value ~default:0 work.w_deadline_ms)
    ~elapsed_ms

(* Compute one request and deliver the answer — unless the watchdog
   already answered it with a deadline frame, in which case whatever
   came out of the computation is dropped (the cache may still have
   absorbed a late success, which future identical requests enjoy). *)
let execute t running =
  let { r_client = client; r_work = { w_id = id; w_req = req; _ }; r_token = token; _ }
      =
    running
  in
  let op = Protocol.op_name req in
  let t0 = Unix.gettimeofday () in
  let claim_answer () =
    Mutex.lock t.s_lock;
    let mine = not running.r_answered in
    if mine then begin
      running.r_answered <- true;
      t.pending <- t.pending - 1
    end;
    Mutex.unlock t.s_lock;
    mine
  in
  match resolve t ~token req with
  | served_from, items ->
      if claim_answer () then begin
        let wall = Unix.gettimeofday () -. t0 in
        with_metrics t.metrics (fun m ->
            m.ok <- m.ok + 1;
            (match served_from with
            | "computed" ->
                m.computed <- m.computed + 1;
                m.compute_wall_total_s <- m.compute_wall_total_s +. wall;
                if wall > m.compute_wall_max_s then m.compute_wall_max_s <- wall
            | origin ->
                (match origin with
                | "cache" -> m.cache_hits <- m.cache_hits + 1
                | "journal" -> m.journal_hits <- m.journal_hits + 1
                | _ -> m.dedup_joined <- m.dedup_joined + 1);
                m.hit_wall_total_s <- m.hit_wall_total_s +. wall;
                if wall > m.hit_wall_max_s then m.hit_wall_max_s <- wall));
        log t "client %d: %s served from %s in %.1f ms (%d items)" client.c_id op
          served_from (wall *. 1e3) (List.length items);
        stream_items t client ~id ~op ~served_from ~wall_us:(wall *. 1e6) items
      end
  | exception e ->
      if claim_answer () then
        (* A task that died because its own deadline token fired is a
           deadline death, not a generic error: the cooperative
           cancellation usually beats the watchdog's 50ms tick, so
           this branch, not the watchdog, answers most overruns.  The
           watchdog stays the backstop (with quarantine) for tasks
           stuck in code that never polls. *)
        if Wmm_util.Cancel.cancelled running.r_token <> None then begin
          with_metrics t.metrics (fun m ->
              m.deadline_exceeded <- m.deadline_exceeded + 1);
          log t "client %d: %s cancelled at deadline" client.c_id op;
          enqueue_out t client (deadline_frame running.r_work)
        end
        else begin
          let msg = match e with Failure m -> m | e -> Printexc.to_string e in
          with_metrics t.metrics (fun m -> m.errors <- m.errors + 1);
          log t "client %d: %s failed: %s" client.c_id op msg;
          enqueue_out t client (Protocol.error_response ~id ~op msg)
        end

let rec executor_loop t slot_idx my_gen =
  Mutex.lock t.s_lock;
  let slot = t.slots.(slot_idx) in
  if slot.x_gen <> my_gen then
    (* Quarantined by the watchdog while we were computing: a
       replacement already owns this slot. *)
    Mutex.unlock t.s_lock
  else if Queue.is_empty t.rr && not t.stopping then begin
    Condition.wait t.s_ready t.s_lock;
    Mutex.unlock t.s_lock;
    executor_loop t slot_idx my_gen
  end
  else if Queue.is_empty t.rr then (* stopping and drained *)
    Mutex.unlock t.s_lock
  else begin
    (* Round-robin fairness: take one request from the head client,
       then rotate it to the back if it still has work queued. *)
    let client = Queue.pop t.rr in
    match Queue.pop client.c_inbox with
    | exception Queue.Empty ->
        (* The watchdog expired everything this client had queued. *)
        Mutex.unlock t.s_lock;
        executor_loop t slot_idx my_gen
    | work -> (
        if not (Queue.is_empty client.c_inbox) then Queue.push client t.rr;
        let now = Unix.gettimeofday () in
        match work.w_deadline with
        | Some d when now > d ->
            (* Expired while queued: answer without computing. *)
            t.pending <- t.pending - 1;
            with_metrics t.metrics (fun m ->
                m.deadline_exceeded <- m.deadline_exceeded + 1);
            Mutex.unlock t.s_lock;
            enqueue_out t client (deadline_frame work);
            executor_loop t slot_idx my_gen
        | _ ->
            let token =
              match work.w_deadline with
              | None -> Wmm_util.Cancel.never
              | Some d -> Wmm_util.Cancel.create ~deadline:d ()
            in
            let running =
              { r_client = client; r_work = work; r_token = token;
                r_answered = false }
            in
            slot.x_running <- Some running;
            Mutex.unlock t.s_lock;
            (try execute t running
             with e -> log t "executor: uncaught %s" (Printexc.to_string e));
            Mutex.lock t.s_lock;
            let still_mine = slot.x_gen = my_gen in
            if still_mine then slot.x_running <- None;
            Mutex.unlock t.s_lock;
            if still_mine then executor_loop t slot_idx my_gen)
  end

(* The watchdog: a ~50ms tick that (1) answers and quarantines
   executors whose running request overran its deadline, spawning a
   replacement so the pool never shrinks; (2) answers queued requests
   whose deadline passed before any executor picked them up; (3)
   kills clients that failed to drain within their close deadline, so
   graceful shutdown is bounded without any thread busy-polling. *)
let watchdog_thread t =
  let rec loop () =
    Thread.delay 0.05;
    Mutex.lock t.s_lock;
    if t.wd_stop then Mutex.unlock t.s_lock
    else begin
      let now = Unix.gettimeofday () in
      let replies = ref [] in
      (* (1) overrunning executors *)
      Array.iteri
        (fun i slot ->
          match slot.x_running with
          | Some r
            when (not r.r_answered)
                 && (match r.r_work.w_deadline with
                    | Some d -> now > d
                    | None -> false) ->
              r.r_answered <- true;
              t.pending <- t.pending - 1;
              Wmm_util.Cancel.cancel r.r_token ~reason:"deadline";
              slot.x_gen <- slot.x_gen + 1;
              slot.x_running <- None;
              let gen = slot.x_gen in
              slot.x_thread <-
                Some (Thread.create (fun () -> executor_loop t i gen) ());
              with_metrics t.metrics (fun m ->
                  m.deadline_exceeded <- m.deadline_exceeded + 1;
                  m.executor_recycles <- m.executor_recycles + 1);
              replies := (r.r_client, deadline_frame r.r_work) :: !replies
          | _ -> ())
        t.slots;
      (* (2) requests that expired while still queued *)
      List.iter
        (fun client ->
          if not (Queue.is_empty client.c_inbox) then begin
            let keep = Queue.create () in
            Queue.iter
              (fun work ->
                match work.w_deadline with
                | Some d when now > d ->
                    t.pending <- t.pending - 1;
                    with_metrics t.metrics (fun m ->
                        m.deadline_exceeded <- m.deadline_exceeded + 1);
                    replies := (client, deadline_frame work) :: !replies
                | _ -> Queue.push work keep)
              client.c_inbox;
            Queue.clear client.c_inbox;
            Queue.transfer keep client.c_inbox
          end)
        t.all_clients;
      (* (3) clients stuck draining past their close deadline *)
      let stuck =
        List.filter
          (fun client ->
            Mutex.lock client.c_lock;
            let s =
              (not client.c_dead)
              && (match client.c_drain_deadline with
                 | Some d -> now > d
                 | None -> false)
            in
            Mutex.unlock client.c_lock;
            s)
          t.all_clients
      in
      Mutex.unlock t.s_lock;
      List.iter (fun (client, line) -> enqueue_out t client line) !replies;
      List.iter mark_dead stuck;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Control requests (answered inline by the reader thread; they skip  *)
(* admission so a saturated server still answers ping and stats).     *)
(* ------------------------------------------------------------------ *)

let cache_stats_payload t =
  let s = Cache.stats t.cache in
  let disk =
    match Cache.disk_usage t.cache with
    | Some (files, bytes) ->
        [ ("disk_files", Json.of_int files); ("disk_bytes", Json.of_int bytes) ]
    | None -> []
  in
  [
    ("enabled", Json.Bool (Cache.enabled t.cache));
    ("hits", Json.of_int s.Cache.hits);
    ("misses", Json.of_int s.Cache.misses);
    ("stores", Json.of_int s.Cache.stores);
    ("cache_errors", Json.of_int s.Cache.errors);
    ("verify_failures", Json.of_int s.Cache.verify_failures);
    ("pruned", Json.of_int s.Cache.pruned);
  ]
  @ disk

let stats_payload t =
  let s = metrics_snapshot t.metrics in
  let fl f = Json.Num (Float.round (f *. 1e6)) in
  Mutex.lock t.s_lock;
  let pending = t.pending in
  Mutex.unlock t.s_lock;
  [
    ("requests", Json.of_int s.Telemetry.requests);
    ("ok", Json.of_int s.Telemetry.ok);
    ("request_errors", Json.of_int s.Telemetry.errors);
    ("overloaded", Json.of_int s.Telemetry.overloaded);
    ("computed", Json.of_int s.Telemetry.computed);
    ("cache_hits", Json.of_int s.Telemetry.cache_hits);
    ("journal_hits", Json.of_int s.Telemetry.journal_hits);
    ("dedup_joined", Json.of_int s.Telemetry.dedup_joined);
    ("streamed_items", Json.of_int s.Telemetry.streamed_items);
    ("clients", Json.of_int s.Telemetry.clients);
    ("hit_wall_total_us", fl s.Telemetry.hit_wall_total_s);
    ("hit_wall_max_us", fl s.Telemetry.hit_wall_max_s);
    ("compute_wall_total_us", fl s.Telemetry.compute_wall_total_s);
    ("compute_wall_max_us", fl s.Telemetry.compute_wall_max_s);
    ("pending", Json.of_int pending);
    ("max_pending", Json.of_int s.Telemetry.max_pending);
    ("max_client_queue", Json.of_int s.Telemetry.max_client_queue);
    ("deadline_exceeded", Json.of_int s.Telemetry.deadline_exceeded);
    ("executor_recycles", Json.of_int s.Telemetry.executor_recycles);
    ("client_retries", Json.of_int s.Telemetry.client_retries);
    ("jobs", Json.of_int (Workqueue.jobs t.pool));
    ("pool_depth", Json.of_int (Workqueue.depth t.pool));
    ("pool_submitted", Json.of_int (Workqueue.submitted t.pool));
    ( "models",
      Json.Arr
        (List.map
           (fun s -> Json.Str s)
           Wmm_registry.Registry.model_wire_names) );
  ]

let request_shutdown t =
  Mutex.lock t.s_lock;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.s_ready;
    (* Wake the accept loop's select. *)
    ignore (try Unix.write t.stop_w (Bytes.of_string "x") 0 1 with _ -> 0)
  end;
  Mutex.unlock t.s_lock

(* Derived back-off hint for shed clients: roughly how long until an
   executor should come free, estimated as the current backlog spread
   over the executor pool at the recent mean compute latency.  A cold
   server (nothing computed yet) guesses 50ms/task.  Clamped so a
   burst of cheap work never says "come back now" and a pile of
   pathological work never says "come back next week".  Caller holds
   [s_lock] (for [pending]); s_lock -> m_lock nesting is this
   module's lock order. *)
let suggested_retry_after_ms t =
  let pending = t.pending in
  let computed, total_s =
    with_metrics t.metrics (fun m -> (m.computed, m.compute_wall_total_s))
  in
  let mean_ms =
    if computed = 0 then 50. else 1e3 *. total_s /. float_of_int computed
  in
  let est =
    mean_ms *. float_of_int (pending + 1)
    /. float_of_int (max 1 t.cfg.executors)
  in
  int_of_float (Float.max 25. (Float.min 10_000. est))

(* One parsed request from a client's reader thread. *)
let handle_request t client envelope =
  let { Protocol.req_id = id; request; deadline_ms; retry } = envelope in
  let op = Protocol.op_name request in
  with_metrics t.metrics (fun m ->
      m.requests <- m.requests + 1;
      if retry > 0 then m.client_retries <- m.client_retries + 1);
  let reply payload =
    with_metrics t.metrics (fun m -> m.ok <- m.ok + 1);
    enqueue_out t client (Protocol.response ~id ~op ~seq:0 ~final:true payload)
  in
  match request with
  | Protocol.Ping -> reply [ ("pong", Json.Bool true) ]
  | Protocol.Cache_stats -> reply (cache_stats_payload t)
  | Protocol.Stats -> reply (stats_payload t)
  | Protocol.Shutdown ->
      reply [ ("stopping", Json.Bool true) ];
      request_shutdown t
  | Protocol.Litmus _ | Protocol.Analyze _ | Protocol.Conform _ | Protocol.Lang _ ->
      Mutex.lock t.s_lock;
      if t.stopping || t.pending >= t.cfg.queue_bound then begin
        let retry_after_ms = suggested_retry_after_ms t in
        Mutex.unlock t.s_lock;
        with_metrics t.metrics (fun m -> m.overloaded <- m.overloaded + 1);
        log t "client %d: %s shed (queue full, retry in %dms)" client.c_id op
          retry_after_ms;
        enqueue_out t client (Protocol.overloaded_response ~id ~op ~retry_after_ms)
      end
      else begin
        t.pending <- t.pending + 1;
        with_metrics t.metrics (fun m ->
            if t.pending > m.max_pending then m.max_pending <- t.pending);
        let now = Unix.gettimeofday () in
        let work =
          {
            w_id = id;
            w_req = request;
            w_admitted = now;
            w_deadline_ms = deadline_ms;
            w_deadline =
              Option.map (fun ms -> now +. (float_of_int ms /. 1e3)) deadline_ms;
          }
        in
        let was_empty = Queue.is_empty client.c_inbox in
        Queue.push work client.c_inbox;
        if was_empty then Queue.push client t.rr;
        Condition.signal t.s_ready;
        Mutex.unlock t.s_lock
      end

let handle_line t client line =
  if String.trim line <> "" then
    match Json.parse line with
    | Error e ->
        with_metrics t.metrics (fun m ->
            m.requests <- m.requests + 1;
            m.errors <- m.errors + 1);
        enqueue_out t client (Protocol.error_response ~id:Json.Null ~op:"?" e)
    | Ok v -> (
        match Protocol.parse_request v with
        | Error e ->
            let id = Option.value ~default:Json.Null (Json.member "id" v) in
            let op = Option.value ~default:"?" (Json.str_member "op" v) in
            with_metrics t.metrics (fun m ->
                m.requests <- m.requests + 1;
                m.errors <- m.errors + 1);
            enqueue_out t client (Protocol.error_response ~id ~op e)
        | Ok envelope -> handle_request t client envelope)

let reader_thread t client =
  let ic = Unix.in_channel_of_descr client.c_fd in
  (try
     while not client.c_dead do
       handle_line t client (input_line ic)
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  (* EOF: let queued responses flush, then drop the connection.  Work
     already admitted for this client still executes (its results are
     cached for the next asker); frames to a dead client are dropped
     at enqueue. *)
  close_client client

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                         *)
(* ------------------------------------------------------------------ *)

let spawn_client t fd =
  let client =
    Mutex.lock t.s_lock;
    let id = with_metrics t.metrics (fun m ->
        m.clients <- m.clients + 1;
        m.clients)
    in
    let client =
      {
        c_id = id;
        c_fd = fd;
        c_lock = Mutex.create ();
        c_out = Queue.create ();
        c_out_nonempty = Condition.create ();
        c_out_nonfull = Condition.create ();
        c_out_drained = Condition.create ();
        c_inbox = Queue.create ();
        c_drain_deadline = None;
        c_dead = false;
        c_closed = false;
      }
    in
    t.all_clients <- client :: t.all_clients;
    Mutex.unlock t.s_lock;
    client
  in
  log t "client %d: connected" client.c_id;
  ignore (Thread.create (fun () -> writer_thread client) ());
  ignore (Thread.create (fun () -> reader_thread t client) ())

let accept_loop t =
  let stopping () =
    Mutex.lock t.s_lock;
    let s = t.stopping in
    Mutex.unlock t.s_lock;
    s
  in
  while not (stopping ()) do
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.listen_fd ready && not (stopping ()) then (
          match Unix.accept t.listen_fd with
          | fd, _ -> spawn_client t fd
          | exception Unix.Unix_error _ -> ())
  done

let serve cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception _ -> ());
  let cache =
    match cfg.cache_dir with
    | None -> Cache.disabled
    | Some dir -> Cache.create ~dir ()
  in
  let journal =
    match cfg.cache_dir with
    | None -> None
    | Some dir ->
        let run_id =
          match cfg.run_id with
          | Some id -> id
          | None -> Journal.derived_run_id ~tag:"served" [ Cache.code_version () ]
        in
        let j =
          Journal.open_
            ~dir:(Filename.concat dir "journal")
            ~mode:Journal.Append ~run_id ()
        in
        Printf.eprintf "wmm_served: journal run id %s (%d completed tasks on file)\n%!"
          run_id (Journal.loaded j);
        Some j
  in
  let pool = Workqueue.create ~jobs:cfg.jobs () in
  let engine = Engine.create ~pool ~cache ?journal () in
  (* Bind, replacing a stale socket file from a killed daemon. *)
  (try if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
   with Sys_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      cfg;
      engine;
      pool;
      cache;
      journal;
      inflight = Inflight.create ();
      metrics = metrics_create ();
      s_lock = Mutex.create ();
      s_ready = Condition.create ();
      rr = Queue.create ();
      slots =
        Array.init (max 1 cfg.executors) (fun _ ->
            { x_gen = 0; x_running = None; x_thread = None });
      all_clients = [];
      pending = 0;
      stopping = false;
      wd_stop = false;
      listen_fd;
      stop_r;
      stop_w;
    }
  in
  Printf.eprintf "wmm_served: listening on %s (%d worker domains, %d executors)\n%!"
    cfg.socket_path (Workqueue.jobs pool) cfg.executors;
  Array.iteri
    (fun i slot ->
      slot.x_thread <- Some (Thread.create (fun () -> executor_loop t i 0) ()))
    t.slots;
  let watchdog = Thread.create (fun () -> watchdog_thread t) () in
  accept_loop t;
  (* Shutdown: stop accepting, drain admitted work, flush clients,
     then stop the watchdog (it enforces the client-drain bound, so
     it must outlive close_client).  Executor slots may be handed to
     replacement threads by the watchdog mid-join, so re-snapshot
     until no slot holds a live thread.  Threads disowned by a
     recycle exit on their own (their computation is cancelled) and
     are not joined. *)
  let rec join_executors () =
    Mutex.lock t.s_lock;
    let live =
      Array.to_list t.slots
      |> List.filter_map (fun slot ->
             Option.map (fun th -> (slot, th)) slot.x_thread)
    in
    Mutex.unlock t.s_lock;
    if live <> [] then begin
      List.iter
        (fun (slot, th) ->
          Thread.join th;
          Mutex.lock t.s_lock;
          (match slot.x_thread with
          | Some cur when Thread.id cur = Thread.id th -> slot.x_thread <- None
          | _ -> ());
          Mutex.unlock t.s_lock)
        live;
      join_executors ()
    end
  in
  join_executors ();
  Mutex.lock t.s_lock;
  let clients = t.all_clients in
  Mutex.unlock t.s_lock;
  List.iter close_client clients;
  Mutex.lock t.s_lock;
  t.wd_stop <- true;
  Mutex.unlock t.s_lock;
  Thread.join watchdog;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close stop_r with Unix.Unix_error _ -> ());
  (try Unix.close stop_w with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  Workqueue.shutdown pool;
  Engine.set_server engine (metrics_snapshot t.metrics);
  Option.iter Journal.close journal;
  prerr_endline (Engine.render_summary engine);
  Option.iter
    (fun path ->
      try Engine.write_telemetry engine path
      with Sys_error msg -> Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
    cfg.telemetry_out
