type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          closed = false;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message err))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Closing either channel closes the shared descriptor. *)
    try close_out_noerr t.oc; close_in_noerr t.ic with _ -> ()
  end

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = try Some (input_line t.ic) with End_of_file | Sys_error _ -> None

let is_final line =
  match Json.parse line with
  | Ok v -> Json.bool_member "final" v <> Some false
  | Error _ -> true

let collect t ~finals_expected =
  let rec go acc finals =
    if finals >= finals_expected then Ok (List.rev acc)
    else
      match recv_line t with
      | None -> Error "connection closed mid-response"
      | Some line -> go (line :: acc) (finals + if is_final line then 1 else 0)
  in
  go [] 0

let roundtrip t line =
  send_line t line;
  collect t ~finals_expected:1

let run_batch t lines =
  List.iter (send_line t) lines;
  collect t ~finals_expected:(List.length lines)
