type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          closed = false;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message err))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Closing either channel closes the shared descriptor. *)
    try close_out_noerr t.oc; close_in_noerr t.ic with _ -> ()
  end

let set_timeout t seconds =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = try Some (input_line t.ic) with End_of_file | Sys_error _ -> None

let is_final line =
  match Json.parse line with
  | Ok v -> Json.bool_member "final" v <> Some false
  | Error _ -> true

let collect t ~finals_expected =
  let rec go acc finals =
    if finals >= finals_expected then Ok (List.rev acc)
    else
      match recv_line t with
      | None -> Error "connection closed mid-response"
      | Some line -> go (line :: acc) (finals + if is_final line then 1 else 0)
  in
  go [] 0

let roundtrip t line =
  send_line t line;
  collect t ~finals_expected:1

let run_batch t lines =
  List.iter (send_line t) lines;
  collect t ~finals_expected:(List.length lines)

(* ------------------------------------------------------------------ *)
(* Resilient batch driver: capped seeded-jitter retry on overloaded   *)
(* sheds (honouring the server's retry_after_ms hint) and reconnect-  *)
(* and-replay of unanswered requests when the connection drops.       *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  seed : int;
}

let default_policy =
  { max_attempts = 4; base_delay_s = 0.05; max_delay_s = 2.; seed = 0 }

type batch_outcome = {
  lines : string list;
  retries : int;
  reconnects : int;
  gave_up_overloaded : string list;
}

type pending = {
  p_fields : (string * Json.t) list option;  (* None: unparseable, sent raw *)
  p_raw : string;
  p_key : string;  (* serialized id, the demux key *)
  mutable p_attempts : int;  (* completed sends *)
  mutable p_frames : string list;  (* reversed arrival order *)
  mutable p_state : [ `Waiting | `Answered | `Gave_up ];
}

let id_key id = Json.to_string id

(* Requests the caller sent without an id get one injected: without
   it, replaying "the unanswered requests" after a dropped connection
   would have nothing to demultiplex responses by. *)
let make_pending i line =
  match Json.parse line with
  | Ok (Json.Obj fields) ->
      let fields, id =
        match List.assoc_opt "id" fields with
        | Some id -> (fields, id)
        | None ->
            let id = Json.Str (Printf.sprintf "q%d" i) in
            (fields @ [ ("id", id) ], id)
      in
      { p_fields = Some fields; p_raw = line; p_key = id_key id;
        p_attempts = 0; p_frames = []; p_state = `Waiting }
  | Ok _ | Error _ ->
      (* Sent verbatim; the server's error reply carries id null. *)
      { p_fields = None; p_raw = line; p_key = "null"; p_attempts = 0;
        p_frames = []; p_state = `Waiting }

let render_pending p =
  match p.p_fields with
  | None -> p.p_raw
  | Some fields ->
      let fields = List.remove_assoc "retry" fields in
      let fields =
        if p.p_attempts > 0 then
          fields @ [ ("retry", Json.of_int p.p_attempts) ]
        else fields
      in
      Json.to_string (Json.Obj fields)

let run_resilient ~socket_path ?(policy = default_policy) lines =
  let rng = Wmm_util.Rng.create policy.seed in
  (* Multiplicative jitter in [0.75, 1.25): deterministic for a fixed
     seed, yet a fleet of shed clients with different seeds fans back
     in instead of stampeding on the same tick. *)
  let jitter () = 0.75 +. Wmm_util.Rng.float rng 0.5 in
  let backoff attempt =
    Float.min policy.max_delay_s
      (policy.base_delay_s *. (2. ** float_of_int attempt))
  in
  let pendings = List.mapi make_pending lines in
  let retries = ref 0 and reconnects = ref 0 in
  let conn : t option ref = ref None in
  let drop_conn () =
    (match !conn with Some c -> close c | None -> ());
    conn := None
  in
  let ensure_conn round =
    match !conn with
    | Some c -> Ok c
    | None ->
        if round > 0 then incr reconnects;
        let rec go attempt last_err =
          if attempt >= policy.max_attempts then
            Error
              (Printf.sprintf "cannot connect to %s after %d attempts: %s"
                 socket_path policy.max_attempts last_err)
          else
            match connect ~socket_path with
            | Ok c ->
                conn := Some c;
                Ok c
            | Error e ->
                Unix.sleepf (backoff attempt *. jitter ());
                go (attempt + 1) e
        in
        go 0 "not attempted"
  in
  let waiting () = List.filter (fun p -> p.p_state = `Waiting) pendings in
  let find_waiting key =
    List.find_opt (fun p -> p.p_state = `Waiting && p.p_key = key) pendings
  in
  let rec round n =
    match waiting () with
    | [] ->
        drop_conn ();
        Ok
          {
            lines = List.concat_map (fun p -> List.rev p.p_frames) pendings;
            retries = !retries;
            reconnects = !reconnects;
            gave_up_overloaded =
              List.filter_map
                (fun p -> if p.p_state = `Gave_up then Some p.p_key else None)
                pendings;
          }
    | ws -> (
        (* A request that survived max_attempts sends and still has no
           answer (connections keep dying under it) is a transport
           failure, not something to spin on forever. *)
        match
          List.find_opt (fun p -> p.p_attempts >= policy.max_attempts) ws
        with
        | Some p ->
            drop_conn ();
            Error
              (Printf.sprintf
                 "request %s unanswered after %d attempts (connection kept \
                  dropping)"
                 p.p_key p.p_attempts)
        | None -> (
            match ensure_conn n with
            | Error e -> Error e
            | Ok c ->
                List.iter
                  (fun p ->
                    (* A replayed request restreams from scratch:
                       partial frames of the aborted attempt must go. *)
                    p.p_frames <- [];
                    if p.p_attempts > 0 then incr retries;
                    let line = render_pending p in
                    p.p_attempts <- p.p_attempts + 1;
                    match send_line c line with
                    | () -> ()
                    | exception _ -> () (* EOF surfaces in the recv loop *))
                  ws;
                let in_flight = ref (List.length ws) in
                let eof = ref false in
                let max_hint_s = ref 0. in
                let sheds = ref 0 in
                while !in_flight > 0 && not !eof do
                  match recv_line c with
                  | None -> eof := true
                  | Some frame -> (
                      let v = Json.parse frame in
                      let key =
                        match v with
                        | Ok obj ->
                            id_key
                              (Option.value ~default:Json.Null
                                 (Json.member "id" obj))
                        | Error _ -> "null"
                      in
                      match find_waiting key with
                      | None -> () (* stale frame of an aborted attempt *)
                      | Some p -> (
                          let status =
                            match v with
                            | Ok obj -> Json.str_member "status" obj
                            | Error _ -> None
                          in
                          match status with
                          | Some "overloaded" ->
                              decr in_flight;
                              incr sheds;
                              let hint_ms =
                                match v with
                                | Ok obj -> (
                                    match Json.member "retry_after_ms" obj with
                                    | Some (Json.Num f) -> f
                                    | _ -> 0.)
                                | Error _ -> 0.
                              in
                              max_hint_s :=
                                Float.max !max_hint_s (hint_ms /. 1e3);
                              if p.p_attempts >= policy.max_attempts then begin
                                p.p_frames <- [ frame ];
                                p.p_state <- `Gave_up
                              end
                          | _ ->
                              p.p_frames <- frame :: p.p_frames;
                              if is_final frame then begin
                                p.p_state <- `Answered;
                                decr in_flight
                              end))
                done;
                if !eof then drop_conn ();
                (if !sheds > 0 then
                   let d =
                     Float.max !max_hint_s (backoff n) *. jitter ()
                   in
                   Unix.sleepf (Float.min policy.max_delay_s d)
                 else if !eof && waiting () <> [] then
                   Unix.sleepf (backoff n *. jitter ()));
                round (n + 1)))
  in
  round 0
