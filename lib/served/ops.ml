open Wmm_model
open Wmm_litmus
module Engine = Wmm_engine.Engine
module Task = Wmm_engine.Task

let obj fields = Json.to_string (Json.Obj fields)

(* ------------------------------------------------------------------ *)
(* litmus *)

let machine_config_for_model = function
  | Axiomatic.Sc -> Wmm_machine.Relaxed.sc_config
  | Axiomatic.Tso -> Wmm_machine.Relaxed.tso_config
  | Axiomatic.Arm | Axiomatic.Power -> Wmm_machine.Relaxed.relaxed_config

let resolve_litmus_tests ~tests ~program =
  match program with
  | Some text -> (
      match Parse.parse text with
      | Ok p -> [ (p.Parse.test, true) ]
      | Error e -> failwith (Printf.sprintf "program: %s" e))
  | None -> (
      match tests with
      | [] -> List.map (fun t -> (t, false)) Library.all
      | names ->
          List.map
            (fun name ->
              match Library.by_name name with
              | Some t -> (t, false)
              | None -> failwith (Printf.sprintf "unknown litmus test %S" name))
            names)

(* Mirrors the one-shot CLI's selection: annotated models for library
   tests; for inline programs (no annotations) the requested model or
   the weak-model pair. *)
let models_for ~requested ~from_program test =
  match requested with
  | Some m -> [ m ]
  | None ->
      List.filter
        (fun m ->
          Test.expected_under test m <> None
          || (from_program && (m = Axiomatic.Arm || m = Axiomatic.Power)))
        Axiomatic.all_models

let verdict_item v =
  let open Check in
  obj
    [
      ("test", Json.Str v.test.Test.name);
      ("model", Json.Str (Protocol.model_wire_name v.model));
      ("axiomatic_allowed", Json.Bool v.axiomatic_allowed);
      ( "expected",
        match v.expected with Some b -> Json.Bool b | None -> Json.Null );
      ("observed", Json.Bool v.observed);
      ("observations", Json.of_int v.observations);
      ("total", Json.of_int v.total);
      ("sound", Json.Bool (Check.sound v));
      ("describe", Json.Str (Check.describe v));
    ]

let run_litmus ~engine ~tests ~program ~model ~mode =
  let selected = resolve_litmus_tests ~tests ~program in
  let pairs =
    List.concat_map
      (fun (test, from_program) ->
        List.map
          (fun m -> (test, m, from_program))
          (models_for ~requested:model ~from_program test))
      selected
  in
  let mode_key =
    match mode with
    | Protocol.Exhaustive -> "exhaustive"
    | Protocol.Random n -> Printf.sprintf "random:%d" n
  in
  let task_of (test, m, from_program) =
    let content =
      (* Library tests are keyed by unique name; inline programs by a
         digest of their rendered form (names may collide). *)
      if from_program then Digest.to_hex (Digest.string (Parse.to_text test))
      else test.Test.name
    in
    let key =
      Printf.sprintf "served/litmus/v1|%s|%s|%s" content
        (Protocol.model_wire_name m) mode_key
    in
    Task.pure ~key ~label:("litmus " ^ test.Test.name) (fun () ->
        let config = machine_config_for_model m in
        let v =
          match mode with
          | Protocol.Exhaustive -> Check.run_exhaustive m config test
          | Protocol.Random iterations -> Check.run_random ~iterations m config test
        in
        verdict_item v)
  in
  let outcomes = Engine.run_all engine (Array.of_list (List.map task_of pairs)) in
  Array.to_list (Array.map Engine.get outcomes)

(* ------------------------------------------------------------------ *)
(* analyze *)

let resolve_library_tests = function
  | [] -> Library.all
  | names ->
      List.map
        (fun name ->
          match Library.by_name name with
          | Some t -> t
          | None -> failwith (Printf.sprintf "unknown litmus test %S" name))
        names

let run_analyze ~engine ~tests ~arch ~cost =
  let tests = resolve_library_tests tests in
  let rows = Wmm_analysis.Infer.analyze_all ~with_cost:cost ~engine ~arch tests in
  List.map
    (fun row ->
      let open Wmm_analysis.Infer in
      let extra =
        match row.status with
        | Inferred inf ->
            [
              ("cycles", Json.of_int inf.cycle_count);
              ("delays", Json.of_int inf.delay_count);
              ("witnesses_ok", Json.Bool inf.witnesses_ok);
            ]
        | _ -> []
      in
      obj
        ([
           ("test", Json.Str row.test.Test.name);
           ("arch", Json.Str (Wmm_isa.Arch.name row.arch));
           ("model", Json.Str (Protocol.model_wire_name row.model));
           ("status", Json.Str (status_string row.status));
         ]
        @ extra))
    rows

(* ------------------------------------------------------------------ *)
(* conform *)

let run_conform ~engine ~arch ~max_edges ~limit ~infer_limit =
  let family = Wmm_synth.Synth.generate ~max_edges arch in
  let tests =
    List.filteri
      (fun i _ -> limit = 0 || i < limit)
      (List.map (fun g -> g.Wmm_synth.Synth.g_test) family)
  in
  let report =
    Wmm_synth.Conform.run
      ~config:{ Wmm_synth.Conform.default_config with infer_limit }
      ~engine ~arch tests
  in
  let open Wmm_synth.Conform in
  let summary =
    obj
      [
        ("arch", Json.Str (Wmm_isa.Arch.name report.arch));
        ("tests", Json.of_int report.tests);
        ("explore_checks", Json.of_int report.explore_checks);
        ("machine_checks", Json.of_int report.machine_checks);
        ("machine_skipped", Json.of_int report.machine_skipped);
        ("infer_checks", Json.of_int report.infer_checks);
        ("disagreements", Json.of_int (List.length report.disagreements));
      ]
  in
  let disagreement d =
    obj
      [
        ("layer", Json.Str (layer_name d.layer));
        ( "model",
          match d.model with
          | Some m -> Json.Str (Protocol.model_wire_name m)
          | None -> Json.Null );
        ("test", Json.Str d.test.Test.name);
        ("detail", Json.Str d.detail);
        ("shrunk", Json.Str (Parse.to_text ~arch:report.arch d.shrunk));
      ]
  in
  summary :: List.map disagreement report.disagreements

(* ------------------------------------------------------------------ *)

let compute ~engine = function
  | Protocol.Litmus { tests; program; model; mode } ->
      run_litmus ~engine ~tests ~program ~model ~mode
  | Protocol.Analyze { tests; arch; cost } -> run_analyze ~engine ~tests ~arch ~cost
  | Protocol.Conform { arch; max_edges; limit; infer_limit } ->
      run_conform ~engine ~arch ~max_edges ~limit ~infer_limit
  | req -> invalid_arg ("Ops.compute: non-cacheable op " ^ Protocol.op_name req)
