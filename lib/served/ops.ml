open Wmm_model
open Wmm_litmus
module Engine = Wmm_engine.Engine
module Task = Wmm_engine.Task

let obj fields = Json.to_string (Json.Obj fields)

(* ------------------------------------------------------------------ *)
(* litmus *)

let machine_config_for_model = function
  | Axiomatic.Sc -> Wmm_machine.Relaxed.sc_config
  | Axiomatic.Tso -> Wmm_machine.Relaxed.tso_config
  | Axiomatic.Arm | Axiomatic.Power -> Wmm_machine.Relaxed.relaxed_config
  (* No machine implements the language tier; the SC machine's
     outcomes are a sound subset of the RC11-allowed set. *)
  | Axiomatic.Rc11 -> Wmm_machine.Relaxed.sc_config

let resolve_litmus_tests ~tests ~program =
  match program with
  | Some text -> (
      match Parse.parse text with
      | Ok p -> [ (p.Parse.test, true) ]
      | Error e -> failwith (Printf.sprintf "program: %s" e))
  | None -> (
      match tests with
      | [] -> List.map (fun t -> (t, false)) Library.all
      | names ->
          List.map
            (fun name ->
              match Library.by_name name with
              | Some t -> (t, false)
              | None -> failwith (Printf.sprintf "unknown litmus test %S" name))
            names)

(* Mirrors the one-shot CLI's selection: annotated models for library
   tests; for inline programs (no annotations) the requested model or
   the weak-model pair. *)
let models_for ~requested ~from_program test =
  match requested with
  | Some m -> [ m ]
  | None ->
      List.filter
        (fun m ->
          Test.expected_under test m <> None
          || (from_program && (m = Axiomatic.Arm || m = Axiomatic.Power)))
        Axiomatic.all_models

let verdict_item ?certificate v =
  let open Check in
  let cert_fields =
    match certificate with
    | None -> []
    | Some (Ok cert) ->
        [ ("certificate", Json.Str (Wmm_cert.Certificate.to_string cert)) ]
    | Some (Error msg) -> [ ("certificate_error", Json.Str msg) ]
  in
  obj
    ([
      ("test", Json.Str v.test.Test.name);
      ("model", Json.Str (Protocol.model_wire_name v.model));
      ("axiomatic_allowed", Json.Bool v.axiomatic_allowed);
      ( "expected",
        match v.expected with Some b -> Json.Bool b | None -> Json.Null );
      ("observed", Json.Bool v.observed);
      ("observations", Json.of_int v.observations);
      ("total", Json.of_int v.total);
      ("sound", Json.Bool (Check.sound v));
      ("describe", Json.Str (Check.describe v));
    ]
    @ cert_fields)

let run_litmus ~engine ~tests ~program ~model ~mode ~certify =
  let selected = resolve_litmus_tests ~tests ~program in
  let pairs =
    List.concat_map
      (fun (test, from_program) ->
        List.map
          (fun m -> (test, m, from_program))
          (models_for ~requested:model ~from_program test))
      selected
  in
  let mode_key =
    match mode with
    | Protocol.Exhaustive -> "exhaustive"
    | Protocol.Random n -> Printf.sprintf "random:%d" n
  in
  let task_of (test, m, from_program) =
    let content =
      (* Library tests are keyed by unique name; inline programs by a
         digest of their rendered form (names may collide). *)
      if from_program then Digest.to_hex (Digest.string (Parse.to_text test))
      else test.Test.name
    in
    let key =
      (* v2: the certify flag entered the key (certified and plain
         results have different payloads and must not alias). *)
      Printf.sprintf "served/litmus/v2|%s|%s|%s|certify=%b" content
        (Protocol.model_wire_name m) mode_key certify
    in
    Task.pure ~key ~label:("litmus " ^ test.Test.name) (fun () ->
        let config = machine_config_for_model m in
        let v =
          match mode with
          | Protocol.Exhaustive -> Check.run_exhaustive m config test
          | Protocol.Random iterations -> Check.run_random ~iterations m config test
        in
        let certificate =
          if certify then Some (Wmm_certify.Emit.litmus m test) else None
        in
        verdict_item ?certificate v)
  in
  let outcomes = Engine.run_all engine (Array.of_list (List.map task_of pairs)) in
  Array.to_list (Array.map Engine.get outcomes)

(* ------------------------------------------------------------------ *)
(* analyze *)

let resolve_library_tests = function
  | [] -> Library.all
  | names ->
      List.map
        (fun name ->
          match Library.by_name name with
          | Some t -> t
          | None -> failwith (Printf.sprintf "unknown litmus test %S" name))
        names

let run_analyze ~engine ~tests ~arch ~cost =
  let tests = resolve_library_tests tests in
  let rows = Wmm_analysis.Infer.analyze_all ~with_cost:cost ~engine ~arch tests in
  List.map
    (fun row ->
      let open Wmm_analysis.Infer in
      let extra =
        match row.status with
        | Inferred inf ->
            [
              ("cycles", Json.of_int inf.cycle_count);
              ("delays", Json.of_int inf.delay_count);
              ("witnesses_ok", Json.Bool inf.witnesses_ok);
            ]
        | _ -> []
      in
      obj
        ([
           ("test", Json.Str row.test.Test.name);
           ("arch", Json.Str (Wmm_isa.Arch.name row.arch));
           ("model", Json.Str (Protocol.model_wire_name row.model));
           ("status", Json.Str (status_string row.status));
         ]
        @ extra))
    rows

(* ------------------------------------------------------------------ *)
(* conform *)

let run_conform ~engine ~arch ~max_edges ~limit ~infer_limit ~explorer =
  let family = Wmm_synth.Synth.generate ~max_edges arch in
  let tests =
    List.filteri
      (fun i _ -> limit = 0 || i < limit)
      (List.map (fun g -> g.Wmm_synth.Synth.g_test) family)
  in
  let report =
    Wmm_synth.Conform.run
      ~config:{ Wmm_synth.Conform.default_config with infer_limit; explorer }
      ~engine ~arch tests
  in
  let open Wmm_synth.Conform in
  let summary =
    obj
      [
        ("arch", Json.Str (Wmm_isa.Arch.name report.arch));
        ("tests", Json.of_int report.tests);
        ("explore_checks", Json.of_int report.explore_checks);
        ("machine_checks", Json.of_int report.machine_checks);
        ("machine_skipped", Json.of_int report.machine_skipped);
        ("infer_checks", Json.of_int report.infer_checks);
        ("cert_checks", Json.of_int report.cert_checks);
        ("cert_skipped", Json.of_int report.cert_skipped);
        ("disagreements", Json.of_int (List.length report.disagreements));
      ]
  in
  let disagreement d =
    obj
      [
        ("layer", Json.Str (layer_name d.layer));
        ( "model",
          match d.model with
          | Some m -> Json.Str (Protocol.model_wire_name m)
          | None -> Json.Null );
        ("test", Json.Str d.test.Test.name);
        ("detail", Json.Str d.detail);
        ("shrunk", Json.Str (Parse.to_text ~arch:report.arch d.shrunk));
      ]
  in
  summary :: List.map disagreement report.disagreements

(* ------------------------------------------------------------------ *)
(* lang *)

let resolve_schemes ~default = function
  | [] -> default
  | names ->
      List.map
        (fun name ->
          match Wmm_lang.Compile.scheme_of_string name with
          | Some s -> s
          | None -> failwith (Printf.sprintf "unknown compilation scheme %S" name))
        names

(* A lang test name resolves against the lock suite first, then the
   litmus library (lifted to C11 accesses). *)
let resolve_lang_tests ~default names =
  match names with
  | [] -> default ()
  | names ->
      List.map
        (fun name ->
          let base =
            if Filename.check_suffix name "+c11" then Filename.chop_suffix name "+c11"
            else name
          in
          match Wmm_lang.Locks.by_name name with
          | Some l -> Wmm_lang.Locks.test_of l
          | None -> (
              match Library.by_name base with
              | Some t -> Wmm_lang.C11.lift_test t
              | None -> failwith (Printf.sprintf "unknown lang test %S" name)))
        names

let cap limit tests = List.filteri (fun i _ -> limit = 0 || i < limit) tests

let run_lang ~engine ~action ~tests ~schemes ~limit =
  let open Wmm_lang in
  match action with
  | Protocol.L_explore ->
      ignore engine;
      let battery =
        cap limit
          (resolve_lang_tests ~default:(fun () -> List.map Locks.test_of Locks.all)
             tests)
      in
      List.map
        (fun (t : Test.t) ->
          let outcomes =
            Wmm_model.Enumerate.allowed_outcomes Wmm_model.Axiomatic.Rc11
              t.Test.program
          in
          obj
            [
              ("test", Json.Str t.Test.name);
              ("model", Json.Str "rc11");
              ("outcomes", Json.of_int (List.length outcomes));
              ( "witness_reachable",
                Json.Bool
                  (Wmm_model.Enumerate.outcome_allowed Wmm_model.Axiomatic.Rc11
                     t.Test.program
                     {
                       Wmm_model.Enumerate.registers = t.Test.condition;
                       memory = t.Test.mem_condition;
                     }) );
            ])
        battery
  | Protocol.L_conform ->
      let schemes = resolve_schemes ~default:Compile.all_schemes schemes in
      let battery =
        cap limit
          (resolve_lang_tests
             ~default:(fun () ->
               List.map C11.lift_test Library.all @ List.map Locks.test_of Locks.all)
             tests)
      in
      let report = Contain.run ~schemes ~engine battery in
      let summary =
        obj
          [
            ("tests", Json.of_int report.Contain.tests);
            ("checks", Json.of_int report.Contain.checks);
            ("skipped", Json.of_int report.Contain.skipped);
            ( "violations",
              Json.of_int (List.length report.Contain.disagreements) );
          ]
      in
      let disagreement (d : Wmm_synth.Conform.disagreement) =
        obj
          [
            ("layer", Json.Str (Wmm_synth.Conform.layer_name d.Wmm_synth.Conform.layer));
            ("test", Json.Str d.Wmm_synth.Conform.test.Test.name);
            ("detail", Json.Str d.Wmm_synth.Conform.detail);
          ]
      in
      summary :: List.map disagreement report.Contain.disagreements
  | Protocol.L_rank ->
      let schemes = resolve_schemes ~default:Rank.default_schemes schemes in
      let locks =
        match tests with
        | [] -> Locks.all
        | names ->
            List.map
              (fun name ->
                match Locks.by_name name with
                | Some l -> l
                | None -> failwith (Printf.sprintf "unknown lock %S" name))
              names
      in
      let rows = Rank.run ~schemes ~locks ~engine () in
      List.map
        (fun r ->
          obj
            [
              ("scheme", Json.Str (Compile.scheme_name r.Rank.scheme));
              ("lock", Json.Str r.Rank.lock);
              ("broken", Json.of_int r.Rank.broken);
              ("total", Json.of_int r.Rank.total);
              ("default_safe", Json.Bool r.Rank.default_safe);
              ("line", Json.Str (Rank.row_line r));
            ])
        rows

(* ------------------------------------------------------------------ *)

let compute ~engine = function
  | Protocol.Litmus { tests; program; model; mode; certify } ->
      run_litmus ~engine ~tests ~program ~model ~mode ~certify
  | Protocol.Analyze { tests; arch; cost } -> run_analyze ~engine ~tests ~arch ~cost
  | Protocol.Conform { arch; max_edges; limit; infer_limit; engine = explorer } ->
      run_conform ~engine ~arch ~max_edges ~limit ~infer_limit ~explorer
  | Protocol.Lang { action; tests; schemes; limit } ->
      run_lang ~engine ~action ~tests ~schemes ~limit
  | req -> invalid_arg ("Ops.compute: non-cacheable op " ^ Protocol.op_name req)
