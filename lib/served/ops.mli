(** Execution of cacheable requests against the shared engine.

    Each request computes to a list of {e items} - serialized JSON
    objects, one per result row - which is what gets cached,
    journaled and streamed: the server frames each item in a
    response envelope by splicing ({!Json.Raw}), so replayed items
    never need re-parsing.

    [compute] must only be called from a server executor thread,
    never from inside a {!Wmm_engine.Workqueue} worker: it submits
    engine batches to the shared pool and awaits them, and a worker
    awaiting its own queue deadlocks. *)

val compute : engine:Wmm_engine.Engine.t -> Protocol.request -> string list
(** Raises [Failure] on semantic errors surviving protocol-level
    validation (unknown test name, malformed program text, failed
    engine task) and [Invalid_argument] on non-cacheable requests. *)
