open Wmm_model
open Wmm_isa

(** The wire protocol of the exploration service.

    Framing is newline-delimited JSON: every request and every
    response is one JSON object on one line, UTF-8, terminated by
    ['\n'].  A connection carries any number of requests; responses
    to one request may span several objects (streaming), matched to
    their request by the echoed [id] and ordered by [seq], with
    [final: true] marking the last.  Responses to {e different}
    requests may interleave freely - clients must demultiplex by
    [id].  The full schema is documented in DESIGN.md §13. *)

val schema_version : int
(** Protocol schema version, echoed as ["v"] in every response.
    Bumped on any incompatible change to request or response
    shapes. *)

type litmus_mode = Exhaustive | Random of int  (** iterations *)

type lang_action = L_explore | L_conform | L_rank

type request =
  | Litmus of {
      tests : string list;  (** Library names; [[]] = the whole library. *)
      program : string option;
          (** Litmus-format source text; overrides [tests]. *)
      model : Axiomatic.model option;  (** [None] = every annotated model. *)
      mode : litmus_mode;
      certify : bool;
          (** Attach a proof-carrying certificate (checkable with
              [wmm_bench check]) to every axiomatic verdict. *)
    }
  | Analyze of { tests : string list; arch : Arch.t; cost : bool }
      (** [tests = []] analyses the whole library. *)
  | Conform of {
      arch : Arch.t;
      max_edges : int;
      limit : int;
      infer_limit : int;
      engine : Enumerate.engine_kind;
          (** Exploration engine for the explore layer; part of the
              canonical key. *)
    }
  | Lang of {
      action : lang_action;
      tests : string list;
          (** Lock-suite or litmus-library names; [[]] = the default
              battery (the lock suite, plus the lifted library for
              [conform]). *)
      schemes : string list;  (** Compilation schemes; [[]] = defaults. *)
      limit : int;  (** Battery cap; [0] = unbounded. *)
    }
  | Cache_stats
  | Stats
  | Ping
  | Shutdown

type envelope = {
  req_id : Json.t;  (** Echoed verbatim; [Null] when the client sent none. *)
  request : request;
  deadline_ms : int option;
      (** Per-request deadline.  A request still unanswered this many
          milliseconds after admission is answered with a
          [deadline_exceeded] frame and its computation cancelled.
          Delivery-only: not part of the canonical key. *)
  retry : int;
      (** Client-side retry count (0 = first send).  Delivery-only
          bookkeeping surfaced in the server's [client_retries]
          telemetry counter; not part of the canonical key. *)
}

val parse_request : Json.t -> (envelope, string) result
(** Validate one request object: the required [op] field dispatches,
    op-specific fields are checked for type and, where cheap, for
    validity (unknown ops, unknown models/archs and malformed
    programs are rejected here, before any queueing). *)

val op_name : request -> string
(** The wire [op] string for a request. *)

val cacheable : request -> bool
(** Whether responses may be cached / journaled / deduplicated:
    [true] for the pure computations
    ([litmus]/[analyze]/[conform]/[lang]),
    [false] for control and introspection ops. *)

val canonical_key : request -> string
(** A canonical content key for a cacheable request: independent of
    field order, request id, and client, so identical queries from
    different clients share cache entries and in-flight runs.  The
    key embeds the protocol schema version.  Raises [Invalid_argument]
    on non-cacheable requests. *)

val model_of_string : string -> Axiomatic.model option
(** Accepts the wire names [sc]/[tso]/[arm]/[power] (any case) plus
    the display names {!Axiomatic.model_name} produces. *)

val model_wire_name : Axiomatic.model -> string
(** Lower-case wire name, e.g. [Arm] -> ["arm"]. *)

val response :
  id:Json.t ->
  op:string ->
  seq:int ->
  final:bool ->
  ?status:string ->
  ?served_from:string ->
  ?wall_us:float ->
  (string * Json.t) list ->
  string
(** Assemble one response line (without the trailing newline):
    envelope fields ([v], [id], [op], [seq], [final], [status] -
    default ["ok"]) followed by the payload fields. *)

val error_response : id:Json.t -> op:string -> string -> string
(** A single-object [status: "error"] response carrying the message. *)

val overloaded_response : id:Json.t -> op:string -> retry_after_ms:int -> string
(** The structured shed reply: [status: "overloaded"] plus a
    [retry_after_ms] hint; no computation was queued. *)

val deadline_exceeded_response :
  id:Json.t -> op:string -> deadline_ms:int -> elapsed_ms:int -> string
(** The watchdog's reply for a request that overran its
    [deadline_ms]: [status: "deadline_exceeded"] plus the configured
    deadline and the elapsed time at detection.  The underlying
    computation has been cancelled (or its executor quarantined); the
    result, if one ever materialises, is discarded. *)
