open Wmm_isa
(** Exhaustive enumeration of candidate executions for litmus
    programs (a small herd-style engine).

    The enumeration proceeds in two phases.  Phase one discovers the
    set of values each location can carry by interpreting every
    thread against a growing value pool until fixpoint (this handles
    stores whose value or address depends on loaded values, as in
    dependency litmus tests).  Phase two generates, for every
    combination of per-load value choices, the thread event
    sequences with their address / data / control dependencies, then
    searches the space of reads-from assignments and coherence
    orders.  The search is a backtracking construction - rf edges are
    assigned read by read (fewest candidates first), then each
    location's coherence order is grown one write at a time - and
    every step is screened by {!Axiomatic.prune_viable}, which cuts a
    subtree as soon as the model's monotone core acquires a cycle.
    Complete candidates get the full consistency check, so results
    are identical to the generate-and-filter {!Reference} path. *)

type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
      (** Final value of every register written by each thread,
          sorted by (thread, register). *)
  memory : (Instr.loc * Instr.value) list;  (** Sorted by location. *)
}

val compare_outcome : outcome -> outcome -> int

val pp_outcome : Program.t -> Format.formatter -> outcome -> unit

val outcome_to_string : Program.t -> outcome -> string

type stats = {
  generated : int;  (** Complete candidates the search reached. *)
  pruned : int;  (** Subtrees cut by {!Axiomatic.prune_viable}. *)
  well_formed : int;
      (** Complete candidates that are well-formed (equal to
          [generated] on the search path, which is well-formed by
          construction; distinct on the reference path). *)
  consistent : int;  (** Candidates the model allows. *)
  wall_s : float;  (** Wall-clock seconds spent exploring. *)
}

val candidate_executions :
  ?fuel:int -> Program.t -> (Execution.t * outcome) list
(** All well-formed candidate executions with their final states.
    [fuel] caps interpreted steps per thread (default 1024) so
    accidentally looping programs fail fast: exceeding it raises
    [Failure]. *)

val allowed_outcomes : Axiomatic.model -> Program.t -> outcome list
(** Deduplicated, sorted final states of the model-consistent
    candidates. *)

val allowed_outcomes_stats :
  ?fuel:int -> Axiomatic.model -> Program.t -> outcome list * stats
(** [allowed_outcomes] plus the exploration counters for this call. *)

val exists_outcome :
  ?fuel:int -> Axiomatic.model -> Program.t -> (outcome -> bool) -> bool
(** Whether any model-consistent candidate's final state satisfies
    the predicate.  Stops at the first witness, so forbidden-outcome
    checks on permissive models return as soon as the outcome is
    found rather than enumerating the full space. *)

val outcome_allowed : Axiomatic.model -> Program.t -> outcome -> bool
(** Membership test used by the litmus checker.  Register values not
    mentioned in [outcome.registers] are ignored (partial match);
    same for memory.  Early-exits via {!exists_outcome}. *)

val global_stats : unit -> stats
(** Cumulative exploration counters since start (or the last
    {!reset_global_stats}).  Thread/domain-safe; harnesses snapshot
    this into run telemetry. *)

val reset_global_stats : unit -> unit

(** The pre-rewrite generate-and-filter path: materialize the full
    cartesian product of rf choices and per-location co permutations,
    filter by well-formedness, then filter by the model.  Kept as the
    oracle for golden tests and as the baseline the perf benchmark
    measures the search against. *)
module Reference : sig
  val permutations : 'a list -> 'a list list
  (** All permutations; duplicate elements are kept positionally
      distinct (a list of length [n] always yields [n!] entries). *)

  val cartesian : 'a list list -> 'a list list

  val candidate_executions :
    ?fuel:int -> Program.t -> (Execution.t * outcome) list

  val allowed_outcomes : Axiomatic.model -> Program.t -> outcome list
end
