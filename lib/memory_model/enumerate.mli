open Wmm_isa
(** Exhaustive enumeration of candidate executions for litmus
    programs (a small herd-style engine).

    The enumeration proceeds in two phases.  Phase one discovers the
    set of values each location can carry by interpreting every
    thread against a growing value pool until fixpoint (this handles
    stores whose value or address depends on loaded values, as in
    dependency litmus tests).  Phase two generates, for every
    combination of per-load value choices, the thread event
    sequences with their address / data / control dependencies, then
    explores the space of reads-from assignments and coherence orders
    with one of three engines:

    - [Pruned]: backtracking construction - rf edges assigned read by
      read (fewest candidates first), then each location's coherence
      order grown one write at a time - with every step screened by
      {!Axiomatic.prune_viable} and a full consistency check at the
      leaves.
    - [Graph]: incremental execution-graph enumeration - events are
      added in program order, reads extend the graph with rf choices
      (future writes via promised "revisit" edges), writes pick
      coherence insertion points - with the model's complete monotone
      consistency check at every step, so each maximal consistent
      execution is reached exactly once and no leaf is wasted.
      Structurally identical threads are quotiented by symmetry
      ({!Symmetry}) and the outcome set re-expanded.
    - [Reference]: the pre-rewrite generate-and-filter oracle.

    [Auto] (the default) routes tiny tests to the pruned engine -
    below the cutover its cheaper per-node screen beats the graph
    engine's per-step full checks - and everything else to the graph
    engine. *)

type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
      (** Final value of every register written by each thread,
          sorted by (thread, register). *)
  memory : (Instr.loc * Instr.value) list;  (** Sorted by location. *)
}

val compare_outcome : outcome -> outcome -> int

val pp_outcome : Program.t -> Format.formatter -> outcome -> unit

val outcome_to_string : Program.t -> outcome -> string

(** {2 Engine selection} *)

type engine_kind =
  | Pruned  (** backtracking rf/co search with monotone-core pruning *)
  | Graph  (** incremental execution-graph enumeration (optimal) *)
  | Reference  (** generate-and-filter oracle *)
  | Auto  (** cutover: pruned below a candidate-count threshold, graph above *)

val all_engines : engine_kind list

val engine_name : engine_kind -> string

val engine_of_string : string -> engine_kind option

val set_default_engine : engine_kind -> unit
(** Set the ambient engine used when a call site passes no [?engine].
    CLIs call this once, before spawning worker domains, so every
    downstream consumer (Check, Conform, Infer, served ops) inherits
    the choice.  Defaults to [Auto]. *)

val current_default_engine : unit -> engine_kind

val cutover_threshold : unit -> float
(** The [Auto] cutover on the estimated unpruned candidate count
    (sum over run combos of rf-choice x coherence-permutation
    products).  Default 2048; override with [WMM_GRAPH_CUTOVER]. *)

type stats = {
  generated : int;  (** Complete candidates the search reached. *)
  pruned : int;  (** Subtrees cut by the per-step screens. *)
  well_formed : int;
      (** Complete candidates that are well-formed (equal to
          [generated] on the search paths, which are well-formed by
          construction; distinct on the reference path). *)
  consistent : int;  (** Candidates the model allows. *)
  graph_executions : int;
      (** Leaves of the graph engine; every one is consistent, so
          this equals [consistent] on graph-engine calls. *)
  revisits : int;
      (** Graph engine: rf promises to writes not yet in the graph. *)
  symmetry_skips : int;
      (** Graph engine: coherence insertion points skipped by the
          symmetry canonicity constraint. *)
  cutover_small : int;
      (** Programs [Auto] routed to the pruned engine. *)
  wall_s : float;  (** Wall-clock seconds spent exploring. *)
}

val zero_stats : stats

val candidate_executions :
  ?fuel:int -> Program.t -> (Execution.t * outcome) list
(** All well-formed candidate executions with their final states.
    [fuel] caps interpreted steps per thread (default 1024) so
    accidentally looping programs fail fast: exceeding it raises
    [Failure]. *)

val allowed_outcomes :
  ?engine:engine_kind -> Axiomatic.model -> Program.t -> outcome list
(** Deduplicated, sorted final states of the model-consistent
    candidates.  [engine] overrides the ambient default; every engine
    returns the same set (CI-asserted against {!Reference}). *)

val allowed_outcomes_stats :
  ?fuel:int ->
  ?engine:engine_kind ->
  Axiomatic.model ->
  Program.t ->
  outcome list * stats
(** [allowed_outcomes] plus the exploration counters for this call. *)

val exists_outcome :
  ?fuel:int ->
  ?engine:engine_kind ->
  Axiomatic.model ->
  Program.t ->
  (outcome -> bool) ->
  bool
(** Whether any model-consistent candidate's final state satisfies
    the predicate.  Stops at the first witness, so forbidden-outcome
    checks on permissive models return as soon as the outcome is
    found rather than enumerating the full space. *)

val outcome_allowed :
  ?engine:engine_kind -> Axiomatic.model -> Program.t -> outcome -> bool
(** Membership test used by the litmus checker.  Register values not
    mentioned in [outcome.registers] are ignored (partial match);
    same for memory.  Early-exits via {!exists_outcome}. *)

val global_stats : unit -> stats
(** Cumulative exploration counters since start (or the last
    {!reset_global_stats}).  Thread/domain-safe; harnesses snapshot
    this into run telemetry. *)

val reset_global_stats : unit -> unit

(** The pre-rewrite generate-and-filter path: materialize the full
    cartesian product of rf choices and per-location co permutations,
    filter by well-formedness, then filter by the model.  Kept as the
    oracle for golden tests and as the baseline the perf benchmark
    measures the search against. *)
module Reference : sig
  val permutations : 'a list -> 'a list list
  (** All permutations; duplicate elements are kept positionally
      distinct (a list of length [n] always yields [n!] entries). *)

  val cartesian : 'a list list -> 'a list list

  val candidate_executions :
    ?fuel:int -> Program.t -> (Execution.t * outcome) list

  val allowed_outcomes : Axiomatic.model -> Program.t -> outcome list
end
