open Wmm_isa
(** Axiomatic consistency predicates.

    Five models are provided:

    - [Sc]: sequential consistency — acyclic(po U com).
    - [Tso]: total store order (x86-style) — SC-per-location plus
      acyclicity of ppo U rfe U co U fr where ppo drops write->read
      pairs unless restored by a full fence.
    - [Arm]: the ARMv8 "external consistency" style model —
      SC-per-location plus acyclicity of the ordered-before relation
      (observed-external U dependency-ordered U barrier-ordered).
      ARMv8 is other-multi-copy-atomic, which this captures.
    - [Power]: the herding-cats POWER model — SC-per-location,
      no-thin-air (acyclic hb), observation (irreflexive
      fre;prop;hb^* ), propagation (acyclic co U prop).  POWER is
      non-multi-copy-atomic: IRIW with address dependencies stays
      allowed, unlike ARMv8.
    - [Rc11]: the C11/RC11 language-level model (see {!Rc11}) —
      coherence (irreflexive hb;eco?), atomicity, SC (acyclic psc)
      and no-thin-air as acyclicity of po U rf, over access modes
      rlx/acq/rel/acq_rel/sc and C11 fences.

    Simplifications relative to the full published models are noted
    in DESIGN.md: preserved-program-order is dependency-based (addr,
    data, ctrl-to-writes, isync/isb restoration) without the
    rdw/detour refinements, and read-modify-write atomicity is not
    modelled (no rmw events are generated). *)

type model = Sc | Tso | Arm | Power | Rc11

val all_models : model list

val hardware_models : model list
(** The models a machine can implement directly: everything but the
    language-tier [Rc11]. *)

val model_name : model -> string

val model_for_arch : Arch.t -> model
(** [Armv8 -> Arm], [Power7 -> Power]. *)

val consistent : model -> Execution.t -> bool
(** Whether a (well-formed) candidate execution is allowed. *)

val violations : model -> Execution.t -> string list
(** Names of the axioms the execution violates; empty iff
    [consistent]. *)

(** {2 Hoisted checking for the exploration core}

    Checking one candidate decomposes into a per-run [static] part
    (event masks, program order, fence orders, dependency-based
    preserved program order) and a per-candidate (rf, co) part.  The
    enumerator prepares the static context once per run combination
    and then checks thousands of rf/co assignments against it without
    rebuilding anything. *)

type static

type base
(** The model-independent slice of a [static]: event masks, program
    order, dependency/rmw relations, per-kind fence projections and
    control-fence restorations.  Built once per candidate shape and
    shared by every model via {!of_base}, so checking one test under
    all five models hoists the expensive scans out of the per-model
    loop. *)

val prepare_base : Execution.t -> base
(** Precompute the model-independent context.  The [rf] and [co]
    fields of the execution are ignored. *)

val of_base : model -> base -> static
(** Assemble a model's [static] from a shared {!base} with cheap
    unions/restrictions of the precomputed parts. *)

val prepare : model -> Execution.t -> static
(** [of_base model (prepare_base x)].  The [rf] and [co] fields of
    the execution are ignored. *)

val violations_static : static -> rf:Bitrel.t -> co:Bitrel.t -> string list
(** [violations] with the static work hoisted; [rf]/[co] are dense
    relations over the same event ids as the prepared execution. *)

val consistent_static : static -> rf:Bitrel.t -> co:Bitrel.t -> bool

val residual_consistent : static -> rf:Bitrel.t -> co:Bitrel.t -> bool
(** Consistency of a {e complete} candidate on which {!prune_viable}
    has just passed: only the axioms not already implied by the
    pruning core are evaluated (none for SC/TSO/ARM; observation and
    propagation for POWER).  Calling this without a passing
    [prune_viable] on the same complete rf/co is unsound. *)

val prune_possible : static -> bool
(** Whether {!prune_viable} can ever fail for this context.  [false]
    means the pruning core is provably acyclic for every rf/co (the
    search may skip the per-node screen); the leaf checks are still
    required. *)

val prune_viable : static -> rf:Bitrel.t -> co:Bitrel.t -> bool
(** Sound necessary condition for a {e partial} rf/co assignment to
    have any consistent completion: the model's monotone core (whose
    edges only grow as rf/co edges are added) must be acyclic and
    atomicity unviolated.  [false] means every completion of the
    partial candidate is inconsistent, so the search can cut the
    subtree; [true] promises nothing - complete candidates still need
    {!consistent_static}. *)

(** Exposed building blocks (useful for tests and for explaining
    verdicts). *)

val preserved_program_order : model -> Execution.t -> Relation.t

val fence_order : model -> Execution.t -> Relation.t
(** Pairs of memory accesses ordered by an intervening barrier under
    the given model's interpretation of each barrier instruction. *)

val happens_before : model -> Execution.t -> Relation.t
