open Wmm_isa

(** The RC11 language-level axiomatic model (Lahav et al.), hoisted
    into the same static/per-candidate split as {!Axiomatic}: coherence
    (irreflexive hb;eco?), SC (acyclic psc), and no-thin-air (acyclic
    po U rf).  Atomicity is shared with the hardware models and is not
    re-stated here.  Entry point for callers is {!Axiomatic} with the
    [Rc11] model; this interface exists for tests and for explaining
    verdicts. *)

type mode = Rlx | Acq | Rel | Acq_rel_m | Sc_m

val read_mode : Instr.order -> mode
val write_mode : Instr.order -> mode

val fence_mode : Instr.barrier -> mode
(** C11 fences map directly; hardware barriers get their natural
    language strength (dmb/sync -> sc, lwsync -> acq_rel, dmb.ld ->
    acq, dmb.st/eieio -> rel, isb/isync -> rlx) so lifted hardware
    tests stay meaningful. *)

val event_mode : Event.t -> mode

type ctx

val prepare : Execution.t -> ctx
(** Precompute the rf/co-independent context (release/acquire
    boundaries of synchronises-with, sc masks, program order). *)

val checks : ctx -> rf:Bitrel.t -> co:Bitrel.t -> (string * (unit -> bool)) list
(** Named axiom thunks sharing one lazily-forced derived environment:
    ["coherence"], ["no-thin-air"], ["sc"]. *)

val happens_before : ctx -> rf:Bitrel.t -> co:Bitrel.t -> Bitrel.t
(** hb = (po U sw)+ for the given candidate. *)
