open Wmm_isa

type model = Sc | Tso | Arm | Power | Rc11

let all_models = [ Sc; Tso; Arm; Power; Rc11 ]

let model_name = function
  | Sc -> "SC"
  | Tso -> "TSO"
  | Arm -> "ARMv8"
  | Power -> "POWER"
  | Rc11 -> "RC11"

let hardware_models = [ Sc; Tso; Arm; Power ]

let model_for_arch = function Arch.Armv8 -> Arm | Arch.Power7 -> Power

module B = Bitrel

(* ------------------------------------------------------------------ *)
(* Static context: everything derivable from the events, program
   order and dependency relations alone - i.e. everything that stays
   fixed while the enumerator varies rf and co.  Hoisting this out of
   the per-candidate check is the main reason exploration is fast:
   fence orders, isync restoration and the static part of preserved
   program order are computed once per run combination instead of
   once per candidate.                                                 *)
(* ------------------------------------------------------------------ *)

type static = {
  model : model;
  n : int;
  tids : int array;
  read_m : B.Mask.m;
  write_m : B.Mask.m;
  mem_m : B.Mask.m;
  po : B.t;
  po_loc : B.t;
  addr_data : B.t;  (** addr U data, the source of the rf-dependent dep_rfi part of ppo *)
  rmw : B.t;
  ppo_static : B.t;  (** preserved program order minus its rf-dependent dep_rfi part *)
  fence : B.t;  (** fence_order under [model] *)
  sync : B.t;  (** POWER sync order; empty for other models *)
  prune_core : B.t;  (** static part of the monotone pruning core *)
  ext : B.t;  (** all cross-thread pairs, for external-part masking *)
  empty_rel : B.t;  (** shared empty relation (never mutated) *)
  rmw_empty : bool;  (** atomicity is vacuous - skip its composes *)
  deps_empty : bool;  (** no addr/data edges - dep_rfi is empty *)
  fence_empty : bool;
      (** no fence edges: POWER's prop relation is empty, making
          observation vacuous and propagation just acyclic(co) *)
  rc11 : Rc11.ctx option;  (** language-tier context, [Some] iff model = Rc11 *)
}

(* Everything a [static] needs that does not depend on the model: the
   masks, program order, dependency and rmw relations, the per-kind
   fence projections and the isb/isync control restorations.  Built
   once per candidate shape; [of_base] then assembles a [static] for
   each model with cheap unions/restrictions, so checking the same
   test under all five models no longer recomputes the fence scans
   and dependency relations per model. *)
type base = {
  b_exec : Execution.t;  (** rf/co-free; kept for {!Rc11.prepare} *)
  b_n : int;
  b_tids : int array;
  b_read_m : B.Mask.m;
  b_write_m : B.Mask.m;
  b_mem_m : B.Mask.m;
  b_po : B.t;
  b_po_loc : B.t;
  b_mem_po : B.t;  (** [M]; po; [M] *)
  b_addr : B.t;
  b_data : B.t;
  b_addr_data : B.t;
  b_rmw : B.t;
  b_ctrl_w : B.t;  (** [R]; ctrl; [W] *)
  b_addr_po_w : B.t;  (** [R]; addr; po; [W] *)
  b_acq_rel : B.t;  (** ARM barrier-ordered-before acquire/release part *)
  b_f_dmb : B.t;  (** through-fence projections, one per fence kind *)
  b_f_sync : B.t;
  b_f_ishld : B.t;
  b_f_ishst : B.t;
  b_f_lwsync : B.t;
  b_f_eieio : B.t;
  b_isb_restore : B.t;  (** ctrl+isb restoration (ARM) *)
  b_isync_restore : B.t;  (** ctrl+isync restoration (POWER) *)
  b_ext : B.t;
}

let prepare_base (x : Execution.t) =
  let ev = x.Execution.events in
  let n = Array.length ev in
  let tids = Array.map (fun (e : Event.t) -> e.Event.tid) ev in
  let read_m = B.Mask.of_pred n (fun i -> Event.is_read ev.(i)) in
  let write_m = B.Mask.of_pred n (fun i -> Event.is_write ev.(i)) in
  let mem_m = B.Mask.of_pred n (fun i -> Event.is_read ev.(i) || Event.is_write ev.(i)) in
  let acq_m = B.Mask.of_pred n (fun i -> Event.is_acquire ev.(i)) in
  let rel_m = B.Mask.of_pred n (fun i -> Event.is_release ev.(i)) in
  let po = B.of_relation n x.Execution.po in
  let po_loc = B.filter (fun a b -> Event.same_loc ev.(a) ev.(b)) po in
  let addr = B.of_relation n x.Execution.addr in
  let data = B.of_relation n x.Execution.data in
  let ctrl = B.of_relation n x.Execution.ctrl in
  let rmw = B.of_relation n x.Execution.rmw in
  let addr_data = B.union addr data in
  let fence_ids kindp =
    List.filter (fun i -> Event.is_fence ev.(i) && kindp ev.(i)) (List.init n Fun.id)
  in
  (* [M]; po; [F kind]; po; [M] *)
  let through_fence kindp =
    let acc = B.create n in
    List.iter
      (fun f ->
        let pre = B.Mask.of_pred n (fun a -> B.Mask.mem mem_m a && B.mem po a f) in
        let post = B.Mask.of_pred n (fun b -> B.Mask.mem mem_m b && B.mem po f b) in
        B.union_into ~into:acc (B.cross pre post))
      (fence_ids kindp);
    acc
  in
  (* Reads with a ctrl edge into an isb/isync order everything
     po-after the fence. *)
  let ctrl_isync kinds =
    let acc = B.create n in
    List.iter
      (fun f ->
        let sources = B.Mask.of_pred n (fun r -> B.Mask.mem read_m r && B.mem ctrl r f) in
        let targets = B.Mask.of_pred n (fun b -> B.Mask.mem mem_m b && B.mem po f b) in
        B.union_into ~into:acc (B.cross sources targets))
      (fence_ids (fun e -> List.exists (fun k -> Event.is_fence_kind k e) kinds));
    acc
  in
  let mem_po = B.restrict po ~domain:mem_m ~range:mem_m in
  let ctrl_w = B.restrict ctrl ~domain:read_m ~range:write_m in
  let addr_po_w = B.restrict (B.compose addr po) ~domain:read_m ~range:write_m in
  (* Barrier-ordered-before contributions of load-acquire /
     store-release: [A]; po; [M], [M]; po; [L], [L]; po; [A]. *)
  let acq_rel =
    B.union_all n
      [
        B.restrict po ~domain:acq_m ~range:mem_m;
        B.restrict po ~domain:mem_m ~range:rel_m;
        B.restrict po ~domain:rel_m ~range:acq_m;
      ]
  in
  let ext =
    let r = B.create n in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if tids.(a) <> tids.(b) then B.add r a b
      done
    done;
    r
  in
  {
    b_exec = x;
    b_n = n;
    b_tids = tids;
    b_read_m = read_m;
    b_write_m = write_m;
    b_mem_m = mem_m;
    b_po = po;
    b_po_loc = po_loc;
    b_mem_po = mem_po;
    b_addr = addr;
    b_data = data;
    b_addr_data = addr_data;
    b_rmw = rmw;
    b_ctrl_w = ctrl_w;
    b_addr_po_w = addr_po_w;
    b_acq_rel = acq_rel;
    b_f_dmb = through_fence (Event.is_fence_kind Instr.Dmb_ish);
    b_f_sync = through_fence (Event.is_fence_kind Instr.Sync);
    b_f_ishld = through_fence (Event.is_fence_kind Instr.Dmb_ishld);
    b_f_ishst = through_fence (Event.is_fence_kind Instr.Dmb_ishst);
    b_f_lwsync = through_fence (Event.is_fence_kind Instr.Lwsync);
    b_f_eieio = through_fence (Event.is_fence_kind Instr.Eieio);
    b_isb_restore = ctrl_isync [ Instr.Isb ];
    b_isync_restore = ctrl_isync [ Instr.Isync ];
    b_ext = ext;
  }

let of_base model (b : base) =
  let n = b.b_n in
  let fence =
    match model with
    | Sc | Rc11 ->
        (* SC: fences add nothing on top of full program order.
           RC11: fences act through sw/psc, computed in {!Rc11}. *)
        B.create n
    | Tso ->
        (* Any full fence restores the relaxed write->read pairs. *)
        B.union b.b_f_dmb b.b_f_sync
    | Arm ->
        let ld = B.restrict b.b_f_ishld ~domain:b.b_read_m ~range:b.b_mem_m in
        let st = B.restrict b.b_f_ishst ~domain:b.b_write_m ~range:b.b_write_m in
        B.union_all n [ b.b_f_dmb; ld; st ]
    | Power ->
        (* lwsync orders everything except write->read. *)
        let lw_rm = B.restrict b.b_f_lwsync ~domain:b.b_read_m ~range:b.b_mem_m in
        let lw_ww = B.restrict b.b_f_lwsync ~domain:b.b_write_m ~range:b.b_write_m in
        let eieio = B.restrict b.b_f_eieio ~domain:b.b_write_m ~range:b.b_write_m in
        B.union_all n [ b.b_f_sync; lw_rm; lw_ww; eieio ]
  in
  let sync = match model with Power -> b.b_f_sync | _ -> B.create n in
  let ppo_static =
    match model with
    | Sc | Rc11 -> b.b_mem_po
    | Tso ->
        (* Drop write->read pairs: stores may be delayed in the store
           buffer past later reads. *)
        B.filter
          (fun a b' -> not (B.Mask.mem b.b_write_m a && B.Mask.mem b.b_read_m b'))
          b.b_mem_po
    | Arm ->
        B.union_all n
          [ b.b_addr; b.b_data; b.b_ctrl_w; b.b_addr_po_w; b.b_isb_restore; b.b_acq_rel ]
    | Power ->
        B.union_all n
          [ b.b_addr; b.b_data; b.b_ctrl_w; b.b_addr_po_w; b.b_isync_restore ]
  in
  let prune_core =
    match model with
    | Sc | Rc11 -> b.b_po
    | Tso | Arm | Power -> B.union ppo_static fence
  in
  {
    model;
    n;
    tids = b.b_tids;
    read_m = b.b_read_m;
    write_m = b.b_write_m;
    mem_m = b.b_mem_m;
    po = b.b_po;
    po_loc = b.b_po_loc;
    addr_data = b.b_addr_data;
    rmw = b.b_rmw;
    ppo_static;
    fence;
    sync;
    prune_core;
    ext = b.b_ext;
    empty_rel = B.create n;
    rmw_empty = B.is_empty b.b_rmw;
    deps_empty = B.is_empty b.b_addr_data;
    fence_empty = B.is_empty fence;
    rc11 = (if model = Rc11 then Some (Rc11.prepare b.b_exec) else None);
  }

let prepare model (x : Execution.t) = of_base model (prepare_base x)

(* ------------------------------------------------------------------ *)
(* Per-candidate (rf, co) checks.                                      *)
(* ------------------------------------------------------------------ *)

let external_part st r = B.inter st.ext r

(* A read r "from-reads" a write w when w is co-after the write r read
   from; exclude the identity from rf^-1;co hitting the same write. *)
let fr_of ~rf ~co = B.remove_diagonal (B.compose (B.inverse rf) co)

let dep_rfi_of st ~rf ~rfe =
  if st.deps_empty then st.empty_rel else B.compose st.addr_data (B.diff rf rfe)

(* The model's axioms as named thunks over a shared lazy environment:
   [violations_static] evaluates all of them to report every broken
   axiom, while [consistent_static] - the per-candidate hot path -
   stops at the first failure and never forces what it does not
   reach (POWER's closures in particular). *)
let axiom_checks st ~rf ~co =
  let n = st.n in
  let fr = lazy (fr_of ~rf ~co) in
  let com = lazy (B.union_all n [ rf; co; Lazy.force fr ]) in
  let rfe = lazy (external_part st rf) in
  let fre = lazy (external_part st (Lazy.force fr)) in
  let coe = lazy (external_part st co) in
  (* Read-modify-write atomicity (common to every model): no external
     write may be coherence-ordered between the exclusive read's source
     and the paired exclusive write: empty (rmw & (fre; coe)). *)
  let atomicity () =
    st.rmw_empty
    || B.is_empty (B.inter st.rmw (B.compose (Lazy.force fre) (Lazy.force coe)))
  in
  ("atomicity", atomicity)
  ::
  (match st.model with
  | Sc -> [ ("sc", fun () -> B.is_acyclic (B.union st.po (Lazy.force com))) ]
  | Rc11 -> Rc11.checks (Option.get st.rc11) ~rf ~co
  | Tso ->
      [
        ( "sc-per-location",
          fun () -> B.is_acyclic (B.union st.po_loc (Lazy.force com)) );
        ( "tso-global-happens-before",
          fun () ->
            B.is_acyclic
              (B.union_all n [ st.ppo_static; st.fence; Lazy.force rfe; co; Lazy.force fr ])
        );
      ]
  | Arm ->
      [
        ("internal", fun () -> B.is_acyclic (B.union st.po_loc (Lazy.force com)));
        (* The ARMv8 ordered-before relation: external observations,
           dependency-ordered-before, and barrier-ordered-before. *)
        ( "external",
          fun () ->
            let rfe = Lazy.force rfe in
            B.is_acyclic
              (B.union_all n
                 [
                   rfe;
                   Lazy.force fre;
                   Lazy.force coe;
                   st.ppo_static;
                   dep_rfi_of st ~rf ~rfe;
                   st.fence;
                 ]) );
      ]
  | Power ->
      let hb =
        lazy
          (let rfe = Lazy.force rfe in
           B.union_all n [ st.ppo_static; dep_rfi_of st ~rf ~rfe; st.fence; rfe ])
      in
      let prop_parts =
        lazy
          (let hb_star = B.reflexive_transitive_closure (Lazy.force hb) in
           let prop_base =
             B.compose (B.union st.fence (B.compose (Lazy.force rfe) st.fence)) hb_star
           in
           let com_star = B.reflexive_transitive_closure (Lazy.force com) in
           let prop_base_star = B.reflexive_transitive_closure prop_base in
           let prop =
             B.union
               (B.restrict prop_base ~domain:st.write_m ~range:st.write_m)
               (B.compose com_star (B.compose prop_base_star (B.compose st.sync hb_star)))
           in
           (prop, hb_star))
      in
      [
        ( "sc-per-location",
          fun () -> B.is_acyclic (B.union st.po_loc (Lazy.force com)) );
        ("no-thin-air", fun () -> B.is_acyclic (Lazy.force hb));
        (* With no fence edges prop is empty ((fence U rfe;fence);hb^*
           composes to nothing and sync is a subset of fence), so
           observation is vacuous and propagation reduces to
           acyclic(co) - skip the closures entirely. *)
        ( "observation",
          fun () ->
            st.fence_empty
            ||
            let prop, hb_star = Lazy.force prop_parts in
            B.is_irreflexive (B.compose (Lazy.force fre) (B.compose prop hb_star)) );
        ( "propagation",
          fun () ->
            if st.fence_empty then B.is_acyclic co
            else
              let prop, _ = Lazy.force prop_parts in
              B.is_acyclic (B.union co prop) );
      ])

let violations_static st ~rf ~co =
  List.filter_map
    (fun (name, ok) -> if ok () then None else Some name)
    (axiom_checks st ~rf ~co)

let consistent_static st ~rf ~co =
  List.for_all (fun (_, ok) -> ok ()) (axiom_checks st ~rf ~co)

(* On a COMPLETE candidate the pruning checks below coincide exactly
   with the model's axioms for SC, TSO and ARM (same unions, same
   acyclicity tests), so a leaf whose last [prune_viable] passed needs
   no further work there.  POWER's core covers atomicity,
   sc-per-location and no-thin-air; observation and propagation remain
   to be checked.  The golden tests against the reference enumerator
   guard this correspondence - update both sides together. *)
let residual_axioms = function
  | Sc | Tso | Arm -> []
  | Power -> [ "observation"; "propagation" ]
  | Rc11 ->
      (* The monotone core covers atomicity, sc-per-location and
         po U rf acyclicity; coherence's sw part and psc remain. *)
      [ "coherence"; "sc" ]

let residual_consistent st ~rf ~co =
  match residual_axioms st.model with
  | [] -> true
  | names ->
      List.for_all
        (fun (name, ok) -> (not (List.mem name names)) || ok ())
        (axiom_checks st ~rf ~co)

(* Sound pruning for partial rf/co assignments: every relation below
   grows monotonically as rf and co edges are added (po, deps and
   fences are fixed; fr = rf^-1;co, and compositions/unions of
   monotone relations are monotone), so a cycle or atomicity
   violation found now persists in every completion.  Only necessary
   conditions are checked - complete candidates still get the full
   [consistent_static] verdict (POWER's observation/propagation
   axioms involve closures not worth recomputing per search node). *)
(* Whether [prune_viable] can ever return false for this context.
   rf U co U fr - and any subset of it - decomposes per location into
   edges that strictly increase a write's co position (reads sit just
   after their source), so it is acyclic on its own; a cycle or an
   atomicity violation needs static edges to close it.  When rmw,
   po_loc and the model's static core are all empty the screen is a
   provable no-op and the search can skip it wholesale. *)
let prune_possible st =
  (not st.rmw_empty)
  || (not (B.is_empty st.po_loc))
  ||
  match st.model with
  | Sc | Rc11 -> not (B.is_empty st.po)
  | Tso | Arm | Power -> not (B.is_empty st.prune_core && st.deps_empty)

let prune_viable st ~rf ~co =
  let n = st.n in
  let fr = fr_of ~rf ~co in
  (st.rmw_empty
  ||
  let fre = external_part st fr in
  let coe = external_part st co in
  B.is_empty (B.inter st.rmw (B.compose fre coe)))
  &&
  match st.model with
  | Sc -> B.is_acyclic (B.union_all n [ st.prune_core; rf; co; fr ])
  | Rc11 ->
      (* Sound necessary conditions, all monotone in rf/co: coherence
         implies SC-per-location (hb contains po, eco contains the
         com edges), and no-thin-air is exactly acyclic(po U rf). *)
      B.is_acyclic (B.union_all n [ st.po_loc; rf; co; fr ])
      && B.is_acyclic (B.union st.po rf)
  | Tso ->
      B.is_acyclic (B.union_all n [ st.po_loc; rf; co; fr ])
      && B.is_acyclic (B.union_all n [ st.prune_core; external_part st rf; co; fr ])
  | Arm ->
      let rfe = external_part st rf in
      B.is_acyclic (B.union_all n [ st.po_loc; rf; co; fr ])
      && B.is_acyclic
           (B.union_all n
              [
                st.prune_core;
                dep_rfi_of st ~rf ~rfe;
                rfe;
                external_part st co;
                external_part st fr;
              ])
  | Power ->
      let rfe = external_part st rf in
      B.is_acyclic (B.union_all n [ st.po_loc; rf; co; fr ])
      && B.is_acyclic (B.union_all n [ st.prune_core; dep_rfi_of st ~rf ~rfe; rfe ])

(* ------------------------------------------------------------------ *)
(* Whole-execution API (compatibility layer over the static split).    *)
(* ------------------------------------------------------------------ *)

let bit_rf_co (x : Execution.t) =
  let n = Array.length x.Execution.events in
  (B.of_relation n x.Execution.rf, B.of_relation n x.Execution.co)

let violations model x =
  let st = prepare model x in
  let rf, co = bit_rf_co x in
  violations_static st ~rf ~co

let consistent model x = violations model x = []

(* Exposed building blocks (tests, verdict explanations).  These pay
   the one-off [prepare] cost; hot paths use the static API above. *)

let fence_order model x = B.to_relation (prepare model x).fence

let preserved_program_order model x =
  let st = prepare model x in
  match model with
  | Sc | Tso | Rc11 -> B.to_relation st.ppo_static
  | Arm | Power ->
      let rf, _ = bit_rf_co x in
      let rfe = external_part st rf in
      B.to_relation (B.union st.ppo_static (dep_rfi_of st ~rf ~rfe))

let happens_before model x =
  let st = prepare model x in
  let rf, co = bit_rf_co x in
  let fr = fr_of ~rf ~co in
  let rfe = external_part st rf in
  match model with
  | Sc -> B.to_relation (B.union st.po (B.union_all st.n [ rf; co; fr ]))
  | Rc11 -> B.to_relation (Rc11.happens_before (Option.get st.rc11) ~rf ~co)
  | Tso -> B.to_relation (B.union_all st.n [ st.ppo_static; st.fence; rfe ])
  | Arm ->
      B.to_relation
        (B.union_all st.n
           [
             rfe;
             external_part st fr;
             external_part st co;
             st.ppo_static;
             dep_rfi_of st ~rf ~rfe;
             st.fence;
           ])
  | Power ->
      B.to_relation
        (B.union_all st.n [ st.ppo_static; dep_rfi_of st ~rf ~rfe; st.fence; rfe ])
