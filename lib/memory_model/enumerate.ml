open Wmm_isa
type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
  memory : (Instr.loc * Instr.value) list;
}

let compare_outcome a b =
  match compare a.registers b.registers with 0 -> compare a.memory b.memory | c -> c

let pp_outcome (p : Program.t) fmt o =
  let regs =
    List.map (fun ((tid, r), v) -> Printf.sprintf "%d:x%d=%d" tid r v) o.registers
  in
  let mem =
    List.map (fun (l, v) -> Printf.sprintf "%s=%d" (Program.location_name p l) v) o.memory
  in
  Format.fprintf fmt "{%s}" (String.concat "; " (regs @ mem))

let outcome_to_string p o = Format.asprintf "%a" (pp_outcome p) o

(* ------------------------------------------------------------------ *)
(* Thread interpretation.                                              *)
(* ------------------------------------------------------------------ *)

(* A local event recorded while interpreting one thread.  Reads are
   numbered (by [read_index]) so dependencies can refer to them before
   global event ids exist. *)
type local_event = {
  l_action : Event.action;
  l_addr_deps : int list;  (** read indices this event's address depends on *)
  l_data_deps : int list;  (** read indices a store's value depends on *)
  l_ctrl_deps : int list;  (** read indices controlling reachability *)
  l_read_index : int option;  (** Some i when this event is read number i *)
  l_rmw_source : int option;
      (** For a successful exclusive write: the read index of the
          paired exclusive read. *)
}

type run = {
  events : local_event list;  (** in program order *)
  final_regs : (Instr.reg * Instr.value) list;  (** registers written *)
}

(* Interpret one thread, branching over the possible values of every
   load (drawn from [pool]).  Returns every feasible run. *)
let run_thread ~fuel ~pool (thread : Program.thread) : run list =
  let length = Array.length thread in
  let results = ref [] in
  let module IM = Map.Make (Int) in
  let dedup l = List.sort_uniq compare l in
  let rec step pc steps regs reg_deps ctrl written events next_read monitor =
    if steps > fuel then failwith "Enumerate: thread interpretation fuel exhausted";
    if pc >= length then begin
      let final_regs =
        List.sort compare (IM.bindings (IM.filter (fun r _ -> List.mem r written) regs))
      in
      results := { events = List.rev events; final_regs } :: !results
    end
    else begin
      let get_reg r = try IM.find r regs with Not_found -> 0 in
      let deps_of_reg r = try IM.find r reg_deps with Not_found -> [] in
      let eval = function Instr.Imm v -> v | Instr.Reg r -> get_reg r in
      let deps_of_operand = function Instr.Imm _ -> [] | Instr.Reg r -> deps_of_reg r in
      match thread.(pc) with
      | Instr.Nop -> step (pc + 1) (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Barrier b ->
          let event =
            {
              l_action = Event.Fence b;
              l_addr_deps = [];
              l_data_deps = [];
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Mov { dst; src } ->
          let regs = IM.add dst (eval src) regs in
          let reg_deps = IM.add dst (deps_of_operand src) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Op { op; dst; a; b } ->
          let regs = IM.add dst (Instr.eval_binop op (eval a) (eval b)) regs in
          let deps = dedup (deps_of_operand a @ deps_of_operand b) in
          let reg_deps = IM.add dst deps reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Cbnz { src; offset } | Instr.Cbz { src; offset } ->
          let taken =
            match thread.(pc) with
            | Instr.Cbnz _ -> get_reg src <> 0
            | _ -> get_reg src = 0
          in
          let ctrl = dedup (deps_of_reg src @ ctrl) in
          let pc' = if taken then pc + 1 + offset else pc + 1 in
          step pc' (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Store { src; addr; order } ->
          let loc = eval addr in
          let event =
            {
              l_action = Event.Write { loc; value = eval src; order };
              l_addr_deps = dedup (deps_of_operand addr);
              l_data_deps = dedup (deps_of_operand src);
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Load_exclusive { dst; addr; order } ->
          let loc = eval addr in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1)
                (Some (loc, next_read)))
            (pool loc)
      | Instr.Store_exclusive { status; src; addr; order } ->
          let loc = eval addr in
          (* Failure branch: the monitor was lost (always possible -
             spurious failure is architecturally allowed). *)
          let fail_regs = IM.add status 1 regs in
          let fail_deps = IM.add status [] reg_deps in
          step (pc + 1) (steps + 1) fail_regs fail_deps ctrl (status :: written) events
            next_read None;
          (* Success branch: only when the monitor matches. *)
          (match monitor with
          | Some (mloc, ridx) when mloc = loc ->
              let event =
                {
                  l_action = Event.Write { loc; value = eval src; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = dedup (deps_of_operand src);
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = None;
                  l_rmw_source = Some ridx;
                }
              in
              let ok_regs = IM.add status 0 regs in
              let ok_deps = IM.add status [] reg_deps in
              step (pc + 1) (steps + 1) ok_regs ok_deps ctrl (status :: written)
                (event :: events) next_read None
          | Some _ | None -> ())
      | Instr.Load { dst; addr; order } ->
          let loc = eval addr in
          let candidates = pool loc in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1) monitor)
            candidates
    end
  in
  step 0 0 IM.empty IM.empty [] [] [] 0 None;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Phase one: value pool fixpoint.                                     *)
(* ------------------------------------------------------------------ *)

let value_pool ~fuel (p : Program.t) =
  let module LM = Map.Make (Int) in
  let module VS = Set.Make (Int) in
  let initial =
    List.fold_left
      (fun acc l -> LM.add l (VS.singleton (Program.initial_value p l)) acc)
      LM.empty (Program.locations p)
  in
  let lookup pool loc =
    match LM.find_opt loc pool with
    | Some vs -> VS.elements vs
    | None -> [ 0 ]
  in
  let grow pool =
    let additions = ref pool in
    Array.iter
      (fun thread ->
        let runs = run_thread ~fuel ~pool:(lookup pool) thread in
        List.iter
          (fun run ->
            List.iter
              (fun e ->
                match e.l_action with
                | Event.Write { loc; value; _ } ->
                    let current =
                      match LM.find_opt loc !additions with
                      | Some vs -> vs
                      | None -> VS.singleton (Program.initial_value p loc)
                    in
                    additions := LM.add loc (VS.add value current) !additions
                | Event.Read _ | Event.Fence _ -> ())
              run.events)
          runs)
      p.Program.threads;
    !additions
  in
  let rec fixpoint pool iterations =
    if iterations > 8 then pool
    else begin
      let next = grow pool in
      if LM.equal VS.equal next pool then pool else fixpoint next (iterations + 1)
    end
  in
  let pool = fixpoint initial 0 in
  lookup pool

(* ------------------------------------------------------------------ *)
(* Phase two: candidate generation.                                    *)
(* ------------------------------------------------------------------ *)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) choices

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      (* Remove the chosen element by position: filtering on structural
         equality would drop every duplicate occurrence at once and
         lose permutations (and their lengths) for lists with repeated
         elements. *)
      List.concat
        (List.mapi
           (fun i x ->
             let rest = List.filteri (fun j _ -> j <> i) l in
             List.map (fun p -> x :: p) (permutations rest))
           l)

(* ------------------------------------------------------------------ *)
(* Candidate skeleton: everything about one choice of per-thread runs
   that is independent of the rf/co assignment.  Built once per run
   combination and shared by every candidate explored from it.         *)
(* ------------------------------------------------------------------ *)

type skeleton = {
  all_events : Event.t array;
  sk_po : Relation.t;
  sk_addr : Relation.t;
  sk_data : Relation.t;
  sk_ctrl : Relation.t;
  sk_rmw : Relation.t;
  init_ids : (Instr.loc * int) list;
  sk_locations : Instr.loc list;
  sk_reads : int list;
  sk_writes : int list;
}

let skeleton_of_runs (p : Program.t) (runs : run array) =
  (* Locations touched by any event or named in the program. *)
  let module LS = Set.Make (Int) in
  let locs = ref (LS.of_list (Program.locations p)) in
  Array.iter
    (fun run ->
      List.iter
        (fun e ->
          match e.l_action with
          | Event.Read { loc; _ } | Event.Write { loc; _ } -> locs := LS.add loc !locs
          | Event.Fence _ -> ())
        run.events)
    runs;
  let locations = LS.elements !locs in
  (* Global events: init writes first, then thread events in order. *)
  let events = ref [] in
  let next_id = ref 0 in
  let push tid po_index action =
    let e = { Event.id = !next_id; tid; po_index; action } in
    incr next_id;
    events := e :: !events;
    e.Event.id
  in
  let init_ids =
    List.map
      (fun l ->
        ( l,
          push Event.init_tid 0
            (Event.Write { loc = l; value = Program.initial_value p l; order = Instr.Plain })
        ))
      locations
  in
  let po = ref Relation.empty in
  let addr = ref Relation.empty in
  let data = ref Relation.empty in
  let ctrl = ref Relation.empty in
  let rmw = ref Relation.empty in
  let read_global = Hashtbl.create 16 in
  (* (tid, read index) -> global id *)
  Array.iteri
    (fun tid run ->
      let ids =
        List.mapi
          (fun po_index e ->
            let gid = push tid po_index e.l_action in
            (match e.l_read_index with
            | Some i -> Hashtbl.replace read_global (tid, i) gid
            | None -> ());
            (gid, e))
          run.events
      in
      (* Transitive program order within the thread. *)
      List.iteri
        (fun i (gi, _) ->
          List.iteri (fun j (gj, _) -> if i < j then po := Relation.add gi gj !po) ids)
        ids;
      List.iter
        (fun (gid, e) ->
          let resolve idx = Hashtbl.find read_global (tid, idx) in
          List.iter (fun i -> addr := Relation.add (resolve i) gid !addr) e.l_addr_deps;
          List.iter (fun i -> data := Relation.add (resolve i) gid !data) e.l_data_deps;
          List.iter (fun i -> ctrl := Relation.add (resolve i) gid !ctrl) e.l_ctrl_deps;
          Option.iter (fun i -> rmw := Relation.add (resolve i) gid !rmw) e.l_rmw_source)
        ids)
    runs;
  let all_events =
    let arr = Array.make !next_id (List.hd !events) in
    List.iter (fun (e : Event.t) -> arr.(e.Event.id) <- e) !events;
    arr
  in
  let reads =
    Array.to_list all_events |> List.filter Event.is_read |> List.map (fun e -> e.Event.id)
  in
  let writes =
    Array.to_list all_events |> List.filter Event.is_write |> List.map (fun e -> e.Event.id)
  in
  {
    all_events;
    sk_po = !po;
    sk_addr = !addr;
    sk_data = !data;
    sk_ctrl = !ctrl;
    sk_rmw = !rmw;
    init_ids;
    sk_locations = locations;
    sk_reads = reads;
    sk_writes = writes;
  }

(* Same-location same-value writes each read may take its value from. *)
let rf_candidates skel r =
  let er = skel.all_events.(r) in
  List.filter
    (fun w ->
      let ew = skel.all_events.(w) in
      Event.same_loc ew er && Event.value ew = Event.value er)
    skel.sk_writes

(* Per-location write sets for coherence-order construction: the init
   write is always co-first. *)
let co_locations skel =
  List.map
    (fun l ->
      let init_id = List.assoc l skel.init_ids in
      let others =
        List.filter
          (fun w -> w <> init_id && Event.loc skel.all_events.(w) = Some l)
          skel.sk_writes
      in
      (l, init_id, others))
    skel.sk_locations

let registers_of_runs (runs : run array) =
  Array.to_list runs
  |> List.mapi (fun tid run -> List.map (fun (r, v) -> ((tid, r), v)) run.final_regs)
  |> List.concat |> List.sort compare

(* The final memory of a complete candidate, read straight off the co
   chains: the co-maximal write for each location is the last element
   of its chain (the init write when nothing else wrote there). *)
let memory_of_chains skel chains =
  List.sort compare
    (List.map
       (fun (l, chain) ->
         let last = List.nth chain (List.length chain - 1) in
         (l, Option.get (Event.value skel.all_events.(last))))
       chains)

(* ------------------------------------------------------------------ *)
(* Exploration statistics.                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  generated : int;
  pruned : int;
  well_formed : int;
  consistent : int;
  wall_s : float;
}

type counters = {
  mutable c_generated : int;
  mutable c_pruned : int;
  mutable c_well_formed : int;
  mutable c_consistent : int;
}

let fresh_counters () =
  { c_generated = 0; c_pruned = 0; c_well_formed = 0; c_consistent = 0 }

(* Process-global accumulator, so long-running harnesses (engine
   worker domains included - this is a plain lock, safe across
   domains) can surface cumulative exploration work in telemetry. *)
let global_lock = Mutex.create ()

let global_acc = ref { generated = 0; pruned = 0; well_formed = 0; consistent = 0; wall_s = 0. }

let record_global s =
  Mutex.lock global_lock;
  let g = !global_acc in
  global_acc :=
    {
      generated = g.generated + s.generated;
      pruned = g.pruned + s.pruned;
      well_formed = g.well_formed + s.well_formed;
      consistent = g.consistent + s.consistent;
      wall_s = g.wall_s +. s.wall_s;
    };
  Mutex.unlock global_lock

let global_stats () =
  Mutex.lock global_lock;
  let s = !global_acc in
  Mutex.unlock global_lock;
  s

let reset_global_stats () =
  Mutex.lock global_lock;
  global_acc := { generated = 0; pruned = 0; well_formed = 0; consistent = 0; wall_s = 0. };
  Mutex.unlock global_lock

(* ------------------------------------------------------------------ *)
(* Backtracking rf/co search.

   Candidates are built incrementally: first every read is assigned
   its rf source (fewest-candidates-first, so contradictions surface
   early), then each location's coherence order is grown one write at
   a time (the chain prefix is co-before the appended write).  Both
   kinds of step only ever add edges, so [Axiomatic.prune_viable] -
   checked after every step when a model context is supplied - can
   soundly cut the whole subtree on the first cycle or atomicity
   violation.  Leaves are complete candidates, well-formed by
   construction (rf is value/location-matched and unique per read, co
   is a per-location total order with init first).                     *)
(* ------------------------------------------------------------------ *)

let search ?static skel ~counters ~(emit : rf_pairs:(int * int) list ->
                                           chains:(Instr.loc * int list) list ->
                                           consistent:bool -> unit) =
  let ev = skel.all_events in
  let n = Array.length ev in
  let rf = Bitrel.create n and co = Bitrel.create n in
  let reads = Array.of_list skel.sk_reads in
  let nreads = Array.length reads in
  let rf_cands = Array.map (fun r -> rf_candidates skel r) reads in
  let order = Array.init nreads Fun.id in
  Array.sort
    (fun i j -> compare (List.length rf_cands.(i)) (List.length rf_cands.(j)))
    order;
  let viable =
    match static with
    | Some st when Axiomatic.prune_possible st ->
        fun () -> Axiomatic.prune_viable st ~rf ~co
    | Some _ | None -> fun () -> true
  in
  let locs = co_locations skel in
  let rf_edges = ref [] in
  (* Cooperative cancellation: the search can run for minutes on
     adversarial candidates, so poll the ambient token on a masked
     tick — cheap enough to disappear in the noise, frequent enough
     that a deadline lands within milliseconds. *)
  let tick = ref 0 in
  let poll () =
    incr tick;
    if !tick land 1023 = 0 then Wmm_util.Cancel.check_ambient ()
  in
  if Array.exists (fun c -> c = []) rf_cands then ()
  else begin
    let rec assign_read i =
      if i = nreads then assign_locs locs []
      else begin
        poll ();
        let r = reads.(order.(i)) in
        List.iter
          (fun w ->
            Bitrel.add rf w r;
            rf_edges := (w, r) :: !rf_edges;
            if viable () then assign_read (i + 1)
            else counters.c_pruned <- counters.c_pruned + 1;
            rf_edges := List.tl !rf_edges;
            Bitrel.remove rf w r)
          rf_cands.(order.(i))
      end
    and assign_locs remaining_locs done_chains =
      match remaining_locs with
      | [] -> leaf done_chains
      | (l, init_id, others) :: rest -> extend l [ init_id ] others rest done_chains
    and extend l placed remaining rest done_chains =
      match remaining with
      | [] -> assign_locs rest ((l, List.rev placed) :: done_chains)
      | _ ->
          poll ();
          List.iter
            (fun w ->
              let others = List.filter (fun o -> o <> w) remaining in
              List.iter (fun prior -> Bitrel.add co prior w) placed;
              if viable () then extend l (w :: placed) others rest done_chains
              else counters.c_pruned <- counters.c_pruned + 1;
              List.iter (fun prior -> Bitrel.remove co prior w) placed)
            remaining
    and leaf done_chains =
      counters.c_generated <- counters.c_generated + 1;
      counters.c_well_formed <- counters.c_well_formed + 1;
      (* Every edge on the path here passed [prune_viable], which on a
         complete candidate subsumes all axioms except POWER's
         observation/propagation - only the residual remains. *)
      let consistent =
        match static with
        | None -> true
        | Some st -> Axiomatic.residual_consistent st ~rf ~co
      in
      if consistent then counters.c_consistent <- counters.c_consistent + 1;
      emit ~rf_pairs:!rf_edges ~chains:done_chains ~consistent
    in
    assign_read 0
  end

(* The rf/co-free execution a skeleton denotes, for static preparation
   and for materializing complete candidates. *)
let execution_of_skeleton skel ~rf ~co =
  {
    Execution.events = skel.all_events;
    po = skel.sk_po;
    rf;
    co;
    addr = skel.sk_addr;
    data = skel.sk_data;
    ctrl = skel.sk_ctrl;
    rmw = skel.sk_rmw;
  }

let co_relation chains =
  List.fold_left
    (fun acc (_, chain) ->
      let rec pairs = function
        | [] | [ _ ] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.fold_left (fun acc (a, b) -> Relation.add a b acc) acc (pairs chain))
    Relation.empty chains

let run_combos ~fuel (p : Program.t) =
  (match Program.validate p with Ok () -> () | Error msg -> invalid_arg msg);
  let pool = value_pool ~fuel p in
  let per_thread_runs =
    Array.to_list (Array.map (fun thread -> run_thread ~fuel ~pool thread) p.Program.threads)
  in
  List.map Array.of_list (cartesian per_thread_runs)

let outcome_of (p : Program.t) (runs : run array) (x : Execution.t) =
  ignore p;
  { registers = registers_of_runs runs; memory = Execution.final_memory x }

let candidate_executions ?(fuel = 1024) (p : Program.t) =
  let acc = ref [] in
  let counters = fresh_counters () in
  List.iter
    (fun runs ->
      let skel = skeleton_of_runs p runs in
      let registers = registers_of_runs runs in
      search skel ~counters ~emit:(fun ~rf_pairs ~chains ~consistent:_ ->
          let x =
            execution_of_skeleton skel ~rf:(Relation.of_list rf_pairs)
              ~co:(co_relation chains)
          in
          acc := (x, { registers; memory = memory_of_chains skel chains }) :: !acc))
    (run_combos ~fuel p);
  List.rev !acc

let allowed_outcomes_stats ?(fuel = 1024) model (p : Program.t) =
  let t0 = Unix.gettimeofday () in
  let counters = fresh_counters () in
  let acc = ref [] in
  List.iter
    (fun runs ->
      let skel = skeleton_of_runs p runs in
      let static =
        Axiomatic.prepare model
          (execution_of_skeleton skel ~rf:Relation.empty ~co:Relation.empty)
      in
      let registers = registers_of_runs runs in
      search ~static skel ~counters ~emit:(fun ~rf_pairs:_ ~chains ~consistent ->
          if consistent then
            acc := { registers; memory = memory_of_chains skel chains } :: !acc))
    (run_combos ~fuel p);
  let stats =
    {
      generated = counters.c_generated;
      pruned = counters.c_pruned;
      well_formed = counters.c_well_formed;
      consistent = counters.c_consistent;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  record_global stats;
  (List.sort_uniq compare_outcome !acc, stats)

let allowed_outcomes model p = fst (allowed_outcomes_stats model p)

exception Found

let exists_outcome ?(fuel = 1024) model (p : Program.t) pred =
  let t0 = Unix.gettimeofday () in
  let counters = fresh_counters () in
  let found =
    try
      List.iter
        (fun runs ->
          let skel = skeleton_of_runs p runs in
          let static =
            Axiomatic.prepare model
              (execution_of_skeleton skel ~rf:Relation.empty ~co:Relation.empty)
          in
          let registers = registers_of_runs runs in
          search ~static skel ~counters ~emit:(fun ~rf_pairs:_ ~chains ~consistent ->
              if consistent && pred { registers; memory = memory_of_chains skel chains }
              then raise Found))
        (run_combos ~fuel p);
      false
    with Found -> true
  in
  record_global
    {
      generated = counters.c_generated;
      pruned = counters.c_pruned;
      well_formed = counters.c_well_formed;
      consistent = counters.c_consistent;
      wall_s = Unix.gettimeofday () -. t0;
    };
  found

let outcome_allowed model p query =
  let matches (full : outcome) =
    List.for_all
      (fun (key, v) ->
        match List.assoc_opt key full.registers with Some v' -> v = v' | None -> false)
      query.registers
    && List.for_all
         (fun (l, v) ->
           match List.assoc_opt l full.memory with Some v' -> v = v' | None -> false)
         query.memory
  in
  exists_outcome model p matches

(* ------------------------------------------------------------------ *)
(* Pre-rewrite reference path: materialize the full cartesian product
   of rf choices and per-location co permutations, filter by
   well-formedness, then by the model.  Kept as the oracle for golden
   tests and as the baseline the perf benchmark measures against.      *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  let cartesian = cartesian

  let permutations = permutations

  let executions_of_runs (p : Program.t) (runs : run array) =
    let skel = skeleton_of_runs p runs in
    let rf_choices =
      List.map (fun r -> List.map (fun w -> (w, r)) (rf_candidates skel r)) skel.sk_reads
    in
    if List.exists (fun c -> c = []) rf_choices then []
    else begin
      let rf_assignments = cartesian rf_choices in
      let co_per_loc =
        List.map
          (fun (l, init_id, others) ->
            List.map (fun perm -> (l, init_id :: perm)) (permutations others))
          (co_locations skel)
      in
      let co_assignments = cartesian co_per_loc in
      List.concat_map
        (fun rf_pairs ->
          let rf = Relation.of_list rf_pairs in
          List.filter_map
            (fun chains ->
              let x = execution_of_skeleton skel ~rf ~co:(co_relation chains) in
              match Execution.well_formed x with Ok () -> Some x | Error _ -> None)
            co_assignments)
        rf_assignments
    end

  let candidate_executions ?(fuel = 1024) (p : Program.t) =
    List.concat_map
      (fun runs ->
        List.map (fun x -> (x, outcome_of p runs x)) (executions_of_runs p runs))
      (run_combos ~fuel p)

  let allowed_outcomes model p =
    candidate_executions p
    |> List.filter (fun (x, _) -> Axiomatic.consistent model x)
    |> List.map snd
    |> List.sort_uniq compare_outcome
end
