open Wmm_isa
type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
  memory : (Instr.loc * Instr.value) list;
}

let compare_outcome a b =
  match compare a.registers b.registers with 0 -> compare a.memory b.memory | c -> c

let pp_outcome (p : Program.t) fmt o =
  let regs =
    List.map (fun ((tid, r), v) -> Printf.sprintf "%d:x%d=%d" tid r v) o.registers
  in
  let mem =
    List.map (fun (l, v) -> Printf.sprintf "%s=%d" (Program.location_name p l) v) o.memory
  in
  Format.fprintf fmt "{%s}" (String.concat "; " (regs @ mem))

let outcome_to_string p o = Format.asprintf "%a" (pp_outcome p) o

(* ------------------------------------------------------------------ *)
(* Thread interpretation.                                              *)
(* ------------------------------------------------------------------ *)

(* A local event recorded while interpreting one thread.  Reads are
   numbered (by [read_index]) so dependencies can refer to them before
   global event ids exist. *)
type local_event = {
  l_action : Event.action;
  l_addr_deps : int list;  (** read indices this event's address depends on *)
  l_data_deps : int list;  (** read indices a store's value depends on *)
  l_ctrl_deps : int list;  (** read indices controlling reachability *)
  l_read_index : int option;  (** Some i when this event is read number i *)
  l_rmw_source : int option;
      (** For a successful exclusive write: the read index of the
          paired exclusive read. *)
}

type run = {
  events : local_event list;  (** in program order *)
  final_regs : (Instr.reg * Instr.value) list;  (** registers written *)
}

(* Interpret one thread, branching over the possible values of every
   load (drawn from [pool]).  Returns every feasible run. *)
let run_thread ~fuel ~pool (thread : Program.thread) : run list =
  let length = Array.length thread in
  let results = ref [] in
  let module IM = Map.Make (Int) in
  let dedup l = List.sort_uniq compare l in
  let rec step pc steps regs reg_deps ctrl written events next_read monitor =
    if steps > fuel then failwith "Enumerate: thread interpretation fuel exhausted";
    if pc >= length then begin
      let final_regs =
        List.sort compare (IM.bindings (IM.filter (fun r _ -> List.mem r written) regs))
      in
      results := { events = List.rev events; final_regs } :: !results
    end
    else begin
      let get_reg r = try IM.find r regs with Not_found -> 0 in
      let deps_of_reg r = try IM.find r reg_deps with Not_found -> [] in
      let eval = function Instr.Imm v -> v | Instr.Reg r -> get_reg r in
      let deps_of_operand = function Instr.Imm _ -> [] | Instr.Reg r -> deps_of_reg r in
      match thread.(pc) with
      | Instr.Nop -> step (pc + 1) (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Barrier b ->
          let event =
            {
              l_action = Event.Fence b;
              l_addr_deps = [];
              l_data_deps = [];
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Mov { dst; src } ->
          let regs = IM.add dst (eval src) regs in
          let reg_deps = IM.add dst (deps_of_operand src) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Op { op; dst; a; b } ->
          let regs = IM.add dst (Instr.eval_binop op (eval a) (eval b)) regs in
          let deps = dedup (deps_of_operand a @ deps_of_operand b) in
          let reg_deps = IM.add dst deps reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Cbnz { src; offset } | Instr.Cbz { src; offset } ->
          let taken =
            match thread.(pc) with
            | Instr.Cbnz _ -> get_reg src <> 0
            | _ -> get_reg src = 0
          in
          let ctrl = dedup (deps_of_reg src @ ctrl) in
          let pc' = if taken then pc + 1 + offset else pc + 1 in
          step pc' (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Store { src; addr; order } ->
          let loc = eval addr in
          let event =
            {
              l_action = Event.Write { loc; value = eval src; order };
              l_addr_deps = dedup (deps_of_operand addr);
              l_data_deps = dedup (deps_of_operand src);
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Load_exclusive { dst; addr; order } ->
          let loc = eval addr in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1)
                (Some (loc, next_read)))
            (pool loc)
      | Instr.Store_exclusive { status; src; addr; order } ->
          let loc = eval addr in
          (* Failure branch: the monitor was lost (always possible -
             spurious failure is architecturally allowed). *)
          let fail_regs = IM.add status 1 regs in
          let fail_deps = IM.add status [] reg_deps in
          step (pc + 1) (steps + 1) fail_regs fail_deps ctrl (status :: written) events
            next_read None;
          (* Success branch: only when the monitor matches. *)
          (match monitor with
          | Some (mloc, ridx) when mloc = loc ->
              let event =
                {
                  l_action = Event.Write { loc; value = eval src; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = dedup (deps_of_operand src);
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = None;
                  l_rmw_source = Some ridx;
                }
              in
              let ok_regs = IM.add status 0 regs in
              let ok_deps = IM.add status [] reg_deps in
              step (pc + 1) (steps + 1) ok_regs ok_deps ctrl (status :: written)
                (event :: events) next_read None
          | Some _ | None -> ())
      | Instr.Load { dst; addr; order } ->
          let loc = eval addr in
          let candidates = pool loc in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1) monitor)
            candidates
    end
  in
  step 0 0 IM.empty IM.empty [] [] [] 0 None;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Phase one: value pool fixpoint.                                     *)
(* ------------------------------------------------------------------ *)

let value_pool ~fuel (p : Program.t) =
  let module LM = Map.Make (Int) in
  let module VS = Set.Make (Int) in
  let initial =
    List.fold_left
      (fun acc l -> LM.add l (VS.singleton (Program.initial_value p l)) acc)
      LM.empty (Program.locations p)
  in
  let lookup pool loc =
    match LM.find_opt loc pool with
    | Some vs -> VS.elements vs
    | None -> [ 0 ]
  in
  let grow pool =
    let additions = ref pool in
    Array.iter
      (fun thread ->
        let runs = run_thread ~fuel ~pool:(lookup pool) thread in
        List.iter
          (fun run ->
            List.iter
              (fun e ->
                match e.l_action with
                | Event.Write { loc; value; _ } ->
                    let current =
                      match LM.find_opt loc !additions with
                      | Some vs -> vs
                      | None -> VS.singleton (Program.initial_value p loc)
                    in
                    additions := LM.add loc (VS.add value current) !additions
                | Event.Read _ | Event.Fence _ -> ())
              run.events)
          runs)
      p.Program.threads;
    !additions
  in
  let rec fixpoint pool iterations =
    if iterations > 8 then pool
    else begin
      let next = grow pool in
      if LM.equal VS.equal next pool then pool else fixpoint next (iterations + 1)
    end
  in
  let pool = fixpoint initial 0 in
  lookup pool

(* ------------------------------------------------------------------ *)
(* Phase two: candidate generation.                                    *)
(* ------------------------------------------------------------------ *)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) choices

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      (* Remove the chosen element by position: filtering on structural
         equality would drop every duplicate occurrence at once and
         lose permutations (and their lengths) for lists with repeated
         elements. *)
      List.concat
        (List.mapi
           (fun i x ->
             let rest = List.filteri (fun j _ -> j <> i) l in
             List.map (fun p -> x :: p) (permutations rest))
           l)

(* ------------------------------------------------------------------ *)
(* Candidate skeleton: everything about one choice of per-thread runs
   that is independent of the rf/co assignment.  Built once per run
   combination and shared by every candidate explored from it.         *)
(* ------------------------------------------------------------------ *)

type skeleton = {
  all_events : Event.t array;
  sk_po : Relation.t;
  sk_addr : Relation.t;
  sk_data : Relation.t;
  sk_ctrl : Relation.t;
  sk_rmw : Relation.t;
  init_ids : (Instr.loc * int) list;
  sk_locations : Instr.loc list;
  sk_reads : int list;
  sk_writes : int list;
}

let skeleton_of_runs (p : Program.t) (runs : run array) =
  (* Locations touched by any event or named in the program. *)
  let module LS = Set.Make (Int) in
  let locs = ref (LS.of_list (Program.locations p)) in
  Array.iter
    (fun run ->
      List.iter
        (fun e ->
          match e.l_action with
          | Event.Read { loc; _ } | Event.Write { loc; _ } -> locs := LS.add loc !locs
          | Event.Fence _ -> ())
        run.events)
    runs;
  let locations = LS.elements !locs in
  (* Global events: init writes first, then thread events in order, so
     event ids extend program order (the graph engine adds events in
     id order and relies on this). *)
  let events = ref [] in
  let next_id = ref 0 in
  let push tid po_index action =
    let e = { Event.id = !next_id; tid; po_index; action } in
    incr next_id;
    events := e :: !events;
    e.Event.id
  in
  let init_ids =
    List.map
      (fun l ->
        ( l,
          push Event.init_tid 0
            (Event.Write { loc = l; value = Program.initial_value p l; order = Instr.Plain })
        ))
      locations
  in
  let po = ref Relation.empty in
  let addr = ref Relation.empty in
  let data = ref Relation.empty in
  let ctrl = ref Relation.empty in
  let rmw = ref Relation.empty in
  let read_global = Hashtbl.create 16 in
  (* (tid, read index) -> global id *)
  Array.iteri
    (fun tid run ->
      let ids =
        List.mapi
          (fun po_index e ->
            let gid = push tid po_index e.l_action in
            (match e.l_read_index with
            | Some i -> Hashtbl.replace read_global (tid, i) gid
            | None -> ());
            (gid, e))
          run.events
      in
      (* Transitive program order within the thread. *)
      List.iteri
        (fun i (gi, _) ->
          List.iteri (fun j (gj, _) -> if i < j then po := Relation.add gi gj !po) ids)
        ids;
      List.iter
        (fun (gid, e) ->
          let resolve idx = Hashtbl.find read_global (tid, idx) in
          List.iter (fun i -> addr := Relation.add (resolve i) gid !addr) e.l_addr_deps;
          List.iter (fun i -> data := Relation.add (resolve i) gid !data) e.l_data_deps;
          List.iter (fun i -> ctrl := Relation.add (resolve i) gid !ctrl) e.l_ctrl_deps;
          Option.iter (fun i -> rmw := Relation.add (resolve i) gid !rmw) e.l_rmw_source)
        ids)
    runs;
  let all_events =
    let arr = Array.make !next_id (List.hd !events) in
    List.iter (fun (e : Event.t) -> arr.(e.Event.id) <- e) !events;
    arr
  in
  let reads =
    Array.to_list all_events |> List.filter Event.is_read |> List.map (fun e -> e.Event.id)
  in
  let writes =
    Array.to_list all_events |> List.filter Event.is_write |> List.map (fun e -> e.Event.id)
  in
  {
    all_events;
    sk_po = !po;
    sk_addr = !addr;
    sk_data = !data;
    sk_ctrl = !ctrl;
    sk_rmw = !rmw;
    init_ids;
    sk_locations = locations;
    sk_reads = reads;
    sk_writes = writes;
  }

(* Same-location same-value writes each read may take its value from. *)
let rf_candidates skel r =
  let er = skel.all_events.(r) in
  List.filter
    (fun w ->
      let ew = skel.all_events.(w) in
      Event.same_loc ew er && Event.value ew = Event.value er)
    skel.sk_writes

(* Per-location write sets for coherence-order construction: the init
   write is always co-first. *)
let co_locations skel =
  List.map
    (fun l ->
      let init_id = List.assoc l skel.init_ids in
      let others =
        List.filter
          (fun w -> w <> init_id && Event.loc skel.all_events.(w) = Some l)
          skel.sk_writes
      in
      (l, init_id, others))
    skel.sk_locations

let registers_of_runs (runs : run array) =
  Array.to_list runs
  |> List.mapi (fun tid run -> List.map (fun (r, v) -> ((tid, r), v)) run.final_regs)
  |> List.concat |> List.sort compare

(* The final memory of a complete candidate, read straight off the co
   chains: the co-maximal write for each location is the last element
   of its chain (the init write when nothing else wrote there). *)
let memory_of_chains skel chains =
  List.sort compare
    (List.map
       (fun (l, chain) ->
         let last = List.nth chain (List.length chain - 1) in
         (l, Option.get (Event.value skel.all_events.(last))))
       chains)

(* The rf/co-free execution a skeleton denotes, for static preparation
   and for materializing complete candidates. *)
let execution_of_skeleton skel ~rf ~co =
  {
    Execution.events = skel.all_events;
    po = skel.sk_po;
    rf;
    co;
    addr = skel.sk_addr;
    data = skel.sk_data;
    ctrl = skel.sk_ctrl;
    rmw = skel.sk_rmw;
  }

let co_relation chains =
  List.fold_left
    (fun acc (_, chain) ->
      let rec pairs = function
        | [] | [ _ ] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.fold_left (fun acc (a, b) -> Relation.add a b acc) acc (pairs chain))
    Relation.empty chains

(* ------------------------------------------------------------------ *)
(* Exploration engines.                                                *)
(* ------------------------------------------------------------------ *)

type engine_kind = Pruned | Graph | Reference | Auto

let all_engines = [ Pruned; Graph; Reference; Auto ]

let engine_name = function
  | Pruned -> "pruned"
  | Graph -> "graph"
  | Reference -> "reference"
  | Auto -> "auto"

let engine_of_string = function
  | "pruned" -> Some Pruned
  | "graph" -> Some Graph
  | "reference" -> Some Reference
  | "auto" -> Some Auto
  | _ -> None

(* Ambient engine selection: CLIs set this once before spawning worker
   domains, so every downstream consumer (Check, Conform, Infer, the
   served ops) inherits the choice without threading a parameter
   through each layer.  Per-call [?engine] arguments override it. *)
let default_engine = ref Auto

let set_default_engine e = default_engine := e

let current_default_engine () = !default_engine

(* Auto cutover: route programs whose estimated candidate count falls
   below this threshold to the pruned engine - on tiny tests the graph
   engine's per-step full consistency checks cost more than the
   handful of wasted leaves they avoid.  The estimate is
   sum over run combos of (prod over reads of #rf-candidates
   x prod over locations of #non-init-writes!), i.e. the size of the
   unpruned candidate space, which both engines shrink from. *)
let default_cutover = 2048.

let cutover_threshold () =
  match Sys.getenv_opt "WMM_GRAPH_CUTOVER" with
  | Some s -> ( try float_of_string (String.trim s) with _ -> default_cutover)
  | None -> default_cutover

(* ------------------------------------------------------------------ *)
(* Exploration statistics.                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  generated : int;
  pruned : int;
  well_formed : int;
  consistent : int;
  graph_executions : int;
  revisits : int;
  symmetry_skips : int;
  cutover_small : int;
  wall_s : float;
}

let zero_stats =
  {
    generated = 0;
    pruned = 0;
    well_formed = 0;
    consistent = 0;
    graph_executions = 0;
    revisits = 0;
    symmetry_skips = 0;
    cutover_small = 0;
    wall_s = 0.;
  }

type counters = {
  mutable c_generated : int;
  mutable c_pruned : int;
  mutable c_well_formed : int;
  mutable c_consistent : int;
  mutable c_graph_executions : int;
  mutable c_revisits : int;
  mutable c_symmetry_skips : int;
  mutable c_cutover_small : int;
}

let fresh_counters () =
  {
    c_generated = 0;
    c_pruned = 0;
    c_well_formed = 0;
    c_consistent = 0;
    c_graph_executions = 0;
    c_revisits = 0;
    c_symmetry_skips = 0;
    c_cutover_small = 0;
  }

let stats_of_counters c ~wall_s =
  {
    generated = c.c_generated;
    pruned = c.c_pruned;
    well_formed = c.c_well_formed;
    consistent = c.c_consistent;
    graph_executions = c.c_graph_executions;
    revisits = c.c_revisits;
    symmetry_skips = c.c_symmetry_skips;
    cutover_small = c.c_cutover_small;
    wall_s;
  }

(* Process-global accumulator, so long-running harnesses (engine
   worker domains included - this is a plain lock, safe across
   domains) can surface cumulative exploration work in telemetry. *)
let global_lock = Mutex.create ()

let global_acc = ref zero_stats

let record_global s =
  Mutex.lock global_lock;
  let g = !global_acc in
  global_acc :=
    {
      generated = g.generated + s.generated;
      pruned = g.pruned + s.pruned;
      well_formed = g.well_formed + s.well_formed;
      consistent = g.consistent + s.consistent;
      graph_executions = g.graph_executions + s.graph_executions;
      revisits = g.revisits + s.revisits;
      symmetry_skips = g.symmetry_skips + s.symmetry_skips;
      cutover_small = g.cutover_small + s.cutover_small;
      wall_s = g.wall_s +. s.wall_s;
    };
  Mutex.unlock global_lock

let global_stats () =
  Mutex.lock global_lock;
  let s = !global_acc in
  Mutex.unlock global_lock;
  s

let reset_global_stats () =
  Mutex.lock global_lock;
  global_acc := zero_stats;
  Mutex.unlock global_lock

(* ------------------------------------------------------------------ *)
(* Memoized static contexts.

   The static part of a consistency check depends only on the
   candidate shape (events with their values erased, dependencies,
   rmw pairs, locations) - not on which run combination or which test
   instance produced it, and its model-independent slice not even on
   the model.  Small tests dominated by setup cost (the library-44
   regression) hit the same handful of shapes over and over, across
   combos, across the five models, and across engine worker domains,
   so both layers are memoized process-globally behind a lock.
   Prepared contexts are immutable after construction, which makes
   sharing them across domains safe.                                   *)
(* ------------------------------------------------------------------ *)

let memo_lock = Mutex.create ()

let base_memo : (string, Axiomatic.base) Hashtbl.t = Hashtbl.create 64

let static_memo : (string, Axiomatic.static) Hashtbl.t = Hashtbl.create 64

let memo_cap = 4096

let memo_find tbl key =
  Mutex.lock memo_lock;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock memo_lock;
  r

let memo_store tbl key v =
  Mutex.lock memo_lock;
  if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v;
  Mutex.unlock memo_lock

let skeleton_norm skel =
  let normalize (e : Event.t) =
    let action =
      match e.Event.action with
      | Event.Read { loc; order; value = _ } -> Event.Read { loc; order; value = 0 }
      | Event.Write { loc; order; value = _ } -> Event.Write { loc; order; value = 0 }
      | Event.Fence _ as a -> a
    in
    (e.Event.tid, e.Event.po_index, action)
  in
  ( Array.map normalize skel.all_events,
    Relation.to_list skel.sk_addr,
    Relation.to_list skel.sk_data,
    Relation.to_list skel.sk_ctrl,
    Relation.to_list skel.sk_rmw,
    skel.init_ids,
    skel.sk_locations )

(* One-entry fast path in front of the digest: consecutive run combos
   of the same program almost always share a normalized shape (they
   differ only in read/write values, which the normal form erases),
   and a structural comparison of the small normal form is an order
   of magnitude cheaper than marshalling and hashing it. *)
let last_static :
    (Axiomatic.model
    * ((int * int * Event.action) array
      * (int * int) list
      * (int * int) list
      * (int * int) list
      * (int * int) list
      * (Instr.loc * int) list
      * Instr.loc list)
    * Axiomatic.static)
    option
    ref =
  ref None

let static_for model skel =
  let norm = skeleton_norm skel in
  let fast =
    Mutex.lock memo_lock;
    let r =
      match !last_static with
      | Some (m, n, st) when m = model && n = norm -> Some st
      | _ -> None
    in
    Mutex.unlock memo_lock;
    r
  in
  match fast with
  | Some st -> st
  | None ->
      let key = Digest.to_hex (Digest.string (Marshal.to_string norm [])) in
      let skey = Axiomatic.model_name model ^ "|" ^ key in
      let st =
        match memo_find static_memo skey with
        | Some st -> st
        | None ->
            let base =
              match memo_find base_memo key with
              | Some b -> b
              | None ->
                  let b =
                    Axiomatic.prepare_base
                      (execution_of_skeleton skel ~rf:Relation.empty ~co:Relation.empty)
                  in
                  memo_store base_memo key b;
                  b
            in
            let st = Axiomatic.of_base model base in
            memo_store static_memo skey st;
            st
      in
      Mutex.lock memo_lock;
      last_static := Some (model, norm, st);
      Mutex.unlock memo_lock;
      st

(* ------------------------------------------------------------------ *)
(* Pruned backtracking rf/co search.

   Candidates are built incrementally: first every read is assigned
   its rf source (fewest-candidates-first, so contradictions surface
   early), then each location's coherence order is grown one write at
   a time (the chain prefix is co-before the appended write).  Both
   kinds of step only ever add edges, so [Axiomatic.prune_viable] -
   checked after every step when a model context is supplied - can
   soundly cut the whole subtree on the first cycle or atomicity
   violation.  Leaves are complete candidates, well-formed by
   construction (rf is value/location-matched and unique per read, co
   is a per-location total order with init first).                     *)
(* ------------------------------------------------------------------ *)

let search ?static skel ~counters ~(emit : rf_pairs:(int * int) list ->
                                           chains:(Instr.loc * int list) list ->
                                           consistent:bool -> unit) =
  let ev = skel.all_events in
  let n = Array.length ev in
  let rf = Bitrel.create n and co = Bitrel.create n in
  let reads = Array.of_list skel.sk_reads in
  let nreads = Array.length reads in
  let rf_cands = Array.map (fun r -> rf_candidates skel r) reads in
  let order = Array.init nreads Fun.id in
  Array.sort
    (fun i j -> compare (List.length rf_cands.(i)) (List.length rf_cands.(j)))
    order;
  let viable =
    match static with
    | Some st when Axiomatic.prune_possible st ->
        fun () -> Axiomatic.prune_viable st ~rf ~co
    | Some _ | None -> fun () -> true
  in
  let locs = co_locations skel in
  let rf_edges = ref [] in
  (* Cooperative cancellation: the search can run for minutes on
     adversarial candidates, so poll the ambient token on a masked
     tick — cheap enough to disappear in the noise, frequent enough
     that a deadline lands within milliseconds. *)
  let tick = ref 0 in
  let poll () =
    incr tick;
    if !tick land 1023 = 0 then Wmm_util.Cancel.check_ambient ()
  in
  if Array.exists (fun c -> c = []) rf_cands then ()
  else begin
    let rec assign_read i =
      if i = nreads then assign_locs locs []
      else begin
        poll ();
        let r = reads.(order.(i)) in
        List.iter
          (fun w ->
            Bitrel.add rf w r;
            rf_edges := (w, r) :: !rf_edges;
            if viable () then assign_read (i + 1)
            else counters.c_pruned <- counters.c_pruned + 1;
            rf_edges := List.tl !rf_edges;
            Bitrel.remove rf w r)
          rf_cands.(order.(i))
      end
    and assign_locs remaining_locs done_chains =
      match remaining_locs with
      | [] -> leaf done_chains
      | (l, init_id, others) :: rest -> extend l [ init_id ] others rest done_chains
    and extend l placed remaining rest done_chains =
      match remaining with
      | [] -> assign_locs rest ((l, List.rev placed) :: done_chains)
      | _ ->
          poll ();
          List.iter
            (fun w ->
              let others = List.filter (fun o -> o <> w) remaining in
              List.iter (fun prior -> Bitrel.add co prior w) placed;
              if viable () then extend l (w :: placed) others rest done_chains
              else counters.c_pruned <- counters.c_pruned + 1;
              List.iter (fun prior -> Bitrel.remove co prior w) placed)
            remaining
    and leaf done_chains =
      counters.c_generated <- counters.c_generated + 1;
      counters.c_well_formed <- counters.c_well_formed + 1;
      (* Every edge on the path here passed [prune_viable], which on a
         complete candidate subsumes all axioms except POWER's
         observation/propagation - only the residual remains. *)
      let consistent =
        match static with
        | None -> true
        | Some st -> Axiomatic.residual_consistent st ~rf ~co
      in
      if consistent then counters.c_consistent <- counters.c_consistent + 1;
      emit ~rf_pairs:!rf_edges ~chains:done_chains ~consistent
    in
    assign_read 0
  end

(* ------------------------------------------------------------------ *)
(* Graph engine: incremental execution-graph enumeration.

   Events are added to the graph one at a time in event-id order -
   init writes are pre-placed and thread events follow tid-major, so
   id order extends program order and every thread grows in program
   order.  A read extends the graph with one rf choice: an
   already-placed write adds its edge immediately, while a write not
   yet in the graph is *promised* (the revisit move, counted in
   [revisits]): the search commits to the future rf edge now and
   materializes it when the write is placed, which is how executions
   whose reads observe po-later or other-thread-later writes are
   reached exactly once instead of via re-exploration.  A write picks
   an insertion point in its location's current coherence chain
   (insertion order <-> final chain order is a bijection, so no
   candidate repeats).

   Every edge-adding step is screened by the model's full consistency
   check - the monotone pruning core plus the residual axioms, all of
   which only gain edges as rf/co grow, so a violation now persists in
   every extension.  At a leaf the same conjunction is exactly
   [consistent_static] (an invariant the test suite checks), so every
   leaf reached is a consistent execution and none is wasted:
   explored == consistent, the optimality the benchmark asserts.

   Symmetry reduction: for each group of interchangeable threads
   (Symmetry.detect), only canonical executions are enumerated - the
   group members' first writes must sit in member order along their
   shared coherence chain.  Each orbit under the group's permutations
   contains exactly one canonical element (first-write positions are
   distinct, so non-identity permutations fix nothing), cutting the
   leaf count by |perms| and the subtrees below non-canonical
   insertions with it ([symmetry_skips] counts skipped insertion
   points).  The full outcome set is recovered by replaying every
   permutation's value substitution over the canonical outcomes.       *)
(* ------------------------------------------------------------------ *)

let graph_search ~static ~(sym : Symmetry.t) skel ~counters
    ~(emit : chains:(Instr.loc * int list) list -> unit) =
  let ev = skel.all_events in
  let n = Array.length ev in
  let rf = Bitrel.create n and co = Bitrel.create n in
  let rf_cands = Array.make n [] in
  List.iter (fun r -> rf_cands.(r) <- rf_candidates skel r) skel.sk_reads;
  if List.exists (fun r -> rf_cands.(r) = []) skel.sk_reads then ()
  else begin
    let chains = Hashtbl.create 8 in
    List.iter (fun (l, init_id) -> Hashtbl.replace chains l [ init_id ]) skel.init_ids;
    (* write id -> reads holding a promise on it *)
    let promises = Array.make n [] in
    (* first write of a group member -> first write of the previous
       member (same location by construction: members share shape) *)
    let sym_pred = Array.make n (-1) in
    List.iter
      (fun (g : Symmetry.group) ->
        let first_write tid =
          let rec find i =
            if i >= n then -1
            else if ev.(i).Event.tid = tid && Event.is_write ev.(i) then i
            else find (i + 1)
          in
          find 0
        in
        let fws = List.map first_write g.Symmetry.g_members in
        ignore
          (List.fold_left
             (fun prev fw ->
               if fw >= 0 && prev >= 0 then sym_pred.(fw) <- prev;
               fw)
             (-1) fws))
      sym.Symmetry.s_groups;
    let pp = Axiomatic.prune_possible static in
    (* rf/co are complete once the last read or write is placed
       (fences add no incremental edges), so the residual axioms -
       which on a partial graph can only ever rule out prefixes whose
       completions all fail anyway - are checked once, on the
       completing placement, instead of at every node.  The monotone
       core still screens every step. *)
    let last_rw =
      let r = ref (-1) in
      Array.iteri
        (fun i e ->
          match e.Event.action with Event.Fence _ -> () | _ -> r := i)
        ev;
      !r
    in
    let viable i =
      ((not pp) || Axiomatic.prune_viable static ~rf ~co)
      && (i < last_rw || Axiomatic.residual_consistent static ~rf ~co)
    in
    let tick = ref 0 in
    let poll () =
      incr tick;
      if !tick land 1023 = 0 then Wmm_util.Cancel.check_ambient ()
    in
    let start = List.length skel.init_ids in
    let rec place i =
      if i = n then leaf ()
      else begin
        poll ();
        match ev.(i).Event.action with
        | Event.Fence _ -> place (i + 1)
        | Event.Read _ -> place_read i
        | Event.Write _ -> place_write i
      end
    and place_read i =
      List.iter
        (fun w ->
          if w < i then begin
            Bitrel.add rf w i;
            if viable i then place (i + 1)
            else counters.c_pruned <- counters.c_pruned + 1;
            Bitrel.remove rf w i
          end
          else begin
            counters.c_revisits <- counters.c_revisits + 1;
            promises.(w) <- i :: promises.(w);
            place (i + 1);
            promises.(w) <- List.tl promises.(w)
          end)
        rf_cands.(i)
    and place_write i =
      let l = Option.get (Event.loc ev.(i)) in
      let chain = Hashtbl.find chains l in
      let len = List.length chain in
      (* Coherence extends per-location program order: insertion
         points before the latest already-placed same-thread write
         would fail sc-per-location, so skip them outright (counted
         as pruned - the check would have cut them anyway). *)
      let po_min =
        let rec scan k best = function
          | [] -> best
          | w :: rest ->
              scan (k + 1)
                (if ev.(w).Event.tid = ev.(i).Event.tid then k + 1 else best)
                rest
        in
        scan 0 1 chain
      in
      (* Canonicity: a group member's first write goes after the
         previous member's first write in their shared chain. *)
      let sym_min =
        if sym_pred.(i) < 0 then 1
        else
          let rec idx k = function
            | [] -> 1
            | w :: rest -> if w = sym_pred.(i) then k + 1 else idx (k + 1) rest
          in
          idx 0 chain
      in
      counters.c_pruned <- counters.c_pruned + (po_min - 1);
      let eff_min = max po_min sym_min in
      if sym_min > po_min then
        counters.c_symmetry_skips <- counters.c_symmetry_skips + (sym_min - po_min);
      let promised = promises.(i) in
      List.iter (fun r -> Bitrel.add rf i r) promised;
      for pos = eff_min to len do
        let before = List.filteri (fun k _ -> k < pos) chain in
        let after = List.filteri (fun k _ -> k >= pos) chain in
        List.iter (fun w -> Bitrel.add co w i) before;
        List.iter (fun w -> Bitrel.add co i w) after;
        Hashtbl.replace chains l (before @ (i :: after));
        if viable i then place (i + 1) else counters.c_pruned <- counters.c_pruned + 1;
        Hashtbl.replace chains l chain;
        List.iter (fun w -> Bitrel.remove co w i) before;
        List.iter (fun w -> Bitrel.remove co i w) after
      done;
      List.iter (fun r -> Bitrel.remove rf i r) promised
    and leaf () =
      counters.c_generated <- counters.c_generated + 1;
      counters.c_well_formed <- counters.c_well_formed + 1;
      counters.c_consistent <- counters.c_consistent + 1;
      counters.c_graph_executions <- counters.c_graph_executions + 1;
      let done_chains =
        List.map (fun (l, _) -> (l, Hashtbl.find chains l)) skel.init_ids
      in
      emit ~chains:done_chains
    in
    place start
  end

let run_combos ~fuel (p : Program.t) =
  (match Program.validate p with Ok () -> () | Error msg -> invalid_arg msg);
  let pool = value_pool ~fuel p in
  let per_thread_runs =
    Array.to_list (Array.map (fun thread -> run_thread ~fuel ~pool thread) p.Program.threads)
  in
  List.map Array.of_list (cartesian per_thread_runs)

let outcome_of (p : Program.t) (runs : run array) (x : Execution.t) =
  ignore p;
  { registers = registers_of_runs runs; memory = Execution.final_memory x }

let candidate_executions ?(fuel = 1024) (p : Program.t) =
  let acc = ref [] in
  let counters = fresh_counters () in
  List.iter
    (fun runs ->
      let skel = skeleton_of_runs p runs in
      let registers = registers_of_runs runs in
      search skel ~counters ~emit:(fun ~rf_pairs ~chains ~consistent:_ ->
          let x =
            execution_of_skeleton skel ~rf:(Relation.of_list rf_pairs)
              ~co:(co_relation chains)
          in
          acc := (x, { registers; memory = memory_of_chains skel chains }) :: !acc))
    (run_combos ~fuel p);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pre-rewrite reference path: materialize the full cartesian product
   of rf choices and per-location co permutations, filter by
   well-formedness, then by the model.  Kept as the oracle for golden
   tests and as the baseline the perf benchmark measures against.      *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  let cartesian = cartesian

  let permutations = permutations

  let executions_of_runs (p : Program.t) (runs : run array) =
    let skel = skeleton_of_runs p runs in
    let rf_choices =
      List.map (fun r -> List.map (fun w -> (w, r)) (rf_candidates skel r)) skel.sk_reads
    in
    if List.exists (fun c -> c = []) rf_choices then []
    else begin
      let rf_assignments = cartesian rf_choices in
      let co_per_loc =
        List.map
          (fun (l, init_id, others) ->
            List.map (fun perm -> (l, init_id :: perm)) (permutations others))
          (co_locations skel)
      in
      let co_assignments = cartesian co_per_loc in
      List.concat_map
        (fun rf_pairs ->
          let rf = Relation.of_list rf_pairs in
          List.filter_map
            (fun chains ->
              let x = execution_of_skeleton skel ~rf ~co:(co_relation chains) in
              match Execution.well_formed x with Ok () -> Some x | Error _ -> None)
            co_assignments)
        rf_assignments
    end

  let candidate_executions ?(fuel = 1024) (p : Program.t) =
    List.concat_map
      (fun runs ->
        List.map (fun x -> (x, outcome_of p runs x)) (executions_of_runs p runs))
      (run_combos ~fuel p)

  let allowed_outcomes model p =
    candidate_executions p
    |> List.filter (fun (x, _) -> Axiomatic.consistent model x)
    |> List.map snd
    |> List.sort_uniq compare_outcome
end

(* ------------------------------------------------------------------ *)
(* Engine dispatch.                                                    *)
(* ------------------------------------------------------------------ *)

let float_fact n =
  let r = ref 1. in
  for k = 2 to n do
    r := !r *. float_of_int k
  done;
  !r

(* Size of the unpruned candidate space, the quantity the cutover
   heuristic thresholds on.  Computed straight off the run combos
   (same arithmetic as [rf_candidates] x per-location coherence
   permutations) so dispatch needs no skeletons: the graph engine
   skips skeleton construction for non-representative combos, and
   building them here just to size the space would give that saving
   back. *)
let estimated_candidates ?(limit = infinity) p combos =
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let count tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let rec go acc = function
    | [] -> acc
    | _ when acc >= limit -> acc
    | (runs : run array) :: rest ->
        let wcount = Hashtbl.create 16 (* (loc, value) -> writes *) in
        let lcount = Hashtbl.create 8 (* loc -> non-init writes *) in
        let reads = ref [] in
        List.iter
          (fun l ->
            bump wcount (l, Program.initial_value p l);
            if not (Hashtbl.mem lcount l) then Hashtbl.replace lcount l 0)
          (Program.locations p);
        Array.iter
          (fun run ->
            List.iter
              (fun e ->
                match e.l_action with
                | Event.Read { loc; value; _ } -> reads := (loc, value) :: !reads
                | Event.Write { loc; value; _ } ->
                    if not (Hashtbl.mem lcount loc) then begin
                      Hashtbl.replace lcount loc 0;
                      bump wcount (loc, Program.initial_value p loc)
                    end;
                    bump lcount loc;
                    bump wcount (loc, value)
                | Event.Fence _ -> ())
              run.events)
            runs;
        (* Locations only ever read still contribute an init write as
           the sole rf candidate (factor 1): only [wcount] needs them,
           and a missing entry would under-count a read of the initial
           value, so patch those in before multiplying. *)
        List.iter
          (fun (l, v) ->
            if not (Hashtbl.mem lcount l) then begin
              Hashtbl.replace lcount l 0;
              bump wcount (l, Program.initial_value p l)
            end;
            ignore v)
          !reads;
        let rf_est =
          List.fold_left
            (fun pr lv -> pr *. float_of_int (count wcount lv))
            1. !reads
        in
        let co_est =
          Hashtbl.fold (fun _ k pr -> pr *. float_fact k) lcount 1.
        in
        go (acc +. (rf_est *. co_est)) rest
  in
  go 0. combos

(* Resolve [Auto] for one program: below the cutover the pruned
   engine's cheaper per-node screen wins; above it the graph engine's
   zero-waste enumeration does. *)
let resolve_engine ~counters engine est =
  match engine with
  | Pruned | Graph | Reference -> engine
  | Auto ->
      if Lazy.force est < cutover_threshold () then begin
        counters.c_cutover_small <- counters.c_cutover_small + 1;
        Pruned
      end
      else Graph

(* The vector of values a combo's loads observe, in a fixed event
   order: the signature the symmetry group acts on.  Permutations fix
   every reading thread (only emitters are permuted), so a combo's
   orbit is given by mapping this vector pointwise. *)
let combo_reads (runs : run array) =
  let vs = ref [] in
  Array.iter
    (fun run ->
      List.iter
        (fun e ->
          match e.l_action with
          | Event.Read { value; _ } -> vs := value :: !vs
          | _ -> ())
        run.events)
    runs;
  Array.of_list (List.rev !vs)

(* Value tables of the non-identity substitutions, for the
   representative test below: mapping through an array and comparing
   element-wise beats allocating a mapped list per (combo,
   permutation).  [None] when some substitution involves a negative
   value and the tables don't apply. *)
let combo_canon_tables (sym : Symmetry.t) =
  let maxv = ref 0 and minv = ref 0 in
  List.iter
    (fun (perm : Symmetry.perm) ->
      List.iter
        (fun (a, b) ->
          if a > !maxv then maxv := a;
          if b > !maxv then maxv := b;
          if a < !minv then minv := a;
          if b < !minv then minv := b)
        perm.Symmetry.p_value)
    sym.Symmetry.s_perms;
  if !minv < 0 then None
  else
    Some
      (List.filter_map
         (fun (perm : Symmetry.perm) ->
           if perm.Symmetry.p_value = [] then None
           else begin
             let vmap = Array.init (!maxv + 1) Fun.id in
             List.iter (fun (a, b) -> vmap.(a) <- b) perm.Symmetry.p_value;
             Some vmap
           end)
         sym.Symmetry.s_perms)

(* A combo is a representative iff its read vector is lex-least in
   its orbit.  Two distinct combos never share the lex-least vector:
   a permutation fixing the vector fixes every observed value, hence
   maps each reading thread's run to itself. *)
let canonical_combo (sym : Symmetry.t) tables (reads : int array) =
  match tables with
  | Some tables ->
      List.for_all
        (fun (vmap : int array) ->
          let n = Array.length reads in
          let rec go i =
            if i >= n then true
            else
              let v = Array.unsafe_get reads i in
              let v' = if v >= 0 && v < Array.length vmap then Array.unsafe_get vmap v else v in
              if v < v' then true else if v > v' then false else go (i + 1)
          in
          go 0)
        tables
  | None ->
      let reads = Array.to_list reads in
      List.for_all
        (fun (perm : Symmetry.perm) ->
          perm.Symmetry.p_value = []
          || reads <= List.map (Symmetry.map_value perm) reads)
        sym.Symmetry.s_perms

(* Expansion of canonical outcomes into the full set.

   Generic path: apply every permutation's register/memory map to
   every canonical outcome and dedup.  Used only as a fallback - the
   common case goes through the packed fast path below. *)
let expand_generic (sym : Symmetry.t) outcomes =
  List.concat_map
    (fun o ->
      List.map
        (fun perm ->
          {
            registers = Symmetry.map_registers perm o.registers;
            memory = Symmetry.map_memory perm o.memory;
          })
        sym.Symmetry.s_perms)
    (List.sort_uniq compare_outcome outcomes)
  |> List.sort_uniq compare_outcome

(* Fast path.  Permuted threads are emitters, which write no
   registers, so thread permutations fix every register key
   (tid, reg): an image differs from its canonical outcome only by
   the value substitution applied pointwise to register and memory
   values.  When additionally every canonical outcome shares one key
   shape (run combos of a single program) and the values are small
   non-negative ints, an outcome IS its value vector and the vector
   packs into one OCaml int.  Images then cost a table lookup per
   slot, dedup is an int sort, and the packed order coincides with
   [compare_outcome] order (equal keys, value-lexicographic), so
   decoding yields the sorted outcome list directly. *)
let expand_symmetric (sym : Symmetry.t) outcomes =
  if Symmetry.trivial sym then List.sort_uniq compare_outcome outcomes
  else
    match outcomes with
    | [] -> []
    | first :: _ ->
        let rkeys = List.map fst first.registers in
        let mkeys = List.map fst first.memory in
        let same_shape o =
          List.map fst o.registers = rkeys && List.map fst o.memory = mkeys
        in
        let tids_fixed =
          List.for_all
            (fun (t, _) ->
              List.for_all
                (fun p -> p.Symmetry.p_tid.(t) = t)
                sym.Symmetry.s_perms)
            rkeys
        in
        if not (tids_fixed && List.for_all same_shape outcomes) then
          expand_generic sym outcomes
        else begin
          let vec_of o =
            Array.of_list (List.map snd o.registers @ List.map snd o.memory)
          in
          let vecs = List.map vec_of outcomes in
          let slots = List.length rkeys + List.length mkeys in
          let maxv = ref 0 and minv = ref 0 in
          List.iter
            (Array.iter (fun v ->
                 if v > !maxv then maxv := v;
                 if v < !minv then minv := v))
            vecs;
          List.iter
            (fun (p : Symmetry.perm) ->
              List.iter
                (fun (a, b) ->
                  if b > !maxv then maxv := b;
                  if a < 0 || b < 0 then minv := -1)
                p.Symmetry.p_value)
            sym.Symmetry.s_perms;
          let bits =
            let rec go b = if !maxv < 1 lsl b then b else go (b + 1) in
            go 1
          in
          if !minv < 0 || slots = 0 || slots * bits > 62 then
            expand_generic sym outcomes
          else begin
            let vmaps =
              List.map
                (fun (perm : Symmetry.perm) ->
                  let vmap = Array.init (!maxv + 1) Fun.id in
                  List.iter
                    (fun (a, b) -> if a <= !maxv then vmap.(a) <- b)
                    perm.Symmetry.p_value;
                  vmap)
                sym.Symmetry.s_perms
            in
            (* An image depends only on a substitution's restriction
               to the values the vector actually contains, so per
               used-value set keep one substitution per distinct
               restriction: the images of one canonical outcome are
               then produced without duplicates (its orbit exactly),
               typically shrinking the image count by the average
               stabilizer size. *)
            let restrict =
              if !maxv > 62 then fun _ -> vmaps
              else begin
                let cache = Hashtbl.create 8 in
                fun (vec : int array) ->
                  let mask =
                    Array.fold_left (fun m v -> m lor (1 lsl v)) 0 vec
                  in
                  match Hashtbl.find_opt cache mask with
                  | Some l -> l
                  | None ->
                      let seen = Hashtbl.create 16 in
                      let keep =
                        List.filter
                          (fun (vmap : int array) ->
                            let sg = ref [] in
                            for v = !maxv downto 0 do
                              if mask land (1 lsl v) <> 0 then
                                sg := vmap.(v) :: !sg
                            done;
                            if Hashtbl.mem seen !sg then false
                            else begin
                              Hashtbl.add seen !sg ();
                              true
                            end)
                          vmaps
                      in
                      Hashtbl.add cache mask keep;
                      keep
              end
            in
            let buf = ref (Array.make (max 16 (List.length vecs)) 0) in
            let len = ref 0 in
            let push k =
              if !len = Array.length !buf then begin
                let b = Array.make (2 * !len) 0 in
                Array.blit !buf 0 b 0 !len;
                buf := b
              end;
              !buf.(!len) <- k;
              incr len
            in
            List.iter
              (fun vec ->
                List.iter
                  (fun vmap ->
                    let key = ref 0 in
                    for j = 0 to slots - 1 do
                      key :=
                        (!key lsl bits)
                        lor Array.unsafe_get vmap (Array.unsafe_get vec j)
                    done;
                    push !key)
                  (restrict vec))
              vecs;
            let n = !len in
            (* LSD radix sort: packed keys are bounded by
               [slots * bits] bits, and closure-based [Array.sort] is
               an order of magnitude slower on this volume. *)
            let packed =
              let a = ref (Array.sub !buf 0 n) in
              let tmp = ref (Array.make n 0) in
              let count = Array.make 257 0 in
              let shift = ref 0 in
              while !shift < slots * bits do
                Array.fill count 0 257 0;
                let src = !a and dst = !tmp in
                for i = 0 to n - 1 do
                  let d = (Array.unsafe_get src i lsr !shift) land 0xff in
                  count.(d + 1) <- count.(d + 1) + 1
                done;
                for d = 1 to 256 do
                  count.(d) <- count.(d) + count.(d - 1)
                done;
                for i = 0 to n - 1 do
                  let v = Array.unsafe_get src i in
                  let d = (v lsr !shift) land 0xff in
                  Array.unsafe_set dst count.(d) v;
                  count.(d) <- count.(d) + 1
                done;
                a := dst;
                tmp := src;
                shift := !shift + 8
              done;
              !a
            in
            let mask = (1 lsl bits) - 1 in
            let rkeys_a = Array.of_list rkeys in
            let mkeys_a = Array.of_list mkeys in
            let nr = Array.length rkeys_a in
            let nm = Array.length mkeys_a in
            let decode key =
              (* Low-order slots are memory, high-order registers:
                 peel values off the key back to front, consing the
                 lists in their original (sorted) order. *)
              let k = ref key in
              let memory = ref [] in
              for j = nm - 1 downto 0 do
                memory := (Array.unsafe_get mkeys_a j, !k land mask) :: !memory;
                k := !k lsr bits
              done;
              let registers = ref [] in
              for j = nr - 1 downto 0 do
                registers := (Array.unsafe_get rkeys_a j, !k land mask) :: !registers;
                k := !k lsr bits
              done;
              { registers = !registers; memory = !memory }
            in
            let out = ref [] in
            for j = n - 1 downto 0 do
              if j = n - 1 || packed.(j) <> packed.(j + 1) then
                out := decode packed.(j) :: !out
            done;
            !out
          end
        end

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

(* Candidate count of one run combo, for the reference engine's
   [generated] accounting (cheap: reference is only ever pointed at
   small tests). *)
let reference_generated skel =
  let rf_n =
    List.fold_left (fun acc r -> acc * List.length (rf_candidates skel r)) 1 skel.sk_reads
  in
  let co_n =
    List.fold_left
      (fun acc (_, _, others) -> acc * fact (List.length others))
      1 (co_locations skel)
  in
  rf_n * co_n

let allowed_outcomes_stats ?(fuel = 1024) ?engine model (p : Program.t) =
  let t0 = Unix.gettimeofday () in
  let counters = fresh_counters () in
  let combos = run_combos ~fuel p in
  let engine =
    resolve_engine ~counters
      (match engine with Some e -> e | None -> !default_engine)
      (lazy (estimated_candidates ~limit:(cutover_threshold ()) p combos))
  in
  let outcomes =
    match engine with
    | Auto -> assert false
    | Pruned ->
        let acc = ref [] in
        List.iter
          (fun runs ->
            let skel = skeleton_of_runs p runs in
            let static = static_for model skel in
            let registers = registers_of_runs runs in
            search ~static skel ~counters ~emit:(fun ~rf_pairs:_ ~chains ~consistent ->
                if consistent then
                  acc := { registers; memory = memory_of_chains skel chains } :: !acc))
          combos;
        List.sort_uniq compare_outcome !acc
    | Graph ->
        let sym = Symmetry.detect p in
        let tables = combo_canon_tables sym in
        let acc = ref [] in
        List.iter
          (fun runs ->
            let reads = combo_reads runs in
            if not (canonical_combo sym tables reads) then
              counters.c_symmetry_skips <- counters.c_symmetry_skips + 1
            else begin
              let skel = skeleton_of_runs p runs in
              let static = static_for model skel in
              let registers = registers_of_runs runs in
              let rsym = Symmetry.refine p sym ~reads:(Array.to_list reads) in
              graph_search ~static ~sym:rsym skel ~counters ~emit:(fun ~chains ->
                  acc := { registers; memory = memory_of_chains skel chains } :: !acc)
            end)
          combos;
        expand_symmetric sym !acc
    | Reference ->
        let acc = ref [] in
        List.iter
          (fun runs ->
            let skel = skeleton_of_runs p runs in
            counters.c_generated <- counters.c_generated + reference_generated skel;
            let xs = Reference.executions_of_runs p runs in
            counters.c_well_formed <- counters.c_well_formed + List.length xs;
            List.iter
              (fun x ->
                if Axiomatic.consistent model x then begin
                  counters.c_consistent <- counters.c_consistent + 1;
                  acc := outcome_of p runs x :: !acc
                end)
              xs)
          combos;
        List.sort_uniq compare_outcome !acc
  in
  let stats = stats_of_counters counters ~wall_s:(Unix.gettimeofday () -. t0) in
  record_global stats;
  (outcomes, stats)

let allowed_outcomes ?engine model p = fst (allowed_outcomes_stats ?engine model p)

exception Found

let exists_outcome ?(fuel = 1024) ?engine model (p : Program.t) pred =
  let t0 = Unix.gettimeofday () in
  let counters = fresh_counters () in
  let skels =
    run_combos ~fuel p
  in
  let engine =
    resolve_engine ~counters
      (match engine with Some e -> e | None -> !default_engine)
      (lazy (estimated_candidates ~limit:(cutover_threshold ()) p skels))
  in
  let found =
    try
      (match engine with
      | Auto -> assert false
      | Pruned ->
          List.iter
            (fun runs ->
              let skel = skeleton_of_runs p runs in
              let static = static_for model skel in
              let registers = registers_of_runs runs in
              search ~static skel ~counters
                ~emit:(fun ~rf_pairs:_ ~chains ~consistent ->
                  if
                    consistent
                    && pred { registers; memory = memory_of_chains skel chains }
                  then raise Found))
            skels
      | Graph ->
          let sym = Symmetry.detect p in
          let tables = combo_canon_tables sym in
          List.iter
            (fun runs ->
              let reads = combo_reads runs in
              if not (canonical_combo sym tables reads) then
                counters.c_symmetry_skips <- counters.c_symmetry_skips + 1
              else begin
                let skel = skeleton_of_runs p runs in
                let static = static_for model skel in
                let registers = registers_of_runs runs in
                let rsym = Symmetry.refine p sym ~reads:(Array.to_list reads) in
                graph_search ~static ~sym:rsym skel ~counters ~emit:(fun ~chains ->
                    let o = { registers; memory = memory_of_chains skel chains } in
                    let hit =
                      if Symmetry.trivial sym then pred o
                      else
                        List.exists
                          (fun perm ->
                            pred
                              {
                                registers = Symmetry.map_registers perm o.registers;
                                memory = Symmetry.map_memory perm o.memory;
                              })
                          sym.Symmetry.s_perms
                    in
                    if hit then raise Found)
              end)
            skels
      | Reference ->
          List.iter
            (fun runs ->
              let skel = skeleton_of_runs p runs in
              counters.c_generated <- counters.c_generated + reference_generated skel;
              let xs = Reference.executions_of_runs p runs in
              counters.c_well_formed <- counters.c_well_formed + List.length xs;
              List.iter
                (fun x ->
                  if Axiomatic.consistent model x then begin
                    counters.c_consistent <- counters.c_consistent + 1;
                    if pred (outcome_of p runs x) then raise Found
                  end)
                xs)
            skels);
      false
    with Found -> true
  in
  record_global (stats_of_counters counters ~wall_s:(Unix.gettimeofday () -. t0));
  found

let outcome_allowed ?engine model p query =
  let matches (full : outcome) =
    List.for_all
      (fun (key, v) ->
        match List.assoc_opt key full.registers with Some v' -> v = v' | None -> false)
      query.registers
    && List.for_all
         (fun (l, v) ->
           match List.assoc_opt l full.memory with Some v' -> v = v' | None -> false)
         query.memory
  in
  exists_outcome ?engine model p matches
