open Wmm_isa
module B = Bitrel

(* The RC11 axioms (Lahav, Vafeiadis et al., "Repairing sequential
   consistency in C/C++11") over the dense bitset relations used by
   the exploration core.  Every access is treated as atomic: [Plain]
   orders are relaxed, there are no non-atomics and hence no data
   races to report.  Hardware barriers appearing in a language-level
   program are given their natural C11 strength (dmb/sync ~ sc fence,
   lwsync ~ acq_rel, dmb.ld ~ acquire, dmb.st/eieio ~ release,
   isb/isync ~ nothing) so lifted hardware tests remain meaningful. *)

type mode = Rlx | Acq | Rel | Acq_rel_m | Sc_m

let read_mode = function
  | Instr.Plain | Instr.Release -> Rlx
  | Instr.Acquire | Instr.Acq_rel -> Acq
  | Instr.Sc -> Sc_m

let write_mode = function
  | Instr.Plain | Instr.Acquire -> Rlx
  | Instr.Release | Instr.Acq_rel -> Rel
  | Instr.Sc -> Sc_m

let fence_mode = function
  | Instr.Fence_acq | Instr.Dmb_ishld -> Acq
  | Instr.Fence_rel | Instr.Dmb_ishst | Instr.Eieio -> Rel
  | Instr.Fence_acq_rel | Instr.Lwsync -> Acq_rel_m
  | Instr.Fence_sc | Instr.Dmb_ish | Instr.Sync -> Sc_m
  | Instr.Isb | Instr.Isync -> Rlx

let at_least_acq = function Acq | Acq_rel_m | Sc_m -> true | Rlx | Rel -> false
let at_least_rel = function Rel | Acq_rel_m | Sc_m -> true | Rlx | Acq -> false

let event_mode (e : Event.t) =
  match e.Event.action with
  | Event.Read { order; _ } -> read_mode order
  | Event.Write { order; _ } -> write_mode order
  | Event.Fence b -> fence_mode b

type ctx = {
  n : int;
  po : B.t;
  po_loc : B.t;
  po_nloc : B.t;
  rmw : B.t;
  ws_base : B.t;  (** [W]; (po cap =loc)?; [W] — the rf-free prefix of rs *)
  pre_rel : B.t;  (** [E^>=rel on W] U [F^>=rel]; po; [W] *)
  post_acq : B.t;  (** [R^>=acq] U [R]; po; [F^>=acq] *)
  sc_id : B.t;  (** identity on sc-mode events *)
  sc_fence_m : B.Mask.m;
  full_m : B.Mask.m;
  same_loc : int -> int -> bool;
}

let id_on n m =
  let r = B.create n in
  B.Mask.iter (fun i -> B.add r i i) m;
  r

let prepare (x : Execution.t) =
  let ev = x.Execution.events in
  let n = Array.length ev in
  let read_m = B.Mask.of_pred n (fun i -> Event.is_read ev.(i)) in
  let write_m = B.Mask.of_pred n (fun i -> Event.is_write ev.(i)) in
  let full_m = B.Mask.of_pred n (fun _ -> true) in
  let po = B.of_relation n x.Execution.po in
  let po_loc = B.filter (fun a b -> Event.same_loc ev.(a) ev.(b)) po in
  let po_nloc = B.diff po po_loc in
  let rmw = B.of_relation n x.Execution.rmw in
  let modes = Array.map event_mode ev in
  let fence_m = B.Mask.of_pred n (fun i -> Event.is_fence ev.(i)) in
  let rel_write_m =
    B.Mask.of_pred n (fun i -> B.Mask.mem write_m i && at_least_rel modes.(i))
  in
  let rel_fence_m =
    B.Mask.of_pred n (fun i -> B.Mask.mem fence_m i && at_least_rel modes.(i))
  in
  let acq_read_m =
    B.Mask.of_pred n (fun i -> B.Mask.mem read_m i && at_least_acq modes.(i))
  in
  let acq_fence_m =
    B.Mask.of_pred n (fun i -> B.Mask.mem fence_m i && at_least_acq modes.(i))
  in
  let sc_m = B.Mask.of_pred n (fun i -> modes.(i) = Sc_m) in
  let sc_fence_m = B.Mask.inter sc_m fence_m in
  let ws_base =
    B.union (B.restrict po_loc ~domain:write_m ~range:write_m) (id_on n write_m)
  in
  let pre_rel =
    B.union (id_on n rel_write_m) (B.restrict po ~domain:rel_fence_m ~range:write_m)
  in
  let post_acq =
    B.union (id_on n acq_read_m) (B.restrict po ~domain:read_m ~range:acq_fence_m)
  in
  {
    n;
    po;
    po_loc;
    po_nloc;
    rmw;
    ws_base;
    pre_rel;
    post_acq;
    sc_id = id_on n sc_m;
    sc_fence_m;
    full_m;
    same_loc = (fun a b -> Event.same_loc ev.(a) ev.(b));
  }

(* rf/co-dependent derived relations, shared by the axioms below. *)
let derived ctx ~rf ~co =
  let n = ctx.n in
  (* rs = [W]; (po cap =loc)?; [W^>=rlx]; (rf; rmw)* — all writes are
     at least relaxed here. *)
  let rs = B.compose ctx.ws_base (B.reflexive_transitive_closure (B.compose rf ctx.rmw)) in
  let sw = B.compose ctx.pre_rel (B.compose rs (B.compose rf ctx.post_acq)) in
  let hb = B.transitive_closure (B.union ctx.po sw) in
  let fr = B.remove_diagonal (B.compose (B.inverse rf) co) in
  let eco = B.transitive_closure (B.union_all n [ rf; co; fr ]) in
  (hb, eco, fr)

let coherence_ok (hb, eco, _fr) =
  B.is_irreflexive hb && B.is_irreflexive (B.compose hb eco)

let sc_ok ctx ~co (hb, eco, fr) =
  let n = ctx.n in
  (* scb = po U po|<>loc; hb; po|<>loc U hb|=loc U mo U fr *)
  let scb =
    B.union_all n
      [
        ctx.po;
        B.compose ctx.po_nloc (B.compose hb ctx.po_nloc);
        B.filter ctx.same_loc hb;
        co;
        fr;
      ]
  in
  (* psc_base = ([E^sc] U [F^sc]; hb?); scb; ([E^sc] U hb?; [F^sc]) *)
  let pre = B.union ctx.sc_id (B.restrict hb ~domain:ctx.sc_fence_m ~range:ctx.full_m) in
  let post = B.union ctx.sc_id (B.restrict hb ~domain:ctx.full_m ~range:ctx.sc_fence_m) in
  let psc_base = B.compose pre (B.compose scb post) in
  (* psc_f = [F^sc]; (hb U hb; eco; hb); [F^sc] *)
  let psc_f =
    B.restrict
      (B.union hb (B.compose hb (B.compose eco hb)))
      ~domain:ctx.sc_fence_m ~range:ctx.sc_fence_m
  in
  B.is_acyclic (B.union psc_base psc_f)

(* The RC11 axioms as named thunks over a shared lazy environment
   (atomicity is supplied by the caller, shared across all models).
   no-thin-air is RC11's po U rf acyclicity — the load-buffering
   restriction that makes compilation to ARM/POWER need a trailing
   pseudo-dependency after relaxed loads. *)
let checks ctx ~rf ~co =
  let d = lazy (derived ctx ~rf ~co) in
  [
    ("coherence", fun () -> coherence_ok (Lazy.force d));
    ("no-thin-air", fun () -> B.is_acyclic (B.union ctx.po rf));
    ("sc", fun () -> sc_ok ctx ~co (Lazy.force d));
  ]

let happens_before ctx ~rf ~co =
  let hb, _, _ = derived ctx ~rf ~co in
  hb
