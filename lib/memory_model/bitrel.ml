(* Packed adjacency-matrix relations.  Row [a] of [rows] occupies
   words [a*w .. a*w + w - 1]; bit [b] of the row lives in word
   [b / bits_per_word] at offset [b mod bits_per_word].  OCaml
   immediates give 63 usable bits per word. *)

let bits_per_word = 63

type t = { n : int; w : int; rows : int array }

let words_for n = (n + bits_per_word - 1) / bits_per_word

(* Number of trailing zeros of a non-zero word, for bit iteration. *)
let ntz x =
  let rec go x i = if x land 1 = 1 then i else go (x lsr 1) (i + 1) in
  go x 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let iter_bits f word base =
  let x = ref word in
  while !x <> 0 do
    f (base + ntz !x);
    x := !x land (!x - 1)
  done

module Mask = struct
  type m = { mn : int; mw : int; bits : int array }

  let create n = { mn = n; mw = max 1 (words_for n); bits = Array.make (max 1 (words_for n)) 0 }

  let set m i = m.bits.(i / bits_per_word) <- m.bits.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

  let mem m i = m.bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

  let of_pred n p =
    let m = create n in
    for i = 0 to n - 1 do
      if p i then set m i
    done;
    m

  let of_list n l =
    let m = create n in
    List.iter (fun i -> set m i) l;
    m

  let complement m =
    let c = create m.mn in
    for k = 0 to m.mw - 1 do
      c.bits.(k) <- lnot m.bits.(k)
    done;
    (* Clear the slack bits past n so counts and iteration stay sane. *)
    let last = m.mn mod bits_per_word in
    if last <> 0 then c.bits.(m.mw - 1) <- c.bits.(m.mw - 1) land ((1 lsl last) - 1);
    c

  let inter a b =
    let c = create a.mn in
    for k = 0 to a.mw - 1 do
      c.bits.(k) <- a.bits.(k) land b.bits.(k)
    done;
    c

  let count m = Array.fold_left (fun acc word -> acc + popcount word) 0 m.bits

  let iter f m =
    for k = 0 to m.mw - 1 do
      iter_bits f m.bits.(k) (k * bits_per_word)
    done

  let to_list m =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) m;
    List.rev !acc
end

let create n = { n; w = max 1 (words_for n); rows = Array.make (max 1 n * max 1 (words_for n)) 0 }

let size t = t.n

let copy t = { t with rows = Array.copy t.rows }

let clear t = Array.fill t.rows 0 (Array.length t.rows) 0

let add t a b =
  let i = (a * t.w) + (b / bits_per_word) in
  t.rows.(i) <- t.rows.(i) lor (1 lsl (b mod bits_per_word))

let remove t a b =
  let i = (a * t.w) + (b / bits_per_word) in
  t.rows.(i) <- t.rows.(i) land lnot (1 lsl (b mod bits_per_word))

let mem t a b = t.rows.((a * t.w) + (b / bits_per_word)) land (1 lsl (b mod bits_per_word)) <> 0

let is_empty t = Array.for_all (fun word -> word = 0) t.rows

let cardinal t = Array.fold_left (fun acc word -> acc + popcount word) 0 t.rows

let equal a b = a.n = b.n && a.rows = b.rows

let union_into ~into t =
  for i = 0 to Array.length t.rows - 1 do
    into.rows.(i) <- into.rows.(i) lor t.rows.(i)
  done

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let union_all n rs =
  let r = create n in
  List.iter (fun s -> union_into ~into:r s) rs;
  r

let inter a b =
  let r = create a.n in
  for i = 0 to Array.length a.rows - 1 do
    r.rows.(i) <- a.rows.(i) land b.rows.(i)
  done;
  r

let diff a b =
  let r = create a.n in
  for i = 0 to Array.length a.rows - 1 do
    r.rows.(i) <- a.rows.(i) land lnot b.rows.(i)
  done;
  r

let or_row_into ~into dst_row src src_row =
  let d = dst_row * into.w and s = src_row * src.w in
  for k = 0 to into.w - 1 do
    into.rows.(d + k) <- into.rows.(d + k) lor src.rows.(s + k)
  done

let iter_succ t a f =
  let base = a * t.w in
  for k = 0 to t.w - 1 do
    iter_bits f t.rows.(base + k) (k * bits_per_word)
  done

let compose a b =
  let r = create a.n in
  for i = 0 to a.n - 1 do
    iter_succ a i (fun j -> or_row_into ~into:r i b j)
  done;
  r

let inverse t =
  let r = create t.n in
  for a = 0 to t.n - 1 do
    iter_succ t a (fun b -> add r b a)
  done;
  r

let cross dom rng =
  let n = (fun (m : Mask.m) -> m.Mask.mn) dom in
  let r = create n in
  Mask.iter
    (fun a ->
      let base = a * r.w in
      for k = 0 to r.w - 1 do
        r.rows.(base + k) <- rng.Mask.bits.(k)
      done)
    dom;
  r

let restrict t ~domain ~range =
  let r = create t.n in
  for a = 0 to t.n - 1 do
    if Mask.mem domain a then
      for k = 0 to t.w - 1 do
        r.rows.((a * r.w) + k) <- t.rows.((a * t.w) + k) land range.Mask.bits.(k)
      done
  done;
  r

let remove_diagonal t =
  let r = copy t in
  for a = 0 to t.n - 1 do
    remove r a a
  done;
  r

let filter f t =
  let r = create t.n in
  for a = 0 to t.n - 1 do
    iter_succ t a (fun b -> if f a b then add r a b)
  done;
  r

let transitive_closure_in_place t =
  for k = 0 to t.n - 1 do
    for i = 0 to t.n - 1 do
      if mem t i k then or_row_into ~into:t i t k
    done
  done

let transitive_closure t =
  let r = copy t in
  transitive_closure_in_place r;
  r

let reflexive_transitive_closure t =
  let r = transitive_closure t in
  for i = 0 to t.n - 1 do
    add r i i
  done;
  r

let is_irreflexive t =
  let ok = ref true in
  for a = 0 to t.n - 1 do
    if mem t a a then ok := false
  done;
  !ok

exception Cycle

let is_acyclic t =
  (* 0 = unvisited, 1 = on the DFS stack, 2 = done. *)
  let state = Bytes.make (max 1 t.n) '\000' in
  let rec visit a =
    match Bytes.get state a with
    | '\001' -> raise Cycle
    | '\002' -> ()
    | _ ->
        Bytes.set state a '\001';
        iter_succ t a visit;
        Bytes.set state a '\002'
  in
  try
    for a = 0 to t.n - 1 do
      visit a
    done;
    true
  with Cycle -> false

let iter f t =
  for a = 0 to t.n - 1 do
    iter_succ t a (fun b -> f a b)
  done

let fold f t init =
  let acc = ref init in
  iter (fun a b -> acc := f a b !acc) t;
  !acc

let of_list n pairs =
  let r = create n in
  List.iter (fun (a, b) -> add r a b) pairs;
  r

let of_relation n rel = of_list n (Relation.to_list rel)

let to_list t = List.rev (fold (fun a b acc -> (a, b) :: acc) t [])

let to_relation t = Relation.of_list (to_list t)

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) (to_list t)))
