(** Dense, mutable, bitset-backed binary relations over event ids.

    Event ids in a candidate execution are dense ([0 .. n-1]), so a
    relation is an n-by-n adjacency matrix stored as packed bit rows
    (63 bits per OCaml immediate word).  Union, intersection and
    composition run a word at a time, O(n^2/63); transitive closure is
    bitset Warshall, O(n^3/63); acyclicity is a DFS that exits on the
    first back edge.  This is the hot-path backend behind {!Axiomatic}
    and the {!Enumerate} exploration core; {!Relation} remains the
    clarity-first pair-set used off the hot path, and the two are kept
    in agreement by property tests. *)

type t

(** Subsets of the event id universe, packed as bitsets; used for
    domain/range restriction without per-element closures. *)
module Mask : sig
  type m

  val create : int -> m
  (** All-zero mask over universe [0 .. n-1]. *)

  val of_pred : int -> (int -> bool) -> m

  val of_list : int -> int list -> m

  val set : m -> int -> unit

  val mem : m -> int -> bool

  val complement : m -> m

  val inter : m -> m -> m

  val count : m -> int

  val iter : (int -> unit) -> m -> unit

  val to_list : m -> int list
end

val create : int -> t
(** Empty relation over [0 .. n-1]. *)

val size : t -> int
(** The universe bound [n]. *)

val copy : t -> t

val clear : t -> unit

val add : t -> int -> int -> unit

val remove : t -> int -> int -> unit

val mem : t -> int -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int

val equal : t -> t -> bool

val union_into : into:t -> t -> unit
(** [into := into U r]. *)

val union : t -> t -> t

val union_all : int -> t list -> t
(** [union_all n rs]: union over a fresh relation of universe [n]. *)

val inter : t -> t -> t

val diff : t -> t -> t

val compose : t -> t -> t
(** [compose r s] = [{ (a, c) | (a, b) in r, (b, c) in s }], built by
    OR-ing [s]'s rows: O(edges(r) / 63 * n). *)

val inverse : t -> t

val cross : Mask.m -> Mask.m -> t

val restrict : t -> domain:Mask.m -> range:Mask.m -> t

val remove_diagonal : t -> t

val filter : (int -> int -> bool) -> t -> t

val transitive_closure_in_place : t -> unit
(** Bitset Floyd-Warshall: for each [k], rows reaching [k] absorb
    row [k]. *)

val transitive_closure : t -> t

val reflexive_transitive_closure : t -> t
(** Transitive closure plus the identity on the full universe (the
    carrier of every event id, matching how the axiomatic checks use
    it). *)

val is_irreflexive : t -> bool

val is_acyclic : t -> bool
(** DFS three-colour cycle detection, returning [false] on the first
    back edge found. *)

val iter : (int -> int -> unit) -> t -> unit

val iter_succ : t -> int -> (int -> unit) -> unit
(** Iterate the successors (set bits of the row) of one node. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val of_relation : int -> Relation.t -> t

val to_relation : t -> Relation.t

val of_list : int -> (int * int) list -> t

val to_list : t -> (int * int) list
(** Sorted lexicographically, like [Relation.to_list]. *)

val pp : Format.formatter -> t -> unit
