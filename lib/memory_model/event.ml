open Wmm_isa
type action =
  | Read of { loc : Instr.loc; value : Instr.value; order : Instr.order }
  | Write of { loc : Instr.loc; value : Instr.value; order : Instr.order }
  | Fence of Instr.barrier

type t = { id : int; tid : int; po_index : int; action : action }

let init_tid = -1

let is_read e = match e.action with Read _ -> true | _ -> false
let is_write e = match e.action with Write _ -> true | _ -> false
let is_fence e = match e.action with Fence _ -> true | _ -> false
let is_init e = e.tid = init_tid

let is_acquire e =
  match e.action with
  | Read { order = Instr.Acquire | Instr.Acq_rel | Instr.Sc; _ } -> true
  | _ -> false

let is_release e =
  match e.action with
  | Write { order = Instr.Release | Instr.Acq_rel | Instr.Sc; _ } -> true
  | _ -> false

let is_fence_kind kind e = match e.action with Fence b -> b = kind | _ -> false

let loc e =
  match e.action with Read { loc; _ } | Write { loc; _ } -> Some loc | Fence _ -> None

let value e =
  match e.action with Read { value; _ } | Write { value; _ } -> Some value | Fence _ -> None

let same_loc a b =
  match (loc a, loc b) with Some la, Some lb -> la = lb | _ -> false

let pp fmt e =
  let describe =
    match e.action with
    | Read { loc; value; order } ->
        Printf.sprintf "R%s m%d=%d"
          (match order with
          | Instr.Acquire -> "acq"
          | Instr.Acq_rel -> "ar"
          | Instr.Sc -> "sc"
          | Instr.Plain | Instr.Release -> "")
          loc value
    | Write { loc; value; order } ->
        Printf.sprintf "W%s m%d=%d"
          (match order with
          | Instr.Release -> "rel"
          | Instr.Acq_rel -> "ar"
          | Instr.Sc -> "sc"
          | Instr.Plain | Instr.Acquire -> "")
          loc value
    | Fence b -> Printf.sprintf "F[%s]" (Instr.barrier_mnemonic b)
  in
  Format.fprintf fmt "e%d:t%d:%s" e.id e.tid describe
