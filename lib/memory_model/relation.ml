module Pair = struct
  type t = int * int

  let compare = compare
end

module PS = Set.Make (Pair)

type t = PS.t

let empty = PS.empty
let is_empty = PS.is_empty
let cardinal = PS.cardinal
let singleton a b = PS.singleton (a, b)
let add a b r = PS.add (a, b) r
let mem a b r = PS.mem (a, b) r
let of_list pairs = PS.of_list pairs
let to_list r = PS.elements r
let union = PS.union
let union_all rs = List.fold_left PS.union PS.empty rs
let inter = PS.inter
let diff = PS.diff

let compose r s =
  (* Index s by first component for the join. *)
  let by_first = Hashtbl.create 16 in
  PS.iter
    (fun (b, c) ->
      let existing = try Hashtbl.find by_first b with Not_found -> [] in
      Hashtbl.replace by_first b (c :: existing))
    s;
  PS.fold
    (fun (a, b) acc ->
      match Hashtbl.find_opt by_first b with
      | None -> acc
      | Some cs -> List.fold_left (fun acc c -> PS.add (a, c) acc) acc cs)
    r PS.empty

let inverse r = PS.fold (fun (a, b) acc -> PS.add (b, a) acc) r PS.empty

let identity_on ids = List.fold_left (fun acc i -> PS.add (i, i) acc) PS.empty ids

let cross xs ys =
  List.fold_left
    (fun acc x -> List.fold_left (fun acc y -> PS.add (x, y) acc) acc ys)
    PS.empty xs

let restrict r ~domain ~range = PS.filter (fun (a, b) -> domain a && range b) r

let filter f r = PS.filter (fun (a, b) -> f a b) r

let transitive_closure r =
  (* Repeated squaring to a fixpoint (r, r U r;r, ...): reaches the
     closure in O(log diameter) rounds; relations here are tiny. *)
  let rec go r =
    let next = union r (compose r r) in
    if PS.equal next r then r else go next
  in
  go r

let reflexive_transitive_closure r ~carrier = union (transitive_closure r) (identity_on carrier)

let is_irreflexive r = not (PS.exists (fun (a, b) -> a = b) r)

let is_acyclic r =
  (* DFS-based cycle detection over the adjacency structure. *)
  let adjacency = Hashtbl.create 16 in
  let nodes = Hashtbl.create 16 in
  PS.iter
    (fun (a, b) ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ();
      let existing = try Hashtbl.find adjacency a with Not_found -> [] in
      Hashtbl.replace adjacency a (b :: existing))
    r;
  let state = Hashtbl.create 16 in
  (* 1 = on stack, 2 = done *)
  let exception Cycle in
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some 1 -> raise Cycle
    | Some _ -> ()
    | None ->
        Hashtbl.replace state n 1;
        let successors = try Hashtbl.find adjacency n with Not_found -> [] in
        List.iter visit successors;
        Hashtbl.replace state n 2
  in
  (* Stop at the first back edge instead of folding over every root. *)
  try
    Hashtbl.iter (fun n () -> visit n) nodes;
    true
  with Cycle -> false

let equal = PS.equal
let subset = PS.subset

let pp fmt r =
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) (to_list r)))
