open Wmm_isa
(** Thread-permutation symmetry for the graph enumerator.

    Detects groups of interchangeable "emitter" threads (straight-line
    immediate stores, barriers and nops) in two tiers: [Identical]
    (byte-identical threads; outcomes are invariant under swapping)
    and [Renamed] (identical up to privately-owned stored immediates;
    outcomes transform by a value substitution).  The enumerator
    explores only canonical representatives — first writes of a group
    in thread order along their coherence chain — and expands the
    outcome set back through {!t.s_perms}. *)

type perm = {
  p_tid : int array;  (** thread [t]'s role moves to [p_tid.(t)] *)
  p_value : (Instr.value * Instr.value) list;
      (** value substitution induced by the renaming; empty for
          [Identical]-only permutations *)
}

type tier = Identical | Renamed

type group = { g_members : int list; g_tier : tier }

type t = { s_groups : group list; s_perms : perm list }

val detect : Program.t -> t
(** Find interchangeable-thread groups.  [s_perms] enumerates the full
    product of member permutations across kept groups (identity
    included), capped so the expansion stays cheap; groups beyond the
    cap are dropped (less reduction, still sound). *)

val trivial : t -> bool
(** No groups: symmetry reduction is a no-op. *)

val perm_count : t -> int

val refine : Program.t -> t -> reads:Instr.value list -> t
(** Restrict the groups to the stabilizer of a run combo whose loads
    observe [reads]: [Renamed] members whose hole values are observed
    leave their group, [Identical] groups are untouched.  The
    enumerator searches only lex-least representative combos and
    keeps each rep's coherence orders canonical with respect to this
    refined (stabilizer) symmetry; expansion through the full
    {!t.s_perms} then reconstructs every combo's outcomes. *)

val map_value : perm -> Instr.value -> Instr.value

val map_registers :
  perm ->
  ((int * Instr.reg) * Instr.value) list ->
  ((int * Instr.reg) * Instr.value) list
(** Apply the permutation to a final register assignment and re-sort. *)

val map_memory :
  perm -> (Instr.loc * Instr.value) list -> (Instr.loc * Instr.value) list
