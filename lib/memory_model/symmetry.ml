open Wmm_isa

(* Thread-permutation symmetry detection for the graph enumerator.

   Two tiers of interchangeable threads are recognized, both
   restricted to "emitter" threads: straight-line code whose only
   instructions are immediate stores, barriers and nops.  Emitters
   have exactly one run (no loads, no branches, no exclusives), write
   no registers, and their event sequence is a fixed function of the
   thread text - which is what makes permuting them sound:

   - [`Identical]: byte-identical threads.  Swapping two of them maps
     every execution to another execution with the same outcome, so
     the quotient loses nothing and no outcome transformation is
     needed.

   - [`Renamed]: threads identical up to the stored immediates, where
     each immediate is "private": nonzero, distinct, and appearing
     nowhere else in the program (not in other instructions, not in
     the initial memory).  Renaming the values along with the thread
     permutation maps executions to executions; the guards below make
     the induced outcome transformation a plain value substitution.
     Because store-exclusive status flags materialize the values 0/1
     outside any immediate, programs containing exclusives are
     excluded from this tier.

   The enumerator keeps only canonical representatives (first writes
   of a group placed in thread order along their coherence chain) and
   reconstructs the full outcome set by applying every group
   permutation's value substitution to the canonical outcomes. *)

type perm = {
  p_tid : int array;  (** thread [t]'s role moves to [p_tid.(t)] *)
  p_value : (Instr.value * Instr.value) list;  (** value substitution *)
}

type tier = Identical | Renamed

type group = { g_members : int list; g_tier : tier }

type t = { s_groups : group list; s_perms : perm list }

let trivial s = s.s_groups = []

let perm_count s = List.length s.s_perms

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let is_emitter_instr = function
  | Instr.Store { src = Instr.Imm _; addr = Instr.Imm _; _ } -> true
  | Instr.Barrier _ | Instr.Nop -> true
  | _ -> false

let is_imm_store = function
  | Instr.Store { src = Instr.Imm _; addr = Instr.Imm _; _ } -> true
  | _ -> false

let is_emitter thread =
  Array.for_all is_emitter_instr thread && Array.exists is_imm_store thread

(* The thread with its stored immediates holed out: equal shapes are
   the candidates for renaming. *)
let shape thread =
  Array.map
    (function
      | Instr.Store { src = Instr.Imm _; addr; order } ->
          Instr.Store { src = Instr.Imm 0; addr; order }
      | i -> i)
    thread

let holes thread =
  Array.to_list thread
  |> List.filter_map (function
       | Instr.Store { src = Instr.Imm v; addr = Instr.Imm _; _ } -> Some v
       | _ -> None)

(* ------------------------------------------------------------------ *)
(* Renamed-tier guards                                                 *)
(* ------------------------------------------------------------------ *)

(* Instruction forms under which a private-value substitution maps
   feasible runs to feasible runs and final states to final states:
   values only flow from loads (substituted consistently), addresses
   are constants, branches test only zero-ness (preserved: private
   values are nonzero and 0 maps to 0), and no arithmetic can combine
   or leak a private value.  Exclusives are out entirely - their
   status registers materialize 0/1 without an immediate occurrence
   the scan below could see. *)
let sigma_safe_instr = function
  | Instr.Store { src = Instr.Imm _; addr = Instr.Imm _; _ } -> true
  | Instr.Load { addr = Instr.Imm _; _ } -> true
  | Instr.Mov { src = Instr.Imm _; _ } -> true
  | Instr.Barrier _ | Instr.Nop -> true
  | Instr.Cbnz _ | Instr.Cbz _ -> true
  | Instr.Load_exclusive _ | Instr.Store_exclusive _ -> false
  | Instr.Store _ | Instr.Load _ | Instr.Mov _ | Instr.Op _ -> false

(* Occurrences of each immediate in a value-producing position: store
   sources (they become memory values, hence also load results) and
   mov sources (they become register values).  Address immediates are
   location indices - they never flow into a register or a memory
   cell, so a hole value may freely coincide with one.  Op operands
   are counted conservatively even though [sigma_safe_instr] already
   rejects programs containing [Op]. *)
let imm_occurrences (p : Program.t) =
  let tbl = Hashtbl.create 16 in
  let bump v = Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)) in
  let operand = function Instr.Imm v -> bump v | Instr.Reg _ -> () in
  Array.iter
    (Array.iter (function
      | Instr.Store { src; _ } | Instr.Store_exclusive { src; _ } -> operand src
      | Instr.Mov { src; _ } -> operand src
      | Instr.Op { a; b; _ } ->
          operand a;
          operand b
      | Instr.Load _ | Instr.Load_exclusive _ | Instr.Barrier _ | Instr.Nop
      | Instr.Cbnz _ | Instr.Cbz _ -> ()))
    p.Program.threads;
  tbl

let renamed_ok (p : Program.t) members =
  let sigma_safe =
    Array.for_all (Array.for_all sigma_safe_instr) p.Program.threads
  in
  sigma_safe
  &&
  let occ = imm_occurrences p in
  let init_values =
    List.map (fun l -> Program.initial_value p l) (Program.locations p)
  in
  List.for_all
    (fun t ->
      List.for_all
        (fun v ->
          v <> 0
          && (not (List.mem v init_values))
          (* Appearing exactly once program-wide = its own hole: also
             rules out repeats within a thread and across members. *)
          && Hashtbl.find_opt occ v = Some 1)
        (holes p.Program.threads.(t)))
    members

(* ------------------------------------------------------------------ *)
(* Group detection                                                     *)
(* ------------------------------------------------------------------ *)

(* Cap the expansion work: the product of group factorials bounds the
   number of outcome substitutions applied per canonical outcome. *)
let max_perms = 720

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

let detect (p : Program.t) =
  let threads = p.Program.threads in
  let nt = Array.length threads in
  let classes = Hashtbl.create 8 in
  let order = ref [] in
  for t = 0 to nt - 1 do
    if is_emitter threads.(t) then begin
      let key = shape threads.(t) in
      (match Hashtbl.find_opt classes key with
      | None ->
          order := key :: !order;
          Hashtbl.add classes key [ t ]
      | Some ts -> Hashtbl.replace classes key (t :: ts))
    end
  done;
  let groups =
    List.rev !order
    |> List.filter_map (fun key ->
           let members = List.rev (Hashtbl.find classes key) in
           if List.length members < 2 then None
           else
             let vals = List.map (fun t -> holes threads.(t)) members in
             let all_identical =
               List.for_all (fun v -> v = List.hd vals) (List.tl vals)
             in
             if all_identical then Some [ { g_members = members; g_tier = Identical } ]
             else if renamed_ok p members then
               Some [ { g_members = members; g_tier = Renamed } ]
             else
               (* Mixed class: fall back to subgroups of byte-identical
                  members (always sound, no value renaming). *)
               let by_text = Hashtbl.create 4 in
               let sub_order = ref [] in
               List.iter
                 (fun t ->
                   let k = threads.(t) in
                   match Hashtbl.find_opt by_text k with
                   | None ->
                       sub_order := k :: !sub_order;
                       Hashtbl.add by_text k [ t ]
                   | Some ts -> Hashtbl.replace by_text k (t :: ts))
                 members;
               let subs =
                 List.rev !sub_order
                 |> List.filter_map (fun k ->
                        match List.rev (Hashtbl.find by_text k) with
                        | _ :: _ :: _ as ms ->
                            Some { g_members = ms; g_tier = Identical }
                        | _ -> None)
               in
               if subs = [] then None else Some subs)
    |> List.concat
  in
  (* Keep groups while the permutation budget holds; dropped groups
     simply go unquotiented (sound, just less reduction). *)
  let groups, _ =
    List.fold_left
      (fun (kept, budget) g ->
        let k = fact (List.length g.g_members) in
        if budget * k <= max_perms then (g :: kept, budget * k) else (kept, budget))
      ([], 1) groups
  in
  let groups = List.rev groups in
  (* All member-permutations of every group, composed across groups. *)
  let rec list_perms = function
    | [] -> [ [] ]
    | l ->
        List.concat
          (List.mapi
             (fun i x ->
               let rest = List.filteri (fun j _ -> j <> i) l in
               List.map (fun p -> x :: p) (list_perms rest))
             l)
  in
  let group_assignments =
    List.map
      (fun g -> List.map (fun img -> (g, img)) (list_perms g.g_members))
      groups
  in
  let rec cartesian = function
    | [] -> [ [] ]
    | choices :: rest ->
        let tails = cartesian rest in
        List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  let perm_of assignment =
    let p_tid = Array.init nt Fun.id in
    let p_value = ref [] in
    List.iter
      (fun (g, img) ->
        List.iter2
          (fun t t' ->
            p_tid.(t) <- t';
            if g.g_tier = Renamed && t <> t' then
              List.iter2
                (fun v v' -> if v <> v' then p_value := (v, v') :: !p_value)
                (holes threads.(t)) (holes threads.(t')))
          g.g_members img)
      assignment;
    { p_tid; p_value = !p_value }
  in
  let perms = List.map perm_of (cartesian group_assignments) in
  { s_groups = groups; s_perms = perms }

(* ------------------------------------------------------------------ *)
(* Per-combo refinement                                                *)
(* ------------------------------------------------------------------ *)

(* Restrict the groups to the stabilizer of one run combo, identified
   by the multiset of values its loads observe.  A [Renamed] member
   whose hole values are observed is pinned down by the combo (the
   combo is not fixed under any permutation that moves it), so it
   leaves its group; unobserved members stay interchangeable.
   [Identical] members carry no distinguishing values and always
   remain.  Used by the enumerator to search only representative
   combos while keeping each rep's coherence orders canonical exactly
   with respect to the permutations that fix that combo. *)
let refine (p : Program.t) (sym : t) ~reads =
  let groups =
    List.filter_map
      (fun g ->
        match g.g_tier with
        | Identical -> Some g
        | Renamed -> (
            match
              List.filter
                (fun t ->
                  not
                    (List.exists
                       (fun v -> List.mem v reads)
                       (holes p.Program.threads.(t))))
                g.g_members
            with
            | _ :: _ :: _ as ms -> Some { g with g_members = ms }
            | _ -> None))
      sym.s_groups
  in
  { sym with s_groups = groups }

(* ------------------------------------------------------------------ *)
(* Applying a permutation to an outcome                                *)
(* ------------------------------------------------------------------ *)

let map_value perm v =
  match List.assoc_opt v perm.p_value with Some v' -> v' | None -> v

let map_registers perm regs =
  List.sort compare
    (List.map (fun ((t, r), v) -> ((perm.p_tid.(t), r), map_value perm v)) regs)

let map_memory perm mem =
  List.sort compare (List.map (fun (l, v) -> (l, map_value perm v)) mem)
