open Wmm_isa
open Wmm_model

(** Single source of truth for the registered memory models and
    architectures: wire names, aliases, display names and one-line
    summaries.  CLI validation, the served protocol and the stats
    output all derive from these lists, so registering a model here
    surfaces it everywhere at once. *)

type tier = Hardware | Language

type model_info = {
  model : Axiomatic.model;
  wire : string;
  display : string;
  aliases : string list;
  tier : tier;
  summary : string;
}

val models : model_info list

val info_for : Axiomatic.model -> model_info

val model_wire_name : Axiomatic.model -> string

val model_of_string : string -> Axiomatic.model option
(** Case-insensitive; accepts wire names and aliases. *)

val model_wire_names : string list

val valid_models_sentence : string
(** ["valid models: sc, tso, arm, power, rc11"] — for exit-2 error
    messages. *)

val tier_name : tier -> string

type arch_info = { arch : Arch.t; arch_wire : string; arch_display : string }

val arches : arch_info list

val arch_of_string : string -> Arch.t option

val arch_wire_names : string list

val valid_arches_sentence : string

val model_table : unit -> string list
(** One formatted row per model: wire, display, tier, summary. *)
