open Wmm_isa
open Wmm_model

(* The single source of truth for which models and architectures
   exist.  Both CLIs' --model/--arch validation, the served
   protocol's wire names, and the stats/README tables all read this
   list, so a newly registered model appears everywhere at once. *)

type tier = Hardware | Language

type model_info = {
  model : Axiomatic.model;
  wire : string;  (** canonical lowercase wire/CLI name *)
  display : string;  (** human name, as printed in reports *)
  aliases : string list;
  tier : tier;
  summary : string;
}

let models =
  [
    {
      model = Axiomatic.Sc;
      wire = "sc";
      display = "SC";
      aliases = [];
      tier = Hardware;
      summary = "sequential consistency: acyclic(po U com)";
    };
    {
      model = Axiomatic.Tso;
      wire = "tso";
      display = "TSO";
      aliases = [ "x86" ];
      tier = Hardware;
      summary = "total store order: store buffering only";
    };
    {
      model = Axiomatic.Arm;
      wire = "arm";
      display = "ARMv8";
      aliases = [ "armv8" ];
      tier = Hardware;
      summary = "ARMv8 external consistency (other-multi-copy-atomic)";
    };
    {
      model = Axiomatic.Power;
      wire = "power";
      display = "POWER";
      aliases = [ "power7"; "ppc" ];
      tier = Hardware;
      summary = "herding-cats POWER (non-multi-copy-atomic)";
    };
    {
      model = Axiomatic.Rc11;
      wire = "rc11";
      display = "RC11";
      aliases = [ "c11" ];
      tier = Language;
      summary = "C11/RC11 language model: rlx/acq/rel/sc accesses, fences, RMWs";
    };
  ]

let info_for m = List.find (fun i -> i.model = m) models

let model_wire_name m = (info_for m).wire

let model_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun i -> i.wire = s || List.mem s i.aliases) models
  |> Option.map (fun i -> i.model)

let model_wire_names = List.map (fun i -> i.wire) models

let valid_models_sentence =
  Printf.sprintf "valid models: %s" (String.concat ", " model_wire_names)

let tier_name = function Hardware -> "hardware" | Language -> "language"

type arch_info = { arch : Arch.t; arch_wire : string; arch_display : string }

let arches =
  [
    { arch = Arch.Armv8; arch_wire = "armv8"; arch_display = "ARMv8" };
    { arch = Arch.Power7; arch_wire = "power7"; arch_display = "POWER7" };
  ]

let arch_of_string s = Arch.of_string s

let arch_wire_names = List.map (fun i -> i.arch_wire) arches

let valid_arches_sentence =
  Printf.sprintf "valid architectures: %s" (String.concat ", " arch_wire_names)

(* Rendered once here so the CLI, served stats and docs agree. *)
let model_table () =
  List.map
    (fun i ->
      Printf.sprintf "%-6s %-6s %-9s %s" i.wire i.display (tier_name i.tier) i.summary)
    models
