open Wmm_model
open Wmm_litmus
module Task = Wmm_engine.Task
module Engine = Wmm_engine.Engine
module Conform = Wmm_synth.Conform
module Verify = Wmm_analysis.Verify

(* Compilation containment: the soundness statement of the language
   tier.  For every language-level test [t] and scheme [s],

      outcomes(hw_model(arch s), compile s t)
        SUBSET  outcomes(RC11, t)

   i.e. compiling can only restrict behaviour, never invent an
   outcome RC11 forbids.  The converse inclusion is intentionally
   absent — RC11 is weaker than any one compiled target (e.g. it
   allows IRIW with relaxed writes that ARM's multicopy atomicity
   forbids).  Outcome sets are directly comparable because the
   compiler inserts only barriers and register-free branches: the
   register and memory footprints of source and target coincide. *)

(* Marshal-stable task result (persisted by cache and journal). *)
type check =
  | C_ok of int * int  (** compiled outcomes, RC11 outcomes *)
  | C_skip of string
  | C_fail of string

let hw_model scheme = Axiomatic.model_for_arch (Compile.scheme_arch scheme)

let escaped_outcomes rc11 hw =
  List.filter
    (fun o -> not (List.exists (fun o' -> Enumerate.compare_outcome o o' = 0) rc11))
    hw

let contain_task scheme (t : Test.t) =
  let key =
    Printf.sprintf "lang/contain/v1|%s|%s" (Compile.scheme_name scheme)
      (Verify.test_digest t)
  in
  let label = Printf.sprintf "contain %s %s" (Compile.scheme_name scheme) t.Test.name in
  Task.pure ~key ~label (fun () ->
      let src = t.Test.program in
      let compiled = Compile.compile_program scheme src in
      match
        ( Enumerate.allowed_outcomes Axiomatic.Rc11 src,
          Enumerate.allowed_outcomes (hw_model scheme) compiled )
      with
      | exception Failure msg -> C_skip msg
      | rc11, hw -> (
          match escaped_outcomes rc11 hw with
          | [] -> C_ok (List.length hw, List.length rc11)
          | escaped ->
              C_fail
                (Printf.sprintf
                   "%d compiled outcome(s) escape RC11 (%d vs %d): %s"
                   (List.length escaped) (List.length hw) (List.length rc11)
                   (String.concat " | "
                      (List.map (Enumerate.outcome_to_string src) escaped)))))

let check_of_task task = task.Task.run (Task.rng_for ~root_seed:0 task.Task.key)

type report = {
  schemes : Compile.scheme list;
  tests : int;
  checks : int;
  skipped : int;
  disagreements : Conform.disagreement list;
}

let run ?(schemes = Compile.all_schemes) ~engine tests =
  let batch = Engine.Batch.create () in
  let cells =
    List.concat_map
      (fun t ->
        List.map (fun s -> (t, s, Engine.Batch.add batch (contain_task s t))) schemes)
      tests
  in
  Engine.Batch.run engine batch;
  let skipped = ref 0 in
  let disagreements = ref [] in
  List.iter
    (fun (t, s, get) ->
      let still_fails t' =
        match check_of_task (contain_task s t') with
        | C_fail _ -> true
        | C_ok _ | C_skip _ -> false
        | exception _ -> false
      in
      let disagree detail =
        let shrunk = Conform.shrink still_fails t in
        disagreements :=
          {
            Conform.layer = Conform.Containment;
            model = Some (hw_model s);
            test = t;
            shrunk;
            detail = Printf.sprintf "[%s] %s" (Compile.scheme_name s) detail;
          }
          :: !disagreements
      in
      match Engine.get (get ()) with
      | C_ok _ -> ()
      | C_skip _ -> incr skipped
      | C_fail detail -> disagree detail
      | exception Failure msg -> disagree ("task failed: " ^ msg))
    cells;
  {
    schemes;
    tests = List.length tests;
    checks = List.length cells;
    skipped = !skipped;
    disagreements = List.rev !disagreements;
  }

let render r =
  let b = Buffer.create 512 in
  Printf.bprintf b "compilation containment: %d tests x %d schemes (%s)\n" r.tests
    (List.length r.schemes)
    (String.concat ", " (List.map Compile.scheme_name r.schemes));
  Printf.bprintf b "  checks: %d (%d skipped)\n" r.checks r.skipped;
  (match r.disagreements with
  | [] -> Buffer.add_string b "  violations: none\n"
  | ds ->
      Printf.bprintf b "  violations: %d\n" (List.length ds);
      List.iter
        (fun (d : Conform.disagreement) ->
          Printf.bprintf b "\n[%s] %s\n  %s\n"
            (Conform.layer_name d.Conform.layer)
            d.Conform.test.Test.name d.Conform.detail;
          Printf.bprintf b "  shrunk to %d instruction(s) over %d thread(s)\n"
            (Array.fold_left
               (fun acc th -> acc + Array.length th)
               0 d.Conform.shrunk.Test.program.Wmm_isa.Program.threads)
            (Array.length d.Conform.shrunk.Test.program.Wmm_isa.Program.threads))
        ds);
  Buffer.contents b
