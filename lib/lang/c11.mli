open Wmm_isa
open Wmm_litmus

(** C11 language-tier program builders and the library lift.

    Access modes reuse {!Instr.order}: [rlx] is [Plain] (every access
    in this tier is atomic), [acq_rel] and [sc] exist only at the
    language level until {!Compile} lowers them to ARM/POWER
    sequences.  RMWs are single-attempt exclusive pairs — spurious
    failure only adds outcomes, so it never endangers compilation
    containment. *)

val rlx : Instr.order
val acq : Instr.order
val rel : Instr.order
val acq_rel : Instr.order
val sc : Instr.order

val mode_name : Instr.order -> string

val load : mode:Instr.order -> dst:Instr.reg -> loc:Instr.loc -> Instr.t
val store : mode:Instr.order -> value:Instr.value -> loc:Instr.loc -> Instr.t
val store_reg : mode:Instr.order -> src:Instr.reg -> loc:Instr.loc -> Instr.t

val fence_acq : Instr.t
val fence_rel : Instr.t
val fence_acq_rel : Instr.t
val fence_sc : Instr.t

val cas :
  status:Instr.reg ->
  old:Instr.reg ->
  tmp:Instr.reg ->
  expected:Instr.value ->
  desired:Instr.value ->
  loc:Instr.loc ->
  mode_r:Instr.order ->
  mode_w:Instr.order ->
  Instr.t list
(** Single-attempt compare-and-swap; [status] reads 0 iff the swap
    happened. *)

val exchange :
  status:Instr.reg ->
  old:Instr.reg ->
  desired:Instr.value ->
  loc:Instr.loc ->
  mode_r:Instr.order ->
  mode_w:Instr.order ->
  Instr.t list

val fetch_add :
  status:Instr.reg ->
  old:Instr.reg ->
  tmp:Instr.reg ->
  amount:Instr.value ->
  loc:Instr.loc ->
  mode_r:Instr.order ->
  mode_w:Instr.order ->
  Instr.t list

val lift_barrier : Instr.barrier -> Instr.barrier
val lift_instr : Instr.t -> Instr.t

val lift_test : Test.t -> Test.t
(** One instruction maps to one instruction, so branch offsets and
    register conditions survive unchanged; the [expected] annotations
    are dropped (they speak about hardware models). *)

val lifted_library : unit -> Test.t list
(** The full hardware litmus library lifted to C11 accesses. *)
