open Wmm_isa
open Wmm_litmus

(** Concurrent-algorithm workloads: bounded two-thread try-lock litmus
    tests with a machine-checkable mutual-exclusion violation (both
    threads entered AND both critical-section counter reads saw 0).
    Each lock exposes its synchronisation sites and per-site default
    C11 orders; [build] instantiates the test at any assignment, which
    the fencing-sensitivity ranking sweeps over. *)

type site_kind = Load_site | Store_site

type t = {
  name : string;
  description : string;
  sites : (string * site_kind) array;
  defaults : Instr.order array;
  build : Instr.order array -> Test.t;
}

val dekker : t
val peterson : t
val cas_lock : t
val exchange : t
val bakery : t
val filter : t
val barrier : t

val all : t list
val by_name : string -> t option

val test_of : t -> Test.t
(** The lock at its default (correct) orders. *)

val violation : t -> Test.condition
(** The mutual-exclusion (or, for the barrier, data-visibility)
    violation condition. *)
