open Wmm_litmus

(** Compilation containment — the language tier's soundness check:
    the outcomes of a compiled program under its target hardware
    model must be a subset of the RC11-allowed outcomes of the source
    program.  Violations are shrunk with {!Wmm_synth.Conform.shrink}
    and reported as [Containment]-layer disagreements. *)

val hw_model : Compile.scheme -> Wmm_model.Axiomatic.model
(** The target hardware model of a scheme's architecture. *)

type check = C_ok of int * int | C_skip of string | C_fail of string

val contain_task : Compile.scheme -> Test.t -> check Wmm_engine.Task.t
(** Keyed ["lang/contain/v1|scheme|digest"]. *)

type report = {
  schemes : Compile.scheme list;
  tests : int;
  checks : int;
  skipped : int;
  disagreements : Wmm_synth.Conform.disagreement list;
}

val run :
  ?schemes:Compile.scheme list -> engine:Wmm_engine.Engine.t -> Test.t list -> report

val render : report -> string
