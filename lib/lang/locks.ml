open Wmm_isa
open Wmm_litmus

(* Dat3M-style concurrent-algorithm workloads, expressed as bounded
   two-thread try-lock litmus tests.  Every algorithm follows the same
   shape: attempt the entry protocol once (forward branches only, so
   the enumerator's fuel bound is never at risk), and on success set an
   "entered" witness register and run a tiny critical section that
   increments a shared counter with relaxed accesses:

      rE := 1 ; rC := [c] ; rT := rC + 1 ; [c] := rT

   The uniform mutual-exclusion violation is then machine-checkable as
   a final-state condition: both threads entered AND both counter
   reads returned 0 — i.e. neither critical section saw the other, an
   overlap witness.  (The sense-reversal barrier uses an analogous
   data-visibility witness instead.)

   Each algorithm exposes its synchronisation [sites] — the accesses
   whose C11 order matters — together with per-site defaults strong
   enough that RC11 forbids the violation.  [build] instantiates the
   test at any order assignment, which is what the fencing-sensitivity
   ranking sweeps over. *)

type site_kind = Load_site | Store_site

type t = {
  name : string;
  description : string;
  sites : (string * site_kind) array;
      (** Synchronisation access labels, in program order. *)
  defaults : Instr.order array;  (** One order per site. *)
  build : Instr.order array -> Test.t;
}

(* Witness registers shared by every lock. *)
let rE = 0 (* entered *)
let rC = 1 (* critical-section counter read *)
let rT = 2 (* counter + 1 *)

let enter = Instr.Mov { dst = rE; src = Instr.Imm 1 }

let critical ~counter =
  [
    enter;
    C11.load ~mode:C11.rlx ~dst:rC ~loc:counter;
    Instr.Op { op = Instr.Add; dst = rT; a = Instr.Reg rC; b = Instr.Imm 1 };
    C11.store_reg ~mode:C11.rlx ~src:rT ~loc:counter;
  ]

let mutex_violation = [ ((0, rE), 1); ((1, rE), 1); ((0, rC), 0); ((1, rC), 0) ]

let check_sites sites orders =
  if Array.length orders <> Array.length sites then
    invalid_arg "Locks.build: one order per site required"

let make_lock ~name ~description ~sites ~defaults ~threads ?(condition = mutex_violation)
    ~locations () =
  check_sites sites defaults;
  {
    name;
    description;
    sites;
    defaults;
    build =
      (fun orders ->
        check_sites sites orders;
        Test.make ~name ~description ~locations ~threads:(threads orders) ~condition
          ~expected:[] ());
  }

(* ------------------------------------------------------------------ *)
(* Dekker (try-lock core): store own flag, enter unless the other's
   flag is up.  The store/load pair is the store-buffering shape, so
   both sites default to sc.                                           *)

let rF = 3

let dekker =
  let f i = i (* f0 = 0, f1 = 1 *) and c = 2 in
  let thread i orders =
    let j = 1 - i in
    Array.of_list
      ([
         C11.store ~mode:orders.(0) ~value:1 ~loc:(f i);
         C11.load ~mode:orders.(1) ~dst:rF ~loc:(f j);
         Instr.Cbnz { src = rF; offset = 4 };
       ]
      @ critical ~counter:c)
  in
  make_lock ~name:"dekker"
    ~description:"Dekker try-lock core: flag store vs. opposing flag load (SB shape)"
    ~sites:[| ("flag-store", Store_site); ("flag-load", Load_site) |]
    ~defaults:[| C11.sc; C11.sc |]
    ~locations:[| "f0"; "f1"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Peterson: flags plus a turn variable; enter if the other's flag is
   down OR the turn is ours.                                           *)

let rTu = 4
let rD = 5

let peterson =
  let f i = i and turn = 2 and c = 3 in
  let thread i orders =
    let j = 1 - i in
    Array.of_list
      ([
         C11.store ~mode:orders.(0) ~value:1 ~loc:(f i);
         C11.store ~mode:orders.(1) ~value:j ~loc:turn;
         C11.load ~mode:orders.(2) ~dst:rF ~loc:(f j);
         C11.load ~mode:orders.(3) ~dst:rTu ~loc:turn;
         (* enter if rF = 0 or rTu = i *)
         Instr.Cbz { src = rF; offset = 2 };
         Instr.Op { op = Instr.Sub; dst = rD; a = Instr.Reg rTu; b = Instr.Imm i };
         Instr.Cbnz { src = rD; offset = 4 };
       ]
      @ critical ~counter:c)
  in
  make_lock ~name:"peterson"
    ~description:"Peterson's algorithm (bounded): flags and a turn variable"
    ~sites:
      [|
        ("flag-store", Store_site);
        ("turn-store", Store_site);
        ("flag-load", Load_site);
        ("turn-load", Load_site);
      |]
    ~defaults:[| C11.sc; C11.sc; C11.sc; C11.sc |]
    ~locations:[| "f0"; "f1"; "turn"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Compare-and-swap lock: CAS(l, 0 -> 1) guards the critical section;
   a plain release store unlocks.  Mutual exclusion leans on RMW
   atomicity plus the release/acquire edge through the lock word.      *)

let r_status = 6
let rL = 7

let cas_lock =
  let l = 0 and c = 1 in
  let thread _i orders =
    Array.of_list
      ([
         Instr.Mov { dst = r_status; src = Instr.Imm 1 };
         Instr.Load_exclusive { dst = rL; addr = Instr.Imm l; order = orders.(0) };
         Instr.Cbnz { src = rL; offset = 7 };
         Instr.Store_exclusive
           { status = r_status; src = Instr.Imm 1; addr = Instr.Imm l; order = orders.(1) };
         Instr.Cbnz { src = r_status; offset = 5 };
       ]
      @ critical ~counter:c
      @ [ C11.store ~mode:orders.(2) ~value:0 ~loc:l ])
  in
  make_lock ~name:"cas-lock"
    ~description:"Try-lock via CAS(l, 0 -> 1); release store unlocks"
    ~sites:
      [| ("cas-read", Load_site); ("cas-write", Store_site); ("unlock", Store_site) |]
    ~defaults:[| C11.acq; C11.rlx; C11.rel |]
    ~locations:[| "l"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Atomic-exchange (test-and-set) lock: unconditionally swap 1 into
   the lock word; enter if the old value was 0.                        *)

let exchange =
  let l = 0 and c = 1 in
  let thread _i orders =
    Array.of_list
      ([
         Instr.Mov { dst = r_status; src = Instr.Imm 1 };
         Instr.Load_exclusive { dst = rL; addr = Instr.Imm l; order = orders.(0) };
         Instr.Store_exclusive
           { status = r_status; src = Instr.Imm 1; addr = Instr.Imm l; order = orders.(1) };
         Instr.Cbnz { src = r_status; offset = 6 };
         Instr.Cbnz { src = rL; offset = 5 };
       ]
      @ critical ~counter:c
      @ [ C11.store ~mode:orders.(2) ~value:0 ~loc:l ])
  in
  make_lock ~name:"exchange"
    ~description:"Test-and-set lock via atomic exchange; enter on old value 0"
    ~sites:
      [| ("xchg-read", Load_site); ("xchg-write", Store_site); ("unlock", Store_site) |]
    ~defaults:[| C11.acq; C11.rlx; C11.rel |]
    ~locations:[| "l"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Bakery doorway (bounded, two threads): announce choosing, take a
   ticket one above the other's number (a data-dependent store), then
   enter only if the other is neither choosing nor holding a ticket.   *)

let rN = 3
let rTk = 4
let rCh = 5
let rN2 = 6

let bakery =
  let ch i = i (* ch0 = 0, ch1 = 1 *) and n i = 2 + i and c = 4 in
  let thread i orders =
    let j = 1 - i in
    Array.of_list
      ([
         C11.store ~mode:orders.(0) ~value:1 ~loc:(ch i);
         C11.load ~mode:orders.(1) ~dst:rN ~loc:(n j);
         Instr.Op { op = Instr.Add; dst = rTk; a = Instr.Reg rN; b = Instr.Imm 1 };
         C11.store_reg ~mode:orders.(2) ~src:rTk ~loc:(n i);
         C11.store ~mode:orders.(3) ~value:0 ~loc:(ch i);
         C11.load ~mode:orders.(4) ~dst:rCh ~loc:(ch j);
         Instr.Cbnz { src = rCh; offset = 6 };
         C11.load ~mode:orders.(5) ~dst:rN2 ~loc:(n j);
         Instr.Cbnz { src = rN2; offset = 4 };
       ]
      @ critical ~counter:c)
  in
  make_lock ~name:"bakery"
    ~description:"Lamport bakery doorway (bounded): choosing flags and ticket numbers"
    ~sites:
      [|
        ("choosing-store", Store_site);
        ("number-read", Load_site);
        ("number-store", Store_site);
        ("choosing-clear", Store_site);
        ("choosing-read", Load_site);
        ("number-recheck", Load_site);
      |]
    ~defaults:[| C11.sc; C11.sc; C11.sc; C11.sc; C11.sc; C11.sc |]
    ~locations:[| "ch0"; "ch1"; "n0"; "n1"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Filter lock (two threads, one level): raise own level, volunteer as
   victim, enter if the other's level is down OR we are not the
   victim.                                                             *)

let rV = 4

let filter =
  let lv i = i and v = 2 and c = 3 in
  let thread i orders =
    let j = 1 - i in
    Array.of_list
      ([
         C11.store ~mode:orders.(0) ~value:1 ~loc:(lv i);
         C11.store ~mode:orders.(1) ~value:i ~loc:v;
         C11.load ~mode:orders.(2) ~dst:rF ~loc:(lv j);
         C11.load ~mode:orders.(3) ~dst:rV ~loc:v;
         (* enter if rF = 0 or rV <> i *)
         Instr.Cbz { src = rF; offset = 2 };
         Instr.Op { op = Instr.Sub; dst = rD; a = Instr.Reg rV; b = Instr.Imm i };
         Instr.Cbz { src = rD; offset = 4 };
       ]
      @ critical ~counter:c)
  in
  make_lock ~name:"filter"
    ~description:"Filter lock, single level: level flags and a victim variable"
    ~sites:
      [|
        ("level-store", Store_site);
        ("victim-store", Store_site);
        ("level-load", Load_site);
        ("victim-load", Load_site);
      |]
    ~defaults:[| C11.sc; C11.sc; C11.sc; C11.sc |]
    ~locations:[| "lv0"; "lv1"; "v"; "c" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)
(* Sense-reversal barrier (one episode, bounded): publish data, fetch-
   add the arrival count; the last arriver flips the sense, earlier
   arrivers sample it once.  The witness is data visibility: both
   threads passing while one misses the other's published datum.       *)

let r_one = 3
let rArr = 4
let rNew = 5
let rS = 7
let rDt = 8

let barrier =
  let d i = i (* d0 = 0, d1 = 1 *) and count = 2 and sense = 3 in
  let thread i orders =
    let j = 1 - i in
    [|
      (* 0 *) C11.store ~mode:C11.rlx ~value:1 ~loc:(d i);
      (* 1 *) Instr.Mov { dst = r_one; src = Instr.Imm 1 };
      (* 2 *) Instr.Mov { dst = r_status; src = Instr.Imm 1 };
      (* 3 *)
      Instr.Load_exclusive { dst = rArr; addr = Instr.Imm count; order = orders.(0) };
      (* 4 *) Instr.Op { op = Instr.Add; dst = rNew; a = Instr.Reg rArr; b = Instr.Imm 1 };
      (* 5 *)
      Instr.Store_exclusive
        { status = r_status; src = Instr.Reg rNew; addr = Instr.Imm count;
          order = orders.(1) };
      (* 6 *) Instr.Cbnz { src = r_status; offset = 7 } (* fetch-add failed: give up *);
      (* 7 *) Instr.Cbnz { src = rArr; offset = 3 } (* last arriver: open the gate *);
      (* 8 *) C11.load ~mode:orders.(3) ~dst:rS ~loc:sense;
      (* 9 *) Instr.Cbz { src = rS; offset = 4 } (* gate closed: give up *);
      (* 10 *) Instr.Cbnz { src = r_one; offset = 1 } (* skip the gate-open store *);
      (* 11 *) C11.store ~mode:orders.(2) ~value:1 ~loc:sense;
      (* 12 *) enter;
      (* 13 *) C11.load ~mode:C11.rlx ~dst:rDt ~loc:(d j);
    |]
  in
  make_lock ~name:"barrier"
    ~description:
      "Sense-reversal barrier episode: fetch-add arrival count, last arriver flips the \
       sense"
    ~sites:
      [|
        ("count-read", Load_site);
        ("count-write", Store_site);
        ("sense-store", Store_site);
        ("sense-load", Load_site);
      |]
    ~defaults:[| C11.acq; C11.rel; C11.rel; C11.acq |]
    ~condition:[ ((0, rE), 1); ((1, rE), 1); ((1, rDt), 0) ]
    ~locations:[| "d0"; "d1"; "count"; "sense" |]
    ~threads:(fun orders -> [ thread 0 orders; thread 1 orders ]) ()

(* ------------------------------------------------------------------ *)

let all = [ dekker; peterson; cas_lock; exchange; bakery; filter; barrier ]

let by_name name = List.find_opt (fun l -> l.name = name) all

let test_of l = l.build l.defaults

let violation l = (test_of l).Test.condition
