open Wmm_isa
open Wmm_litmus

(* Language-level (C11) program builders.  C11 access modes reuse
   {!Instr.order}: [Plain] is relaxed (there are no non-atomics in
   this tier), [Acquire]/[Release] are their C11 namesakes, and
   [Acq_rel]/[Sc] exist only at this tier until {!Compile} lowers
   them.  RMWs are expressed as exclusive pairs, exactly what the
   enumerator's rmw-edge machinery and the atomicity axiom expect:
   a language-level CAS may fail spuriously, which only adds
   outcomes and therefore never endangers compilation containment. *)

let rlx = Instr.Plain
let acq = Instr.Acquire
let rel = Instr.Release
let acq_rel = Instr.Acq_rel
let sc = Instr.Sc

let mode_name = function
  | Instr.Plain -> "rlx"
  | Instr.Acquire -> "acq"
  | Instr.Release -> "rel"
  | Instr.Acq_rel -> "acq_rel"
  | Instr.Sc -> "sc"

let load ~mode ~dst ~loc = Instr.Load { dst; addr = Instr.Imm loc; order = mode }

let store ~mode ~value ~loc =
  Instr.Store { src = Instr.Imm value; addr = Instr.Imm loc; order = mode }

let store_reg ~mode ~src ~loc =
  Instr.Store { src = Instr.Reg src; addr = Instr.Imm loc; order = mode }

let fence_acq = Instr.Barrier Instr.Fence_acq
let fence_rel = Instr.Barrier Instr.Fence_rel
let fence_acq_rel = Instr.Barrier Instr.Fence_acq_rel
let fence_sc = Instr.Barrier Instr.Fence_sc

(* Single-attempt compare-and-swap: [status] is 0 iff the swap
   happened.  On a value mismatch the store-exclusive is skipped, so
   the failure path performs only the (exclusive) read — C11's
   failure memory order is the read's order, as required.  [tmp]
   holds old - expected; [old] keeps the loaded value. *)
let cas ~status ~old ~tmp ~expected ~desired ~loc ~mode_r ~mode_w =
  [
    Instr.Mov { dst = status; src = Instr.Imm 1 };
    Instr.Load_exclusive { dst = old; addr = Instr.Imm loc; order = mode_r };
    Instr.Op { op = Instr.Sub; dst = tmp; a = Instr.Reg old; b = Instr.Imm expected };
    Instr.Cbnz { src = tmp; offset = 1 };
    Instr.Store_exclusive
      { status; src = Instr.Imm desired; addr = Instr.Imm loc; order = mode_w };
  ]

(* Single-attempt atomic exchange; [status] 0 iff it took effect
   (store-exclusives may fail spuriously). *)
let exchange ~status ~old ~desired ~loc ~mode_r ~mode_w =
  [
    Instr.Mov { dst = status; src = Instr.Imm 1 };
    Instr.Load_exclusive { dst = old; addr = Instr.Imm loc; order = mode_r };
    Instr.Store_exclusive
      { status; src = Instr.Imm desired; addr = Instr.Imm loc; order = mode_w };
  ]

(* Single-attempt fetch-add: [old] gets the previous value, [tmp] the
   incremented one. *)
let fetch_add ~status ~old ~tmp ~amount ~loc ~mode_r ~mode_w =
  [
    Instr.Mov { dst = status; src = Instr.Imm 1 };
    Instr.Load_exclusive { dst = old; addr = Instr.Imm loc; order = mode_r };
    Instr.Op { op = Instr.Add; dst = tmp; a = Instr.Reg old; b = Instr.Imm amount };
    Instr.Store_exclusive
      { status; src = Instr.Reg tmp; addr = Instr.Imm loc; order = mode_w };
  ]

(* ------------------------------------------------------------------ *)
(* Lifting the hardware litmus library to the language tier.           *)
(* ------------------------------------------------------------------ *)

(* One instruction maps to one instruction (so branch offsets and
   register conditions survive unchanged): access orders keep their
   C11 namesakes, hardware barriers become the C11 fence of the same
   strength, and the pipeline barriers become acquire fences (their
   litmus use is the ctrl+isb/isync idiom, the hardware spelling of
   an acquiring read). *)
let lift_barrier = function
  | Instr.Dmb_ish | Instr.Sync -> Instr.Fence_sc
  | Instr.Lwsync -> Instr.Fence_acq_rel
  | Instr.Dmb_ishld -> Instr.Fence_acq
  | Instr.Dmb_ishst | Instr.Eieio -> Instr.Fence_rel
  | Instr.Isb | Instr.Isync -> Instr.Fence_acq
  | (Instr.Fence_acq | Instr.Fence_rel | Instr.Fence_acq_rel | Instr.Fence_sc) as b -> b

let lift_instr = function
  | Instr.Barrier b -> Instr.Barrier (lift_barrier b)
  | i -> i

let lift_test (t : Test.t) =
  let p = t.Test.program in
  let threads =
    Array.to_list (Array.map (fun th -> Array.map lift_instr th) p.Wmm_isa.Program.threads)
  in
  Test.make
    ~name:(t.Test.name ^ "+c11")
    ~description:(t.Test.description ^ " (lifted to C11 accesses)")
    ~locations:p.Wmm_isa.Program.location_names ~init:p.Wmm_isa.Program.init ~threads
    ~condition:t.Test.condition ~mem_condition:t.Test.mem_condition ~expected:[] ()

let lifted_library () = List.map lift_test Library.all
