open Wmm_isa
open Wmm_litmus

(** Fencing-sensitivity ranking: weaken each lock's synchronisation
    sites one C11 strength step at a time and measure how many
    weakenings make the mutual-exclusion violation reachable on each
    compiled target.  All probes run as cached engine tasks. *)

type probe = R_broken | R_safe | R_skip of string

type entry = {
  site : string;
  from_order : Instr.order;
  to_order : Instr.order;
  rc11 : probe;
  hw : probe;
}

type row = {
  lock : string;
  scheme : Compile.scheme;
  default_safe : bool;
  entries : entry list;
  broken : int;
  total : int;
}

val sensitivity : row -> float

val weaker : Locks.site_kind -> Instr.order -> Instr.order option
(** One step down the ladder; [None] at the bottom ([rlx]). *)

val default_schemes : Compile.scheme list
(** The canonical scheme per architecture:
    [[Arm_native; Power_sync]]. *)

val probe_task :
  model_id:string -> Wmm_model.Axiomatic.model -> Test.t -> probe Wmm_engine.Task.t

val run :
  ?schemes:Compile.scheme list ->
  ?locks:Locks.t list ->
  engine:Wmm_engine.Engine.t ->
  unit ->
  row list

val row_line : row -> string
(** ["rank|scheme|lock|broken/total|sensitivity|defaults-safe"]: the
    stable line both the CLI and the served daemon emit, so
    round-trips diff verbatim. *)

val render : ?schemes:Compile.scheme list -> row list -> string
(** Per scheme: locks ranked by sensitivity (descending, name as
    tie-break) followed by the per-site probe table. *)
