open Wmm_isa
open Wmm_model
open Wmm_litmus
module Task = Wmm_engine.Task
module Engine = Wmm_engine.Engine
module Verify = Wmm_analysis.Verify

(* Fencing-sensitivity ranking over the lock suite: for every lock
   and compilation scheme, weaken each synchronisation site by one
   step of the C11 strength ladder (loads: sc -> acq -> rlx, stores:
   sc -> rel -> rlx) and ask whether the mutual-exclusion violation
   becomes reachable — at the language level under RC11, and on the
   target under the compiled hardware model.  A lock's sensitivity is
   the fraction of one-step weakenings that break it on the target:
   high sensitivity means every ordering annotation is load-bearing,
   low sensitivity means the algorithm leaves ordering slack the
   compiler's fences then pay for. *)

(* Marshal-stable task result. *)
type probe = R_broken | R_safe | R_skip of string

type entry = {
  site : string;
  from_order : Instr.order;
  to_order : Instr.order;
  rc11 : probe;  (** Violation reachable under RC11 at the source. *)
  hw : probe;  (** Violation reachable under the compiled target. *)
}

type row = {
  lock : string;
  scheme : Compile.scheme;
  default_safe : bool;
      (** At the default orders, the violation is unreachable both
          under RC11 and on the compiled target. *)
  entries : entry list;
  broken : int;
  total : int;
}

let sensitivity r = if r.total = 0 then 0.0 else float_of_int r.broken /. float_of_int r.total

let weaker kind order =
  match (kind, order) with
  | _, Instr.Plain -> None
  | Locks.Load_site, (Instr.Sc | Instr.Acq_rel | Instr.Release) -> Some Instr.Acquire
  | Locks.Load_site, Instr.Acquire -> Some Instr.Plain
  | Locks.Store_site, (Instr.Sc | Instr.Acq_rel | Instr.Acquire) -> Some Instr.Release
  | Locks.Store_site, Instr.Release -> Some Instr.Plain

let violation_outcome (t : Test.t) =
  { Enumerate.registers = t.Test.condition; memory = t.Test.mem_condition }

let probe_task ~model_id model (t : Test.t) =
  let key = Printf.sprintf "lang/rank/v1|%s|%s" model_id (Verify.test_digest t) in
  let label = Printf.sprintf "rank %s %s" model_id t.Test.name in
  Task.pure ~key ~label (fun () ->
      match
        Enumerate.outcome_allowed model t.Test.program (violation_outcome t)
      with
      | true -> R_broken
      | false -> R_safe
      | exception Failure msg -> R_skip msg)

let rc11_probe t = probe_task ~model_id:"rc11" Axiomatic.Rc11 t

let hw_probe scheme t =
  probe_task ~model_id:(Compile.scheme_name scheme) (Contain.hw_model scheme)
    (Compile.compile_test scheme t)

let default_schemes = [ Compile.Arm_native; Compile.Power_sync ]

let weakenings (lock : Locks.t) =
  List.concat
    (List.mapi
       (fun i (label, kind) ->
         match weaker kind lock.Locks.defaults.(i) with
         | None -> []
         | Some to_order ->
             let orders = Array.copy lock.Locks.defaults in
             orders.(i) <- to_order;
             [ (label, lock.Locks.defaults.(i), to_order, orders) ])
       (Array.to_list lock.Locks.sites))

let run ?(schemes = default_schemes) ?(locks = Locks.all) ~engine () =
  let batch = Engine.Batch.create () in
  let cells =
    List.concat_map
      (fun (lock : Locks.t) ->
        let base = Locks.test_of lock in
        let weak = weakenings lock in
        List.map
          (fun scheme ->
            let base_rc11 = Engine.Batch.add batch (rc11_probe base) in
            let base_hw = Engine.Batch.add batch (hw_probe scheme base) in
            let probes =
              List.map
                (fun (site, from_order, to_order, orders) ->
                  let t = lock.Locks.build orders in
                  ( site,
                    from_order,
                    to_order,
                    Engine.Batch.add batch (rc11_probe t),
                    Engine.Batch.add batch (hw_probe scheme t) ))
                weak
            in
            (lock, scheme, base_rc11, base_hw, probes))
          schemes)
      locks
  in
  Engine.Batch.run engine batch;
  let get p = match Engine.get (p ()) with
    | r -> r
    | exception Failure msg -> R_skip ("task failed: " ^ msg)
  in
  List.map
    (fun ((lock : Locks.t), scheme, base_rc11, base_hw, probes) ->
      let entries =
        List.map
          (fun (site, from_order, to_order, rc11, hw) ->
            { site; from_order; to_order; rc11 = get rc11; hw = get hw })
          probes
      in
      let broken = List.length (List.filter (fun e -> e.hw = R_broken) entries) in
      {
        lock = lock.Locks.name;
        scheme;
        default_safe = get base_rc11 = R_safe && get base_hw = R_safe;
        entries;
        broken;
        total = List.length entries;
      })
    cells

(* One machine-greppable line per row; the one-shot CLI prints these
   and the served daemon embeds the identical string in its JSON
   payload, so round-trip tests can diff them verbatim. *)
let row_line r =
  Printf.sprintf "rank|%s|%s|%d/%d|%.3f|%s" (Compile.scheme_name r.scheme) r.lock
    r.broken r.total (sensitivity r)
    (if r.default_safe then "defaults-safe" else "defaults-unsafe")

(* Deterministic: sensitivity descending, then lock name, within each
   scheme block in [schemes] order. *)
let render ?(schemes = default_schemes) rows =
  let b = Buffer.create 1024 in
  let probe_mark = function
    | R_broken -> "broken"
    | R_safe -> "safe"
    | R_skip _ -> "skip"
  in
  List.iter
    (fun scheme ->
      let block =
        List.filter (fun r -> r.scheme = scheme) rows
        |> List.sort (fun a b ->
               match compare (sensitivity b) (sensitivity a) with
               | 0 -> compare a.lock b.lock
               | c -> c)
      in
      if block <> [] then (
        Printf.bprintf b "fencing sensitivity [%s -> %s]:\n"
          (Compile.scheme_name scheme)
          (Arch.name (Compile.scheme_arch scheme));
        List.iteri
          (fun i r ->
            Printf.bprintf b "  %d. %-10s %d/%d weakenings break it (%.2f)%s\n" (i + 1)
              r.lock r.broken r.total (sensitivity r)
              (if r.default_safe then "" else "  [DEFAULTS UNSAFE]"))
          block;
        List.iter
          (fun r ->
            List.iter
              (fun e ->
                Printf.bprintf b "     %s.%s: %s -> %s  rc11=%s hw=%s\n" r.lock e.site
                  (C11.mode_name e.from_order) (C11.mode_name e.to_order)
                  (probe_mark e.rc11) (probe_mark e.hw))
              r.entries)
          block;
        Buffer.add_char b '\n'))
    schemes;
  Buffer.contents b
