open Wmm_isa
open Wmm_litmus

(* Compilation of C11 accesses and fences to ARM and POWER
   instruction sequences.  The mappings are the documented ones
   (Batty et al. / the cppmem compilation tables), restricted to what
   the shipped hardware models can express:

   ARM (native, RCsc half-barrier instructions):
     ld rlx      -> ldr ; cbnz +0        (pseudo control dependency)
     ld acq/sc   -> ldar
     st rlx      -> str
     st rel/sc   -> stlr
     fence acq   -> dmb ishld
     fence rel/acq_rel/sc -> dmb ish

   ARM (fenced, pre-ARMv8 style):
     ld rlx      -> ldr ; cbnz +0
     ld acq      -> ldr ; cbnz +0 ; isb  (ctrl-isb)
     ld sc       -> ldr ; dmb ish
     st rel      -> dmb ish ; str
     st sc       -> dmb ish ; str ; dmb ish
     fence as native

   POWER (leading-sync):
     ld rlx      -> ld ; cbnz +0
     ld acq      -> ld ; lwsync
     ld sc       -> sync ; ld ; lwsync
     st rlx      -> st
     st rel      -> lwsync ; st
     st sc       -> sync ; st
     fence acq/rel/acq_rel -> lwsync, fence sc -> sync

   The pseudo control dependency after relaxed loads is load-bearing:
   RC11 forbids load-buffering cycles outright (acyclic po U rf),
   while the dependency-free hardware models allow them.  A
   [cbnz dst, +0] is architecturally a no-op but creates a control
   dependency from the load to every later store, which both hardware
   ppos preserve — restoring exactly the po U rf edges RC11 counts
   on.  Orders whose mapping already begins the load with an acquire
   flavour (ldar, ld;lwsync, ctrl-isb) don't need it.

   Exclusive pairs compile to the exclusive instructions with the
   same placement of half barriers; a compiled RMW can still fail
   spuriously, matching the language-level single-attempt builders. *)

type scheme = Arm_native | Arm_fenced | Power_sync

let all_schemes = [ Arm_native; Arm_fenced; Power_sync ]

let scheme_name = function
  | Arm_native -> "arm-native"
  | Arm_fenced -> "arm-fenced"
  | Power_sync -> "power-sync"

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "arm-native" | "arm" -> Some Arm_native
  | "arm-fenced" -> Some Arm_fenced
  | "power-sync" | "power" -> Some Power_sync
  | _ -> None

let scheme_arch = function
  | Arm_native | Arm_fenced -> Arch.Armv8
  | Power_sync -> Arch.Power7

let default_scheme_for = function
  | Arch.Armv8 -> Arm_native
  | Arch.Power7 -> Power_sync

let fake_ctrl dst = Instr.Cbnz { src = dst; offset = 0 }

let compile_fence scheme b =
  let barrier x = [ Instr.Barrier x ] in
  match (scheme, b) with
  (* Hardware barriers pass through untouched. *)
  | _, (Instr.Dmb_ish | Instr.Dmb_ishld | Instr.Dmb_ishst | Instr.Isb) -> barrier b
  | _, (Instr.Sync | Instr.Lwsync | Instr.Isync | Instr.Eieio) -> barrier b
  | (Arm_native | Arm_fenced), Instr.Fence_acq -> barrier Instr.Dmb_ishld
  | (Arm_native | Arm_fenced), (Instr.Fence_rel | Instr.Fence_acq_rel | Instr.Fence_sc)
    ->
      barrier Instr.Dmb_ish
  | Power_sync, (Instr.Fence_acq | Instr.Fence_rel | Instr.Fence_acq_rel) ->
      barrier Instr.Lwsync
  | Power_sync, Instr.Fence_sc -> barrier Instr.Sync

let compile_instr scheme (i : Instr.t) =
  let b x = Instr.Barrier x in
  match i with
  | Instr.Load { dst; addr; order } -> (
      let plain = Instr.Load { dst; addr; order = Instr.Plain } in
      let acq = Instr.Load { dst; addr; order = Instr.Acquire } in
      match (scheme, order) with
      | _, Instr.Plain | _, Instr.Release -> [ plain; fake_ctrl dst ]
      | (Arm_native | Arm_fenced), Instr.Acquire
      | (Arm_native | Arm_fenced), Instr.Acq_rel ->
          if scheme = Arm_native then [ acq ]
          else [ plain; fake_ctrl dst; b Instr.Isb ]
      | Arm_native, Instr.Sc -> [ acq ]
      | Arm_fenced, Instr.Sc -> [ plain; b Instr.Dmb_ish ]
      | Power_sync, (Instr.Acquire | Instr.Acq_rel) -> [ plain; b Instr.Lwsync ]
      | Power_sync, Instr.Sc -> [ b Instr.Sync; plain; b Instr.Lwsync ])
  | Instr.Store { src; addr; order } -> (
      let plain = Instr.Store { src; addr; order = Instr.Plain } in
      let rel = Instr.Store { src; addr; order = Instr.Release } in
      match (scheme, order) with
      | _, Instr.Plain | _, Instr.Acquire -> [ plain ]
      | Arm_native, (Instr.Release | Instr.Acq_rel | Instr.Sc) -> [ rel ]
      | Arm_fenced, (Instr.Release | Instr.Acq_rel) -> [ b Instr.Dmb_ish; plain ]
      | Arm_fenced, Instr.Sc -> [ b Instr.Dmb_ish; plain; b Instr.Dmb_ish ]
      | Power_sync, (Instr.Release | Instr.Acq_rel) -> [ b Instr.Lwsync; plain ]
      | Power_sync, Instr.Sc -> [ b Instr.Sync; plain ])
  | Instr.Load_exclusive { dst; addr; order } -> (
      let plain = Instr.Load_exclusive { dst; addr; order = Instr.Plain } in
      let acq = Instr.Load_exclusive { dst; addr; order = Instr.Acquire } in
      match (scheme, order) with
      | _, Instr.Plain | _, Instr.Release -> [ plain; fake_ctrl dst ]
      | Arm_native, (Instr.Acquire | Instr.Acq_rel | Instr.Sc) -> [ acq ]
      | Arm_fenced, (Instr.Acquire | Instr.Acq_rel) ->
          [ plain; fake_ctrl dst; b Instr.Isb ]
      | Arm_fenced, Instr.Sc -> [ plain; b Instr.Dmb_ish ]
      | Power_sync, (Instr.Acquire | Instr.Acq_rel) -> [ plain; b Instr.Lwsync ]
      | Power_sync, Instr.Sc -> [ b Instr.Sync; plain; b Instr.Lwsync ])
  | Instr.Store_exclusive { status; src; addr; order } -> (
      let plain = Instr.Store_exclusive { status; src; addr; order = Instr.Plain } in
      let rel = Instr.Store_exclusive { status; src; addr; order = Instr.Release } in
      match (scheme, order) with
      | _, Instr.Plain | _, Instr.Acquire -> [ plain ]
      | Arm_native, (Instr.Release | Instr.Acq_rel | Instr.Sc) -> [ rel ]
      | Arm_fenced, (Instr.Release | Instr.Acq_rel) -> [ b Instr.Dmb_ish; plain ]
      | Arm_fenced, Instr.Sc -> [ b Instr.Dmb_ish; plain; b Instr.Dmb_ish ]
      | Power_sync, (Instr.Release | Instr.Acq_rel) -> [ b Instr.Lwsync; plain ]
      | Power_sync, Instr.Sc -> [ b Instr.Sync; plain ])
  | Instr.Barrier barrier -> compile_fence scheme barrier
  | (Instr.Mov _ | Instr.Op _ | Instr.Cbnz _ | Instr.Cbz _ | Instr.Nop) as i -> [ i ]

(* Compiling one instruction to several shifts every later index, so
   relative branch offsets must be recomputed against the compiled
   layout.  Branches compile to themselves and sit at the start of
   their (singleton) sequence; a target is always an original
   instruction boundary, including one-past-the-end. *)
let compile_thread scheme (thread : Program.thread) =
  let n = Array.length thread in
  let seqs = Array.map (compile_instr scheme) thread in
  let starts = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    starts.(i + 1) <- starts.(i) + List.length seqs.(i)
  done;
  let retarget i instr =
    match instr with
    | Instr.Cbnz { src; offset } when offset <> 0 ->
        Instr.Cbnz { src; offset = starts.(i + 1 + offset) - (starts.(i) + 1) }
    | Instr.Cbz { src; offset } when offset <> 0 ->
        Instr.Cbz { src; offset = starts.(i + 1 + offset) - (starts.(i) + 1) }
    | instr -> instr
  in
  Array.of_list
    (List.concat (List.mapi (fun i seq -> List.map (retarget i) seq) (Array.to_list seqs)))

let compile_program scheme (p : Program.t) =
  Program.make
    ~location_names:p.Program.location_names ~init:p.Program.init
    ~name:(p.Program.name ^ "@" ^ scheme_name scheme)
    (Array.to_list (Array.map (compile_thread scheme) p.Program.threads))

(* Register footprints are preserved (inserted instructions write no
   registers), so conditions carry over verbatim. *)
let compile_test scheme (t : Test.t) =
  let p = compile_program scheme t.Test.program in
  Test.make
    ~name:(t.Test.name ^ "@" ^ scheme_name scheme)
    ~description:t.Test.description ~locations:p.Program.location_names
    ~init:p.Program.init
    ~threads:(Array.to_list p.Program.threads)
    ~condition:t.Test.condition ~mem_condition:t.Test.mem_condition ~expected:[] ()
