open Wmm_isa
open Wmm_litmus

(** Compilation of C11 accesses and fences to ARM and POWER
    instruction sequences — the documented mapping tables, one scheme
    per (architecture, style).

    Compiled relaxed loads carry a degenerate [cbnz dst, +0]: an
    architectural no-op that creates a control dependency to every
    later store, preserving the [po U rf] acyclicity RC11 guarantees
    but the dependency-free hardware models would otherwise lose. *)

type scheme =
  | Arm_native  (** ldar / stlr half-barrier instructions *)
  | Arm_fenced  (** pre-ARMv8 style: dmb / ctrl-isb sequences *)
  | Power_sync  (** leading-sync convention: sync / lwsync *)

val all_schemes : scheme list
val scheme_name : scheme -> string
val scheme_of_string : string -> scheme option
val scheme_arch : scheme -> Arch.t
val default_scheme_for : Arch.t -> scheme

val compile_instr : scheme -> Instr.t -> Instr.t list

val compile_thread : scheme -> Program.thread -> Program.thread
(** Expands each instruction and recomputes relative branch offsets
    against the compiled layout. *)

val compile_program : scheme -> Program.t -> Program.t
(** Renames to ["name@scheme"]. *)

val compile_test : scheme -> Test.t -> Test.t
(** Inserted instructions write no registers, so the register and
    memory conditions carry over verbatim; [expected] is dropped. *)
