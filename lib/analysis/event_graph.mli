open Wmm_isa

(** Static event graphs: the conflict-graph abstraction of Shasha and
    Snir, lifted from {!Wmm_isa.Program} instruction listings.

    Each thread is abstractly interpreted once, fall-through (litmus
    branches are the degenerate [cbnz r, +0] control-dependency
    idiom), with constant propagation over registers so that the
    library's [xor r,r / add r,#loc] artificial-address idiom
    resolves to a concrete location.  The result is the set of
    static memory accesses, the program-order edges between them
    (annotated with intervening fences and static dependencies), and
    enough information to decide which po edges a given memory model
    preserves (see {!Critical}). *)

type access = {
  node : int;  (** Graph-wide id, dense from 0, in (thread, index) order. *)
  tid : int;
  index : int;  (** Instruction index within the thread. *)
  is_write : bool;
  loc : Instr.loc option;
      (** Statically resolved location; [None] when the address could
          not be resolved, in which case the access conflicts with
          every other-thread access (a wildcard). *)
  order : Instr.order;
  exclusive : bool;
  value : Instr.value option;
      (** For writes, the statically resolved stored value; [None]
          for reads and for stores of dynamically computed values
          (e.g. data-dependency stores of a loaded register). *)
}

type po_edge = {
  src : access;
  dst : access;
  fences : Instr.barrier list;
      (** Barriers appearing strictly between the two accesses. *)
  addr_dep : bool;  (** [dst]'s address depends on a value read by [src]. *)
  data_dep : bool;  (** [dst]'s stored value depends on [src]. *)
  ctrl_dep : bool;  (** [dst] is control-dependent on [src]. *)
  ctrl_pipeline : Instr.barrier list;
      (** Pipeline barriers (isb/isync) between the two that are
          themselves control-dependent on [src]: the ctrl+isb /
          ctrl+isync restoration idiom. *)
}

type t = {
  program : Program.t;
  accesses : access list;  (** Ascending [node]. *)
  edges : po_edge list;
      (** Every ordered same-thread pair of accesses, nearest first. *)
}

val extract : Program.t -> t

val same_loc : access -> access -> bool
(** True only when both locations resolved statically and are equal. *)

val conflict : access -> access -> bool
(** Different threads, at least one write, locations compatible
    (equal, or at least one unresolved). *)

val edge_kind : po_edge -> Wmm_platform.Barrier.elemental
(** Classify by endpoint directions: LoadLoad, LoadStore, StoreLoad
    or StoreStore. *)

val access_of : t -> tid:int -> index:int -> access option
val pp_access : Format.formatter -> access -> unit
