open Wmm_isa
open Wmm_model
open Event_graph

type cycle = {
  nodes : Event_graph.access list;
  po_edges : Event_graph.po_edge list;
  delays : Event_graph.po_edge list;
}

let has b e = List.mem b e.fences

let preserved model (e : po_edge) =
  let kind = edge_kind e in
  let dep_to_write = (e.data_dep || e.ctrl_dep) && e.dst.is_write in
  (* SC per location holds in every model: same-location po pairs
     never need a fence. *)
  same_loc e.src e.dst
  ||
  match model with
  | Axiomatic.Sc -> true
  | Axiomatic.Tso ->
      kind <> Wmm_platform.Barrier.Store_load || has Instr.Dmb_ish e || has Instr.Sync e
  | Axiomatic.Arm ->
      has Instr.Dmb_ish e
      || (has Instr.Dmb_ishld e && not e.src.is_write)
      || (has Instr.Dmb_ishst e && e.src.is_write && e.dst.is_write)
      || e.addr_dep || dep_to_write
      || (e.ctrl_dep && List.mem Instr.Isb e.ctrl_pipeline)
      || (e.src.order = Instr.Acquire && not e.src.is_write)
      || (e.dst.order = Instr.Release && e.dst.is_write)
      || (e.src.order = Instr.Release && e.dst.order = Instr.Acquire)
  | Axiomatic.Power ->
      has Instr.Sync e
      || (has Instr.Lwsync e && kind <> Wmm_platform.Barrier.Store_load)
      || (has Instr.Eieio e && kind = Wmm_platform.Barrier.Store_store)
      || e.addr_dep || dep_to_write
      || (e.ctrl_dep && List.mem Instr.Isync e.ctrl_pipeline)
  | Axiomatic.Rc11 ->
      (* Language tier: an edge is ordered when a strong-enough C11
         fence intervenes or the endpoint modes synchronise. *)
      let acq = function Instr.Acquire | Instr.Acq_rel | Instr.Sc -> true | _ -> false in
      let rel = function Instr.Release | Instr.Acq_rel | Instr.Sc -> true | _ -> false in
      has Instr.Fence_sc e
      || (has Instr.Fence_acq_rel e && kind <> Wmm_platform.Barrier.Store_load)
      || (has Instr.Fence_acq e && not e.src.is_write)
      || (has Instr.Fence_rel e && e.dst.is_write)
      || (acq e.src.order && not e.src.is_write)
      || (rel e.dst.order && e.dst.is_write)
      || (e.src.order = Instr.Sc && e.dst.order = Instr.Sc)

let max_cycle_len = 8

let cycles (g : Event_graph.t) =
  let accs = Array.of_list g.accesses in
  let n = Array.length accs in
  let po = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.add po (e.src.node, e.dst.node) e) g.edges;
  let find_po u v = Hashtbl.find_opt po (u, v) in
  let results = ref [] in
  for s = 0 to n - 1 do
    (* Enumerate simple cycles whose minimum node is [s]; directed po
       edges fix the orientation, so each cycle appears once.
       [path] is in reverse visit order, [po_acc] collects the po
       edges traversed so far. *)
    let rec dfs path po_acc thread_count =
      let u = List.hd path in
      for v = 0 to n - 1 do
        let au = accs.(u) and av = accs.(v) in
        let edge =
          if au.tid = av.tid then Option.map (fun e -> `Po e) (find_po u v)
          else if conflict au av then Some `Conflict
          else None
        in
        match edge with
        | None -> ()
        | Some step ->
            let po_here = match step with `Po e -> e :: po_acc | `Conflict -> po_acc in
            if v = s && List.length path >= 2 then begin
              let nodes = List.rev_map (fun i -> accs.(i)) path in
              let tids = List.sort_uniq compare (List.map (fun a -> a.tid) nodes) in
              if po_here <> [] && List.length tids >= 2 then
                results := (nodes, List.rev po_here) :: !results
            end
            else if
              v > s
              && (not (List.mem v path))
              && List.length path < max_cycle_len
              && (try Hashtbl.find thread_count av.tid < 2 with Not_found -> true)
            then begin
              let c = try Hashtbl.find thread_count av.tid with Not_found -> 0 in
              Hashtbl.replace thread_count av.tid (c + 1);
              dfs (v :: path) po_here thread_count;
              Hashtbl.replace thread_count av.tid c
            end
      done
    in
    let thread_count = Hashtbl.create 4 in
    Hashtbl.replace thread_count accs.(s).tid 1;
    dfs [ s ] [] thread_count
  done;
  (* Canonical dedup on the node set plus the po-edge set. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (nodes, po_edges) ->
      let key =
        ( List.sort compare (List.map (fun a -> a.node) nodes),
          List.sort compare (List.map (fun e -> (e.src.node, e.dst.node)) po_edges) )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !results)

let critical_cycles model g =
  List.filter_map
    (fun (nodes, po_edges) ->
      match List.filter (fun e -> not (preserved model e)) po_edges with
      | [] -> None
      | delays -> Some { nodes; po_edges; delays })
    (cycles g)

let delay_edges model g =
  let all = List.concat_map (fun c -> c.delays) (critical_cycles model g) in
  let cmp a b = compare (a.src.node, a.dst.node) (b.src.node, b.dst.node) in
  List.sort_uniq cmp all
