open Wmm_isa

type access = {
  node : int;
  tid : int;
  index : int;
  is_write : bool;
  loc : Instr.loc option;
  order : Instr.order;
  exclusive : bool;
  value : Instr.value option;
}

type po_edge = {
  src : access;
  dst : access;
  fences : Instr.barrier list;
  addr_dep : bool;
  data_dep : bool;
  ctrl_dep : bool;
  ctrl_pipeline : Instr.barrier list;
}

type t = { program : Program.t; accesses : access list; edges : po_edge list }

module IS = Set.Make (Int)
module RM = Map.Make (Int)

(* Abstract register contents: a known constant, or an unknown value
   carrying the set of read nodes it (transitively) depends on. *)
type aval = Known of int | Unknown

type cell = { v : aval; deps : IS.t }

let const v = { v = Known v; deps = IS.empty }

let eval regs = function
  | Instr.Imm v -> const v
  | Instr.Reg r -> (
      match RM.find_opt r regs with Some c -> c | None -> const 0)

let eval_op regs op a b =
  let ca = eval regs a and cb = eval regs b in
  let deps = IS.union ca.deps cb.deps in
  match (ca.v, cb.v) with
  | Known x, Known y -> { v = Known (Instr.eval_binop op x y); deps }
  | _ -> (
      (* xor r,r and sub r,r are the artificial-dependency idiom: the
         value is statically zero even though the register is not. *)
      match (op, a, b) with
      | (Instr.Xor | Instr.Sub), Instr.Reg ra, Instr.Reg rb when ra = rb ->
          { v = Known 0; deps }
      | _ -> { v = Unknown; deps })

(* Per-access static dependency annotations, kept private to the
   extractor; the public po_edge carries the per-pair booleans. *)
type raw = {
  acc : access;
  addr_deps : IS.t;  (** Read nodes the address depends on. *)
  data_deps : IS.t;  (** Read nodes the stored value depends on. *)
  ctrl_deps : IS.t;  (** Read nodes a preceding branch depends on. *)
}

type fence_at = { f_index : int; f_barrier : Instr.barrier; f_ctrl : IS.t }

let extract_thread ~next_node tid (thread : Instr.t array) =
  let regs = ref RM.empty in
  let ctrl = ref IS.empty in
  let raws = ref [] and fences = ref [] in
  let set_reg r c = regs := RM.add r c !regs in
  let fresh () =
    let n = !next_node in
    incr next_node;
    n
  in
  Array.iteri
    (fun index instr ->
      match instr with
      | Instr.Load { dst; addr; order } | Instr.Load_exclusive { dst; addr; order } ->
          let a = eval !regs addr in
          let node = fresh () in
          let exclusive = match instr with Instr.Load_exclusive _ -> true | _ -> false in
          let loc = match a.v with Known l -> Some l | Unknown -> None in
          let acc =
            { node; tid; index; is_write = false; loc; order; exclusive; value = None }
          in
          raws :=
            { acc; addr_deps = a.deps; data_deps = IS.empty; ctrl_deps = !ctrl } :: !raws;
          set_reg dst { v = Unknown; deps = IS.singleton node }
      | Instr.Store { src; addr; order } ->
          let a = eval !regs addr and s = eval !regs src in
          let node = fresh () in
          let loc = match a.v with Known l -> Some l | Unknown -> None in
          let acc =
            {
              node; tid; index; is_write = true; loc; order; exclusive = false;
              value = (match s.v with Known v -> Some v | Unknown -> None);
            }
          in
          raws := { acc; addr_deps = a.deps; data_deps = s.deps; ctrl_deps = !ctrl } :: !raws
      | Instr.Store_exclusive { status; src; addr; order } ->
          let a = eval !regs addr and s = eval !regs src in
          let node = fresh () in
          let loc = match a.v with Known l -> Some l | Unknown -> None in
          let acc =
            {
              node; tid; index; is_write = true; loc; order; exclusive = true;
              value = (match s.v with Known v -> Some v | Unknown -> None);
            }
          in
          raws := { acc; addr_deps = a.deps; data_deps = s.deps; ctrl_deps = !ctrl } :: !raws;
          (* Success path: status register is statically 0. *)
          set_reg status (const 0)
      | Instr.Barrier b ->
          fences := { f_index = index; f_barrier = b; f_ctrl = !ctrl } :: !fences
      | Instr.Mov { dst; src } -> set_reg dst (eval !regs src)
      | Instr.Op { op; dst; a; b } -> set_reg dst (eval_op !regs op a b)
      | Instr.Cbnz { src; _ } | Instr.Cbz { src; _ } ->
          (* Fall-through approximation: record the control dependency
             and continue linearly (litmus branches are [+0] idioms). *)
          let c = eval !regs (Instr.Reg src) in
          ctrl := IS.union !ctrl c.deps
      | Instr.Nop -> ())
    thread;
  (List.rev !raws, List.rev !fences)

let pipeline_barrier = function Instr.Isb | Instr.Isync -> true | _ -> false

let edges_of_thread raws fences =
  let rec pairs acc = function
    | [] -> acc
    | r :: rest ->
        let acc =
          List.fold_left
            (fun acc r' ->
              let between f = f.f_index > r.acc.index && f.f_index < r'.acc.index in
              let fs = List.filter between fences in
              let dep set = IS.mem r.acc.node set in
              {
                src = r.acc;
                dst = r'.acc;
                fences = List.map (fun f -> f.f_barrier) fs;
                addr_dep = dep r'.addr_deps;
                data_dep = dep r'.data_deps;
                ctrl_dep = dep r'.ctrl_deps;
                ctrl_pipeline =
                  List.filter_map
                    (fun f ->
                      if pipeline_barrier f.f_barrier && IS.mem r.acc.node f.f_ctrl then
                        Some f.f_barrier
                      else None)
                    fs;
              }
              :: acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] raws

let extract (program : Program.t) =
  let next_node = ref 0 in
  let accesses = ref [] and edges = ref [] in
  Array.iteri
    (fun tid thread ->
      let raws, fences = extract_thread ~next_node tid thread in
      accesses := !accesses @ List.map (fun r -> r.acc) raws;
      edges := !edges @ List.rev (edges_of_thread raws fences))
    program.Program.threads;
  { program; accesses = !accesses; edges = !edges }

let same_loc a b =
  match (a.loc, b.loc) with Some x, Some y -> x = y | _ -> false

let conflict a b =
  a.tid <> b.tid
  && (a.is_write || b.is_write)
  && (match (a.loc, b.loc) with Some x, Some y -> x = y | _ -> true)

let edge_kind e =
  match (e.src.is_write, e.dst.is_write) with
  | false, false -> Wmm_platform.Barrier.Load_load
  | false, true -> Wmm_platform.Barrier.Load_store
  | true, false -> Wmm_platform.Barrier.Store_load
  | true, true -> Wmm_platform.Barrier.Store_store

let access_of t ~tid ~index =
  List.find_opt (fun a -> a.tid = tid && a.index = index) t.accesses

let pp_access fmt a =
  Format.fprintf fmt "%c%s:%d.%d"
    (if a.is_write then 'W' else 'R')
    (match a.loc with Some l -> string_of_int l | None -> "?")
    a.tid a.index
