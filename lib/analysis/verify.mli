open Wmm_model
open Wmm_litmus

(** Placement verification against the axiomatic models.

    A strategy is sufficient for a test under a model when the test's
    condition, explored exhaustively over all candidate executions of
    the *fenced* program, is no longer reachable.  Each check is
    packaged as an engine task so verification of many candidates
    fans out across domains and is served from cache/journal on
    reruns. *)

val fenced : Test.t -> Placement.strategy -> Test.t
(** The test with the strategy's barriers inserted into its program. *)

val allowed_task : Axiomatic.model -> Test.t -> bool Wmm_engine.Task.t
(** Is the (unfenced) condition reachable under the model? *)

val sufficient_task : Axiomatic.model -> Test.t -> Placement.strategy -> bool Wmm_engine.Task.t
(** True when the condition is *unreachable* after fencing: the
    placement is sufficient. *)

val test_digest : Test.t -> string
(** Content digest of program + condition, used in task keys. *)
