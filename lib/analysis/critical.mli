open Wmm_model

(** Critical cycles and per-model delay sets (Shasha–Snir,
    generalised per architecture as in "Don't sit on the fence").

    A mixed cycle alternates program-order edges with inter-thread
    conflict edges; it is *critical* for a model iff at least one of
    its po edges is a relaxation the model permits (a "delay").  The
    static [preserved] predicate mirrors
    {!Wmm_model.Axiomatic.preserved_program_order} and
    {!Wmm_model.Axiomatic.fence_order}; it deliberately omits the
    [addr;po] and [dep;rfi] refinements, so it can only
    over-approximate the delay set — the extra fences that produces
    are pruned again by the placement minimiser. *)

type cycle = {
  nodes : Event_graph.access list;  (** In traversal order. *)
  po_edges : Event_graph.po_edge list;
  delays : Event_graph.po_edge list;
      (** The po edges of the cycle not preserved by the model. *)
}

val preserved : Axiomatic.model -> Event_graph.po_edge -> bool
(** Whether the model orders the edge's endpoints without further
    fencing: same-location pairs (SC per location), architectural
    dependencies, acquire/release, or an intervening barrier the
    model gives sufficient strength. *)

val cycles : Event_graph.t -> (Event_graph.access list * Event_graph.po_edge list) list
(** All simple mixed cycles: at most two accesses per thread, at
    least two threads, at least one po edge, bounded length. *)

val critical_cycles : Axiomatic.model -> Event_graph.t -> cycle list

val delay_edges : Axiomatic.model -> Event_graph.t -> Event_graph.po_edge list
(** Union of the delays of every critical cycle, deduplicated,
    sorted by (src, dst) node id. *)
