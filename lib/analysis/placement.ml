open Wmm_isa
open Wmm_model
open Wmm_machine

type site = { tid : int; at : int; barrier : Instr.barrier }

type strategy = site list

let full_fence_for b =
  if Instr.is_language_barrier b then Instr.Fence_sc
  else
    match Instr.barrier_arch b with
    | Arch.Armv8 -> Instr.Dmb_ish
    | Arch.Power7 -> Instr.Sync

(* a subsumes b: inserting a everywhere b was needed still works. *)
let subsumes a b =
  a = b
  ||
  match (a, b) with
  | Instr.Dmb_ish, (Instr.Dmb_ishld | Instr.Dmb_ishst) -> true
  | Instr.Sync, (Instr.Lwsync | Instr.Eieio) -> true
  | Instr.Lwsync, Instr.Eieio -> true
  | Instr.Fence_sc, (Instr.Fence_acq | Instr.Fence_rel | Instr.Fence_acq_rel) -> true
  | Instr.Fence_acq_rel, (Instr.Fence_acq | Instr.Fence_rel) -> true
  | _ -> false

let join a b =
  if subsumes a b then a else if subsumes b a then b else full_fence_for a

let canonical sites =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let key = (s.tid, s.at) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key s.barrier
      | Some b -> Hashtbl.replace tbl key (join b s.barrier))
    sites;
  Hashtbl.fold (fun (tid, at) barrier acc -> { tid; at; barrier } :: acc) tbl []
  |> List.sort (fun a b -> compare (a.tid, a.at, a.barrier) (b.tid, b.at, b.barrier))

let ladder model kind =
  match (model, kind) with
  | Axiomatic.Arm, (Wmm_platform.Barrier.Load_load | Wmm_platform.Barrier.Load_store) ->
      [ Instr.Dmb_ishld; Instr.Dmb_ish ]
  | Axiomatic.Arm, Wmm_platform.Barrier.Store_store -> [ Instr.Dmb_ishst; Instr.Dmb_ish ]
  | Axiomatic.Arm, Wmm_platform.Barrier.Store_load -> [ Instr.Dmb_ish ]
  | Axiomatic.Power, (Wmm_platform.Barrier.Load_load | Wmm_platform.Barrier.Load_store) ->
      [ Instr.Lwsync; Instr.Sync ]
  | Axiomatic.Power, Wmm_platform.Barrier.Store_store ->
      [ Instr.Eieio; Instr.Lwsync; Instr.Sync ]
  | Axiomatic.Power, Wmm_platform.Barrier.Store_load -> [ Instr.Sync ]
  | Axiomatic.Tso, Wmm_platform.Barrier.Store_load -> [ Instr.Dmb_ish ]
  | Axiomatic.Rc11, (Wmm_platform.Barrier.Load_load | Wmm_platform.Barrier.Load_store) ->
      [ Instr.Fence_acq; Instr.Fence_sc ]
  | Axiomatic.Rc11, Wmm_platform.Barrier.Store_store -> [ Instr.Fence_rel; Instr.Fence_sc ]
  | Axiomatic.Rc11, Wmm_platform.Barrier.Store_load -> [ Instr.Fence_sc ]
  | (Axiomatic.Sc | Axiomatic.Tso), _ -> []

let barrier_uop = function
  | Instr.Dmb_ish | Instr.Sync | Instr.Fence_sc -> Uop.Fence_full
  | Instr.Dmb_ishld | Instr.Fence_acq -> Uop.Fence_load
  | Instr.Dmb_ishst | Instr.Eieio -> Uop.Fence_store
  | Instr.Lwsync | Instr.Fence_rel | Instr.Fence_acq_rel -> Uop.Fence_lw
  | Instr.Isb | Instr.Isync -> Uop.Fence_pipeline

let cost_table : (Arch.t * Instr.barrier, float) Hashtbl.t = Hashtbl.create 16

let barrier_cost_ns arch b =
  match Hashtbl.find_opt cost_table (arch, b) with
  | Some c -> c
  | None ->
      let c = Perf.sequence_cost_ns ~repetitions:200 (Timing.for_arch arch) [ barrier_uop b ] in
      Hashtbl.replace cost_table (arch, b) c;
      c

let micro_cost_ns arch strategy =
  List.fold_left (fun acc s -> acc +. barrier_cost_ns arch s.barrier) 0. strategy

let barrier_strength = function
  | Instr.Dmb_ish | Instr.Sync | Instr.Fence_sc -> 3
  | Instr.Lwsync | Instr.Fence_rel | Instr.Fence_acq_rel -> 2
  | Instr.Dmb_ishld | Instr.Dmb_ishst | Instr.Eieio | Instr.Fence_acq -> 1
  | Instr.Isb | Instr.Isync -> 1

let strength strategy =
  List.fold_left (fun acc s -> acc + barrier_strength s.barrier) 0 strategy

let apply (p : Program.t) strategy =
  let threads =
    Array.mapi
      (fun tid thread ->
        let here = List.filter (fun s -> s.tid = tid) strategy in
        if here = [] then thread
        else begin
          let out = ref [] in
          Array.iteri
            (fun i instr ->
              List.iter
                (fun s -> if s.at = i then out := Instr.Barrier s.barrier :: !out)
                here;
              out := instr :: !out)
            thread;
          Array.of_list (List.rev !out)
        end)
      p.Program.threads
  in
  { p with Program.threads }

let describe = function
  | [] -> "(none)"
  | sites ->
      String.concat " "
        (List.map
           (fun s -> Printf.sprintf "P%d+%s@%d" s.tid (Instr.barrier_mnemonic s.barrier) s.at)
           sites)

let full_fence_of_arch = function Arch.Armv8 -> Instr.Dmb_ish | Arch.Power7 -> Instr.Sync

let site_of_edge barrier (e : Event_graph.po_edge) =
  let d = e.Event_graph.dst in
  { tid = d.Event_graph.tid; at = d.Event_graph.index; barrier }

let max_product = 256

let candidates model arch (g : Event_graph.t) cycles =
  let delays =
    let all = List.concat_map (fun (c : Critical.cycle) -> c.Critical.delays) cycles in
    let cmp (a : Event_graph.po_edge) b =
      compare
        (a.Event_graph.src.Event_graph.node, a.Event_graph.dst.Event_graph.node)
        (b.Event_graph.src.Event_graph.node, b.Event_graph.dst.Event_graph.node)
    in
    List.sort_uniq cmp all
  in
  let ladders =
    List.map
      (fun e ->
        let l = ladder model (Event_graph.edge_kind e) in
        let l = if l = [] then [ full_fence_of_arch arch ] else l in
        (e, l))
      delays
  in
  let n_combos = List.fold_left (fun acc (_, l) -> acc * List.length l) 1 ladders in
  let ladders =
    if n_combos <= max_product then ladders
    else
      (* Too many combinations: keep only the cheapest and strongest
         rung per edge. *)
      List.map
        (fun (e, l) ->
          match l with
          | [] | [ _ ] -> (e, l)
          | first :: rest -> (e, [ first; List.nth rest (List.length rest - 1) ]))
        ladders
  in
  let product =
    List.fold_left
      (fun combos (e, l) ->
        List.concat_map (fun c -> List.map (fun b -> site_of_edge b e :: c) l) combos)
      [ [] ] ladders
  in
  let full = full_fence_of_arch arch in
  let fallback_cycles =
    List.concat_map
      (fun (c : Critical.cycle) -> List.map (site_of_edge full) c.Critical.po_edges)
      cycles
  in
  let fallback_everywhere =
    List.filter_map
      (fun (a : Event_graph.access) ->
        let first =
          List.for_all
            (fun (b : Event_graph.access) -> b.tid <> a.tid || b.index >= a.index)
            g.accesses
        in
        if first then None else Some { tid = a.tid; at = a.index; barrier = full })
      g.accesses
  in
  let all =
    List.map canonical product @ [ canonical fallback_cycles; canonical fallback_everywhere ]
  in
  let all = List.filter (fun s -> s <> []) all in
  let seen = Hashtbl.create 16 in
  let all =
    List.filter
      (fun s ->
        let key = describe s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      all
  in
  List.sort
    (fun a b ->
      compare
        (micro_cost_ns arch a, strength a, describe a)
        (micro_cost_ns arch b, strength b, describe b))
    all
