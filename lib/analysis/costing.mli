open Wmm_isa

(** Cost-rank verified placements with the paper's methodology.

    Per strategy, three measurements run on the simulator
    ({!Wmm_machine.Perf}), each an engine task: the nop-padded
    baseline (sites hold equal-layout padding, the paper's base
    case), the fenced program, and a sweep of cost-function
    injections ({!Wmm_costfn.Cost_function}) at the same sites.  The
    sweep calibrates the program's sensitivity [k] (eq. 1 fit via
    {!Wmm_core.Sensitivity.fit_k}); the fenced run's relative
    performance [p] then converts through eq. 2 into the inferred
    per-invocation cost [a] of the placement, in nanoseconds. *)

type costed = {
  strategy : Placement.strategy;
  micro_ns : float;  (** Sum of standalone barrier microbenchmark costs. *)
  relative : float;  (** p: baseline wall time over fenced wall time. *)
  fit : Wmm_core.Sensitivity.fit;  (** Sensitivity k of the fence sites. *)
  inferred_ns : float;  (** a, paper eq. 2; [nan] when the fit degraded. *)
}

val rank_deferred :
  batch:float Wmm_engine.Engine.Batch.t ->
  Arch.t ->
  Event_graph.t ->
  Placement.strategy list ->
  unit ->
  costed list
(** Submit all measurement tasks for the strategies to [batch];
    after the batch has run, the returned thunk assembles the costed
    records, sorted by [inferred_ns] (degraded fits last). *)
