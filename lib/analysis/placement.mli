open Wmm_isa
open Wmm_model

(** Fence placement strategies: where to insert which barrier.

    A site inserts one barrier immediately before instruction [at] of
    thread [tid].  A strategy is a canonical (sorted, one barrier per
    position) list of sites.  Candidates are built from the delay
    edges of the critical cycles: each edge gets the cost-ascending
    ladder of barriers that can cover its kind, the Cartesian product
    is merged position-wise (two edges sharing a position join to the
    weakest barrier subsuming both), and two fallbacks are appended
    for the cumulativity cases static rules cannot see (e.g. IRIW on
    POWER, where per-edge lwsyncs verify as insufficient and the
    solver must escalate to sync). *)

type site = { tid : int; at : int; barrier : Instr.barrier }

type strategy = site list
(** Canonical: sorted by (tid, at), at most one site per position. *)

val canonical : site list -> strategy
(** Merge same-position sites with {!join}, sort. *)

val join : Instr.barrier -> Instr.barrier -> Instr.barrier
(** Weakest single barrier subsuming both, falling back to the
    architecture's full fence for incomparable pairs. *)

val ladder : Axiomatic.model -> Wmm_platform.Barrier.elemental -> Instr.barrier list
(** Cost-ascending barrier options covering an edge kind under the
    model (e.g. StoreStore on POWER: eieio, lwsync, sync). *)

val barrier_uop : Instr.barrier -> Wmm_machine.Uop.t

val barrier_cost_ns : Arch.t -> Instr.barrier -> float
(** Standalone microbenchmark cost via
    {!Wmm_machine.Perf.sequence_cost_ns}; memoised. *)

val micro_cost_ns : Arch.t -> strategy -> float
(** Sum of the sites' standalone barrier costs. *)

val strength : strategy -> int
(** Tie-break weight: full fences count more than one-directional
    ones, so equal-cost candidates prefer the weaker barriers. *)

val apply : Program.t -> strategy -> Program.t
(** Insert the strategy's barriers into the program. *)

val describe : strategy -> string
(** ["P0+dmb ishst@1 P1+dmb ishld@1"]; ["(none)"] when empty. *)

val candidates :
  Axiomatic.model -> Arch.t -> Event_graph.t -> Critical.cycle list -> strategy list
(** Deduplicated, sorted by (micro cost, strength, description); the
    two fallbacks (full fence on every po edge of every cycle; full
    fence before every non-leading access) are always included last
    so verification-driven escalation terminates. *)
