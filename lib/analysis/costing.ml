open Wmm_isa
open Wmm_machine
module Engine = Wmm_engine.Engine
module Task = Wmm_engine.Task
module Sensitivity = Wmm_core.Sensitivity
module Cost_function = Wmm_costfn.Cost_function

type costed = {
  strategy : Placement.strategy;
  micro_ns : float;
  relative : float;
  fit : Sensitivity.fit;
  inferred_ns : float;
}

let fast () = Sys.getenv_opt "WMM_FAST" <> None

let spin_counts () = if fast () then [ 8; 64 ] else [ 2; 8; 32; 128; 512 ]
let samples () = if fast () then 2 else 3
let units () = if fast () then 32 else 128

type injection = Fence | Nop_pad | Spin of int

let injection_tag = function
  | Fence -> "fence"
  | Nop_pad -> "nop"
  | Spin n -> "spin:" ^ string_of_int n

(* Unresolved static locations get distinct private cells well away
   from the test's real locations, so they add work without adding
   artificial contention. *)
let loc_map (g : Event_graph.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Event_graph.access) ->
      let l = match a.loc with Some l -> l | None -> 100 + a.node in
      Hashtbl.replace tbl (a.tid, a.index) l)
    g.accesses;
  tbl

let uops_of_instr locs tid index instr =
  let resolve () = try Hashtbl.find locs (tid, index) with Not_found -> 100 in
  match instr with
  | Instr.Load { order; _ } | Instr.Load_exclusive { order; _ } -> (
      match order with
      | Instr.Acquire -> [ Uop.Load_acquire (resolve ()) ]
      | _ -> [ Uop.Load (resolve ()) ])
  | Instr.Store { order; _ } | Instr.Store_exclusive { order; _ } -> (
      match order with
      | Instr.Release -> [ Uop.Store_release (resolve ()) ]
      | _ -> [ Uop.Store (resolve ()) ])
  | Instr.Barrier b -> [ Placement.barrier_uop b ]
  | Instr.Mov _ | Instr.Op _ -> [ Uop.Busy 1 ]
  | Instr.Cbnz _ | Instr.Cbz _ -> [ Uop.Branch ]
  | Instr.Nop -> [ Uop.Busy 1 ]

let injection_uop arch injection =
  match injection with
  | Fence -> None (* per-site: the site's own barrier *)
  | Nop_pad -> Some (Uop.Nops 1)
  | Spin n -> Some (Cost_function.uop (Cost_function.make arch n))

let streams arch (g : Event_graph.t) (strategy : Placement.strategy) injection ~units =
  let locs = loc_map g in
  Array.mapi
    (fun tid thread ->
      let body = ref [] in
      Array.iteri
        (fun index instr ->
          List.iter
            (fun (s : Placement.site) ->
              if s.Placement.tid = tid && s.Placement.at = index then
                let u =
                  match injection_uop arch injection with
                  | Some u -> u
                  | None -> Placement.barrier_uop s.Placement.barrier
                in
                body := u :: !body)
            strategy;
          List.iter (fun u -> body := u :: !body) (uops_of_instr locs tid index instr))
        thread;
      let body = Array.of_list (List.rev !body) in
      Array.concat (List.init units (fun _ -> body)))
    g.program.Program.threads

let program_digest (p : Program.t) =
  Digest.to_hex (Digest.string (Marshal.to_string p [ Marshal.No_sharing ]))

let wall_task arch g strategy injection =
  let samples = samples () and units = units () in
  let key =
    Printf.sprintf "analysis/cost/v1|%s|%s|%s|%s|u%d|s%d" (Arch.name arch)
      (program_digest g.Event_graph.program)
      (Placement.describe strategy) (injection_tag injection) units samples
  in
  let label =
    Printf.sprintf "cost %s %s %s" (Arch.name arch) g.Event_graph.program.Program.name
      (injection_tag injection)
  in
  Task.pure ~key ~label (fun () ->
      let ss = streams arch g strategy injection ~units in
      let total = ref 0. in
      for seed = 1 to samples do
        let config = Perf.config ~seed arch in
        total := !total +. Perf.wall_ns config (Perf.run config ss)
      done;
      !total /. float_of_int samples)

let rank_deferred ~batch arch g strategies =
  let per_strategy =
    List.map
      (fun strategy ->
        let get_base = Engine.Batch.add batch (wall_task arch g strategy Nop_pad) in
        let get_fence = Engine.Batch.add batch (wall_task arch g strategy Fence) in
        let spins =
          List.map
            (fun n -> (n, Engine.Batch.add batch (wall_task arch g strategy (Spin n))))
            (spin_counts ())
        in
        (strategy, get_base, get_fence, spins))
      strategies
  in
  fun () ->
    let value get = match Engine.value (get ()) with Ok v -> Some v | Error _ -> None in
    let costed =
      List.map
        (fun (strategy, get_base, get_fence, spins) ->
          let micro_ns = Placement.micro_cost_ns arch strategy in
          match (value get_base, value get_fence) with
          | Some base, Some fence when base > 0. && fence > 0. ->
              let relative = base /. fence in
              let points =
                List.filter_map
                  (fun (n, get) ->
                    match value get with
                    | Some w when w > 0. ->
                        let x = Cost_function.standalone_ns (Cost_function.make arch n) in
                        Some (x, base /. w)
                    | _ -> None)
                  spins
              in
              let fit =
                if List.length points >= 2 then (
                  let xs = Array.of_list (List.map fst points) in
                  let ys = Array.of_list (List.map snd points) in
                  try Sensitivity.fit_k ~xs ~ys with _ -> Sensitivity.unavailable)
                else Sensitivity.unavailable
              in
              let inferred_ns =
                if Sensitivity.available fit then
                  Sensitivity.cost_of_change ~k:fit.Sensitivity.k ~p:relative
                else nan
              in
              { strategy; micro_ns; relative; fit; inferred_ns }
          | _ ->
              {
                strategy;
                micro_ns;
                relative = nan;
                fit = Sensitivity.unavailable;
                inferred_ns = nan;
              })
        per_strategy
    in
    (* Rank by inferred cost; degraded fits sink to the bottom. *)
    List.sort
      (fun a b ->
        match (Float.is_nan a.inferred_ns, Float.is_nan b.inferred_ns) with
        | true, false -> 1
        | false, true -> -1
        | _ ->
            compare
              (a.inferred_ns, Placement.describe a.strategy)
              (b.inferred_ns, Placement.describe b.strategy))
      costed
