open Wmm_model
open Wmm_litmus
module Task = Wmm_engine.Task

let test_digest (t : Test.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (t.Test.program, t.Test.condition, t.Test.mem_condition)
          [ Marshal.No_sharing ]))

let fenced (t : Test.t) strategy =
  { t with Test.program = Placement.apply t.Test.program strategy }

let allowed_task model (t : Test.t) =
  let key =
    Printf.sprintf "analysis/allowed/v1|%s|%s" (Axiomatic.model_name model) (test_digest t)
  in
  let label = Printf.sprintf "allowed %s %s" (Axiomatic.model_name model) t.Test.name in
  Task.pure ~key ~label (fun () -> Check.axiomatic_allowed model t)

let sufficient_task model (t : Test.t) strategy =
  let key =
    Printf.sprintf "analysis/verify/v1|%s|%s|%s" (Axiomatic.model_name model) (test_digest t)
      (Placement.describe strategy)
  in
  let label =
    Printf.sprintf "verify %s %s [%s]" (Axiomatic.model_name model) t.Test.name
      (Placement.describe strategy)
  in
  Task.pure ~key ~label (fun () -> not (Check.axiomatic_allowed model (fenced t strategy)))
