open Wmm_isa
open Wmm_model
open Wmm_litmus

(** The analysis pipeline: event graph → critical cycles → candidate
    placements → exhaustive verification → greedy minimisation (whose
    final round doubles as the minimality witnesses) → cost ranking.

    All model checks and simulator measurements run as engine tasks,
    batched per phase across every test under analysis, so the whole
    pipeline parallelises over domains and replays from cache/journal
    on reruns. *)

type inference = {
  graph : Event_graph.t;
  cycle_count : int;  (** Critical cycles found. *)
  delay_count : int;  (** Distinct delay edges across them. *)
  minimal : Placement.strategy;
      (** Verified sufficient; greedily minimised to a fixpoint. *)
  witness_count : int;
  witnesses_ok : bool;
      (** Every placement obtained by dropping a single fence from
          [minimal] was re-checked and found insufficient. *)
  insufficient : int;  (** Enumerated candidates that failed verification. *)
  ranked : Costing.costed list;
      (** Verified strategies (minimal and alternatives) by inferred
          cost; empty when costing was disabled. *)
}

type status =
  | Already_forbidden  (** The model already forbids the condition. *)
  | Beyond_fences
      (** Even SC allows the condition: no fence placement can
          forbid it (e.g. the CAS success-interleaving tests). *)
  | Inferred of inference
  | Unfixed of string  (** No candidate verified, or a task failed. *)

type row = { test : Test.t; arch : Arch.t; model : Axiomatic.model; status : status }

val analyze_all :
  ?with_cost:bool -> engine:Wmm_engine.Engine.t -> arch:Arch.t -> Test.t list -> row list
(** [with_cost] defaults to true; pass false to skip the simulator
    cost-ranking phase (used by fast test sweeps). *)

val status_string : status -> string

val render : ?detail:bool -> Arch.t -> row list -> string
(** The report: summary table, and with [detail] (default true) a
    ranked strategy table plus minimality line per inferred test. *)
