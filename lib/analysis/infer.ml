open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_util
module Engine = Wmm_engine.Engine

type inference = {
  graph : Event_graph.t;
  cycle_count : int;
  delay_count : int;
  minimal : Placement.strategy;
  witness_count : int;
  witnesses_ok : bool;
  insufficient : int;
  ranked : Costing.costed list;
}

type status =
  | Already_forbidden
  | Beyond_fences
  | Inferred of inference
  | Unfixed of string

type row = { test : Test.t; arch : Arch.t; model : Axiomatic.model; status : status }

type pending = {
  p_test : Test.t;
  p_graph : Event_graph.t;
  p_cycles : int;
  p_delays : int;
  p_verdicts : (Placement.strategy * (unit -> bool Engine.outcome)) list;
}

(* One minimisation state: the current strategy shrinks round by
   round until no single-site removal stays sufficient; that final
   round's checks are exactly the minimality witnesses. *)
type shrink = {
  s_test : Test.t;
  mutable s_current : Placement.strategy;
  mutable s_witnesses : bool option;  (** Set when minimisation settles. *)
}

let got get = Engine.value (get ())

let analyze_all ?(with_cost = true) ~engine ~arch tests =
  let model = Axiomatic.model_for_arch arch in
  (* Phase 0: is the condition reachable under the arch model, and
     under SC (fences cannot forbid what SC allows)? *)
  let batch0 = Engine.Batch.create () in
  let phase0 =
    List.map
      (fun t ->
        ( t,
          Engine.Batch.add batch0 (Verify.allowed_task model t),
          Engine.Batch.add batch0 (Verify.allowed_task Axiomatic.Sc t) ))
      tests
  in
  Engine.Batch.run engine batch0;
  (* Phase 1/2: build graphs and candidates for the fixable tests and
     verify every candidate in one fan-out. *)
  let batch1 = Engine.Batch.create () in
  let classified =
    List.map
      (fun (t, get_model, get_sc) ->
        match (got get_model, got get_sc) with
        | Error e, _ | _, Error e -> (t, `Failed e)
        | Ok false, _ -> (t, `Forbidden)
        | Ok true, Ok true -> (t, `Beyond)
        | Ok true, Ok false ->
            let graph = Event_graph.extract t.Test.program in
            let cycles = Critical.critical_cycles model graph in
            let candidates = Placement.candidates model arch graph cycles in
            let verdicts =
              List.map
                (fun s -> (s, Engine.Batch.add batch1 (Verify.sufficient_task model t s)))
                candidates
            in
            ( t,
              `Analyze
                {
                  p_test = t;
                  p_graph = graph;
                  p_cycles = List.length cycles;
                  p_delays = List.length (Critical.delay_edges model graph);
                  p_verdicts = verdicts;
                } ))
      phase0
  in
  Engine.Batch.run engine batch1;
  (* Phase 3: greedy minimisation, batched round-wise across tests. *)
  let shrinks = Hashtbl.create 16 in
  List.iter
    (fun (t, c) ->
      match c with
      | `Analyze p -> (
          match
            List.find_opt (fun (_, get) -> got get = Ok true) p.p_verdicts
          with
          | Some (chosen, _) ->
              Hashtbl.replace shrinks t.Test.name
                { s_test = t; s_current = chosen; s_witnesses = None }
          | None -> ())
      | _ -> ())
    classified;
  let rec minimise active =
    if active <> [] then begin
      let batch = Engine.Batch.create () in
      let proposals =
        List.map
          (fun s ->
            let sites = s.s_current in
            let removals =
              List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) sites) sites
            in
            ( s,
              List.map
                (fun smaller ->
                  (smaller, Engine.Batch.add batch (Verify.sufficient_task model s.s_test smaller)))
                removals ))
          active
      in
      Engine.Batch.run engine batch;
      let continuing =
        List.filter_map
          (fun (s, removals) ->
            match List.find_opt (fun (_, get) -> got get = Ok true) removals with
            | Some (smaller, _) when smaller <> [] ->
                s.s_current <- smaller;
                Some s
            | Some (smaller, _) ->
                s.s_current <- smaller;
                s.s_witnesses <- Some false;
                None
            | None ->
                (* Settled: every single-site removal was checked and
                   must have come back insufficient. *)
                s.s_witnesses <-
                  Some (List.for_all (fun (_, get) -> got get = Ok false) removals);
                None)
          proposals
      in
      minimise continuing
    end
  in
  minimise (Hashtbl.fold (fun _ s acc -> s :: acc) shrinks []);
  (* Phase 4: cost-rank the minimal placement plus the best verified
     alternatives on the simulator. *)
  let batch_cost = Engine.Batch.create () in
  let rankers = Hashtbl.create 16 in
  if with_cost then
    List.iter
      (fun (t, c) ->
        match (c, Hashtbl.find_opt shrinks t.Test.name) with
        | `Analyze p, Some s ->
            let verified =
              List.filter_map
                (fun (cand, get) -> if got get = Ok true then Some cand else None)
                p.p_verdicts
            in
            let alternatives =
              List.filteri (fun i _ -> i < 3)
                (List.filter (fun cand -> cand <> s.s_current) verified)
            in
            Hashtbl.replace rankers t.Test.name
              (Costing.rank_deferred ~batch:batch_cost arch p.p_graph
                 (s.s_current :: alternatives))
        | _ -> ())
      classified;
  if with_cost then Engine.Batch.run engine batch_cost;
  (* Assemble. *)
  List.map
    (fun (t, c) ->
      let status =
        match c with
        | `Failed e -> Unfixed ("analysis task failed: " ^ e)
        | `Forbidden -> Already_forbidden
        | `Beyond -> Beyond_fences
        | `Analyze p -> (
            match Hashtbl.find_opt shrinks t.Test.name with
            | None -> Unfixed "no candidate placement verified sufficient"
            | Some s ->
                let insufficient =
                  List.length
                    (List.filter (fun (_, get) -> got get = Ok false) p.p_verdicts)
                in
                let ranked =
                  match Hashtbl.find_opt rankers t.Test.name with
                  | Some finish -> finish ()
                  | None -> []
                in
                Inferred
                  {
                    graph = p.p_graph;
                    cycle_count = p.p_cycles;
                    delay_count = p.p_delays;
                    minimal = s.s_current;
                    witness_count = List.length s.s_current;
                    witnesses_ok = s.s_witnesses = Some true;
                    insufficient;
                    ranked;
                  })
      in
      { test = t; arch; model; status })
    classified

let status_string = function
  | Already_forbidden -> "already-forbidden"
  | Beyond_fences -> "beyond-fences"
  | Inferred _ -> "verified-minimal"
  | Unfixed _ -> "unverified"

let float_or_dash f = if Float.is_nan f then "-" else Table.float_cell ~decimals:3 f

let render ?(detail = true) arch rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Fence inference, %s (%s model)\n\n" (Arch.long_name arch)
       (Axiomatic.model_name (Axiomatic.model_for_arch arch)));
  let table =
    Table.create
      [ "test"; "status"; "cycles"; "delays"; "minimal placement"; "fences"; "a (ns)" ]
  in
  List.iter
    (fun r ->
      let cells =
        match r.status with
        | Inferred inf ->
            let a =
              match inf.ranked with
              | c :: _ when c.Costing.strategy = inf.minimal ->
                  float_or_dash c.Costing.inferred_ns
              | _ -> (
                  match
                    List.find_opt (fun c -> c.Costing.strategy = inf.minimal) inf.ranked
                  with
                  | Some c -> float_or_dash c.Costing.inferred_ns
                  | None -> "-")
            in
            [
              r.test.Test.name;
              status_string r.status;
              string_of_int inf.cycle_count;
              string_of_int inf.delay_count;
              Placement.describe inf.minimal;
              string_of_int inf.witness_count;
              a;
            ]
        | Unfixed msg ->
            [ r.test.Test.name; status_string r.status ^ " (" ^ msg ^ ")"; "-"; "-"; "-"; "-"; "-" ]
        | _ -> [ r.test.Test.name; status_string r.status; "-"; "-"; "-"; "-"; "-" ]
      in
      Table.add_row table cells)
    rows;
  Buffer.add_string buf (Table.render table);
  Buffer.add_char buf '\n';
  if detail then
    List.iter
      (fun r ->
        match r.status with
        | Inferred inf when inf.ranked <> [] ->
            Buffer.add_string buf
              (Printf.sprintf "\n%s: cost-ranked strategies\n" r.test.Test.name);
            let t =
              Table.create [ "rank"; "placement"; "micro (ns)"; "p"; "k"; "a (ns)" ]
            in
            List.iteri
              (fun i (c : Costing.costed) ->
                Table.add_row t
                  [
                    string_of_int (i + 1);
                    Placement.describe c.Costing.strategy;
                    Table.float_cell ~decimals:2 c.Costing.micro_ns;
                    float_or_dash c.Costing.relative;
                    (if Wmm_core.Sensitivity.available c.Costing.fit then
                       Table.scientific_cell c.Costing.fit.Wmm_core.Sensitivity.k
                     else "-");
                    float_or_dash c.Costing.inferred_ns;
                  ])
              inf.ranked;
            Buffer.add_string buf (Table.render t);
            Buffer.add_char buf '\n';
            Buffer.add_string buf
              (Printf.sprintf "minimality: removing any 1 of %d fence(s) re-allows the outcome: %s\n"
                 inf.witness_count
                 (if inf.witnesses_ok then "confirmed" else "NOT CONFIRMED"))
        | Inferred inf ->
            Buffer.add_string buf
              (Printf.sprintf
                 "\n%s: minimality: removing any 1 of %d fence(s) re-allows the outcome: %s\n"
                 r.test.Test.name inf.witness_count
                 (if inf.witnesses_ok then "confirmed" else "NOT CONFIRMED"))
        | _ -> ())
      rows;
  let count pred = List.length (List.filter pred rows) in
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d test(s): %d verified-minimal, %d already forbidden, %d beyond fences, %d unverified\n"
       (List.length rows)
       (count (fun r -> match r.status with Inferred _ -> true | _ -> false))
       (count (fun r -> r.status = Already_forbidden))
       (count (fun r -> r.status = Beyond_fences))
       (count (fun r -> match r.status with Unfixed _ -> true | _ -> false)));
  Buffer.contents buf
