let default_jobs () = Domain.recommended_domain_count ()

exception Multiple_failures of string

let () =
  Printexc.register_printer (function
    | Multiple_failures msg -> Some ("Pool.Multiple_failures: " ^ msg)
    | _ -> None)

(* Shared raise policy for a finished batch: one failure re-raises the
   original exception (original backtrace), several aggregate so no
   cause is silently swallowed.  Used by both the ephemeral path here
   and {!Engine} when it runs on a persistent queue. *)
let raise_failures = function
  | [] -> ()
  | [ (_, e, bt) ] -> Printexc.raise_with_backtrace e bt
  | (_, e, bt) :: rest ->
      let msg =
        Printf.sprintf "%d tasks failed; first: %s; also: %s"
          (List.length rest + 1) (Printexc.to_string e)
          (String.concat "; "
             (List.map (fun (_, e, _) -> Printexc.to_string e) rest))
      in
      Printexc.raise_with_backtrace (Multiple_failures msg) bt

let run ~jobs n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    (* One-shot batches ride the same submit/await machinery as the
       persistent daemon pool: spin a queue up, drain it, shut it
       down.  Never more workers than tasks. *)
    let wq = Workqueue.create ~jobs:(min jobs n) () in
    let failures =
      Fun.protect ~finally:(fun () -> Workqueue.shutdown wq)
        (fun () -> Workqueue.run_indexed wq n f)
    in
    raise_failures failures
  end
