let default_jobs () = Domain.recommended_domain_count ()

exception Multiple_failures of string

let () =
  Printexc.register_printer (function
    | Multiple_failures msg -> Some ("Pool.Multiple_failures: " ^ msg)
    | _ -> None)

let run ~jobs n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let errors_lock = Mutex.create () in
    let errors = ref [] in
    (* Collected in arrival order, never dropped: a run that fails on
       several domains at once reports every cause, not just whichever
       worker lost the race. *)
    let record e bt =
      Mutex.lock errors_lock;
      errors := (e, bt) :: !errors;
      Mutex.unlock errors_lock
    in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try f i
           with e -> record e (Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match List.rev !errors with
    | [] -> ()
    | [ (e, bt) ] -> Printexc.raise_with_backtrace e bt
    | (e, bt) :: rest ->
        let msg =
          Printf.sprintf "%d tasks failed; first: %s; also: %s"
            (List.length rest + 1) (Printexc.to_string e)
            (String.concat "; "
               (List.map (fun (e, _) -> Printexc.to_string e) rest))
        in
        Printexc.raise_with_backtrace (Multiple_failures msg) bt
  end
