let default_jobs () = Domain.recommended_domain_count ()

let run ~jobs n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let first_error = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try f i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
