type stats = {
  hits : int;
  misses : int;
  stores : int;
  errors : int;
  pruned : int;
  verify_failures : int;
}

type active = {
  a_dir : string;
  version : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
  mutable pruned : int;
  mutable verify_failures : int;
}

type t = Disabled | Active of active

let default_dir = "_wmm_cache"

let disabled = Disabled

let code_version =
  let v =
    lazy
      (try Digest.to_hex (Digest.file Sys.executable_name)
       with _ -> "unversioned")
  in
  fun () -> Lazy.force v

let create ?(dir = default_dir) ?version () =
  let version = match version with Some v -> v | None -> code_version () in
  Active
    { a_dir = dir; version; lock = Mutex.create (); hits = 0; misses = 0;
      stores = 0; errors = 0; pruned = 0; verify_failures = 0 }

let enabled = function Disabled -> false | Active _ -> true
let dir = function Disabled -> None | Active a -> Some a.a_dir

let stats = function
  | Disabled ->
      { hits = 0; misses = 0; stores = 0; errors = 0; pruned = 0;
        verify_failures = 0 }
  | Active a ->
      Mutex.lock a.lock;
      let s =
        { hits = a.hits; misses = a.misses; stores = a.stores; errors = a.errors;
          pruned = a.pruned; verify_failures = a.verify_failures }
      in
      Mutex.unlock a.lock;
      s

let bump a f =
  Mutex.lock a.lock;
  f a;
  Mutex.unlock a.lock

(* Entries are sharded into 256 subdirectories by the first two hex
   characters of their digest: concurrent writers (several daemon
   workers, or a daemon plus one-shot CLIs sharing _wmm_cache/)
   spread their directory traffic instead of all contending on one
   huge flat directory.  Pre-sharding caches are still read (flat
   fallback in [find]) but new stores always land sharded. *)
let digest_hex a key = Digest.to_hex (Digest.string (a.version ^ "\x00" ^ key))

let shard_of_digest hex = String.sub hex 0 2

let path a key =
  let hex = digest_hex a key in
  Filename.concat (Filename.concat a.a_dir (shard_of_digest hex)) (hex ^ ".cache")

let legacy_path a key = Filename.concat a.a_dir (digest_hex a key ^ ".cache")

(* Tmp names embed PID, domain and a process-global counter: two
   daemons (or a daemon and a CLI) sharing one cache directory can
   never collide on a tmp path, and neither can two stores of the
   same key racing within one process after a domain id is reused. *)
let tmp_counter = Atomic.make 0

let tmp_name file =
  Printf.sprintf "%s.tmp.%d.%d.%d" file (Unix.getpid ())
    (Domain.self () :> int)
    (Atomic.fetch_and_add tmp_counter 1)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Entry layout (three marshalled fields after a magic marker):
     magic ^ key ^ digest-of-payload ^ payload
   where payload is the marshalled value as a string.  The digest is
   verified on every read, so a flipped bit anywhere in the payload
   reads as damage — not as a plausible-but-wrong result — and the
   file is quarantined.  Pre-digest entries (two fields, no magic)
   are still readable but unverifiable. *)
let entry_magic = "wmm-cache-v2"

let read_entry ~key file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let first : string = Marshal.from_channel ic in
        if first = entry_magic then begin
          let stored_key : string = Marshal.from_channel ic in
          if stored_key <> key then `Miss
          else
            let digest : string = Marshal.from_channel ic in
            let payload : string = Marshal.from_channel ic in
            if Digest.string payload <> digest then `Corrupt
            else `Hit (Marshal.from_string payload 0)
        end
        else if first = key then `Hit (Marshal.from_channel ic)  (* legacy *)
        else `Miss)
  with
  | Sys_error _ -> `Miss
  (* Anything else — truncated marshal header, garbled bytes, a
     failing digest — is evidence of on-disk damage, never of a plain
     miss. *)
  | _ -> `Corrupt

(* Move a damaged entry out of the lookup path but keep the evidence:
   <hex>.cache becomes <hex>.corrupt, which no maintenance or lookup
   code ever reads ([entries] filters on the .cache suffix). *)
let quarantine_path file =
  (try Filename.chop_suffix file ".cache" with Invalid_argument _ -> file)
  ^ ".corrupt"

let quarantine file =
  try
    Sys.rename file (quarantine_path file);
    true
  with Sys_error _ -> false

let find t ~key =
  match t with
  | Disabled -> None
  | Active a -> (
      let sharded = path a key in
      match
        (match read_entry ~key sharded with
        | `Miss ->
            (match read_entry ~key (legacy_path a key) with  (* pre-sharding *)
            | `Corrupt -> `Corrupt_at (legacy_path a key)
            | (`Hit _ | `Miss) as r -> r)
        | `Corrupt -> `Corrupt_at sharded
        | `Hit _ as r -> r)
      with
      | `Hit v ->
          bump a (fun a -> a.hits <- a.hits + 1);
          Some v
      | `Miss ->
          bump a (fun a -> a.misses <- a.misses + 1);
          None
      | `Corrupt_at file ->
          ignore (quarantine file);
          bump a (fun a ->
              a.verify_failures <- a.verify_failures + 1;
              a.errors <- a.errors + 1;
              a.misses <- a.misses + 1);
          None)

let store t ~key value =
  match t with
  | Disabled -> ()
  | Active a -> (
      let file = path a key in
      let tmp = tmp_name file in
      try
        mkdir_p (Filename.dirname file);
        let payload = Marshal.to_string value [] in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Marshal.to_channel oc entry_magic [];
            Marshal.to_channel oc key [];
            Marshal.to_channel oc (Digest.string payload) [];
            Marshal.to_channel oc payload []);
        Sys.rename tmp file;
        bump a (fun a -> a.stores <- a.stores + 1)
      with _ ->
        (try Sys.remove tmp with _ -> ());
        bump a (fun a -> a.errors <- a.errors + 1))

(* ------------------------------------------------------------------ *)
(* Maintenance: listing, clearing, LRU pruning.                       *)
(* ------------------------------------------------------------------ *)

(* Every entry this module writes ends in ".cache"; anything else in
   the directory (journals, tmp files of live writers) is left alone.
   Both layouts are walked: flat legacy entries at the top level plus
   the two-hex-character shard subdirectories. *)
let is_shard_dir name =
  String.length name = 2
  && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) name

let entries_in dirname =
  match Sys.readdir dirname with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".cache" then
               let file = Filename.concat dirname name in
               match Unix.stat file with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                   Some (file, st_size, st_mtime)
               | _ | (exception Unix.Unix_error _) -> None
             else None)

let entries dirname =
  let shards =
    match Sys.readdir dirname with
    | exception Sys_error _ -> []
    | names ->
        Array.to_list names
        |> List.filter (fun name ->
               is_shard_dir name
               && try Sys.is_directory (Filename.concat dirname name)
                  with Sys_error _ -> false)
  in
  entries_in dirname
  @ List.concat_map (fun shard -> entries_in (Filename.concat dirname shard)) shards

let disk_usage = function
  | Disabled -> None
  | Active a ->
      let es = entries a.a_dir in
      Some (List.length es, List.fold_left (fun acc (_, size, _) -> acc + size) 0 es)

let clear t =
  match t with
  | Disabled -> 0
  | Active a ->
      let removed =
        List.fold_left
          (fun n (file, _, _) -> match Sys.remove file with () -> n + 1 | exception Sys_error _ -> n)
          0 (entries a.a_dir)
      in
      bump a (fun a -> a.pruned <- a.pruned + removed);
      removed

let prune t ~max_bytes =
  match t with
  | Disabled -> 0
  | Active a ->
      (* Oldest-mtime-first eviction until the directory fits the
         budget; [find] refreshes no timestamps, so mtime here is
         store order - good enough for a results cache whose entries
         are written once and only ever re-read. *)
      let es =
        List.sort (fun (_, _, m1) (_, _, m2) -> compare m1 m2) (entries a.a_dir)
      in
      let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 es in
      let removed, _ =
        List.fold_left
          (fun (n, remaining) (file, size, _) ->
            if remaining <= max_bytes then (n, remaining)
            else
              match Sys.remove file with
              | () -> (n + 1, remaining - size)
              | exception Sys_error _ -> (n, remaining))
          (0, total) es
      in
      bump a (fun a -> a.pruned <- a.pruned + removed);
      removed

(* ------------------------------------------------------------------ *)
(* Offline verification: walk every entry and check its payload       *)
(* digest.  Filenames embed the digest of the *writing* binary's      *)
(* version, so the key→filename mapping cannot be re-derived here —   *)
(* fsck verifies payload integrity only, which is exactly the         *)
(* property [find] relies on at serve time.                           *)
(* ------------------------------------------------------------------ *)

type fsck_report = {
  f_scanned : int;
  f_ok : int;
  f_quarantined : int;
  f_unverified : int;
}

let verify_file file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let first : string = Marshal.from_channel ic in
        if first = entry_magic then begin
          let _key : string = Marshal.from_channel ic in
          let digest : string = Marshal.from_channel ic in
          let payload : string = Marshal.from_channel ic in
          if Digest.string payload = digest then `Ok else `Corrupt
        end
        else
          (* Legacy two-field entry: no stored digest to check against.
             Require the value to at least unmarshal. *)
          let _v : Obj.t = Marshal.from_channel ic in
          `Unverified)
  with
  | Sys_error _ -> `Ok  (* vanished mid-scan (concurrent prune): not damage *)
  | _ -> `Corrupt

let fsck t =
  match t with
  | Disabled -> { f_scanned = 0; f_ok = 0; f_quarantined = 0; f_unverified = 0 }
  | Active a ->
      let report =
        List.fold_left
          (fun r (file, _, _) ->
            match verify_file file with
            | `Ok -> { r with f_scanned = r.f_scanned + 1; f_ok = r.f_ok + 1 }
            | `Unverified ->
                { r with f_scanned = r.f_scanned + 1;
                  f_unverified = r.f_unverified + 1 }
            | `Corrupt ->
                if quarantine file then
                  { r with f_scanned = r.f_scanned + 1;
                    f_quarantined = r.f_quarantined + 1 }
                else { r with f_scanned = r.f_scanned + 1 })
          { f_scanned = 0; f_ok = 0; f_quarantined = 0; f_unverified = 0 }
          (entries a.a_dir)
      in
      bump a (fun a ->
          a.verify_failures <- a.verify_failures + report.f_quarantined;
          a.errors <- a.errors + report.f_quarantined);
      report

let corrupt t ~key =
  match t with
  | Disabled -> false
  | Active a -> (
      let file =
        let sharded = path a key in
        if Sys.file_exists sharded then sharded else legacy_path a key
      in
      match open_out_gen [ Open_wronly; Open_binary ] 0o644 file with
      | exception Sys_error _ -> false
      | oc ->
          (* Garble the header in place: the marshalled stored-key no
             longer round-trips, so the next [find] must detect the
             damage and count an error rather than return junk. *)
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc "\xde\xad\xbe\xef\xde\xad\xbe\xef");
          true)
