type stats = { hits : int; misses : int; stores : int; errors : int }

type active = {
  a_dir : string;
  version : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
}

type t = Disabled | Active of active

let default_dir = "_wmm_cache"

let disabled = Disabled

let code_version =
  let v =
    lazy
      (try Digest.to_hex (Digest.file Sys.executable_name)
       with _ -> "unversioned")
  in
  fun () -> Lazy.force v

let create ?(dir = default_dir) ?version () =
  let version = match version with Some v -> v | None -> code_version () in
  Active
    { a_dir = dir; version; lock = Mutex.create (); hits = 0; misses = 0;
      stores = 0; errors = 0 }

let enabled = function Disabled -> false | Active _ -> true
let dir = function Disabled -> None | Active a -> Some a.a_dir

let stats = function
  | Disabled -> { hits = 0; misses = 0; stores = 0; errors = 0 }
  | Active a ->
      Mutex.lock a.lock;
      let s = { hits = a.hits; misses = a.misses; stores = a.stores; errors = a.errors } in
      Mutex.unlock a.lock;
      s

let bump a f =
  Mutex.lock a.lock;
  f a;
  Mutex.unlock a.lock

let path a key =
  Filename.concat a.a_dir (Digest.to_hex (Digest.string (a.version ^ "\x00" ^ key)) ^ ".cache")

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let find t ~key =
  match t with
  | Disabled -> None
  | Active a -> (
      let file = path a key in
      match
        (try
           let ic = open_in_bin file in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () ->
               let stored_key : string = Marshal.from_channel ic in
               if stored_key = key then `Hit (Marshal.from_channel ic) else `Miss)
         with
        | Sys_error _ -> `Miss
        | _ -> `Error)
      with
      | `Hit v ->
          bump a (fun a -> a.hits <- a.hits + 1);
          Some v
      | `Miss ->
          bump a (fun a -> a.misses <- a.misses + 1);
          None
      | `Error ->
          bump a (fun a ->
              a.errors <- a.errors + 1;
              a.misses <- a.misses + 1);
          None)

let store t ~key value =
  match t with
  | Disabled -> ()
  | Active a -> (
      let file = path a key in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
          (Domain.self () :> int)
      in
      try
        mkdir_p a.a_dir;
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Marshal.to_channel oc key [];
            Marshal.to_channel oc value []);
        Sys.rename tmp file;
        bump a (fun a -> a.stores <- a.stores + 1)
      with _ ->
        (try Sys.remove tmp with _ -> ());
        bump a (fun a -> a.errors <- a.errors + 1))
