type stats = { hits : int; misses : int; stores : int; errors : int; pruned : int }

type active = {
  a_dir : string;
  version : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
  mutable pruned : int;
}

type t = Disabled | Active of active

let default_dir = "_wmm_cache"

let disabled = Disabled

let code_version =
  let v =
    lazy
      (try Digest.to_hex (Digest.file Sys.executable_name)
       with _ -> "unversioned")
  in
  fun () -> Lazy.force v

let create ?(dir = default_dir) ?version () =
  let version = match version with Some v -> v | None -> code_version () in
  Active
    { a_dir = dir; version; lock = Mutex.create (); hits = 0; misses = 0;
      stores = 0; errors = 0; pruned = 0 }

let enabled = function Disabled -> false | Active _ -> true
let dir = function Disabled -> None | Active a -> Some a.a_dir

let stats = function
  | Disabled -> { hits = 0; misses = 0; stores = 0; errors = 0; pruned = 0 }
  | Active a ->
      Mutex.lock a.lock;
      let s =
        { hits = a.hits; misses = a.misses; stores = a.stores; errors = a.errors;
          pruned = a.pruned }
      in
      Mutex.unlock a.lock;
      s

let bump a f =
  Mutex.lock a.lock;
  f a;
  Mutex.unlock a.lock

let path a key =
  Filename.concat a.a_dir (Digest.to_hex (Digest.string (a.version ^ "\x00" ^ key)) ^ ".cache")

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let find t ~key =
  match t with
  | Disabled -> None
  | Active a -> (
      let file = path a key in
      match
        (try
           let ic = open_in_bin file in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () ->
               let stored_key : string = Marshal.from_channel ic in
               if stored_key = key then `Hit (Marshal.from_channel ic) else `Miss)
         with
        | Sys_error _ -> `Miss
        | _ -> `Error)
      with
      | `Hit v ->
          bump a (fun a -> a.hits <- a.hits + 1);
          Some v
      | `Miss ->
          bump a (fun a -> a.misses <- a.misses + 1);
          None
      | `Error ->
          bump a (fun a ->
              a.errors <- a.errors + 1;
              a.misses <- a.misses + 1);
          None)

let store t ~key value =
  match t with
  | Disabled -> ()
  | Active a -> (
      let file = path a key in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
          (Domain.self () :> int)
      in
      try
        mkdir_p a.a_dir;
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Marshal.to_channel oc key [];
            Marshal.to_channel oc value []);
        Sys.rename tmp file;
        bump a (fun a -> a.stores <- a.stores + 1)
      with _ ->
        (try Sys.remove tmp with _ -> ());
        bump a (fun a -> a.errors <- a.errors + 1))

(* ------------------------------------------------------------------ *)
(* Maintenance: listing, clearing, LRU pruning.                       *)
(* ------------------------------------------------------------------ *)

(* Every entry this module writes ends in ".cache"; anything else in
   the directory (journals, tmp files of live writers) is left alone. *)
let entries dirname =
  match Sys.readdir dirname with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".cache" then
               let file = Filename.concat dirname name in
               match Unix.stat file with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                   Some (file, st_size, st_mtime)
               | _ | (exception Unix.Unix_error _) -> None
             else None)

let disk_usage = function
  | Disabled -> None
  | Active a ->
      let es = entries a.a_dir in
      Some (List.length es, List.fold_left (fun acc (_, size, _) -> acc + size) 0 es)

let clear t =
  match t with
  | Disabled -> 0
  | Active a ->
      let removed =
        List.fold_left
          (fun n (file, _, _) -> match Sys.remove file with () -> n + 1 | exception Sys_error _ -> n)
          0 (entries a.a_dir)
      in
      bump a (fun a -> a.pruned <- a.pruned + removed);
      removed

let prune t ~max_bytes =
  match t with
  | Disabled -> 0
  | Active a ->
      (* Oldest-mtime-first eviction until the directory fits the
         budget; [find] refreshes no timestamps, so mtime here is
         store order - good enough for a results cache whose entries
         are written once and only ever re-read. *)
      let es =
        List.sort (fun (_, _, m1) (_, _, m2) -> compare m1 m2) (entries a.a_dir)
      in
      let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 es in
      let removed, _ =
        List.fold_left
          (fun (n, remaining) (file, size, _) ->
            if remaining <= max_bytes then (n, remaining)
            else
              match Sys.remove file with
              | () -> (n + 1, remaining - size)
              | exception Sys_error _ -> (n, remaining))
          (0, total) es
      in
      bump a (fun a -> a.pruned <- a.pruned + removed);
      removed

let corrupt t ~key =
  match t with
  | Disabled -> false
  | Active a -> (
      let file = path a key in
      match open_out_gen [ Open_wronly; Open_binary ] 0o644 file with
      | exception Sys_error _ -> false
      | oc ->
          (* Garble the header in place: the marshalled stored-key no
             longer round-trips, so the next [find] must detect the
             damage and count an error rather than return junk. *)
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc "\xde\xad\xbe\xef\xde\xad\xbe\xef");
          true)
