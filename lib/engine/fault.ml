type t = {
  seed : int;
  transient_p : float;
  transient_fails : int;
  outlier_p : float;
  outlier_scale : float;
  corrupt_p : float;
}

let none =
  {
    seed = 0;
    transient_p = 0.;
    transient_fails = 1;
    outlier_p = 0.;
    outlier_scale = 10.;
    corrupt_p = 0.;
  }

let is_none t = t.transient_p = 0. && t.outlier_p = 0. && t.corrupt_p = 0.

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("Fault.Injected(" ^ msg ^ ")")
    | _ -> None)

let transient_exn = function
  | Injected _ -> true
  (* Real-world flakiness reaches tasks as I/O errors; deterministic
     computation errors (Failure, Invalid_argument, ...) are
     permanent - retrying a pure function cannot change its result. *)
  | Sys_error _ -> true
  | Unix.Unix_error _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Deterministic fault streams: every decision is a pure function of  *)
(* (plan seed, purpose, task key, index), mirroring how task RNG      *)
(* streams derive from key digests - so a fault plan reproduces the   *)
(* exact same failures on every run, any --jobs setting.              *)
(* ------------------------------------------------------------------ *)

let unit_for t ~purpose ~key ~index =
  let digest =
    Digest.string (Printf.sprintf "%d\x00%s\x00%s\x00%d" t.seed purpose key index)
  in
  let h = ref 0 in
  for i = 0 to 6 do
    h := (!h lsl 8) lor Char.code digest.[i]
  done;
  float_of_int !h /. 72057594037927936. (* 2^56 *)

let should_fail t ~key ~attempt =
  t.transient_p > 0.
  && attempt < t.transient_fails
  && unit_for t ~purpose:"transient" ~key ~index:0 < t.transient_p

let should_corrupt t ~key =
  t.corrupt_p > 0. && unit_for t ~purpose:"corrupt" ~key ~index:0 < t.corrupt_p

let perturb_samples t ~key samples =
  if t.outlier_p <= 0. then samples
  else
    Array.mapi
      (fun i x ->
        if unit_for t ~purpose:"outlier" ~key ~index:i < t.outlier_p then
          x *. t.outlier_scale
        else x)
      samples

(* ------------------------------------------------------------------ *)
(* Spec parsing: "seed=7,transient=0.3x2,outlier=0.05x10,corrupt=0.1" *)
(* ------------------------------------------------------------------ *)

let to_string t =
  if is_none t then ""
  else
    String.concat ","
      (List.filter
         (fun s -> s <> "")
         [
           Printf.sprintf "seed=%d" t.seed;
           (if t.transient_p > 0. then
              Printf.sprintf "transient=%gx%d" t.transient_p t.transient_fails
            else "");
           (if t.outlier_p > 0. then
              Printf.sprintf "outlier=%gx%g" t.outlier_p t.outlier_scale
            else "");
           (if t.corrupt_p > 0. then Printf.sprintf "corrupt=%g" t.corrupt_p else "");
         ])

let fingerprint = to_string

let parse_prob name v =
  match float_of_string_opt v with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "%s: probability %S outside [0, 1]" name v)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse spec =
  let fields =
    List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' spec))
  in
  List.fold_left
    (fun acc field ->
      let* t = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "fault spec field %S is not name=value" field)
      | Some eq -> (
          let name = String.sub field 0 eq in
          let value = String.sub field (eq + 1) (String.length field - eq - 1) in
          let value, qualifier =
            match String.index_opt value 'x' with
            | None -> (value, None)
            | Some i ->
                ( String.sub value 0 i,
                  Some (String.sub value (i + 1) (String.length value - i - 1)) )
          in
          match name with
          | "seed" -> (
              match (int_of_string_opt value, qualifier) with
              | Some seed, None -> Ok { t with seed }
              | _ -> Error (Printf.sprintf "seed: %S is not an integer" value))
          | "transient" -> (
              let* p = parse_prob "transient" value in
              match qualifier with
              | None -> Ok { t with transient_p = p }
              | Some q -> (
                  match int_of_string_opt q with
                  | Some n when n >= 1 -> Ok { t with transient_p = p; transient_fails = n }
                  | _ -> Error (Printf.sprintf "transient: attempt count %S invalid" q)))
          | "outlier" -> (
              let* p = parse_prob "outlier" value in
              match qualifier with
              | None -> Ok { t with outlier_p = p }
              | Some q -> (
                  match float_of_string_opt q with
                  | Some s when s > 0. -> Ok { t with outlier_p = p; outlier_scale = s }
                  | _ -> Error (Printf.sprintf "outlier: scale %S invalid" q)))
          | "corrupt" ->
              if qualifier <> None then Error "corrupt takes a bare probability"
              else
                let* p = parse_prob "corrupt" value in
                Ok { t with corrupt_p = p }
          | other -> Error (Printf.sprintf "unknown fault kind %S" other)))
    (Ok none) fields

(* ------------------------------------------------------------------ *)
(* Ambient plan: set once from the CLI, read where tasks are built.   *)
(* ------------------------------------------------------------------ *)

let ambient_plan = Atomic.make none

let set_ambient t = Atomic.set ambient_plan t
let ambient () = Atomic.get ambient_plan

let with_ambient t f =
  let previous = Atomic.get ambient_plan in
  Atomic.set ambient_plan t;
  Fun.protect ~finally:(fun () -> Atomic.set ambient_plan previous) f
