(** Domain-pool scheduling for one-shot batches.

    [run] is the build-list-and-drain entry point the CLIs use: it
    stands up a {!Workqueue} for the batch, submits every index, and
    shuts the queue down again.  Long-lived callers (the daemon)
    instead create one persistent {!Workqueue} and hand it to
    {!Engine.create}, so every batch reuses the same warm worker
    domains.  With [jobs <= 1] no domains are spawned and the body
    runs in a plain sequential loop - the scheduling strategy can
    never change results, only their arrival order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

exception Multiple_failures of string
(** Raised by {!run} when more than one task raised: the message
    carries the count, the first exception, and the others in index
    order, so no failure is silently swallowed. *)

val raise_failures : (int * exn * Printexc.raw_backtrace) list -> unit
(** The batch raise policy over {!Workqueue.run_indexed}'s failure
    list: nothing on [[]], the original exception (original
    backtrace) for exactly one, {!Multiple_failures} for several. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n f] applies [f] to every index in [0, n) across at
    most [jobs] worker domains.  [f] is expected not to raise; stray
    exceptions follow {!raise_failures}. *)
