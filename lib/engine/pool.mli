(** Domain-pool scheduling.

    Tasks self-schedule off a shared atomic counter: each worker
    repeatedly claims the next unclaimed index, so load balances
    automatically however uneven the per-task costs are.  With
    [jobs <= 1] no domains are spawned and the body runs in a plain
    sequential loop - the scheduling strategy can never change
    results, only their arrival order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

exception Multiple_failures of string
(** Raised by {!run} when more than one task raised: the message
    carries the count, the first exception, and the others in arrival
    order, so no failure is silently swallowed. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n f] applies [f] to every index in [0, n): with at
    most [jobs] domains ([jobs - 1] spawned workers plus the calling
    domain).  [f] is expected not to raise; if exactly one task does,
    its exception is re-raised (original backtrace) after all workers
    have drained; if several do, {!Multiple_failures} aggregates
    them. *)
