(** Checkpoint/resume journal: a JSONL record of completed task
    outcomes, one file per run id under [_wmm_cache/journal/].

    The engine appends every settled task to the journal as it runs;
    when a run is interrupted (crash, kill, deadline) a rerun with the
    same run id replays the journaled results and computes only the
    remainder.  Unlike the result cache, journal entries are
    self-contained (the marshalled value is embedded hex-encoded in
    the line), so resume works even under [--no-cache].

    Durability discipline: in the default [Rewrite] mode each append
    rewrites the whole journal to a temporary file (made unique by
    PID, domain and a process-global counter) and renames it over the
    old one, so a crash at any point leaves either the previous or
    the new complete journal - never a torn line.  Long-lived writers
    (the served daemon) open in [Append] mode instead: lines go to an
    O_APPEND channel with a flush per record, so each append costs
    O(line) rather than O(file); a crash can tear at most the final
    line.  Unparseable lines (torn appends, foreign writers,
    pre-rename crashes of older formats) are skipped on load either
    way.

    Line format (one JSON object per line):
    {v
    {"key": "<task key>", "status": "ok", "digest": "<md5 hex>", "value": "<hex marshal>"}
    {"key": "<task key>", "status": "failed", "msg": "<message>"}
    v}
    The digest is the MD5 of the raw marshalled value and is checked
    on load: a flipped bit inside the payload would otherwise still
    parse and replay as a plausible wrong result.  Lines without the
    field (older journals) load unverified.  Failed entries are
    recorded for post-mortems but never replayed: the failure may
    have been transient. *)

type t

val default_dir : string
(** [_wmm_cache/journal]. *)

val derived_run_id : tag:string -> string list -> string
(** [derived_run_id ~tag parts] builds a stable run id from a
    human-readable tag plus a short digest of [parts] (figure id,
    code version, fault fingerprint, ...): rerunning the identical
    request derives the identical id, so resume-on-rerun is
    automatic without the user naming runs. *)

type mode = Rewrite | Append

val open_ : ?dir:string -> ?mode:mode -> run_id:string -> unit -> t
(** Open (creating lazily on first append) the journal for [run_id],
    loading any entries a previous run left behind.  The run id is
    sanitised to filename-safe characters.  [mode] defaults to
    [Rewrite]; see the durability note above. *)

val path : t -> string
val run_id : t -> string

val loaded : t -> int
(** Number of distinct replayable (ok) entries found on open. *)

val dropped : t -> int
(** Number of lines skipped on open as torn, digest-mismatched or
    foreign.  Nonzero after a crash mid-append (expected, at most the
    final line per crashed writer) or after on-disk damage. *)

val replay : t -> key:string -> 'a option
(** The journaled value for [key], if a completed entry exists.  The
    caller must expect the same type the value was recorded at (task
    keys version their payload type, as with the cache). *)

val record_ok : t -> key:string -> 'a -> unit
(** Journal a completed task.  Thread-safe; called by worker domains
    as tasks settle. *)

val record_failed : t -> key:string -> msg:string -> unit
(** Journal a permanently-failed task (recomputed on resume). *)

val close : t -> unit
(** Close the underlying fd of an [Append]-mode journal (no-op in
    [Rewrite] mode, where nothing stays open between appends). *)

(** {1 Offline verification} *)

type fsck_report = {
  j_lines : int;       (** physical lines scanned *)
  j_ok : int;          (** parseable ok records (incl. duplicates) *)
  j_failed : int;      (** parseable failed records *)
  j_torn : int;        (** unparseable or digest-mismatched lines *)
  j_duplicates : int;  (** ok records whose key already appeared *)
  j_orphans : int;     (** failed records superseded by an ok for the key *)
  j_kept : int;        (** lines surviving compaction *)
  j_compacted : bool;  (** whether the file was rewritten *)
}

val fsck : ?dir:string -> run_id:string -> unit -> fsck_report
(** Scan the journal for [run_id] and, when any torn, duplicate or
    orphan record is found, compact it via tmp + atomic rename down
    to the last ok per key (first-seen order) plus never-superseded
    failures.  Safe against concurrent readers (they see either file
    version); do not run against a journal something is actively
    appending to — compaction would discard appends racing the
    rename.  A missing journal reports all zeros. *)
