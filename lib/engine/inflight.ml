type 'v outcome = Running | Finished of ('v, string) result

type 'v entry = { mutable outcome : 'v outcome }

type 'v t = {
  lock : Mutex.t;
  settled : Condition.t;
  table : (string, 'v entry) Hashtbl.t;
  mutable computed : int;
  mutable joined : int;
  mutable max_active : int;
}

type stats = { computed : int; joined : int; active : int; max_active : int }

let create () =
  {
    lock = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 64;
    computed = 0;
    joined = 0;
    max_active = 0;
  }

let run t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
      (* Joiner: wait for the owner to settle this entry.  The entry
         outlives its table slot (the owner removes the key before
         broadcasting), so we poll the entry, not the table. *)
      t.joined <- t.joined + 1;
      while entry.outcome = Running do
        Condition.wait t.settled t.lock
      done;
      let outcome = entry.outcome in
      Mutex.unlock t.lock;
      (match outcome with
      | Running -> assert false
      | Finished (Ok v) -> (v, true)
      | Finished (Error msg) -> failwith msg)
  | None ->
      let entry = { outcome = Running } in
      Hashtbl.add t.table key entry;
      t.computed <- t.computed + 1;
      t.max_active <- max t.max_active (Hashtbl.length t.table);
      Mutex.unlock t.lock;
      let result =
        try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      entry.outcome <-
        Finished
          (match result with
          | Ok v -> Ok v
          | Error (e, _) -> Error (Printexc.to_string e));
      Hashtbl.remove t.table key;
      Condition.broadcast t.settled;
      Mutex.unlock t.lock;
      (match result with
      | Ok v -> (v, false)
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      computed = t.computed;
      joined = t.joined;
      active = Hashtbl.length t.table;
      max_active = t.max_active;
    }
  in
  Mutex.unlock t.lock;
  s
