open Wmm_util

(** The engine's job model.

    A task reifies one experiment sample as a pure computation
    identified by a content [key].  The key must fully determine the
    result: it doubles as the cache identity, and it seeds the task's
    private RNG stream, so neither scheduling order nor the number of
    worker domains can perturb what a task computes. *)

type 'a t = {
  key : string;
      (** Full content descriptor.  Two tasks with equal keys must
          compute equal values (of the same type) - the cache relies
          on it. *)
  label : string;  (** Short human-readable label for telemetry. *)
  run : Rng.t -> 'a;
      (** The computation.  The RNG is a private stream derived from
          the engine's root seed and [key]; tasks that carry their
          own seeding may ignore it. *)
}

val make : key:string -> ?label:string -> (Rng.t -> 'a) -> 'a t
(** [label] defaults to [key] truncated to 60 characters. *)

val pure : key:string -> ?label:string -> (unit -> 'a) -> 'a t
(** A task that ignores the engine-provided RNG. *)

val rng_for : root_seed:int -> string -> Rng.t
(** The private stream for a key: a split of a generator seeded by
    mixing [root_seed] with a digest of the key.  Depends only on
    the two arguments, never on submission or execution order. *)
