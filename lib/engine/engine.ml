type t = {
  jobs : int;
  pool : Workqueue.t option;
  cache : Cache.t;
  seed : int;
  soft_deadline_s : float option;
  retries : int;
  backoff_s : float;
  faults : Fault.t;
  journal : Journal.t option;
  telemetry : Telemetry.t;
  cancel : Wmm_util.Cancel.t;
}

type 'a outcome = Computed of 'a | Cached of 'a | Replayed of 'a | Failed of string

let create ?(jobs = 1) ?pool ?(cache = Cache.disabled) ?(seed = 0) ?soft_deadline_s
    ?(retries = 2) ?(backoff_s = 0.05) ?faults ?journal () =
  let jobs =
    match pool with
    | Some wq -> Workqueue.jobs wq
    | None -> if jobs <= 0 then Pool.default_jobs () else jobs
  in
  let faults = match faults with Some f -> f | None -> Fault.ambient () in
  {
    jobs;
    pool;
    cache;
    seed;
    soft_deadline_s;
    retries = max 0 retries;
    backoff_s = max 0. backoff_s;
    faults;
    journal;
    telemetry = Telemetry.create ();
    cancel = Wmm_util.Cancel.never;
  }

let sequential () = create ()

let jobs t = t.jobs
let cache t = t.cache
let journal t = t.journal

(* Shallow copy sharing every mutable inner structure (telemetry,
   cache handle, pool): batches run through the copy count into the
   same run, but carry the caller's cancellation token.  This is how
   the served daemon scopes one request's deadline without touching
   the engine other requests are using concurrently. *)
let with_cancel t cancel = { t with cancel }

(* One task, full resilience path: journal replay, cache lookup, then
   up to [1 + retries] attempts with capped exponential backoff
   between them.  Only transient exceptions (see {!Fault.transient_exn})
   are retried - retrying a deterministic error from a pure
   computation cannot change the result. *)
let attempt_task t ~token task =
  let key = task.Task.key in
  let max_attempts = 1 + t.retries in
  let rec go attempt =
    match
      Wmm_util.Cancel.check token;
      if Fault.should_fail t.faults ~key ~attempt then
        raise (Fault.Injected (Printf.sprintf "attempt %d of %s" attempt key));
      (* A fresh RNG per attempt: a retried task sees exactly the
         stream its first attempt would have, preserving bit-identical
         output.  The token rides along as the ambient one so deep
         loops (explorer backtracking, machine iteration) can poll it
         without threading it through every signature; [Cancelled] is
         not transient, so a cancelled attempt is never retried. *)
      Wmm_util.Cancel.with_ambient token (fun () ->
          task.Task.run (Task.rng_for ~root_seed:t.seed key))
    with
    | v -> Ok (v, attempt + 1)
    | exception e when Fault.transient_exn e && attempt + 1 < max_attempts ->
        (* Capped exponential backoff: backoff_s, 2*backoff_s, ... <= 2s. *)
        let delay = Float.min 2. (t.backoff_s *. (2. ** float_of_int attempt)) in
        if delay > 0. then Unix.sleepf delay;
        go (attempt + 1)
    | exception e -> Error (Printexc.to_string e, attempt + 1)
  in
  go 0

let run_all t tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "not executed") in
  let started = Atomic.make 0 in
  let batch_start = Unix.gettimeofday () in
  let exec i =
      let task = tasks.(i) in
      let key = task.Task.key in
      let queue_depth = n - Atomic.fetch_and_add started 1 - 1 in
      let record wall_s attempts outcome =
        Telemetry.add t.telemetry
          {
            Telemetry.label = task.Task.label;
            key;
            wall_s;
            queue_depth;
            outcome;
            attempts;
          }
      in
      match Option.bind t.journal (fun j -> Journal.replay j ~key) with
      | Some v ->
          results.(i) <- Replayed v;
          record 0. 0 Telemetry.Replayed
      | None -> (
          match Cache.find t.cache ~key with
          | Some v ->
              results.(i) <- Cached v;
              record 0. 0 Telemetry.Cache_hit
          | None -> (
              let t0 = Unix.gettimeofday () in
              (* Per-task token: fires at the soft deadline (making it
                 enforceable mid-task, not just post-hoc) and whenever
                 the engine-wide token does (a served request's
                 [deadline_ms], a watchdog recycling an executor). *)
              let token =
                Wmm_util.Cancel.create
                  ?deadline:(Option.map (fun s -> t0 +. s) t.soft_deadline_s)
                  ~parent:t.cancel ()
              in
              match attempt_task t ~token task with
              | Ok (v, attempts) -> (
                  let wall = Unix.gettimeofday () -. t0 in
                  match t.soft_deadline_s with
                  | Some limit when wall > limit ->
                      (* An overrun result must not be published
                         anywhere a later run could reuse it: neither
                         cached nor journaled. *)
                      let msg =
                        Printf.sprintf "exceeded soft deadline (%.2fs > %.2fs)" wall
                          limit
                      in
                      results.(i) <- Failed msg;
                      record wall attempts (Telemetry.Failed msg)
                  | _ ->
                      Cache.store t.cache ~key v;
                      if Fault.should_corrupt t.faults ~key then
                        ignore (Cache.corrupt t.cache ~key);
                      Option.iter (fun j -> Journal.record_ok j ~key v) t.journal;
                      results.(i) <- Computed v;
                      record wall attempts Telemetry.Ran)
              | Error (msg, attempts) ->
                  let wall = Unix.gettimeofday () -. t0 in
                  Option.iter (fun j -> Journal.record_failed j ~key ~msg) t.journal;
                  results.(i) <- Failed msg;
                  record wall attempts (Telemetry.Failed msg)
              | exception e ->
                  (* Injected faults that exhaust the retry budget land
                     here (re-raised by attempt_task's last round). *)
                  let wall = Unix.gettimeofday () -. t0 in
                  let msg = Printexc.to_string e in
                  Option.iter (fun j -> Journal.record_failed j ~key ~msg) t.journal;
                  results.(i) <- Failed msg;
                  record wall (1 + t.retries) (Telemetry.Failed msg)))
  in
  (* Submission strategy only: [exec] is identical either way, and
     results land by index, so a batch through a shared warm pool is
     bit-identical to a one-shot Pool.run of the same tasks.  With a
     pool, even single-task batches go through it: worker domains run
     one task at a time, which is what makes the per-domain ambient
     cancellation token sound when many submitter threads share the
     pool (running inline would stack ambient tokens from concurrent
     threads onto the submitter's one domain). *)
  (match t.pool with
  | Some wq when n >= 1 -> Pool.raise_failures (Workqueue.run_indexed wq n exec)
  | Some _ | None -> Pool.run ~jobs:t.jobs n exec);
  Telemetry.add_batch_wall t.telemetry (Unix.gettimeofday () -. batch_start);
  results

let run t task = (run_all t [| task |]).(0)

let value = function
  | Computed v | Cached v | Replayed v -> Ok v
  | Failed msg -> Error msg

let get = function
  | Computed v | Cached v | Replayed v -> v
  | Failed msg -> failwith ("engine task failed: " ^ msg)

let set_exploration t e = Telemetry.set_exploration t.telemetry e
let set_server t s = Telemetry.set_server t.telemetry s

let summary t = Telemetry.summary ~jobs:t.jobs ~cache:(Cache.stats t.cache) t.telemetry
let render_summary t = Telemetry.render_summary (summary t)

let write_telemetry t path =
  Telemetry.write_json ~path (summary t) (Telemetry.records t.telemetry)

module Batch = struct
  type 'a t = {
    mutable tasks : 'a Task.t list;  (* reversed *)
    index : (string, int) Hashtbl.t;
    mutable results : 'a outcome array option;
  }

  let create () = { tasks = []; index = Hashtbl.create 64; results = None }

  let add b task =
    let i =
      match Hashtbl.find_opt b.index task.Task.key with
      | Some i -> i
      | None ->
          let i = Hashtbl.length b.index in
          Hashtbl.add b.index task.Task.key i;
          b.tasks <- task :: b.tasks;
          i
    in
    fun () ->
      match b.results with
      | None -> invalid_arg "Engine.Batch: result requested before the batch ran"
      | Some r -> r.(i)

  let run engine b =
    let tasks = Array.of_list (List.rev b.tasks) in
    b.results <- Some (run_all engine tasks)
end
