type t = {
  jobs : int;
  cache : Cache.t;
  seed : int;
  soft_deadline_s : float option;
  telemetry : Telemetry.t;
}

type 'a outcome = Computed of 'a | Cached of 'a | Failed of string

let create ?(jobs = 1) ?(cache = Cache.disabled) ?(seed = 0) ?soft_deadline_s () =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  { jobs; cache; seed; soft_deadline_s; telemetry = Telemetry.create () }

let sequential () = create ()

let jobs t = t.jobs
let cache t = t.cache

let run_all t tasks =
  let n = Array.length tasks in
  let results = Array.make n (Failed "not executed") in
  let started = Atomic.make 0 in
  let batch_start = Unix.gettimeofday () in
  Pool.run ~jobs:t.jobs n (fun i ->
      let task = tasks.(i) in
      let queue_depth = n - Atomic.fetch_and_add started 1 - 1 in
      let record wall_s outcome =
        Telemetry.add t.telemetry
          {
            Telemetry.label = task.Task.label;
            key = task.Task.key;
            wall_s;
            queue_depth;
            outcome;
          }
      in
      match Cache.find t.cache ~key:task.Task.key with
      | Some v ->
          results.(i) <- Cached v;
          record 0. Telemetry.Cache_hit
      | None -> (
          let t0 = Unix.gettimeofday () in
          match task.Task.run (Task.rng_for ~root_seed:t.seed task.Task.key) with
          | v -> (
              let wall = Unix.gettimeofday () -. t0 in
              match t.soft_deadline_s with
              | Some limit when wall > limit ->
                  let msg =
                    Printf.sprintf "exceeded soft deadline (%.2fs > %.2fs)" wall limit
                  in
                  results.(i) <- Failed msg;
                  record wall (Telemetry.Failed msg)
              | _ ->
                  Cache.store t.cache ~key:task.Task.key v;
                  results.(i) <- Computed v;
                  record wall Telemetry.Ran)
          | exception e ->
              let wall = Unix.gettimeofday () -. t0 in
              let msg = Printexc.to_string e in
              results.(i) <- Failed msg;
              record wall (Telemetry.Failed msg)));
  Telemetry.add_batch_wall t.telemetry (Unix.gettimeofday () -. batch_start);
  results

let run t task = (run_all t [| task |]).(0)

let value = function
  | Computed v | Cached v -> Ok v
  | Failed msg -> Error msg

let get = function
  | Computed v | Cached v -> v
  | Failed msg -> failwith ("engine task failed: " ^ msg)

let summary t = Telemetry.summary ~jobs:t.jobs ~cache:(Cache.stats t.cache) t.telemetry
let render_summary t = Telemetry.render_summary (summary t)

let write_telemetry t path =
  Telemetry.write_json ~path (summary t) (Telemetry.records t.telemetry)

module Batch = struct
  type 'a t = {
    mutable tasks : 'a Task.t list;  (* reversed *)
    index : (string, int) Hashtbl.t;
    mutable results : 'a outcome array option;
  }

  let create () = { tasks = []; index = Hashtbl.create 64; results = None }

  let add b task =
    let i =
      match Hashtbl.find_opt b.index task.Task.key with
      | Some i -> i
      | None ->
          let i = Hashtbl.length b.index in
          Hashtbl.add b.index task.Task.key i;
          b.tasks <- task :: b.tasks;
          i
    in
    fun () ->
      match b.results with
      | None -> invalid_arg "Engine.Batch: result requested before the batch ran"
      | Some r -> r.(i)

  let run engine b =
    let tasks = Array.of_list (List.rev b.tasks) in
    b.results <- Some (run_all engine tasks)
end
