(** A persistent, resubmittable domain pool.

    Where {!Pool.run} builds a task list and drains it (spawning and
    joining its workers every batch), a workqueue decouples task
    submission from worker lifetime: [jobs] worker domains are
    spawned once at {!create} and block on a shared queue until
    {!shutdown}.  Any thread - including several concurrently - may
    {!submit} work and {!await} its handle, so a long-running process
    (the [wmm_served] daemon) pays domain startup once and then feeds
    the same warm pool from every client request.

    Ordering is FIFO per queue but completion order is unspecified;
    callers that need deterministic output index results themselves
    (as {!Engine.run_all} does).  A submitted closure that raises has
    the exception captured and re-raised - original backtrace
    preserved - by whichever thread awaits its handle. *)

type t

val create : ?jobs:int -> unit -> t
(** Spawn the worker domains.  [jobs] defaults to
    [Domain.recommended_domain_count ()]; values [<= 0] also select
    the recommended count, and at least one worker always exists. *)

val jobs : t -> int
(** Number of worker domains. *)

val depth : t -> int
(** Tasks currently queued (not yet claimed by a worker): a
    point-in-time load signal for telemetry and overload decisions. *)

val submitted : t -> int
(** Total tasks submitted over the queue's lifetime. *)

type 'a handle

val submit : t -> (unit -> 'a) -> 'a handle
(** Enqueue a closure for the pool.  Raises [Invalid_argument] after
    {!shutdown}. *)

val await : 'a handle -> 'a
(** Block until the closure has run; returns its value or re-raises
    its exception with the original backtrace.  Safe to call from any
    thread, any number of times. *)

val run_indexed : t -> int -> (int -> unit) -> (int * exn * Printexc.raw_backtrace) list
(** [run_indexed t n f] submits [f 0 .. f (n-1)] and awaits them all;
    the calling thread blocks but performs no work itself.  Returns
    the failures in index order ([] when every task succeeded) so the
    caller owns the raise policy - see {!Pool.run}. *)

val shutdown : t -> unit
(** Drain: workers finish the tasks already queued, then exit and are
    joined.  Idempotent.  Submitting after shutdown is an error. *)
