type job = unit -> unit

type t = {
  n_jobs : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable stopped : bool;
  mutable total_submitted : int;
  mutable workers : unit Domain.t array;
}

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a handle = {
  h_lock : Mutex.t;
  h_done : Condition.t;
  mutable state : 'a state;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
          if t.stopped then None
          else begin
            Condition.wait t.nonempty t.lock;
            next ()
          end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
        (* The job's own exception handling lives in the handle (see
           [submit]); nothing a submitted closure does can kill a
           worker. *)
        job ();
        loop ()
  in
  loop ()

let create ?(jobs = 0) () =
  let n_jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let n_jobs = max 1 n_jobs in
  let t =
    {
      n_jobs;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      total_submitted = 0;
      workers = [||];
    }
  in
  t.workers <- Array.init n_jobs (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.n_jobs

let depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.queue in
  Mutex.unlock t.lock;
  d

let submitted t =
  Mutex.lock t.lock;
  let n = t.total_submitted in
  Mutex.unlock t.lock;
  n

let submit t f =
  let h = { h_lock = Mutex.create (); h_done = Condition.create (); state = Pending } in
  let job () =
    let result =
      try Done (f ()) with e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock h.h_lock;
    h.state <- result;
    Condition.broadcast h.h_done;
    Mutex.unlock h.h_lock
  in
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    invalid_arg "Workqueue.submit: queue is shut down"
  end;
  Queue.add job t.queue;
  t.total_submitted <- t.total_submitted + 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  h

let await h =
  Mutex.lock h.h_lock;
  while h.state = Pending do
    Condition.wait h.h_done h.h_lock
  done;
  let state = h.state in
  Mutex.unlock h.h_lock;
  match state with
  | Pending -> assert false
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt

let run_indexed t n f =
  let handles = Array.init n (fun i -> submit t (fun () -> f i)) in
  let failures = ref [] in
  Array.iteri
    (fun i h ->
      match await h with
      | () -> ()
      | exception e -> failures := (i, e, Printexc.get_raw_backtrace ()) :: !failures)
    handles;
  List.rev !failures

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not was_stopped then Array.iter Domain.join t.workers
