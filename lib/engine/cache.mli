(** Content-addressed result cache.

    Each cached entry lives in its own file under the cache
    directory, named by the hex MD5 of [version ^ key].  The version
    tag defaults to a digest of the running executable, so results
    computed by a stale binary are never reused after a rebuild; the
    task key carries everything else that determines the result
    (benchmark profile, platform configuration, sample counts,
    seeds).

    Values are stored with [Marshal] alongside their key; a lookup
    only succeeds when the stored key matches exactly, which guards
    against digest collisions and truncated files.  As with any
    marshalling cache, the caller must ensure that equal keys imply
    equal result {e types}.

    All operations are safe to call concurrently from multiple
    domains: counters are mutex-protected and stores write to a
    unique temporary file before an atomic rename. *)

type t

type stats = { hits : int; misses : int; stores : int; errors : int }
(** [errors] counts unreadable or corrupt entries (treated as
    misses) and failed writes. *)

val default_dir : string
(** ["_wmm_cache"]. *)

val disabled : t
(** A cache that never hits and never stores. *)

val create : ?dir:string -> ?version:string -> unit -> t
(** [dir] defaults to {!default_dir}; [version] to
    {!code_version}[ ()]. *)

val enabled : t -> bool
val dir : t -> string option

val code_version : unit -> string
(** Hex MD5 of the running executable, or ["unversioned"] when it
    cannot be read.  Computed once. *)

val find : t -> key:string -> 'a option
val store : t -> key:string -> 'a -> unit
val stats : t -> stats
