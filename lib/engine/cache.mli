(** Content-addressed result cache.

    Each cached entry lives in its own file under the cache
    directory, named by the hex MD5 of [version ^ key] and sharded
    into 256 subdirectories by the digest's first two hex characters
    so concurrent writers (daemon workers, parallel CLIs) spread
    their directory traffic.  Flat pre-sharding entries are still
    found.  The version
    tag defaults to a digest of the running executable, so results
    computed by a stale binary are never reused after a rebuild; the
    task key carries everything else that determines the result
    (benchmark profile, platform configuration, sample counts,
    seeds).

    Values are stored with [Marshal] alongside their key; a lookup
    only succeeds when the stored key matches exactly, which guards
    against digest collisions and truncated files.  As with any
    marshalling cache, the caller must ensure that equal keys imply
    equal result {e types}.

    All operations are safe to call concurrently from multiple
    domains {e and} multiple processes sharing one directory:
    counters are mutex-protected and stores write to a temporary file
    made unique by PID, domain id and a process-global counter before
    an atomic rename. *)

type t

type stats = {
  hits : int;
  misses : int;
  stores : int;
  errors : int;
  pruned : int;
  verify_failures : int;
}
(** [errors] counts unreadable or corrupt entries (treated as
    misses) and failed writes; [pruned] counts entries deleted by
    {!clear} or {!prune} through this handle; [verify_failures]
    counts entries whose stored payload digest did not match on read
    (a subset of [errors]) — each one was quarantined to a
    [.corrupt] file and reported as a miss. *)

val default_dir : string
(** ["_wmm_cache"]. *)

val disabled : t
(** A cache that never hits and never stores. *)

val create : ?dir:string -> ?version:string -> unit -> t
(** [dir] defaults to {!default_dir}; [version] to
    {!code_version}[ ()]. *)

val enabled : t -> bool
val dir : t -> string option

val code_version : unit -> string
(** Hex MD5 of the running executable, or ["unversioned"] when it
    cannot be read.  Computed once. *)

val find : t -> key:string -> 'a option
(** Entries are verified on read: each stores an MD5 of its
    marshalled payload, and a mismatch (or any unmarshalable bytes)
    is treated as a miss, counted in [verify_failures], and the
    damaged file renamed to [<hex>.corrupt] beside its shard so the
    evidence survives while the next {!store} repopulates cleanly. *)

val store : t -> key:string -> 'a -> unit
val stats : t -> stats

(** {1 Maintenance}

    Offline housekeeping for the [wmm_bench cache] subcommand.  Only
    files ending in [.cache] are touched; journals and in-flight
    temporaries are left alone. *)

val disk_usage : t -> (int * int) option
(** [(entry count, total bytes)] currently on disk; [None] for the
    disabled cache. *)

val clear : t -> int
(** Delete every cache entry; returns how many were removed. *)

val prune : t -> max_bytes:int -> int
(** Evict oldest-first (by mtime, i.e. store order) until the cache
    fits in [max_bytes]; returns how many entries were removed. *)

type fsck_report = {
  f_scanned : int;      (** entries examined *)
  f_ok : int;           (** digest-verified clean *)
  f_quarantined : int;  (** damaged, renamed to [.corrupt] *)
  f_unverified : int;   (** legacy pre-digest entries (readable, no digest) *)
}

val fsck : t -> fsck_report
(** Walk every [.cache] entry (both layouts) and verify its stored
    payload digest, quarantining damaged files exactly as {!find}
    would.  Filename digests embed the {e writing} binary's version,
    so fsck checks payload integrity only — it never judges the
    key→filename mapping.  Quarantines are counted into
    [verify_failures]/[errors] on this handle. *)

val corrupt : t -> key:string -> bool
(** Garble the on-disk entry for [key] in place (fault injection:
    exercises corrupt-entry detection on the next {!find}).  Returns
    false when no entry exists. *)
