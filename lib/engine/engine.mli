(** The experiment execution engine.

    An engine fans independent tasks (see {!Task}) out across a pool
    of worker domains, consults the result cache before computing,
    isolates per-task crashes, and accumulates run telemetry.  One
    engine is created per run (CLI invocation, bench harness run,
    test); its telemetry spans every batch submitted to it.

    Because tasks are pure functions of their key-derived inputs and
    results are written back by submission index, output is
    bit-identical for any [jobs] setting and any scheduling
    interleaving. *)

type t

type 'a outcome =
  | Computed of 'a
  | Cached of 'a  (** Served from the result cache. *)
  | Failed of string
      (** The task raised (crash isolation), or overran the
          soft deadline when one was configured. *)

val create :
  ?jobs:int -> ?cache:Cache.t -> ?seed:int -> ?soft_deadline_s:float -> unit -> t
(** [jobs] defaults to 1 (sequential; [0] means all recommended
    domains); [cache] to {!Cache.disabled}; [seed] (the root of the
    per-task RNG streams) to 0.  [soft_deadline_s], when given,
    marks any task whose wall-clock exceeds it as [Failed]; running
    domains cannot be preempted, so the deadline is checked on
    completion, and enabling it trades run-to-run determinism of
    failure marking for boundedness. *)

val sequential : unit -> t
(** Fresh single-threaded engine with caching disabled: the drop-in
    default for library callers that were previously direct calls. *)

val jobs : t -> int
val cache : t -> Cache.t

val run_all : t -> 'a Task.t array -> 'a outcome array
(** Execute one batch.  Result [i] corresponds to task [i]. *)

val run : t -> 'a Task.t -> 'a outcome

val value : 'a outcome -> ('a, string) result
val get : 'a outcome -> 'a
(** Raises [Failure] with the recorded message on [Failed]. *)

val summary : t -> Telemetry.summary
val render_summary : t -> string
val write_telemetry : t -> string -> unit
(** Dump summary plus per-task records as JSON to the given path. *)

(** A batch under construction: collect tasks from several
    independent producers (e.g. every sweep of a figure), run them
    as one fan-out, then read each producer's results back through
    the getter [add] returned.  Tasks with equal keys are
    deduplicated - the second [add] returns the first's getter. *)
module Batch : sig
  type engine := t
  type 'a t

  val create : unit -> 'a t

  val add : 'a t -> 'a Task.t -> unit -> 'a outcome
  (** The returned getter raises [Invalid_argument] until {!run} has
      been called on the batch. *)

  val run : engine -> 'a t -> unit
end
