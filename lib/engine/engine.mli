(** The experiment execution engine.

    An engine fans independent tasks (see {!Task}) out across a pool
    of worker domains, consults the run journal and the result cache
    before computing, isolates per-task crashes, retries transient
    failures with capped exponential backoff, and accumulates run
    telemetry.  One engine is created per run (CLI invocation, bench
    harness run, test); its telemetry spans every batch submitted to
    it.

    Because tasks are pure functions of their key-derived inputs and
    results are written back by submission index, output is
    bit-identical for any [jobs] setting and any scheduling
    interleaving - including runs where transient faults were
    injected and recovered by retry. *)

type t

type 'a outcome =
  | Computed of 'a
  | Cached of 'a  (** Served from the result cache. *)
  | Replayed of 'a  (** Served from the resume journal. *)
  | Failed of string
      (** The task raised (crash isolation) and could not be
          recovered by retrying, or overran the soft deadline when
          one was configured. *)

val create :
  ?jobs:int ->
  ?pool:Workqueue.t ->
  ?cache:Cache.t ->
  ?seed:int ->
  ?soft_deadline_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?faults:Fault.t ->
  ?journal:Journal.t ->
  unit ->
  t
(** [jobs] defaults to 1 (sequential; [0] means all domains as
    reported by [Domain.recommended_domain_count]); [cache] to
    {!Cache.disabled}; [seed] (the root of the per-task RNG streams)
    to 0.

    [pool], when given, is a persistent {!Workqueue} shared with the
    caller (and possibly with other engines): batches submit to it
    instead of spinning up a one-shot pool, [jobs] is taken from the
    queue, and the engine never shuts it down.  This is how the
    served daemon keeps one set of warm worker domains across every
    request.  Because results land by submission index and task RNGs
    derive from keys, output is bit-identical across [jobs] settings,
    pool sharing, and concurrent [run_all] calls from several
    threads.

    [soft_deadline_s], when given, marks any task whose wall-clock
    exceeds it as [Failed].  The deadline is enforced twice: a
    cooperative cancellation token fires mid-task (the explorer's
    backtracking loop and the operational machine poll it, so even a
    pathological task stops within milliseconds of the deadline), and
    a post-hoc wall-clock check catches tasks that never polled.
    Enabling it trades run-to-run determinism of failure marking for
    boundedness.  Overrun results are discarded: neither cached nor
    journaled.

    [retries] (default 2) is how many times a transiently-failing
    attempt is retried before the task settles as [Failed];
    [backoff_s] (default 0.05) seeds the capped exponential backoff
    ([backoff_s * 2^attempt], capped at 2s) slept between attempts.
    Only exceptions classified transient by {!Fault.transient_exn}
    are retried.

    [faults] is the injection plan (defaults to {!Fault.ambient}[ ()],
    which the CLI sets from [--inject-faults]).  [journal], when
    given, replays completed results from a previous interrupted run
    and records every settled task for the next one. *)

val sequential : unit -> t
(** Fresh single-threaded engine with caching disabled: the drop-in
    default for library callers that were previously direct calls. *)

val jobs : t -> int
val cache : t -> Cache.t
val journal : t -> Journal.t option

val with_cancel : t -> Wmm_util.Cancel.t -> t
(** [with_cancel t token] is [t] with [token] as the parent of every
    per-task cancellation token in batches submitted through the
    returned handle.  All mutable state (telemetry, cache, pool) is
    shared with [t] — this scopes cancellation per submission, which
    is how the served daemon enforces one request's [deadline_ms]
    without disturbing concurrent requests.  Tasks observe
    cancellation cooperatively (the explorer and the operational
    machine poll the ambient token) and settle as [Failed]; a
    cancelled attempt is never retried, cached or journaled. *)

val run_all : t -> 'a Task.t array -> 'a outcome array
(** Execute one batch.  Result [i] corresponds to task [i].  Per
    task: journal replay is consulted first, then the cache, then up
    to [1 + retries] attempts run. *)

val run : t -> 'a Task.t -> 'a outcome

val value : 'a outcome -> ('a, string) result
val get : 'a outcome -> 'a
(** Raises [Failure] with the recorded message on [Failed]. *)

val set_exploration : t -> Telemetry.exploration -> unit
(** Attach candidate-search counters (an [Enumerate.global_stats]
    snapshot taken by the harness) to this run's telemetry. *)

val set_server : t -> Telemetry.server -> unit
(** Attach served-daemon request counters to this run's telemetry
    (the daemon calls this before every summary/dump). *)

val summary : t -> Telemetry.summary
val render_summary : t -> string
val write_telemetry : t -> string -> unit
(** Dump summary plus per-task records as JSON to the given path. *)

(** A batch under construction: collect tasks from several
    independent producers (e.g. every sweep of a figure), run them
    as one fan-out, then read each producer's results back through
    the getter [add] returned.  Tasks with equal keys are
    deduplicated - the second [add] returns the first's getter. *)
module Batch : sig
  type engine := t
  type 'a t

  val create : unit -> 'a t

  val add : 'a t -> 'a Task.t -> unit -> 'a outcome
  (** The returned getter raises [Invalid_argument] until {!run} has
      been called on the batch. *)

  val run : engine -> 'a t -> unit
end
