open Wmm_util

type 'a t = { key : string; label : string; run : Rng.t -> 'a }

let default_label key =
  if String.length key <= 60 then key else String.sub key 0 57 ^ "..."

let make ~key ?label run =
  let label = match label with Some l -> l | None -> default_label key in
  { key; label; run }

let pure ~key ?label f = make ~key ?label (fun _rng -> f ())

let rng_for ~root_seed key =
  (* Fold the 128-bit MD5 of the key into an int so the stream
     depends on the key's full content, then mix in the root seed and
     take one split to decorrelate from any generator the caller
     might have built from the same integers. *)
  let digest = Digest.string key in
  let h = ref 0 in
  String.iter (fun c -> h := (!h * 257) + Char.code c) digest;
  let mixed = !h lxor (root_seed * 0x9E3779B9) in
  Rng.split (Rng.create (mixed land max_int))
