type outcome = Ran | Cache_hit | Replayed | Failed of string

type record = {
  label : string;
  key : string;
  wall_s : float;
  queue_depth : int;
  outcome : outcome;
  attempts : int;
}

type exploration = {
  explored : int;
  pruned : int;
  well_formed : int;
  consistent : int;
  graph_executions : int;
  revisits : int;
  symmetry_skips : int;
  cutover_small : int;
  explore_wall_s : float;
}

(* Counters the served daemon reports alongside the engine's own
   task-level records: request counts by disposition, where answers
   came from (fresh computation, result cache, resume journal, or an
   in-flight computation another client started), latency split by
   hit/compute, and load high-water marks. *)
type server = {
  requests : int;
  ok : int;
  errors : int;
  overloaded : int;  (** Requests shed with a structured reply. *)
  computed : int;
  cache_hits : int;
  journal_hits : int;
  dedup_joined : int;
  streamed_items : int;  (** Response objects written (>= requests). *)
  clients : int;  (** Connections accepted over the lifetime. *)
  hit_wall_total_s : float;
  hit_wall_max_s : float;
  compute_wall_total_s : float;
  compute_wall_max_s : float;
  max_pending : int;  (** Peak admitted-but-unfinished requests. *)
  max_client_queue : int;  (** Peak per-client response backlog. *)
  deadline_exceeded : int;  (** Requests answered with a deadline frame. *)
  executor_recycles : int;  (** Executor threads quarantined + respawned. *)
  client_retries : int;  (** Requests arriving with a retry count > 0. *)
}

type t = {
  lock : Mutex.t;
  mutable entries : record list;  (* reversed *)
  mutable batch_wall_s : float;
  mutable exploration : exploration option;
  mutable server : server option;
}

let create () =
  { lock = Mutex.create (); entries = []; batch_wall_s = 0.; exploration = None;
    server = None }

let add t r =
  Mutex.lock t.lock;
  t.entries <- r :: t.entries;
  Mutex.unlock t.lock

let add_batch_wall t s =
  Mutex.lock t.lock;
  t.batch_wall_s <- t.batch_wall_s +. s;
  Mutex.unlock t.lock

let set_exploration t e =
  Mutex.lock t.lock;
  t.exploration <- Some e;
  Mutex.unlock t.lock

let set_server t s =
  Mutex.lock t.lock;
  t.server <- Some s;
  Mutex.unlock t.lock

let records t =
  Mutex.lock t.lock;
  let rs = List.rev t.entries in
  Mutex.unlock t.lock;
  rs

type summary = {
  jobs : int;
  total : int;
  ran : int;
  cached : int;
  replayed : int;
  retried : int;
  failed : int;
  wall_s : float;
  busy_s : float;
  speedup_estimate : float;
  max_queue_depth : int;
  cache : Cache.stats;
  exploration : exploration option;
  server : server option;
}

let summary ~jobs ~cache t =
  let rs = records t in
  let count p = List.length (List.filter p rs) in
  let ran = count (fun (r : record) -> r.outcome = Ran) in
  let cached = count (fun (r : record) -> r.outcome = Cache_hit) in
  let replayed = count (fun (r : record) -> r.outcome = Replayed) in
  let retried = count (fun (r : record) -> r.attempts > 1) in
  let failed =
    count (fun (r : record) -> match r.outcome with Failed _ -> true | _ -> false)
  in
  let busy_s = List.fold_left (fun acc (r : record) -> acc +. r.wall_s) 0. rs in
  let wall_s = t.batch_wall_s in
  let max_queue_depth =
    List.fold_left (fun acc (r : record) -> max acc r.queue_depth) 0 rs
  in
  {
    jobs;
    total = List.length rs;
    ran;
    cached;
    replayed;
    retried;
    failed;
    wall_s;
    busy_s;
    (* Meaningless when nothing actually ran (fully cached batch). *)
    speedup_estimate = (if wall_s > 0. && busy_s > 0. then busy_s /. wall_s else 1.);
    max_queue_depth;
    cache;
    exploration = t.exploration;
    server = t.server;
  }

let render_summary s =
  let b = Buffer.create 512 in
  Buffer.add_string b "--- engine run summary ---\n";
  Buffer.add_string b
    (Printf.sprintf
       "jobs %d | tasks %d (ran %d, cached %d, replayed %d, retried %d, failed %d)\n"
       s.jobs s.total s.ran s.cached s.replayed s.retried s.failed);
  Buffer.add_string b
    (Printf.sprintf "wall %.2fs | busy %.2fs | speedup vs sequential est. %.2fx\n"
       s.wall_s s.busy_s s.speedup_estimate);
  Buffer.add_string b
    (Printf.sprintf
       "cache: %d hits, %d misses, %d stores, %d errors (%d verify failures), %d pruned | max queue depth %d"
       s.cache.Cache.hits s.cache.Cache.misses s.cache.Cache.stores
       s.cache.Cache.errors s.cache.Cache.verify_failures s.cache.Cache.pruned
       s.max_queue_depth);
  (match s.exploration with
  | None -> ()
  | Some e ->
      Buffer.add_string b
        (Printf.sprintf
           "\nexploration: %d candidates (%d pruned subtrees, %d well-formed, %d consistent) in %.2fs"
           e.explored e.pruned e.well_formed e.consistent e.explore_wall_s);
      if
        e.graph_executions > 0 || e.revisits > 0 || e.symmetry_skips > 0
        || e.cutover_small > 0
      then
        Buffer.add_string b
          (Printf.sprintf
             "\nexploration engines: %d graph executions, %d revisits, %d symmetry skips, %d cutover-to-pruned"
             e.graph_executions e.revisits e.symmetry_skips e.cutover_small));
  (match s.server with
  | None -> ()
  | Some sv ->
      Buffer.add_string b
        (Printf.sprintf
           "\nserver: %d requests (%d ok, %d errors, %d overloaded) from %d clients | %d \
            computed, %d cache, %d journal, %d deduped"
           sv.requests sv.ok sv.errors sv.overloaded sv.clients sv.computed
           sv.cache_hits sv.journal_hits sv.dedup_joined);
      if sv.deadline_exceeded > 0 || sv.executor_recycles > 0 || sv.client_retries > 0
      then
        Buffer.add_string b
          (Printf.sprintf
             "\nserver faults: %d deadline exceeded, %d executors recycled, %d client retries"
             sv.deadline_exceeded sv.executor_recycles sv.client_retries);
      let mean total count = if count = 0 then 0. else total /. float_of_int count in
      Buffer.add_string b
        (Printf.sprintf
           "\nserver latency: hits mean %.0fus max %.0fus | compute mean %.1fms max %.1fms \
            | peak pending %d, peak client queue %d"
           (1e6 *. mean sv.hit_wall_total_s (sv.cache_hits + sv.journal_hits + sv.dedup_joined))
           (1e6 *. sv.hit_wall_max_s)
           (1e3 *. mean sv.compute_wall_total_s sv.computed)
           (1e3 *. sv.compute_wall_max_s) sv.max_pending sv.max_client_queue));
  Buffer.contents b

(* Minimal JSON emission: only strings, numbers and the two shapes
   below are ever produced, so a purpose-built printer beats pulling
   in a dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let outcome_json = function
  | Ran -> Printf.sprintf {|"ran"|}
  | Cache_hit -> Printf.sprintf {|"cached"|}
  | Replayed -> Printf.sprintf {|"replayed"|}
  | Failed msg -> Printf.sprintf {|{"failed": "%s"}|} (json_escape msg)

(* Bumped whenever the shape of this JSON changes, so downstream
   parsers of telemetry dumps can dispatch on it.  v3 added the
   "exploration" object (candidate-execution search counters); v4 the
   "server" object (served-daemon request counters); v5 the failure-
   containment counters (cache "verify_failures", server
   "deadline_exceeded" / "executor_recycles" / "client_retries");
   v6 the per-engine exploration counters ("graph_executions",
   "revisits", "symmetry_skips", "cutover_small"). *)
let schema_version = 6

let to_json s rs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" s.jobs);
  Buffer.add_string b (Printf.sprintf "  \"tasks_total\": %d,\n" s.total);
  Buffer.add_string b (Printf.sprintf "  \"tasks_ran\": %d,\n" s.ran);
  Buffer.add_string b (Printf.sprintf "  \"tasks_cached\": %d,\n" s.cached);
  Buffer.add_string b (Printf.sprintf "  \"tasks_replayed\": %d,\n" s.replayed);
  Buffer.add_string b (Printf.sprintf "  \"tasks_retried\": %d,\n" s.retried);
  Buffer.add_string b (Printf.sprintf "  \"tasks_failed\": %d,\n" s.failed);
  Buffer.add_string b (Printf.sprintf "  \"wall_s\": %s,\n" (json_float s.wall_s));
  Buffer.add_string b (Printf.sprintf "  \"busy_s\": %s,\n" (json_float s.busy_s));
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_estimate\": %s,\n" (json_float s.speedup_estimate));
  Buffer.add_string b (Printf.sprintf "  \"max_queue_depth\": %d,\n" s.max_queue_depth);
  Buffer.add_string b
    (Printf.sprintf
       "  \"cache\": {\"hits\": %d, \"misses\": %d, \"stores\": %d, \"errors\": %d, \"verify_failures\": %d, \"pruned\": %d},\n"
       s.cache.Cache.hits s.cache.Cache.misses s.cache.Cache.stores s.cache.Cache.errors
       s.cache.Cache.verify_failures s.cache.Cache.pruned);
  (match s.exploration with
  | None -> Buffer.add_string b "  \"exploration\": null,\n"
  | Some e ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"exploration\": {\"explored\": %d, \"pruned\": %d, \"well_formed\": %d, \"consistent\": %d, \"graph_executions\": %d, \"revisits\": %d, \"symmetry_skips\": %d, \"cutover_small\": %d, \"wall_s\": %s},\n"
           e.explored e.pruned e.well_formed e.consistent e.graph_executions e.revisits
           e.symmetry_skips e.cutover_small (json_float e.explore_wall_s)));
  (match s.server with
  | None -> Buffer.add_string b "  \"server\": null,\n"
  | Some sv ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"server\": {\"requests\": %d, \"ok\": %d, \"errors\": %d, \"overloaded\": \
            %d, \"computed\": %d, \"cache_hits\": %d, \"journal_hits\": %d, \
            \"dedup_joined\": %d, \"streamed_items\": %d, \"clients\": %d, \
            \"hit_wall_total_s\": %s, \"hit_wall_max_s\": %s, \"compute_wall_total_s\": \
            %s, \"compute_wall_max_s\": %s, \"max_pending\": %d, \"max_client_queue\": \
            %d, \"deadline_exceeded\": %d, \"executor_recycles\": %d, \
            \"client_retries\": %d},\n"
           sv.requests sv.ok sv.errors sv.overloaded sv.computed sv.cache_hits
           sv.journal_hits sv.dedup_joined sv.streamed_items sv.clients
           (json_float sv.hit_wall_total_s) (json_float sv.hit_wall_max_s)
           (json_float sv.compute_wall_total_s) (json_float sv.compute_wall_max_s)
           sv.max_pending sv.max_client_queue sv.deadline_exceeded
           sv.executor_recycles sv.client_retries));
  Buffer.add_string b "  \"tasks\": [\n";
  let n = List.length rs in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"label\": \"%s\", \"wall_s\": %s, \"queue_depth\": %d, \"attempts\": %d, \"outcome\": %s}%s\n"
           (json_escape r.label) (json_float r.wall_s) r.queue_depth r.attempts
           (outcome_json r.outcome)
           (if i = n - 1 then "" else ",")))
    rs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_json ~path s rs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json s rs))
