(** Run telemetry: what the engine did, how long each task took, and
    a structured end-of-run summary.

    Records accumulate across every batch an engine executes; the
    summary aggregates them together with the cache counters.  The
    whole data set can be rendered as a human-readable block or
    dumped as JSON ([wmm_bench figure ... --telemetry out.json]). *)

type outcome =
  | Ran  (** Computed by a worker. *)
  | Cache_hit  (** Served from the result cache. *)
  | Replayed  (** Served from a resume journal ([--resume]). *)
  | Failed of string  (** The task raised; the message is recorded. *)

type record = {
  label : string;
  key : string;
  wall_s : float;  (** Task wall-clock (0 for cache hits). *)
  queue_depth : int;  (** Tasks not yet started when this one began. *)
  outcome : outcome;
  attempts : int;
      (** Attempts the engine made (1 = first try succeeded; 0 for
          cache hits and journal replays, which never ran at all). *)
}

type exploration = {
  explored : int;  (** Complete candidate executions generated. *)
  pruned : int;  (** Search subtrees cut by the viability screen. *)
  well_formed : int;
  consistent : int;  (** Candidates the model allowed. *)
  graph_executions : int;  (** Graph-engine leaves (each consistent). *)
  revisits : int;  (** Graph-engine rf promises to future writes. *)
  symmetry_skips : int;  (** Insertion points cut by symmetry. *)
  cutover_small : int;  (** Programs Auto routed to the pruned engine. *)
  explore_wall_s : float;  (** Wall-clock spent inside exploration. *)
}
(** Counters from the candidate-execution search
    ([Enumerate.global_stats] snapshot), attached to a run's
    telemetry by the harness that drove the engine. *)

type server = {
  requests : int;
  ok : int;
  errors : int;
  overloaded : int;  (** Requests shed with a structured reply. *)
  computed : int;  (** Requests that ran their computation. *)
  cache_hits : int;  (** Requests answered from the result cache. *)
  journal_hits : int;  (** Requests answered from the resume journal. *)
  dedup_joined : int;
      (** Requests that joined an identical in-flight computation. *)
  streamed_items : int;  (** Response objects written (>= requests). *)
  clients : int;  (** Connections accepted over the lifetime. *)
  hit_wall_total_s : float;  (** Latency over cache/journal/dedup answers. *)
  hit_wall_max_s : float;
  compute_wall_total_s : float;  (** Latency over computed answers. *)
  compute_wall_max_s : float;
  max_pending : int;  (** Peak admitted-but-unfinished requests. *)
  max_client_queue : int;  (** Peak per-client response backlog. *)
  deadline_exceeded : int;
      (** Requests answered with a structured [deadline_exceeded] frame. *)
  executor_recycles : int;
      (** Executor threads quarantined after overrunning a deadline and
          replaced with a fresh one. *)
  client_retries : int;
      (** Requests that arrived marked as client-side retries
          (an envelope [retry] count > 0). *)
}
(** Request counters from the served daemon ({!Wmm_served}), attached
    to its engine's telemetry so one JSON dump describes both the
    request traffic and the task work it caused. *)

type t

val create : unit -> t

val add : t -> record -> unit
(** Thread-safe; call from worker domains. *)

val set_exploration : t -> exploration -> unit
(** Attach exploration counters to the run (last call wins). *)

val set_server : t -> server -> unit
(** Attach served-daemon request counters (last call wins). *)

val add_batch_wall : t -> float -> unit
(** Accumulate the wall-clock of one engine batch (the denominator
    of the speedup estimate). *)

val records : t -> record list
(** In insertion (completion) order. *)

type summary = {
  jobs : int;
  total : int;
  ran : int;
  cached : int;
  replayed : int;  (** Tasks served from the resume journal. *)
  retried : int;  (** Tasks that needed more than one attempt. *)
  failed : int;
  wall_s : float;  (** Total batch wall-clock. *)
  busy_s : float;  (** Sum of per-task wall-clocks. *)
  speedup_estimate : float;
      (** [busy_s /. wall_s]: how much faster the run was than a
          sequential execution of the same (uncached) tasks. *)
  max_queue_depth : int;
  cache : Cache.stats;
  exploration : exploration option;
      (** Present when the harness recorded exploration counters. *)
  server : server option;
      (** Present when a served daemon recorded request counters. *)
}

val summary : jobs:int -> cache:Cache.stats -> t -> summary

val render_summary : summary -> string
(** Multi-line human-readable block, e.g. for stderr. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON double-quoted literal
    (also used by {!Journal} for its JSONL run journals). *)

val schema_version : int
(** Version of the JSON layout emitted by {!to_json}, included as the
    dump's [schema_version] field; bumped on layout changes so
    downstream parsers can evolve safely. *)

val to_json : summary -> record list -> string
(** The full run as a JSON object: the [schema_version], the summary
    fields, plus a [tasks] array with per-task label, wall-clock,
    queue depth and outcome. *)

val write_json : path:string -> summary -> record list -> unit
