(** Deterministic fault injection for the experiment pipeline.

    A fault plan describes which failures to synthesise during a run
    so that every recovery path - retry/backoff, cache-corruption
    detection, partial-figure degradation, robust fitting - can be
    exercised reproducibly, in CI, without real hardware flakiness.

    Every injection decision is a pure function of the plan's seed,
    the task key, and an index (attempt number or sample index),
    mirroring how per-task RNG streams derive from key digests: the
    same plan injects the same faults on every run, for any [--jobs]
    setting and any scheduling interleaving.

    Three fault kinds, combinable in one spec string:
    - [transient=PxK]: with probability [P], a task key is afflicted;
      afflicted tasks raise {!Injected} on their first [K] attempts
      (default 1) and then succeed, so a retry budget of at least [K]
      recovers the run bit-identically.
    - [outlier=PxS]: each raw performance sample is, with probability
      [P], multiplied by [S] (default 10) - the adversarial
      perturbation the robust estimators must survive.
    - [corrupt=P]: with probability [P], a task's cache entry is
      garbled right after being stored, exercising the cache's
      corrupt-entry detection on the next run.
    - [seed=N]: decorrelates the fault streams between plans. *)

type t

val none : t
(** The empty plan: injects nothing. *)

val is_none : t -> bool

exception Injected of string
(** Raised by the engine on behalf of a task when the plan says the
    attempt fails.  Classified transient. *)

val transient_exn : exn -> bool
(** The retry classifier: {!Injected}, [Sys_error] and
    [Unix.Unix_error] are transient (worth retrying); anything else -
    a deterministic error from a pure computation - is permanent. *)

val parse : string -> (t, string) result
(** Parse a spec like ["seed=7,transient=0.3x2,outlier=0.05x10,corrupt=0.1"].
    Unknown kinds, malformed numbers and out-of-range probabilities
    are reported as [Error]. *)

val to_string : t -> string
(** Canonical spec string; [""] for {!none}.  [parse (to_string t)]
    reproduces [t]. *)

val fingerprint : t -> string
(** Alias of {!to_string}: mixed into task cache keys so runs under a
    fault plan never pollute (or reuse) the clean cache. *)

val should_fail : t -> key:string -> attempt:int -> bool
(** Whether the given attempt (0-based) of the task with [key] must
    raise {!Injected}. *)

val should_corrupt : t -> key:string -> bool
(** Whether the cache entry for [key] must be garbled after store. *)

val perturb_samples : t -> key:string -> float array -> float array
(** Apply the outlier perturbation to a raw sample array; returns the
    input array unchanged (not copied) when no outlier fault is
    configured. *)

(** {1 Ambient plan}

    The CLI installs the parsed plan once; the experiment layer reads
    it where sample tasks are built (capturing it into the task
    closure), and {!Engine.create} defaults its [?faults] argument to
    it.  Tests use {!with_ambient} to scope a plan. *)

val set_ambient : t -> unit
val ambient : unit -> t

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install the plan, run the thunk, restore the previous plan. *)
