(** In-flight computation deduplication.

    A table of computations currently running, keyed by the same
    content-addressed strings as the result cache.  When several
    threads ask for the same key concurrently, exactly one (the
    {e owner}) runs the computation; the others ({e joiners}) block
    until it finishes and share its result.  Once a computation
    settles it leaves the table - subsequent requests are expected to
    hit the result cache instead, so the table only ever holds keys
    whose first computation is still running.

    This is the layer that makes a thousand identical concurrent
    daemon queries cost one computation: cache-miss traffic collapses
    onto the single in-flight run instead of racing it.

    All entry points are thread- and domain-safe. *)

type 'v t

val create : unit -> 'v t

val run : 'v t -> key:string -> (unit -> 'v) -> 'v * bool
(** [run t ~key f] either runs [f] (as owner) or waits for the owner
    of [key] and shares its outcome.  The boolean is [true] iff the
    result was shared (joined).  If the owner's [f] raises, the owner
    re-raises its own exception and every joiner raises [Failure]
    with the printed form - a failure is shared exactly like a
    success, so joiners never retry a computation that just failed in
    front of them. *)

type stats = {
  computed : int;  (** Calls that ran their closure (owners). *)
  joined : int;  (** Calls served by somebody else's run. *)
  active : int;  (** Keys currently in flight. *)
  max_active : int;  (** High-water mark of [active]. *)
}

val stats : 'v t -> stats
