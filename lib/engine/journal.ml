type mode = Rewrite | Append

type t = {
  j_path : string;
  j_run_id : string;
  mode : mode;
  lock : Mutex.t;
  content : Buffer.t;  (* full current file body; maintained in Rewrite mode only *)
  mutable append_fd : Unix.file_descr option;  (* open O_APPEND fd in Append mode *)
  replay_table : (string, string) Hashtbl.t;  (* key -> marshalled value *)
  loaded_entries : int;
  loaded_dropped : int;  (* torn / digest-mismatched lines skipped on open *)
}

let default_dir = Filename.concat Cache.default_dir "journal"

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize run_id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    run_id

let derived_run_id ~tag parts =
  let digest = Digest.to_hex (Digest.string (String.concat "\x00" parts)) in
  Printf.sprintf "%s-%s" (sanitize tag) (String.sub digest 0 12)

(* ------------------------------------------------------------------ *)
(* Line encoding.  One JSON object per line; marshalled values are    *)
(* hex-encoded so every line stays printable single-line text.        *)
(* ------------------------------------------------------------------ *)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then failwith "Journal: odd hex length";
  String.init (n / 2) (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* Ok lines carry an MD5 of the raw marshalled value: a bit flipped
   inside the hex payload after the line was written still parses as
   JSON and as hex, so without the digest it would replay as a
   plausible wrong result.  With it, damage reads as a torn line. *)
let ok_line ~key value_bytes =
  Printf.sprintf {|{"key": "%s", "status": "ok", "digest": "%s", "value": "%s"}|}
    (Telemetry.json_escape key)
    (Digest.to_hex (Digest.string value_bytes))
    (hex_encode value_bytes)

let failed_line ~key ~msg =
  Printf.sprintf {|{"key": "%s", "status": "failed", "msg": "%s"}|}
    (Telemetry.json_escape key) (Telemetry.json_escape msg)

(* Minimal parser for exactly the lines this module writes: a fixed
   field order and only string values.  Torn or foreign lines fail to
   parse and are skipped, which makes replay safe after a crash
   mid-append. *)
let parse_string_at s i =
  if i >= String.length s || s.[i] <> '"' then failwith "Journal: expected string";
  let b = Buffer.create 32 in
  let rec go i =
    if i >= String.length s then failwith "Journal: unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents b, i + 1)
      | '\\' ->
          if i + 1 >= String.length s then failwith "Journal: bad escape"
          else begin
            (match s.[i + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if i + 5 >= String.length s then failwith "Journal: bad \\u escape";
                Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (i + 2) 4)))
            | _ -> failwith "Journal: unknown escape");
            go (if s.[i + 1] = 'u' then i + 6 else i + 2)
          end
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go (i + 1)

let expect s i literal =
  let n = String.length literal in
  if i + n <= String.length s && String.sub s i n = literal then i + n
  else failwith "Journal: malformed line"

type entry = Ok_entry of string * string | Failed_entry of string * string

let parse_line line =
  let i = expect line 0 {|{"key": |} in
  let key, i = parse_string_at line i in
  let i = expect line i {|, "status": |} in
  let status, i = parse_string_at line i in
  match status with
  | "ok" ->
      (* Digest is optional on parse so journals written before the
         field existed still replay (unverified). *)
      let digest, i =
        let lit = {|, "digest": |} in
        let n = String.length lit in
        if i + n <= String.length line && String.sub line i n = lit then
          let d, i = parse_string_at line (i + n) in
          (Some d, i)
        else (None, i)
      in
      let i = expect line i {|, "value": |} in
      let value_hex, i = parse_string_at line i in
      ignore (expect line i "}");
      let value_bytes = hex_decode value_hex in
      (match digest with
      | Some d when Digest.to_hex (Digest.string value_bytes) <> d ->
          failwith "Journal: value digest mismatch"
      | _ -> ());
      Ok_entry (key, value_bytes)
  | "failed" ->
      let i = expect line i {|, "msg": |} in
      let msg, i = parse_string_at line i in
      ignore (expect line i "}");
      Failed_entry (key, msg)
  | _ -> failwith "Journal: unknown status"

(* ------------------------------------------------------------------ *)
(* Open / replay / append.                                            *)
(* ------------------------------------------------------------------ *)

let open_ ?(dir = default_dir) ?(mode = Rewrite) ~run_id () =
  let path = Filename.concat dir (sanitize run_id ^ ".jsonl") in
  let content = Buffer.create 4096 in
  let replay_table = Hashtbl.create 64 in
  let loaded = ref 0 in
  let dropped = ref 0 in
  (if Sys.file_exists path then
     let ic = open_in_bin path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             match parse_line line with
             | Ok_entry (key, value_bytes) ->
                 (* Last occurrence wins; results are deterministic, so
                    duplicates across appended runs agree anyway. *)
                 if not (Hashtbl.mem replay_table key) then incr loaded;
                 Hashtbl.replace replay_table key value_bytes;
                 if mode = Rewrite then begin
                   Buffer.add_string content line;
                   Buffer.add_char content '\n'
                 end
             | Failed_entry _ ->
                 (* Failures are journaled for the record but never
                    replayed: they may have been transient. *)
                 if mode = Rewrite then begin
                   Buffer.add_string content line;
                   Buffer.add_char content '\n'
                 end
             | exception _ -> incr dropped (* torn / damaged / foreign: drop *)
           done
         with End_of_file -> ()));
  {
    j_path = path;
    j_run_id = run_id;
    mode;
    lock = Mutex.create ();
    content;
    append_fd = None;
    replay_table;
    loaded_entries = !loaded;
    loaded_dropped = !dropped;
  }

let path t = t.j_path
let run_id t = t.j_run_id
let loaded t = t.loaded_entries
let dropped t = t.loaded_dropped

let replay t ~key =
  Mutex.lock t.lock;
  let found = Hashtbl.find_opt t.replay_table key in
  Mutex.unlock t.lock;
  Option.map (fun bytes -> Marshal.from_string bytes 0) found

(* Tmp names embed PID, domain and a process-global counter, the same
   uniqueness discipline as the cache: concurrent journal writers
   sharing a directory (two daemons, daemon plus CLI) can never race
   on a tmp path. *)
let tmp_counter = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
    (Domain.self () :> int)
    (Atomic.fetch_and_add tmp_counter 1)

(* Two durability disciplines.

   [Rewrite] (the one-shot default): every append rewrites the whole
   file through a tmp + atomic rename, so a crash at any point leaves
   either the previous or the new complete journal - never a torn
   line.  Journals of one-shot runs are small, so the quadratic
   rewrite cost is noise next to the tasks themselves.

   [Append] (the daemon's mode): the whole line goes to an O_APPEND
   fd in ONE write(2).  A buffered channel could split one record
   across several syscalls, so two processes appending to the same
   run id could interleave mid-record; a single O_APPEND write is
   atomic with respect to the file offset, so concurrent writers can
   at worst tear the final line of a crashed process — which the
   load-time parser already skips.  Incremental cost stays O(line)
   instead of O(file). *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let append t line =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.mode with
      | Append -> (
          try
            let fd =
              match t.append_fd with
              | Some fd -> fd
              | None ->
                  mkdir_p (Filename.dirname t.j_path);
                  let fd =
                    Unix.openfile t.j_path
                      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
                      0o644
                  in
                  t.append_fd <- Some fd;
                  fd
            in
            write_all fd (line ^ "\n")
          with _ -> ())
      | Rewrite -> (
          Buffer.add_string t.content line;
          Buffer.add_char t.content '\n';
          let tmp = tmp_name t.j_path in
          try
            mkdir_p (Filename.dirname t.j_path);
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> Buffer.output_buffer oc t.content);
            Sys.rename tmp t.j_path
          with _ -> ( try Sys.remove tmp with _ -> ())))

let record_ok t ~key value =
  let bytes = Marshal.to_string value [] in
  Mutex.lock t.lock;
  Hashtbl.replace t.replay_table key bytes;
  Mutex.unlock t.lock;
  append t (ok_line ~key bytes)

let record_failed t ~key ~msg = append t (failed_line ~key ~msg)

let close t =
  Mutex.lock t.lock;
  (match t.append_fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.append_fd <- None
  | None -> ());
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Offline fsck: scan one run's JSONL for torn, duplicate and orphan  *)
(* records, then compact it (tmp + rename) down to one line per       *)
(* surviving key.  Orphans are failed records superseded by a later   *)
(* ok for the same key — kept lines are the last ok per key in        *)
(* first-seen order, plus failures that were never superseded.        *)
(* ------------------------------------------------------------------ *)

type fsck_report = {
  j_lines : int;
  j_ok : int;
  j_failed : int;
  j_torn : int;
  j_duplicates : int;
  j_orphans : int;
  j_kept : int;
  j_compacted : bool;
}

let fsck ?(dir = default_dir) ~run_id () =
  let path = Filename.concat dir (sanitize run_id ^ ".jsonl") in
  let zero =
    { j_lines = 0; j_ok = 0; j_failed = 0; j_torn = 0; j_duplicates = 0;
      j_orphans = 0; j_kept = 0; j_compacted = false }
  in
  if not (Sys.file_exists path) then zero
  else begin
    let lines = ref 0 and ok = ref 0 and failed = ref 0 and torn = ref 0 in
    let dups = ref 0 in
    let last_ok : (string, string) Hashtbl.t = Hashtbl.create 64 in
    let ok_order = ref [] (* keys, first-seen order, reversed *) in
    let failures = ref [] (* (key, line), order, reversed *) in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            incr lines;
            match parse_line line with
            | Ok_entry (key, _) ->
                incr ok;
                if Hashtbl.mem last_ok key then incr dups
                else ok_order := key :: !ok_order;
                Hashtbl.replace last_ok key line
            | Failed_entry (key, _) ->
                incr failed;
                failures := (key, line) :: !failures
            | exception _ -> incr torn
          done
        with End_of_file -> ());
    (* A failure is an orphan once any ok for its key exists. *)
    let orphans =
      List.length (List.filter (fun (k, _) -> Hashtbl.mem last_ok k) !failures)
    in
    let kept_failures =
      List.rev (List.filter (fun (k, _) -> not (Hashtbl.mem last_ok k)) !failures)
    in
    let kept = List.length !ok_order + List.length kept_failures in
    let needs_compaction = !torn > 0 || !dups > 0 || orphans > 0 in
    if needs_compaction then begin
      let tmp = tmp_name path in
      let oc = open_out_bin tmp in
      (try
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () ->
             List.iter
               (fun key ->
                 output_string oc (Hashtbl.find last_ok key);
                 output_char oc '\n')
               (List.rev !ok_order);
             List.iter
               (fun (_, line) ->
                 output_string oc line;
                 output_char oc '\n')
               kept_failures);
         Sys.rename tmp path
       with e ->
         (try Sys.remove tmp with _ -> ());
         raise e)
    end;
    { j_lines = !lines; j_ok = !ok; j_failed = !failed; j_torn = !torn;
      j_duplicates = !dups; j_orphans = orphans; j_kept = kept;
      j_compacted = needs_compaction }
  end
