open Wmm_isa

(** An operational weak-memory machine for running litmus tests.

    Each hardware thread has a small out-of-order window and a store
    buffer.  Weak behaviours arise from three mechanisms: stores
    retire into the buffer and become globally visible later
    (write->read reordering, as in SB); the buffer drains out of
    order except across barriers and same-location entries
    (write->write reordering, as in MP); and loads may execute out of
    order with respect to older loads and independent stores
    (read->read and read->write reordering, as in MP and LB).
    Branches are never speculated, so control dependencies are always
    respected - the machine exhibits a *subset* of the axiomatically
    allowed behaviours, which the litmus checker accounts for.

    Barriers have their architectural semantics: full barriers
    ([dmb ish], [sync]) wait for the window and drain the buffer;
    [dmb ishld] orders earlier loads; [dmb ishst] and [lwsync] insert
    drain-order markers; [isb]/[isync] wait for everything;
    load-acquire and store-release behave as in ARMv8 (RCsc). *)

type config = {
  window_size : int;  (** Out-of-order window size per thread. *)
  fifo_buffer : bool;  (** Drain in FIFO order (a TSO-like machine). *)
  reorder_loads : bool;  (** Allow load-load / load-store reordering. *)
  synchronous_stores : bool;
      (** Bypass the store buffer entirely (sequential consistency). *)
}

val relaxed_config : config
(** ARM/POWER-like: non-FIFO buffer, load reordering, window 8. *)

val tso_config : config
(** FIFO buffer, in-order loads: only write->read reordering. *)

val sc_config : config
(** Window of 1 and synchronous drain: sequentially consistent. *)

type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;  (** Sorted. *)
  memory : (Instr.loc * Instr.value) list;  (** Sorted. *)
}

val compare_outcome : outcome -> outcome -> int

val run : config -> seed:int -> Program.t -> outcome
(** One execution with uniformly random scheduling. *)

val run_traced :
  config -> seed:int -> Program.t -> outcome * Wmm_cert.Trace.action list array
(** [run], additionally returning the canonical per-thread
    memory-event trace of the execution: reads with the value they
    observed, globally visible writes (successful store-exclusives
    flagged as rmw; failed ones emit nothing), and fences, in program
    order regardless of the order the window executed them in.  The
    traces replay cleanly through {!Wmm_cert.Replay.replay_thread},
    which is how the certificate tests cross-validate the machine's
    thread-local semantics against the checker's. *)

val collect : config -> seed:int -> iterations:int -> Program.t -> (outcome * int) list
(** Outcome histogram over randomly scheduled executions, sorted by
    outcome. *)

val enumerate : ?max_states:int -> config -> Program.t -> outcome list
(** All reachable final states by exhaustive depth-first exploration
    with state memoisation.  Raises [Failure] if the state count
    exceeds [max_states] (default 500_000). *)
