open Wmm_isa
open Wmm_util

type config = {
  window_size : int;
  fifo_buffer : bool;
  reorder_loads : bool;
  synchronous_stores : bool;
}

let relaxed_config =
  { window_size = 8; fifo_buffer = false; reorder_loads = true; synchronous_stores = false }
let tso_config =
  { window_size = 8; fifo_buffer = true; reorder_loads = false; synchronous_stores = false }
let sc_config =
  { window_size = 1; fifo_buffer = true; reorder_loads = false; synchronous_stores = true }

type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
  memory : (Instr.loc * Instr.value) list;
}

let compare_outcome (a : outcome) (b : outcome) = compare a b

module IM = Map.Make (Int)

(* Operand as resolved at decode time: immediates and
   already-concrete register values become [Val]; registers whose
   program-order-latest producer is still in flight become
   [From eid]. *)
type source = Val of int | From of int

(* A decoded, possibly executed instruction in the window. *)
type entry = {
  eid : int;
  at_pc : int;
  instr : Instr.t;
  sources : source list;  (** In the order of [Instr.input_regs]. *)
  executed : bool;
  result : int;  (** Register result (load value / ALU / stxr status); 0 otherwise. *)
  store_value : int;  (** Value written by an executed store; 0 otherwise. *)
  resolved_loc : int;  (** Location of an executed memory access; -1 otherwise. *)
}

type binding = Value of int | Producer of int

type buffer_entry =
  | Bstore of { loc : int; value : int; release : bool; eid : int }
      (** [eid] identifies the originating store so loads only
          forward from program-order-earlier entries. *)
  | Bmarker  (** Store-order marker from dmb ishst / lwsync / eieio. *)

type tstate = {
  pc : int;
  next_eid : int;
  window : entry list;  (** Oldest first. *)
  bindings : binding IM.t;
  written : unit IM.t;  (** Registers architecturally written so far. *)
}

type state = {
  threads : tstate array;
  buffers : buffer_entry list array;
  memory : int IM.t;
  monitors : int option array;  (** Per-thread exclusive monitor (location). *)
}

type action = Execute of int * int  (** thread, eid *) | Drain of int * int  (** thread, buffer index *)

(* ------------------------------------------------------------------ *)
(* Decoding / fetch.                                                   *)
(* ------------------------------------------------------------------ *)

let resolve_operand bindings = function
  | Instr.Imm v -> Val v
  | Instr.Reg r -> (
      match IM.find_opt r bindings with
      | Some (Value v) -> Val v
      | Some (Producer eid) -> From eid
      | None -> Val 0)

let operands_of_instr instr bindings =
  List.map (fun r -> resolve_operand bindings (Instr.Reg r)) (Instr.input_regs instr)

let has_unresolved_branch window =
  List.exists (fun e -> Instr.is_branch e.instr && not e.executed) window

(* Fetch instructions into the window up to capacity, stopping at an
   unresolved branch (no speculation). *)
let fetch config (program : Program.thread) t =
  let rec go t =
    if
      List.length t.window >= config.window_size
      || has_unresolved_branch t.window
      || t.pc < 0
      || t.pc >= Array.length program
    then t
    else begin
      let instr = program.(t.pc) in
      let sources = operands_of_instr instr t.bindings in
      let entry =
        {
          eid = t.next_eid;
          at_pc = t.pc;
          instr;
          sources;
          executed = false;
          result = 0;
          store_value = 0;
          resolved_loc = -1;
        }
      in
      let bindings =
        match Instr.output_reg instr with
        | Some r -> IM.add r (Producer entry.eid) t.bindings
        | None -> t.bindings
      in
      go
        {
          t with
          pc = t.pc + 1;
          next_eid = t.next_eid + 1;
          window = t.window @ [ entry ];
          bindings;
        }
    end
  in
  go t

(* Retire executed entries from the window head, substituting their
   results into later operands and the register bindings. *)
let retire t =
  let substitute eid value t =
    let window =
      List.map
        (fun e ->
          {
            e with
            sources = List.map (function From i when i = eid -> Val value | s -> s) e.sources;
          })
        t.window
    in
    let bindings =
      IM.map (function Producer i when i = eid -> Value value | b -> b) t.bindings
    in
    { t with window; bindings }
  in
  let rec go t =
    match t.window with
    | e :: rest when e.executed ->
        let t = { t with window = rest } in
        let t =
          match Instr.output_reg e.instr with
          | Some r -> substitute e.eid e.result { t with written = IM.add r () t.written }
          | None -> t
        in
        go t
    | _ -> t
  in
  go t

(* ------------------------------------------------------------------ *)
(* Readiness.                                                          *)
(* ------------------------------------------------------------------ *)

let entry_value window eid =
  let rec find = function
    | [] -> None
    | e :: rest -> if e.eid = eid then Some e else find rest
  in
  match find window with
  | Some e when e.executed -> Some e.result
  | Some _ | None -> None

let source_value window = function
  | Val v -> Some v
  | From eid -> entry_value window eid

let sources_ready window e = List.for_all (fun s -> source_value window s <> None) e.sources

let source_values window e = List.map (fun s -> Option.get (source_value window s)) e.sources

let older_entries window eid = List.filter (fun e -> e.eid < eid) window

let is_full_barrier = function
  | Instr.Barrier (Instr.Dmb_ish | Instr.Sync | Instr.Fence_sc) -> true
  | _ -> false

let is_load_barrier = function
  | Instr.Barrier (Instr.Dmb_ishld | Instr.Lwsync | Instr.Fence_acq | Instr.Fence_acq_rel)
    ->
      true
  | _ -> false

let is_store_marker_barrier = function
  | Instr.Barrier
      (Instr.Dmb_ishst | Instr.Lwsync | Instr.Eieio | Instr.Fence_rel | Instr.Fence_acq_rel)
    ->
      true
  | _ -> false

let is_pipeline_barrier = function
  | Instr.Barrier (Instr.Isb | Instr.Isync) -> true
  | _ -> false

let is_load e =
  match e.instr with Instr.Load _ | Instr.Load_exclusive _ -> true | _ -> false

let is_store e =
  match e.instr with Instr.Store _ | Instr.Store_exclusive _ -> true | _ -> false

let is_acquire_load e =
  match e.instr with
  | Instr.Load { order = Instr.Acquire | Instr.Acq_rel | Instr.Sc; _ }
  | Instr.Load_exclusive { order = Instr.Acquire | Instr.Acq_rel | Instr.Sc; _ } ->
      true
  | _ -> false

let is_release_store e =
  match e.instr with
  | Instr.Store { order = Instr.Release | Instr.Acq_rel | Instr.Sc; _ }
  | Instr.Store_exclusive { order = Instr.Release | Instr.Acq_rel | Instr.Sc; _ } ->
      true
  | _ -> false

(* The address a not-yet-executed memory entry will access, when its
   address operand is already resolvable. *)
let pending_address window e =
  match e.instr with
  | Instr.Load { addr; _ }
  | Instr.Load_exclusive { addr; _ }
  | Instr.Store { addr; _ }
  | Instr.Store_exclusive { addr; _ } -> (
      let source =
        match addr with
        | Instr.Imm l -> Some (Val l)
        | Instr.Reg _ -> (
            (* The address register is the only input for loads; for
               stores it follows the value sources. *)
            match (e.instr, e.sources) with
            | (Instr.Load _ | Instr.Load_exclusive _), [ s ] -> Some s
            | Instr.Store { src = Instr.Reg _; _ }, [ _; s ]
            | Instr.Store_exclusive { src = Instr.Reg _; _ }, [ _; s ] ->
                Some s
            | Instr.Store { src = Instr.Imm _; _ }, [ s ]
            | Instr.Store_exclusive { src = Instr.Imm _; _ }, [ s ] ->
                Some s
            | _ -> None)
      in
      match source with Some s -> source_value window s | None -> None)
  | _ -> None

(* Remove leading markers: a marker with nothing before it orders
   nothing anymore. *)
let rec normalise_buffer = function Bmarker :: rest -> normalise_buffer rest | b -> b

let buffer_has_release buffer =
  List.exists (function Bstore { release = true; _ } -> true | _ -> false) buffer

let can_execute config t buffer e =
  let older = older_entries t.window e.eid in
  let older_all_done = List.for_all (fun o -> o.executed) older in
  let older_loads_done = List.for_all (fun o -> (not (is_load o)) || o.executed) older in
  let older_stores_done = List.for_all (fun o -> (not (is_store o)) || o.executed) older in
  let blocking_acquire = List.exists (fun o -> is_acquire_load o && not o.executed) older in
  let blocking_pipeline =
    List.exists (fun o -> is_pipeline_barrier o.instr && not o.executed) older
  in
  if not (sources_ready t.window e) then false
  else if blocking_pipeline then false
  else if blocking_acquire && not (is_pipeline_barrier e.instr) then false
  else
    match e.instr with
    | Instr.Nop | Instr.Mov _ | Instr.Op _ -> true
    | Instr.Cbnz _ | Instr.Cbz _ -> true
    | Instr.Barrier (Instr.Dmb_ish | Instr.Sync | Instr.Fence_sc) ->
        older_all_done && buffer = []
    | Instr.Barrier (Instr.Dmb_ishld | Instr.Fence_acq) -> older_loads_done
    | Instr.Barrier (Instr.Lwsync | Instr.Fence_rel | Instr.Fence_acq_rel) ->
        older_loads_done && older_stores_done
    | Instr.Barrier (Instr.Dmb_ishst | Instr.Eieio) -> older_stores_done
    | Instr.Barrier (Instr.Isb | Instr.Isync) -> older_all_done
    | Instr.Store { order; _ } | Instr.Store_exclusive { order; _ } ->
        (* Stores enter the buffer in program order and never pass
           barriers that order stores. *)
        older_stores_done
        && (config.reorder_loads || older_loads_done)
        && List.for_all
             (fun o ->
               (not
                  (is_full_barrier o.instr || is_store_marker_barrier o.instr
                  || is_pipeline_barrier o.instr))
               || o.executed)
             older
        && (match order with
           | Instr.Release | Instr.Acq_rel | Instr.Sc ->
               older_loads_done && older_all_done
           | Instr.Plain | Instr.Acquire -> true)
        &&
        (* A store-exclusive writes through: it may not overtake an
           own buffered store to the same location. *)
        (match e.instr with
        | Instr.Store_exclusive _ -> (
            match pending_address t.window e with
            | None -> false
            | Some l ->
                not
                  (List.exists
                     (function Bstore { loc; _ } -> loc = l | Bmarker -> false)
                     buffer))
        | _ -> true)
    | Instr.Load { order; _ } | Instr.Load_exclusive { order; _ } -> (
        let barrier_clear =
          List.for_all
            (fun o ->
              (not (is_full_barrier o.instr || is_load_barrier o.instr)) || o.executed)
            older
        in
        let load_order_ok =
          if config.reorder_loads then
            (* Even relaxed machines keep same-location loads in
               order (coherence, CoRR); a load with an unresolved
               address blocks younger loads conservatively. *)
            let this_addr = pending_address t.window e in
            List.for_all
              (fun o ->
                if is_load o && not o.executed then
                  match (pending_address t.window o, this_addr) with
                  | Some l', Some l -> l' <> l
                  | _ -> false
                else true)
              older
          else List.for_all (fun o -> (not (is_load o)) || o.executed) older
        in
        (* A load may not bypass an older store whose address is
           unknown, nor an older unexecuted store to the same
           location (it will forward from it once executed). *)
        let this_addr = pending_address t.window e in
        let store_hazard_clear =
          match this_addr with
          | None -> false
          | Some l ->
              List.for_all
                (fun o ->
                  if is_store o && not o.executed then
                    match pending_address t.window o with
                    | None -> false
                    | Some l' -> l' <> l
                  else true)
                older
        in
        barrier_clear && load_order_ok && store_hazard_clear
        &&
        match order with
        | Instr.Acquire | Instr.Acq_rel | Instr.Sc ->
            (* RCsc: a load-acquire is ordered after every older
               store-release, whether still in the window or in the
               buffer. *)
            (not (buffer_has_release buffer))
            && List.for_all (fun o -> (not (is_release_store o)) || o.executed) older
        | Instr.Plain | Instr.Release -> true)

(* ------------------------------------------------------------------ *)
(* Effects.                                                            *)
(* ------------------------------------------------------------------ *)

let forwardable_value window buffer eid loc =
  (* Youngest program-order-earlier store to [loc] still visible
     locally, across both the window and the store buffer (a store
     can appear in both; the values agree). *)
  let candidates =
    List.filter_map
      (fun o ->
        if o.eid < eid && is_store o && o.executed && o.resolved_loc = loc then
          Some (o.eid, o.store_value)
        else None)
      window
    @ List.filter_map
        (function
          | Bstore { loc = l; value; eid = store_eid; _ } when l = loc && store_eid < eid ->
              Some (store_eid, value)
          | Bstore _ | Bmarker -> None)
        buffer
  in
  List.fold_left
    (fun acc (store_eid, value) ->
      match acc with
      | Some (best, _) when best >= store_eid -> acc
      | _ -> Some (store_eid, value))
    None candidates
  |> Option.map snd

let mark_executed ?(store_value = 0) t eid ~result ~resolved_loc =
  {
    t with
    window =
      List.map
        (fun e ->
          if e.eid = eid then { e with executed = true; result; store_value; resolved_loc }
          else e)
        t.window;
  }

let read_memory memory loc = match IM.find_opt loc memory with Some v -> v | None -> 0

(* [emit] receives the canonical memory event of each executed
   instruction (reads, globally visible writes, fences) keyed by the
   entry's eid, which numbers instructions in fetch = program order -
   sorting a thread's emissions by eid therefore reconstructs the
   program-order event trace even when the window executed them out of
   order.  Failed store-exclusives emit nothing, matching the
   canonical trace representation. *)
let execute_entry ?(emit = fun ~tid:_ ~eid:_ _ -> ()) config (program : Program.thread)
    state tid eid =
  let t = state.threads.(tid) in
  let e = List.find (fun e -> e.eid = eid) t.window in
  let values = source_values t.window e in
  let threads = Array.copy state.threads in
  let buffers = Array.copy state.buffers in
  let monitors = Array.copy state.monitors in
  let memory = ref state.memory in
  let finish t' =
    threads.(tid) <- fetch config program (retire t');
    { threads; buffers; memory = !memory; monitors }
  in
  (* A write to [loc] becoming visible revokes every other thread's
     exclusive monitor on it. *)
  let revoke_monitors loc =
    Array.iteri
      (fun i m -> if i <> tid && m = Some loc then monitors.(i) <- None)
      monitors
  in
  match e.instr with
  | Instr.Nop -> finish (mark_executed t eid ~result:0 ~resolved_loc:(-1))
  | Instr.Mov { src; _ } ->
      let v =
        match src with
        | Instr.Imm v -> v
        | Instr.Reg _ -> ( match values with [ v ] -> v | _ -> 0)
      in
      finish (mark_executed t eid ~result:v ~resolved_loc:(-1))
  | Instr.Op { op; a; b; _ } ->
      let take_imm operand values =
        match operand with
        | Instr.Imm v -> (v, values)
        | Instr.Reg _ -> (
            match values with v :: rest -> (v, rest) | [] -> (0, []))
      in
      let va, rest = take_imm a values in
      let vb, _ = take_imm b rest in
      finish (mark_executed t eid ~result:(Instr.eval_binop op va vb) ~resolved_loc:(-1))
  | Instr.Cbnz { offset; _ } | Instr.Cbz { offset; _ } ->
      let v = match values with [ v ] -> v | _ -> 0 in
      let taken = match e.instr with Instr.Cbnz _ -> v <> 0 | _ -> v = 0 in
      let t = mark_executed t eid ~result:0 ~resolved_loc:(-1) in
      let t = if taken then { t with pc = e.at_pc + 1 + offset } else t in
      finish t
  | Instr.Barrier b ->
      emit ~tid ~eid (Wmm_cert.Trace.Fence b);
      let t = mark_executed t eid ~result:0 ~resolved_loc:(-1) in
      (match b with
      | Instr.Dmb_ishst | Instr.Lwsync | Instr.Eieio | Instr.Fence_rel
      | Instr.Fence_acq_rel ->
          (* Normalise: a marker with nothing before it orders
             nothing (and would wedge full barriers waiting on an
             empty buffer). *)
          buffers.(tid) <- normalise_buffer (buffers.(tid) @ [ Bmarker ])
      | Instr.Dmb_ish | Instr.Dmb_ishld | Instr.Isb | Instr.Sync | Instr.Isync
      | Instr.Fence_acq | Instr.Fence_sc ->
          ());
      finish t
  | Instr.Store { src; addr; order } ->
      let value, loc =
        match (src, addr, values) with
        | Instr.Imm v, Instr.Imm l, [] -> (v, l)
        | Instr.Imm v, Instr.Reg _, [ l ] -> (v, l)
        | Instr.Reg _, Instr.Imm l, [ v ] -> (v, l)
        | Instr.Reg _, Instr.Reg _, [ v; l ] -> (v, l)
        | _ -> failwith "Relaxed: malformed store operands"
      in
      emit ~tid ~eid (Wmm_cert.Trace.Write { loc; value; order; rmw = false });
      if config.synchronous_stores then begin
        memory := IM.add loc value !memory;
        revoke_monitors loc
      end
      else
        buffers.(tid) <-
          buffers.(tid) @ [ Bstore { loc; value; release = order = Instr.Release; eid } ];
      finish (mark_executed ~store_value:value t eid ~result:value ~resolved_loc:loc)
  | Instr.Load { addr; order; _ } | Instr.Load_exclusive { addr; order; _ } ->
      let loc =
        match (addr, values) with
        | Instr.Imm l, [] -> l
        | Instr.Reg _, [ l ] -> l
        | _ -> failwith "Relaxed: malformed load operands"
      in
      let value =
        match forwardable_value t.window state.buffers.(tid) eid loc with
        | Some v -> v
        | None -> read_memory state.memory loc
      in
      emit ~tid ~eid (Wmm_cert.Trace.Read { loc; value; order });
      (match e.instr with
      | Instr.Load_exclusive _ -> monitors.(tid) <- Some loc
      | _ -> ());
      finish (mark_executed t eid ~result:value ~resolved_loc:loc)
  | Instr.Store_exclusive { src; addr; order; _ } ->
      let value, loc =
        match (src, addr, values) with
        | Instr.Imm v, Instr.Imm l, [] -> (v, l)
        | Instr.Imm v, Instr.Reg _, [ l ] -> (v, l)
        | Instr.Reg _, Instr.Imm l, [ v ] -> (v, l)
        | Instr.Reg _, Instr.Reg _, [ v; l ] -> (v, l)
        | _ -> failwith "Relaxed: malformed store-exclusive operands"
      in
      if monitors.(tid) = Some loc then begin
        (* Success: the exclusive write commits through the coherence
           layer immediately, revoking competing monitors. *)
        emit ~tid ~eid (Wmm_cert.Trace.Write { loc; value; order; rmw = true });
        memory := IM.add loc value !memory;
        monitors.(tid) <- None;
        revoke_monitors loc;
        finish (mark_executed ~store_value:value t eid ~result:0 ~resolved_loc:loc)
      end
      else begin
        monitors.(tid) <- None;
        finish (mark_executed t eid ~result:1 ~resolved_loc:(-1))
      end

(* ------------------------------------------------------------------ *)
(* Store buffer drains.                                                *)
(* ------------------------------------------------------------------ *)

(* A buffered store may not become globally visible while an older
   same-address (or unresolved-address) load is still pending in the
   window: draining it would let that load read a program-order-later
   value, violating coherence (CoWR). *)
let blocked_by_older_load window entry_eid entry_loc =
  List.exists
    (fun o ->
      is_load o && (not o.executed) && o.eid < entry_eid
      &&
      match pending_address window o with
      | None -> true
      | Some l -> l = entry_loc)
    window

let drainable_indices config window buffer =
  let buffer = normalise_buffer buffer in
  match buffer with
  | [] -> []
  | _ when config.fifo_buffer -> (
      match buffer with
      | Bstore { eid; loc; _ } :: _ when not (blocked_by_older_load window eid loc) -> [ 0 ]
      | _ -> [])
  | _ ->
      (* Any store before the first marker may drain, except when an
         earlier entry targets the same location (per-location FIFO),
         a release entry intervenes (release = full marker), or an
         older same-address load is still pending. *)
      let rec candidates idx seen_locs acc = function
        | [] -> List.rev acc
        | Bmarker :: _ -> List.rev acc
        | Bstore { release = true; loc; eid; _ } :: _ ->
            (* A release store may drain only if it is first. *)
            let acc =
              if idx = 0 && not (blocked_by_older_load window eid loc) then idx :: acc
              else acc
            in
            List.rev acc
        | Bstore { loc; eid; _ } :: rest ->
            let acc =
              if List.mem loc seen_locs || blocked_by_older_load window eid loc then acc
              else idx :: acc
            in
            candidates (idx + 1) (loc :: seen_locs) acc rest
      in
      candidates 0 [] [] buffer

let drain_at config state tid idx =
  let buffer = normalise_buffer state.buffers.(tid) in
  let rec remove i = function
    | [] -> failwith "Relaxed: drain index out of range"
    | b :: rest ->
        if i = 0 then (b, rest)
        else begin
          let removed, remaining = remove (i - 1) rest in
          (removed, b :: remaining)
        end
  in
  let removed, remaining = remove idx buffer in
  match removed with
  | Bmarker -> failwith "Relaxed: draining a marker"
  | Bstore { loc; value; _ } ->
      let buffers = Array.copy state.buffers in
      buffers.(tid) <- normalise_buffer remaining;
      let monitors = Array.copy state.monitors in
      Array.iteri
        (fun i m -> if i <> tid && m = Some loc then monitors.(i) <- None)
        monitors;
      ignore config;
      { state with buffers; memory = IM.add loc value state.memory; monitors }

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)
(* ------------------------------------------------------------------ *)

let enabled_actions config state =
  let actions = ref [] in
  Array.iteri
    (fun tid t ->
      List.iter
        (fun e ->
          if (not e.executed) && can_execute config t state.buffers.(tid) e then
            actions := Execute (tid, e.eid) :: !actions)
        t.window;
      List.iter
        (fun idx -> actions := Drain (tid, idx) :: !actions)
        (drainable_indices config t.window state.buffers.(tid)))
    state.threads;
  List.rev !actions

let apply_action ?emit config (program : Program.t) state = function
  | Execute (tid, eid) ->
      execute_entry ?emit config program.Program.threads.(tid) state tid eid
  | Drain (tid, idx) -> drain_at config state tid idx

let initial_state (program : Program.t) config =
  let memory =
    List.fold_left
      (fun acc l -> IM.add l (Program.initial_value program l) acc)
      IM.empty (Program.locations program)
  in
  let threads =
    Array.map
      (fun _ ->
        { pc = 0; next_eid = 0; window = []; bindings = IM.empty; written = IM.empty })
      program.Program.threads
  in
  Array.iteri
    (fun tid t -> threads.(tid) <- fetch config program.Program.threads.(tid) t)
    threads;
  {
    threads;
    buffers = Array.map (fun _ -> []) program.Program.threads;
    memory;
    monitors = Array.map (fun _ -> None) program.Program.threads;
  }

let finished state =
  Array.for_all (fun t -> t.window = []) state.threads
  && Array.for_all (fun b -> normalise_buffer b = []) state.buffers

let outcome_of_state (program : Program.t) state =
  let registers =
    Array.to_list state.threads
    |> List.mapi (fun tid t ->
           IM.fold
             (fun r () acc ->
               let v =
                 match IM.find_opt r t.bindings with
                 | Some (Value v) -> v
                 | Some (Producer _) | None -> 0
               in
               ((tid, r), v) :: acc)
             t.written [])
    |> List.concat |> List.sort compare
  in
  let memory =
    List.map (fun l -> (l, read_memory state.memory l)) (Program.locations program)
  in
  { registers; memory }

let run_internal ?emit config ~seed (program : Program.t) =
  (match Program.validate program with Ok () -> () | Error m -> invalid_arg m);
  let rng = Rng.create seed in
  let rec go state steps =
    if steps > 100_000 then failwith "Relaxed.run: step limit exceeded";
    match enabled_actions config state with
    | [] ->
        if finished state then outcome_of_state program state
        else failwith "Relaxed.run: machine deadlocked"
    | actions ->
        let action = Rng.choose rng (Array.of_list actions) in
        go (apply_action ?emit config program state action) (steps + 1)
  in
  go (initial_state program config) 0

let run config ~seed program = run_internal config ~seed program

let run_traced config ~seed (program : Program.t) =
  let traces = Array.map (fun _ -> ref []) program.Program.threads in
  let emit ~tid ~eid action = traces.(tid) := (eid, action) :: !(traces.(tid)) in
  let outcome = run_internal ~emit config ~seed program in
  let per_thread =
    Array.map
      (fun entries ->
        List.sort (fun (a, _) (b, _) -> compare a b) !entries |> List.map snd)
      traces
  in
  (outcome, per_thread)

let collect config ~seed ~iterations program =
  let table = Hashtbl.create 64 in
  for i = 0 to iterations - 1 do
    if i land 63 = 0 then Cancel.check_ambient ();
    let o = run config ~seed:(seed + (i * 7919)) program in
    let current = try Hashtbl.find table o with Not_found -> 0 in
    Hashtbl.replace table o (current + 1)
  done;
  Hashtbl.fold (fun o n acc -> (o, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare_outcome a b)

let enumerate ?(max_states = 500_000) config (program : Program.t) =
  (match Program.validate program with Ok () -> () | Error m -> invalid_arg m);
  let seen = Hashtbl.create 4096 in
  let outcomes = Hashtbl.create 64 in
  let visited = ref 0 in
  let key state =
    Marshal.to_string
      ( Array.map (fun t -> (t.pc, t.window, IM.bindings t.bindings)) state.threads,
        state.buffers,
        IM.bindings state.memory,
        state.monitors )
      []
  in
  let rec explore state =
    let k = key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      incr visited;
      if !visited land 1023 = 0 then Cancel.check_ambient ();
      if !visited > max_states then failwith "Relaxed.enumerate: state limit exceeded";
      match enabled_actions config state with
      | [] ->
          if finished state then Hashtbl.replace outcomes (outcome_of_state program state) ()
          else failwith "Relaxed.enumerate: machine deadlocked"
      | actions ->
          List.iter (fun a -> explore (apply_action config program state a)) actions
    end
  in
  explore (initial_state program config);
  Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] |> List.sort compare_outcome
