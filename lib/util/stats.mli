(** Descriptive statistics and Student-t confidence intervals.

    The paper reports geometric means of six or more samples with 95%
    confidence intervals from the Student t-distribution, and
    compounds errors of comparative (ratio) results pessimistically:
    "comparative minimum is test case minimum divided by base case
    maximum".  This module implements exactly those computations. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples.  The paper uses this
    to reduce the impact of outliers when aggregating run times. *)

val variance : float array -> float
(** Unbiased sample variance (ddof = 1).  Needs two or more samples. *)

val std : float array -> float
(** Sample standard deviation. *)

val std_error : float array -> float
(** Standard error of the mean: [std / sqrt n]. *)

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]], linear
    interpolation between order statistics. *)

val median_of_means : ?buckets:int -> float array -> float
(** Robust location estimate: partition the samples into [buckets]
    contiguous groups (default [sqrt n]), take each group's mean, and
    return the median of those means.  A bounded number of corrupted
    samples can poison at most their own buckets, which the median
    then discards. *)

val mad : float array -> float
(** Median absolute deviation from the median (unscaled).  Multiply
    by 1.4826 for a robust standard-deviation estimate under
    normality. *)

val reject_outliers : ?threshold:float -> float array -> float array
(** Drop samples whose modified z-score
    [|x - median| / (1.4826 * mad)] exceeds [threshold] (default
    3.5).  Arrays of fewer than four samples, zero-MAD arrays, and
    rejections that would leave fewer than two samples are returned
    unchanged (as a copy): the caller always gets a usable sample
    set. *)

val minimum : float array -> float

val maximum : float array -> float

val log_gamma : float -> float
(** Natural log of the gamma function (Lanczos approximation),
    accurate to ~1e-13 for positive arguments. *)

val incomplete_beta : a:float -> b:float -> x:float -> float
(** Regularised incomplete beta function I_x(a, b), by continued
    fraction. *)

val t_cdf : df:float -> float -> float
(** Student t cumulative distribution function. *)

val t_critical : confidence:float -> df:float -> float
(** Two-sided critical value: [t_critical ~confidence:0.95 ~df:5] is
    the t with [P(|T| <= t) = 0.95] for 5 degrees of freedom
    (~2.5706). *)

type interval = { lo : float; hi : float }
(** A confidence interval. *)

val confidence_interval : ?confidence:float -> float array -> interval
(** Two-sided Student-t confidence interval on the arithmetic mean
    (default 95%).  Needs two or more samples. *)

val geometric_confidence_interval : ?confidence:float -> float array -> interval
(** Confidence interval on the geometric mean, computed in log space
    as the paper's tooling does. *)

type summary = {
  n : int;
  gmean : float;
  amean : float;
  ci : interval;  (** 95% CI on the geometric mean. *)
  smin : float;
  smax : float;
}
(** One benchmark result cell: everything the harness reports. *)

val summarise : ?confidence:float -> float array -> summary

val ratio_summary : test:summary -> base:summary -> summary
(** Comparative (relative-performance) result.  Point estimate is the
    ratio of geometric means; errors compound pessimistically per the
    paper: minimum = test minimum / base maximum, maximum = test
    maximum / base minimum, and the CI compounds likewise. *)

val relative_std_error : value:float -> error:float -> float
(** [error / |value|]; the paper reports fit variance as a percentage
    of the fitted parameter (e.g. "k = 0.00277 +- 2.5%"). *)
