type result = {
  params : float array;
  std_errors : float array;
  covariance : Linalg.matrix;
  residual_ss : float;
  iterations : int;
  converged : bool;
}

let residuals f params xs ys =
  Array.init (Array.length xs) (fun i -> ys.(i) -. f params xs.(i))

(* Weighted residuals and Jacobian rows are scaled by sqrt(w_i), so
   the plain least-squares machinery below minimises
   sum_i w_i * (ys_i - f(xs_i))^2 unchanged. *)
let scaled_residuals ?weights f params xs ys =
  let r = residuals f params xs ys in
  (match weights with
  | None -> ()
  | Some w ->
      if Array.length w <> Array.length xs then
        invalid_arg "Fit: weights/xs length mismatch";
      Array.iteri (fun i wi -> r.(i) <- sqrt (Float.max 0. wi) *. r.(i)) w);
  r

let sum_squares r = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. r

(* Central-difference Jacobian of the residual vector with respect to
   the parameters.  The step scales with the parameter magnitude so
   tiny sensitivities (k ~ 1e-3) are differentiated accurately. *)
let jacobian ?weights f params xs =
  let n = Array.length xs and m = Array.length params in
  let j = Linalg.make n m 0. in
  for p = 0 to m - 1 do
    let h = Float.max 1e-10 (1e-6 *. abs_float params.(p)) in
    let plus = Array.copy params and minus = Array.copy params in
    plus.(p) <- params.(p) +. h;
    minus.(p) <- params.(p) -. h;
    for i = 0 to n - 1 do
      let w = match weights with None -> 1. | Some w -> sqrt (Float.max 0. w.(i)) in
      (* Residual is y - f, so d(residual)/dp = -df/dp. *)
      j.(i).(p) <- -.w *. (f plus xs.(i) -. f minus xs.(i)) /. (2. *. h)
    done
  done;
  j

let covariance_of ?weights f params xs ys =
  let n = Array.length xs and m = Array.length params in
  let j = jacobian ?weights f params xs in
  let jt = Linalg.transpose j in
  let jtj = Linalg.mat_mul jt j in
  let rss = sum_squares (scaled_residuals ?weights f params xs ys) in
  let dof = max 1 (n - m) in
  let s2 = rss /. float_of_int dof in
  match Linalg.invert jtj with
  | inv -> Array.map (Array.map (fun v -> v *. s2)) inv
  | exception Failure _ -> Linalg.make m m nan

let curve_fit ?(max_iterations = 200) ?(tolerance = 1e-12) ?weights ~f ~xs ~ys ~init () =
  let n = Array.length xs and m = Array.length init in
  if n <> Array.length ys then invalid_arg "Fit.curve_fit: xs/ys length mismatch";
  if n < m then invalid_arg "Fit.curve_fit: fewer points than parameters";
  let params = Array.copy init in
  let lambda = ref 1e-3 in
  let rss = ref (sum_squares (scaled_residuals ?weights f params xs ys)) in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let j = jacobian ?weights f params xs in
    let r = scaled_residuals ?weights f params xs ys in
    let jt = Linalg.transpose j in
    let jtj = Linalg.mat_mul jt j in
    let g = Linalg.mat_vec jt r in
    (* Negative gradient of 1/2 rss is J^T r with our sign convention
       for the residual Jacobian; the LM step solves
       (J^T J + lambda diag(J^T J)) delta = J^T r. *)
    let step_ok = ref false in
    let attempts = ref 0 in
    while (not !step_ok) && !attempts < 30 do
      incr attempts;
      let damped = Linalg.copy jtj in
      for i = 0 to m - 1 do
        let d = jtj.(i).(i) in
        damped.(i).(i) <- d +. (!lambda *. if d > 0. then d else 1.)
      done;
      match Linalg.solve damped g with
      | delta ->
          let trial = Array.mapi (fun i p -> p -. delta.(i)) params in
          let trial_rss = sum_squares (scaled_residuals ?weights f trial xs ys) in
          if Float.is_finite trial_rss && trial_rss <= !rss then begin
            let improvement = (!rss -. trial_rss) /. Float.max !rss 1e-300 in
            Array.blit trial 0 params 0 m;
            rss := trial_rss;
            lambda := Float.max 1e-12 (!lambda /. 10.);
            step_ok := true;
            if improvement < tolerance then converged := true
          end
          else lambda := !lambda *. 10.
      | exception Failure _ -> lambda := !lambda *. 10.
    done;
    if not !step_ok then converged := true
  done;
  let covariance = covariance_of ?weights f params xs ys in
  let std_errors =
    Array.init m (fun i ->
        let v = covariance.(i).(i) in
        if Float.is_finite v && v >= 0. then sqrt v else nan)
  in
  {
    params;
    std_errors;
    covariance;
    residual_ss = !rss;
    iterations = !iterations;
    converged = !converged;
  }

(* Iteratively reweighted least squares with the Huber psi: residuals
   within delta robust standard deviations keep weight 1, larger ones
   are down-weighted proportionally to 1/|r|.  The robust scale is
   re-estimated each round from the median absolute residual. *)
let huber_fit ?(max_iterations = 200) ?(tolerance = 1e-12) ?(delta = 1.345) ~f ~xs ~ys
    ~init () =
  let n = Array.length xs in
  let weights = Array.make n 1. in
  let result = ref (curve_fit ~max_iterations ~tolerance ~f ~xs ~ys ~init ()) in
  let rounds = ref 0 in
  let settled = ref false in
  while (not !settled) && !rounds < 20 do
    incr rounds;
    let abs_r = Array.map abs_float (residuals f !result.params xs ys) in
    let scale = 1.4826 *. Stats.median abs_r in
    if scale <= 0. then settled := true
    else begin
      let changed = ref false in
      Array.iteri
        (fun i ri ->
          let u = ri /. scale in
          let w = if u <= delta then 1. else delta /. u in
          if abs_float (w -. weights.(i)) > 1e-3 then changed := true;
          weights.(i) <- w)
        abs_r;
      if not !changed then settled := true
      else
        result :=
          curve_fit ~max_iterations ~tolerance ~weights ~f ~xs ~ys
            ~init:!result.params ()
    end
  done;
  !result

let relative_error_percent result i =
  100. *. Stats.relative_std_error ~value:result.params.(i) ~error:result.std_errors.(i)
