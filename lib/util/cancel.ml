type t = {
  flag : string option Atomic.t;
  deadline : float option;
  parent : t option;
}

exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled reason -> Some ("Cancel.Cancelled(" ^ reason ^ ")")
    | _ -> None)

let never = { flag = Atomic.make None; deadline = None; parent = None }

let create ?deadline ?parent () = { flag = Atomic.make None; deadline; parent }

let cancel t ~reason =
  if t == never then invalid_arg "Cancel.cancel: never token";
  ignore (Atomic.compare_and_set t.flag None (Some reason))

let rec cancelled t =
  match Atomic.get t.flag with
  | Some _ as r -> r
  | None -> (
      match t.deadline with
      | Some d when Unix.gettimeofday () > d ->
          (* Latch, so the reason is stable and later checks are a
             single atomic load. *)
          ignore (Atomic.compare_and_set t.flag None (Some "deadline"));
          Atomic.get t.flag
      | _ -> ( match t.parent with None -> None | Some p -> cancelled p))

let check t =
  match cancelled t with None -> () | Some reason -> raise (Cancelled reason)

let deadline t =
  let rec go acc t =
    let acc =
      match (acc, t.deadline) with
      | None, d -> d
      | acc, None -> acc
      | Some a, Some b -> Some (Float.min a b)
    in
    match t.parent with None -> acc | Some p -> go acc p
  in
  go None t

(* Ambient token, per-domain.  The engine routes every task through a
   workqueue worker domain (one task at a time per domain), so DLS is
   a safe stand-in for the thread-local storage the stdlib lacks. *)
let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> never)

let with_ambient t f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f

let check_ambient () = check (Domain.DLS.get ambient)
