(** Non-linear least squares curve fitting (Levenberg-Marquardt).

    The paper fits its sensitivity model with scipy's [curve_fit] and
    reports the estimated variance of each fit; this module provides
    the same facility: an LM optimiser with a numerically estimated
    Jacobian and a parameter covariance estimate [(J^T J)^-1 * s^2]
    where [s^2] is the residual variance. *)

type result = {
  params : float array;  (** Fitted parameter vector. *)
  std_errors : float array;
      (** One standard error per parameter, from the covariance
          diagonal. *)
  covariance : Linalg.matrix;
  residual_ss : float;  (** Sum of squared residuals at the optimum. *)
  iterations : int;
  converged : bool;
      (** False when the iteration limit was reached before the
          relative improvement fell under the tolerance. *)
}

val curve_fit :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?weights:float array ->
  f:(float array -> float -> float) ->
  xs:float array ->
  ys:float array ->
  init:float array ->
  unit ->
  result
(** [curve_fit ~f ~xs ~ys ~init ()] minimises
    [sum_i (ys.(i) - f params xs.(i))^2] starting from [init].
    With [weights] the objective becomes
    [sum_i w_i * (ys.(i) - f params xs.(i))^2] (a zero weight removes
    the point entirely).  Raises [Invalid_argument] if [xs], [ys] or
    [weights] differ in length or there are fewer points than
    parameters. *)

val huber_fit :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?delta:float ->
  f:(float array -> float -> float) ->
  xs:float array ->
  ys:float array ->
  init:float array ->
  unit ->
  result
(** Robust fit by iteratively reweighted least squares with Huber
    weights: residuals within [delta] (default 1.345, 95% efficiency
    under normality) robust standard deviations of zero keep full
    weight, larger residuals are down-weighted by [delta * s / |r|].
    Outlier points therefore pull on the fit with bounded force
    instead of quadratically.  Degenerates to {!curve_fit} when all
    residuals are small. *)

val relative_error_percent : result -> int -> float
(** [relative_error_percent r i] is parameter [i]'s standard error as
    a percentage of its value, the "k = 0.00277 +- 2.5%" form used in
    the paper's figures. *)
