(** Cooperative cancellation tokens.

    A token is a cheap, shareable flag plus an optional absolute
    deadline; long-running loops poll it ({!check}) at points where
    abandoning work is safe.  Tokens chain: cancelling a parent
    cancels every descendant.  Nothing here preempts — a task that
    never polls is never interrupted — which is exactly the contract
    the deterministic engine needs (a cancelled task publishes no
    result at all rather than a partial one).

    An {e ambient} token can be installed for the current domain so
    that deep library code (the explorer's backtracking loop, the
    operational machine's iteration loop) can poll without threading
    a token through every signature.  Ambient storage is per-domain
    ({!Domain.DLS}), so installers must ensure one logical task per
    domain at a time — the engine's workqueue guarantees this. *)

type t

exception Cancelled of string
(** Raised by {!check} / {!check_ambient} once a token is cancelled.
    Carries the reason.  Deliberately not an I/O-style exception so
    retry layers treat it as permanent. *)

val never : t
(** A token that can never fire.  The default everywhere. *)

val create : ?deadline:float -> ?parent:t -> unit -> t
(** [create ?deadline ?parent ()] makes a fresh token.  [deadline] is
    an absolute time ({!Unix.gettimeofday} scale); once passed, the
    token reads as cancelled with reason ["deadline"].  [parent]
    chains: this token is cancelled whenever [parent] is. *)

val cancel : t -> reason:string -> unit
(** Fire the token.  Idempotent; first reason wins. *)

val cancelled : t -> string option
(** [Some reason] once fired (explicitly, via deadline expiry, or via
    an ancestor), [None] otherwise. *)

val check : t -> unit
(** Raise {!Cancelled} if the token has fired.  O(chain depth); cheap
    enough for masked polling in hot loops. *)

val deadline : t -> float option
(** The effective absolute deadline: the earliest along the parent
    chain, if any. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient t f] installs [t] as the current domain's ambient
    token for the duration of [f], restoring the previous one after
    (also on exception). *)

val check_ambient : unit -> unit
(** {!check} on the installed ambient token; no-op when none is
    installed.  This is the call hot loops embed behind a counter
    mask. *)
