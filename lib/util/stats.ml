let check_nonempty name samples =
  if Array.length samples = 0 then invalid_arg (name ^ ": empty sample array")

let mean samples =
  check_nonempty "Stats.mean" samples;
  Array.fold_left ( +. ) 0. samples /. float_of_int (Array.length samples)

let geometric_mean samples =
  check_nonempty "Stats.geometric_mean" samples;
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive sample";
        acc +. log x)
      0. samples
  in
  exp (log_sum /. float_of_int (Array.length samples))

let variance samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Stats.variance: needs at least two samples";
  let m = mean samples in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. samples in
  ss /. float_of_int (n - 1)

let std samples = sqrt (variance samples)

let std_error samples = std samples /. sqrt (float_of_int (Array.length samples))

let sorted samples =
  let copy = Array.copy samples in
  Array.sort compare copy;
  copy

let percentile samples p =
  check_nonempty "Stats.percentile" samples;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0, 100]";
  let s = sorted samples in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median samples = percentile samples 50.

let median_of_means ?buckets samples =
  check_nonempty "Stats.median_of_means" samples;
  let n = Array.length samples in
  let b =
    match buckets with
    | Some b when b < 1 -> invalid_arg "Stats.median_of_means: buckets must be positive"
    | Some b -> min b n
    | None -> max 1 (int_of_float (sqrt (float_of_int n)))
  in
  let means =
    Array.init b (fun i ->
        let lo = i * n / b and hi = (i + 1) * n / b in
        let acc = ref 0. in
        for j = lo to hi - 1 do
          acc := !acc +. samples.(j)
        done;
        !acc /. float_of_int (hi - lo))
  in
  median means

let mad samples =
  check_nonempty "Stats.mad" samples;
  let m = median samples in
  median (Array.map (fun x -> abs_float (x -. m)) samples)

(* 1.4826 makes the MAD a consistent estimator of the standard
   deviation under normality, so [threshold] reads as a z-score. *)
let mad_scale = 1.4826

let reject_outliers ?(threshold = 3.5) samples =
  check_nonempty "Stats.reject_outliers" samples;
  let n = Array.length samples in
  if n < 4 then Array.copy samples
  else begin
    let m = median samples in
    let s = mad_scale *. mad samples in
    if s <= 0. then Array.copy samples
    else begin
      let kept =
        Array.of_list
          (List.filter
             (fun x -> abs_float (x -. m) <= threshold *. s)
             (Array.to_list samples))
      in
      (* Never reject down to a degenerate sample: the summary layer
         needs at least two points for a confidence interval. *)
      if Array.length kept < 2 then Array.copy samples else kept
    end
  end

let minimum samples =
  check_nonempty "Stats.minimum" samples;
  Array.fold_left min samples.(0) samples

let maximum samples =
  check_nonempty "Stats.maximum" samples;
  Array.fold_left max samples.(0) samples

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
     -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
     1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Stats.log_gamma: non-positive argument";
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Continued fraction for the incomplete beta function (Numerical
   Recipes betacf), evaluated with the modified Lentz method. *)
let betacf a b x =
  let max_iter = 200 and eps = 3e-14 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.) < eps then continue := false;
    incr m
  done;
  !h

let incomplete_beta ~a ~b ~x =
  if x < 0. || x > 1. then invalid_arg "Stats.incomplete_beta: x outside [0, 1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let ln_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b +. (a *. log x) +. (b *. log (1. -. x))
    in
    let front = exp ln_front in
    (* Use the symmetry transformation for faster convergence. *)
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)
  end

let t_cdf ~df x =
  if df <= 0. then invalid_arg "Stats.t_cdf: df must be positive";
  let ib = incomplete_beta ~a:(df /. 2.) ~b:0.5 ~x:(df /. (df +. (x *. x))) in
  if x >= 0. then 1. -. (0.5 *. ib) else 0.5 *. ib

let t_critical ~confidence ~df =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Stats.t_critical: confidence outside (0, 1)";
  let target = 1. -. ((1. -. confidence) /. 2.) in
  (* Bisection: the CDF is monotone, and [0, 1000] covers any df and
     confidence level of practical interest. *)
  let lo = ref 0. and hi = ref 1000. in
  for _ = 1 to 200 do
    let mid = (!lo +. !hi) /. 2. in
    if t_cdf ~df mid < target then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.

type interval = { lo : float; hi : float }

let confidence_interval ?(confidence = 0.95) samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Stats.confidence_interval: needs at least two samples";
  let m = mean samples in
  let half = t_critical ~confidence ~df:(float_of_int (n - 1)) *. std_error samples in
  { lo = m -. half; hi = m +. half }

let geometric_confidence_interval ?(confidence = 0.95) samples =
  let logs = Array.map log samples in
  let ci = confidence_interval ~confidence logs in
  { lo = exp ci.lo; hi = exp ci.hi }

type summary = {
  n : int;
  gmean : float;
  amean : float;
  ci : interval;
  smin : float;
  smax : float;
}

let summarise ?(confidence = 0.95) samples =
  check_nonempty "Stats.summarise" samples;
  let ci =
    if Array.length samples >= 2 then geometric_confidence_interval ~confidence samples
    else { lo = samples.(0); hi = samples.(0) }
  in
  {
    n = Array.length samples;
    gmean = geometric_mean samples;
    amean = mean samples;
    ci;
    smin = minimum samples;
    smax = maximum samples;
  }

let ratio_summary ~test ~base =
  {
    n = min test.n base.n;
    gmean = test.gmean /. base.gmean;
    amean = test.amean /. base.amean;
    ci = { lo = test.ci.lo /. base.ci.hi; hi = test.ci.hi /. base.ci.lo };
    smin = test.smin /. base.smax;
    smax = test.smax /. base.smin;
  }

let relative_std_error ~value ~error =
  if value = 0. then invalid_arg "Stats.relative_std_error: zero value";
  abs_float (error /. value)
