(** Paper Fig. 5: impact of increasing cost-function size when
    injected into all elemental memory barriers, for the eight JVM
    benchmarks on both architectures, with the fitted sensitivity k
    for each.

    Paper reference fits:
      h2         arm 0.00339+-6%  power 0.00251+-4%
      lusearch   arm 0.00213+-6%  power 0.00118+-5%
      spark      arm 0.00870+-6%  power 0.01227+-7%
      sunflow    arm 0.00187+-6%  power 0.00164+-7%
      tomcat     arm 0.00250+-3%  power 0.00397+-3%
      tradebeans arm 0.00262+-7%  power 0.00385+-2%
      tradesoap  arm 0.00238+-4%  power 0.00314+-2%
      xalan      arm 0.00606+-3%  power 0.00152+-14% (unstable)      *)

open Wmm_isa
open Wmm_util
open Wmm_costfn
open Wmm_workload
open Wmm_core

let paper_k = function
  | "h2", Arch.Armv8 -> 0.00339
  | "h2", Arch.Power7 -> 0.00251
  | "lusearch", Arch.Armv8 -> 0.00213
  | "lusearch", Arch.Power7 -> 0.00118
  | "spark", Arch.Armv8 -> 0.0087
  | "spark", Arch.Power7 -> 0.01227
  | "sunflow", Arch.Armv8 -> 0.00187
  | "sunflow", Arch.Power7 -> 0.00164
  | "tomcat", Arch.Armv8 -> 0.0025
  | "tomcat", Arch.Power7 -> 0.00397
  | "tradebeans", Arch.Armv8 -> 0.00262
  | "tradebeans", Arch.Power7 -> 0.00385
  | "tradesoap", Arch.Armv8 -> 0.00238
  | "tradesoap", Arch.Power7 -> 0.00314
  | "xalan", Arch.Armv8 -> 0.00606
  | "xalan", Arch.Power7 -> 0.00152
  | _ -> nan

let sweep_benchmark batch ?robust arch (profile : Profile.t) =
  let light = Exp_common.light_for arch in
  Experiment.sweep_deferred batch ~samples:(Exp_common.samples ()) ~light
    ~iteration_counts:(Exp_common.sweep_counts ())
    ?robust ~code_path:"all elemental barriers" ~base:(Exp_common.jvm_nop_base arch)
    ~inject:(fun cf ->
      Exp_common.jvm_platform ~inject_all:[ Cost_function.uop cf ] arch)
    profile

(* The full 8-benchmark x 2-architecture matrix is submitted as one
   engine batch, so every (benchmark, arch, cost size) sample runs as
   an independent task across the worker domains. *)
let all_sweeps ?robust engine =
  let batch = Experiment.batch () in
  let pending =
    List.concat_map
      (fun arch ->
        List.map (fun p -> (arch, sweep_benchmark batch ?robust arch p)) Dacapo.all)
      Arch.all
  in
  Experiment.run_batch engine batch;
  List.map (fun (arch, finish) -> (arch, finish ())) pending

let report ?engine ?robust () =
  let engine =
    match engine with Some e -> e | None -> Wmm_engine.Engine.sequential ()
  in
  let sweeps = all_sweeps ?robust engine in
  let fits = Table.create [ "benchmark"; "arch"; "fitted k"; "paper k"; "stable?" ] in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Exp_common.header "Figure 5: sensitivity to all elemental barriers (JVM)");
  Buffer.add_char buffer '\n';
  List.iter
    (fun (arch, (sweep : Experiment.sweep)) ->
      Table.add_row fits
        [
          sweep.Experiment.benchmark;
          Arch.name arch;
          Exp_common.fmt_sweep_fit sweep;
          Table.float_cell ~decimals:5 (paper_k (sweep.Experiment.benchmark, arch));
          (if not (Sensitivity.available sweep.Experiment.fit) then "degraded"
           else if Sensitivity.well_suited sweep.Experiment.fit then "yes"
           else "unstable");
        ])
    sweeps;
  Buffer.add_string buffer (Table.render fits);
  Buffer.add_string buffer "\n\nRelative performance vs cost function size (ns):\n";
  List.iter
    (fun (arch, (sweep : Experiment.sweep)) ->
      Buffer.add_string buffer
        (Printf.sprintf "%s/%s: " sweep.Experiment.benchmark (Arch.name arch));
      List.iter
        (fun (pt : Experiment.sweep_point) ->
          Buffer.add_string buffer
            (Printf.sprintf "(%.1f, %.3f) " pt.Experiment.cost_ns
               pt.Experiment.relative.Stats.gmean))
        sweep.Experiment.points;
      Buffer.add_string buffer
        (Table.sparkline
           (Array.of_list
              (List.map
                 (fun (pt : Experiment.sweep_point) -> pt.Experiment.relative.Stats.gmean)
                 sweep.Experiment.points)));
      Buffer.add_char buffer '\n')
    sweeps;
  Buffer.contents buffer
