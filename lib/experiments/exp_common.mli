open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

(** Shared plumbing for the per-figure experiment modules: platform
    builders, formatting, and the fast-mode switch. *)

val fast : unit -> bool
(** True when the WMM_FAST environment variable is set: experiments
    drop to two samples and a reduced sweep so the full suite runs in
    seconds (used by tests). *)

val samples : unit -> int
(** 6 normally (the paper's "six or more samples"), 2 in fast mode. *)

val sweep_counts : unit -> int list
(** Cost-function iteration counts for sweeps: powers of two covering
    the paper's 2^0..2^8 ns axis (trimmed in fast mode). *)

val jvm_platform :
  ?mode:Jvm.mode ->
  ?lock_patch:bool ->
  ?overrides:(Barrier.elemental * Uop.t) list ->
  ?inject_all:Uop.t list ->
  ?inject:(Barrier.elemental * Uop.t list) list ->
  Arch.t ->
  Generate.platform

val kernel_platform :
  ?rbd:Kernel.rbd_strategy ->
  ?inject:(Kernel.macro * Uop.t list) list ->
  ?inject_all:Uop.t list ->
  Arch.t ->
  Generate.platform

val light_for : Arch.t -> bool
(** The scratch-register cost-function variant applies to the JVM on
    ARMv8 (x9 is available there). *)

val jvm_nop_base : Arch.t -> Generate.platform
(** The paper's base case: every elemental barrier padded with a nop
    sequence the size of the cost function. *)

val kernel_nop_base : Arch.t -> Generate.platform

val nop_uop : Arch.t -> light:bool -> Uop.t

val fmt_fit : Sensitivity.fit -> string
(** "k=0.00277 +-2.5%", or "(no fit: insufficient points)" for an
    {!Sensitivity.unavailable} fit from a degraded sweep. *)

val fmt_sweep_fit : Experiment.sweep -> string
(** {!fmt_fit} of the sweep's fit, annotated with the number of
    dropped (permanently failed) sweep points, if any. *)

val fmt_summary : Wmm_util.Stats.summary -> string
(** "0.9873 [0.9717, 1.0032]". *)

val fmt_pct_change : Wmm_util.Stats.summary -> string
(** Relative performance as a percentage change: "-1.9%". *)

val header : string -> string
(** Section banner for report output. *)
