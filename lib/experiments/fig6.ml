(** Paper Fig. 6: spark's sensitivity to each elemental memory
    barrier in turn.  StoreStore dominates on both architectures
    (paper: arm 0.00885, power 0.01333), with POWER showing very low
    LoadLoad / StoreLoad sensitivity (its port emits fewer of them).

    Paper reference fits:
      LoadLoad   arm 0.00580+-4%  power 0.00102+-3%
      LoadStore  arm 0.00592+-3%  power 0.00743+-7%
      StoreLoad  arm 0.00507+-4%  power 0.00093+-7%
      StoreStore arm 0.00885+-3%  power 0.01333+-4%                  *)

open Wmm_isa
open Wmm_util
open Wmm_costfn
open Wmm_platform
open Wmm_workload
open Wmm_core

let paper_k = function
  | Barrier.Load_load, Arch.Armv8 -> 0.0058
  | Barrier.Load_load, Arch.Power7 -> 0.00102
  | Barrier.Load_store, Arch.Armv8 -> 0.00592
  | Barrier.Load_store, Arch.Power7 -> 0.00743
  | Barrier.Store_load, Arch.Armv8 -> 0.00507
  | Barrier.Store_load, Arch.Power7 -> 0.00093
  | Barrier.Store_store, Arch.Armv8 -> 0.00885
  | Barrier.Store_store, Arch.Power7 -> 0.01333

let sweep_elemental batch ?robust arch elemental =
  let light = Exp_common.light_for arch in
  Experiment.sweep_deferred batch ~samples:(Exp_common.samples ()) ~light
    ~iteration_counts:(Exp_common.sweep_counts ())
    ?robust
    ~code_path:(Barrier.elemental_name elemental)
    ~base:
      (Exp_common.jvm_platform
         ~inject:[ (elemental, [ Exp_common.nop_uop arch ~light ]) ]
         arch)
    ~inject:(fun cf ->
      Exp_common.jvm_platform ~inject:[ (elemental, [ Cost_function.uop cf ]) ] arch)
    Dacapo.spark

let report ?engine ?robust () =
  let engine =
    match engine with Some e -> e | None -> Wmm_engine.Engine.sequential ()
  in
  let batch = Experiment.batch () in
  let pending =
    List.concat_map
      (fun arch ->
        List.map
          (fun elemental ->
            (arch, elemental, sweep_elemental batch ?robust arch elemental))
          Barrier.all_elementals)
      Arch.all
  in
  Experiment.run_batch engine batch;
  let table = Table.create [ "barrier"; "arch"; "fitted k"; "paper k" ] in
  List.iter
    (fun (arch, elemental, finish) ->
      let sweep = finish () in
      Table.add_row table
        [
          Barrier.elemental_name elemental;
          Arch.name arch;
          Exp_common.fmt_sweep_fit sweep;
          Table.float_cell ~decimals:5 (paper_k (elemental, arch));
        ])
    pending;
  String.concat "\n"
    [
      Exp_common.header "Figure 6: spark sensitivity per elemental barrier";
      "StoreStore should dominate on both architectures.";
      Table.render table;
    ]
