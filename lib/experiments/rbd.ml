(** Paper section 4.3.1: the read_barrier_depends investigation.

    - Fig. 9: sensitivity of the six most macro-sensitive benchmarks
      to the read_barrier_depends code path.  Paper fits: ebizzy
      0.00106+-10%, xalan 0.00038+-10%, netperf_udp 0.00943+-8%,
      osm (avg) 0.00019+-10%, lmbench 0.00525+-10%, netperf_tcp
      0.00355+-10%.
    - Fig. 10: relative performance of the candidate
      read_barrier_depends implementations (base case, ctrl,
      ctrl+isb, dmb ishld, dmb ish, la/sr) on those benchmarks.
      ctrl+isb is unreasonable; dmb ishld / dmb ish are the best
      orderings; xalan actually improves with dmb ishld.
    - T6 (in-text): per-invocation costs inferred from lmbench (ctrl
      4.6, ctrl+isb 24.5, dmb ishld 10.7, dmb ish 11.0, la/sr 21.7
      ns) versus the mean over the other benchmarks (10.1, 24.5, 1.8,
      10.7, 15.9 ns): ctrl and dmb ishld diverge, revealing branch-
      prediction and buffer-state effects microbenchmarks miss. *)

open Wmm_isa
open Wmm_util
open Wmm_platform
open Wmm_workload
open Wmm_core

let arch = Arch.Armv8

let paper_k = function
  | "ebizzy" -> 0.00106
  | "xalan" -> 0.00038
  | "netperf_udp" -> 0.00943
  | "osm_stack" -> 0.00019
  | "lmbench" -> 0.00525
  | "netperf_tcp" -> 0.00355
  | _ -> nan

let subjects () =
  [
    Kernelbench.ebizzy;
    Kernelbench.xalan;
    Kernelbench.netperf_udp;
    Kernelbench.osm_stack;
    Kernelbench.lmbench;
    Kernelbench.netperf_tcp;
  ]

let rbd_sweep batch ?robust (profile : Profile.t) =
  Experiment.sweep_deferred batch ~samples:(Exp_common.samples ())
    ~iteration_counts:(Exp_common.sweep_counts ())
    ?robust ~code_path:"read_barrier_depends"
    ~base:
      (Exp_common.kernel_platform
         ~inject:[ (Kernel.Read_barrier_depends, [ Exp_common.nop_uop arch ~light:false ]) ]
         arch)
    ~inject:(fun cf ->
      Exp_common.kernel_platform
        ~inject:[ (Kernel.Read_barrier_depends, [ Wmm_costfn.Cost_function.uop cf ]) ]
        arch)
    profile

let fig9_deferred ?robust batch =
  let pending = List.map (fun p -> (p, rbd_sweep batch ?robust p)) (subjects ()) in
  fun () ->
    let table = Table.create [ "benchmark"; "fitted k"; "paper k" ] in
    let sweeps =
      List.map (fun (p, finish) -> (p, (finish () : Experiment.sweep))) pending
    in
    List.iter
      (fun ((p : Profile.t), (sweep : Experiment.sweep)) ->
        Table.add_row table
          [
            p.Profile.name;
            Exp_common.fmt_sweep_fit sweep;
            Table.float_cell ~decimals:5 (paper_k p.Profile.name);
          ])
      sweeps;
    (table, sweeps)

(* ------------------------------------------------------------------ *)
(* Fig. 10: candidate implementations.                                 *)
(* ------------------------------------------------------------------ *)

let strategies = Kernel.all_rbd_strategies

(* The base-case sample of each benchmark is shared by all five
   strategies: equal task keys are deduplicated inside the batch. *)
let fig10_deferred ?robust batch =
  let pending =
    List.map
      (fun (profile : Profile.t) ->
        let rels =
          List.filter_map
            (fun strategy ->
              if strategy = Kernel.Rbd_none then None
              else
                Some
                  ( strategy,
                    Experiment.relative_deferred batch
                      ~samples:(Exp_common.samples ())
                      ?robust
                      ~label:
                        (Printf.sprintf "fig10 %s / %s" profile.Profile.name
                           (Kernel.rbd_name strategy))
                      profile
                      ~base:(Exp_common.kernel_platform ~rbd:Kernel.Rbd_none arch)
                      ~test:(Exp_common.kernel_platform ~rbd:strategy arch) ))
            strategies
        in
        (profile, rels))
      (subjects ())
  in
  fun () ->
    let table =
      Table.create
        ("benchmark"
        :: List.map Kernel.rbd_name
             (List.filter (fun s -> s <> Kernel.Rbd_none) strategies))
    in
    let cells =
      List.map
        (fun ((profile : Profile.t), rels) ->
          let finished =
            List.map (fun (strategy, finish) -> (strategy, finish ())) rels
          in
          Table.add_row table
            (profile.Profile.name
            :: List.map
                 (fun (_, outcome) ->
                   match outcome with
                   | Ok rel -> Exp_common.fmt_pct_change rel
                   | Error _ -> "failed")
                 finished);
          ( profile,
            List.filter_map
              (fun (strategy, outcome) ->
                match outcome with Ok rel -> Some (strategy, rel) | Error _ -> None)
              finished ))
        pending
    in
    (table, cells)

(* ------------------------------------------------------------------ *)
(* T6: inferred per-invocation costs (eq. 2) per strategy.             *)
(* ------------------------------------------------------------------ *)

let paper_t6 = function
  | Kernel.Rbd_ctrl -> (4.6, 10.1)
  | Kernel.Rbd_ctrl_isb -> (24.5, 24.5)
  | Kernel.Rbd_dmb_ishld -> (10.7, 1.8)
  | Kernel.Rbd_dmb_ish -> (11.0, 10.7)
  | Kernel.Rbd_la_sr -> (21.7, 15.9)
  | Kernel.Rbd_none -> (0., 0.)

let t6 sweeps cells =
  let table =
    Table.create
      [ "strategy"; "a from lmbench (ns)"; "paper"; "mean a others (ns)"; "paper" ]
  in
  let fit_for name =
    let _, sweep =
      List.find (fun ((p : Profile.t), _) -> p.Profile.name = name) sweeps
    in
    sweep.Experiment.fit
  in
  List.iter
    (fun strategy ->
      if strategy <> Kernel.Rbd_none then begin
        (* Cells missing because their sample failed are excluded
           from the aggregates. *)
        let cost_for (profile : Profile.t) =
          match
            List.find_opt
              (fun ((p : Profile.t), _) ->
                p == profile || p.Profile.name = profile.Profile.name)
              cells
          with
          | None -> None
          | Some (_, rels) ->
              Option.map
                (Experiment.inferred_cost_ns (fit_for profile.Profile.name))
                (List.assoc_opt strategy rels)
        in
        let lmbench_cost =
          match cost_for Kernelbench.lmbench with Some c -> c | None -> nan
        in
        let others =
          List.filter
            (fun (p : Profile.t) -> p.Profile.name <> "lmbench")
            (subjects ())
        in
        let other_costs = List.filter_map cost_for others in
        let mean_others =
          if other_costs = [] then nan else Stats.mean (Array.of_list other_costs)
        in
        let paper_lm, paper_others = paper_t6 strategy in
        Table.add_row table
          [
            Kernel.rbd_name strategy;
            Table.float_cell ~decimals:1 lmbench_cost;
            Table.float_cell ~decimals:1 paper_lm;
            Table.float_cell ~decimals:1 mean_others;
            Table.float_cell ~decimals:1 paper_others;
          ]
      end)
    strategies;
  table

(* The paper aggregates lmbench as the arithmetic mean of its twelve
   sub-benchmarks after comparison to the base case; this table shows
   the parts individually for one strategy. *)
let lmbench_parts_deferred ?robust batch =
  let samples = if Exp_common.fast () then 2 else 4 in
  let pending =
    List.map
      (fun (part : Profile.t) ->
        ( part,
          Experiment.relative_deferred batch ~samples ?robust
            ~label:("lmbench part " ^ part.Profile.name)
            part
            ~base:(Exp_common.kernel_platform ~rbd:Kernel.Rbd_none arch)
            ~test:(Exp_common.kernel_platform ~rbd:Kernel.Rbd_dmb_ish arch) ))
      Kernelbench.lmbench_parts
  in
  fun () ->
    let table = Table.create [ "lmbench part"; "dmb ish vs base"; "change" ] in
    let changes =
      List.filter_map
        (fun ((part : Profile.t), finish) ->
          match finish () with
          | Ok rel ->
              Table.add_row table
                [
                  part.Profile.name; Exp_common.fmt_summary rel;
                  Exp_common.fmt_pct_change rel;
                ];
              Some rel.Wmm_util.Stats.gmean
          | Error msg ->
              Table.add_row table [ part.Profile.name; "failed: " ^ msg; "-" ];
              None)
        pending
    in
    let mean = Wmm_util.Stats.mean (Array.of_list changes) in
    Table.add_row table
      [ "arithmetic mean"; Printf.sprintf "%.4f" mean;
        Printf.sprintf "%+.1f%%" ((mean -. 1.) *. 100.) ];
    table

let report ?engine ?robust () =
  let engine =
    match engine with Some e -> e | None -> Wmm_engine.Engine.sequential ()
  in
  let batch = Experiment.batch () in
  let fig9_finish = fig9_deferred ?robust batch in
  let fig10_finish = fig10_deferred ?robust batch in
  let lmbench_finish = lmbench_parts_deferred ?robust batch in
  Experiment.run_batch engine batch;
  let fig9_table, sweeps = fig9_finish () in
  let fig10_table, cells = fig10_finish () in
  String.concat "\n"
    [
      Exp_common.header "Figure 9: sensitivity to read_barrier_depends";
      Table.render fig9_table;
      "";
      Exp_common.header "Figure 10: read_barrier_depends strategy comparison (vs base case)";
      Table.render fig10_table;
      "";
      Exp_common.header "In-text table: inferred per-invocation costs (eq. 2), lmbench vs others";
      Table.render (t6 sweeps cells);
      "Divergence between the two columns marks strategies with complex";
      "context-dependent behaviour (the paper highlights ctrl and dmb ishld).";
      "";
      Exp_common.header "lmbench sub-benchmarks (aggregated by arithmetic mean, as in the paper)";
      Table.render (lmbench_finish ());
    ]
