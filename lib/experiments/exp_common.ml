open Wmm_isa
open Wmm_platform
open Wmm_workload
open Wmm_core

let fast () = Sys.getenv_opt "WMM_FAST" <> None

let samples () = if fast () then 2 else 6

let sweep_counts () =
  if fast () then [ 4; 32; 128; 512 ] else [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]

let jvm_platform ?(mode = Jvm.Barriers) ?(lock_patch = false) ?(overrides = [])
    ?(inject_all = []) ?(inject = []) arch =
  let config = { (Jvm.default arch) with Jvm.mode; lock_patch; elemental_override = overrides } in
  let config = if inject_all = [] then config else Jvm.with_injection_all config inject_all in
  let config =
    List.fold_left (fun c (e, uops) -> Jvm.with_injection c e uops) config inject
  in
  Generate.Jvm_platform config

let kernel_platform ?(rbd = Kernel.Rbd_none) ?(inject = []) ?(inject_all = []) arch =
  let config = { (Kernel.default arch) with Kernel.rbd } in
  let config =
    List.fold_left (fun c (m, uops) -> Kernel.with_injection c m uops) config inject
  in
  let config =
    if inject_all = [] then config
    else
      List.fold_left (fun c m -> Kernel.with_injection c m inject_all) config
        Kernel.all_macros
  in
  Generate.Kernel_platform config

let light_for arch = arch = Arch.Armv8

let nop_uop arch ~light =
  let cf = Wmm_costfn.Cost_function.make ~light arch 1 in
  Wmm_costfn.Cost_function.nop_padding arch cf

let jvm_nop_base arch = jvm_platform ~inject_all:[ nop_uop arch ~light:(light_for arch) ] arch

let kernel_nop_base arch = kernel_platform ~inject_all:[ nop_uop arch ~light:false ] arch

let fmt_fit (fit : Sensitivity.fit) =
  if not (Sensitivity.available fit) then "(no fit: insufficient points)"
  else Printf.sprintf "k=%.5f +-%.1f%%" fit.Sensitivity.k fit.Sensitivity.k_error_percent

let fmt_sweep_fit (sweep : Experiment.sweep) =
  fmt_fit sweep.Experiment.fit
  ^
  if sweep.Experiment.dropped > 0 then
    Printf.sprintf " [%d point%s dropped]" sweep.Experiment.dropped
      (if sweep.Experiment.dropped = 1 then "" else "s")
  else ""

let fmt_summary (s : Wmm_util.Stats.summary) =
  Printf.sprintf "%.4f [%.4f, %.4f]" s.Wmm_util.Stats.gmean s.Wmm_util.Stats.ci.Wmm_util.Stats.lo
    s.Wmm_util.Stats.ci.Wmm_util.Stats.hi

let fmt_pct_change (s : Wmm_util.Stats.summary) =
  let pct = (s.Wmm_util.Stats.gmean -. 1.) *. 100. in
  Printf.sprintf "%+.1f%%" pct

let header title =
  let rule = String.make (String.length title + 8) '=' in
  Printf.sprintf "%s\n=== %s ===\n%s" rule title rule
