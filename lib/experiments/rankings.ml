(** Paper section 4.3: the Linux-kernel fixed-cost ranking
    experiments.

    - T5 (in-text): padding every macro with nops alongside its usual
      barriers costs a mean 1.9% across benchmarks, worst 6.6%
      (netperf).  All later kernel results compare against this
      nop-padded base case.
    - Fig. 7: sum of relative performance per macro across all
      benchmarks when a 1024-iteration cost function is injected into
      that macro alone.  smp_mb, read_once and read_barrier_depends
      have the most impact.
    - Fig. 8: the same data summed per benchmark: netperf_tcp,
      lmbench and netperf_udp are most sensitive; h2 and spark are
      almost completely insensitive (they coordinate concurrency
      inside the VM). *)

open Wmm_isa
open Wmm_util
open Wmm_platform
open Wmm_workload
open Wmm_core

let arch = Arch.Armv8

(* Fig. 8's eleven rows: osm_stack contributes an (avg) and a (max)
   reading from the same runs. *)
let benchmarks () = Kernelbench.all

let measures_of (p : Profile.t) =
  match p.Profile.measurement with
  | Profile.Response _ ->
      [ (p.Profile.name ^ " (avg)", Experiment.Response_mean);
        (p.Profile.name ^ " (max)", Experiment.Response_max) ]
  | Profile.Throughput -> [ (p.Profile.name, Experiment.Throughput) ]

(* ------------------------------------------------------------------ *)
(* T5: nop padding.                                                    *)
(* ------------------------------------------------------------------ *)

let nop_padding_deferred ?robust batch =
  let nops = Exp_common.nop_uop arch ~light:false in
  let pending =
    List.concat_map
      (fun (profile : Profile.t) ->
        List.map
          (fun (label, measure) ->
            ( label,
              Experiment.relative_deferred batch ~samples:(Exp_common.samples ())
                ~measure ?robust ~label:("t5 nop " ^ label) profile
                ~base:(Exp_common.kernel_platform arch)
                ~test:(Exp_common.kernel_platform ~inject_all:[ nops ] arch) ))
          (measures_of profile))
      (benchmarks ())
  in
  fun () ->
    let table = Table.create [ "benchmark"; "relative perf"; "change" ] in
    (* A failed sample renders as a failed cell; the aggregates run
       over the cells that survive. *)
    let drops =
      List.filter_map
        (fun (label, finish) ->
          match finish () with
          | Ok rel ->
              Table.add_row table
                [ label; Exp_common.fmt_summary rel; Exp_common.fmt_pct_change rel ];
              Some rel.Stats.gmean
          | Error msg ->
              Table.add_row table [ label; "failed: " ^ msg; "-" ];
              None)
        pending
    in
    let mean = Stats.mean (Array.of_list drops) in
    let worst = List.fold_left min 1. drops in
    ( table,
      Printf.sprintf "mean drop %.1f%% (paper 1.9%%), worst %.1f%% (paper 6.6%%, netperf)"
        ((1. -. mean) *. 100.)
        ((1. -. worst) *. 100.) )

(* ------------------------------------------------------------------ *)
(* Figs. 7 and 8: the 14-macro x 11-benchmark matrix.                  *)
(* ------------------------------------------------------------------ *)

type matrix_cell = {
  benchmark : string;
  macro : Kernel.macro;
  relative : Stats.summary;
}

let matrix_deferred ?robust batch =
  let spin = if Exp_common.fast () then 256 else 1024 in
  let cf = Wmm_costfn.Cost_function.make arch spin in
  let samples = if Exp_common.fast () then 2 else 3 in
  let base_platform =
    Exp_common.kernel_platform
      ~inject_all:[ Wmm_costfn.Cost_function.nop_padding arch cf ]
      arch
  in
  let pending =
    List.concat_map
      (fun (profile : Profile.t) ->
        List.map
          (fun (label, measure) ->
            let base_get =
              Experiment.summary_deferred batch
                (Experiment.sample_request ~samples ~measure ?robust
                   ~label:("rank base " ^ label) profile base_platform)
            in
            let test_gets =
              List.map
                (fun macro ->
                  let test_platform =
                    Exp_common.kernel_platform
                      ~inject:[ (macro, [ Wmm_costfn.Cost_function.uop cf ]) ]
                      arch
                  in
                  ( macro,
                    Experiment.summary_deferred batch
                      (Experiment.sample_request ~samples ~measure ?robust
                         ~label:
                           (Printf.sprintf "rank %s x %s" label
                              (Kernel.macro_name macro))
                         profile test_platform) ))
                Kernel.all_macros
            in
            (label, base_get, test_gets))
          (measures_of profile))
      (benchmarks ())
  in
  fun () ->
    List.concat_map
      (fun (label, base_get, test_gets) ->
        match base_get () with
        | Error _ -> []
        | Ok base ->
            List.filter_map
              (fun (macro, test_get) ->
                match test_get () with
                | Ok test ->
                    Some
                      {
                        benchmark = label;
                        macro;
                        relative = Stats.ratio_summary ~test ~base;
                      }
                | Error _ -> None)
              test_gets)
      pending

let fig7 cells =
  let table = Table.create [ "macro"; "sum of relative performance" ] in
  let sums =
    List.map
      (fun macro ->
        let total =
          List.fold_left
            (fun acc c -> if c.macro = macro then acc +. c.relative.Stats.gmean else acc)
            0. cells
        in
        (macro, total))
      Kernel.all_macros
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  List.iter
    (fun (macro, total) ->
      Table.add_row table [ Kernel.macro_name macro; Table.float_cell ~decimals:2 total ])
    sums;
  (table, sums)

let fig8 cells =
  let table = Table.create [ "benchmark"; "sum of relative performance" ] in
  let names = List.sort_uniq compare (List.map (fun c -> c.benchmark) cells) in
  let sums =
    List.map
      (fun name ->
        let total =
          List.fold_left
            (fun acc c -> if c.benchmark = name then acc +. c.relative.Stats.gmean else acc)
            0. cells
        in
        (name, total))
      names
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  List.iter
    (fun (name, total) ->
      Table.add_row table [ name; Table.float_cell ~decimals:2 total ])
    sums;
  (table, sums)

let report ?engine ?robust () =
  let engine =
    match engine with Some e -> e | None -> Wmm_engine.Engine.sequential ()
  in
  let batch = Experiment.batch () in
  let nop_finish = nop_padding_deferred ?robust batch in
  let matrix_finish = matrix_deferred ?robust batch in
  Experiment.run_batch engine batch;
  let nop_table, nop_summary = nop_finish () in
  let cells = matrix_finish () in
  let fig7_table, _ = fig7 cells in
  let fig8_table, _ = fig8 cells in
  String.concat "\n"
    [
      Exp_common.header "In-text table: kernel macro nop padding (4.3)";
      Table.render nop_table;
      nop_summary;
      "";
      Exp_common.header "Figure 7: macro impact ranking (sum over benchmarks, ascending = most impact)";
      "Paper: smp_mb, read_once, read_barrier_depends have the most impact;";
      "mb/rmb/wmb and the acquire/release macros the least.";
      Table.render fig7_table;
      "";
      Exp_common.header "Figure 8: benchmark sensitivity ranking (sum over macros)";
      "Paper: netperf_tcp, lmbench, netperf_udp most sensitive; h2 and spark";
      "almost completely insensitive.";
      Table.render fig8_table;
    ]
