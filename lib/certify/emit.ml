open Wmm_isa
open Wmm_cert
open Wmm_model
open Wmm_litmus
open Wmm_analysis

(* Certificate emission: the untrusted half of proof-carrying
   verdicts.  This module sits on the explorer's side of the trust
   boundary - it uses {!Wmm_model.Enumerate} to find witnesses and to
   materialize exhaustive execution sets - and packages them into
   {!Wmm_cert.Certificate} values that the independent checker
   revalidates from scratch.  A bug here (or anywhere in the
   exploration core) produces certificates the checker rejects; it
   cannot produce a wrongly-accepted verdict. *)

let default_max_candidates = 20_000

let cert_model (m : Axiomatic.model) =
  match Axioms.model_of_name (Axiomatic.model_name m) with
  | Some m -> m
  | None -> assert false

let condition_of_test (t : Test.t) =
  { Certificate.c_regs = t.Test.condition; c_mem = t.Test.mem_condition }

let satisfies (cond : Certificate.condition) (o : Enumerate.outcome) =
  Test.condition_matches cond.Certificate.c_regs o.Enumerate.registers
  && List.for_all
       (fun (l, v) ->
         match List.assoc_opt l o.Enumerate.memory with
         | Some v' -> v' = v
         | None -> v = 0)
       cond.Certificate.c_mem

(* ------------------------------------------------------------------ *)
(* Execution -> certificate conversion.                                *)
(* ------------------------------------------------------------------ *)

(* The canonical trace representation carries the rmw flag on the
   write itself (the checker's replay needs it to resolve
   store-exclusive branching deterministically); the explorer keeps it
   as a relation. *)
let events_of (x : Execution.t) =
  let rmw_targets = List.map snd (Relation.to_list x.Execution.rmw) in
  Array.to_list
    (Array.map
       (fun (e : Event.t) ->
         let action =
           match e.Event.action with
           | Event.Read { loc; value; order } -> Trace.Read { loc; value; order }
           | Event.Write { loc; value; order } ->
               Trace.Write { loc; value; order; rmw = List.mem e.Event.id rmw_targets }
           | Event.Fence b -> Trace.Fence b
         in
         { Trace.id = e.Event.id; tid = e.Event.tid; po = e.Event.po_index; action })
       x.Execution.events)

let co_chains (x : Execution.t) =
  let by_loc = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match Event.loc (Execution.event x w) with
      | Some l ->
          Hashtbl.replace by_loc l
            (w :: Option.value ~default:[] (Hashtbl.find_opt by_loc l))
      | None -> ())
    (Execution.writes x);
  Hashtbl.fold
    (fun l ws acc ->
      let pred_count w =
        List.length (List.filter (fun w' -> Relation.mem w' w x.Execution.co) ws)
      in
      let chain =
        List.sort (fun a b -> compare (pred_count a) (pred_count b)) ws
      in
      (l, chain) :: acc)
    by_loc []
  |> List.sort compare

let witness_of (x : Execution.t) (o : Enumerate.outcome) =
  {
    Certificate.w_events = events_of x;
    w_rf = Relation.to_list x.Execution.rf;
    w_co = co_chains x;
    w_regs = o.Enumerate.registers;
    w_mem = o.Enumerate.memory;
  }

let candidate_of (x : Execution.t) =
  { Certificate.k_rf = Relation.to_list x.Execution.rf; k_co = co_chains x }

(* ------------------------------------------------------------------ *)
(* Claim builders.                                                     *)
(* ------------------------------------------------------------------ *)

let find_witness model (program : Program.t) cond =
  let rec search = function
    | [] -> Error "no consistent execution satisfies the condition"
    | (x, o) :: rest ->
        if satisfies cond o && Axiomatic.consistent model x then Ok (witness_of x o)
        else search rest
  in
  match Enumerate.candidate_executions program with
  | candidates -> search candidates
  | exception Failure msg -> Error msg

(* Exhaustive execution set, grouped into per-run-combination combos.
   The reference enumeration shares one physical event array per
   combo, which is exactly the grouping the certificate needs. *)
let forbidden_body ?(max_candidates = default_max_candidates) model
    (program : Program.t) cond =
  match Enumerate.Reference.candidate_executions program with
  | exception Failure msg -> Error msg
  | candidates ->
      let total = List.length candidates in
      if total > max_candidates then
        Error
          (Printf.sprintf "certificate too large: %d candidate executions (cap %d)"
             total max_candidates)
      else begin
        let refuted =
          List.exists
            (fun (x, o) -> Axiomatic.consistent model x && satisfies cond o)
            candidates
        in
        if refuted then Error "the condition is allowed, not forbidden"
        else begin
          (* Group by the physically shared skeleton, preserving combo
             order.  Every candidate of a combo shares the events and
             the rmw pairing (both are determined by the runs), so the
             first execution stands in for the combo's trace. *)
          let combos = ref [] in
          List.iter
            (fun ((x : Execution.t), _) ->
              match !combos with
              | (head, cands) :: rest
                when head.Execution.events == x.Execution.events ->
                  combos := (head, candidate_of x :: cands) :: rest
              | _ -> combos := (x, [ candidate_of x ]) :: !combos)
            candidates;
          let f_combos =
            List.rev_map
              (fun (head, cands) ->
                { Certificate.x_events = events_of head; x_candidates = List.rev cands })
              !combos
          in
          Ok { Certificate.f_count = total; f_combos }
        end
      end

let allowed model (program : Program.t) cond =
  Result.map
    (fun w ->
      {
        Certificate.model = cert_model model;
        program;
        cond;
        claim = Certificate.Allowed w;
      })
    (find_witness model program cond)

let forbidden ?max_candidates model (program : Program.t) cond =
  Result.map
    (fun body ->
      {
        Certificate.model = cert_model model;
        program;
        cond;
        claim = Certificate.Forbidden body;
      })
    (forbidden_body ?max_candidates model program cond)

(* ------------------------------------------------------------------ *)
(* Minimality claims.                                                  *)
(* ------------------------------------------------------------------ *)

let site_of (s : Placement.site) =
  { Certificate.s_tid = s.Placement.tid; s_at = s.Placement.at; s_barrier = s.Placement.barrier }

let minimal ?max_candidates model (t : Test.t) (strategy : Placement.strategy) =
  let cond = condition_of_test t in
  let ( let* ) = Result.bind in
  let fenced = Placement.apply t.Test.program strategy in
  let* body = forbidden_body ?max_candidates model fenced cond in
  let* refutations =
    List.fold_left
      (fun acc idx ->
        let* acc = acc in
        let weaker = List.filteri (fun i _ -> i <> idx) strategy in
        let weaker_program = Placement.apply t.Test.program weaker in
        match find_witness model weaker_program cond with
        | Ok w -> Ok ((idx, w) :: acc)
        | Error msg ->
            Error
              (Printf.sprintf "dropping site %d still forbids the condition (%s)" idx
                 msg))
      (Ok [])
      (List.init (List.length strategy) Fun.id)
  in
  Ok
    {
      Certificate.model = cert_model model;
      program = t.Test.program;
      cond;
      claim =
        Certificate.Minimal
          {
            Certificate.m_sites = List.map site_of strategy;
            m_fenced = body;
            m_refutations = List.rev refutations;
          };
    }

(* ------------------------------------------------------------------ *)
(* Verdict-level entry point.                                          *)
(* ------------------------------------------------------------------ *)

let litmus ?max_candidates model (t : Test.t) =
  let cond = condition_of_test t in
  if Check.axiomatic_allowed model t then allowed model t.Test.program cond
  else forbidden ?max_candidates model t.Test.program cond
