open Wmm_isa

(* The five memory models, re-stated from their definitions over the
   checker's own relation calculus.  Nothing here is imported from the
   exploration core: this is an intentionally duplicated, list/matrix
   level transcription of the axioms (herd-style), so a bug in the
   explorer's bitset encodings cannot also hide here.  Axiom names
   match the explorer's so planted-bug tests can compare reasons. *)

type model = Sc | Tso | Arm | Power | Rc11

let all_models = [ Sc; Tso; Arm; Power; Rc11 ]

let model_name = function
  | Sc -> "SC"
  | Tso -> "TSO"
  | Arm -> "ARMv8"
  | Power -> "POWER"
  | Rc11 -> "RC11"

let model_of_name s =
  List.find_opt (fun m -> model_name m = s) all_models

type ctx = {
  events : Trace.event array;
  po : Rel.t;
  addr : Rel.t;
  data : Rel.t;
  ctrl : Rel.t;
  rmw : Rel.t;
}

let ctx_of_shape (s : Replay.shape) =
  { events = s.Replay.events; po = s.Replay.po; addr = s.Replay.addr;
    data = s.Replay.data; ctrl = s.Replay.ctrl; rmw = s.Replay.rmw }

(* ------------------------------------------------------------------ *)
(* RC11 access modes (C11 strengths for hardware barriers included,
   so lifted hardware tests stay meaningful).                          *)
(* ------------------------------------------------------------------ *)

type mode = M_rlx | M_acq | M_rel | M_acq_rel | M_sc

let read_mode = function
  | Instr.Plain | Instr.Release -> M_rlx
  | Instr.Acquire | Instr.Acq_rel -> M_acq
  | Instr.Sc -> M_sc

let write_mode = function
  | Instr.Plain | Instr.Acquire -> M_rlx
  | Instr.Release | Instr.Acq_rel -> M_rel
  | Instr.Sc -> M_sc

let fence_mode = function
  | Instr.Fence_acq | Instr.Dmb_ishld -> M_acq
  | Instr.Fence_rel | Instr.Dmb_ishst | Instr.Eieio -> M_rel
  | Instr.Fence_acq_rel | Instr.Lwsync -> M_acq_rel
  | Instr.Fence_sc | Instr.Dmb_ish | Instr.Sync -> M_sc
  | Instr.Isb | Instr.Isync -> M_rlx

let at_least_acq = function M_acq | M_acq_rel | M_sc -> true | M_rlx | M_rel -> false
let at_least_rel = function M_rel | M_acq_rel | M_sc -> true | M_rlx | M_acq -> false

let event_mode (e : Trace.event) =
  match e.Trace.action with
  | Trace.Read { order; _ } -> read_mode order
  | Trace.Write { order; _ } -> write_mode order
  | Trace.Fence b -> fence_mode b

(* ------------------------------------------------------------------ *)
(* Shared derived relations.                                           *)
(* ------------------------------------------------------------------ *)

let violations model ctx ~rf ~co =
  let ev = ctx.events in
  let n = Array.length ev in
  let is_read i = Trace.is_read ev.(i) in
  let is_write i = Trace.is_write ev.(i) in
  let is_mem i = is_read i || is_write i in
  let same_loc a b = Trace.same_loc ev.(a) ev.(b) in
  let external_part r =
    Rel.filter (fun a b -> ev.(a).Trace.tid <> ev.(b).Trace.tid) r
  in
  let po_loc = Rel.filter same_loc ctx.po in
  let fr = Rel.remove_diagonal (Rel.compose (Rel.inverse rf) co) in
  let com = Rel.union_all n [ rf; co; fr ] in
  let rfe = external_part rf in
  let fre = external_part fr in
  let coe = external_part co in
  (* [M]; po; [F kind]; po; [M] *)
  let through_fence kind =
    let acc = Rel.create n in
    for f = 0 to n - 1 do
      if Trace.fence_kind kind ev.(f) then
        for a = 0 to n - 1 do
          if is_mem a && Rel.mem ctx.po a f then
            for b = 0 to n - 1 do
              if is_mem b && Rel.mem ctx.po f b then Rel.add acc a b
            done
        done
    done;
    acc
  in
  (* Reads with a ctrl edge into an isb/isync order everything po-after
     the fence. *)
  let ctrl_restore kind =
    let acc = Rel.create n in
    for f = 0 to n - 1 do
      if Trace.fence_kind kind ev.(f) then
        for r = 0 to n - 1 do
          if is_read r && Rel.mem ctx.ctrl r f then
            for b = 0 to n - 1 do
              if is_mem b && Rel.mem ctx.po f b then Rel.add acc r b
            done
        done
    done;
    acc
  in
  let mem_po = Rel.restrict ctx.po ~domain:is_mem ~range:is_mem in
  let ctrl_w = Rel.restrict ctx.ctrl ~domain:is_read ~range:is_write in
  let addr_po_w =
    Rel.restrict (Rel.compose ctx.addr ctx.po) ~domain:is_read ~range:is_write
  in
  let addr_data = Rel.union ctx.addr ctx.data in
  let dep_rfi () = Rel.compose addr_data (Rel.diff rf rfe) in
  (* RMW atomicity, common to every model: no external write may be
     coherence-ordered between the exclusive read's source and the
     paired exclusive write. *)
  let atomicity () =
    Rel.is_empty ctx.rmw
    || Rel.is_empty (Rel.inter ctx.rmw (Rel.compose fre coe))
  in
  let checks =
    ("atomicity", atomicity)
    ::
    (match model with
    | Sc -> [ ("sc", fun () -> Rel.is_acyclic (Rel.union ctx.po com)) ]
    | Tso ->
        let ppo_static =
          Rel.filter (fun a b -> not (is_write a && is_read b)) mem_po
        in
        let fence = Rel.union (through_fence Instr.Dmb_ish) (through_fence Instr.Sync) in
        [
          ("sc-per-location", fun () -> Rel.is_acyclic (Rel.union po_loc com));
          ( "tso-global-happens-before",
            fun () -> Rel.is_acyclic (Rel.union_all n [ ppo_static; fence; rfe; co; fr ])
          );
        ]
    | Arm ->
        let acq_rel =
          let is_acq i = Trace.is_acquire ev.(i) in
          let is_rel i = Trace.is_release ev.(i) in
          Rel.union_all n
            [
              Rel.restrict ctx.po ~domain:is_acq ~range:is_mem;
              Rel.restrict ctx.po ~domain:is_mem ~range:is_rel;
              Rel.restrict ctx.po ~domain:is_rel ~range:is_acq;
            ]
        in
        let ppo_static =
          Rel.union_all n
            [ ctx.addr; ctx.data; ctrl_w; addr_po_w; ctrl_restore Instr.Isb; acq_rel ]
        in
        let fence =
          Rel.union_all n
            [
              through_fence Instr.Dmb_ish;
              Rel.restrict (through_fence Instr.Dmb_ishld) ~domain:is_read ~range:is_mem;
              Rel.restrict (through_fence Instr.Dmb_ishst) ~domain:is_write ~range:is_write;
            ]
        in
        [
          ("internal", fun () -> Rel.is_acyclic (Rel.union po_loc com));
          ( "external",
            fun () ->
              Rel.is_acyclic
                (Rel.union_all n [ rfe; fre; coe; ppo_static; dep_rfi (); fence ]) );
        ]
    | Power ->
        let ppo_static =
          Rel.union_all n
            [ ctx.addr; ctx.data; ctrl_w; addr_po_w; ctrl_restore Instr.Isync ]
        in
        let sync = through_fence Instr.Sync in
        let lwsync = through_fence Instr.Lwsync in
        let fence =
          Rel.union_all n
            [
              sync;
              Rel.restrict lwsync ~domain:is_read ~range:is_mem;
              Rel.restrict lwsync ~domain:is_write ~range:is_write;
              Rel.restrict (through_fence Instr.Eieio) ~domain:is_write ~range:is_write;
            ]
        in
        let fence_empty = Rel.is_empty fence in
        let hb = Rel.union_all n [ ppo_static; dep_rfi (); fence; rfe ] in
        let prop_parts () =
          let hb_star = Rel.reflexive_transitive_closure hb in
          let prop_base = Rel.compose (Rel.union fence (Rel.compose rfe fence)) hb_star in
          let prop =
            Rel.union
              (Rel.restrict prop_base ~domain:is_write ~range:is_write)
              (Rel.compose
                 (Rel.reflexive_transitive_closure com)
                 (Rel.compose
                    (Rel.reflexive_transitive_closure prop_base)
                    (Rel.compose sync hb_star)))
          in
          (prop, hb_star)
        in
        [
          ("sc-per-location", fun () -> Rel.is_acyclic (Rel.union po_loc com));
          ("no-thin-air", fun () -> Rel.is_acyclic hb);
          ( "observation",
            fun () ->
              fence_empty
              ||
              let prop, hb_star = prop_parts () in
              Rel.is_irreflexive (Rel.compose fre (Rel.compose prop hb_star)) );
          ( "propagation",
            fun () ->
              if fence_empty then Rel.is_acyclic co
              else
                let prop, _ = prop_parts () in
                Rel.is_acyclic (Rel.union co prop) );
        ]
    | Rc11 ->
        let modes = Array.map event_mode ev in
        let is_fence i = Trace.is_fence ev.(i) in
        let po_nloc = Rel.diff ctx.po po_loc in
        let ws_base =
          Rel.union
            (Rel.restrict po_loc ~domain:is_write ~range:is_write)
            (Rel.id_on n is_write)
        in
        let pre_rel =
          Rel.union
            (Rel.id_on n (fun i -> is_write i && at_least_rel modes.(i)))
            (Rel.restrict ctx.po
               ~domain:(fun i -> is_fence i && at_least_rel modes.(i))
               ~range:is_write)
        in
        let post_acq =
          Rel.union
            (Rel.id_on n (fun i -> is_read i && at_least_acq modes.(i)))
            (Rel.restrict ctx.po ~domain:is_read
               ~range:(fun i -> is_fence i && at_least_acq modes.(i)))
        in
        let is_sc_fence i = is_fence i && modes.(i) = M_sc in
        let sc_id = Rel.id_on n (fun i -> modes.(i) = M_sc) in
        let derived () =
          let rs =
            Rel.compose ws_base
              (Rel.reflexive_transitive_closure (Rel.compose rf ctx.rmw))
          in
          let sw = Rel.compose pre_rel (Rel.compose rs (Rel.compose rf post_acq)) in
          let hb = Rel.transitive_closure (Rel.union ctx.po sw) in
          let eco = Rel.transitive_closure com in
          (hb, eco)
        in
        [
          ( "coherence",
            fun () ->
              let hb, eco = derived () in
              Rel.is_irreflexive hb && Rel.is_irreflexive (Rel.compose hb eco) );
          ("no-thin-air", fun () -> Rel.is_acyclic (Rel.union ctx.po rf));
          ( "sc",
            fun () ->
              let hb, eco = derived () in
              let scb =
                Rel.union_all n
                  [
                    ctx.po;
                    Rel.compose po_nloc (Rel.compose hb po_nloc);
                    Rel.filter same_loc hb;
                    co;
                    fr;
                  ]
              in
              let all i = i >= 0 in
              let pre =
                Rel.union sc_id (Rel.restrict hb ~domain:is_sc_fence ~range:all)
              in
              let post =
                Rel.union sc_id (Rel.restrict hb ~domain:all ~range:is_sc_fence)
              in
              let psc_base = Rel.compose pre (Rel.compose scb post) in
              let psc_f =
                Rel.restrict
                  (Rel.union hb (Rel.compose hb (Rel.compose eco hb)))
                  ~domain:is_sc_fence ~range:is_sc_fence
              in
              Rel.is_acyclic (Rel.union psc_base psc_f) );
        ])
  in
  List.filter_map (fun (name, ok) -> if ok () then None else Some name) checks

let consistent model ctx ~rf ~co = violations model ctx ~rf ~co = []
