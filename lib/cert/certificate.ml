open Wmm_isa

(* Proof-carrying verdicts, version 1.

   A certificate is self-contained: program, condition and claim ride
   together, so {!Checker.check} revalidates it from the file alone,
   with zero exploration and no access to the fast engines.

   - [Allowed]: one witness execution (canonical events, rf edges, co
     chains) plus the final state it claims; the checker replays the
     threads, re-derives the dependency relations, re-checks the
     model's axioms and recomputes the final state.
   - [Forbidden]: the exhaustively enumerated execution set, grouped
     by run combination; the checker recounts the rf/co candidate
     space from the program alone, so truncation is detected, and
     verifies every candidate is either inconsistent or misses the
     condition.
   - [Minimal]: a fence placement, a forbidden body for the fully
     fenced program, and one allowed witness per single-site removal
     refuting every cheaper placement.

   The serialized form is line/token oriented (see {!Trace}); size is
   bounded at emission (see DESIGN.md §17), not here: the checker
   handles whatever fits in memory. *)

let version = 1

type condition = {
  c_regs : ((int * Instr.reg) * Instr.value) list;
  c_mem : (Instr.loc * Instr.value) list;
}

type witness = {
  w_events : Trace.event list;
  w_rf : (int * int) list;  (** (write id, read id) *)
  w_co : (Instr.loc * int list) list;  (** per-location chains, init first *)
  w_regs : ((int * Instr.reg) * Instr.value) list;
  w_mem : (Instr.loc * Instr.value) list;
}

type candidate = {
  k_rf : (int * int) list;
  k_co : (Instr.loc * int list) list;
}

type combo = { x_events : Trace.event list; x_candidates : candidate list }

type forbidden_body = { f_count : int; f_combos : combo list }

type site = { s_tid : int; s_at : int; s_barrier : Instr.barrier }

type minimality = {
  m_sites : site list;
  m_fenced : forbidden_body;
  m_refutations : (int * witness) list;
      (** site index dropped from [m_sites] -> allowed witness for the
          program fenced with the remaining sites *)
}

type claim =
  | Allowed of witness
  | Forbidden of forbidden_body
  | Minimal of minimality

type t = {
  model : Axioms.model;
  program : Program.t;
  cond : condition;
  claim : claim;
}

let claim_name = function
  | Allowed _ -> "allowed"
  | Forbidden _ -> "forbidden"
  | Minimal _ -> "minimal"

(* ------------------------------------------------------------------ *)
(* Serialization.                                                      *)
(* ------------------------------------------------------------------ *)

let pairs_tokens pairs =
  String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) pairs)

let triples_tokens triples =
  String.concat " " (List.map (fun ((a, b), c) -> Printf.sprintf "%d,%d,%d" a b c) triples)

let chains_tokens chains =
  String.concat " "
    (List.map
       (fun (l, chain) ->
         Printf.sprintf "%d:%s" l (String.concat "," (List.map string_of_int chain)))
       chains)

let witness_lines w =
  List.map Trace.event_line w.w_events
  @ [
      "rf " ^ pairs_tokens w.w_rf;
      "co " ^ chains_tokens w.w_co;
      "regs " ^ triples_tokens w.w_regs;
      "mem " ^ pairs_tokens w.w_mem;
    ]

let candidate_line k =
  let rf = match pairs_tokens k.k_rf with "" -> "-" | s -> String.map (function ' ' -> ';' | c -> c) s in
  let co = match chains_tokens k.k_co with "" -> "-" | s -> String.map (function ' ' -> '|' | c -> c) s in
  Printf.sprintf "cand %s %s" rf co

let forbidden_lines f =
  (Printf.sprintf "count %d" f.f_count)
  :: List.concat_map
       (fun x ->
         ("combo" :: List.map Trace.event_line x.x_events)
         @ List.map candidate_line x.x_candidates
         @ [ "endcombo" ])
       f.f_combos

let to_lines t =
  [ Printf.sprintf "wmmcert %d" version; "model " ^ Axioms.model_name t.model ]
  @ Trace.program_lines t.program
  @ List.map (fun ((tid, r), v) -> Printf.sprintf "cond-reg %d %d %d" tid r v) t.cond.c_regs
  @ List.map (fun (l, v) -> Printf.sprintf "cond-mem %d %d" l v) t.cond.c_mem
  @ (match t.claim with
    | Allowed w -> ("claim allowed" :: witness_lines w) @ [ "endwitness" ]
    | Forbidden f -> "claim forbidden" :: forbidden_lines f
    | Minimal m ->
        ("claim minimal"
         :: List.map
              (fun s ->
                Printf.sprintf "site %d %d %s" s.s_tid s.s_at (Trace.barrier_token s.s_barrier))
              m.m_sites)
        @ ("fenced" :: forbidden_lines m.m_fenced)
        @ [ "endfenced" ]
        @ List.concat_map
            (fun (idx, w) ->
              (Printf.sprintf "refute %d" idx :: witness_lines w) @ [ "endrefute" ])
            m.m_refutations)
  @ [ "end" ]

let to_string t = String.concat "\n" (to_lines t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

open Trace

let split_pairs s =
  if String.trim s = "" then []
  else
    List.map
      (fun tok ->
        match String.split_on_char ',' tok with
        | [ a; b ] -> (int_of a, int_of b)
        | _ -> fail "bad pair %S" tok)
      (List.filter (( <> ) "") (String.split_on_char ' ' s))

let split_triples s =
  if String.trim s = "" then []
  else
    List.map
      (fun tok ->
        match String.split_on_char ',' tok with
        | [ a; b; c ] -> ((int_of a, int_of b), int_of c)
        | _ -> fail "bad triple %S" tok)
      (List.filter (( <> ) "") (String.split_on_char ' ' s))

let split_chains s =
  if String.trim s = "" then []
  else
    List.map
      (fun tok ->
        match String.split_on_char ':' tok with
        | [ l; ids ] ->
            ( int_of l,
              List.map int_of (List.filter (( <> ) "") (String.split_on_char ',' ids)) )
        | _ -> fail "bad chain %S" tok)
      (List.filter (( <> ) "") (String.split_on_char ' ' s))

let prefixed prefix line =
  let pl = String.length prefix in
  if String.length line >= pl && String.sub line 0 pl = prefix then
    Some (String.sub line pl (String.length line - pl))
  else None

(* Events, then rf / co / regs / mem in that order. *)
let parse_witness lines =
  let rec events acc = function
    | line :: rest as all -> (
        match prefixed "e " line with
        | Some toks ->
            events
              (event_of_tokens (List.filter (( <> ) "") (String.split_on_char ' ' toks)) :: acc)
              rest
        | None -> (List.rev acc, all))
    | [] -> (List.rev acc, [])
  in
  let w_events, rest = events [] lines in
  match rest with
  | rf_l :: co_l :: regs_l :: mem_l :: rest -> (
      match
        (prefixed "rf" rf_l, prefixed "co" co_l, prefixed "regs" regs_l, prefixed "mem" mem_l)
      with
      | Some rf, Some co, Some regs, Some mem ->
          ( {
              w_events;
              w_rf = split_pairs rf;
              w_co = split_chains co;
              w_regs = split_triples regs;
              w_mem = split_pairs mem;
            },
            rest )
      | _ -> fail "malformed witness section")
  | _ -> fail "truncated witness section"

let parse_candidate s =
  match List.filter (( <> ) "") (String.split_on_char ' ' s) with
  | [ rf; co ] ->
      let rf = if rf = "-" then "" else String.map (function ';' -> ' ' | c -> c) rf in
      let co = if co = "-" then "" else String.map (function '|' -> ' ' | c -> c) co in
      { k_rf = split_pairs rf; k_co = split_chains co }
  | _ -> fail "bad candidate line %S" s

let parse_forbidden lines =
  match lines with
  | count_l :: rest -> (
      match prefixed "count " count_l with
      | None -> fail "expected count line"
      | Some n ->
          let f_count = int_of (String.trim n) in
          let rec combos acc = function
            | "combo" :: rest ->
                let rec events acc_e = function
                  | line :: rest as all -> (
                      match prefixed "e " line with
                      | Some toks ->
                          events
                            (event_of_tokens
                               (List.filter (( <> ) "") (String.split_on_char ' ' toks))
                            :: acc_e)
                            rest
                      | None -> (List.rev acc_e, all))
                  | [] -> (List.rev acc_e, [])
                in
                let x_events, rest = events [] rest in
                let rec cands acc_c = function
                  | line :: rest as all -> (
                      match prefixed "cand " line with
                      | Some s -> cands (parse_candidate s :: acc_c) rest
                      | None -> (List.rev acc_c, all))
                  | [] -> (List.rev acc_c, [])
                in
                let x_candidates, rest = cands [] rest in
                (match rest with
                | "endcombo" :: rest -> combos ({ x_events; x_candidates } :: acc) rest
                | _ -> fail "missing endcombo")
            | rest -> (List.rev acc, rest)
          in
          let f_combos, rest = combos [] rest in
          ({ f_count; f_combos }, rest))
  | [] -> fail "truncated forbidden section"

let of_lines lines =
  let lines = List.filter (fun l -> String.trim l <> "") (List.map String.trim lines) in
  match lines with
  | header :: rest -> (
      (match String.split_on_char ' ' header with
      | [ "wmmcert"; v ] ->
          if int_of v <> version then
            fail "unsupported certificate version %s (checker speaks %d)" v version
      | _ -> fail "not a certificate: bad header %S" header);
      match rest with
      | model_l :: rest -> (
          let model =
            match prefixed "model " model_l with
            | Some name -> (
                match Axioms.model_of_name (String.trim name) with
                | Some m -> m
                | None -> fail "unknown model %S" name)
            | None -> fail "expected model line"
          in
          let program, rest = program_of_lines rest in
          let rec conds regs mem = function
            | line :: rest as all -> (
                match (prefixed "cond-reg " line, prefixed "cond-mem " line) with
                | Some s, _ -> (
                    match List.filter (( <> ) "") (String.split_on_char ' ' s) with
                    | [ t; r; v ] -> conds (((int_of t, int_of r), int_of v) :: regs) mem rest
                    | _ -> fail "bad cond-reg line")
                | _, Some s -> (
                    match List.filter (( <> ) "") (String.split_on_char ' ' s) with
                    | [ l; v ] -> conds regs ((int_of l, int_of v) :: mem) rest
                    | _ -> fail "bad cond-mem line")
                | None, None -> (List.rev regs, List.rev mem, all))
            | [] -> (List.rev regs, List.rev mem, [])
          in
          let c_regs, c_mem, rest = conds [] [] rest in
          let cond = { c_regs; c_mem } in
          let claim, rest =
            match rest with
            | "claim allowed" :: rest -> (
                let w, rest = parse_witness rest in
                match rest with
                | "endwitness" :: rest -> (Allowed w, rest)
                | _ -> fail "missing endwitness")
            | "claim forbidden" :: rest ->
                let f, rest = parse_forbidden rest in
                (Forbidden f, rest)
            | "claim minimal" :: rest ->
                let rec sites acc = function
                  | line :: rest as all -> (
                      match prefixed "site " line with
                      | Some s -> (
                          match List.filter (( <> ) "") (String.split_on_char ' ' s) with
                          | [ t; at; b ] ->
                              sites
                                ({ s_tid = int_of t; s_at = int_of at; s_barrier = barrier_of b }
                                :: acc)
                                rest
                          | _ -> fail "bad site line")
                      | None -> (List.rev acc, all))
                  | [] -> (List.rev acc, [])
                in
                let m_sites, rest = sites [] rest in
                let m_fenced, rest =
                  match rest with
                  | "fenced" :: rest -> (
                      let f, rest = parse_forbidden rest in
                      match rest with
                      | "endfenced" :: rest -> (f, rest)
                      | _ -> fail "missing endfenced")
                  | _ -> fail "expected fenced section"
                in
                let rec refutes acc = function
                  | line :: rest as all -> (
                      match prefixed "refute " line with
                      | Some idx -> (
                          let w, rest = parse_witness rest in
                          match rest with
                          | "endrefute" :: rest ->
                              refutes ((int_of (String.trim idx), w) :: acc) rest
                          | _ -> fail "missing endrefute")
                      | None -> (List.rev acc, all))
                  | [] -> (List.rev acc, [])
                in
                let m_refutations, rest = refutes [] rest in
                (Minimal { m_sites; m_fenced; m_refutations }, rest)
            | l :: _ -> fail "expected a claim, got %S" l
            | [] -> fail "missing claim"
          in
          match rest with
          | [ "end" ] -> { model; program; cond; claim }
          | l :: _ -> fail "trailing content %S" l
          | [] -> fail "missing end marker")
      | [] -> fail "truncated certificate")
  | [] -> fail "empty certificate"

let of_string s =
  match of_lines (String.split_on_char '\n' s) with
  | t -> Ok t
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error msg
