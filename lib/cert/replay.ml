open Wmm_isa

(* The checker's own thread semantics.  Two interpreters share the
   state shape:

   - [replay_thread]: a deterministic sequential interpreter that
     consumes a claimed event list, taking each read's value from the
     claimed event.  It validates that the events are exactly what the
     thread's instructions produce, and returns the final registers
     and the dependency edges it derived itself (so a certificate
     cannot forge dependencies - they are never trusted, always
     recomputed).
   - [runs]: a branching interpreter enumerating every feasible run of
     a thread against a value pool, used by the forbidden-verdict
     completeness check to recompute the candidate space from the
     program alone.

   Both deliberately re-state the architectural rules (exclusive
   monitors, spurious store-exclusive failure, control deps carried by
   branches) rather than importing them from the explorer. *)

exception Fuel

type levent = {
  v_action : Trace.action;
  v_addr : int list;  (** read indices this event's address depends on *)
  v_data : int list;
  v_ctrl : int list;
  v_read_index : int option;
  v_rmw_source : int option;
}

type run = {
  r_events : levent list;  (** in program order *)
  r_regs : (Instr.reg * Instr.value) list;  (** registers written, sorted *)
}

module IM = Map.Make (Int)

let dedup l = List.sort_uniq compare l

(* ------------------------------------------------------------------ *)
(* Deterministic replay of one thread against claimed events.          *)
(* ------------------------------------------------------------------ *)

let replay_thread ?(fuel = 4096) (thread : Instr.t array) (actions : Trace.action list) :
    (run, string) result =
  let length = Array.length thread in
  let mismatch pc what = Error (Printf.sprintf "instruction %d: %s" pc what) in
  let rec step pc steps regs reg_deps ctrl written events next_read monitor expected =
    if steps > fuel then raise Fuel;
    if pc >= length then
      match expected with
      | [] ->
          let final =
            List.sort compare
              (IM.bindings (IM.filter (fun r _ -> List.mem r written) regs))
          in
          Ok { r_events = List.rev events; r_regs = final }
      | _ :: _ -> Error "trailing events not produced by the thread"
    else begin
      let get_reg r = try IM.find r regs with Not_found -> 0 in
      let deps_of_reg r = try IM.find r reg_deps with Not_found -> [] in
      let eval = function Instr.Imm v -> v | Instr.Reg r -> get_reg r in
      let deps_of_operand = function Instr.Imm _ -> [] | Instr.Reg r -> deps_of_reg r in
      let emit action ~addr ~data ~read_index ~rmw_source =
        {
          v_action = action;
          v_addr = dedup addr;
          v_data = dedup data;
          v_ctrl = dedup ctrl;
          v_read_index = read_index;
          v_rmw_source = rmw_source;
        }
      in
      match thread.(pc) with
      | Instr.Nop ->
          step (pc + 1) (steps + 1) regs reg_deps ctrl written events next_read monitor
            expected
      | Instr.Barrier b -> (
          match expected with
          | Trace.Fence b' :: rest when b = b' ->
              let e = emit (Trace.Fence b) ~addr:[] ~data:[] ~read_index:None ~rmw_source:None in
              step (pc + 1) (steps + 1) regs reg_deps ctrl written (e :: events) next_read
                monitor rest
          | _ -> mismatch pc "expected a fence event")
      | Instr.Mov { dst; src } ->
          let regs = IM.add dst (eval src) regs in
          let reg_deps = IM.add dst (deps_of_operand src) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read
            monitor expected
      | Instr.Op { op; dst; a; b } ->
          let regs = IM.add dst (Instr.eval_binop op (eval a) (eval b)) regs in
          let reg_deps = IM.add dst (dedup (deps_of_operand a @ deps_of_operand b)) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read
            monitor expected
      | Instr.Cbnz { src; offset } | Instr.Cbz { src; offset } ->
          let taken =
            match thread.(pc) with
            | Instr.Cbnz _ -> get_reg src <> 0
            | _ -> get_reg src = 0
          in
          let ctrl = dedup (deps_of_reg src @ ctrl) in
          let pc' = if taken then pc + 1 + offset else pc + 1 in
          step pc' (steps + 1) regs reg_deps ctrl written events next_read monitor expected
      | Instr.Store { src; addr; order } -> (
          let loc = eval addr in
          let value = eval src in
          match expected with
          | Trace.Write { loc = l; value = v; order = o; rmw = false } :: rest
            when l = loc && v = value && o = order ->
              let e =
                emit
                  (Trace.Write { loc; value; order; rmw = false })
                  ~addr:(deps_of_operand addr) ~data:(deps_of_operand src)
                  ~read_index:None ~rmw_source:None
              in
              step (pc + 1) (steps + 1) regs reg_deps ctrl written (e :: events) next_read
                monitor rest
          | _ -> mismatch pc "store does not match the claimed write event")
      | Instr.Load { dst; addr; order } -> (
          let loc = eval addr in
          match expected with
          | Trace.Read { loc = l; value; order = o } :: rest when l = loc && o = order ->
              let e =
                emit
                  (Trace.Read { loc; value; order })
                  ~addr:(deps_of_operand addr) ~data:[] ~read_index:(Some next_read)
                  ~rmw_source:None
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) (e :: events)
                (next_read + 1) monitor rest
          | _ -> mismatch pc "load does not match the claimed read event")
      | Instr.Load_exclusive { dst; addr; order } -> (
          let loc = eval addr in
          match expected with
          | Trace.Read { loc = l; value; order = o } :: rest when l = loc && o = order ->
              let e =
                emit
                  (Trace.Read { loc; value; order })
                  ~addr:(deps_of_operand addr) ~data:[] ~read_index:(Some next_read)
                  ~rmw_source:None
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) (e :: events)
                (next_read + 1)
                (Some (loc, next_read))
                rest
          | _ -> mismatch pc "load-exclusive does not match the claimed read event")
      | Instr.Store_exclusive { status; src; addr; order } -> (
          let loc = eval addr in
          let value = eval src in
          (* Success exactly when the monitor covers this location AND
             the claimed events continue with the matching rmw write;
             otherwise the (always architecturally possible) failure
             branch is taken, which emits no event.  A forged rmw flag
             or a success claim without the monitor surfaces as a
             mismatch on this or a later event. *)
          let success =
            match (monitor, expected) with
            | ( Some (mloc, _),
                Trace.Write { loc = l; value = v; order = o; rmw = true } :: _ )
              when mloc = loc && l = loc && v = value && o = order ->
                true
            | _ -> false
          in
          if success then
            match (monitor, expected) with
            | Some (_, ridx), _ :: rest ->
                let e =
                  emit
                    (Trace.Write { loc; value; order; rmw = true })
                    ~addr:(deps_of_operand addr) ~data:(deps_of_operand src)
                    ~read_index:None ~rmw_source:(Some ridx)
                in
                let regs = IM.add status 0 regs in
                let reg_deps = IM.add status [] reg_deps in
                step (pc + 1) (steps + 1) regs reg_deps ctrl (status :: written)
                  (e :: events) next_read None rest
            | _ -> assert false
          else
            let regs = IM.add status 1 regs in
            let reg_deps = IM.add status [] reg_deps in
            step (pc + 1) (steps + 1) regs reg_deps ctrl (status :: written) events
              next_read None expected)
    end
  in
  step 0 0 IM.empty IM.empty [] [] [] 0 None actions

(* ------------------------------------------------------------------ *)
(* Branching interpretation (for the completeness recount).            *)
(* ------------------------------------------------------------------ *)

let runs ~fuel ~pool (thread : Instr.t array) : run list =
  let length = Array.length thread in
  let results = ref [] in
  let rec step pc steps regs reg_deps ctrl written events next_read monitor =
    if steps > fuel then raise Fuel;
    if pc >= length then begin
      let final =
        List.sort compare (IM.bindings (IM.filter (fun r _ -> List.mem r written) regs))
      in
      results := { r_events = List.rev events; r_regs = final } :: !results
    end
    else begin
      let get_reg r = try IM.find r regs with Not_found -> 0 in
      let deps_of_reg r = try IM.find r reg_deps with Not_found -> [] in
      let eval = function Instr.Imm v -> v | Instr.Reg r -> get_reg r in
      let deps_of_operand = function Instr.Imm _ -> [] | Instr.Reg r -> deps_of_reg r in
      let emit action ~addr ~data ~read_index ~rmw_source =
        {
          v_action = action;
          v_addr = dedup addr;
          v_data = dedup data;
          v_ctrl = dedup ctrl;
          v_read_index = read_index;
          v_rmw_source = rmw_source;
        }
      in
      match thread.(pc) with
      | Instr.Nop ->
          step (pc + 1) (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Barrier b ->
          let e = emit (Trace.Fence b) ~addr:[] ~data:[] ~read_index:None ~rmw_source:None in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (e :: events) next_read
            monitor
      | Instr.Mov { dst; src } ->
          let regs = IM.add dst (eval src) regs in
          let reg_deps = IM.add dst (deps_of_operand src) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read
            monitor
      | Instr.Op { op; dst; a; b } ->
          let regs = IM.add dst (Instr.eval_binop op (eval a) (eval b)) regs in
          let reg_deps = IM.add dst (dedup (deps_of_operand a @ deps_of_operand b)) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read
            monitor
      | Instr.Cbnz { src; offset } | Instr.Cbz { src; offset } ->
          let taken =
            match thread.(pc) with
            | Instr.Cbnz _ -> get_reg src <> 0
            | _ -> get_reg src = 0
          in
          let ctrl = dedup (deps_of_reg src @ ctrl) in
          let pc' = if taken then pc + 1 + offset else pc + 1 in
          step pc' (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Store { src; addr; order } ->
          let loc = eval addr in
          let e =
            emit
              (Trace.Write { loc; value = eval src; order; rmw = false })
              ~addr:(deps_of_operand addr) ~data:(deps_of_operand src) ~read_index:None
              ~rmw_source:None
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (e :: events) next_read
            monitor
      | Instr.Load { dst; addr; order } ->
          let loc = eval addr in
          List.iter
            (fun value ->
              let e =
                emit
                  (Trace.Read { loc; value; order })
                  ~addr:(deps_of_operand addr) ~data:[] ~read_index:(Some next_read)
                  ~rmw_source:None
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) (e :: events)
                (next_read + 1) monitor)
            (pool loc)
      | Instr.Load_exclusive { dst; addr; order } ->
          let loc = eval addr in
          List.iter
            (fun value ->
              let e =
                emit
                  (Trace.Read { loc; value; order })
                  ~addr:(deps_of_operand addr) ~data:[] ~read_index:(Some next_read)
                  ~rmw_source:None
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) (e :: events)
                (next_read + 1)
                (Some (loc, next_read)))
            (pool loc)
      | Instr.Store_exclusive { status; src; addr; order } -> (
          let loc = eval addr in
          (* Failure branch: spurious failure is always allowed. *)
          let fail_regs = IM.add status 1 regs in
          let fail_deps = IM.add status [] reg_deps in
          step (pc + 1) (steps + 1) fail_regs fail_deps ctrl (status :: written) events
            next_read None;
          match monitor with
          | Some (mloc, ridx) when mloc = loc ->
              let e =
                emit
                  (Trace.Write { loc; value = eval src; order; rmw = true })
                  ~addr:(deps_of_operand addr) ~data:(deps_of_operand src)
                  ~read_index:None ~rmw_source:(Some ridx)
              in
              let ok_regs = IM.add status 0 regs in
              let ok_deps = IM.add status [] reg_deps in
              step (pc + 1) (steps + 1) ok_regs ok_deps ctrl (status :: written)
                (e :: events) next_read None
          | Some _ | None -> ())
    end
  in
  step 0 0 IM.empty IM.empty [] [] [] 0 None;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Value-pool fixpoint and run combinations (program-alone recount).   *)
(* ------------------------------------------------------------------ *)

let value_pool ~fuel (p : Program.t) =
  let module VS = Set.Make (Int) in
  let initial =
    List.fold_left
      (fun acc l -> IM.add l (VS.singleton (Program.initial_value p l)) acc)
      IM.empty (Program.locations p)
  in
  let lookup pool loc =
    match IM.find_opt loc pool with Some vs -> VS.elements vs | None -> [ 0 ]
  in
  let grow pool =
    let additions = ref pool in
    Array.iter
      (fun thread ->
        List.iter
          (fun run ->
            List.iter
              (fun e ->
                match e.v_action with
                | Trace.Write { loc; value; _ } ->
                    let current =
                      match IM.find_opt loc !additions with
                      | Some vs -> vs
                      | None -> VS.singleton (Program.initial_value p loc)
                    in
                    additions := IM.add loc (VS.add value current) !additions
                | Trace.Read _ | Trace.Fence _ -> ())
              run.r_events)
          (runs ~fuel ~pool:(lookup pool) thread))
      p.Program.threads;
    !additions
  in
  let rec fixpoint pool iterations =
    if iterations > 8 then pool
    else
      let next = grow pool in
      if IM.equal VS.equal next pool then pool else fixpoint next (iterations + 1)
  in
  lookup (fixpoint initial 0)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) choices

let combos ~fuel (p : Program.t) : run array list =
  let pool = value_pool ~fuel p in
  let per_thread =
    Array.to_list (Array.map (fun thread -> runs ~fuel ~pool thread) p.Program.threads)
  in
  List.map Array.of_list (cartesian per_thread)

(* ------------------------------------------------------------------ *)
(* Canonical global shape of one run combination.                      *)
(* ------------------------------------------------------------------ *)

type shape = {
  events : Trace.event array;
  po : Rel.t;
  addr : Rel.t;
  data : Rel.t;
  ctrl : Rel.t;
  rmw : Rel.t;
  init_ids : (Instr.loc * int) list;
  locations : Instr.loc list;
  reads : int list;
  writes : int list;
}

(* The canonical layout: init writes first (tid -1, po 0, in location
   order), then thread events tid-major in program order; program
   order is transitive within each thread and empty elsewhere. *)
let shape_of_runs (p : Program.t) (rs : run array) =
  let module LS = Set.Make (Int) in
  let locs = ref (LS.of_list (Program.locations p)) in
  Array.iter
    (fun run ->
      List.iter
        (fun e ->
          match e.v_action with
          | Trace.Read { loc; _ } | Trace.Write { loc; _ } -> locs := LS.add loc !locs
          | Trace.Fence _ -> ())
        run.r_events)
    rs;
  let locations = LS.elements !locs in
  let events = ref [] in
  let next_id = ref 0 in
  let push tid po action =
    let e = { Trace.id = !next_id; tid; po; action } in
    incr next_id;
    events := e :: !events;
    e.Trace.id
  in
  let init_ids =
    List.map
      (fun l ->
        ( l,
          push Trace.init_tid 0
            (Trace.Write
               { loc = l; value = Program.initial_value p l; order = Instr.Plain; rmw = false })
        ))
      locations
  in
  let n_guess = List.fold_left (fun acc r -> acc + List.length r.r_events) (List.length init_ids) (Array.to_list rs) in
  let po = Rel.create n_guess in
  let addr = Rel.create n_guess in
  let data = Rel.create n_guess in
  let ctrl = Rel.create n_guess in
  let rmw = Rel.create n_guess in
  let read_global = Hashtbl.create 16 in
  Array.iteri
    (fun tid run ->
      let ids =
        List.mapi
          (fun po_index e ->
            let gid = push tid po_index e.v_action in
            (match e.v_read_index with
            | Some i -> Hashtbl.replace read_global (tid, i) gid
            | None -> ());
            (gid, e))
          run.r_events
      in
      List.iteri
        (fun i (gi, _) ->
          List.iteri (fun j (gj, _) -> if i < j then Rel.add po gi gj) ids)
        ids;
      List.iter
        (fun (gid, e) ->
          let resolve idx = Hashtbl.find read_global (tid, idx) in
          List.iter (fun i -> Rel.add addr (resolve i) gid) e.v_addr;
          List.iter (fun i -> Rel.add data (resolve i) gid) e.v_data;
          List.iter (fun i -> Rel.add ctrl (resolve i) gid) e.v_ctrl;
          Option.iter (fun i -> Rel.add rmw (resolve i) gid) e.v_rmw_source)
        ids)
    rs;
  let all =
    match !events with
    | [] -> [||]
    | hd :: _ ->
        let arr = Array.make !next_id hd in
        List.iter (fun (e : Trace.event) -> arr.(e.Trace.id) <- e) !events;
        arr
  in
  let ids = List.init !next_id Fun.id in
  {
    events = all;
    po;
    addr;
    data;
    ctrl;
    rmw;
    init_ids;
    locations;
    reads = List.filter (fun i -> Trace.is_read all.(i)) ids;
    writes = List.filter (fun i -> Trace.is_write all.(i)) ids;
  }

(* Same-location same-value writes a read may take its value from. *)
let rf_candidates shape r =
  let er = shape.events.(r) in
  List.filter
    (fun w ->
      let ew = shape.events.(w) in
      Trace.same_loc ew er && Trace.value ew = Trace.value er)
    shape.writes

(* Per-location write sets for coherence orders; init is co-first. *)
let co_locations shape =
  List.map
    (fun l ->
      let init_id = List.assoc l shape.init_ids in
      let others =
        List.filter
          (fun w -> w <> init_id && Trace.loc shape.events.(w) = Some l)
          shape.writes
      in
      (l, init_id, others))
    shape.locations

let regs_of_runs (rs : run array) =
  Array.to_list rs
  |> List.mapi (fun tid run -> List.map (fun (r, v) -> ((tid, r), v)) run.r_regs)
  |> List.concat |> List.sort compare

(* Final memory read off the co chains: the last write of each chain. *)
let memory_of_chains shape chains =
  List.sort compare
    (List.map
       (fun (l, chain) ->
         let last = List.nth chain (List.length chain - 1) in
         (l, Option.get (Trace.value shape.events.(last))))
       chains)
