(* Finite binary relations over event ids 0..n-1, as adjacency
   matrices of booleans.  Executions certified here are tiny (a few
   dozen events), so the n^3 closures below are instantaneous; the
   point of this module is that every operation is a page of obvious
   code, independent of the bitset machinery the fast explorer uses. *)

type t = { n : int; m : bool array array }

let create n = { n; m = Array.make_matrix n n false }

let mem r a b = r.m.(a).(b)

let add r a b = r.m.(a).(b) <- true

let of_list n pairs =
  let r = create n in
  List.iter (fun (a, b) -> add r a b) pairs;
  r

let to_list r =
  let acc = ref [] in
  for a = r.n - 1 downto 0 do
    for b = r.n - 1 downto 0 do
      if r.m.(a).(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let copy r = { n = r.n; m = Array.map Array.copy r.m }

let map2 f a b =
  if a.n <> b.n then invalid_arg "Rel: size mismatch";
  { n = a.n; m = Array.init a.n (fun i -> Array.init a.n (fun j -> f a.m.(i).(j) b.m.(i).(j))) }

let union a b = map2 ( || ) a b
let inter a b = map2 ( && ) a b
let diff a b = map2 (fun x y -> x && not y) a b

let union_all n rs = List.fold_left union (create n) rs

let inverse r =
  { n = r.n; m = Array.init r.n (fun i -> Array.init r.n (fun j -> r.m.(j).(i))) }

let compose a b =
  if a.n <> b.n then invalid_arg "Rel: size mismatch";
  let n = a.n in
  let r = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      if a.m.(i).(k) then
        for j = 0 to n - 1 do
          if b.m.(k).(j) then r.m.(i).(j) <- true
        done
    done
  done;
  r

let filter p r =
  { n = r.n; m = Array.init r.n (fun i -> Array.init r.n (fun j -> r.m.(i).(j) && p i j)) }

let remove_diagonal r = filter (fun a b -> a <> b) r

let restrict r ~domain ~range = filter (fun a b -> domain a && range b) r

let cross n domain range =
  let r = create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if domain a && range b then r.m.(a).(b) <- true
    done
  done;
  r

let identity n =
  let r = create n in
  for i = 0 to n - 1 do
    r.m.(i).(i) <- true
  done;
  r

let id_on n p =
  let r = create n in
  for i = 0 to n - 1 do
    if p i then r.m.(i).(i) <- true
  done;
  r

(* Floyd-Warshall reachability. *)
let transitive_closure r =
  let c = copy r in
  let n = c.n in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if c.m.(i).(k) then
        for j = 0 to n - 1 do
          if c.m.(k).(j) then c.m.(i).(j) <- true
        done
    done
  done;
  c

let reflexive_transitive_closure r = union (identity r.n) (transitive_closure r)

let is_irreflexive r =
  let ok = ref true in
  for i = 0 to r.n - 1 do
    if r.m.(i).(i) then ok := false
  done;
  !ok

let is_acyclic r = is_irreflexive (transitive_closure r)

let is_empty r =
  let empty = ref true in
  Array.iter (fun row -> Array.iter (fun b -> if b then empty := false) row) r.m;
  !empty

let equal a b = a.n = b.n && a.m = b.m

let subset a b = is_empty (diff a b)
