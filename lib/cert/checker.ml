open Wmm_isa

(* The independent certificate checker: the trust anchor of the whole
   verdict pipeline.  Given a parsed {!Certificate.t} it revalidates
   the claim from first principles - thread replay, canonical event
   layout, well-formedness of rf/co, the model's axioms
   ({!Axioms}), final-state recomputation, and (for forbidden
   verdicts) an rf/co candidate-space recount from the program alone.
   Nothing from a certificate is trusted: dependencies, register
   values and candidate counts are always recomputed. *)

type reason = { code : string; detail : string }

let reason_string r = r.code ^ ": " ^ r.detail

exception Reject of reason

let reject code fmt = Printf.ksprintf (fun detail -> raise (Reject { code; detail })) fmt

let fuel = 4096

(* Condition semantics, identical to the litmus checker's: registers
   must be present with the exact value; absent memory locations read
   as their 0 default. *)
let cond_satisfied (cond : Certificate.condition) ~regs ~mem =
  List.for_all
    (fun (k, v) -> match List.assoc_opt k regs with Some v' -> v = v' | None -> false)
    cond.Certificate.c_regs
  && List.for_all
       (fun (l, v) ->
         match List.assoc_opt l mem with Some v' -> v = v' | None -> v = 0)
       cond.Certificate.c_mem

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

(* ------------------------------------------------------------------ *)
(* rf / co validation against a replayed shape.                        *)
(* ------------------------------------------------------------------ *)

let validate_rf (shape : Replay.shape) rf_pairs =
  let n = Array.length shape.Replay.events in
  List.iter
    (fun (w, r) ->
      if w < 0 || w >= n || r < 0 || r >= n then reject "rf-dangling" "rf edge (%d,%d) out of range" w r;
      let ew = shape.Replay.events.(w) and er = shape.Replay.events.(r) in
      if not (Trace.is_write ew) then reject "rf-mismatch" "rf source %d is not a write" w;
      if not (Trace.is_read er) then reject "rf-mismatch" "rf target %d is not a read" r;
      if not (Trace.same_loc ew er) then
        reject "rf-mismatch" "rf edge (%d,%d) relates different locations" w r;
      if Trace.value ew <> Trace.value er then
        reject "rf-mismatch" "rf edge (%d,%d) relates different values" w r)
    rf_pairs;
  List.iter
    (fun r ->
      match List.filter (fun (_, r') -> r' = r) rf_pairs with
      | [ _ ] -> ()
      | [] -> reject "rf-missing" "read %d has no rf source" r
      | _ -> reject "rf-mismatch" "read %d has multiple rf sources" r)
    shape.Replay.reads;
  if List.length rf_pairs <> List.length shape.Replay.reads then
    reject "rf-dangling" "rf has %d edges for %d reads" (List.length rf_pairs)
      (List.length shape.Replay.reads)

let validate_co (shape : Replay.shape) chains =
  let locs = List.map (fun (l, _, _) -> l) (Replay.co_locations shape) in
  if List.sort compare (List.map fst chains) <> List.sort compare locs then
    reject "co-malformed" "co chains do not cover exactly the locations";
  List.iter
    (fun (l, init_id, others) ->
      match List.assoc_opt l chains with
      | None -> reject "co-malformed" "location %d has no chain" l
      | Some [] -> reject "co-malformed" "location %d has an empty chain" l
      | Some (first :: rest) ->
          if first <> init_id then
            reject "co-malformed" "location %d: chain does not start at the init write" l;
          if List.sort compare rest <> List.sort compare others then
            reject "co-malformed"
              "location %d: chain is not a permutation of the location's writes" l)
    (Replay.co_locations shape)

let rel_of_chains n chains =
  let co = Rel.create n in
  List.iter
    (fun (_, chain) ->
      let rec pairs = function
        | [] | [ _ ] -> ()
        | x :: rest ->
            List.iter (fun y -> Rel.add co x y) rest;
            pairs rest
      in
      pairs chain)
    chains;
  co

(* ------------------------------------------------------------------ *)
(* Witness validation.                                                 *)
(* ------------------------------------------------------------------ *)

(* Replay the witness's threads, rebuild the canonical shape from the
   replayed runs and demand it match the claimed events exactly.
   Returns the shape and the replayed final state. *)
let replay_witness (program : Program.t) (w : Certificate.witness) =
  let nthreads = Array.length program.Program.threads in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.tid <> Trace.init_tid && (e.Trace.tid < 0 || e.Trace.tid >= nthreads)
      then reject "events-malformed" "event %d names thread %d" e.Trace.id e.Trace.tid)
    w.Certificate.w_events;
  let thread_actions tid =
    List.filter (fun (e : Trace.event) -> e.Trace.tid = tid) w.Certificate.w_events
    |> List.sort (fun (a : Trace.event) b -> compare (a.Trace.po, a.Trace.id) (b.Trace.po, b.Trace.id))
    |> List.map (fun (e : Trace.event) -> e.Trace.action)
  in
  let runs =
    Array.init nthreads (fun tid ->
        match Replay.replay_thread ~fuel program.Program.threads.(tid) (thread_actions tid) with
        | Ok run -> run
        | Error msg -> reject "replay-mismatch" "thread %d: %s" tid msg
        | exception Replay.Fuel -> reject "replay-fuel" "thread %d exhausted replay fuel" tid)
  in
  let shape = Replay.shape_of_runs program runs in
  let claimed = Array.of_list w.Certificate.w_events in
  if Array.length claimed <> Array.length shape.Replay.events then
    reject "events-mismatch" "claimed %d events, replay produced %d"
      (Array.length claimed)
      (Array.length shape.Replay.events);
  Array.iteri
    (fun i (e : Trace.event) ->
      if claimed.(i) <> e then
        reject "events-mismatch" "event %d differs from the canonical replay (%s vs %s)" i
          (Trace.event_line claimed.(i))
          (Trace.event_line e))
    shape.Replay.events;
  (shape, runs)

let check_witness model (program : Program.t) cond (w : Certificate.witness) =
  let shape, runs = replay_witness program w in
  validate_rf shape w.Certificate.w_rf;
  validate_co shape w.Certificate.w_co;
  let n = Array.length shape.Replay.events in
  let rf = Rel.of_list n (List.map (fun (a, b) -> (a, b)) w.Certificate.w_rf) in
  let co = rel_of_chains n w.Certificate.w_co in
  (match Axioms.violations model (Axioms.ctx_of_shape shape) ~rf ~co with
  | [] -> ()
  | name :: _ as all ->
      reject ("axiom:" ^ name) "execution violates %s under %s" (String.concat ", " all)
        (Axioms.model_name model));
  let regs = Replay.regs_of_runs runs in
  let mem = Replay.memory_of_chains shape w.Certificate.w_co in
  if List.sort compare w.Certificate.w_regs <> regs then
    reject "final-state-mismatch" "claimed registers differ from the replayed final state";
  if List.sort compare w.Certificate.w_mem <> mem then
    reject "final-state-mismatch" "claimed memory differs from the co-maximal writes";
  if not (cond_satisfied cond ~regs ~mem) then
    reject "condition-unsatisfied" "the witness does not satisfy the condition";
  ()

(* ------------------------------------------------------------------ *)
(* Forbidden validation.                                               *)
(* ------------------------------------------------------------------ *)

let check_forbidden model (program : Program.t) cond (f : Certificate.forbidden_body) =
  (* Recount the candidate space from the program alone. *)
  let combos =
    match Replay.combos ~fuel program with
    | cs -> cs
    | exception Replay.Fuel -> reject "replay-fuel" "program exhausted interpretation fuel"
  in
  let expected = Hashtbl.create 16 in
  (* events-key -> (shape, runs list, per-combo candidate count, multiplicity) *)
  let total_expected = ref 0 in
  List.iter
    (fun runs ->
      let shape = Replay.shape_of_runs program runs in
      let rf_product =
        List.fold_left
          (fun acc r -> acc * List.length (Replay.rf_candidates shape r))
          1 shape.Replay.reads
      in
      let co_product =
        List.fold_left
          (fun acc (_, _, others) -> acc * fact (List.length others))
          1
          (Replay.co_locations shape)
      in
      let count = rf_product * co_product in
      if count > 0 then begin
        total_expected := !total_expected + count;
        let key = Trace.events_key (Array.to_list shape.Replay.events) in
        match Hashtbl.find_opt expected key with
        | Some (sh, rs, c, mult) -> Hashtbl.replace expected key (sh, runs :: rs, c, mult + 1)
        | None -> Hashtbl.replace expected key (shape, [ runs ], count, 1)
      end)
    combos;
  (* The certificate must list exactly one combo per feasible run
     combination (multiset match on the canonical events). *)
  let seen_mult = Hashtbl.create 16 in
  List.iter
    (fun (x : Certificate.combo) ->
      let key = Trace.events_key x.Certificate.x_events in
      Hashtbl.replace seen_mult key (1 + Option.value ~default:0 (Hashtbl.find_opt seen_mult key)))
    f.Certificate.f_combos;
  Hashtbl.iter
    (fun key (_, _, _, mult) ->
      let got = Option.value ~default:0 (Hashtbl.find_opt seen_mult key) in
      if got <> mult then
        reject "combo-set-mismatch"
          "a feasible run combination appears %d time(s) in the certificate, expected %d"
          got mult)
    expected;
  Hashtbl.iter
    (fun key _ ->
      if not (Hashtbl.mem expected key) then
        reject "combo-set-mismatch" "certificate lists a run combination the program cannot produce")
    seen_mult;
  (* Per combo: every candidate well-formed and distinct, the count
     exactly the recomputed rf x co product (=> exhaustiveness), and
     no consistent candidate may satisfy the condition. *)
  let total_listed = ref 0 in
  List.iter
    (fun (x : Certificate.combo) ->
      let key = Trace.events_key x.Certificate.x_events in
      let shape, runs_list, count, _ =
        match Hashtbl.find_opt expected key with Some e -> e | None -> assert false
      in
      if List.length x.Certificate.x_candidates <> count then
        reject "candidate-count-mismatch" "combo lists %d candidates, the rf/co space has %d"
          (List.length x.Certificate.x_candidates)
          count;
      total_listed := !total_listed + count;
      let n = Array.length shape.Replay.events in
      let ctx = Axioms.ctx_of_shape shape in
      let dedup = Hashtbl.create 16 in
      List.iter
        (fun (k : Certificate.candidate) ->
          validate_rf shape k.Certificate.k_rf;
          validate_co shape k.Certificate.k_co;
          let norm =
            ( List.sort compare k.Certificate.k_rf,
              List.sort compare k.Certificate.k_co )
          in
          if Hashtbl.mem dedup norm then
            reject "duplicate-candidate" "a candidate execution is listed twice";
          Hashtbl.replace dedup norm ();
          let rf = Rel.of_list n k.Certificate.k_rf in
          let co = rel_of_chains n k.Certificate.k_co in
          if Axioms.violations model ctx ~rf ~co = [] then begin
            let mem = Replay.memory_of_chains shape k.Certificate.k_co in
            List.iter
              (fun runs ->
                let regs = Replay.regs_of_runs runs in
                if cond_satisfied cond ~regs ~mem then
                  reject "forbidden-refuted"
                    "a consistent execution satisfies the condition under %s"
                    (Axioms.model_name model))
              runs_list
          end)
        x.Certificate.x_candidates)
    f.Certificate.f_combos;
  if f.Certificate.f_count <> !total_expected || !total_listed <> !total_expected then
    reject "count-mismatch" "certificate claims %d candidates, the program's space has %d"
      f.Certificate.f_count !total_expected;
  ()

(* ------------------------------------------------------------------ *)
(* Minimality validation.                                              *)
(* ------------------------------------------------------------------ *)

(* Independent re-statement of what a placement means: insert the
   site's barrier immediately before instruction [at] of thread
   [tid]. *)
let apply_sites (p : Program.t) (sites : Certificate.site list) =
  let threads =
    Array.mapi
      (fun tid thread ->
        let here = List.filter (fun (s : Certificate.site) -> s.Certificate.s_tid = tid) sites in
        if here = [] then thread
        else begin
          let out = ref [] in
          Array.iteri
            (fun i instr ->
              List.iter
                (fun (s : Certificate.site) ->
                  if s.Certificate.s_at = i then
                    out := Instr.Barrier s.Certificate.s_barrier :: !out)
                here;
              out := instr :: !out)
            thread;
          Array.of_list (List.rev !out)
        end)
      p.Program.threads
  in
  { p with Program.threads }

let check_minimal model (program : Program.t) cond (m : Certificate.minimality) =
  let nthreads = Array.length program.Program.threads in
  List.iter
    (fun (s : Certificate.site) ->
      if s.Certificate.s_tid < 0 || s.Certificate.s_tid >= nthreads then
        reject "site-malformed" "site names thread %d" s.Certificate.s_tid;
      if
        s.Certificate.s_at < 0
        || s.Certificate.s_at >= Array.length program.Program.threads.(s.Certificate.s_tid)
      then
        reject "site-malformed" "site %d/%d is out of range" s.Certificate.s_tid
          s.Certificate.s_at)
    m.Certificate.m_sites;
  (* The full placement forbids the condition... *)
  check_forbidden model (apply_sites program m.Certificate.m_sites) cond m.Certificate.m_fenced;
  (* ...and every single-site weakening provably allows it again. *)
  let nsites = List.length m.Certificate.m_sites in
  List.iter
    (fun (idx, _) ->
      if idx < 0 || idx >= nsites then
        reject "refutation-malformed" "refutation names site %d of %d" idx nsites)
    m.Certificate.m_refutations;
  List.iteri
    (fun idx _ ->
      match List.assoc_opt idx m.Certificate.m_refutations with
      | None -> reject "refutation-missing" "no refutation for dropping site %d" idx
      | Some w ->
          let weaker =
            List.filteri (fun i _ -> i <> idx) m.Certificate.m_sites
          in
          check_witness model (apply_sites program weaker) cond w)
    m.Certificate.m_sites;
  ()

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let check (t : Certificate.t) : (unit, reason) result =
  match
    (match Program.validate t.Certificate.program with
    | Ok () -> ()
    | Error msg -> reject "bad-program" "%s" msg);
    match t.Certificate.claim with
    | Certificate.Allowed w ->
        check_witness t.Certificate.model t.Certificate.program t.Certificate.cond w
    | Certificate.Forbidden f ->
        check_forbidden t.Certificate.model t.Certificate.program t.Certificate.cond f
    | Certificate.Minimal m ->
        check_minimal t.Certificate.model t.Certificate.program t.Certificate.cond m
  with
  | () -> Ok ()
  | exception Reject r -> Error r
  | exception Trace.Bad msg -> Error { code = "malformed"; detail = msg }

let check_string s =
  match Certificate.of_string s with
  | Error msg -> Error { code = "parse"; detail = msg }
  | Ok t -> ( match check t with Ok () -> Ok t | Error r -> Error r)
