open Wmm_isa

(* Canonical Owens-style memory-event traces, and a line/token level
   serialization for them and for the programs they certify.

   This module (with the rest of wmm_cert) is the TRUSTED side of the
   certificate story: it depends on wmm_isa only and shares no code
   with the exploration engines in lib/memory_model or the analysis
   pipeline.  Everything here is deliberately first-order - events are
   records, relations are pair lists - so the checker stays small
   enough to audit by eye. *)

type action =
  | Read of { loc : Instr.loc; value : Instr.value; order : Instr.order }
  | Write of { loc : Instr.loc; value : Instr.value; order : Instr.order; rmw : bool }
      (** [rmw] marks the successful write half of an exclusive pair.
          Store-exclusive failures emit no event, so without the flag a
          plain store to the same location and value could masquerade
          as the exclusive write during replay. *)
  | Fence of Instr.barrier

type event = { id : int; tid : int; po : int; action : action }

let init_tid = -1

let is_read e = match e.action with Read _ -> true | _ -> false
let is_write e = match e.action with Write _ -> true | _ -> false
let is_fence e = match e.action with Fence _ -> true | _ -> false
let is_init e = e.tid = init_tid

let loc e =
  match e.action with Read { loc; _ } | Write { loc; _ } -> Some loc | Fence _ -> None

let value e =
  match e.action with
  | Read { value; _ } | Write { value; _ } -> Some value
  | Fence _ -> None

let order e =
  match e.action with
  | Read { order; _ } | Write { order; _ } -> Some order
  | Fence _ -> None

let is_rmw_write e = match e.action with Write { rmw; _ } -> rmw | _ -> false

let same_loc a b = match (loc a, loc b) with Some x, Some y -> x = y | _ -> false

let fence_kind k e = match e.action with Fence b -> b = k | _ -> false

let is_acquire e =
  match e.action with
  | Read { order = Instr.Acquire | Instr.Acq_rel | Instr.Sc; _ } -> true
  | _ -> false

let is_release e =
  match e.action with
  | Write { order = Instr.Release | Instr.Acq_rel | Instr.Sc; _ } -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Tokens.  Every serialized form below is a line of space-separated
   tokens; no token contains a space, so parsing is a split.           *)
(* ------------------------------------------------------------------ *)

let order_token = function
  | Instr.Plain -> "pln"
  | Instr.Acquire -> "acq"
  | Instr.Release -> "rel"
  | Instr.Acq_rel -> "ar"
  | Instr.Sc -> "sc"

let order_of_token = function
  | "pln" -> Some Instr.Plain
  | "acq" -> Some Instr.Acquire
  | "rel" -> Some Instr.Release
  | "ar" -> Some Instr.Acq_rel
  | "sc" -> Some Instr.Sc
  | _ -> None

let barrier_token = function
  | Instr.Dmb_ish -> "dmb.ish"
  | Instr.Dmb_ishld -> "dmb.ishld"
  | Instr.Dmb_ishst -> "dmb.ishst"
  | Instr.Isb -> "isb"
  | Instr.Sync -> "sync"
  | Instr.Lwsync -> "lwsync"
  | Instr.Isync -> "isync"
  | Instr.Eieio -> "eieio"
  | Instr.Fence_acq -> "fence.acq"
  | Instr.Fence_rel -> "fence.rel"
  | Instr.Fence_acq_rel -> "fence.acqrel"
  | Instr.Fence_sc -> "fence.sc"

let barrier_of_token = function
  | "dmb.ish" -> Some Instr.Dmb_ish
  | "dmb.ishld" -> Some Instr.Dmb_ishld
  | "dmb.ishst" -> Some Instr.Dmb_ishst
  | "isb" -> Some Instr.Isb
  | "sync" -> Some Instr.Sync
  | "lwsync" -> Some Instr.Lwsync
  | "isync" -> Some Instr.Isync
  | "eieio" -> Some Instr.Eieio
  | "fence.acq" -> Some Instr.Fence_acq
  | "fence.rel" -> Some Instr.Fence_rel
  | "fence.acqrel" -> Some Instr.Fence_acq_rel
  | "fence.sc" -> Some Instr.Fence_sc
  | _ -> None

let action_tokens = function
  | Read { loc; value; order } ->
      [ "R"; string_of_int loc; string_of_int value; order_token order ]
  | Write { loc; value; order; rmw } ->
      [
        "W";
        string_of_int loc;
        string_of_int value;
        order_token order;
        (if rmw then "x" else "-");
      ]
  | Fence b -> [ "F"; barrier_token b ]

let event_tokens e =
  string_of_int e.id :: string_of_int e.tid :: string_of_int e.po
  :: action_tokens e.action

let event_line e = String.concat " " ("e" :: event_tokens e)

(* An event list rendered as one token string, used where two event
   sets must be compared for equality (combo matching). *)
let events_key events = String.concat ";" (List.map event_line events)

(* ------------------------------------------------------------------ *)
(* Parsing helpers.                                                    *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let int_of tok =
  match int_of_string_opt tok with Some n -> n | None -> fail "bad integer %S" tok

let order_of tok =
  match order_of_token tok with Some o -> o | None -> fail "bad order %S" tok

let barrier_of tok =
  match barrier_of_token tok with Some b -> b | None -> fail "bad barrier %S" tok

let action_of_tokens = function
  | [ "R"; l; v; o ] -> Read { loc = int_of l; value = int_of v; order = order_of o }
  | [ "W"; l; v; o; x ] ->
      let rmw =
        match x with "x" -> true | "-" -> false | _ -> fail "bad rmw flag %S" x
      in
      Write { loc = int_of l; value = int_of v; order = order_of o; rmw }
  | [ "F"; b ] -> Fence (barrier_of b)
  | toks -> fail "bad action %S" (String.concat " " toks)

let event_of_tokens = function
  | id :: tid :: po :: action ->
      { id = int_of id; tid = int_of tid; po = int_of po; action = action_of_tokens action }
  | toks -> fail "bad event %S" (String.concat " " toks)

(* ------------------------------------------------------------------ *)
(* Program serialization.  Certificates are self-contained: the
   checker revalidates a claim from the certificate file alone, so the
   program rides along in full.                                        *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string b "%20"
      | '%' -> Buffer.add_string b "%25"
      | '\n' -> Buffer.add_string b "%0a"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match String.sub s (i + 1) 2 with
        | "20" -> Buffer.add_char b ' '
        | "25" -> Buffer.add_char b '%'
        | "0a" -> Buffer.add_char b '\n'
        | other -> fail "bad escape %%%s" other);
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let operand_token = function
  | Instr.Imm v -> "i" ^ string_of_int v
  | Instr.Reg r -> "r" ^ string_of_int r

let operand_of tok =
  if String.length tok < 2 then fail "bad operand %S" tok
  else
    let n = int_of (String.sub tok 1 (String.length tok - 1)) in
    match tok.[0] with
    | 'i' -> Instr.Imm n
    | 'r' -> Instr.Reg n
    | _ -> fail "bad operand %S" tok

let binop_token = function
  | Instr.Add -> "add"
  | Instr.Sub -> "sub"
  | Instr.Xor -> "xor"
  | Instr.And -> "and"

let binop_of = function
  | "add" -> Instr.Add
  | "sub" -> Instr.Sub
  | "xor" -> Instr.Xor
  | "and" -> Instr.And
  | tok -> fail "bad binop %S" tok

let instr_tokens = function
  | Instr.Load { dst; addr; order } ->
      [ "ld"; string_of_int dst; operand_token addr; order_token order ]
  | Instr.Store { src; addr; order } ->
      [ "st"; operand_token src; operand_token addr; order_token order ]
  | Instr.Load_exclusive { dst; addr; order } ->
      [ "ldx"; string_of_int dst; operand_token addr; order_token order ]
  | Instr.Store_exclusive { status; src; addr; order } ->
      [ "stx"; string_of_int status; operand_token src; operand_token addr; order_token order ]
  | Instr.Barrier b -> [ "bar"; barrier_token b ]
  | Instr.Mov { dst; src } -> [ "mov"; string_of_int dst; operand_token src ]
  | Instr.Op { op; dst; a; b } ->
      [ "op"; binop_token op; string_of_int dst; operand_token a; operand_token b ]
  | Instr.Cbnz { src; offset } -> [ "cbnz"; string_of_int src; string_of_int offset ]
  | Instr.Cbz { src; offset } -> [ "cbz"; string_of_int src; string_of_int offset ]
  | Instr.Nop -> [ "nop" ]

let instr_of_tokens = function
  | [ "ld"; d; a; o ] ->
      Instr.Load { dst = int_of d; addr = operand_of a; order = order_of o }
  | [ "st"; s; a; o ] ->
      Instr.Store { src = operand_of s; addr = operand_of a; order = order_of o }
  | [ "ldx"; d; a; o ] ->
      Instr.Load_exclusive { dst = int_of d; addr = operand_of a; order = order_of o }
  | [ "stx"; st; s; a; o ] ->
      Instr.Store_exclusive
        { status = int_of st; src = operand_of s; addr = operand_of a; order = order_of o }
  | [ "bar"; b ] -> Instr.Barrier (barrier_of b)
  | [ "mov"; d; s ] -> Instr.Mov { dst = int_of d; src = operand_of s }
  | [ "op"; op; d; a; b ] ->
      Instr.Op { op = binop_of op; dst = int_of d; a = operand_of a; b = operand_of b }
  | [ "cbnz"; s; off ] -> Instr.Cbnz { src = int_of s; offset = int_of off }
  | [ "cbz"; s; off ] -> Instr.Cbz { src = int_of s; offset = int_of off }
  | [ "nop" ] -> Instr.Nop
  | toks -> fail "bad instruction %S" (String.concat " " toks)

let program_lines (p : Program.t) =
  let name = [ "name " ^ escape p.Program.name ] in
  let locs =
    match Array.to_list p.Program.location_names with
    | [] -> []
    | names -> [ "locnames " ^ String.concat " " (List.map escape names) ]
  in
  let init =
    List.map (fun (l, v) -> Printf.sprintf "init %d %d" l v) p.Program.init
  in
  let threads =
    Array.to_list
      (Array.map
         (fun thread ->
           "thread "
           ^ String.concat " | "
               (Array.to_list (Array.map (fun i -> String.concat " " (instr_tokens i)) thread)))
         p.Program.threads)
  in
  name @ locs @ init @ threads

(* Consume program lines from [lines]; returns the program and the
   remaining lines.  The section ends at the first line that is not a
   program line. *)
let program_of_lines lines =
  let name = ref "anon" in
  let locnames = ref [||] in
  let init = ref [] in
  let threads = ref [] in
  let rec go = function
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | "name" :: n -> (
            name := unescape (String.concat " " n);
            go rest)
        | "locnames" :: ns ->
            locnames := Array.of_list (List.map unescape ns);
            go rest
        | [ "init"; l; v ] ->
            init := (int_of l, int_of v) :: !init;
            go rest
        | "thread" :: toks ->
            let toks = List.filter (( <> ) "") toks in
            let instrs =
              if toks = [] then []
              else
                String.concat " " toks |> String.split_on_char '|'
                |> List.map (fun s ->
                       instr_of_tokens
                         (List.filter (( <> ) "") (String.split_on_char ' ' (String.trim s))))
            in
            threads := Array.of_list instrs :: !threads;
            go rest
        | _ -> line :: rest)
    | [] -> []
  in
  let rest = go lines in
  let p =
    Program.make ~location_names:!locnames ~init:(List.rev !init) ~name:!name
      (List.rev !threads)
  in
  (p, rest)
