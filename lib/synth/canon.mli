open Wmm_litmus

(** Program-level canonical forms for litmus tests.

    Two tests get the same canonical string exactly when they are
    isomorphic as litmus tests: equal up to thread order, location
    names/indices, register names, concrete store values, and the
    instruction sequences used to realise dependencies (the xor-self
    address idiom and a direct reg-to-reg data copy canonicalise
    identically).  What is kept is the abstract shape the models see:
    per-thread access sequences (direction, location class,
    acquire/release order, exclusivity), the fences and
    address/data/control dependencies between consecutive accesses,
    and the final-state condition mapped onto accesses with values
    renamed by per-location store rank.

    Thread order is canonicalised by sorting threads on a
    permutation-invariant local signature and taking the minimum
    encoding over the orders that tie, so the cost stays near-linear
    for tests whose threads differ structurally. *)

val of_test : Test.t -> string

val equal : Test.t -> Test.t -> bool
(** [equal a b = (of_test a = of_test b)]. *)
