open Wmm_isa
open Wmm_model
open Wmm_litmus

type generated = { g_test : Test.t; g_cycle : Cycle.t option; g_canon : string }

exception Reject

module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else begin
    let r = find t t.(i) in
    t.(i) <- r;
    r
  end

  let union t i j =
    let ri = find t i and rj = find t j in
    if ri <> rj then t.(ri) <- rj
end

let loc_names = [| "x"; "y"; "z"; "w"; "a"; "b"; "c"; "d" |]

let compile arch (cycle : Cycle.t) : Test.t option =
  let open Cycle in
  let n = List.length cycle in
  if n < 2 then None
  else
    try
      let edges0 = Array.of_list cycle in
      let is_com = function Com _ -> true | Po _ -> false in
      (* Rotate so the cycle ends with a communication edge; threads
         then read off left to right. *)
      let r =
        if is_com edges0.(n - 1) then 0
        else begin
          let i = ref (-1) in
          Array.iteri (fun k e -> if !i < 0 && is_com e then i := k) edges0;
          if !i < 0 then raise Reject;
          (!i + 1) mod n
        end
      in
      let edge i = edges0.((i + r) mod n) in
      let dir i = src_dir (edge i) in
      let prev i = (i + n - 1) mod n in
      let next i = (i + 1) mod n in
      (* Event [i] is the source of edge [i]; direction chaining. *)
      for i = 0 to n - 1 do
        if dst_dir (edge i) <> dir (next i) then raise Reject
      done;
      (* Thread assignment: external com edges are the boundaries. *)
      let tid = Array.make n 0 in
      let t = ref 0 in
      for i = 0 to n - 2 do
        (match edge i with Com { ext = true; _ } -> incr t | _ -> ());
        tid.(i + 1) <- !t
      done;
      let nthreads = !t + 1 in
      for i = 0 to n - 1 do
        let j = next i in
        match edge i with
        | Po _ -> if tid.(i) <> tid.(j) then raise Reject
        | Com { ext = true; _ } -> if tid.(i) = tid.(j) then raise Reject
        | Com { ext = false; _ } -> if tid.(i) <> tid.(j) then raise Reject
      done;
      (* Locations: unify along com and same-location po edges, then
         distinct-location po edges must stay distinct. *)
      let uf = Uf.create n in
      for i = 0 to n - 1 do
        match edge i with
        | Com _ -> Uf.union uf i (next i)
        | Po p when p.same_loc -> Uf.union uf i (next i)
        | Po _ -> ()
      done;
      for i = 0 to n - 1 do
        match edge i with
        | Po p when not p.same_loc ->
            if Uf.find uf i = Uf.find uf (next i) then raise Reject
        | _ -> ()
      done;
      let loc_of = Array.make n (-1) in
      let loc_tbl = Hashtbl.create 8 in
      for i = 0 to n - 1 do
        let root = Uf.find uf i in
        let l =
          match Hashtbl.find_opt loc_tbl root with
          | Some l -> l
          | None ->
              let l = Hashtbl.length loc_tbl in
              Hashtbl.add loc_tbl root l;
              l
        in
        loc_of.(i) <- l
      done;
      let nlocs = Hashtbl.length loc_tbl in
      if nlocs > Array.length loc_names then raise Reject;
      (* Per-location writes, in event order. *)
      let writes = Array.make nlocs [] in
      for i = n - 1 downto 0 do
        if dir i = W then writes.(loc_of.(i)) <- i :: writes.(loc_of.(i))
      done;
      Array.iter (fun ws -> if List.length ws > 2 then raise Reject) writes;
      (* Coherence constraints: explicit co edges, plus rf;fr through
         a read (it reads the first write and is fr-before the
         second). *)
      let co_cons = ref [] in
      for i = 0 to n - 1 do
        (match edge i with
        | Com { c = Co; _ } -> co_cons := (i, next i) :: !co_cons
        | _ -> ());
        if dir i = R then
          match (edge (prev i), edge i) with
          | Com { c = Rf; _ }, Com { c = Fr; _ } ->
              let w1 = prev i and w2 = next i in
              if w1 = w2 then raise Reject;
              co_cons := (w1, w2) :: !co_cons
          | _ -> ()
      done;
      let co_order =
        Array.map
          (fun ws ->
            match ws with
            | [] | [ _ ] -> ws
            | [ a; b ] ->
                let ab = List.mem (a, b) !co_cons and ba = List.mem (b, a) !co_cons in
                if ab && not ba then [ a; b ]
                else if ba && not ab then [ b; a ]
                else raise Reject
            | _ -> raise Reject)
          writes
      in
      (* Values: one variable per event plus a constant-zero node;
         rf edges and data dependencies equate variables; a read with
         no incoming rf takes its fr-target's coherence predecessor
         (or zero).  Writes then get their coherence position. *)
      let vuf = Uf.create (n + 1) in
      for i = 0 to n - 1 do
        match edge i with
        | Com { c = Rf; _ } -> Uf.union vuf i (next i)
        | Po { kind = Po_dep Data; _ } -> Uf.union vuf i (next i)
        | _ -> ()
      done;
      for i = 0 to n - 1 do
        if dir i = R then
          let rf_in = match edge (prev i) with Com { c = Rf; _ } -> true | _ -> false in
          match edge i with
          | Com { c = Fr; _ } when not rf_in ->
              let w = next i in
              let pred =
                match co_order.(loc_of.(w)) with
                | [ a; b ] when b = w -> Some a
                | _ -> None
              in
              Uf.union vuf i (match pred with Some p -> p | None -> n)
          | _ -> ()
      done;
      let assigned = Hashtbl.create 8 in
      Hashtbl.add assigned (Uf.find vuf n) 0;
      Array.iter
        (fun ws ->
          List.iteri
            (fun k w ->
              let root = Uf.find vuf w in
              let v = k + 1 in
              match Hashtbl.find_opt assigned root with
              | Some v' -> if v' <> v then raise Reject
              | None -> Hashtbl.add assigned root v)
            ws)
        co_order;
      let value_of i =
        match Hashtbl.find_opt assigned (Uf.find vuf i) with
        | Some v -> v
        | None -> raise Reject
      in
      (* Emission. *)
      let next_reg = Array.make nthreads 1 in
      let fresh t =
        let r = next_reg.(t) in
        next_reg.(t) <- r + 1;
        r
      in
      let read_reg = Array.make n (-1) in
      let rev_threads = Array.make nthreads [] in
      let emit t instrs = rev_threads.(t) <- List.rev_append instrs rev_threads.(t) in
      for i = 0 to n - 1 do
        let t = tid.(i) in
        let po_in = match edge (prev i) with Po p -> Some p | Com _ -> None in
        let annot =
          match po_in with
          | Some p when p.d_an <> An_plain -> p.d_an
          | _ -> ( match edge i with Po p -> p.s_an | Com _ -> An_plain)
        in
        let loc = loc_of.(i) in
        let src_reg = read_reg.(prev i) in
        let pre, addr =
          match po_in with
          | Some { kind = Po_dep Addr; _ } ->
              let rt = fresh t in
              ( [ Test.xor_self ~dst:rt ~src:src_reg; Test.addi ~dst:rt ~src:rt loc ],
                Instr.Reg rt )
          | Some { kind = Po_dep Ctrl; _ } -> (Test.ctrl_then src_reg, Instr.Imm loc)
          | Some { kind = Po_dep Ctrl_fence; _ } ->
              ( Test.ctrl_then src_reg
                @ [ (match arch with Arch.Armv8 -> Test.isb_i | Arch.Power7 -> Test.isync_i) ],
                Instr.Imm loc )
          | Some { kind = Po_fence b; _ } -> ([ Instr.Barrier b ], Instr.Imm loc)
          | _ -> ([], Instr.Imm loc)
        in
        let order =
          match (dir i, annot) with
          | R, An_acq -> Instr.Acquire
          | W, An_rel -> Instr.Release
          | _ -> Instr.Plain
        in
        let access =
          match dir i with
          | R ->
              let rd = fresh t in
              read_reg.(i) <- rd;
              Instr.Load { dst = rd; addr; order }
          | W ->
              let src =
                match po_in with
                | Some { kind = Po_dep Data; _ } -> Instr.Reg src_reg
                | _ -> Instr.Imm (value_of i)
              in
              Instr.Store { src; addr; order }
        in
        emit t (pre @ [ access ])
      done;
      let threads =
        Array.to_list (Array.map (fun l -> Array.of_list (List.rev l)) rev_threads)
      in
      let condition =
        List.filter_map
          (fun i -> if dir i = R then Some ((tid.(i), read_reg.(i)), value_of i) else None)
          (List.init n Fun.id)
      in
      let mem_condition =
        List.filter_map
          (fun l ->
            match co_order.(l) with
            | [ _; last ] -> Some (l, value_of last)
            | _ -> None)
          (List.init nlocs Fun.id)
      in
      Some
        (Test.make ~name:(Cycle.name arch cycle)
           ~description:("synthesized: " ^ Cycle.to_string cycle)
           ~locations:(Array.sub loc_names 0 nlocs)
           ~threads ~condition ~mem_condition ~expected:[] ())
    with Reject -> None

(* ------------------------------------------------------------------ *)
(* The exclusive-access family                                        *)
(* ------------------------------------------------------------------ *)

let cas_tests () =
  let thread =
    [|
      Test.ldxr ~dst:1 ~loc:0;
      Test.addi ~dst:2 ~src:1 1;
      Test.stxr ~status:3 ~src:2 ~loc:0;
    |]
  in
  let opts = [ None; Some 0; Some 1 ] in
  let mems = [ None; Some 1; Some 2 ] in
  let tests = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun s0 ->
              List.iter
                (fun s1 ->
                  List.iter
                    (fun m ->
                      if not (a = None && b = None && s0 = None && s1 = None && m = None)
                      then begin
                        let part c = function
                          | None -> []
                          | Some v -> [ c ^ string_of_int v ]
                        in
                        let name =
                          String.concat "+"
                            ("CAS"
                            :: List.concat
                                 [ part "a" a; part "b" b; part "p" s0; part "q" s1; part "m" m ])
                        in
                        let cond key = function None -> [] | Some v -> [ (key, v) ] in
                        let condition =
                          List.concat
                            [
                              cond (0, 1) a; cond (1, 1) b; cond (0, 3) s0; cond (1, 3) s1;
                            ]
                        in
                        let mem_condition = match m with None -> [] | Some v -> [ (0, v) ] in
                        tests :=
                          Test.make ~name
                            ~description:"synthesized: exclusive increment race"
                            ~locations:[| "x" |]
                            ~threads:[ thread; thread ]
                            ~condition ~mem_condition ~expected:[] ()
                          :: !tests
                      end)
                    mems)
                opts)
            opts)
        opts)
    opts;
  List.rev !tests

(* ------------------------------------------------------------------ *)
(* Family assembly                                                    *)
(* ------------------------------------------------------------------ *)

(* Library names are reserved: a generated test may keep one only when
   it is canonically identical to the library test of that name, so
   that names stay unambiguous across the union of both sets. *)
let library_canons =
  lazy
    (let tbl = Hashtbl.create 64 in
     List.iter
       (fun (t : Test.t) -> Hashtbl.replace tbl t.Test.name (Canon.of_test t))
       Library.all;
     tbl)

let uniquify gens =
  let lib = Lazy.force library_canons in
  let seen = Hashtbl.create 512 in
  let rec claim name canon =
    match Hashtbl.find_opt seen name with
    | None when
        (match Hashtbl.find_opt lib name with
        | Some lib_canon -> lib_canon = canon
        | None -> true) ->
        Hashtbl.add seen name 1;
        name
    | prior ->
        let k = match prior with Some k -> k + 1 | None -> 2 in
        Hashtbl.replace seen name k;
        claim (Printf.sprintf "%s~%d" name k) canon
  in
  List.map
    (fun g ->
      let name = claim g.g_test.Test.name g.g_canon in
      if name = g.g_test.Test.name then g
      else { g with g_test = { g.g_test with Test.name = name } })
    gens

let generate ?(max_edges = Cycle.default_max_edges) ?atomics arch =
  let atomics = match atomics with Some a -> a | None -> arch = Arch.Armv8 in
  let seen = Hashtbl.create 4096 in
  let keep test cycle =
    let key = Canon.of_test test in
    if Hashtbl.mem seen key then None
    else begin
      Hashtbl.add seen key ();
      Some { g_test = test; g_cycle = cycle; g_canon = key }
    end
  in
  let base =
    List.filter_map
      (fun c ->
        match compile arch c with None -> None | Some t -> keep t (Some c))
      (Cycle.enumerate ~max_edges arch)
  in
  let cas =
    if atomics then List.filter_map (fun t -> keep t None) (cas_tests ()) else []
  in
  uniquify (base @ cas)

let verdict_models arch = [ Axiomatic.Sc; Axiomatic.Tso; Axiomatic.model_for_arch arch ]

let with_verdicts ?models arch (t : Test.t) =
  let models = match models with Some m -> m | None -> verdict_models arch in
  { t with Test.expected = List.map (fun m -> (m, Check.axiomatic_allowed m t)) models }

let covers family (t : Test.t) =
  let key = Canon.of_test t in
  List.find_opt (fun g -> g.g_canon = key) family

let verdict_table ?max_edges archs =
  let b = Buffer.create (1 lsl 16) in
  List.iter
    (fun arch ->
      List.iter
        (fun g ->
          let t = with_verdicts arch g.g_test in
          List.iter
            (fun (model, allowed) ->
              Printf.bprintf b "%s|%s|%s|%s\n" t.Test.name (Arch.name arch)
                (Axiomatic.model_name model)
                (if allowed then "allow" else "forbid"))
            t.Test.expected)
        (generate ?max_edges arch))
    archs;
  Buffer.contents b
