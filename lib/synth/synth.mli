open Wmm_isa
open Wmm_model
open Wmm_litmus

(** diy-style litmus-test synthesis: compile relaxation cycles (see
    {!Cycle}) into well-formed {!Test.t} values, prune isomorphs via
    {!Canon}, and name the results after the classic families.

    Compilation unifies locations along communication and same-location
    edges (rejecting cycles whose distinct-location edges collapse),
    derives per-location coherence chains (at most two writes per
    location, totally ordered by the cycle's co and rf;fr edges),
    solves store values so that every read's expected value is
    well-defined (data-dependent stores forward their source read's
    value), and emits the standard instruction idioms: xor-self plus
    add for address dependencies, a register store for data
    dependencies, compare-and-branch-over-nothing for control
    dependencies.  The condition constrains every read, and pins the
    coherence order of two-write locations through a final-memory
    clause, so the condition is reachable exactly when the model
    admits an execution containing the cycle. *)

type generated = {
  g_test : Test.t;  (** [expected = []]; see {!with_verdicts}. *)
  g_cycle : Cycle.t option;  (** [None] for the CAS family. *)
  g_canon : string;  (** {!Canon.of_test} of [g_test]. *)
}

val compile : Arch.t -> Cycle.t -> Test.t option
(** [None] when the cycle has no consistent location/coherence/value
    assignment (e.g. distinct-location edges that unify, three writes
    to one location, or contradictory coherence constraints). *)

val cas_tests : unit -> Test.t list
(** The exclusive-access (ldxr/add/stxr race) family: both threads
    attempt an increment; conditions enumerate observed values,
    success flags and final memory. *)

val generate : ?max_edges:int -> ?atomics:bool -> Arch.t -> generated list
(** The deduplicated family for an architecture at the given cycle
    bound (default {!Cycle.default_max_edges}), deterministically
    ordered, with unique names ([~n] suffixes break the rare naming
    ties).  [atomics] (default: true on ARMv8 only, since exclusives
    print in ARM syntax) appends {!cas_tests}. *)

val verdict_models : Arch.t -> Axiomatic.model list
(** [Sc; Tso; model_for_arch arch] — the models a generated test's
    verdicts are computed under. *)

val with_verdicts : ?models:Axiomatic.model list -> Arch.t -> Test.t -> Test.t
(** Fill [expected] by exhaustive axiomatic exploration. *)

val covers : generated list -> Test.t -> generated option
(** The family member isomorphic to the given test (by canonical
    form), if any. *)

val verdict_table : ?max_edges:int -> Arch.t list -> string
(** One ["name|arch|model|allow"]-style line per (generated test,
    verdict model) pair, in family order: the golden-table format the
    test suite asserts (see [test/data/synth_golden.txt]). *)
