open Wmm_isa
open Wmm_litmus
module EG = Wmm_analysis.Event_graph

(* What a register condition refers to, resolved statically against
   the thread's instruction listing. *)
type cond_target =
  | Ct_load of int  (** Ordinal of the defining load access. *)
  | Ct_status of int  (** Ordinal of the store-exclusive access. *)
  | Ct_raw  (** Set by mov/op or never written: keep raw. *)

let rec perms = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (fun y -> y <> x) l)))
        l

let order_code = function
  | Instr.Plain -> ""
  | Instr.Acquire -> "A"
  | Instr.Release -> "Q"
  | Instr.Acq_rel -> "AQ"
  | Instr.Sc -> "S"

let edge_code (e : EG.po_edge) =
  let fs = List.sort compare (List.map Instr.barrier_mnemonic e.fences) in
  let flag b c = if b then c else "" in
  "["
  ^ String.concat "," fs
  ^ ";"
  ^ flag e.addr_dep "a"
  ^ flag e.data_dep "d"
  ^ flag e.ctrl_dep "c"
  ^ flag (e.ctrl_pipeline <> []) "p"
  ^ "]"

let of_test (t : Test.t) =
  let p = t.Test.program in
  let g = EG.extract p in
  let nthreads = Array.length p.Program.threads in
  let accs = Array.make nthreads [] in
  List.iter (fun (a : EG.access) -> accs.(a.tid) <- a :: accs.(a.tid)) g.EG.accesses;
  let accs = Array.map List.rev accs in
  let edge_between (a : EG.access) (b : EG.access) =
    List.find_opt
      (fun (e : EG.po_edge) -> e.EG.src.EG.node = a.EG.node && e.EG.dst.EG.node = b.EG.node)
      g.EG.edges
  in
  (* Resolve each register condition to its defining access. *)
  let target tid reg =
    if tid < 0 || tid >= nthreads then Ct_raw
    else
      let result = ref Ct_raw in
      Array.iteri
        (fun index instr ->
          let ordinal () =
            let rec find k = function
              | [] -> None
              | (a : EG.access) :: _ when a.EG.index = index -> Some k
              | _ :: rest -> find (k + 1) rest
            in
            find 0 accs.(tid)
          in
          match instr with
          | Instr.Load { dst; _ } | Instr.Load_exclusive { dst; _ } when dst = reg -> (
              match ordinal () with Some k -> result := Ct_load k | None -> ())
          | Instr.Store_exclusive { status; _ } when status = reg -> (
              match ordinal () with Some k -> result := Ct_status k | None -> ())
          | instr when Instr.output_reg instr = Some reg -> result := Ct_raw
          | _ -> ())
        p.Program.threads.(tid);
      !result
  in
  let cond_targets =
    List.map (fun (((tid, reg), v) : (int * Instr.reg) * Instr.value) ->
        ((tid, reg), v, target tid reg))
      t.Test.condition
  in
  (* Permutation-invariant local signature: within-thread location
     classes, no concrete values. *)
  let local_sig tid =
    let seen = Hashtbl.create 4 in
    let lid l =
      match Hashtbl.find_opt seen l with
      | Some i -> string_of_int i
      | None ->
          let i = Hashtbl.length seen in
          Hashtbl.add seen l i;
          string_of_int i
    in
    let acc_code (a : EG.access) =
      (if a.EG.is_write then "W" else "R")
      ^ (match a.EG.loc with Some l -> lid l | None -> "?")
      ^ order_code a.EG.order
      ^ if a.EG.exclusive then "x" else ""
    in
    let rec walk = function
      | [] -> []
      | [ a ] -> [ acc_code a ]
      | a :: (b :: _ as rest) ->
          (acc_code a
          ^ match edge_between a b with Some e -> edge_code e | None -> "[?]")
          :: walk rest
    in
    String.concat ";" (walk accs.(tid))
  in
  let sigs = Array.init nthreads local_sig in
  (* Thread orders: sig-sorted, all permutations within tied groups. *)
  let order = List.sort (fun a b -> compare (sigs.(a), a) (sigs.(b), b)) (List.init nthreads Fun.id) in
  let groups =
    List.fold_left
      (fun groups tid ->
        match groups with
        | (s, members) :: rest when s = sigs.(tid) -> (s, tid :: members) :: rest
        | _ -> (sigs.(tid), [ tid ]) :: groups)
      [] order
    |> List.rev_map (fun (_, members) -> List.rev members)
  in
  let rec orders = function
    | [] -> [ [] ]
    | g :: rest ->
        let tails = orders rest in
        List.concat_map (fun head -> List.map (fun tail -> head @ tail) tails) (perms g)
  in
  let encode perm =
    let loc_ids = Hashtbl.create 8 in
    let loc_id l =
      match Hashtbl.find_opt loc_ids l with
      | Some i -> Some i
      | None -> None
    in
    let alloc_loc l =
      if not (Hashtbl.mem loc_ids l) then Hashtbl.add loc_ids l (Hashtbl.length loc_ids)
    in
    (* loc -> (value, rank) for statically-valued stores, scan order. *)
    let ranks : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun tid ->
        List.iter
          (fun (a : EG.access) ->
            (match a.EG.loc with Some l -> alloc_loc l | None -> ());
            match (a.EG.is_write, a.EG.loc, a.EG.value) with
            | true, Some l, Some v ->
                let existing = Option.value ~default:[] (Hashtbl.find_opt ranks l) in
                if not (List.mem_assoc v existing) then
                  Hashtbl.replace ranks l (existing @ [ (v, List.length existing + 1) ])
            | _ -> ())
          accs.(tid))
      perm;
    let loc_code l =
      match loc_id l with Some i -> "L" ^ string_of_int i | None -> "?" ^ string_of_int l
    in
    let value_code l v =
      if v = 0 then "z"
      else
        match Hashtbl.find_opt ranks l with
        | Some assoc -> (
            match List.assoc_opt v assoc with
            | Some r -> "v" ^ string_of_int r
            | None -> "#" ^ string_of_int v)
        | None -> "#" ^ string_of_int v
    in
    let acc_code (a : EG.access) =
      (if a.EG.is_write then "W" else "R")
      ^ (match a.EG.loc with Some l -> loc_code l | None -> "?")
      ^ order_code a.EG.order
      ^ if a.EG.exclusive then "x" else ""
    in
    let thread_code tid =
      let rec walk = function
        | [] -> []
        | [ a ] -> [ acc_code a ]
        | a :: (b :: _ as rest) ->
            (acc_code a
            ^ match edge_between a b with Some e -> edge_code e | None -> "[?]")
            :: walk rest
      in
      String.concat ";" (walk accs.(tid))
    in
    let threads = String.concat "||" (List.map thread_code perm) in
    let new_tid tid =
      let rec find k = function
        | [] -> -1
        | t :: _ when t = tid -> k
        | _ :: rest -> find (k + 1) rest
      in
      find 0 perm
    in
    let reg_conds =
      List.map
        (fun ((tid, reg), v, tgt) ->
          match tgt with
          | Ct_load k ->
              let l =
                match List.nth_opt accs.(tid) k with
                | Some (a : EG.access) -> a.EG.loc
                | None -> None
              in
              let tag =
                match l with
                | Some l -> value_code l v
                | None -> if v = 0 then "z" else "#" ^ string_of_int v
              in
              Printf.sprintf "r:%d.%d=%s" (new_tid tid) k tag
          | Ct_status k -> Printf.sprintf "s:%d.%d=%d" (new_tid tid) k v
          | Ct_raw -> Printf.sprintf "q:%d.%d=%d" (new_tid tid) reg v)
        cond_targets
    in
    let mem_conds =
      List.map
        (fun (l, v) ->
          let lc = loc_code l in
          Printf.sprintf "m:%s=%s" lc (value_code l v))
        t.Test.mem_condition
    in
    let init_conds =
      List.filter_map
        (fun (l, v) ->
          if v = 0 then None else Some (Printf.sprintf "i:%s=%d" (loc_code l) v))
        p.Program.init
    in
    let conds = List.sort compare (reg_conds @ mem_conds @ init_conds) in
    threads ^ "##" ^ String.concat "&" conds
  in
  List.fold_left
    (fun best perm ->
      let s = encode perm in
      match best with Some b when b <= s -> best | _ -> Some s)
    None (orders groups)
  |> Option.get

let equal a b = of_test a = of_test b
