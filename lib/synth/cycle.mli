open Wmm_isa

(** Relaxation cycles, in the style of diy / "herding cats".

    A cycle is a circular sequence of edges over abstract memory
    accesses: program-order edges inside a thread (plain, fenced,
    or dependency-carrying, optionally acquire/release-annotated on
    ARM) and communication edges between threads (external rf, co
    and fr).  Each edge constrains the direction (read or write) of
    the accesses at its endpoints; a valid cycle chains directions
    all the way around.  Compiling a cycle yields a litmus test
    whose condition witnesses exactly the communication pattern of
    the cycle — the classic critical-cycle construction of Shasha
    and Snir that diy turns into test generation.

    Structural invariants enforced by {!enumerate}:
    - directions chain around the cycle;
    - program-order edges are never adjacent (each thread
      contributes at most two accesses: critical cycles);
    - communication edges are external (cross-thread), except that
      the two-edge coherence cycles CoWW and CoWR close with an
      internal co/fr back-edge;
    - at least two external communication edges otherwise (a single
      crossing cannot return to its starting thread). *)

type dir = R | W

type com_kind = Rf | Co | Fr

type dep =
  | Addr  (** Address dependency (xor-self idiom). *)
  | Data  (** Data dependency: store of the loaded register. *)
  | Ctrl  (** Control dependency: compare-and-branch over nothing. *)
  | Ctrl_fence  (** ctrl+isb on ARM, ctrl+isync on POWER. *)

type annot = An_plain | An_acq | An_rel

type po_kind = Po_plain | Po_fence of Instr.barrier | Po_dep of dep

type po = {
  kind : po_kind;
  same_loc : bool;  (** Endpoints access the same location. *)
  s : dir;
  d : dir;
  s_an : annot;  (** Non-plain only on plain ARM po edges. *)
  d_an : annot;
}

type edge = Po of po | Com of { c : com_kind; ext : bool }

type t = edge list
(** Edge [i] runs from event [i] to event [(i+1) mod length]. *)

val src_dir : edge -> dir
val dst_dir : edge -> dir

val default_max_edges : int
(** 6 — large enough for ISA2/IRIW-shaped six-edge cycles. *)

val annot_max_edges : int
(** Acquire/release variants are only enumerated on cycles of at
    most this many edges (4), keeping the family size in check. *)

val enumerate : ?max_edges:int -> Arch.t -> t list
(** All valid cycles with 2..[max_edges] edges for the
    architecture's barrier vocabulary, deduplicated up to rotation,
    in a deterministic order.  Every returned cycle ends with a
    communication edge, so threads can be read off left to right. *)

val skeleton : t -> string
(** Rotation-canonical key with annotations and fence/dependency
    kinds erased to edge shapes — the classic-name lookup key
    (e.g. SB and SB+dmbs share a skeleton). *)

val base_name : t -> string
(** Classic name for known skeletons (SB, MP, LB, S, R, 2+2W, WRC,
    RWC, ISA2, IRIW, CoRR, CoWW, CoWR, 3.SB, 3.LB, 3.2W, ...);
    otherwise a deterministic encoding of the skeleton. *)

val name : Arch.t -> t -> string
(** diy-style display name: {!base_name} plus per-thread edge
    annotations ("SB+dmbs", "MP+lwsync+addr", ...).  Not guaranteed
    unique across a family; {!Synth.generate} uniquifies. *)

val to_string : t -> string
(** Human-readable edge list, e.g. "PodWW Rfe PodRR Fre". *)
