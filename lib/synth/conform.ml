open Wmm_isa
open Wmm_model
open Wmm_litmus
module Task = Wmm_engine.Task
module Engine = Wmm_engine.Engine
module Relaxed = Wmm_machine.Relaxed
module Infer = Wmm_analysis.Infer
module Verify = Wmm_analysis.Verify

type layer = Explore | Machine | Inference | Containment | Certificate

let layer_name = function
  | Explore -> "explore-vs-oracle"
  | Machine -> "machine-within-model"
  | Inference -> "fence-inference"
  | Containment -> "compilation-containment"
  | Certificate -> "certificate"

type disagreement = {
  layer : layer;
  model : Axiomatic.model option;
  test : Test.t;
  shrunk : Test.t;
  detail : string;
}

type report = {
  arch : Arch.t;
  tests : int;
  explore_checks : int;
  machine_checks : int;
  machine_skipped : int;
  infer_checks : int;
  cert_checks : int;
  cert_skipped : int;
  disagreements : disagreement list;
}

type oracle = {
  oracle_id : string;
  outcomes : Axiomatic.model -> Program.t -> Enumerate.outcome list;
}

let reference_oracle =
  { oracle_id = "reference/v1"; outcomes = Enumerate.Reference.allowed_outcomes }

type config = {
  models : Axiomatic.model list option;
  oracle : oracle;
  machine : bool;
  infer_limit : int;
  explorer : Enumerate.engine_kind;
  certificates : bool;
}

let default_config =
  {
    models = None;
    oracle = reference_oracle;
    machine = true;
    infer_limit = 48;
    explorer = Enumerate.Auto;
    certificates = true;
  }

(* Task result for the explore and machine layers.  Must stay
   marshal-stable: it is what the cache and journal persist. *)
type check = C_ok | C_skip of string | C_fail of string

(* ------------------------------------------------------------------ *)
(* Layer tasks                                                        *)
(* ------------------------------------------------------------------ *)

let sorted_outcomes outs = List.sort_uniq Enumerate.compare_outcome outs

let outcome_set_diff p a b =
  let only_in tag xs ys =
    match
      List.filter
        (fun o -> not (List.exists (fun o' -> Enumerate.compare_outcome o o' = 0) ys))
        xs
    with
    | [] -> []
    | extra ->
        [
          Printf.sprintf "only %s: %s" tag
            (String.concat " | " (List.map (Enumerate.outcome_to_string p) extra));
        ]
  in
  String.concat "; " (only_in "search" a b @ only_in "oracle" b a)

let explore_task oracle explorer model (t : Test.t) =
  (* v2: the key names the exploration engine, so cached verdicts
     from different engines can never alias. *)
  let key =
    Printf.sprintf "conform/explore/v2|%s|%s|%s|%s" oracle.oracle_id
      (Enumerate.engine_name explorer) (Axiomatic.model_name model)
      (Verify.test_digest t)
  in
  let label = Printf.sprintf "xcheck %s %s" (Axiomatic.model_name model) t.Test.name in
  Task.pure ~key ~label (fun () ->
      let p = t.Test.program in
      match
        ( sorted_outcomes (Enumerate.allowed_outcomes ~engine:explorer model p),
          sorted_outcomes (oracle.outcomes model p) )
      with
      | exception Failure msg -> C_skip msg
      | fast, slow ->
          if
            List.length fast = List.length slow
            && List.for_all2 (fun a b -> Enumerate.compare_outcome a b = 0) fast slow
          then C_ok
          else
            C_fail
              (Printf.sprintf "search %d vs oracle %d outcomes: %s" (List.length fast)
                 (List.length slow) (outcome_set_diff p fast slow)))

(* The machine/model pairings mirror the litmus checker: each machine
   strength is compared against the model it is meant to refine. *)
let machine_pairs arch =
  [
    (Axiomatic.Sc, Relaxed.sc_config, "sc");
    (Axiomatic.Tso, Relaxed.tso_config, "tso");
    (Axiomatic.model_for_arch arch, Relaxed.relaxed_config, "relaxed");
  ]

let machine_max_states = 200_000

let machine_task model cfg cfg_id (t : Test.t) =
  let key =
    Printf.sprintf "conform/machine/v1|%s|%s|%s" cfg_id (Axiomatic.model_name model)
      (Verify.test_digest t)
  in
  let label = Printf.sprintf "machine %s %s" (Axiomatic.model_name model) t.Test.name in
  Task.pure ~key ~label (fun () ->
      let p = t.Test.program in
      match Relaxed.enumerate ~max_states:machine_max_states cfg p with
      | exception Failure msg -> C_skip msg
      | outs -> (
          let to_enum (o : Relaxed.outcome) =
            { Enumerate.registers = o.Relaxed.registers; memory = o.Relaxed.memory }
          in
          let escape =
            List.find_opt
              (fun o -> not (Enumerate.outcome_allowed model p (to_enum o)))
              outs
          in
          match escape with
          | None -> C_ok
          | Some o ->
              C_fail
                (Printf.sprintf "machine reaches %s, forbidden by the model"
                   (Enumerate.outcome_to_string p (to_enum o)))))

(* Certificate layer: every axiomatic verdict must certify, and the
   emitted certificate must survive serialization and the independent
   checker.  A rejection means the explorer and the checker's
   from-scratch revalidation of the same claim disagree - the
   strongest cross-check in the suite, since the two sides share no
   code beyond the ISA types. *)
let cert_task model (t : Test.t) =
  let key =
    Printf.sprintf "conform/cert/v1|%s|%s" (Axiomatic.model_name model)
      (Verify.test_digest t)
  in
  let label = Printf.sprintf "certify %s %s" (Axiomatic.model_name model) t.Test.name in
  Task.pure ~key ~label (fun () ->
      match Wmm_certify.Emit.litmus model t with
      | Error msg -> C_skip msg
      | exception Failure msg -> C_skip msg
      | Ok cert -> (
          match Wmm_cert.Checker.check_string (Wmm_cert.Certificate.to_string cert) with
          | Ok _ -> C_ok
          | Error r ->
              C_fail ("certificate rejected: " ^ Wmm_cert.Checker.reason_string r)))

let check_of_task task = task.Task.run (Task.rng_for ~root_seed:0 task.Task.key)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let remake (t : Test.t) ~threads ~condition ~mem_condition =
  match
    Test.make ~name:t.Test.name ~description:t.Test.description
      ~locations:t.Test.program.Program.location_names
      ~init:t.Test.program.Program.init ~threads ~condition ~mem_condition ~expected:[]
      ()
  with
  | t -> Some t
  | exception Invalid_argument _ -> None

(* All one-step reductions of a test, most aggressive first: drop a
   whole thread, drop one instruction, drop a condition conjunct. *)
let reductions (t : Test.t) =
  let p = t.Test.program in
  let threads = Array.to_list p.Program.threads in
  let nthreads = List.length threads in
  let drop_thread tid =
    if nthreads <= 1 then None
    else
      let threads' = List.filteri (fun i _ -> i <> tid) threads in
      let condition =
        List.filter_map
          (fun (((i, r), v) : (int * Instr.reg) * Instr.value) ->
            if i = tid then None else Some (((if i > tid then i - 1 else i), r), v))
          t.Test.condition
      in
      remake t ~threads:threads' ~condition ~mem_condition:t.Test.mem_condition
  in
  let drop_instr tid idx =
    let thread = p.Program.threads.(tid) in
    (* Nonzero branch offsets would silently retarget when the listing
       shifts; leave such threads to whole-thread removal. *)
    let has_real_branch =
      Array.exists
        (function
          | Instr.Cbnz { offset; _ } | Instr.Cbz { offset; _ } -> offset <> 0
          | _ -> false)
        thread
    in
    if has_real_branch then None
    else
      let thread' =
        Array.of_list (List.filteri (fun i _ -> i <> idx) (Array.to_list thread))
      in
      let written r = Array.exists (fun i -> Instr.output_reg i = Some r) thread' in
      let condition =
        List.filter
          (fun (((i, r), _) : (int * Instr.reg) * Instr.value) -> i <> tid || written r)
          t.Test.condition
      in
      let threads' = List.mapi (fun i th -> if i = tid then thread' else th) threads in
      remake t ~threads:threads' ~condition ~mem_condition:t.Test.mem_condition
  in
  let drop_cond idx =
    let condition = List.filteri (fun i _ -> i <> idx) t.Test.condition in
    remake t ~threads ~condition ~mem_condition:t.Test.mem_condition
  in
  let drop_mem idx =
    let mem_condition = List.filteri (fun i _ -> i <> idx) t.Test.mem_condition in
    remake t ~threads ~condition:t.Test.condition ~mem_condition
  in
  List.filter_map Fun.id
    (List.init nthreads drop_thread
    @ List.concat
        (List.mapi
           (fun tid th -> List.init (Array.length th) (fun i -> drop_instr tid i))
           threads)
    @ List.init (List.length t.Test.condition) drop_cond
    @ List.init (List.length t.Test.mem_condition) drop_mem)

let shrink still_fails t =
  (* The budget bounds predicate evaluations, not depth: shrinking is
     best-effort and must terminate even on pathological batteries. *)
  let budget = ref 200 in
  let rec go t =
    match
      List.find_opt
        (fun t' ->
          decr budget;
          !budget >= 0 && still_fails t')
        (reductions t)
    with
    | Some t' when !budget > 0 -> go t'
    | _ -> t
  in
  go t

(* ------------------------------------------------------------------ *)
(* The run                                                            *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) ~engine ~arch tests =
  let models =
    match config.models with Some ms -> ms | None -> Synth.verdict_models arch
  in
  let batch = Engine.Batch.create () in
  let explore =
    List.concat_map
      (fun t ->
        List.map
          (fun m ->
            (t, m, Engine.Batch.add batch (explore_task config.oracle config.explorer m t)))
          models)
      tests
  in
  let machine =
    if not config.machine then []
    else
      List.concat_map
        (fun t ->
          List.map
            (fun (m, cfg, cfg_id) ->
              (t, m, cfg, cfg_id, Engine.Batch.add batch (machine_task m cfg cfg_id t)))
            (machine_pairs arch))
        tests
  in
  let certs =
    if not config.certificates then []
    else
      List.concat_map
        (fun t -> List.map (fun m -> (t, m, Engine.Batch.add batch (cert_task m t))) models)
        tests
  in
  Engine.Batch.run engine batch;
  let disagreements = ref [] in
  let disagree layer model test still_fails detail =
    let shrunk = shrink still_fails test in
    disagreements := { layer; model; test; shrunk; detail } :: !disagreements
  in
  List.iter
    (fun (t, m, get) ->
      let still_fails t' =
        match check_of_task (explore_task config.oracle config.explorer m t') with
        | C_fail _ -> true
        | C_ok | C_skip _ -> false
        | exception _ -> false
      in
      match Engine.get (get ()) with
      | C_ok | C_skip _ -> ()
      | C_fail detail -> disagree Explore (Some m) t still_fails detail
      | exception Failure msg ->
          disagree Explore (Some m) t (fun _ -> false) ("task failed: " ^ msg))
    explore;
  let cert_ran = ref 0 and cert_skipped = ref 0 in
  List.iter
    (fun (t, m, get) ->
      let still_fails t' =
        match check_of_task (cert_task m t') with
        | C_fail _ -> true
        | C_ok | C_skip _ -> false
        | exception _ -> false
      in
      match Engine.get (get ()) with
      | C_ok -> incr cert_ran
      | C_skip _ -> incr cert_skipped
      | C_fail detail ->
          incr cert_ran;
          disagree Certificate (Some m) t still_fails detail
      | exception Failure msg ->
          disagree Certificate (Some m) t (fun _ -> false) ("task failed: " ^ msg))
    certs;
  let machine_ran = ref 0 and machine_skipped = ref 0 in
  List.iter
    (fun (t, m, cfg, cfg_id, get) ->
      let still_fails t' =
        match check_of_task (machine_task m cfg cfg_id t') with
        | C_fail _ -> true
        | C_ok | C_skip _ -> false
        | exception _ -> false
      in
      match Engine.get (get ()) with
      | C_ok -> incr machine_ran
      | C_skip _ -> incr machine_skipped
      | C_fail detail ->
          incr machine_ran;
          disagree Machine (Some m) t still_fails detail
      | exception Failure msg ->
          disagree Machine (Some m) t (fun _ -> false) ("task failed: " ^ msg))
    machine;
  (* Inference layer: the analysis pipeline itself fans out through
     the same engine; cap the battery since minimisation re-verifies
     many placements per test. *)
  let infer_battery = List.filteri (fun i _ -> i < config.infer_limit) tests in
  let infer_rows =
    if infer_battery = [] then []
    else Infer.analyze_all ~with_cost:false ~engine ~arch infer_battery
  in
  let infer_fails (t : Test.t) =
    match
      Infer.analyze_all ~with_cost:false ~engine:(Engine.sequential ()) ~arch [ t ]
    with
    | [ { Infer.status = Infer.Unfixed _; _ } ] -> true
    | [ { Infer.status = Infer.Inferred i; _ } ] -> not i.Infer.witnesses_ok
    | _ -> false
    | exception _ -> false
  in
  List.iter
    (fun (row : Infer.row) ->
      let bad detail =
        disagree Inference None row.Infer.test infer_fails detail
      in
      match row.Infer.status with
      | Infer.Unfixed msg -> bad ("inference unfixed: " ^ msg)
      | Infer.Inferred i when not i.Infer.witnesses_ok ->
          bad "minimality witnesses failed re-verification"
      | _ -> ())
    infer_rows;
  {
    arch;
    tests = List.length tests;
    explore_checks = List.length explore;
    machine_checks = !machine_ran;
    machine_skipped = !machine_skipped;
    infer_checks = List.length infer_rows;
    cert_checks = !cert_ran;
    cert_skipped = !cert_skipped;
    disagreements = List.rev !disagreements;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let render r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "conformance %s: %d tests\n" (Arch.name r.arch) r.tests;
  Printf.bprintf b "  explore-vs-oracle checks: %d\n" r.explore_checks;
  Printf.bprintf b "  machine-within-model checks: %d (%d skipped)\n" r.machine_checks
    r.machine_skipped;
  Printf.bprintf b "  fence-inference checks: %d\n" r.infer_checks;
  Printf.bprintf b "  certificate checks: %d (%d skipped)\n" r.cert_checks
    r.cert_skipped;
  (match r.disagreements with
  | [] -> Buffer.add_string b "  disagreements: none\n"
  | ds ->
      Printf.bprintf b "  disagreements: %d\n" (List.length ds);
      List.iter
        (fun d ->
          Printf.bprintf b "\n[%s%s] %s\n  %s\n" (layer_name d.layer)
            (match d.model with
            | Some m -> "/" ^ Axiomatic.model_name m
            | None -> "")
            d.test.Test.name d.detail;
          Printf.bprintf b "  shrunk to:\n";
          String.split_on_char '\n' (Parse.to_text ~arch:r.arch d.shrunk)
          |> List.iter (fun line -> Printf.bprintf b "    %s\n" line))
        ds);
  Buffer.contents b
