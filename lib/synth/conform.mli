open Wmm_isa
open Wmm_model
open Wmm_litmus

(** Differential conformance: cross-check the semantic layers of the
    suite against each other over a (typically synthesized) test
    battery, and shrink any disagreement to a minimal failing test.

    Three layers are compared:

    - {b explore}: the pruned backtracking search
      ({!Enumerate.allowed_outcomes}) against an independent outcome
      oracle, by default the generate-and-filter
      {!Enumerate.Reference} path, for every model under check.  The
      two must produce identical outcome sets.
    - {b machine}: the operational machine
      ({!Wmm_machine.Relaxed.enumerate}) against the axiomatic
      models.  The machine is documented to exhibit a subset of the
      allowed behaviours, so every machine-reachable final state must
      be axiomatically allowed (under the matching model/config
      pairing: SC machine vs SC, TSO machine vs TSO, relaxed machine
      vs the architecture's model).
    - {b inference}: static fence inference ({!Wmm_analysis.Infer})
      must resolve every test — already forbidden, beyond fences, or
      a verified-minimal placement whose minimality witnesses check
      out.  An [Unfixed] result or a failed witness is a
      disagreement.

    A fifth layer, {b certificate}, closes the loop on the axiomatic
    side itself: every verdict of the battery is certified
    ({!Wmm_certify.Emit}) and the certificate revalidated by the
    independent checker ({!Wmm_cert.Checker}), which replays threads,
    recounts the rf/co candidate space and re-applies the axioms from
    its own transcription.  A rejected certificate is a
    disagreement.

    A fourth layer, {b containment}, is produced by the language tier
    ({!Wmm_lang.Contain}): outcomes of a compiled program under the
    target hardware model must be a subset of the RC11-allowed
    outcomes of the source program.  It reuses this module's
    disagreement shape and shrinker.

    All model checks run as engine tasks with content-derived keys,
    so conformance runs fan out across domains and replay from
    cache/journal exactly like the analysis pipeline. *)

type layer = Explore | Machine | Inference | Containment | Certificate

val layer_name : layer -> string

type disagreement = {
  layer : layer;
  model : Axiomatic.model option;  (** [None] for inference rows. *)
  test : Test.t;  (** The original failing test. *)
  shrunk : Test.t;  (** Greedily minimised; equal to [test] when no
                        reduction preserves the failure. *)
  detail : string;  (** What disagreed, human-readable. *)
}

type report = {
  arch : Arch.t;
  tests : int;  (** Battery size. *)
  explore_checks : int;
  machine_checks : int;  (** Machine comparisons that ran. *)
  machine_skipped : int;
      (** Machine enumerations that hit the state bound (recorded,
          not failed: subset checks are vacuous there). *)
  infer_checks : int;
  cert_checks : int;  (** Certificate emission+check rounds that ran. *)
  cert_skipped : int;
      (** Verdicts whose certificate was skipped (emission failure or
          size cap). *)
  disagreements : disagreement list;
}

type oracle = {
  oracle_id : string;
      (** Versioned identifier, part of every task key: two oracles
          with different behaviour must carry different ids. *)
  outcomes : Axiomatic.model -> Program.t -> Enumerate.outcome list;
}

val reference_oracle : oracle
(** {!Enumerate.Reference.allowed_outcomes} under id ["reference/v1"]. *)

type config = {
  models : Axiomatic.model list option;
      (** Models for the explore layer; [None] means
          {!Synth.verdict_models} of the architecture. *)
  oracle : oracle;
  machine : bool;  (** Run the machine layer. *)
  infer_limit : int;
      (** Inference-layer battery cap (it is the expensive layer);
          the first [infer_limit] tests are analysed.  [0] disables
          the layer. *)
  explorer : Enumerate.engine_kind;
      (** Exploration engine for the explore layer's fast side; part
          of the task key, so verdicts from different engines never
          alias in the cache. *)
  certificates : bool;  (** Run the certificate layer. *)
}

val default_config : config
(** Reference oracle, default models, machine and certificate layers
    on, [infer_limit = 48], [explorer = Auto]. *)

val run :
  ?config:config -> engine:Wmm_engine.Engine.t -> arch:Arch.t -> Test.t list -> report

val shrink : (Test.t -> bool) -> Test.t -> Test.t
(** [shrink still_fails t] greedily removes threads, instructions and
    condition conjuncts while [still_fails] keeps holding, to a
    fixpoint.  Exposed for the planted-bug tests. *)

val render : report -> string
(** Summary plus, per disagreement, the shrunk test in litmus
    syntax. *)
