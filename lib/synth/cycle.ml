open Wmm_isa

type dir = R | W

type com_kind = Rf | Co | Fr

type dep = Addr | Data | Ctrl | Ctrl_fence

type annot = An_plain | An_acq | An_rel

type po_kind = Po_plain | Po_fence of Instr.barrier | Po_dep of dep

type po = {
  kind : po_kind;
  same_loc : bool;
  s : dir;
  d : dir;
  s_an : annot;
  d_an : annot;
}

type edge = Po of po | Com of { c : com_kind; ext : bool }

type t = edge list

let src_dir = function
  | Po p -> p.s
  | Com { c = Rf | Co; _ } -> W
  | Com { c = Fr; _ } -> R

let dst_dir = function
  | Po p -> p.d
  | Com { c = Rf; _ } -> R
  | Com { c = Co | Fr; _ } -> W

let default_max_edges = 6
let annot_max_edges = 4

let fences = function
  | Arch.Armv8 -> Instr.[ Dmb_ish; Dmb_ishld; Dmb_ishst ]
  | Arch.Power7 -> Instr.[ Sync; Lwsync; Eieio ]

(* ------------------------------------------------------------------ *)
(* Tokens, rotation canonicalisation, names                           *)
(* ------------------------------------------------------------------ *)

let dir_letter = function R -> "R" | W -> "W"

(* Fixed-width so the source/destination positions stay
   distinguishable when concatenated. *)
let annot_code = function An_plain -> "-" | An_acq -> "A" | An_rel -> "L"

let edge_token = function
  | Po p ->
      let k =
        match p.kind with
        | Po_plain -> if p.same_loc then "Pos" else "Pod"
        | Po_fence b -> "F." ^ Instr.barrier_mnemonic b
        | Po_dep Addr -> "DpAddr"
        | Po_dep Data -> "DpData"
        | Po_dep Ctrl -> "DpCtrl"
        | Po_dep Ctrl_fence -> "DpCtrlF"
      in
      k ^ dir_letter p.s ^ dir_letter p.d ^ annot_code p.s_an ^ annot_code p.d_an
  | Com { c; ext } ->
      (match c with Rf -> "Rf" | Co -> "Co" | Fr -> "Fr") ^ if ext then "e" else "i"

let skeleton_token = function
  | Po p -> "P" ^ (if p.same_loc then "s" else "d") ^ dir_letter p.s ^ dir_letter p.d
  | Com { c; ext } ->
      (match c with Rf -> "Rf" | Co -> "Co" | Fr -> "Fr") ^ if ext then "e" else "i"

(* Lexicographically-least rotation of a token list. *)
let min_rotation tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let rot r = String.concat " " (List.init n (fun i -> arr.((r + i) mod n))) in
  let best = ref (rot 0) in
  for r = 1 to n - 1 do
    let s = rot r in
    if s < !best then best := s
  done;
  !best

let rotation_key c = min_rotation (List.map edge_token c)
let skeleton c = min_rotation (List.map skeleton_token c)
let to_string c = String.concat " " (List.map edge_token c)

let classic_table =
  lazy
    (let e name toks = (min_rotation toks, name) in
     [
       e "SB" [ "PdWR"; "Fre"; "PdWR"; "Fre" ];
       e "MP" [ "PdWW"; "Rfe"; "PdRR"; "Fre" ];
       e "LB" [ "PdRW"; "Rfe"; "PdRW"; "Rfe" ];
       e "S" [ "PdWW"; "Rfe"; "PdRW"; "Coe" ];
       e "R" [ "PdWW"; "Coe"; "PdWR"; "Fre" ];
       e "2+2W" [ "PdWW"; "Coe"; "PdWW"; "Coe" ];
       e "WRC" [ "Rfe"; "PdRW"; "Rfe"; "PdRR"; "Fre" ];
       e "RWC" [ "Rfe"; "PdRR"; "Fre"; "PdWR"; "Fre" ];
       e "WWC" [ "Rfe"; "PdRW"; "Coe"; "PdWR"; "Fre" ];
       e "ISA2" [ "PdWW"; "Rfe"; "PdRW"; "Rfe"; "PdRR"; "Fre" ];
       e "IRIW" [ "Rfe"; "PdRR"; "Fre"; "Rfe"; "PdRR"; "Fre" ];
       e "CoRR" [ "Rfe"; "PsRR"; "Fre" ];
       e "CoWW" [ "PsWW"; "Coi" ];
       e "CoWR" [ "PsWR"; "Fri" ];
       e "3.SB" [ "PdWR"; "Fre"; "PdWR"; "Fre"; "PdWR"; "Fre" ];
       e "3.LB" [ "PdRW"; "Rfe"; "PdRW"; "Rfe"; "PdRW"; "Rfe" ];
       e "3.2W" [ "PdWW"; "Coe"; "PdWW"; "Coe"; "PdWW"; "Coe" ];
     ])

let base_name c =
  let key = skeleton c in
  match List.assoc_opt key (Lazy.force classic_table) with
  | Some n -> n
  | None ->
      (* Deterministic fallback: the skeleton in its canonical
         rotation, joined without spaces so names stay one token. *)
      "Cy." ^ String.concat "-" (String.split_on_char ' ' key)

let fence_short = function
  | Instr.Dmb_ish -> "dmb"
  | Instr.Dmb_ishld -> "dmb.ld"
  | Instr.Dmb_ishst -> "dmb.st"
  | Instr.Isb -> "isb"
  | Instr.Sync -> "sync"
  | Instr.Lwsync -> "lwsync"
  | Instr.Isync -> "isync"
  | Instr.Eieio -> "eieio"
  | Instr.Fence_acq -> "fence.acq"
  | Instr.Fence_rel -> "fence.rel"
  | Instr.Fence_acq_rel -> "fence.acqrel"
  | Instr.Fence_sc -> "fence.sc"

let po_annot_name arch (p : po) =
  match p.kind with
  | Po_fence b -> fence_short b
  | Po_dep Addr -> "addr"
  | Po_dep Data -> "data"
  | Po_dep Ctrl -> "ctrl"
  | Po_dep Ctrl_fence -> (
      match arch with Arch.Armv8 -> "ctrl+isb" | Arch.Power7 -> "ctrl+isync")
  | Po_plain -> (
      let an = function An_acq -> "acq" | An_rel -> "rel" | An_plain -> "" in
      match (p.s_an, p.d_an) with
      | An_plain, An_plain -> if p.same_loc then "pos" else "po"
      (* Same-direction edges need a positional marker, since the
         annotation could sit on either access.  The unmarked name is
         the classic placement (MP-style: release on the second store,
         acquire on the first load). *)
      | a, An_plain when p.s = p.d -> if p.s = W then an a ^ "1" else an a
      | An_plain, a when p.s = p.d -> if p.d = W then an a else an a ^ "2"
      | _ ->
          String.concat "-"
            (List.filter_map
               (function An_plain -> None | a -> Some (an a))
               [ p.s_an; p.d_an ]))

let name arch c =
  let base = base_name c in
  let segs =
    List.filter_map (function Po p -> Some (po_annot_name arch p) | Com _ -> None) c
  in
  let trivial = List.for_all (fun s -> s = "po" || s = "pos") segs in
  if segs = [] || trivial then base
  else
    match segs with
    | s :: (_ :: _ as rest) when List.for_all (( = ) s) rest && s <> "po" && s <> "pos"
      ->
        base ^ "+" ^ s ^ "s"
    | _ -> base ^ "+" ^ String.concat "+" segs

(* ------------------------------------------------------------------ *)
(* Enumeration                                                        *)
(* ------------------------------------------------------------------ *)

let plain_po ~same_loc s d =
  Po { kind = Po_plain; same_loc; s; d; s_an = An_plain; d_an = An_plain }

let po_variants arch s d =
  let mk kind = Po { kind; same_loc = false; s; d; s_an = An_plain; d_an = An_plain } in
  let fenced = List.map (fun b -> mk (Po_fence b)) (fences arch) in
  let deps =
    if s = R then
      List.map
        (fun k -> mk (Po_dep k))
        (Addr :: Ctrl :: Ctrl_fence :: (if d = W then [ Data ] else []))
    else []
  in
  let annots =
    if arch = Arch.Armv8 then
      let s_ans = [ An_plain; (if s = W then An_rel else An_acq) ]
      and d_ans = [ An_plain; (if d = W then An_rel else An_acq) ] in
      List.concat_map
        (fun sa ->
          List.filter_map
            (fun da ->
              if sa = An_plain && da = An_plain then None
              else Some (Po { kind = Po_plain; same_loc = false; s; d; s_an = sa; d_an = da }))
            d_ans)
        s_ans
    else []
  in
  (plain_po ~same_loc:false s d :: plain_po ~same_loc:true s d :: fenced) @ deps @ annots

let is_po = function Po _ -> true | Com _ -> false

let enumerate ?(max_edges = default_max_edges) arch =
  let seen = Hashtbl.create 4096 in
  let out = ref [] in
  let add cyc =
    let key = rotation_key cyc in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := cyc :: !out
    end
  in
  (* The two-edge coherence cycles close with an internal com edge. *)
  add [ plain_po ~same_loc:true W W; Com { c = Co; ext = false } ];
  add [ plain_po ~same_loc:true W R; Com { c = Fr; ext = false } ];
  let po_from s = po_variants arch s W @ po_variants arch s R in
  let po_w = po_from W and po_r = po_from R in
  let po_from = function W -> po_w | R -> po_r in
  let com_from = function
    | W -> [ Com { c = Rf; ext = true }; Com { c = Co; ext = true } ]
    | R -> [ Com { c = Fr; ext = true } ]
  in
  let has_annot = function
    | Po p -> p.s_an <> An_plain || p.d_an <> An_plain
    | Com _ -> false
  in
  let rec extend rev_seq n first_src last_dst last_po annotated n_ext =
    if
      n >= 2 && (not last_po) && last_dst = first_src && n_ext >= 2
      && not (annotated && n > annot_max_edges)
    then add (List.rev rev_seq);
    if n < max_edges && not (annotated && n >= annot_max_edges) then begin
      if not last_po then
        List.iter
          (fun e ->
            let a = annotated || has_annot e in
            if not (a && n + 1 > annot_max_edges) then
              extend (e :: rev_seq) (n + 1) first_src (dst_dir e) true a n_ext)
          (po_from last_dst);
      List.iter
        (fun e ->
          extend (e :: rev_seq) (n + 1) first_src (dst_dir e) false annotated (n_ext + 1))
        (com_from last_dst)
    end
  in
  let first_edges =
    po_w @ po_r @ com_from W @ com_from R
  in
  List.iter
    (fun e ->
      extend [ e ] 1 (src_dir e) (dst_dir e) (is_po e) (has_annot e)
        (match e with Com _ -> 1 | Po _ -> 0))
    first_edges;
  List.rev !out
