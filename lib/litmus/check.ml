open Wmm_model
open Wmm_machine

type verdict = {
  test : Test.t;
  model : Axiomatic.model;
  axiomatic_allowed : bool;
  expected : bool option;
  observed : bool;
  observations : int;
  total : int;
}

let outcome_satisfies (test : Test.t) ~registers ~memory =
  Test.condition_matches test.Test.condition registers
  && List.for_all
       (fun (l, v) ->
         match List.assoc_opt l memory with Some v' -> v = v' | None -> v = 0)
       test.Test.mem_condition

let axiomatic_allowed model (test : Test.t) =
  (* Early-exit search: stops at the first consistent witness instead
     of enumerating every allowed outcome. *)
  Enumerate.exists_outcome model test.Test.program (fun (o : Enumerate.outcome) ->
      outcome_satisfies test ~registers:o.Enumerate.registers ~memory:o.Enumerate.memory)

let relaxed_satisfies test (o : Relaxed.outcome) =
  outcome_satisfies test ~registers:o.Relaxed.registers ~memory:o.Relaxed.memory

let run_random ?(iterations = 2000) ?(seed = 7) model config test =
  let histogram = Relaxed.collect config ~seed ~iterations test.Test.program in
  let observations =
    List.fold_left
      (fun acc (o, n) -> if relaxed_satisfies test o then acc + n else acc)
      0 histogram
  in
  {
    test;
    model;
    axiomatic_allowed = axiomatic_allowed model test;
    expected = Test.expected_under test model;
    observed = observations > 0;
    observations;
    total = iterations;
  }

let run_exhaustive ?(max_states = 500_000) model config test =
  let outcomes = Relaxed.enumerate ~max_states config test.Test.program in
  let observations =
    List.length (List.filter (relaxed_satisfies test) outcomes)
  in
  {
    test;
    model;
    axiomatic_allowed = axiomatic_allowed model test;
    expected = Test.expected_under test model;
    observed = observations > 0;
    observations;
    total = List.length outcomes;
  }

let sound v =
  let operational_ok = (not v.observed) || v.axiomatic_allowed in
  let annotation_ok =
    match v.expected with None -> true | Some e -> e = v.axiomatic_allowed
  in
  operational_ok && annotation_ok

let describe v =
  Printf.sprintf "%-22s %-6s axiomatic=%-9s observed=%s (%d/%d)%s"
    v.test.Test.name
    (Axiomatic.model_name v.model)
    (if v.axiomatic_allowed then "allowed" else "forbidden")
    (if v.observed then "yes" else "no ")
    v.observations v.total
    (match v.expected with
    | Some e when e <> v.axiomatic_allowed -> "  [MISMATCH vs annotation]"
    | _ when v.observed && not v.axiomatic_allowed -> "  [FORBIDDEN OBSERVED]"
    | _ -> "")
