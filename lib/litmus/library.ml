open Wmm_model
open Test

(* Locations. *)
let x = 0
let y = 1
let z = 2

(* Registers. *)
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4

let verdicts ~sc ~tso ~arm ~power =
  [ (Axiomatic.Sc, sc); (Axiomatic.Tso, tso); (Axiomatic.Arm, arm); (Axiomatic.Power, power) ]

(* ------------------------------------------------------------------ *)
(* Coherence.                                                          *)
(* ------------------------------------------------------------------ *)

let coww =
  make ~name:"CoWW" ~description:"two writes to one location stay in program order"
    ~threads:[ [| str ~value:1 ~loc:x; str ~value:2 ~loc:x |] ]
    ~condition:[] ~mem_condition:[ (x, 1) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let corr =
  make ~name:"CoRR" ~description:"reads of one location respect coherence order"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| ldr ~dst:r1 ~loc:x; ldr ~dst:r2 ~loc:x |];
      ]
    ~condition:[ ((1, r1), 1); ((1, r2), 0) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let cowr =
  make ~name:"CoWR" ~description:"a read after a write to the same location sees it"
    ~threads:[ [| str ~value:1 ~loc:x; ldr ~dst:r1 ~loc:x |] ]
    ~condition:[ ((0, r1), 0) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let coherence = [ coww; corr; cowr ]

(* ------------------------------------------------------------------ *)
(* Unfenced classics.                                                  *)
(* ------------------------------------------------------------------ *)

let sb =
  make ~name:"SB" ~description:"store buffering: both reads see the initial state"
    ~threads:
      [
        [| str ~value:1 ~loc:x; ldr ~dst:r1 ~loc:y |];
        [| str ~value:1 ~loc:y; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0) ]
    ~expected:(verdicts ~sc:false ~tso:true ~arm:true ~power:true)
    ()

let mp_threads ~writer_fence ~reader =
  [
    Array.of_list ((str ~value:1 ~loc:x :: writer_fence) @ [ str ~value:1 ~loc:y ]);
    Array.of_list reader;
  ]

let mp_plain_reader = [ ldr ~dst:r1 ~loc:y; ldr ~dst:r4 ~loc:x ]

(* Reader with an artificial address dependency: r3 = r1 xor r1 = 0 =
   the address of x. *)
let mp_addr_reader =
  [ ldr ~dst:r1 ~loc:y; xor_self ~dst:r3 ~src:r1; ldr_reg ~dst:r4 ~addr:r3 ]

let mp_cond = [ ((1, r1), 1); ((1, r4), 0) ]

let mp =
  make ~name:"MP" ~description:"message passing without fences"
    ~threads:(mp_threads ~writer_fence:[] ~reader:mp_plain_reader)
    ~condition:mp_cond
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let lb =
  make ~name:"LB" ~description:"load buffering: both loads see the other's store"
    ~threads:
      [
        [| ldr ~dst:r1 ~loc:x; str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; str ~value:1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 1); ((1, r1), 1) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let lb_data =
  make ~name:"LB+datas" ~description:"load buffering with data dependencies (thin air)"
    ~threads:
      [
        [| ldr ~dst:r1 ~loc:x; str_reg ~src:r1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; str_reg ~src:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 1); ((1, r1), 1) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let s_test =
  make ~name:"S" ~description:"write overwritten by po-later store seen remotely"
    ~threads:
      [
        [| str ~value:2 ~loc:x; str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; str ~value:1 ~loc:x |];
      ]
    ~condition:[ ((1, r1), 1) ]
    ~mem_condition:[ (x, 2) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let r_test =
  make ~name:"R" ~description:"write race with a read of the initial state"
    ~threads:
      [
        [| str ~value:1 ~loc:x; str ~value:1 ~loc:y |];
        [| str ~value:2 ~loc:y; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((1, r1), 0) ]
    ~mem_condition:[ (y, 2) ]
    ~expected:(verdicts ~sc:false ~tso:true ~arm:true ~power:true)
    ()

let w2plus2 =
  make ~name:"2+2W" ~description:"both threads' first stores lose the coherence races"
    ~threads:
      [
        [| str ~value:1 ~loc:x; str ~value:2 ~loc:y |];
        [| str ~value:1 ~loc:y; str ~value:2 ~loc:x |];
      ]
    ~condition:[] ~mem_condition:[ (x, 1); (y, 1) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let wrc =
  make ~name:"WRC" ~description:"write-to-read causality without dependencies"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| ldr ~dst:r1 ~loc:x; str ~value:1 ~loc:y |];
        [| ldr ~dst:r2 ~loc:y; ldr ~dst:r3 ~loc:x |];
      ]
    ~condition:[ ((1, r1), 1); ((2, r2), 1); ((2, r3), 0) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let iriw =
  make ~name:"IRIW" ~description:"independent reads of independent writes"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:x; ldr ~dst:r2 ~loc:y |];
        [| ldr ~dst:r3 ~loc:y; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:[ ((2, r1), 1); ((2, r2), 0); ((3, r3), 1); ((3, r4), 0) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:true ~power:true)
    ()

let common = [ sb; mp; lb; lb_data; s_test; r_test; w2plus2; wrc; iriw ]

(* ------------------------------------------------------------------ *)
(* Atomics (load-exclusive / store-exclusive).                         *)
(* ------------------------------------------------------------------ *)

let cas_thread =
  [| ldxr ~dst:r1 ~loc:x; addi ~dst:r2 ~src:r1 1; stxr ~status:r3 ~src:r2 ~loc:x |]

let cas_both =
  make ~name:"CAS+both"
    ~description:"two exclusives cannot both succeed from the same value (atomicity)"
    ~threads:[ cas_thread; cas_thread ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0); ((0, r3), 0); ((1, r3), 0) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let cas_one =
  make ~name:"CAS+one"
    ~description:"one exclusive succeeds while the racing one fails"
    ~threads:[ cas_thread; cas_thread ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0); ((0, r3), 0); ((1, r3), 1) ]
    ~mem_condition:[ (x, 1) ]
    ~expected:(verdicts ~sc:true ~tso:true ~arm:true ~power:true)
    ()

let cas_chain =
  make ~name:"CAS+chain"
    ~description:"a successful exclusive observed by the second thread's exclusive"
    ~threads:[ cas_thread; cas_thread ]
    ~condition:[ ((0, r3), 0); ((1, r1), 1); ((1, r3), 0) ]
    ~mem_condition:[ (x, 2) ]
    ~expected:(verdicts ~sc:true ~tso:true ~arm:true ~power:true)
    ()

let atomics = [ cas_both; cas_one; cas_chain ]

(* ------------------------------------------------------------------ *)
(* ARMv8 variants.                                                     *)
(* ------------------------------------------------------------------ *)

let arm_only v = [ (Axiomatic.Arm, v) ]

let sb_dmb =
  make ~name:"SB+dmbs" ~description:"store buffering fenced with dmb ish"
    ~threads:
      [
        [| str ~value:1 ~loc:x; dmb; ldr ~dst:r1 ~loc:y |];
        [| str ~value:1 ~loc:y; dmb; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0) ]
    ~expected:(arm_only false) ()

let mp_dmb_addr =
  make ~name:"MP+dmb+addr" ~description:"message passing, dmb writer, addr-dep reader"
    ~threads:(mp_threads ~writer_fence:[ dmb ] ~reader:mp_addr_reader)
    ~condition:mp_cond ~expected:(arm_only false) ()

let mp_dmbst_addr =
  make ~name:"MP+dmb.st+addr" ~description:"dmb ishst orders the writer's stores"
    ~threads:(mp_threads ~writer_fence:[ dmb_st ] ~reader:mp_addr_reader)
    ~condition:mp_cond ~expected:(arm_only false) ()

let mp_dmb_only =
  make ~name:"MP+dmb" ~description:"one-sided fencing leaves the reader free"
    ~threads:(mp_threads ~writer_fence:[ dmb ] ~reader:mp_plain_reader)
    ~condition:mp_cond ~expected:(arm_only true) ()

let mp_dmb_ctrl =
  make ~name:"MP+dmb+ctrl"
    ~description:"a control dependency does not order read-to-read"
    ~threads:
      (mp_threads ~writer_fence:[ dmb ]
         ~reader:([ ldr ~dst:r1 ~loc:y ] @ ctrl_then r1 @ [ ldr ~dst:r4 ~loc:x ]))
    ~condition:mp_cond ~expected:(arm_only true) ()

let mp_dmb_ctrl_isb =
  make ~name:"MP+dmb+ctrl+isb"
    ~description:"ctrl+isb restores read-to-read ordering"
    ~threads:
      (mp_threads ~writer_fence:[ dmb ]
         ~reader:([ ldr ~dst:r1 ~loc:y ] @ ctrl_then r1 @ [ isb_i; ldr ~dst:r4 ~loc:x ]))
    ~condition:mp_cond ~expected:(arm_only false) ()

let mp_rel_acq =
  make ~name:"MP+rel+acq" ~description:"store-release / load-acquire message passing"
    ~threads:
      [
        [| str ~value:1 ~loc:x; str_rel ~value:1 ~loc:y |];
        [| ldr_acq ~dst:r1 ~loc:y; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:mp_cond ~expected:(arm_only false) ()

let sb_rel_acq =
  make ~name:"SB+rel+acq"
    ~description:"RCsc: store-release to load-acquire is ordered on ARMv8"
    ~threads:
      [
        [| str_rel ~value:1 ~loc:x; ldr_acq ~dst:r1 ~loc:y |];
        [| str_rel ~value:1 ~loc:y; ldr_acq ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0) ]
    ~expected:(arm_only false) ()

let iriw_dmb =
  make ~name:"IRIW+dmbs" ~description:"IRIW fenced with dmb ish"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:x; dmb; ldr ~dst:r2 ~loc:y |];
        [| ldr ~dst:r3 ~loc:y; dmb; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:[ ((2, r1), 1); ((2, r2), 0); ((3, r3), 1); ((3, r4), 0) ]
    ~expected:(arm_only false) ()

let iriw_addrs =
  make ~name:"IRIW+addrs"
    ~description:
      "IRIW with address dependencies: forbidden on other-multi-copy-atomic ARMv8, \
       allowed on POWER"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| str ~value:1 ~loc:y |];
        [|
          ldr ~dst:r1 ~loc:x;
          xor_self ~dst:r3 ~src:r1;
          addi ~dst:r3 ~src:r3 y;
          ldr_reg ~dst:r2 ~addr:r3;
        |];
        [|
          ldr ~dst:r1 ~loc:y;
          xor_self ~dst:r3 ~src:r1;
          ldr_reg ~dst:r2 ~addr:r3;
        |];
      ]
    ~condition:[ ((2, r1), 1); ((2, r2), 0); ((3, r1), 1); ((3, r2), 0) ]
    ~expected:[ (Axiomatic.Arm, false); (Axiomatic.Power, true) ]
    ()

let lb_ctrl =
  make ~name:"LB+ctrls" ~description:"control dependencies to stores forbid load buffering"
    ~threads:
      [
        Array.of_list ([ ldr ~dst:r1 ~loc:x ] @ ctrl_then r1 @ [ str ~value:1 ~loc:y ]);
        Array.of_list ([ ldr ~dst:r1 ~loc:y ] @ ctrl_then r1 @ [ str ~value:1 ~loc:x ]);
      ]
    ~condition:[ ((0, r1), 1); ((1, r1), 1) ]
    ~expected:(verdicts ~sc:false ~tso:false ~arm:false ~power:false)
    ()

let s_dmbst =
  make ~name:"S+dmb.st+addr" ~description:"dmb ishst keeps the overwritten store visible"
    ~threads:
      [
        [| str ~value:2 ~loc:x; dmb_st; str ~value:1 ~loc:y |];
        [|
          ldr ~dst:r1 ~loc:y;
          xor_self ~dst:r3 ~src:r1;
          Wmm_isa.Instr.Op
            { op = Wmm_isa.Instr.Add; dst = r3; a = Wmm_isa.Instr.Reg r3;
              b = Wmm_isa.Instr.Imm 0 };
          Wmm_isa.Instr.Store
            { src = Wmm_isa.Instr.Imm 1; addr = Wmm_isa.Instr.Reg r3;
              order = Wmm_isa.Instr.Plain };
        |];
      ]
    ~condition:[ ((1, r1), 1) ]
    ~mem_condition:[ (x, 2) ]
    ~expected:(arm_only false) ()

let wrc_addrs_arm =
  make ~name:"WRC+addrs"
    ~description:"write-to-read causality with dependencies (forbidden on ARMv8)"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [|
          ldr ~dst:r1 ~loc:x;
          xor_self ~dst:r2 ~src:r1;
          Wmm_isa.Instr.Op
            { op = Wmm_isa.Instr.Add; dst = r2; a = Wmm_isa.Instr.Reg r2;
              b = Wmm_isa.Instr.Imm y };
          Wmm_isa.Instr.Store
            { src = Wmm_isa.Instr.Imm 1; addr = Wmm_isa.Instr.Reg r2;
              order = Wmm_isa.Instr.Plain };
        |];
        [|
          ldr ~dst:r2 ~loc:y;
          xor_self ~dst:r3 ~src:r2;
          ldr_reg ~dst:r4 ~addr:r3;
        |];
      ]
    ~condition:[ ((1, r1), 1); ((2, r2), 1); ((2, r4), 0) ]
    ~expected:[ (Axiomatic.Arm, false) ]
    ()

let mp_dmbld_one_sided =
  make ~name:"MP+dmb.ld"
    ~description:"a load barrier on the reader alone leaves the writer free"
    ~threads:
      [
        [| str ~value:1 ~loc:x; str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; dmb_ld; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:mp_cond ~expected:(arm_only true) ()

let mp_dmb_both =
  make ~name:"MP+dmb+dmb.ld" ~description:"fences on both sides forbid message passing"
    ~threads:
      [
        [| str ~value:1 ~loc:x; dmb; str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; dmb_ld; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:mp_cond ~expected:(arm_only false) ()

let r_dmb =
  make ~name:"R+dmbs" ~description:"full fences forbid the R shape"
    ~threads:
      [
        [| str ~value:1 ~loc:x; dmb; str ~value:1 ~loc:y |];
        [| str ~value:2 ~loc:y; dmb; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((1, r1), 0) ]
    ~mem_condition:[ (y, 2) ]
    ~expected:(arm_only false) ()

let w2plus2_dmbst =
  make ~name:"2+2W+dmb.sts" ~description:"store fences forbid 2+2W"
    ~threads:
      [
        [| str ~value:1 ~loc:x; dmb_st; str ~value:2 ~loc:y |];
        [| str ~value:1 ~loc:y; dmb_st; str ~value:2 ~loc:x |];
      ]
    ~condition:[] ~mem_condition:[ (x, 1); (y, 1) ]
    ~expected:(arm_only false) ()

let arm =
  [
    sb_dmb;
    lb_ctrl;
    s_dmbst;
    wrc_addrs_arm;
    mp_dmbld_one_sided;
    mp_dmb_both;
    r_dmb;
    w2plus2_dmbst;
    mp_dmb_addr;
    mp_dmbst_addr;
    mp_dmb_only;
    mp_dmb_ctrl;
    mp_dmb_ctrl_isb;
    mp_rel_acq;
    sb_rel_acq;
    iriw_dmb;
    iriw_addrs;
  ]

(* ------------------------------------------------------------------ *)
(* POWER variants.                                                     *)
(* ------------------------------------------------------------------ *)

let power_only v = [ (Axiomatic.Power, v) ]

let sb_sync =
  make ~name:"SB+syncs" ~description:"store buffering fenced with hwsync"
    ~threads:
      [
        [| str ~value:1 ~loc:x; sync_i; ldr ~dst:r1 ~loc:y |];
        [| str ~value:1 ~loc:y; sync_i; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0) ]
    ~expected:(power_only false) ()

let sb_lwsync =
  make ~name:"SB+lwsyncs" ~description:"lwsync does not order write-to-read"
    ~threads:
      [
        [| str ~value:1 ~loc:x; lwsync_i; ldr ~dst:r1 ~loc:y |];
        [| str ~value:1 ~loc:y; lwsync_i; ldr ~dst:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 0); ((1, r1), 0) ]
    ~expected:(power_only true) ()

let mp_lwsync_addr =
  make ~name:"MP+lwsync+addr" ~description:"lwsync writer, addr-dep reader"
    ~threads:(mp_threads ~writer_fence:[ lwsync_i ] ~reader:mp_addr_reader)
    ~condition:mp_cond ~expected:(power_only false) ()

let mp_sync_addr =
  make ~name:"MP+sync+addr" ~description:"hwsync writer, addr-dep reader"
    ~threads:(mp_threads ~writer_fence:[ sync_i ] ~reader:mp_addr_reader)
    ~condition:mp_cond ~expected:(power_only false) ()

let mp_lwsync_only =
  make ~name:"MP+lwsync" ~description:"one-sided lwsync leaves the reader free"
    ~threads:(mp_threads ~writer_fence:[ lwsync_i ] ~reader:mp_plain_reader)
    ~condition:mp_cond ~expected:(power_only true) ()

let mp_lwsync_ctrl_isync =
  make ~name:"MP+lwsync+ctrl+isync" ~description:"ctrl+isync restores the reader"
    ~threads:
      (mp_threads ~writer_fence:[ lwsync_i ]
         ~reader:([ ldr ~dst:r1 ~loc:y ] @ ctrl_then r1 @ [ isync_i; ldr ~dst:r4 ~loc:x ]))
    ~condition:mp_cond ~expected:(power_only false) ()

let iriw_syncs =
  make ~name:"IRIW+syncs" ~description:"hwsync restores IRIW even on POWER"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:x; sync_i; ldr ~dst:r2 ~loc:y |];
        [| ldr ~dst:r3 ~loc:y; sync_i; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:[ ((2, r1), 1); ((2, r2), 0); ((3, r3), 1); ((3, r4), 0) ]
    ~expected:(power_only false) ()

let isa2 =
  make ~name:"ISA2+lwsync+data+addr"
    ~description:"lwsync cumulativity carries ordering through a third thread"
    ~threads:
      [
        [| str ~value:1 ~loc:x; lwsync_i; str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; str_reg ~src:r1 ~loc:z |];
        [|
          ldr ~dst:r2 ~loc:z;
          xor_self ~dst:r3 ~src:r2;
          ldr_reg ~dst:r4 ~addr:r3;
        |];
      ]
    ~condition:[ ((1, r1), 1); ((2, r2), 1); ((2, r4), 0) ]
    ~expected:(power_only false) ()

let w2plus2_lwsync =
  make ~name:"2+2W+lwsyncs" ~description:"lwsync orders write-to-write, forbidding 2+2W"
    ~threads:
      [
        [| str ~value:1 ~loc:x; lwsync_i; str ~value:2 ~loc:y |];
        [| str ~value:1 ~loc:y; lwsync_i; str ~value:2 ~loc:x |];
      ]
    ~condition:[] ~mem_condition:[ (x, 1); (y, 1) ]
    ~expected:(power_only false) ()

let iriw_lwsyncs =
  make ~name:"IRIW+lwsyncs"
    ~description:"lwsync is not cumulative enough for IRIW (stays allowed on POWER)"
    ~threads:
      [
        [| str ~value:1 ~loc:x |];
        [| str ~value:1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:x; lwsync_i; ldr ~dst:r2 ~loc:y |];
        [| ldr ~dst:r3 ~loc:y; lwsync_i; ldr ~dst:r4 ~loc:x |];
      ]
    ~condition:[ ((2, r1), 1); ((2, r2), 0); ((3, r3), 1); ((3, r4), 0) ]
    ~expected:(power_only true) ()

let mp_eieio_addr =
  make ~name:"MP+eieio+addr" ~description:"eieio orders the writer's stores"
    ~threads:
      (mp_threads ~writer_fence:[ Wmm_isa.Instr.Barrier Wmm_isa.Instr.Eieio ]
         ~reader:mp_addr_reader)
    ~condition:mp_cond ~expected:(power_only false) ()

let lb_data_power =
  make ~name:"LB+datas+power" ~description:"data dependencies forbid LB on POWER too"
    ~threads:
      [
        [| ldr ~dst:r1 ~loc:x; str_reg ~src:r1 ~loc:y |];
        [| ldr ~dst:r1 ~loc:y; str_reg ~src:r1 ~loc:x |];
      ]
    ~condition:[ ((0, r1), 1); ((1, r1), 1) ]
    ~expected:(power_only false) ()

let power =
  [
    sb_sync;
    w2plus2_lwsync;
    iriw_lwsyncs;
    mp_eieio_addr;
    lb_data_power;
    sb_lwsync;
    mp_lwsync_addr;
    mp_sync_addr;
    mp_lwsync_only;
    mp_lwsync_ctrl_isync;
    iriw_syncs;
    isa2;
  ]

let all = coherence @ common @ atomics @ arm @ power

let for_model model =
  List.filter (fun t -> Test.expected_under t model <> None) all

(* Callers look tests up by name in inner loops (CLI expansion, the
   analysis pipeline, generated-battery naming), so build the index
   once instead of scanning the list per query. *)
let name_index =
  lazy
    (let tbl = Hashtbl.create (List.length all) in
     List.iter
       (fun (t : Test.t) ->
         if not (Hashtbl.mem tbl t.Test.name) then Hashtbl.add tbl t.Test.name t)
       all;
     tbl)

let by_name name = Hashtbl.find_opt (Lazy.force name_index) name

let machine_config_for (_ : Test.t) = Wmm_machine.Relaxed.relaxed_config
