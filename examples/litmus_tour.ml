(* A tour of the weak-memory semantic layer: run classic litmus tests
   on the operational machine and compare with the axiomatic models.

   Run with:  dune exec examples/litmus_tour.exe *)

open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_litmus

let show_test name =
  let test = Option.get (Library.by_name name) in
  Printf.printf "%s - %s\n" test.Test.name test.Test.description;
  print_string (Asm.program Arch.Armv8 test.Test.program);
  (* What does each model say, and does the operational machine agree? *)
  List.iter
    (fun model ->
      let config =
        match model with
        | Axiomatic.Sc -> Relaxed.sc_config
        | Axiomatic.Tso -> Relaxed.tso_config
        | Axiomatic.Arm | Axiomatic.Power -> Relaxed.relaxed_config
        | Axiomatic.Rc11 -> Relaxed.sc_config
      in
      let v = Check.run_random ~iterations:1000 model config test in
      Printf.printf "  %-6s %-9s observed %4d/%d times\n"
        (Axiomatic.model_name model)
        (if v.Check.axiomatic_allowed then "allowed" else "forbidden")
        v.Check.observations v.Check.total)
    Axiomatic.all_models;
  print_newline ()

let () =
  (* The two most famous weak behaviours... *)
  show_test "SB";
  show_test "MP";
  (* ...and how fences/dependencies forbid them. *)
  show_test "MP+dmb+addr";
  show_test "MP+rel+acq";
  (* Multi-copy atomicity separates ARMv8 from POWER. *)
  show_test "IRIW+addrs";

  (* The full battery, exhaustively: the operational machine must
     never produce an outcome the architecture's model forbids. *)
  let sound = ref 0 and total = ref 0 in
  List.iter
    (fun test ->
      List.iter
        (fun model ->
          if Test.expected_under test model <> None then begin
            let config =
              match model with
              | Axiomatic.Sc -> Relaxed.sc_config
              | Axiomatic.Tso -> Relaxed.tso_config
              | Axiomatic.Arm | Axiomatic.Power -> Relaxed.relaxed_config
              | Axiomatic.Rc11 -> Relaxed.sc_config
            in
            let v = Check.run_exhaustive model config test in
            incr total;
            if Check.sound v then incr sound else print_endline (Check.describe v)
          end)
        Axiomatic.all_models)
    Library.all;
  Printf.printf "battery: %d/%d verdicts sound\n" !sound !total
