(* Infer fence placements for a few classic litmus tests.

   The analysis pipeline lifts each test into a static conflict
   graph, finds the critical cycles the architecture's memory model
   can break, proposes barrier placements, verifies them by
   exhaustive axiomatic exploration, minimises, and prices the
   survivors with the paper's sensitivity methodology.

   Run with:  dune exec examples/fence_inference.exe *)

let () =
  let tests =
    List.filter_map Wmm_litmus.Library.by_name [ "SB"; "MP"; "LB"; "IRIW" ]
  in
  let engine = Wmm_engine.Engine.create ~jobs:0 () in
  List.iter
    (fun arch ->
      let rows = Wmm_analysis.Infer.analyze_all ~engine ~arch tests in
      print_string (Wmm_analysis.Infer.render arch rows);
      print_newline ())
    [ Wmm_isa.Arch.Armv8; Wmm_isa.Arch.Power7 ]
