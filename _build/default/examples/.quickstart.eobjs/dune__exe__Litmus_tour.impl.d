examples/litmus_tour.ml: Arch Asm Axiomatic Check Library List Option Printf Relaxed Test Wmm_isa Wmm_litmus Wmm_machine Wmm_model
