examples/quickstart.ml: Arch Barrier Bench_runner Dacapo Experiment Generate Jvm List Perf Printf Sensitivity Uop Wmm_core Wmm_costfn Wmm_isa Wmm_machine Wmm_platform Wmm_util Wmm_workload
