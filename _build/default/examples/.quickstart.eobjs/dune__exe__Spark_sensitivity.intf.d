examples/spark_sensitivity.mli:
