examples/spark_sensitivity.ml: Arch Barrier Dacapo Experiment Generate Jvm List Printf Sensitivity Wmm_core Wmm_costfn Wmm_isa Wmm_platform Wmm_workload
