examples/quickstart.mli:
