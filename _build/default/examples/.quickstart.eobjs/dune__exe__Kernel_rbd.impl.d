examples/kernel_rbd.ml: Arch Experiment Generate Kernel Kernelbench List Printf Sensitivity Wmm_core Wmm_costfn Wmm_isa Wmm_platform Wmm_util Wmm_workload
