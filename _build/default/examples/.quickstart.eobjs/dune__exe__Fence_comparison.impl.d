examples/fence_comparison.ml: Arch Barrier Dacapo Experiment Generate Jvm List Perf Printf Profile Sensitivity Timing Uop Wmm_core Wmm_costfn Wmm_isa Wmm_machine Wmm_platform Wmm_util Wmm_workload
