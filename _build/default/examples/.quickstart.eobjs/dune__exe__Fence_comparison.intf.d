examples/fence_comparison.mli:
