examples/kernel_rbd.mli:
