(* The paper's section 4.3.1 investigation, condensed: which
   implementation should the Linux kernel's read_barrier_depends use
   on ARMv8?

   Run with:  dune exec examples/kernel_rbd.exe *)

open Wmm_isa
open Wmm_platform
open Wmm_workload
open Wmm_core

let arch = Arch.Armv8

let platform ?(rbd = Kernel.Rbd_none) ?(inject = []) () =
  let config = { (Kernel.default arch) with Kernel.rbd } in
  let config =
    List.fold_left (fun c (m, u) -> Kernel.with_injection c m u) config inject
  in
  Generate.Kernel_platform config

let () =
  (* First: is the benchmark sensitive to this code path at all?
     (The paper's Fig. 9.) *)
  let profile = Kernelbench.netperf_udp in
  let cf1 = Wmm_costfn.Cost_function.make arch 1 in
  let sweep =
    Experiment.sweep ~samples:4 ~code_path:"read_barrier_depends"
      ~base:
        (platform
           ~inject:
             [ (Kernel.Read_barrier_depends, [ Wmm_costfn.Cost_function.nop_padding arch cf1 ]) ]
           ())
      ~inject:(fun c ->
        platform ~inject:[ (Kernel.Read_barrier_depends, [ Wmm_costfn.Cost_function.uop c ]) ] ())
      profile
  in
  Printf.printf "netperf_udp sensitivity to read_barrier_depends: k=%.5f +-%.1f%%\n\n"
    sweep.Experiment.fit.Sensitivity.k sweep.Experiment.fit.Sensitivity.k_error_percent;

  (* Then: compare the candidate fencing strategies from the ARMv8
     manual's dependency-ordering recipes (the paper's Fig. 10),
     pricing each with eq. 2. *)
  List.iter
    (fun strategy ->
      if strategy <> Kernel.Rbd_none then begin
        let rel =
          Experiment.relative_performance ~samples:4 profile ~base:(platform ())
            ~test:(platform ~rbd:strategy ())
        in
        Printf.printf "%-10s %+6.1f%%   inferred cost %5.1f ns/invocation\n"
          (Kernel.rbd_name strategy)
          ((rel.Wmm_util.Stats.gmean -. 1.) *. 100.)
          (Experiment.inferred_cost_ns sweep.Experiment.fit rel)
      end)
    Kernel.all_rbd_strategies;
  print_endline
    "\n(The paper's conclusion: isb is unreasonable; if ordering is required,\n\
     dmb ishld or dmb ish are the best-case scenarios.)"
