(* The paper's section 4.2.1 story: how much does a barrier
   instruction choice cost, and can a microbenchmark tell you?

   On POWER, swapping the StoreStore barrier from lwsync to hwsync is
   visible both in vitro (a microbenchmark separates the two
   instructions threefold) and in vivo (spark drops ~12%), and the
   in-vivo inferred cost agrees across benchmarks: the instruction's
   behaviour is workload agnostic.  On ARMv8 the dmb variants look
   identical in vitro; only macrobenchmarks expose the difference,
   and the size depends on the workload.

   Run with:  dune exec examples/fence_comparison.exe *)

open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

let sweep_storestore arch profile =
  let light = arch = Arch.Armv8 in
  let inject uops =
    Generate.Jvm_platform (Jvm.with_injection (Jvm.default arch) Barrier.Store_store uops)
  in
  let cf1 = Wmm_costfn.Cost_function.make ~light arch 1 in
  Experiment.sweep ~samples:4 ~light ~code_path:"StoreStore"
    ~base:(inject [ Wmm_costfn.Cost_function.nop_padding arch cf1 ])
    ~inject:(fun c -> inject [ Wmm_costfn.Cost_function.uop c ])
    profile

let () =
  List.iter
    (fun arch ->
      let timing = Timing.for_arch arch in
      let weak_name, strong_name, weak_uop =
        match arch with
        | Arch.Armv8 -> ("dmb ishst", "dmb ish", Uop.Fence_store)
        | Arch.Power7 -> ("lwsync", "sync", Uop.Fence_lw)
      in
      Printf.printf "=== %s: StoreStore as %s vs %s ===\n" (Arch.long_name arch) weak_name
        strong_name;
      (* In vitro. *)
      let micro_weak = Perf.sequence_cost_ns timing [ weak_uop ] in
      let micro_strong = Perf.sequence_cost_ns timing [ Uop.Fence_full ] in
      Printf.printf "microbenchmark: %s %.1f ns, %s %.1f ns (delta %.1f ns)\n" weak_name
        micro_weak strong_name micro_strong
        (micro_strong -. micro_weak);
      (* In vivo, on spark and a couple of other benchmarks. *)
      List.iter
        (fun (profile : Profile.t) ->
          let base = Generate.Jvm_platform (Jvm.default arch) in
          let test =
            Generate.Jvm_platform
              {
                (Jvm.default arch) with
                Jvm.elemental_override = [ (Barrier.Store_store, Uop.Fence_full) ];
              }
          in
          let rel = Experiment.relative_performance ~samples:4 profile ~base ~test in
          let fit = (sweep_storestore arch profile).Experiment.fit in
          let inferred = Experiment.inferred_cost_ns fit rel in
          Printf.printf "  %-10s %+5.1f%%  k=%.5f  inferred delta %.1f ns  %s\n"
            profile.Profile.name
            ((rel.Wmm_util.Stats.gmean -. 1.) *. 100.)
            fit.Sensitivity.k inferred
            (if
               Experiment.divergence_interesting
                 { Experiment.micro_ns = micro_strong -. micro_weak; macro_ns = inferred }
             then "(diverges from in vitro: context-dependent)"
             else "(agrees with in vitro)"))
        [ Dacapo.spark; Dacapo.h2; Dacapo.sunflow ];
      print_newline ())
    Arch.all
