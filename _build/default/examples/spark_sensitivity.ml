(* A full sensitivity portrait of one benchmark: spark, the paper's
   most sensitive and most stable macrobenchmark.

   Reproduces its slice of Figs. 5 and 6: overall sensitivity to the
   fencing strategy on both architectures, then the per-elemental
   breakdown showing StoreStore dominates.

   Run with:  dune exec examples/spark_sensitivity.exe *)

open Wmm_isa
open Wmm_platform
open Wmm_workload
open Wmm_core

let sweep arch elementals label =
  let light = arch = Arch.Armv8 in
  let cf1 = Wmm_costfn.Cost_function.make ~light arch 1 in
  let with_uops uops =
    Generate.Jvm_platform
      (List.fold_left
         (fun c e -> Jvm.with_injection c e uops)
         (Jvm.default arch) elementals)
  in
  let s =
    Experiment.sweep ~samples:4 ~light ~code_path:label
      ~base:(with_uops [ Wmm_costfn.Cost_function.nop_padding arch cf1 ])
      ~inject:(fun c -> with_uops [ Wmm_costfn.Cost_function.uop c ])
      Dacapo.spark
  in
  Printf.printf "  %-12s k=%.5f +-%4.1f%%  %s\n" label s.Experiment.fit.Sensitivity.k
    s.Experiment.fit.Sensitivity.k_error_percent
    (if Sensitivity.well_suited s.Experiment.fit then "stable" else "unstable");
  s

let () =
  List.iter
    (fun arch ->
      Printf.printf "spark on %s:\n" (Arch.long_name arch);
      let all = sweep arch Barrier.all_elementals "all barriers" in
      let per_elemental =
        List.map
          (fun e -> (e, sweep arch [ e ] (Barrier.elemental_name e)))
          Barrier.all_elementals
      in
      let dominant =
        List.fold_left
          (fun (best_e, best_k) (e, s) ->
            let k = s.Experiment.fit.Sensitivity.k in
            if k > best_k then (e, k) else (best_e, best_k))
          (Barrier.Load_load, 0.) per_elemental
      in
      Printf.printf "  -> most sensitive to %s (overall k %.5f)\n\n"
        (Barrier.elemental_name (fst dominant))
        all.Experiment.fit.Sensitivity.k)
    Arch.all
