(* Quickstart: measure how sensitive a benchmark is to a fencing
   code path, then use the fitted model to price a fencing change.

   Run with:  dune exec examples/quickstart.exe *)

open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

let () =
  let arch = Arch.Armv8 in

  (* 1. A platform: the mini-JVM with its default (JDK8-style) fencing
     strategy, and a workload profile: the spark benchmark. *)
  let base = Generate.Jvm_platform (Jvm.default arch) in
  let profile = Dacapo.spark in

  (* 2. How fast is it?  (Work units per microsecond.) *)
  let result = Bench_runner.run profile base ~seed:42 in
  Printf.printf "spark on %s: %.1f units/us (%d bus transactions)\n" (Arch.name arch)
    result.Bench_runner.throughput result.Bench_runner.stats.Perf.bus_transactions;

  (* 3. Fit the paper's sensitivity model (eq. 1): inject spin-loop
     cost functions of growing size into the StoreStore barrier code
     path and watch relative performance fall. *)
  let inject uops =
    Generate.Jvm_platform (Jvm.with_injection (Jvm.default arch) Barrier.Store_store uops)
  in
  let cf n = Wmm_costfn.Cost_function.make ~light:true arch n in
  let sweep =
    Experiment.sweep ~samples:4 ~light:true ~code_path:"StoreStore"
      ~base:(inject [ Wmm_costfn.Cost_function.nop_padding arch (cf 1) ])
      ~inject:(fun c -> inject [ Wmm_costfn.Cost_function.uop c ])
      profile
  in
  List.iter
    (fun (pt : Experiment.sweep_point) ->
      Printf.printf "  cost %6.1f ns -> relative performance %.3f\n" pt.Experiment.cost_ns
        pt.Experiment.relative.Wmm_util.Stats.gmean)
    sweep.Experiment.points;
  let fit = sweep.Experiment.fit in
  Printf.printf "sensitivity k = %.5f (+-%.1f%%)\n" fit.Sensitivity.k
    fit.Sensitivity.k_error_percent;

  (* 4. Price a real fencing change with eq. 2: swap the StoreStore
     barrier from dmb ishst to a full dmb ish and convert the
     observed slowdown into nanoseconds per barrier. *)
  let swapped =
    Generate.Jvm_platform
      {
        (Jvm.default arch) with
        Jvm.elemental_override = [ (Barrier.Store_store, Uop.Fence_full) ];
      }
  in
  let rel = Experiment.relative_performance ~samples:4 profile ~base ~test:swapped in
  Printf.printf "dmb ishst -> dmb ish: %+.1f%% -> inferred cost %+.1f ns per barrier\n"
    ((rel.Wmm_util.Stats.gmean -. 1.) *. 100.)
    (Experiment.inferred_cost_ns fit rel)
