open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

(* A small quiet profile so experiment tests are fast and exact. *)
let tiny =
  Profile.make "tiny" ~threads:2 ~units_per_thread:60 ~unit_busy_cycles:800 ~unit_loads:8
    ~unit_stores:6 ~working_set:128 ~shared_locations:16 ~share_ratio:0.2
    ~jvm:{ Profile.volatile_loads = 1.; volatile_stores = 2.; cas = 0.; locks = 0.5 }
    ~noise:Profile.quiet

let arch = Arch.Armv8
let base = Generate.Jvm_platform (Jvm.default arch)

let inject_all uops = Generate.Jvm_platform (Jvm.with_injection_all (Jvm.default arch) uops)

let test_identical_configs_relative_one () =
  let rel = Experiment.relative_performance ~samples:3 tiny ~base ~test:base in
  Alcotest.(check (float 1e-9)) "exactly 1" 1. rel.Wmm_util.Stats.gmean

let test_injection_slows () =
  let rel =
    Experiment.relative_performance ~samples:3 tiny ~base
      ~test:(inject_all [ Uop.Spin 256 ])
  in
  Alcotest.(check bool) "slower" true (rel.Wmm_util.Stats.gmean < 0.9)

let test_sweep_decreasing_and_fit () =
  let sweep =
    Experiment.sweep ~samples:3 ~light:true ~code_path:"all"
      ~iteration_counts:[ 1; 8; 64; 512 ]
      ~base:(inject_all [ Uop.Nops 3 ])
      ~inject:(fun cf -> inject_all [ Wmm_costfn.Cost_function.uop cf ])
      tiny
  in
  let ps =
    List.map (fun (p : Experiment.sweep_point) -> p.Experiment.relative.Wmm_util.Stats.gmean)
      sweep.Experiment.points
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 0.02 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "points decrease" true (decreasing ps);
  Alcotest.(check bool) "k positive" true (sweep.Experiment.fit.Sensitivity.k > 0.);
  Alcotest.(check bool) "fit converged" true sweep.Experiment.fit.Sensitivity.converged

let test_inferred_cost_roundtrip () =
  (* If we synthesise a relative performance from eq. 1, eq. 2
     recovers the cost. *)
  let fit = { Sensitivity.k = 0.004; k_error_percent = 1.; residual_ss = 0.; converged = true } in
  let p = Sensitivity.performance ~k:0.004 ~a:25. in
  let summary =
    { Wmm_util.Stats.n = 6; gmean = p; amean = p; ci = { Wmm_util.Stats.lo = p; hi = p };
      smin = p; smax = p }
  in
  let inferred = Experiment.inferred_cost_ns fit summary in
  Alcotest.(check bool) "round trip" true (abs_float (inferred -. 25.) < 1e-9)

let test_ranking_matrix () =
  let kernel_tiny =
    Profile.make "ktiny" ~threads:2 ~units_per_thread:60 ~unit_busy_cycles:600 ~unit_loads:6
      ~unit_stores:4 ~working_set:128 ~shared_locations:16 ~share_ratio:0.2
      ~kernel:[ (Kernel.Smp_mb, 1.0); (Kernel.Read_once, 1.0) ]
      ~noise:Profile.quiet
  in
  let kernel_builder uops =
    let config =
      List.fold_left
        (fun c m -> Kernel.with_injection c m uops)
        (Kernel.default arch) Kernel.all_macros
    in
    Generate.Kernel_platform config
  in
  let path_builder macro uops =
    Generate.Kernel_platform (Kernel.with_injection (Kernel.default arch) macro uops)
  in
  let cells =
    Experiment.ranking_matrix ~samples:2 ~spin_iterations:256
      ~paths:
        [
          ("smp_mb", path_builder Kernel.Smp_mb);
          ("smp_wmb", path_builder Kernel.Smp_wmb);
        ]
      ~benchmarks:[ (kernel_tiny, kernel_builder) ]
      ()
  in
  Alcotest.(check int) "two cells" 2 (List.length cells);
  let rel_of name =
    (List.find (fun (c : Experiment.cell) -> c.Experiment.code_path = name) cells)
      .Experiment.relative.Wmm_util.Stats.gmean
  in
  (* The benchmark invokes smp_mb but never smp_wmb: injecting into
     smp_mb must hurt, into smp_wmb must not. *)
  Alcotest.(check bool) "smp_mb impact" true (rel_of "smp_mb" < 0.95);
  Alcotest.(check bool) "smp_wmb no impact" true (abs_float (rel_of "smp_wmb" -. 1.) < 0.05);
  (* Aggregations. *)
  let by_path = Experiment.sum_by_code_path cells in
  Alcotest.(check string) "most impactful path first" "smp_mb" (fst (List.hd by_path));
  let by_bench = Experiment.sum_by_benchmark cells in
  Alcotest.(check int) "one benchmark row" 1 (List.length by_bench)

let test_divergence_flag () =
  Alcotest.(check bool) "divergent" true
    (Experiment.divergence_interesting { Experiment.micro_ns = 2.; macro_ns = 10. });
  Alcotest.(check bool) "agreeing" false
    (Experiment.divergence_interesting { Experiment.micro_ns = 10.; macro_ns = 11. })

let test_measure_of_profile () =
  Alcotest.(check bool) "throughput for normal" true
    (Experiment.measure_of_profile tiny = Experiment.Throughput);
  Alcotest.(check bool) "response for osm_stack" true
    (Experiment.measure_of_profile Kernelbench.osm_stack = Experiment.Response_mean)

let suite =
  [
    Alcotest.test_case "identical configs ratio 1" `Quick test_identical_configs_relative_one;
    Alcotest.test_case "injection slows benchmark" `Quick test_injection_slows;
    Alcotest.test_case "sweep decreasing + fit" `Quick test_sweep_decreasing_and_fit;
    Alcotest.test_case "eq2 round trip via experiment" `Quick test_inferred_cost_roundtrip;
    Alcotest.test_case "ranking matrix" `Quick test_ranking_matrix;
    Alcotest.test_case "divergence flag" `Quick test_divergence_flag;
    Alcotest.test_case "measure of profile" `Quick test_measure_of_profile;
  ]
