open Wmm_util

let test_render_alignment () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "12345" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* Right-aligned numeric column: the last characters line up. *)
  let last_line = List.nth lines 3 in
  Alcotest.(check bool) "value right aligned" true
    (String.length last_line > 0 && last_line.[String.length last_line - 1] = '5')

let test_row_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_row_overflow_rejected () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_cells () =
  Alcotest.(check string) "float" "1.2346" (Table.float_cell 1.23456);
  Alcotest.(check string) "float decimals" "1.2" (Table.float_cell ~decimals:1 1.23456);
  Alcotest.(check string) "percent positive" "+3.1%" (Table.percent_cell 0.031);
  Alcotest.(check string) "percent negative" "-12.5%" (Table.percent_cell (-0.125));
  Alcotest.(check string) "value pm" "0.00277 +- 2.5%"
    (Table.value_pm_percent ~value:0.00277 ~percent:2.5)

let test_series () =
  let s = Table.series ~name:"spark" ~xs:[| 1.; 2. |] ~ys:[| 0.9; 0.8 |] in
  Alcotest.(check string) "tsv lines" "spark\t1\t0.9\nspark\t2\t0.8\n" s

let test_series_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.series: xs/ys length mismatch")
    (fun () -> ignore (Table.series ~name:"x" ~xs:[| 1. |] ~ys:[||]))

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Table.sparkline [||]);
  let s = Table.sparkline [| 0.; 1. |] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "row padding" `Quick test_row_padding;
    Alcotest.test_case "row overflow rejected" `Quick test_row_overflow_rejected;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "series mismatch" `Quick test_series_mismatch;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
  ]
