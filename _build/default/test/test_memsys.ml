open Wmm_isa
open Wmm_machine

let make ?(cores = 4) () = Memsys.create (Timing.for_arch Arch.Armv8) ~cores

let test_first_load_misses_then_hits () =
  let m = make () in
  let first = Memsys.load m ~core:0 ~loc:8 ~now:0 in
  Alcotest.(check bool) "first is a miss" false first.Memsys.hit;
  let second = Memsys.load m ~core:0 ~loc:8 ~now:100 in
  Alcotest.(check bool) "second hits" true second.Memsys.hit;
  Alcotest.(check bool) "hit is fast" true
    (second.Memsys.ready_at - 100 < first.Memsys.ready_at)

let test_same_line_shares_hit () =
  (* Locations 8..15 are one line (line_shift = 3). *)
  let m = make () in
  ignore (Memsys.load m ~core:0 ~loc:8 ~now:0);
  let neighbour = Memsys.load m ~core:0 ~loc:15 ~now:50 in
  Alcotest.(check bool) "same line hits" true neighbour.Memsys.hit;
  let other_line = Memsys.load m ~core:0 ~loc:16 ~now:60 in
  Alcotest.(check bool) "next line misses" false other_line.Memsys.hit

let test_store_invalidates_sharers () =
  let m = make () in
  ignore (Memsys.load m ~core:0 ~loc:8 ~now:0);
  ignore (Memsys.load m ~core:1 ~loc:8 ~now:10);
  (* Core 2 drains a store: both sharers must lose the line. *)
  ignore (Memsys.store_drain m ~core:2 ~loc:8 ~now:20);
  let r0 = Memsys.load m ~core:0 ~loc:8 ~now:200 in
  let r1 = Memsys.load m ~core:1 ~loc:8 ~now:400 in
  Alcotest.(check bool) "core 0 invalidated" false r0.Memsys.hit;
  Alcotest.(check bool) "core 1 invalidated" false r1.Memsys.hit

let test_exclusive_drain_is_cheap () =
  let m = make () in
  let t1 = Memsys.store_drain m ~core:0 ~loc:8 ~now:0 in
  (* Second drain to the now-exclusive line is local. *)
  let t2 = Memsys.store_drain m ~core:0 ~loc:9 ~now:t1 in
  Alcotest.(check bool) "upgrade slower than owned" true (t1 - 0 > t2 - t1)

let test_load_after_remote_dirty () =
  let m = make () in
  ignore (Memsys.store_drain m ~core:0 ~loc:8 ~now:0);
  (* Remote dirty line: cache-to-cache transfer, then both shared. *)
  let r = Memsys.load m ~core:1 ~loc:8 ~now:100 in
  Alcotest.(check bool) "miss with transfer" false r.Memsys.hit;
  let again = Memsys.load m ~core:1 ~loc:8 ~now:500 in
  Alcotest.(check bool) "then cached" true again.Memsys.hit

let test_transactions_counted () =
  let m = make () in
  ignore (Memsys.load m ~core:0 ~loc:0 ~now:0);
  ignore (Memsys.load m ~core:1 ~loc:0 ~now:1);
  ignore (Memsys.store_drain m ~core:2 ~loc:0 ~now:2);
  Alcotest.(check int) "three transactions" 3 (Memsys.bus_transactions m)

let test_bus_queue_bounded () =
  (* Many simultaneous requests: waits stay bounded by the per-core
     queue cap (occupancy x cores). *)
  let timing = Timing.for_arch Arch.Armv8 in
  let m = Memsys.create timing ~cores:4 in
  let cap = timing.Timing.bus_occupancy_cycles * 4 in
  for i = 0 to 63 do
    let r = Memsys.load m ~core:(i mod 4) ~loc:(i * 8) ~now:0 in
    let wait =
      r.Memsys.ready_at
      - (timing.Timing.memory_cycles + timing.Timing.l2_hit_cycles + cap)
    in
    Alcotest.(check bool) "wait bounded" true (wait <= cap + timing.Timing.memory_cycles)
  done

let test_reset () =
  let m = make () in
  ignore (Memsys.load m ~core:0 ~loc:8 ~now:0);
  Memsys.reset m;
  Alcotest.(check int) "counters cleared" 0 (Memsys.bus_transactions m);
  let r = Memsys.load m ~core:0 ~loc:8 ~now:0 in
  Alcotest.(check bool) "cache cleared" false r.Memsys.hit

let prop_ready_at_after_now =
  QCheck.Test.make ~name:"completion never precedes request" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 4096) (int_range 0 100000))
    (fun (core, loc, now) ->
      let m = make () in
      let r = Memsys.load m ~core ~loc ~now in
      r.Memsys.ready_at >= now
      && Memsys.store_drain m ~core ~loc ~now >= now)

let prop_hit_faster_than_miss =
  QCheck.Test.make ~name:"hits are never slower than misses" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 4096))
    (fun (core, loc) ->
      let m = make () in
      let miss = Memsys.load m ~core ~loc ~now:0 in
      let hit = Memsys.load m ~core ~loc ~now:miss.Memsys.ready_at in
      hit.Memsys.ready_at - miss.Memsys.ready_at <= miss.Memsys.ready_at - 0)

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_first_load_misses_then_hits;
    Alcotest.test_case "line granularity" `Quick test_same_line_shares_hit;
    Alcotest.test_case "store invalidates sharers" `Quick test_store_invalidates_sharers;
    Alcotest.test_case "exclusive drain cheap" `Quick test_exclusive_drain_is_cheap;
    Alcotest.test_case "remote dirty transfer" `Quick test_load_after_remote_dirty;
    Alcotest.test_case "transactions counted" `Quick test_transactions_counted;
    Alcotest.test_case "bus queue bounded" `Quick test_bus_queue_bounded;
    Alcotest.test_case "reset" `Quick test_reset;
    QCheck_alcotest.to_alcotest prop_ready_at_after_now;
    QCheck_alcotest.to_alcotest prop_hit_faster_than_miss;
  ]
