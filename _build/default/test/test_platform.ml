open Wmm_isa
open Wmm_machine
open Wmm_platform

let count_uop pred uops = List.length (List.filter pred uops)
let is_spin = function Uop.Spin _ | Uop.Spin_light _ -> true | _ -> false

(* Barrier composites ----------------------------------------------- *)

let test_composites () =
  Alcotest.(check int) "Volatile is all four" 4
    (List.length (Barrier.elementals_of_composite Barrier.Volatile));
  Alcotest.(check bool) "Acquire = LL+LS" true
    (Barrier.elementals_of_composite Barrier.Acquire
    = [ Barrier.Load_load; Barrier.Load_store ]);
  Alcotest.(check bool) "Release = LS+SS" true
    (Barrier.elementals_of_composite Barrier.Release
    = [ Barrier.Load_store; Barrier.Store_store ])

(* JVM -------------------------------------------------------------- *)

let test_jvm_defaults () =
  let arm = Jvm.default Arch.Armv8 in
  let power = Jvm.default Arch.Power7 in
  Alcotest.(check bool) "ARM port defensive" true arm.Jvm.defensive_acquires;
  Alcotest.(check bool) "POWER port not" false power.Jvm.defensive_acquires

let test_elemental_selection () =
  let arm = Jvm.default Arch.Armv8 in
  let power = Jvm.default Arch.Power7 in
  Alcotest.(check bool) "ARM SL is dmb ish" true
    (Jvm.elemental_uop arm Barrier.Store_load = Uop.Fence_full);
  Alcotest.(check bool) "ARM SS is dmb ishst" true
    (Jvm.elemental_uop arm Barrier.Store_store = Uop.Fence_store);
  Alcotest.(check bool) "POWER SL is hwsync" true
    (Jvm.elemental_uop power Barrier.Store_load = Uop.Fence_full);
  Alcotest.(check bool) "POWER SS is lwsync" true
    (Jvm.elemental_uop power Barrier.Store_store = Uop.Fence_lw)

let test_override () =
  let config =
    { (Jvm.default Arch.Armv8) with Jvm.elemental_override = [ (Barrier.Store_store, Uop.Fence_full) ] }
  in
  Alcotest.(check bool) "override applies" true
    (Jvm.elemental_uop config Barrier.Store_store = Uop.Fence_full)

let test_group_coalescing () =
  let config = Jvm.default Arch.Armv8 in
  let full_group = Jvm.group config [ Barrier.Load_load; Barrier.Store_load ] in
  Alcotest.(check bool) "full fence subsumes" true (full_group = [ Uop.Fence_full ]);
  let pair = Jvm.group config [ Barrier.Load_load; Barrier.Store_store ] in
  Alcotest.(check bool) "distinct fences kept" true
    (pair = [ Uop.Fence_load; Uop.Fence_store ])

let test_injection_count_matches_invocations () =
  (* Injecting a spin into an elemental must produce exactly
     barrier_invocations spins in the compiled op. *)
  List.iter
    (fun arch ->
      let base = Jvm.default arch in
      List.iter
        (fun op ->
          List.iter
            (fun elemental ->
              let injected = Jvm.with_injection base elemental [ Uop.Spin 8 ] in
              let spins = count_uop is_spin (Jvm.compile injected op) in
              Alcotest.(check int)
                (Printf.sprintf "%s spins" (Barrier.elemental_name elemental))
                (Jvm.barrier_invocations injected op elemental)
                spins)
            Barrier.all_elementals)
        [ Jvm.Volatile_load 0; Jvm.Volatile_store 0; Jvm.Cas 0; Jvm.Lock_enter 0;
          Jvm.Lock_exit 0 ])
    Arch.all

let test_acqrel_mode () =
  let config = { (Jvm.default Arch.Armv8) with Jvm.mode = Jvm.Acqrel } in
  Alcotest.(check bool) "volatile load is ldar" true
    (Jvm.compile config (Jvm.Volatile_load 3) = [ Uop.Load_acquire 3 ]);
  Alcotest.(check bool) "volatile store is stlr" true
    (Jvm.compile config (Jvm.Volatile_store 3) = [ Uop.Store_release 3 ]);
  (* Unpatched lock exit keeps a trailing dmb; the patch removes it. *)
  let unpatched = Jvm.compile config (Jvm.Lock_exit 1) in
  let patched = Jvm.compile { config with Jvm.lock_patch = true } (Jvm.Lock_exit 1) in
  Alcotest.(check bool) "patch removes the dmb" true
    (List.length patched < List.length unpatched);
  Alcotest.(check bool) "unpatched has a full fence" true
    (List.mem Uop.Fence_full unpatched)

let test_barrier_mode_volatile_store_shape () =
  let config = Jvm.default Arch.Armv8 in
  let uops = Jvm.compile config (Jvm.Volatile_store 7) in
  (* Release group, store, trailing Volatile group (with a full fence). *)
  let store_index = ref (-1) in
  List.iteri (fun i u -> if u = Uop.Store 7 then store_index := i) uops;
  Alcotest.(check bool) "store present" true (!store_index >= 0);
  let after = List.filteri (fun i _ -> i > !store_index) uops in
  Alcotest.(check bool) "full fence after store" true (List.mem Uop.Fence_full after)

let test_power_volatile_load_has_hwsync () =
  let config = Jvm.default Arch.Power7 in
  let uops = Jvm.compile config (Jvm.Volatile_load 2) in
  Alcotest.(check bool) "hwsync on load path" true (List.mem Uop.Fence_full uops)

(* Kernel ----------------------------------------------------------- *)

let test_kernel_macro_names () =
  Alcotest.(check int) "14 macros" 14 (List.length Kernel.all_macros);
  List.iter
    (fun m ->
      match Kernel.macro_of_name (Kernel.macro_name m) with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | None -> Alcotest.failf "macro name %s does not round-trip" (Kernel.macro_name m))
    Kernel.all_macros

let test_kernel_default_expansions () =
  let config = Kernel.default Arch.Armv8 in
  Alcotest.(check bool) "smp_mb is dmb ish" true
    (Kernel.expand config Kernel.Smp_mb ~loc:0 = [ Uop.Fence_full ]);
  Alcotest.(check bool) "smp_wmb is dmb ishst" true
    (Kernel.expand config Kernel.Smp_wmb ~loc:0 = [ Uop.Fence_store ]);
  Alcotest.(check bool) "read_once is just the load" true
    (Kernel.expand config Kernel.Read_once ~loc:4 = [ Uop.Load 4 ]);
  Alcotest.(check bool) "rbd empty by default" true
    (Kernel.expand config Kernel.Read_barrier_depends ~loc:0 = []);
  Alcotest.(check bool) "smp_load_acquire is ldar" true
    (Kernel.expand config Kernel.Smp_load_acquire ~loc:4 = [ Uop.Load_acquire 4 ]);
  Alcotest.(check bool) "smp_store_mb is st+dmb" true
    (Kernel.expand config Kernel.Smp_store_mb ~loc:4 = [ Uop.Store 4; Uop.Fence_full ])

let test_rbd_strategies () =
  let expand rbd = Kernel.expand { (Kernel.default Arch.Armv8) with Kernel.rbd } in
  Alcotest.(check bool) "ctrl is a branch" true
    (expand Kernel.Rbd_ctrl Kernel.Read_barrier_depends ~loc:0 = [ Uop.Branch ]);
  Alcotest.(check bool) "ctrl+isb adds the isb" true
    (expand Kernel.Rbd_ctrl_isb Kernel.Read_barrier_depends ~loc:0
    = [ Uop.Branch; Uop.Fence_pipeline ]);
  Alcotest.(check bool) "dmb ish strategy" true
    (expand Kernel.Rbd_dmb_ish Kernel.Read_barrier_depends ~loc:0 = [ Uop.Fence_full ]);
  (* la/sr also annotates READ_ONCE and WRITE_ONCE. *)
  Alcotest.(check bool) "la/sr read_once gains dmb ishld" true
    (expand Kernel.Rbd_la_sr Kernel.Read_once ~loc:2 = [ Uop.Fence_load; Uop.Load 2 ]);
  Alcotest.(check bool) "la/sr write_once gains dmb ishst" true
    (expand Kernel.Rbd_la_sr Kernel.Write_once ~loc:2 = [ Uop.Fence_store; Uop.Store 2 ])

let test_kernel_injection () =
  let config =
    Kernel.with_injection (Kernel.default Arch.Armv8) Kernel.Smp_mb [ Uop.Spin 16 ]
  in
  let uops = Kernel.expand config Kernel.Smp_mb ~loc:0 in
  Alcotest.(check int) "spin injected" 1 (count_uop is_spin uops);
  Alcotest.(check bool) "barrier still present" true (List.mem Uop.Fence_full uops);
  (* Other macros untouched. *)
  Alcotest.(check int) "no spin elsewhere" 0
    (count_uop is_spin (Kernel.expand config Kernel.Smp_rmb ~loc:0))

let test_access_macro_classification () =
  List.iter
    (fun m ->
      let uops = Kernel.expand (Kernel.default Arch.Armv8) m ~loc:3 in
      let touches_memory = List.exists Uop.is_memory uops in
      Alcotest.(check bool) (Kernel.macro_name m) (Kernel.is_access_macro m) touches_memory)
    Kernel.all_macros

let suite =
  [
    Alcotest.test_case "composites" `Quick test_composites;
    Alcotest.test_case "jvm defaults" `Quick test_jvm_defaults;
    Alcotest.test_case "elemental instruction selection" `Quick test_elemental_selection;
    Alcotest.test_case "elemental override" `Quick test_override;
    Alcotest.test_case "group coalescing" `Quick test_group_coalescing;
    Alcotest.test_case "injections match invocation counts" `Quick
      test_injection_count_matches_invocations;
    Alcotest.test_case "acqrel mode and lock patch" `Quick test_acqrel_mode;
    Alcotest.test_case "volatile store shape" `Quick test_barrier_mode_volatile_store_shape;
    Alcotest.test_case "POWER volatile load hwsync" `Quick
      test_power_volatile_load_has_hwsync;
    Alcotest.test_case "kernel macro names" `Quick test_kernel_macro_names;
    Alcotest.test_case "kernel default expansions" `Quick test_kernel_default_expansions;
    Alcotest.test_case "rbd strategies" `Quick test_rbd_strategies;
    Alcotest.test_case "kernel injection" `Quick test_kernel_injection;
    Alcotest.test_case "access macro classification" `Quick test_access_macro_classification;
  ]
