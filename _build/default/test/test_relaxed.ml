open Wmm_isa
open Wmm_machine
open Wmm_model
open Wmm_litmus

let program_of name = (Option.get (Library.by_name name)).Test.program

let test_determinism () =
  let p = program_of "SB" in
  let a = Relaxed.run Relaxed.relaxed_config ~seed:5 p in
  let b = Relaxed.run Relaxed.relaxed_config ~seed:5 p in
  Alcotest.(check int) "same outcome" 0 (Relaxed.compare_outcome a b)

let test_single_thread_sequential () =
  (* A single thread behaves sequentially under every config. *)
  let p =
    Program.make ~name:"seq" ~location_names:[| "x" |]
      [
        [|
          Instr.Store { src = Instr.Imm 1; addr = Instr.Imm 0; order = Instr.Plain };
          Instr.Load { dst = 1; addr = Instr.Imm 0; order = Instr.Plain };
          Instr.Store { src = Instr.Imm 2; addr = Instr.Imm 0; order = Instr.Plain };
          Instr.Load { dst = 2; addr = Instr.Imm 0; order = Instr.Plain };
        |];
      ]
  in
  List.iter
    (fun config ->
      let outcomes = Relaxed.enumerate config p in
      Alcotest.(check int) "single outcome" 1 (List.length outcomes);
      let o = List.hd outcomes in
      Alcotest.(check int) "r1 forwards 1" 1 (List.assoc (0, 1) o.Relaxed.registers);
      Alcotest.(check int) "r2 forwards 2" 2 (List.assoc (0, 2) o.Relaxed.registers);
      Alcotest.(check int) "final x" 2 (List.assoc 0 o.Relaxed.memory))
    [ Relaxed.sc_config; Relaxed.tso_config; Relaxed.relaxed_config ]

let test_registers_computed () =
  let p =
    Program.make ~name:"alu" ~location_names:[| "x" |]
      [
        [|
          Instr.Mov { dst = 1; src = Instr.Imm 5 };
          Instr.Op { op = Instr.Add; dst = 2; a = Instr.Reg 1; b = Instr.Imm 3 };
          Instr.Op { op = Instr.Xor; dst = 3; a = Instr.Reg 2; b = Instr.Reg 2 };
        |];
      ]
  in
  let o = Relaxed.run Relaxed.relaxed_config ~seed:1 p in
  Alcotest.(check int) "mov" 5 (List.assoc (0, 1) o.Relaxed.registers);
  Alcotest.(check int) "add" 8 (List.assoc (0, 2) o.Relaxed.registers);
  Alcotest.(check int) "xor self" 0 (List.assoc (0, 3) o.Relaxed.registers)

let test_branch_loop () =
  (* A small countdown loop: mov r1 3; subs-like decrement via add -1;
     cbnz back. *)
  let p =
    Program.make ~name:"loop" ~location_names:[| "x" |]
      [
        [|
          Instr.Mov { dst = 1; src = Instr.Imm 3 };
          Instr.Op { op = Instr.Add; dst = 1; a = Instr.Reg 1; b = Instr.Imm (-1) };
          Instr.Cbnz { src = 1; offset = -2 };
          Instr.Store { src = Instr.Imm 9; addr = Instr.Imm 0; order = Instr.Plain };
        |];
      ]
  in
  let o = Relaxed.run Relaxed.relaxed_config ~seed:2 p in
  Alcotest.(check int) "loop exited with r1=0" 0 (List.assoc (0, 1) o.Relaxed.registers);
  Alcotest.(check int) "store after loop" 9 (List.assoc 0 o.Relaxed.memory)

let test_sc_machine_matches_sc_model () =
  (* On the common shapes the SC machine's reachable outcomes are
     exactly the SC-allowed outcomes. *)
  List.iter
    (fun (test : Test.t) ->
      let operational = Relaxed.enumerate Relaxed.sc_config test.Test.program in
      let axiomatic = Enumerate.allowed_outcomes Axiomatic.Sc test.Test.program in
      let to_pairs (o : Relaxed.outcome) = (o.Relaxed.registers, o.Relaxed.memory) in
      let ax_pairs =
        List.map
          (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
          axiomatic
      in
      List.iter
        (fun o ->
          if not (List.mem (to_pairs o) ax_pairs) then
            Alcotest.failf "%s: SC machine outcome not SC-allowed" test.Test.name)
        operational)
    Library.common

let test_relaxed_subset_of_arm () =
  (* Soundness: the relaxed machine never reaches an ARM-forbidden
     state on any test in the library. *)
  List.iter
    (fun (test : Test.t) ->
      let operational = Relaxed.enumerate Relaxed.relaxed_config test.Test.program in
      let axiomatic = Enumerate.allowed_outcomes Axiomatic.Arm test.Test.program in
      let ax_pairs =
        List.map
          (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
          axiomatic
      in
      List.iter
        (fun (o : Relaxed.outcome) ->
          if not (List.mem (o.Relaxed.registers, o.Relaxed.memory) ax_pairs) then
            Alcotest.failf "%s: relaxed machine exceeded the ARM model" test.Test.name)
        operational)
    (Library.coherence @ Library.common @ Library.arm)

let test_store_buffering_observed () =
  let p = program_of "SB" in
  let outcomes = Relaxed.enumerate Relaxed.relaxed_config p in
  let weak =
    List.exists
      (fun (o : Relaxed.outcome) ->
        List.assoc (0, 1) o.Relaxed.registers = 0 && List.assoc (1, 1) o.Relaxed.registers = 0)
      outcomes
  in
  Alcotest.(check bool) "SB weak outcome reachable" true weak

let test_collect_histogram () =
  let p = program_of "SB" in
  let hist = Relaxed.collect Relaxed.relaxed_config ~seed:3 ~iterations:500 p in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "histogram sums to iterations" 500 total;
  Alcotest.(check bool) "several distinct outcomes" true (List.length hist >= 3)

let test_full_fence_drains () =
  (* dmb between store and load: the load cannot see a stale remote
     value while our store is buffered.  SB+dmbs weak outcome must be
     unreachable. *)
  let p = program_of "SB+dmbs" in
  let outcomes = Relaxed.enumerate Relaxed.relaxed_config p in
  List.iter
    (fun (o : Relaxed.outcome) ->
      let r0 = List.assoc (0, 1) o.Relaxed.registers in
      let r1 = List.assoc (1, 1) o.Relaxed.registers in
      if r0 = 0 && r1 = 0 then Alcotest.fail "dmb failed to forbid SB")
    outcomes

let prop_random_runs_within_enumerated =
  QCheck.Test.make ~name:"random outcomes within enumerated set" ~count:30
    QCheck.small_int (fun seed ->
      let p = program_of "MP" in
      let enumerated = Relaxed.enumerate Relaxed.relaxed_config p in
      let o = Relaxed.run Relaxed.relaxed_config ~seed p in
      List.exists (fun o' -> Relaxed.compare_outcome o o' = 0) enumerated)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "single thread sequential" `Quick test_single_thread_sequential;
    Alcotest.test_case "register computation" `Quick test_registers_computed;
    Alcotest.test_case "branch loop" `Quick test_branch_loop;
    Alcotest.test_case "SC machine = SC model" `Slow test_sc_machine_matches_sc_model;
    Alcotest.test_case "relaxed machine within ARM model" `Slow test_relaxed_subset_of_arm;
    Alcotest.test_case "store buffering observed" `Quick test_store_buffering_observed;
    Alcotest.test_case "collect histogram" `Quick test_collect_histogram;
    Alcotest.test_case "full fence forbids SB" `Quick test_full_fence_drains;
    QCheck_alcotest.to_alcotest prop_random_runs_within_enumerated;
  ]
