open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_workload

let arm_platform = Generate.Jvm_platform (Jvm.default Arch.Armv8)
let kernel_platform = Generate.Kernel_platform (Kernel.default Arch.Armv8)

let test_profiles_validate () =
  List.iter
    (fun (p : Profile.t) ->
      match Profile.validate p with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    (Dacapo.all @ Kernelbench.all @ Kernelbench.lmbench_parts)

let test_by_name () =
  Alcotest.(check bool) "spark found" true (Dacapo.by_name "spark" <> None);
  Alcotest.(check bool) "nonsense absent" true (Dacapo.by_name "nonsense" = None);
  Alcotest.(check bool) "lmbench part found" true
    (Kernelbench.by_name "lmbench_proc_fork" <> None)

let test_validate_catches_bad () =
  let bad = Profile.make ~threads:0 "bad" in
  Alcotest.(check bool) "rejected" true (Profile.validate bad <> Ok ())

let test_generate_deterministic () =
  let a = Generate.streams Dacapo.spark arm_platform ~seed:5 in
  let b = Generate.streams Dacapo.spark arm_platform ~seed:5 in
  Alcotest.(check bool) "same streams" true (a = b);
  let c = Generate.streams Dacapo.spark arm_platform ~seed:6 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_stream_scaling () =
  let small = Generate.streams ~units_override:10 Dacapo.h2 arm_platform ~seed:1 in
  let large = Generate.streams ~units_override:40 Dacapo.h2 arm_platform ~seed:1 in
  Alcotest.(check bool) "4x units -> roughly 4x uops" true
    (let s = Array.length small.(0) and l = Array.length large.(0) in
     l > 3 * s && l < 5 * s)

let test_thread_count_capped () =
  let streams = Generate.streams ~units_override:2 Dacapo.spark arm_platform ~seed:1 in
  Alcotest.(check int) "8 threads on 8-core arm" 8 (Array.length streams);
  let power = Generate.Jvm_platform (Jvm.default Arch.Power7) in
  let streams = Generate.streams ~units_override:2 Dacapo.spark power ~seed:1 in
  Alcotest.(check int) "spark profile threads on power" 8 (Array.length streams)

let test_kernel_streams_contain_macros () =
  let streams = Generate.streams ~units_override:50 Kernelbench.netperf_udp kernel_platform ~seed:2 in
  let has_fence =
    Array.exists (fun s -> Array.exists Uop.is_fence s) streams
  in
  Alcotest.(check bool) "kernel macros expanded to fences" true has_fence

let test_jvm_streams_contain_barriers () =
  let streams = Generate.streams ~units_override:50 Dacapo.spark arm_platform ~seed:2 in
  let count p = Array.fold_left (fun acc s -> acc + Array.length (Array.of_list (List.filter p (Array.to_list s)))) 0 streams in
  Alcotest.(check bool) "volatile traffic produces fences" true
    (count Uop.is_fence > 0);
  (* In acqrel mode the same profile produces ldar/stlr instead. *)
  let acqrel =
    Generate.Jvm_platform { (Jvm.default Arch.Armv8) with Jvm.mode = Jvm.Acqrel }
  in
  let streams' = Generate.streams ~units_override:50 Dacapo.spark acqrel ~seed:2 in
  let count' p = Array.fold_left (fun acc s -> acc + List.length (List.filter p (Array.to_list s))) 0 streams' in
  Alcotest.(check bool) "acqrel produces acquire/release accesses" true
    (count'
       (function Uop.Load_acquire _ | Uop.Store_release _ -> true | _ -> false)
    > 0)

let test_runner_throughput_positive () =
  let r = Bench_runner.run Dacapo.sunflow arm_platform ~seed:3 in
  Alcotest.(check bool) "throughput positive" true (r.Bench_runner.throughput > 0.);
  Alcotest.(check bool) "no response stats" true (Float.is_nan r.Bench_runner.response_mean_ns)

let test_response_mode () =
  let r = Bench_runner.run Kernelbench.osm_stack kernel_platform ~seed:3 in
  Alcotest.(check bool) "mean response positive" true (r.Bench_runner.response_mean_ns > 0.);
  Alcotest.(check bool) "max >= mean" true
    (r.Bench_runner.response_max_ns >= r.Bench_runner.response_mean_ns)

let test_noise_seeds_differ () =
  let a = Bench_runner.run Dacapo.tomcat arm_platform ~seed:1 in
  let b = Bench_runner.run Dacapo.tomcat arm_platform ~seed:2 in
  Alcotest.(check bool) "different seeds give different throughput" true
    (a.Bench_runner.throughput <> b.Bench_runner.throughput)

let test_quiet_profile_stable () =
  (* With quiet noise and the same seed, results are bit-identical. *)
  let quiet = { Dacapo.sunflow with Profile.noise = Profile.quiet } in
  let a = Bench_runner.run quiet arm_platform ~seed:9 in
  let b = Bench_runner.run quiet arm_platform ~seed:9 in
  Alcotest.(check (float 0.)) "identical" a.Bench_runner.throughput b.Bench_runner.throughput

let prop_share_ratio_bounds_locations =
  QCheck.Test.make ~name:"generated locations within layout" ~count:20
    QCheck.small_int (fun seed ->
      let p = { Dacapo.h2 with Profile.working_set = 64; shared_locations = 8 } in
      let streams = Generate.streams ~units_override:5 p arm_platform ~seed in
      let threads = Array.length streams in
      let bound = 8 + (threads * 64) in
      Array.for_all
        (fun stream ->
          Array.for_all
            (function
              | Uop.Load l | Uop.Store l | Uop.Load_acquire l | Uop.Store_release l ->
                  l >= 0 && l < bound
              | _ -> true)
            stream)
        streams)

let suite =
  [
    Alcotest.test_case "profiles validate" `Quick test_profiles_validate;
    Alcotest.test_case "lookup by name" `Quick test_by_name;
    Alcotest.test_case "validate catches bad profiles" `Quick test_validate_catches_bad;
    Alcotest.test_case "deterministic generation" `Quick test_generate_deterministic;
    Alcotest.test_case "stream scaling" `Quick test_stream_scaling;
    Alcotest.test_case "thread capping" `Quick test_thread_count_capped;
    Alcotest.test_case "kernel streams have macros" `Quick test_kernel_streams_contain_macros;
    Alcotest.test_case "jvm streams have barriers" `Quick test_jvm_streams_contain_barriers;
    Alcotest.test_case "runner throughput" `Quick test_runner_throughput_positive;
    Alcotest.test_case "response mode" `Quick test_response_mode;
    Alcotest.test_case "noise varies with seed" `Quick test_noise_seeds_differ;
    Alcotest.test_case "quiet profile reproducible" `Quick test_quiet_profile_stable;
    QCheck_alcotest.to_alcotest prop_share_ratio_bounds_locations;
  ]
