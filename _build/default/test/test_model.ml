open Wmm_isa
open Wmm_model
open Wmm_litmus

(* Axiomatic model verdicts on the litmus library ------------------- *)

let allowed model name =
  let test = Option.get (Library.by_name name) in
  Check.axiomatic_allowed model test

let test_sb_verdicts () =
  Alcotest.(check bool) "SC forbids" false (allowed Axiomatic.Sc "SB");
  Alcotest.(check bool) "TSO allows" true (allowed Axiomatic.Tso "SB");
  Alcotest.(check bool) "ARM allows" true (allowed Axiomatic.Arm "SB");
  Alcotest.(check bool) "POWER allows" true (allowed Axiomatic.Power "SB")

let test_mp_verdicts () =
  Alcotest.(check bool) "SC forbids" false (allowed Axiomatic.Sc "MP");
  Alcotest.(check bool) "TSO forbids" false (allowed Axiomatic.Tso "MP");
  Alcotest.(check bool) "ARM allows" true (allowed Axiomatic.Arm "MP");
  Alcotest.(check bool) "fenced+dep forbidden" false (allowed Axiomatic.Arm "MP+dmb+addr");
  Alcotest.(check bool) "one-sided fence still weak" true (allowed Axiomatic.Arm "MP+dmb")

let test_ctrl_dependencies () =
  Alcotest.(check bool) "ctrl does not order R-R" true (allowed Axiomatic.Arm "MP+dmb+ctrl");
  Alcotest.(check bool) "ctrl+isb orders" false (allowed Axiomatic.Arm "MP+dmb+ctrl+isb")

let test_acquire_release () =
  Alcotest.(check bool) "MP+rel+acq forbidden" false (allowed Axiomatic.Arm "MP+rel+acq");
  Alcotest.(check bool) "SB+rel+acq forbidden (RCsc)" false
    (allowed Axiomatic.Arm "SB+rel+acq")

let test_multi_copy_atomicity () =
  (* The headline architectural difference. *)
  Alcotest.(check bool) "IRIW+addrs forbidden on ARMv8" false
    (allowed Axiomatic.Arm "IRIW+addrs");
  Alcotest.(check bool) "IRIW+addrs allowed on POWER" true
    (allowed Axiomatic.Power "IRIW+addrs");
  Alcotest.(check bool) "IRIW+syncs forbidden on POWER" false
    (allowed Axiomatic.Power "IRIW+syncs")

let test_power_fences () =
  Alcotest.(check bool) "lwsync no W-R order" true (allowed Axiomatic.Power "SB+lwsyncs");
  Alcotest.(check bool) "sync W-R order" false (allowed Axiomatic.Power "SB+syncs");
  Alcotest.(check bool) "lwsync+addr MP forbidden" false
    (allowed Axiomatic.Power "MP+lwsync+addr");
  Alcotest.(check bool) "ISA2 cumulativity" false
    (allowed Axiomatic.Power "ISA2+lwsync+data+addr")

let test_annotations_all_match () =
  (* Every annotation in the library agrees with the models - the
     library is the regression corpus for the model implementation. *)
  List.iter
    (fun (test : Test.t) ->
      List.iter
        (fun (model, expected) ->
          let actual = Check.axiomatic_allowed model test in
          if actual <> expected then
            Alcotest.failf "%s under %s: annotated %b, model says %b" test.Test.name
              (Axiomatic.model_name model) expected actual)
        test.Test.expected)
    Library.all

let test_monotonicity () =
  (* SC-allowed outcomes are TSO-allowed, and TSO-allowed are
     ARM-allowed, on every unfenced common-shape test. *)
  List.iter
    (fun (test : Test.t) ->
      let outcomes model = Enumerate.allowed_outcomes model test.Test.program in
      let subset a b =
        List.for_all (fun o -> List.exists (fun o' -> compare o o' = 0) b) a
      in
      let sc = outcomes Axiomatic.Sc in
      let tso = outcomes Axiomatic.Tso in
      let arm = outcomes Axiomatic.Arm in
      Alcotest.(check bool)
        (test.Test.name ^ ": SC subset of TSO")
        true (subset sc tso);
      Alcotest.(check bool)
        (test.Test.name ^ ": TSO subset of ARM")
        true (subset tso arm))
    Library.common

(* Execution-level derivations -------------------------------------- *)

let tiny_execution () =
  (* W x=1 (init), W x=2 by t0, R x=2 by t1; co: init -> W2; rf: W2 -> R. *)
  let events =
    [|
      { Event.id = 0; tid = -1; po_index = 0;
        action = Event.Write { loc = 0; value = 0; order = Instr.Plain } };
      { Event.id = 1; tid = 0; po_index = 0;
        action = Event.Write { loc = 0; value = 2; order = Instr.Plain } };
      { Event.id = 2; tid = 1; po_index = 0;
        action = Event.Read { loc = 0; value = 2; order = Instr.Plain } };
    |]
  in
  {
    Execution.events;
    po = Relation.empty;
    rf = Relation.of_list [ (1, 2) ];
    co = Relation.of_list [ (0, 1) ];
    addr = Relation.empty;
    data = Relation.empty;
    ctrl = Relation.empty;
    rmw = Relation.empty;
  }

let test_derived_relations () =
  let x = tiny_execution () in
  (* fr: the read of W2 from-reads nothing co-after W2. *)
  Alcotest.(check int) "fr empty" 0 (Relation.cardinal (Execution.fr x));
  Alcotest.(check bool) "rfe external" true (Relation.mem 1 2 (Execution.rfe x));
  Alcotest.(check int) "final memory" 2 (List.assoc 0 (Execution.final_memory x));
  (match Execution.well_formed x with
  | Ok () -> ()
  | Error m -> Alcotest.failf "expected well-formed: %s" m)

let test_well_formed_catches_bad_rf () =
  let x = tiny_execution () in
  let bad = { x with Execution.rf = Relation.of_list [ (0, 2) ] } in
  (* rf value mismatch: read has value 2, init write has 0. *)
  match Execution.well_formed bad with
  | Ok () -> Alcotest.fail "expected ill-formed"
  | Error _ -> ()

let test_fr_derivation () =
  (* Read from init while a later write exists: fr edge to it. *)
  let x = tiny_execution () in
  let read_init =
    { Event.id = 2; tid = 1; po_index = 0;
      action = Event.Read { loc = 0; value = 0; order = Instr.Plain } }
  in
  let x' =
    { x with Execution.events = [| x.Execution.events.(0); x.Execution.events.(1); read_init |];
             rf = Relation.of_list [ (0, 2) ] }
  in
  Alcotest.(check bool) "fr to overwriting store" true (Relation.mem 2 1 (Execution.fr x'))

(* Enumeration ------------------------------------------------------ *)

let test_enumerate_counts () =
  let sb = Option.get (Library.by_name "SB") in
  let sc = Enumerate.allowed_outcomes Axiomatic.Sc sb.Test.program in
  let tso = Enumerate.allowed_outcomes Axiomatic.Tso sb.Test.program in
  Alcotest.(check int) "SB under SC: 3 outcomes" 3 (List.length sc);
  Alcotest.(check int) "SB under TSO: 4 outcomes" 4 (List.length tso)

let test_enumerate_dependency_values () =
  (* A store whose value flows from a load must be enumerated through
     the value-pool fixpoint. *)
  let program =
    Program.make ~name:"flow" ~location_names:[| "x"; "y" |]
      [
        [| Instr.Store { src = Instr.Imm 7; addr = Instr.Imm 0; order = Instr.Plain } |];
        [|
          Instr.Load { dst = 1; addr = Instr.Imm 0; order = Instr.Plain };
          Instr.Store { src = Instr.Reg 1; addr = Instr.Imm 1; order = Instr.Plain };
        |];
      ]
  in
  let outcomes = Enumerate.allowed_outcomes Axiomatic.Sc program in
  let has_y v =
    List.exists (fun (o : Enumerate.outcome) -> List.assoc_opt 1 o.Enumerate.memory = Some v)
      outcomes
  in
  Alcotest.(check bool) "y can be 7" true (has_y 7);
  Alcotest.(check bool) "y can be 0" true (has_y 0)

let suite =
  [
    Alcotest.test_case "SB verdicts" `Quick test_sb_verdicts;
    Alcotest.test_case "MP verdicts" `Quick test_mp_verdicts;
    Alcotest.test_case "control dependencies" `Quick test_ctrl_dependencies;
    Alcotest.test_case "acquire/release" `Quick test_acquire_release;
    Alcotest.test_case "multi-copy atomicity" `Quick test_multi_copy_atomicity;
    Alcotest.test_case "POWER fences" `Quick test_power_fences;
    Alcotest.test_case "library annotations match models" `Slow test_annotations_all_match;
    Alcotest.test_case "SC subset TSO subset ARM" `Slow test_monotonicity;
    Alcotest.test_case "derived relations" `Quick test_derived_relations;
    Alcotest.test_case "well-formedness check" `Quick test_well_formed_catches_bad_rf;
    Alcotest.test_case "fr derivation" `Quick test_fr_derivation;
    Alcotest.test_case "enumeration counts" `Quick test_enumerate_counts;
    Alcotest.test_case "value-flow enumeration" `Quick test_enumerate_dependency_values;
  ]
