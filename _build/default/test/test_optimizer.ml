open Wmm_isa
open Wmm_machine
open Wmm_platform
open Wmm_core

(* Optimizer -------------------------------------------------------- *)

let test_strength_lattice () =
  Alcotest.(check bool) "full top" true (Optimizer.strength Uop.Fence_full = Some 3);
  Alcotest.(check bool) "non-fence" true (Optimizer.strength (Uop.Load 0) = None);
  Alcotest.(check bool) "full subsumes lw" true (Optimizer.subsumes Uop.Fence_full Uop.Fence_lw);
  Alcotest.(check bool) "lw subsumes ld" true (Optimizer.subsumes Uop.Fence_lw Uop.Fence_load);
  Alcotest.(check bool) "ld does not subsume st" false
    (Optimizer.subsumes Uop.Fence_load Uop.Fence_store);
  Alcotest.(check bool) "duplicate subsumes" true
    (Optimizer.subsumes Uop.Fence_store Uop.Fence_store)

let test_adjacent_duplicates_merge () =
  let r = Optimizer.eliminate [| Uop.Fence_full; Uop.Fence_full |] in
  Alcotest.(check int) "one eliminated" 1 r.Optimizer.eliminated;
  Alcotest.(check bool) "one remains" true (r.Optimizer.stream = [| Uop.Fence_full |])

let test_full_subsumes_neighbours () =
  let r =
    Optimizer.eliminate [| Uop.Fence_load; Uop.Fence_full; Uop.Fence_store |]
  in
  Alcotest.(check int) "two eliminated" 2 r.Optimizer.eliminated;
  Alcotest.(check bool) "only the full fence" true (r.Optimizer.stream = [| Uop.Fence_full |])

let test_memory_access_blocks_merging () =
  let stream = [| Uop.Fence_full; Uop.Load 1; Uop.Fence_full |] in
  let r = Optimizer.eliminate stream in
  Alcotest.(check int) "nothing eliminated" 0 r.Optimizer.eliminated;
  Alcotest.(check bool) "stream unchanged" true (r.Optimizer.stream = stream)

let test_isb_is_a_boundary () =
  let stream = [| Uop.Fence_full; Uop.Fence_pipeline; Uop.Fence_full |] in
  let r = Optimizer.eliminate stream in
  Alcotest.(check int) "isb prevents merging" 0 r.Optimizer.eliminated

let test_busy_does_not_block () =
  let r = Optimizer.eliminate [| Uop.Fence_store; Uop.Busy 5; Uop.Fence_store |] in
  Alcotest.(check int) "merged across busy" 1 r.Optimizer.eliminated

let test_probe_insertion () =
  let r = Optimizer.eliminate ~probe:(Uop.Spin 8) [| Uop.Fence_full; Uop.Fence_full |] in
  Alcotest.(check bool) "probe at the site" true
    (r.Optimizer.stream = [| Uop.Fence_full; Uop.Spin 8 |])

let test_ld_st_pair_survives () =
  let r = Optimizer.eliminate [| Uop.Fence_load; Uop.Fence_store |] in
  Alcotest.(check int) "incomparable pair kept" 0 r.Optimizer.eliminated

let test_optimised_never_slower_when_fences_removed () =
  (* Performance sanity: removing fences cannot make the simulated
     run slower on one core. *)
  let stream =
    Array.concat
      (List.init 50 (fun i ->
           [| Uop.Store i; Uop.Fence_store; Uop.Fence_full; Uop.Busy 10 |]))
  in
  let optimised, eliminated = Optimizer.optimise_streams [| stream |] in
  Alcotest.(check bool) "eliminated some" true (eliminated > 0);
  let config = Wmm_machine.Perf.config ~seed:3 ~cores:1 Arch.Armv8 in
  let base = Wmm_machine.Perf.run config [| stream |] in
  let opt = Wmm_machine.Perf.run config optimised in
  Alcotest.(check bool) "not slower" true
    (opt.Wmm_machine.Perf.wall_cycles <= base.Wmm_machine.Perf.wall_cycles)

let prop_idempotent =
  QCheck.Test.make ~name:"elimination idempotent" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 6))
    (fun codes ->
      let uop_of = function
        | 0 -> Uop.Fence_full
        | 1 -> Uop.Fence_load
        | 2 -> Uop.Fence_store
        | 3 -> Uop.Fence_lw
        | 4 -> Uop.Load 1
        | 5 -> Uop.Store 2
        | _ -> Uop.Busy 3
      in
      let stream = Array.of_list (List.map uop_of codes) in
      let once = (Optimizer.eliminate stream).Optimizer.stream in
      let twice = (Optimizer.eliminate once).Optimizer.stream in
      once = twice)

let prop_non_fences_preserved =
  QCheck.Test.make ~name:"non-fence uops preserved in order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 6))
    (fun codes ->
      let uop_of = function
        | 0 -> Uop.Fence_full
        | 1 -> Uop.Fence_load
        | 2 -> Uop.Fence_store
        | 3 -> Uop.Fence_lw
        | 4 -> Uop.Load 1
        | 5 -> Uop.Store 2
        | _ -> Uop.Busy 3
      in
      let stream = Array.of_list (List.map uop_of codes) in
      let non_fence s =
        List.filter (fun u -> Optimizer.strength u = None) (Array.to_list s)
      in
      non_fence (Optimizer.eliminate stream).Optimizer.stream = non_fence stream)

(* Instrumentation --------------------------------------------------- *)

let test_counter_uops () =
  Alcotest.(check bool) "shared" true
    (Instrumentation.counter_uop Instrumentation.Shared_counter ~path_index:2
    = Uop.Counter_shared 2);
  Alcotest.(check bool) "register is busy" true
    (Instrumentation.counter_uop Instrumentation.Register_counter ~path_index:0 = Uop.Busy 1)

let test_counter_is_memory () =
  Alcotest.(check bool) "counters touch memory" true
    (Uop.is_memory (Uop.Counter_shared 0) && Uop.is_memory (Uop.Counter_private 1))

let test_shared_counter_costs_more_than_register () =
  let tiny =
    Wmm_workload.Profile.make "tiny" ~threads:4 ~units_per_thread:80 ~unit_busy_cycles:600
      ~unit_loads:6 ~unit_stores:4 ~working_set:128 ~shared_locations:16 ~share_ratio:0.2
      ~jvm:{ Wmm_workload.Profile.volatile_loads = 1.; volatile_stores = 2.; cas = 0.; locks = 0.5 }
      ~noise:Wmm_workload.Profile.quiet
  in
  let shared =
    Instrumentation.measure_perturbation ~samples:3 Arch.Armv8 tiny
      Instrumentation.Shared_counter
  in
  let register =
    Instrumentation.measure_perturbation ~samples:3 Arch.Armv8 tiny
      Instrumentation.Register_counter
  in
  Alcotest.(check bool) "shared counter overhead dominates" true
    (shared.Instrumentation.overhead > register.Instrumentation.overhead);
  Alcotest.(check bool) "register counter nearly free" true
    (abs_float register.Instrumentation.overhead < 0.05)

let suite =
  [
    Alcotest.test_case "strength lattice" `Quick test_strength_lattice;
    Alcotest.test_case "duplicate merge" `Quick test_adjacent_duplicates_merge;
    Alcotest.test_case "full subsumes neighbours" `Quick test_full_subsumes_neighbours;
    Alcotest.test_case "memory access blocks" `Quick test_memory_access_blocks_merging;
    Alcotest.test_case "isb boundary" `Quick test_isb_is_a_boundary;
    Alcotest.test_case "busy does not block" `Quick test_busy_does_not_block;
    Alcotest.test_case "probe insertion" `Quick test_probe_insertion;
    Alcotest.test_case "ld/st pair survives" `Quick test_ld_st_pair_survives;
    Alcotest.test_case "optimised not slower" `Quick
      test_optimised_never_slower_when_fences_removed;
    QCheck_alcotest.to_alcotest prop_idempotent;
    QCheck_alcotest.to_alcotest prop_non_fences_preserved;
    Alcotest.test_case "counter uops" `Quick test_counter_uops;
    Alcotest.test_case "counter memory classification" `Quick test_counter_is_memory;
    Alcotest.test_case "shared counter costly" `Quick
      test_shared_counter_costs_more_than_register;
  ]
