open Wmm_isa
open Wmm_machine
open Wmm_costfn

let test_arm_assembly_matches_paper () =
  let cf = Cost_function.make Arch.Armv8 100 in
  Alcotest.(check (list string)) "Fig. 2 listing"
    [
      "stp x9, xzr, [sp, #-16]!";
      "mov x9, #100";
      "subs x9, x9, #1";
      "bne -4";
      "ldp x9, xzr, [sp], #16";
    ]
    (Cost_function.assembly cf)

let test_arm_light_elides_stack () =
  let cf = Cost_function.make ~light:true Arch.Armv8 8 in
  Alcotest.(check int) "three instructions" 3 (Cost_function.instruction_count cf);
  Alcotest.(check bool) "no stack ops" true
    (List.for_all
       (fun line -> not (String.length line >= 3 && (String.sub line 0 3 = "stp" || String.sub line 0 3 = "ldp")))
       (Cost_function.assembly cf))

let test_power_assembly_matches_paper () =
  let cf = Cost_function.make Arch.Power7 50 in
  Alcotest.(check (list string)) "Fig. 3 listing"
    [
      "std r11, -8, r1";
      "li r11, 50";
      "addi r11, r11, -1";
      "cmpwi cr7, r11, 0";
      "bne cr7, -8";
      "ld r11, -8, r1";
    ]
    (Cost_function.assembly cf)

let test_power_has_no_light_variant () =
  (* No scratch register is guaranteed on POWER; light is a no-op. *)
  let cf = Cost_function.make ~light:true Arch.Power7 8 in
  Alcotest.(check int) "still six instructions" 6 (Cost_function.instruction_count cf)

let test_uop_kinds () =
  Alcotest.(check bool) "full variant" true
    (Cost_function.uop (Cost_function.make Arch.Armv8 7) = Uop.Spin 7);
  Alcotest.(check bool) "light variant" true
    (Cost_function.uop (Cost_function.make ~light:true Arch.Armv8 7) = Uop.Spin_light 7)

let test_nop_padding_size () =
  let cf = Cost_function.make Arch.Armv8 7 in
  Alcotest.(check bool) "padding matches instruction count" true
    (Cost_function.nop_padding Arch.Armv8 cf = Uop.Nops 5)

let test_standalone_monotone () =
  let counts = [ 1; 2; 4; 8; 16; 64; 256; 1024 ] in
  let table = Cost_function.calibrate Arch.Armv8 counts in
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (a <= b);
        check rest
    | _ -> ()
  in
  check table

let test_light_never_slower () =
  List.iter
    (fun n ->
      let full = Cost_function.standalone_ns (Cost_function.make Arch.Armv8 n) in
      let light = Cost_function.standalone_ns (Cost_function.make ~light:true Arch.Armv8 n) in
      Alcotest.(check bool) "light <= full" true (light <= full))
    [ 1; 8; 64; 512 ]

let test_negative_iterations_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Cost_function.make: negative iteration count") (fun () ->
      ignore (Cost_function.make Arch.Armv8 (-1)))

let test_linear_regime () =
  (* Time per iteration converges at large N (Fig. 4's linear tail). *)
  let at n = Cost_function.standalone_ns (Cost_function.make Arch.Power7 n) in
  let r1 = at 2048 /. at 1024 in
  Alcotest.(check bool) "doubling N doubles time" true (r1 > 1.9 && r1 < 2.1)

let suite =
  [
    Alcotest.test_case "ARM assembly (Fig 2)" `Quick test_arm_assembly_matches_paper;
    Alcotest.test_case "ARM scratch-register variant" `Quick test_arm_light_elides_stack;
    Alcotest.test_case "POWER assembly (Fig 3)" `Quick test_power_assembly_matches_paper;
    Alcotest.test_case "POWER has no light variant" `Quick test_power_has_no_light_variant;
    Alcotest.test_case "uop kinds" `Quick test_uop_kinds;
    Alcotest.test_case "nop padding size" `Quick test_nop_padding_size;
    Alcotest.test_case "standalone time monotone" `Quick test_standalone_monotone;
    Alcotest.test_case "light never slower" `Quick test_light_never_slower;
    Alcotest.test_case "negative iterations rejected" `Quick test_negative_iterations_rejected;
    Alcotest.test_case "linear regime at large N" `Quick test_linear_regime;
  ]
