open Wmm_isa
open Wmm_machine

let config ?(cores = 2) arch = Perf.config ~seed:9 ~cores arch

let run1 arch stream = Perf.run (config ~cores:1 arch) [| Array.of_list stream |]

let test_determinism () =
  let stream = [| Array.init 100 (fun i -> if i mod 3 = 0 then Uop.Store i else Uop.Load i) |] in
  let a = Perf.run (config Arch.Armv8) stream in
  let b = Perf.run (config Arch.Armv8) stream in
  Alcotest.(check int) "same cycles" a.Perf.wall_cycles b.Perf.wall_cycles

let test_busy_additive () =
  let a = run1 Arch.Armv8 [ Uop.Busy 100 ] in
  let b = run1 Arch.Armv8 [ Uop.Busy 100; Uop.Busy 50 ] in
  Alcotest.(check int) "busy adds" 150 b.Perf.wall_cycles;
  Alcotest.(check int) "single" 100 a.Perf.wall_cycles

let test_monotone_in_work () =
  let mk n = Array.init n (fun i -> if i mod 4 = 0 then Uop.Store (i mod 32) else Uop.Load (i mod 64)) in
  let small = Perf.run (config Arch.Armv8) [| mk 100 |] in
  let large = Perf.run (config Arch.Armv8) [| mk 400 |] in
  Alcotest.(check bool) "more work, more cycles" true
    (large.Perf.wall_cycles > small.Perf.wall_cycles)

let test_fence_full_drains () =
  (* A full fence after stores must wait for their drains. *)
  let stores = List.init 6 (fun i -> Uop.Store i) in
  let without = run1 Arch.Armv8 (stores @ [ Uop.Busy 1 ]) in
  let with_fence = run1 Arch.Armv8 (stores @ [ Uop.Fence_full; Uop.Busy 1 ]) in
  Alcotest.(check bool) "fence waits for drains" true
    (with_fence.Perf.wall_cycles > without.Perf.wall_cycles);
  Alcotest.(check bool) "stall accounted" true (with_fence.Perf.fence_stall_cycles > 0)

let test_fence_costs_ordered () =
  (* In store-laden context: ishst marker < ish drain. *)
  let body fence = List.concat (List.init 10 (fun i -> [ Uop.Store i; fence; Uop.Busy 20 ])) in
  let st = run1 Arch.Armv8 (body Uop.Fence_store) in
  let full = run1 Arch.Armv8 (body Uop.Fence_full) in
  Alcotest.(check bool) "ishst cheaper than ish after stores" true
    (st.Perf.wall_cycles < full.Perf.wall_cycles)

let test_power_sync_vs_lwsync_micro () =
  (* The paper's microbenchmark: sync ~18.9 ns, lwsync ~6.1 ns, about
     a threefold difference. *)
  let timing = Timing.power7 in
  let sync = Perf.sequence_cost_ns timing [ Uop.Fence_full ] in
  let lwsync = Perf.sequence_cost_ns timing [ Uop.Fence_lw ] in
  Alcotest.(check bool) "sync near 18.9" true (abs_float (sync -. 18.9) < 1.5);
  Alcotest.(check bool) "lwsync near 6.1" true (abs_float (lwsync -. 6.1) < 1.0);
  Alcotest.(check bool) "roughly threefold" true (sync /. lwsync > 2.5 && sync /. lwsync < 3.6)

let test_arm_dmb_variants_micro_indistinct () =
  (* The paper could not separate the dmb variants by microbenchmark
     on ARMv8. *)
  let timing = Timing.armv8 in
  let ish = Perf.sequence_cost_ns timing [ Uop.Fence_full ] in
  let ishld = Perf.sequence_cost_ns timing [ Uop.Fence_load ] in
  let ishst = Perf.sequence_cost_ns timing [ Uop.Fence_store ] in
  Alcotest.(check bool) "variants within ~1ns in vitro" true
    (abs_float (ish -. ishld) < 1.2 && abs_float (ish -. ishst) < 1.2)

let test_store_forwarding () =
  let r = run1 Arch.Armv8 [ Uop.Store 5; Uop.Load 5 ] in
  Alcotest.(check int) "load forwarded from buffer" 1 r.Perf.forwarded_loads

let test_cache_locality () =
  (* Repeated loads of one location hit after the first miss. *)
  let r = run1 Arch.Armv8 (List.init 50 (fun _ -> Uop.Load 3)) in
  Alcotest.(check int) "one miss" 1 r.Perf.l1_misses;
  Alcotest.(check int) "rest hit" 49 r.Perf.l1_hits

let test_bus_contention () =
  (* Cores fighting over one line generate transactions and wait. *)
  let stream = Array.init 200 (fun i -> if i mod 2 = 0 then Uop.Store 0 else Uop.Load 0) in
  let shared = Perf.run (Perf.config ~seed:3 ~cores:4 Arch.Armv8) (Array.make 4 stream) in
  Alcotest.(check bool) "transactions happened" true (shared.Perf.bus_transactions > 100);
  Alcotest.(check bool) "bus contention visible" true (shared.Perf.bus_wait_cycles > 0)

let test_release_stalls_when_buffer_deep () =
  (* Use an aggressive release threshold so the stall is clearly
     attributable to the release semantics. *)
  let timing = { Timing.armv8 with Timing.release_drain_threshold = 2 } in
  let stores = List.init 10 (fun i -> Uop.Store i) in
  let stream = Array.of_list (stores @ [ Uop.Store_release 99 ]) in
  let r = Perf.run { Perf.timing; cores = 1; seed = 9 } [| stream |] in
  Alcotest.(check bool) "release waited for drains" true (r.Perf.release_stall_cycles > 0)

let test_isb_expensive () =
  let isb = run1 Arch.Armv8 [ Uop.Fence_pipeline ] in
  let ld = run1 Arch.Armv8 [ Uop.Fence_load ] in
  Alcotest.(check bool) "isb much heavier" true (isb.Perf.wall_cycles > 4 * ld.Perf.wall_cycles)

let test_spin_overlap_adjacent () =
  (* Two adjacent injected loops cost much less than twice one. *)
  let one = run1 Arch.Armv8 [ Uop.Busy 50; Uop.Spin 64; Uop.Busy 50 ] in
  let two = run1 Arch.Armv8 [ Uop.Busy 50; Uop.Spin 64; Uop.Spin 64; Uop.Busy 50 ] in
  let single_cost = one.Perf.wall_cycles - 100 in
  let double_cost = two.Perf.wall_cycles - 100 in
  Alcotest.(check bool) "adjacent spins overlap" true
    (double_cost < single_cost + (single_cost / 2))

let test_nops_cheap_but_nonzero () =
  let base = run1 Arch.Armv8 [ Uop.Busy 10 ] in
  let padded = run1 Arch.Armv8 [ Uop.Busy 10; Uop.Nops 3 ] in
  let delta = padded.Perf.wall_cycles - base.Perf.wall_cycles in
  Alcotest.(check bool) "nops cost a few cycles" true (delta >= 2 && delta <= 8)

let test_rejects_too_many_streams () =
  Alcotest.check_raises "too many streams"
    (Invalid_argument "Perf.run: more streams than cores") (fun () ->
      ignore (Perf.run (config ~cores:1 Arch.Armv8) [| [||]; [||] |]))

let test_spin_timing_floor () =
  (* Fig. 4 shape: standalone time flat at small N, linear at large N. *)
  let t = Timing.armv8 in
  let t1 = Timing.spin_cycles t ~light:false 1 in
  let t2 = Timing.spin_cycles t ~light:false 2 in
  let t512 = Timing.spin_cycles t ~light:false 512 in
  let t1024 = Timing.spin_cycles t ~light:false 1024 in
  Alcotest.(check int) "floor at small N" t1 t2;
  let ratio = float_of_int t1024 /. float_of_int t512 in
  Alcotest.(check bool) "linear at large N" true (ratio > 1.9 && ratio < 2.1)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "busy additive" `Quick test_busy_additive;
    Alcotest.test_case "monotone in work" `Quick test_monotone_in_work;
    Alcotest.test_case "full fence drains" `Quick test_fence_full_drains;
    Alcotest.test_case "fence cost ordering" `Quick test_fence_costs_ordered;
    Alcotest.test_case "sync vs lwsync micro" `Quick test_power_sync_vs_lwsync_micro;
    Alcotest.test_case "ARM dmb variants indistinct in vitro" `Quick
      test_arm_dmb_variants_micro_indistinct;
    Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
    Alcotest.test_case "cache locality" `Quick test_cache_locality;
    Alcotest.test_case "bus contention" `Quick test_bus_contention;
    Alcotest.test_case "release stalls on deep buffer" `Quick
      test_release_stalls_when_buffer_deep;
    Alcotest.test_case "isb expensive" `Quick test_isb_expensive;
    Alcotest.test_case "adjacent spin overlap" `Quick test_spin_overlap_adjacent;
    Alcotest.test_case "nop padding cost" `Quick test_nops_cheap_but_nonzero;
    Alcotest.test_case "stream count check" `Quick test_rejects_too_many_streams;
    Alcotest.test_case "spin timing floor (Fig 4)" `Quick test_spin_timing_floor;
  ]
