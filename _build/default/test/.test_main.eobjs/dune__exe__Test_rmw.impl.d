test/test_rmw.ml: Alcotest Arch Asm Axiomatic Check Event Execution Instr Library List Option Parse Program Relation Relaxed Test Wmm_isa Wmm_litmus Wmm_machine Wmm_model
