test/test_rng.ml: Alcotest Array Gen List QCheck QCheck_alcotest Rng Stats Wmm_util
