test/test_model.ml: Alcotest Array Axiomatic Check Enumerate Event Execution Instr Library List Option Program Relation Test Wmm_isa Wmm_litmus Wmm_model
