test/test_core.ml: Alcotest Arch Experiment Generate Jvm Kernel Kernelbench List Profile Sensitivity Uop Wmm_core Wmm_costfn Wmm_isa Wmm_machine Wmm_platform Wmm_util Wmm_workload
