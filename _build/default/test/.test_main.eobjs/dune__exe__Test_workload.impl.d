test/test_workload.ml: Alcotest Arch Array Bench_runner Dacapo Float Generate Jvm Kernel Kernelbench List Profile QCheck QCheck_alcotest Uop Wmm_isa Wmm_machine Wmm_platform Wmm_workload
