test/test_isa.ml: Alcotest Arch Asm Instr List Program String Wmm_isa
