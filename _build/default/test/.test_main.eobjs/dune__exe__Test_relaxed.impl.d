test/test_relaxed.ml: Alcotest Axiomatic Enumerate Instr Library List Option Program QCheck QCheck_alcotest Relaxed Test Wmm_isa Wmm_litmus Wmm_machine Wmm_model
