test/test_memsys.ml: Alcotest Arch Memsys QCheck QCheck_alcotest Timing Wmm_isa Wmm_machine
