test/test_table.ml: Alcotest List String Table Wmm_util
