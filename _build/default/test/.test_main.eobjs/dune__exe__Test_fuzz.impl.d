test/test_fuzz.ml: Arch Array Axiomatic Enumerate Instr List Program QCheck QCheck_alcotest Relaxed Rng Wmm_isa Wmm_machine Wmm_model Wmm_util
