test/test_experiments.ml: Alcotest Array List String Unix Wmm_core Wmm_experiments
