test/test_litmus.ml: Alcotest Axiomatic Check Library List Option Relaxed String Test Wmm_isa Wmm_litmus Wmm_machine Wmm_model
