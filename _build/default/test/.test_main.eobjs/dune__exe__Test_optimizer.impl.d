test/test_optimizer.ml: Alcotest Arch Array Gen Instrumentation List Optimizer QCheck QCheck_alcotest Uop Wmm_core Wmm_isa Wmm_machine Wmm_platform Wmm_workload
