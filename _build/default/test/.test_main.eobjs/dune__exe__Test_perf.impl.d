test/test_perf.ml: Alcotest Arch Array List Perf Timing Uop Wmm_isa Wmm_machine
