test/test_costfn.ml: Alcotest Arch Cost_function List String Uop Wmm_costfn Wmm_isa Wmm_machine
