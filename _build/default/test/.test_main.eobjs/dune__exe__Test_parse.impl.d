test/test_parse.ml: Alcotest Arch Axiomatic Check Library List Option Parse Printf Program Relaxed String Test Wmm_isa Wmm_litmus Wmm_machine Wmm_model
