test/test_fit.ml: Alcotest Array Fit Float Linalg QCheck QCheck_alcotest Rng Wmm_core Wmm_util
