test/test_relation.ml: Alcotest Gen QCheck QCheck_alcotest Relation Wmm_model
