test/test_platform.ml: Alcotest Arch Barrier Jvm Kernel List Printf Uop Wmm_isa Wmm_machine Wmm_platform
