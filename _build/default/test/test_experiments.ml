(* Smoke tests for the experiment modules: every figure/table report
   must run and produce plausible output.  WMM_FAST is set so the
   whole set completes quickly. *)

let () = Unix.putenv "WMM_FAST" "1"

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_report name f fragments () =
  let report = f () in
  Alcotest.(check bool) (name ^ " non-empty") true (String.length report > 100);
  List.iter
    (fun fragment ->
      if not (contains report fragment) then
        Alcotest.failf "%s: missing fragment %S in report" name fragment)
    fragments

let test_fig1 =
  check_report "fig1" Wmm_experiments.Fig1.report [ "k=0.00277"; "measured: k=" ]

let test_fig1_fit_close () =
  let points = Wmm_experiments.Fig1.generate () in
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  let fit = Wmm_core.Sensitivity.fit_k ~xs ~ys in
  Alcotest.(check bool) "within 10% of the paper's k" true
    (abs_float (fit.Wmm_core.Sensitivity.k -. 0.00277) /. 0.00277 < 0.1)

let test_fig2_3 =
  check_report "fig2_3" Wmm_experiments.Fig2_3.report
    [ "stp x9, xzr, [sp, #-16]!"; "std r11, -8, r1"; "cmpwi cr7, r11, 0" ]

let test_fig4 =
  check_report "fig4" Wmm_experiments.Fig4.report [ "arm"; "power"; "1024" ]

let test_fig4_shapes () =
  let series = Wmm_experiments.Fig4.series () in
  let arm = List.assoc "arm" series in
  let nostack = List.assoc "arm-nostack" series in
  (* Light variant no slower anywhere; both linear at the top end. *)
  List.iter2
    (fun (n, t) (n', t') ->
      Alcotest.(check int) "aligned" n n';
      Alcotest.(check bool) "nostack <= stack" true (t' <= t +. 1e-9))
    arm nostack

let suite =
  [
    Alcotest.test_case "fig1 report" `Quick test_fig1;
    Alcotest.test_case "fig1 fit accuracy" `Quick test_fig1_fit_close;
    Alcotest.test_case "fig2_3 report" `Quick test_fig2_3;
    Alcotest.test_case "fig4 report" `Quick test_fig4;
    Alcotest.test_case "fig4 series shape" `Quick test_fig4_shapes;
  ]

(* The heavyweight figure reports (5-10 and the tables) are exercised
   by `dune exec bench/main.exe`; here we only smoke-test them under
   WMM_FAST when explicitly requested. *)
let slow_suite =
  [
    Alcotest.test_case "fig5 report (fast)" `Slow
      (check_report "fig5" Wmm_experiments.Fig5.report [ "spark"; "fitted k" ]);
    Alcotest.test_case "fig6 report (fast)" `Slow
      (check_report "fig6" Wmm_experiments.Fig6.report [ "StoreStore" ]);
    Alcotest.test_case "rankings report (fast)" `Slow
      (check_report "rankings" Wmm_experiments.Rankings.report [ "smp_mb"; "netperf" ]);
    Alcotest.test_case "rbd report (fast)" `Slow
      (check_report "rbd" Wmm_experiments.Rbd.report [ "read_barrier_depends"; "ctrl+isb" ]);
  ]
