open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_litmus

let mp_text =
  "AArch64 MP+dmb+addr\n\
   { x=0; y=0 }\n\
   P0           | P1             ;\n\
   str #1, &x   | ldr x1, &y     ;\n\
   dmb ish      | eor x3, x1, x1 ;\n\
   str #1, &y   | ldr x4, [x3]   ;\n\
   exists (1:x1=1 /\\ 1:x4=0)\n"

let parse_ok text =
  match Parse.parse text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_mp () =
  let p = parse_ok mp_text in
  Alcotest.(check bool) "arch hint" true (p.Parse.arch_hint = Some Arch.Armv8);
  Alcotest.(check string) "name" "MP+dmb+addr" p.Parse.test.Test.name;
  Alcotest.(check int) "two threads" 2
    (Program.thread_count p.Parse.test.Test.program);
  Alcotest.(check int) "condition clauses" 2 (List.length p.Parse.test.Test.condition)

let test_parsed_verdict_matches_library () =
  (* The parsed MP+dmb+addr must agree with the hand-built library
     version under the ARM model. *)
  let p = parse_ok mp_text in
  Alcotest.(check bool) "forbidden on ARMv8" false
    (Check.axiomatic_allowed Axiomatic.Arm p.Parse.test);
  Alcotest.(check bool) "allowed on POWER? (no dmb there - still forbidden shape)" false
    (Check.axiomatic_allowed Axiomatic.Sc p.Parse.test)

let test_parse_memory_condition () =
  let text =
    "AArch64 coherence\n\
     { x=0 }\n\
     P0         ;\n\
     str #1, &x ;\n\
     str #2, &x ;\n\
     exists (x=1)\n"
  in
  let p = parse_ok text in
  Alcotest.(check int) "memory clause" 1 (List.length p.Parse.test.Test.mem_condition);
  Alcotest.(check bool) "CoWW forbidden everywhere" false
    (Check.axiomatic_allowed Axiomatic.Arm p.Parse.test)

let test_parse_power_syntax () =
  let text =
    "PPC MP+lwsync\n\
     { x=0; y=0 }\n\
     P0         | P1         ;\n\
     str #1, &x | ldr x1, &y ;\n\
     lwsync     | ldr x2, &x ;\n\
     str #1, &y | nop        ;\n\
     exists (1:x1=1 /\\ 1:x2=0)\n"
  in
  let p = parse_ok text in
  Alcotest.(check bool) "arch hint power" true (p.Parse.arch_hint = Some Arch.Power7);
  Alcotest.(check bool) "one-sided lwsync allowed" true
    (Check.axiomatic_allowed Axiomatic.Power p.Parse.test)

let test_comments_and_blanks () =
  let text =
    "AArch64 commented   % trailing\n\
     % a comment line\n\
     { x=0; y=0 }\n\n\
     str #1, &x | ldr x1, &y ;\n\
     ldr x2, &y | str #1, &y ;\n\
     exists (0:x2=1)\n"
  in
  let p = parse_ok text in
  Alcotest.(check int) "threads" 2 (Program.thread_count p.Parse.test.Test.program)

let test_parse_errors () =
  (match Parse.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail");
  (match Parse.parse "AArch64 bad\n{ x=0 }\nfrobnicate &x ;\nexists (x=0)\n" with
  | Error e ->
      Alcotest.(check bool) "mentions instruction" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad instruction should fail");
  match Parse.parse "AArch64 ragged\n{ x=0 }\nnop | nop ;\nnop ;\nexists (x=0)\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged columns should fail"

let test_roundtrip_library () =
  (* Print a library test and parse it back: same axiomatic verdict
     and same reachable outcome count on the operational machine. *)
  List.iter
    (fun name ->
      let original = Option.get (Library.by_name name) in
      let arch =
        (* Pick the printing syntax matching the barriers used. *)
        if List.exists (fun (m, _) -> m = Axiomatic.Power) original.Test.expected then
          Arch.Power7
        else Arch.Armv8
      in
      let text = Parse.to_text ~arch original in
      match Parse.parse text with
      | Error e -> Alcotest.failf "%s roundtrip parse error: %s (text:\n%s)" name e text
      | Ok p ->
          List.iter
            (fun model ->
              Alcotest.(check bool)
                (Printf.sprintf "%s verdict under %s" name (Axiomatic.model_name model))
                (Check.axiomatic_allowed model original)
                (Check.axiomatic_allowed model p.Parse.test))
            [ Axiomatic.Sc; Axiomatic.Arm; Axiomatic.Power ];
          let outcomes t = List.length (Relaxed.enumerate Relaxed.relaxed_config t.Test.program) in
          Alcotest.(check int)
            (name ^ " operational outcome count")
            (outcomes original) (outcomes p.Parse.test))
    [ "SB"; "MP"; "MP+dmb+addr"; "SB+dmbs"; "MP+lwsync+addr"; "LB"; "2+2W"; "R" ]

let suite =
  [
    Alcotest.test_case "parse MP" `Quick test_parse_mp;
    Alcotest.test_case "parsed verdicts" `Quick test_parsed_verdict_matches_library;
    Alcotest.test_case "memory conditions" `Quick test_parse_memory_condition;
    Alcotest.test_case "POWER syntax" `Quick test_parse_power_syntax;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "library roundtrip" `Quick test_roundtrip_library;
  ]
