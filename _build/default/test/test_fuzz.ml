(* Randomised soundness testing: generate small random multi-threaded
   programs and check that every outcome the operational relaxed
   machine can reach is allowed by the architecture's axiomatic
   model.  This is the strongest evidence that the two semantic
   layers agree - it explores shapes no hand-written litmus test
   covers. *)

open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_util

(* Generate a random straight-line thread over two locations and a
   few registers, drawing from stores, loads, barriers, ALU ops and
   dependency idioms. *)
let random_instr rng arch =
  match Rng.int rng 12 with
  | 0 | 1 | 2 ->
      Instr.Store
        { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
          order = Instr.Plain }
  | 3 | 4 | 5 ->
      Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                   order = Instr.Plain }
  | 6 ->
      let barriers =
        match arch with
        | Arch.Armv8 -> [| Instr.Dmb_ish; Instr.Dmb_ishld; Instr.Dmb_ishst |]
        | Arch.Power7 -> [| Instr.Sync; Instr.Lwsync; Instr.Eieio |]
      in
      Instr.Barrier (Rng.choose rng barriers)
  | 7 ->
      Instr.Op
        { op = Instr.Xor; dst = 1 + Rng.int rng 3; a = Instr.Reg (1 + Rng.int rng 3);
          b = Instr.Reg (1 + Rng.int rng 3) }
  | 8 -> (
      match arch with
      | Arch.Armv8 ->
          Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                       order = Instr.Acquire }
      | Arch.Power7 ->
          Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                       order = Instr.Plain })
  | 9 -> (
      match arch with
      | Arch.Armv8 ->
          Instr.Store
            { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
              order = Instr.Release }
      | Arch.Power7 ->
          Instr.Store
            { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
              order = Instr.Plain })
  | 10 ->
      Instr.Load_exclusive
        { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2); order = Instr.Plain }
  | _ ->
      Instr.Store_exclusive
        { status = 1 + Rng.int rng 3; src = Instr.Imm (1 + Rng.int rng 2);
          addr = Instr.Imm (Rng.int rng 2); order = Instr.Plain }

let random_program rng arch =
  let threads = 2 in
  let thread _ = Array.init (1 + Rng.int rng 3) (fun _ -> random_instr rng arch) in
  Program.make ~name:"fuzz" ~location_names:[| "x"; "y" |]
    (List.init threads thread)

let operational_within_model arch seed =
  let rng = Rng.create seed in
  let program = random_program rng arch in
  let model = Axiomatic.model_for_arch arch in
  let operational = Relaxed.enumerate ~max_states:200_000 Relaxed.relaxed_config program in
  let axiomatic = Enumerate.allowed_outcomes model program in
  let ax_pairs =
    List.map
      (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
      axiomatic
  in
  List.for_all
    (fun (o : Relaxed.outcome) ->
      List.mem (o.Relaxed.registers, o.Relaxed.memory) ax_pairs)
    operational

let fuzz_arm =
  QCheck.Test.make ~name:"random programs: operational within ARMv8 model" ~count:60
    QCheck.small_int (fun seed -> operational_within_model Arch.Armv8 seed)

let fuzz_power =
  QCheck.Test.make ~name:"random programs: operational within POWER model" ~count:60
    QCheck.small_int (fun seed -> operational_within_model Arch.Power7 seed)

let fuzz_sc_within_tso =
  (* The SC machine's outcomes are TSO-allowed (strength ordering). *)
  QCheck.Test.make ~name:"random programs: SC machine within TSO model" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 7777) in
      let program = random_program rng Arch.Armv8 in
      let operational = Relaxed.enumerate Relaxed.sc_config program in
      let axiomatic = Enumerate.allowed_outcomes Axiomatic.Tso program in
      let ax_pairs =
        List.map
          (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
          axiomatic
      in
      List.for_all
        (fun (o : Relaxed.outcome) ->
          List.mem (o.Relaxed.registers, o.Relaxed.memory) ax_pairs)
        operational)

let fuzz_tso_within_arm =
  QCheck.Test.make ~name:"random programs: TSO machine within ARM model" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 13_131) in
      let program = random_program rng Arch.Armv8 in
      let operational = Relaxed.enumerate Relaxed.tso_config program in
      let axiomatic = Enumerate.allowed_outcomes Axiomatic.Arm program in
      let ax_pairs =
        List.map
          (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
          axiomatic
      in
      List.for_all
        (fun (o : Relaxed.outcome) ->
          List.mem (o.Relaxed.registers, o.Relaxed.memory) ax_pairs)
        operational)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true fuzz_arm;
    QCheck_alcotest.to_alcotest ~long:true fuzz_power;
    QCheck_alcotest.to_alcotest ~long:true fuzz_sc_within_tso;
    QCheck_alcotest.to_alcotest ~long:true fuzz_tso_within_arm;
  ]
