open Wmm_isa

let test_arch_properties () =
  Alcotest.(check string) "arm name" "arm" (Arch.name Arch.Armv8);
  Alcotest.(check string) "power name" "power" (Arch.name Arch.Power7);
  Alcotest.(check int) "arm cores" 8 (Arch.core_count Arch.Armv8);
  Alcotest.(check int) "power cores" 12 (Arch.core_count Arch.Power7);
  Alcotest.(check (float 1e-9)) "arm cycle" (1. /. 2.4) (Arch.cycle_ns Arch.Armv8);
  Alcotest.(check bool) "only POWER has SMT interference" true
    (Arch.has_smt_interference Arch.Power7 && not (Arch.has_smt_interference Arch.Armv8))

let test_cycles_conversion_roundtrip () =
  List.iter
    (fun arch ->
      List.iter
        (fun c ->
          Alcotest.(check int) "roundtrip" c
            (Arch.cycles_of_ns arch (Arch.ns_of_cycles arch c)))
        [ 0; 1; 10; 1000 ])
    Arch.all

let test_of_string () =
  Alcotest.(check bool) "arm" true (Arch.of_string "arm" = Some Arch.Armv8);
  Alcotest.(check bool) "power7" true (Arch.of_string "power7" = Some Arch.Power7);
  Alcotest.(check bool) "junk" true (Arch.of_string "mips" = None)

let test_barrier_arch () =
  Alcotest.(check bool) "dmb is arm" true (Instr.barrier_arch Instr.Dmb_ish = Arch.Armv8);
  Alcotest.(check bool) "sync is power" true (Instr.barrier_arch Instr.Sync = Arch.Power7);
  Alcotest.(check string) "mnemonic" "dmb ishld" (Instr.barrier_mnemonic Instr.Dmb_ishld)

let test_instr_registers () =
  let store = Instr.Store { src = Instr.Reg 1; addr = Instr.Reg 2; order = Instr.Plain } in
  Alcotest.(check (list int)) "store inputs" [ 1; 2 ] (Instr.input_regs store);
  Alcotest.(check bool) "store writes nothing" true (Instr.output_reg store = None);
  let load = Instr.Load { dst = 3; addr = Instr.Imm 0; order = Instr.Plain } in
  Alcotest.(check bool) "load output" true (Instr.output_reg load = Some 3);
  Alcotest.(check bool) "load is memory" true (Instr.is_memory_access load);
  Alcotest.(check bool) "branch detection" true
    (Instr.is_branch (Instr.Cbnz { src = 1; offset = 2 }))

let test_eval_binop () =
  Alcotest.(check int) "add" 7 (Instr.eval_binop Instr.Add 3 4);
  Alcotest.(check int) "sub" (-1) (Instr.eval_binop Instr.Sub 3 4);
  Alcotest.(check int) "xor self" 0 (Instr.eval_binop Instr.Xor 5 5);
  Alcotest.(check int) "and" 4 (Instr.eval_binop Instr.And 6 5)

let sample_program =
  Program.make ~name:"sample" ~location_names:[| "x"; "y" |] ~init:[ (1, 3) ]
    [
      [|
        Instr.Store { src = Instr.Imm 1; addr = Instr.Imm 0; order = Instr.Plain };
        Instr.Load { dst = 4; addr = Instr.Imm 1; order = Instr.Plain };
      |];
      [| Instr.Nop |];
    ]

let test_program_metadata () =
  Alcotest.(check int) "threads" 2 (Program.thread_count sample_program);
  Alcotest.(check (list int)) "locations" [ 0; 1 ] (Program.locations sample_program);
  Alcotest.(check string) "location name" "y" (Program.location_name sample_program 1);
  Alcotest.(check string) "fallback name" "m9" (Program.location_name sample_program 9);
  Alcotest.(check int) "initial value" 3 (Program.initial_value sample_program 1);
  Alcotest.(check int) "default initial" 0 (Program.initial_value sample_program 0);
  Alcotest.(check int) "max register" 4 (Program.max_register sample_program);
  Alcotest.(check int) "instruction count" 3 (Program.instruction_count sample_program)

let test_program_validation () =
  let bad =
    Program.make ~name:"bad" [ [| Instr.Cbnz { src = 1; offset = 100 } |] ]
  in
  Alcotest.(check bool) "branch out of range rejected" true (Program.validate bad <> Ok ());
  Alcotest.(check bool) "sample ok" true (Program.validate sample_program = Ok ())

let test_asm_rendering () =
  let load = Instr.Load { dst = 1; addr = Instr.Imm 0; order = Instr.Acquire } in
  Alcotest.(check string) "arm ldar" "ldar x1, &m0" (Asm.instr Arch.Armv8 load);
  let store = Instr.Store { src = Instr.Imm 1; addr = Instr.Imm 0; order = Instr.Release } in
  Alcotest.(check string) "arm stlr" "stlr #1, &m0" (Asm.instr Arch.Armv8 store);
  Alcotest.(check string) "barrier" "dmb ish" (Asm.instr Arch.Armv8 (Instr.Barrier Instr.Dmb_ish));
  let listing = Asm.program Arch.Armv8 sample_program in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "program listing has init" true (contains listing "y=3")

let suite =
  [
    Alcotest.test_case "arch properties" `Quick test_arch_properties;
    Alcotest.test_case "cycle conversion roundtrip" `Quick test_cycles_conversion_roundtrip;
    Alcotest.test_case "arch of_string" `Quick test_of_string;
    Alcotest.test_case "barrier arch" `Quick test_barrier_arch;
    Alcotest.test_case "instruction registers" `Quick test_instr_registers;
    Alcotest.test_case "binop evaluation" `Quick test_eval_binop;
    Alcotest.test_case "program metadata" `Quick test_program_metadata;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    Alcotest.test_case "asm rendering" `Quick test_asm_rendering;
  ]
