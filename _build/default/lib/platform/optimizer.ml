open Wmm_machine

type result = { stream : Uop.t array; eliminated : int }

let strength = function
  | Uop.Fence_full -> Some 3
  | Uop.Fence_lw -> Some 2
  | Uop.Fence_load | Uop.Fence_store -> Some 1
  | _ -> None

let subsumes a b =
  match (strength a, strength b) with
  | Some _, None | None, _ -> false
  | Some _, Some _ -> (
      if a = b then true
      else
        match (a, b) with
        | Uop.Fence_full, _ -> true
        | Uop.Fence_lw, (Uop.Fence_load | Uop.Fence_store) -> true
        | _ -> false)

(* A "run" is a maximal sequence of micro-ops with no memory access:
   fences within one run order the same accesses, so any fence
   subsumed by another fence of the run is redundant.  The pipeline
   fence (isb) is a hard boundary: it is not a memory barrier and
   must not move or be merged. *)
let is_boundary u = Uop.is_memory u || u = Uop.Fence_pipeline

let eliminate ?probe stream =
  let eliminated = ref 0 in
  let out = ref [] in
  let emit u = out := u :: !out in
  let flush_run run =
    let ops = List.rev run in
    let fences = List.filter (fun u -> strength u <> None) ops in
    (* The minimal set of fences with the same ordering power as the
       whole run: one full fence beats everything; otherwise one
       lwsync beats the load/store fences; otherwise at most one each
       of the load and store fences. *)
    let survivors =
      if List.mem Uop.Fence_full fences then [ Uop.Fence_full ]
      else if List.mem Uop.Fence_lw fences then [ Uop.Fence_lw ]
      else
        List.filter (fun f -> List.mem f fences) [ Uop.Fence_load; Uop.Fence_store ]
    in
    eliminated := !eliminated + List.length fences - List.length survivors;
    (* Emit the survivors at the first fence position; later fence
       positions become probes (or vanish). *)
    let first_fence = ref true in
    List.iter
      (fun u ->
        match strength u with
        | None -> emit u
        | Some _ ->
            if !first_fence then begin
              first_fence := false;
              List.iter emit survivors
            end
            else begin
              match probe with Some p -> emit p | None -> ()
            end)
      ops
  in
  let run = ref [] in
  Array.iter
    (fun u ->
      if is_boundary u then begin
        flush_run !run;
        run := [];
        emit u
      end
      else run := u :: !run)
    stream;
  flush_run !run;
  { stream = Array.of_list (List.rev !out); eliminated = !eliminated }

let optimise_streams ?probe streams =
  let total = ref 0 in
  let optimised =
    Array.map
      (fun stream ->
        let r = eliminate ?probe stream in
        total := !total + r.eliminated;
        r.stream)
      streams
  in
  (optimised, !total)
