open Wmm_isa
open Wmm_machine

type macro =
  | Smp_mb
  | Read_once
  | Read_barrier_depends
  | Smp_rmb
  | Smp_wmb
  | Smp_mb_before_atomic
  | Smp_store_mb
  | Smp_mb_after_atomic
  | Write_once
  | Smp_load_acquire
  | Smp_store_release
  | Rmb
  | Mb
  | Wmb

let all_macros =
  [
    Smp_mb;
    Read_once;
    Read_barrier_depends;
    Smp_rmb;
    Smp_wmb;
    Smp_mb_before_atomic;
    Smp_store_mb;
    Smp_mb_after_atomic;
    Write_once;
    Smp_load_acquire;
    Smp_store_release;
    Rmb;
    Mb;
    Wmb;
  ]

let macro_name = function
  | Smp_mb -> "smp_mb"
  | Read_once -> "read_once"
  | Read_barrier_depends -> "read_barrier_depends"
  | Smp_rmb -> "smp_rmb"
  | Smp_wmb -> "smp_wmb"
  | Smp_mb_before_atomic -> "smp_mb_before_atomic"
  | Smp_store_mb -> "smp_store_mb"
  | Smp_mb_after_atomic -> "smp_mb_after_atomic"
  | Write_once -> "write_once"
  | Smp_load_acquire -> "smp_load_acquire"
  | Smp_store_release -> "smp_store_release"
  | Rmb -> "rmb"
  | Mb -> "mb"
  | Wmb -> "wmb"

let macro_of_name name =
  List.find_opt (fun m -> macro_name m = name) all_macros

type rbd_strategy =
  | Rbd_none
  | Rbd_ctrl
  | Rbd_ctrl_isb
  | Rbd_dmb_ishld
  | Rbd_dmb_ish
  | Rbd_la_sr

let all_rbd_strategies =
  [ Rbd_none; Rbd_ctrl; Rbd_ctrl_isb; Rbd_dmb_ishld; Rbd_dmb_ish; Rbd_la_sr ]

let rbd_name = function
  | Rbd_none -> "base case"
  | Rbd_ctrl -> "ctrl"
  | Rbd_ctrl_isb -> "ctrl+isb"
  | Rbd_dmb_ishld -> "dmb ishld"
  | Rbd_dmb_ish -> "dmb ish"
  | Rbd_la_sr -> "la/sr"

type config = { arch : Arch.t; rbd : rbd_strategy; injection : (macro * Uop.t list) list }

let default arch = { arch; rbd = Rbd_none; injection = [] }

let with_injection config macro uops =
  { config with injection = (macro, uops) :: config.injection }

let injections_for config macro =
  List.concat_map (fun (m, uops) -> if m = macro then uops else []) (List.rev config.injection)

let is_access_macro = function
  | Read_once | Write_once | Smp_load_acquire | Smp_store_release | Smp_store_mb -> true
  | Smp_mb | Read_barrier_depends | Smp_rmb | Smp_wmb | Smp_mb_before_atomic
  | Smp_mb_after_atomic | Rmb | Mb | Wmb ->
      false

(* The rbd strategies replicate the dependency-ordering methods of
   the ARMv8 manual B2.7.4 (see paper section 4.3.1). *)
let rbd_uops config =
  match config.rbd with
  | Rbd_none -> []
  | Rbd_ctrl -> [ Uop.Branch ]
  | Rbd_ctrl_isb -> [ Uop.Branch; Uop.Fence_pipeline ]
  | Rbd_dmb_ishld | Rbd_la_sr -> [ Uop.Fence_load ]
  | Rbd_dmb_ish -> [ Uop.Fence_full ]

let expand config macro ~loc =
  let injected = injections_for config macro in
  let body =
    match macro with
    | Smp_mb | Smp_mb_before_atomic | Smp_mb_after_atomic -> [ Uop.Fence_full ]
    | Mb ->
        (* dsb-class barrier: strictly heavier than dmb. *)
        [ Uop.Fence_full; Uop.Busy 10 ]
    | Rmb -> [ Uop.Fence_load; Uop.Busy 6 ]
    | Wmb -> [ Uop.Fence_store; Uop.Busy 6 ]
    | Smp_rmb -> [ Uop.Fence_load ]
    | Smp_wmb -> [ Uop.Fence_store ]
    | Read_once -> (
        (* Compiler barrier plus the annotated load itself. *)
        match config.rbd with
        | Rbd_la_sr -> [ Uop.Fence_load; Uop.Load loc ]
        | _ -> [ Uop.Load loc ])
    | Write_once -> (
        match config.rbd with
        | Rbd_la_sr -> [ Uop.Fence_store; Uop.Store loc ]
        | _ -> [ Uop.Store loc ])
    | Read_barrier_depends -> rbd_uops config
    | Smp_load_acquire -> [ Uop.Load_acquire loc ]
    | Smp_store_release -> [ Uop.Store_release loc ]
    | Smp_store_mb -> [ Uop.Store loc; Uop.Fence_full ]
  in
  injected @ body
