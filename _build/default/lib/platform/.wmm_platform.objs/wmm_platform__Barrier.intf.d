lib/platform/barrier.mli:
