lib/platform/kernel.mli: Arch Uop Wmm_isa Wmm_machine
