lib/platform/optimizer.ml: Array List Uop Wmm_machine
