lib/platform/kernel.ml: Arch List Uop Wmm_isa Wmm_machine
