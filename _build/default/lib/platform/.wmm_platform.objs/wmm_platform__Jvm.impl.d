lib/platform/jvm.ml: Arch Barrier List Uop Wmm_isa Wmm_machine
