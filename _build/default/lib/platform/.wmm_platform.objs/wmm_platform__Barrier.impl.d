lib/platform/barrier.ml:
