lib/platform/jvm.mli: Arch Barrier Uop Wmm_isa Wmm_machine
