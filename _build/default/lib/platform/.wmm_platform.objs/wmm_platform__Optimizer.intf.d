lib/platform/optimizer.mli: Uop Wmm_machine
