type elemental = Load_load | Load_store | Store_load | Store_store

let all_elementals = [ Load_load; Load_store; Store_load; Store_store ]

let elemental_name = function
  | Load_load -> "LoadLoad"
  | Load_store -> "LoadStore"
  | Store_load -> "StoreLoad"
  | Store_store -> "StoreStore"

type composite = Volatile | Acquire | Release | Load_fence | Store_fence

let all_composites = [ Volatile; Acquire; Release; Load_fence; Store_fence ]

let composite_name = function
  | Volatile -> "Volatile"
  | Acquire -> "Acquire"
  | Release -> "Release"
  | Load_fence -> "LoadFence"
  | Store_fence -> "StoreFence"

let elementals_of_composite = function
  | Volatile -> [ Load_load; Load_store; Store_load; Store_store ]
  | Acquire | Load_fence -> [ Load_load; Load_store ]
  | Release | Store_fence -> [ Load_store; Store_store ]
