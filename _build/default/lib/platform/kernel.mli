open Wmm_isa
open Wmm_machine

(** A model of the Linux kernel memory-model macros
    (Documentation/memory-barriers.txt, kernel 4.2) and the
    [read_barrier_depends] fencing strategies of the paper's
    section 4.3.1.

    Each macro expands to a micro-op sequence under a {!config};
    access-shaped macros ([READ_ONCE], [smp_load_acquire], ...) carry
    the memory access itself so injections land inside the macro. *)

type macro =
  | Smp_mb
  | Read_once
  | Read_barrier_depends
  | Smp_rmb
  | Smp_wmb
  | Smp_mb_before_atomic
  | Smp_store_mb
  | Smp_mb_after_atomic
  | Write_once
  | Smp_load_acquire
  | Smp_store_release
  | Rmb
  | Mb
  | Wmb

val all_macros : macro list
(** The 14 macros of the paper's Figure 7, in its display order. *)

val macro_name : macro -> string
(** Lowercase, e.g. ["smp_mb"], ["read_once"]. *)

val macro_of_name : string -> macro option

type rbd_strategy =
  | Rbd_none  (** Default: compiler barrier only. *)
  | Rbd_ctrl  (** Synthetic control dependency (test against 42 + branch). *)
  | Rbd_ctrl_isb  (** Control dependency whose impotent instruction is isb. *)
  | Rbd_dmb_ishld
  | Rbd_dmb_ish
  | Rbd_la_sr
      (** dmb ishld in [read_barrier_depends] plus dmb ishld in
          [READ_ONCE] and dmb ishst in [WRITE_ONCE]. *)

val all_rbd_strategies : rbd_strategy list

val rbd_name : rbd_strategy -> string
(** As labelled in the paper's Fig. 10: "base case", "ctrl",
    "ctrl+isb", "dmb ishld", "dmb ish", "la/sr". *)

type config = {
  arch : Arch.t;  (** The paper only evaluates the kernel on ARMv8. *)
  rbd : rbd_strategy;
  injection : (macro * Uop.t list) list;
      (** Extra uops inserted inside every expansion of the macro. *)
}

val default : Arch.t -> config

val with_injection : config -> macro -> Uop.t list -> config

val expand : config -> macro -> loc:int -> Uop.t list
(** Expansion of one macro invocation.  [loc] is the memory location
    for access-shaped macros and ignored by pure barriers. *)

val is_access_macro : macro -> bool
(** Whether the macro contains the memory access itself. *)
