open Wmm_isa
open Wmm_machine

(** A model of the OpenJDK Hotspot fencing strategy.

    The JVM platform exposes high-level operations (volatile
    accesses, compare-and-swap, monitor enter/exit); a {!config}
    fixes how each elemental barrier compiles to instructions on a
    given architecture, which barriers are replaced by
    load-acquire/store-release (the JDK9 ARMv8 strategy), which code
    paths carry an injected cost function, and whether the
    lock-path DMB-elimination patch (OpenJDK bug 8135187) is
    applied. *)

type mode =
  | Barriers  (** JDK8 / [UseBarriersForVolatile]: explicit dmb / sync. *)
  | Acqrel  (** JDK9 on ARMv8: ldar / stlr for volatile accesses. *)

type op =
  | Volatile_load of int
  | Volatile_store of int
  | Cas of int  (** java.util.concurrent-style atomic update. *)
  | Lock_enter of int
  | Lock_exit of int

type config = {
  arch : Arch.t;
  mode : mode;
  lock_patch : bool;
  defensive_acquires : bool;
      (** The ARM port emits more LoadLoad / LoadStore barriers than
          the POWER port (the paper notes its developers are "more
          defensive"). *)
  elemental_override : (Barrier.elemental * Uop.t) list;
      (** Replace the instruction selected for an elemental barrier,
          e.g. StoreStore -> Fence_full models the dmb ishst ->
          dmb ish and lwsync -> sync experiments. *)
  injection : (Barrier.elemental * Uop.t list) list;
      (** Extra uops (cost function or nop padding) inserted at every
          occurrence of the elemental barrier. *)
}

val default : Arch.t -> config
(** JDK8-style barrier mode, no overrides, no injection. *)

val with_injection_all : config -> Uop.t list -> config
(** Inject the given uops into all four elemental barriers. *)

val with_injection : config -> Barrier.elemental -> Uop.t list -> config

val elemental_uop : config -> Barrier.elemental -> Uop.t
(** The barrier instruction an elemental compiles to under the
    config (before injection): on ARMv8, LoadLoad / LoadStore ->
    [dmb ishld], StoreStore -> [dmb ishst], StoreLoad -> [dmb ish];
    on POWER, StoreLoad -> [hwsync], the rest -> [lwsync]. *)

val emission : config -> op -> Barrier.elemental list list
(** The elemental-barrier groups the operation passes through, in
    emission order.  The tables are per-architecture: they encode
    what each OpenJDK *port* emits - the ARM port defensively adds
    LoadLoad/LoadStore acquires, the POWER port concentrates on
    StoreStore (lwsync before stores) and keeps hwsync on the
    volatile-load path - reproducing the per-elemental sensitivity
    split of the paper's Fig. 6. *)

val group : config -> Barrier.elemental list -> Uop.t list
(** One combined IR barrier: the injections of each constituent
    elemental (adjacent, so injected cost functions overlap) followed
    by the coalesced barrier instructions (a full fence subsumes the
    rest; duplicates collapse). *)

val compile : config -> op -> Uop.t list
(** Compile a platform operation to micro-ops under the fencing
    strategy.  In [Barriers] mode the operation's barrier groups
    surround its memory access (e.g. on ARM a volatile store is
    Release-group; store; Volatile-group, as in JDK8).  In [Acqrel]
    mode volatile accesses become ldar / stlr. *)

val barrier_invocations : config -> op -> Barrier.elemental -> int
(** How many times [op] passes through the given elemental barrier
    code path - used by tests and by analytical sanity checks. *)
