open Wmm_machine

(** Redundant-barrier elimination, and the paper's section 6
    proposal of probing *optimisation* code paths.

    JIT compilers coalesce adjacent memory barriers: two fences with
    no memory access between them can be merged into the stronger of
    the two.  This module implements that peephole over micro-op
    streams, and - following the paper's future-work suggestion of "a
    dedicated cost function IR node ... added to code paths where a
    given optimisation occurs or would occur" - can mark every
    elimination site with a probe micro-op so the sensitivity of a
    benchmark to the optimisation itself can be fitted with eq. 1. *)

type result = {
  stream : Uop.t array;
  eliminated : int;  (** Fences removed by coalescing. *)
}

val strength : Uop.t -> int option
(** Fence-strength lattice rank: [Fence_full] (3) > [Fence_lw] (2) >
    [Fence_load] / [Fence_store] (1); [None] for non-fences. *)

val subsumes : Uop.t -> Uop.t -> bool
(** [subsumes a b]: does executing [a] render an adjacent [b]
    redundant?  A full fence subsumes everything; [lwsync] subsumes
    the load and store fences; every fence subsumes a duplicate of
    itself. *)

val eliminate : ?probe:Uop.t -> Uop.t array -> result
(** One pass of redundant-fence elimination: within every run of
    consecutive non-memory micro-ops, fences subsumed by a stronger
    (or equal) fence in the same run are removed.  When [probe] is
    given it is inserted at every elimination site - the paper's
    optimisation-path cost-function node. *)

val optimise_streams : ?probe:Uop.t -> Uop.t array array -> Uop.t array array * int
(** Apply [eliminate] to each core's stream; returns the optimised
    streams and the total number of fences eliminated. *)
