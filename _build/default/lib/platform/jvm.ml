open Wmm_isa
open Wmm_machine

type mode = Barriers | Acqrel

type op =
  | Volatile_load of int
  | Volatile_store of int
  | Cas of int
  | Lock_enter of int
  | Lock_exit of int

type config = {
  arch : Arch.t;
  mode : mode;
  lock_patch : bool;
  defensive_acquires : bool;
  elemental_override : (Barrier.elemental * Uop.t) list;
  injection : (Barrier.elemental * Uop.t list) list;
}

let default arch =
  {
    arch;
    mode = Barriers;
    lock_patch = false;
    defensive_acquires = arch = Arch.Armv8;
    elemental_override = [];
    injection = [];
  }

let with_injection config elemental uops =
  { config with injection = (elemental, uops) :: config.injection }

let with_injection_all config uops =
  List.fold_left (fun c e -> with_injection c e uops) config Barrier.all_elementals

let elemental_uop config elemental =
  match List.assoc_opt elemental config.elemental_override with
  | Some u -> u
  | None -> (
      match (config.arch, elemental) with
      | Arch.Armv8, (Barrier.Load_load | Barrier.Load_store) -> Uop.Fence_load
      | Arch.Armv8, Barrier.Store_store -> Uop.Fence_store
      | Arch.Armv8, Barrier.Store_load -> Uop.Fence_full
      | Arch.Power7, Barrier.Store_load -> Uop.Fence_full
      | Arch.Power7, (Barrier.Load_load | Barrier.Load_store | Barrier.Store_store) ->
          Uop.Fence_lw)

let injections_for config elemental =
  List.concat_map
    (fun (e, uops) -> if e = elemental then uops else [])
    (List.rev config.injection)

(* Coalesce the instruction selection for a group of elementals: a
   full fence subsumes everything else, and duplicates collapse,
   mirroring how the JIT assembles combined IR barriers. *)
let coalesce uops =
  if List.mem Uop.Fence_full uops then [ Uop.Fence_full ]
  else List.fold_left (fun acc u -> if List.mem u acc then acc else acc @ [ u ]) [] uops

(* One combined IR barrier: the injections of each constituent
   elemental (adjacent, so injected cost functions overlap) followed
   by the coalesced barrier instructions. *)
let group config elementals =
  List.concat_map (injections_for config) elementals
  @ coalesce (List.map (elemental_uop config) elementals)

(* The elemental-barrier groups each platform operation passes
   through, in emission order.  These tables encode what each *port*
   actually emits, which the paper observes to differ: the ARM port
   is defensive (extra LoadLoad / LoadStore acquires), while the
   POWER port concentrates on StoreStore (lwsync before stores) and
   keeps the expensive hwsync on the rarely taken volatile-load path,
   matching the per-elemental sensitivities of Fig. 6. *)
let emission config op =
  (* Elemental composition of each group, reverse-engineered from the
     paper's measured per-elemental sensitivities (Fig. 6): on ARM,
     StoreStore appears in every group (its k matches the
     all-barriers k) with the port defensively adding LoadLoad /
     LoadStore; on POWER the port leans on StoreStore/LoadStore
     (lwsync before stores) while the hwsync and acquire paths are
     conditionally elided, leaving LoadLoad / StoreLoad nearly
     unexercised. *)
  let ll = Barrier.Load_load
  and ls = Barrier.Load_store
  and sl = Barrier.Store_load
  and ss = Barrier.Store_store in
  let defensive groups =
    if config.defensive_acquires then groups
    else
      List.map (function Barrier.Load_load :: rest -> rest | g -> g) groups
  in
  match (config.arch, op) with
  | Arch.Armv8, Volatile_load _ -> defensive [ [ ll; ls; ss ]; [ ll; ls; sl; ss ] ]
  | Arch.Armv8, Volatile_store _ -> defensive [ [ ll; ls; ss ]; [ sl; ss ] ]
  | Arch.Armv8, Cas _ -> defensive [ [ ll; ls; ss ]; [ sl; ss ] ]
  | Arch.Armv8, Lock_enter _ -> [ [ ll; ls; sl; ss ] ]
  | Arch.Armv8, Lock_exit _ ->
      if config.lock_patch then [ [ ls; ss ] ] else [ [ ll; ls; sl; ss ] ]
  | Arch.Power7, Volatile_load _ ->
      (* sync; ld; isync idiom, conditionally elided by the port. *)
      [ [ sl; ll ] ]
  | Arch.Power7, Volatile_store _ -> [ [ ls; ss ]; [ ss ] ]
  | Arch.Power7, Cas _ -> [ [ ls; ss ]; [ ss ] ]
  | Arch.Power7, Lock_enter _ -> [ [ ss; sl ] ]
  | Arch.Power7, Lock_exit _ -> [ [ ls; ss ] ]

let compile config op =
  let acqrel = config.mode = Acqrel && config.arch = Arch.Armv8 in
  let groups () = List.map (group config) (emission config op) in
  (* Place the memory access among the barrier groups: the last
     group of a load-shaped op is its trailing acquire; the first
     group of a store-shaped op is its leading release. *)
  let access_then_rest access =
    match groups () with
    | [] -> access
    | first :: rest -> first @ access @ List.concat rest
  in
  let rest_then_access access =
    match List.rev (groups ()) with
    | [] -> access
    | last :: before_rev -> List.concat (List.rev before_rev) @ access @ last
  in
  match op with
  | Volatile_load loc ->
      if acqrel then [ Uop.Load_acquire loc ] else rest_then_access [ Uop.Load loc ]
  | Volatile_store loc ->
      if acqrel then [ Uop.Store_release loc ] else access_then_rest [ Uop.Store loc ]
  | Cas loc ->
      if acqrel then [ Uop.Load_acquire loc; Uop.Busy 3; Uop.Store_release loc ]
      else access_then_rest [ Uop.Load loc; Uop.Busy 3; Uop.Store loc ]
  | Lock_enter loc ->
      (* The acqrel lock fast path acquires with ldaxr/stxr: the
         acquiring store is exclusive but plain. *)
      if acqrel then [ Uop.Load_acquire loc; Uop.Busy 4; Uop.Store loc ]
      else [ Uop.Load loc; Uop.Busy 4; Uop.Store loc ] @ List.concat (groups ())
  | Lock_exit loc ->
      if acqrel then
        if config.lock_patch then [ Uop.Store_release loc ]
        else [ Uop.Store_release loc ] @ group config [ Barrier.Store_load ]
      else [ Uop.Store loc ] @ List.concat (groups ())

let barrier_invocations config op elemental =
  if config.mode = Acqrel && config.arch = Arch.Armv8 then
    (* Only the unpatched acqrel lock exit keeps a barrier. *)
    match op with
    | Lock_exit _ when not config.lock_patch ->
        if elemental = Barrier.Store_load then 1 else 0
    | _ -> 0
  else
    List.fold_left
      (fun acc group -> acc + List.length (List.filter (fun e -> e = elemental) group))
      0 (emission config op)
