open Wmm_isa
(** Axiomatic consistency predicates.

    Four models are provided:

    - [Sc]: sequential consistency — acyclic(po U com).
    - [Tso]: total store order (x86-style) — SC-per-location plus
      acyclicity of ppo U rfe U co U fr where ppo drops write->read
      pairs unless restored by a full fence.
    - [Arm]: the ARMv8 "external consistency" style model —
      SC-per-location plus acyclicity of the ordered-before relation
      (observed-external U dependency-ordered U barrier-ordered).
      ARMv8 is other-multi-copy-atomic, which this captures.
    - [Power]: the herding-cats POWER model — SC-per-location,
      no-thin-air (acyclic hb), observation (irreflexive
      fre;prop;hb^* ), propagation (acyclic co U prop).  POWER is
      non-multi-copy-atomic: IRIW with address dependencies stays
      allowed, unlike ARMv8.

    Simplifications relative to the full published models are noted
    in DESIGN.md: preserved-program-order is dependency-based (addr,
    data, ctrl-to-writes, isync/isb restoration) without the
    rdw/detour refinements, and read-modify-write atomicity is not
    modelled (no rmw events are generated). *)

type model = Sc | Tso | Arm | Power

val all_models : model list

val model_name : model -> string

val model_for_arch : Arch.t -> model
(** [Armv8 -> Arm], [Power7 -> Power]. *)

val consistent : model -> Execution.t -> bool
(** Whether a (well-formed) candidate execution is allowed. *)

val violations : model -> Execution.t -> string list
(** Names of the axioms the execution violates; empty iff
    [consistent]. *)

(** Exposed building blocks (useful for tests and for explaining
    verdicts). *)

val preserved_program_order : model -> Execution.t -> Relation.t

val fence_order : model -> Execution.t -> Relation.t
(** Pairs of memory accesses ordered by an intervening barrier under
    the given model's interpretation of each barrier instruction. *)

val happens_before : model -> Execution.t -> Relation.t
