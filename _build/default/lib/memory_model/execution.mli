open Wmm_isa
(** Candidate executions: events plus the base relations (po, rf, co,
    dependencies) and the standard derived relations of the herding
    cats framework. *)

type t = {
  events : Event.t array;  (** Indexed by event id. *)
  po : Relation.t;  (** Program order, transitively closed, per thread. *)
  rf : Relation.t;  (** Reads-from: write -> read, same loc and value. *)
  co : Relation.t;  (** Coherence: per-location total order on writes. *)
  addr : Relation.t;  (** Address dependencies: read -> access. *)
  data : Relation.t;  (** Data dependencies: read -> write. *)
  ctrl : Relation.t;  (** Control dependencies: read -> later event. *)
  rmw : Relation.t;
      (** Read-modify-write pairs: the exclusive read -> the paired
          successful exclusive write. *)
}

val event : t -> int -> Event.t

val event_ids : t -> int list

val reads : t -> int list
val writes : t -> int list

val select : t -> (Event.t -> bool) -> int list

val fr : t -> Relation.t
(** From-reads: [rf^-1 ; co], reads before the writes that overwrite
    what they read. *)

val po_loc : t -> Relation.t
(** Program order restricted to same-location accesses. *)

val com : t -> Relation.t
(** Communication: [rf U co U fr]. *)

val external_rel : t -> Relation.t -> Relation.t
(** Restriction to pairs on different threads (init writes count as
    external to every thread). *)

val internal_rel : t -> Relation.t -> Relation.t

val rfe : t -> Relation.t
val rfi : t -> Relation.t
val coe : t -> Relation.t
val fre : t -> Relation.t

val final_memory : t -> (Instr.loc * Instr.value) list
(** Value of each location after the execution: the co-maximal write
    per location. *)

val well_formed : t -> (unit, string) result
(** Sanity checks: rf sources are writes and targets reads of the
    same location and value, every read has exactly one rf source, co
    is a per-location strict total order on writes. *)
