lib/memory_model/relation.mli: Format
