lib/memory_model/execution.mli: Event Instr Relation Wmm_isa
