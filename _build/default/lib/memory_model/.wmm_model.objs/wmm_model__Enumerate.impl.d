lib/memory_model/enumerate.ml: Array Axiomatic Event Execution Format Hashtbl Instr Int List Map Option Printf Program Relation Set String Wmm_isa
