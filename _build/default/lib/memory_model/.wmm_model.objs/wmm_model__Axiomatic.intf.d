lib/memory_model/axiomatic.mli: Arch Execution Relation Wmm_isa
