lib/memory_model/relation.ml: Format Hashtbl List Printf Set String
