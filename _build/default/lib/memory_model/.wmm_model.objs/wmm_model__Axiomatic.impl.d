lib/memory_model/axiomatic.ml: Arch Array Event Execution Instr List Relation Wmm_isa
