lib/memory_model/enumerate.mli: Axiomatic Execution Format Instr Program Wmm_isa
