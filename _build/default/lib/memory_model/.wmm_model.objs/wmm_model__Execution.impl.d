lib/memory_model/execution.ml: Array Event Fun Int List Map Option Relation
