lib/memory_model/event.mli: Format Instr Wmm_isa
