lib/memory_model/event.ml: Format Instr Printf Wmm_isa
