open Wmm_isa
(** Exhaustive enumeration of candidate executions for litmus
    programs (a small herd-style engine).

    The enumeration proceeds in two phases.  Phase one discovers the
    set of values each location can carry by interpreting every
    thread against a growing value pool until fixpoint (this handles
    stores whose value or address depends on loaded values, as in
    dependency litmus tests).  Phase two generates, for every
    combination of per-load value choices, the thread event
    sequences with their address / data / control dependencies, then
    enumerates all reads-from assignments and coherence orders.  The
    resulting candidate executions are filtered by an axiomatic model
    to obtain the allowed final states. *)

type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
      (** Final value of every register written by each thread,
          sorted by (thread, register). *)
  memory : (Instr.loc * Instr.value) list;  (** Sorted by location. *)
}

val compare_outcome : outcome -> outcome -> int

val pp_outcome : Program.t -> Format.formatter -> outcome -> unit

val outcome_to_string : Program.t -> outcome -> string

val candidate_executions :
  ?fuel:int -> Program.t -> (Execution.t * outcome) list
(** All well-formed candidate executions with their final states.
    [fuel] caps interpreted steps per thread (default 1024) so
    accidentally looping programs fail fast: exceeding it raises
    [Failure]. *)

val allowed_outcomes : Axiomatic.model -> Program.t -> outcome list
(** Deduplicated, sorted final states of the model-consistent
    candidates. *)

val outcome_allowed : Axiomatic.model -> Program.t -> outcome -> bool
(** Membership test used by the litmus checker.  Register values not
    mentioned in [outcome.registers] are ignored (partial match);
    same for memory. *)
