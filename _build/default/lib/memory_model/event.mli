open Wmm_isa
(** Memory events of a candidate execution.

    Reads and writes carry their location, value and ordering
    annotation (plain / acquire / release); fences carry their
    barrier instruction.  Initial-state writes use thread id [-1]. *)

type action =
  | Read of { loc : Instr.loc; value : Instr.value; order : Instr.order }
  | Write of { loc : Instr.loc; value : Instr.value; order : Instr.order }
  | Fence of Instr.barrier

type t = {
  id : int;  (** Global identifier, index into the execution's array. *)
  tid : int;  (** Thread, or [-1] for initial writes. *)
  po_index : int;  (** Position within the thread. *)
  action : action;
}

val init_tid : int
(** The pseudo thread id of initial writes ([-1]). *)

val is_read : t -> bool
val is_write : t -> bool
val is_fence : t -> bool
val is_init : t -> bool

val is_acquire : t -> bool
(** Acquire-annotated read. *)

val is_release : t -> bool
(** Release-annotated write. *)

val is_fence_kind : Instr.barrier -> t -> bool

val loc : t -> Instr.loc option
(** The location of a read or write; [None] for fences. *)

val value : t -> Instr.value option

val same_loc : t -> t -> bool
(** True when both are memory accesses to the same location. *)

val pp : Format.formatter -> t -> unit
