type t = {
  events : Event.t array;
  po : Relation.t;
  rf : Relation.t;
  co : Relation.t;
  addr : Relation.t;
  data : Relation.t;
  ctrl : Relation.t;
  rmw : Relation.t;
}

let event t id = t.events.(id)

let event_ids t = List.init (Array.length t.events) Fun.id

let select t p =
  Array.to_list t.events |> List.filter p |> List.map (fun (e : Event.t) -> e.Event.id)

let reads t = select t Event.is_read
let writes t = select t Event.is_write

let fr t =
  (* A read r "from-reads" a write w when w is co-after the write r
     read from; exclude the identity that arises from rf^-1;co hitting
     the same write. *)
  Relation.filter (fun a b -> a <> b) (Relation.compose (Relation.inverse t.rf) t.co)

let po_loc t =
  Relation.filter (fun a b -> Event.same_loc t.events.(a) t.events.(b)) t.po

let com t = Relation.union_all [ t.rf; t.co; fr t ]

let external_rel t r =
  Relation.filter (fun a b -> t.events.(a).Event.tid <> t.events.(b).Event.tid) r

let internal_rel t r =
  Relation.filter (fun a b -> t.events.(a).Event.tid = t.events.(b).Event.tid) r

let rfe t = external_rel t t.rf
let rfi t = internal_rel t t.rf
let coe t = external_rel t t.co
let fre t = external_rel t (fr t)

let final_memory t =
  let module IM = Map.Make (Int) in
  let last = ref IM.empty in
  (* The co-maximal write for location l is the write to l with no
     outgoing co edge. *)
  List.iter
    (fun w ->
      let e = t.events.(w) in
      match Event.loc e with
      | None -> ()
      | Some l ->
          let has_successor =
            List.exists (fun (a, _) -> a = w) (Relation.to_list t.co)
          in
          if not has_successor then last := IM.add l (Option.get (Event.value e)) !last)
    (writes t);
  (* Locations whose only write is the init write still appear because
     init writes are events. *)
  IM.bindings !last

let well_formed t =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  (* rf edges relate a write to a same-location same-value read. *)
  List.iter
    (fun (w, r) ->
      let ew = t.events.(w) and er = t.events.(r) in
      if not (Event.is_write ew) then fail "rf source is not a write";
      if not (Event.is_read er) then fail "rf target is not a read";
      if not (Event.same_loc ew er) then fail "rf relates different locations";
      if Event.value ew <> Event.value er then fail "rf relates different values")
    (Relation.to_list t.rf);
  (* Every read has exactly one rf source. *)
  List.iter
    (fun r ->
      let sources = List.filter (fun (_, r') -> r' = r) (Relation.to_list t.rf) in
      if List.length sources <> 1 then fail "read without unique rf source")
    (reads t);
  (* co is irreflexive, same-location, writes only. *)
  List.iter
    (fun (a, b) ->
      let ea = t.events.(a) and eb = t.events.(b) in
      if a = b then fail "co is reflexive";
      if not (Event.is_write ea && Event.is_write eb) then fail "co relates non-writes";
      if not (Event.same_loc ea eb) then fail "co relates different locations")
    (Relation.to_list t.co);
  if not (Relation.is_acyclic t.co) then fail "co is cyclic";
  (* co totality per location. *)
  let ws = writes t in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Event.same_loc t.events.(a) t.events.(b) then
            if not (Relation.mem a b t.co || Relation.mem b a t.co) then
              fail "co not total on a location")
        ws)
    ws;
  match !problem with None -> Ok () | Some msg -> Error msg
