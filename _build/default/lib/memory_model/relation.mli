(** Finite binary relations over event identifiers.

    The axiomatic models of Alglave et al.'s "herding cats" framework
    are phrased as acyclicity and irreflexivity constraints over
    unions, compositions and closures of relations; this module is
    that algebra.  Event counts in litmus tests are tiny (tens), so a
    pair-set representation is used for clarity. *)

type t

val empty : t

val is_empty : t -> bool

val cardinal : t -> int

val singleton : int -> int -> t

val add : int -> int -> t -> t

val mem : int -> int -> t -> bool

val of_list : (int * int) list -> t

val to_list : t -> (int * int) list

val union : t -> t -> t

val union_all : t list -> t

val inter : t -> t -> t

val diff : t -> t -> t

val compose : t -> t -> t
(** [compose r s] = [{ (a, c) | (a, b) in r, (b, c) in s }]. *)

val inverse : t -> t

val identity_on : int list -> t

val cross : int list -> int list -> t
(** Cartesian product. *)

val restrict : t -> domain:(int -> bool) -> range:(int -> bool) -> t

val filter : (int -> int -> bool) -> t -> t

val transitive_closure : t -> t

val reflexive_transitive_closure : t -> carrier:int list -> t
(** Transitive closure plus the identity on [carrier]. *)

val is_irreflexive : t -> bool

val is_acyclic : t -> bool
(** True when the relation's directed graph has no cycle (equivalent
    to irreflexivity of the transitive closure). *)

val equal : t -> t -> bool

val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
