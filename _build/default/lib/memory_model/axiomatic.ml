open Wmm_isa
type model = Sc | Tso | Arm | Power

let all_models = [ Sc; Tso; Arm; Power ]

let model_name = function Sc -> "SC" | Tso -> "TSO" | Arm -> "ARMv8" | Power -> "POWER"

let model_for_arch = function Arch.Armv8 -> Arm | Arch.Power7 -> Power

let events (x : Execution.t) = x.Execution.events

let is_mem x id = Event.is_read (events x).(id) || Event.is_write (events x).(id)

let is_read x id = Event.is_read (events x).(id)
let is_write x id = Event.is_write (events x).(id)
let is_acquire x id = Event.is_acquire (events x).(id)
let is_release x id = Event.is_release (events x).(id)

let mem_ids x = List.filter (is_mem x) (Execution.event_ids x)
let read_ids x = Execution.reads x
let write_ids x = Execution.writes x

(* Memory accesses separated by a fence satisfying [kind]:
   [M]; po; [F kind]; po; [M]. *)
let through_fence x kind =
  let fences = Execution.select x (fun e -> Event.is_fence e && kind e) in
  List.fold_left
    (fun acc f ->
      let po = x.Execution.po in
      let pre = List.filter (fun a -> is_mem x a && Relation.mem a f po) (Execution.event_ids x) in
      let post = List.filter (fun b -> is_mem x b && Relation.mem f b po) (Execution.event_ids x) in
      Relation.union acc (Relation.cross pre post))
    Relation.empty fences

let restrict_dir x r ~dom ~rng =
  Relation.restrict r ~domain:(fun a -> dom x a) ~range:(fun b -> rng x b)

let fence_order model x =
  match model with
  | Sc ->
      (* Fences add nothing on top of full program order. *)
      Relation.empty
  | Tso ->
      (* Any full fence restores the relaxed write->read pairs. *)
      through_fence x (fun e ->
          Event.is_fence_kind Instr.Dmb_ish e || Event.is_fence_kind Instr.Sync e)
  | Arm ->
      let full = through_fence x (Event.is_fence_kind Instr.Dmb_ish) in
      let ld =
        restrict_dir x (through_fence x (Event.is_fence_kind Instr.Dmb_ishld)) ~dom:is_read
          ~rng:is_mem
      in
      let st =
        restrict_dir x (through_fence x (Event.is_fence_kind Instr.Dmb_ishst)) ~dom:is_write
          ~rng:is_write
      in
      Relation.union_all [ full; ld; st ]
  | Power ->
      let sync = through_fence x (Event.is_fence_kind Instr.Sync) in
      let lw = through_fence x (Event.is_fence_kind Instr.Lwsync) in
      (* lwsync orders everything except write->read. *)
      let lw_rm = restrict_dir x lw ~dom:is_read ~rng:is_mem in
      let lw_ww = restrict_dir x lw ~dom:is_write ~rng:is_write in
      let eieio =
        restrict_dir x (through_fence x (Event.is_fence_kind Instr.Eieio)) ~dom:is_write
          ~rng:is_write
      in
      Relation.union_all [ sync; lw_rm; lw_ww; eieio ]

let sync_order x = through_fence x (Event.is_fence_kind Instr.Sync)

(* Control dependencies restored by an instruction-sync barrier:
   a read r with a ctrl edge to an isb/isync fence orders every
   memory access po-after the fence. *)
let ctrl_isync x kinds =
  let fences =
    Execution.select x (fun e -> Event.is_fence e && List.exists (fun k -> Event.is_fence_kind k e) kinds)
  in
  List.fold_left
    (fun acc f ->
      let sources =
        List.filter (fun r -> is_read x r && Relation.mem r f x.Execution.ctrl)
          (Execution.event_ids x)
      in
      let targets =
        List.filter (fun b -> is_mem x b && Relation.mem f b x.Execution.po)
          (Execution.event_ids x)
      in
      Relation.union acc (Relation.cross sources targets))
    Relation.empty fences

let preserved_program_order model x =
  let mem_po = restrict_dir x x.Execution.po ~dom:is_mem ~rng:is_mem in
  match model with
  | Sc -> mem_po
  | Tso ->
      (* Drop write->read pairs: stores may be delayed in the store
         buffer past later reads. *)
      Relation.filter (fun a b -> not (is_write x a && is_read x b)) mem_po
  | Arm | Power ->
      let addr = x.Execution.addr in
      let data = x.Execution.data in
      let ctrl_w = restrict_dir x x.Execution.ctrl ~dom:is_read ~rng:is_write in
      let addr_po_w =
        restrict_dir x (Relation.compose addr x.Execution.po) ~dom:is_read ~rng:is_write
      in
      let dep_rfi = Relation.compose (Relation.union addr data) (Execution.rfi x) in
      let restored =
        match model with
        | Arm -> ctrl_isync x [ Instr.Isb ]
        | Power -> ctrl_isync x [ Instr.Isync ]
        | Sc | Tso -> Relation.empty
      in
      let acq_rel =
        match model with
        | Arm ->
            (* Barrier-ordered-before contributions of load-acquire /
               store-release: [A]; po; [M], [M]; po; [L], [L]; po; [A]. *)
            Relation.union_all
              [
                restrict_dir x x.Execution.po ~dom:is_acquire ~rng:is_mem;
                restrict_dir x x.Execution.po ~dom:is_mem ~rng:is_release;
                restrict_dir x x.Execution.po ~dom:is_release ~rng:is_acquire;
              ]
        | Sc | Tso | Power -> Relation.empty
      in
      Relation.union_all [ addr; data; ctrl_w; addr_po_w; dep_rfi; restored; acq_rel ]

let happens_before model x =
  match model with
  | Sc -> Relation.union x.Execution.po (Execution.com x)
  | Tso ->
      Relation.union_all
        [ preserved_program_order Tso x; fence_order Tso x; Execution.rfe x ]
  | Arm ->
      (* The ARMv8 ordered-before relation: external observations,
         dependency-ordered-before, and barrier-ordered-before. *)
      Relation.union_all
        [
          Execution.rfe x;
          Execution.fre x;
          Execution.coe x;
          preserved_program_order Arm x;
          fence_order Arm x;
        ]
  | Power ->
      Relation.union_all
        [ preserved_program_order Power x; fence_order Power x; Execution.rfe x ]

let sc_per_location x =
  Relation.is_acyclic (Relation.union (Execution.po_loc x) (Execution.com x))

(* Read-modify-write atomicity (common to every model): no external
   write may be coherence-ordered between the exclusive read's source
   and the paired exclusive write: empty (rmw & (fre; coe)). *)
let atomicity_ok x =
  Relation.is_empty
    (Relation.inter x.Execution.rmw
       (Relation.compose (Execution.fre x) (Execution.coe x)))

let violations model x =
  let problems = ref [] in
  let check name ok = if not ok then problems := name :: !problems in
  check "atomicity" (atomicity_ok x);
  (match model with
  | Sc -> check "sc" (Relation.is_acyclic (Relation.union x.Execution.po (Execution.com x)))
  | Tso ->
      check "sc-per-location" (sc_per_location x);
      let ghb =
        Relation.union_all
          [ happens_before Tso x; x.Execution.co; Execution.fr x ]
      in
      check "tso-global-happens-before" (Relation.is_acyclic ghb)
  | Arm ->
      check "internal" (sc_per_location x);
      check "external" (Relation.is_acyclic (happens_before Arm x))
  | Power ->
      check "sc-per-location" (sc_per_location x);
      let hb = happens_before Power x in
      check "no-thin-air" (Relation.is_acyclic hb);
      let carrier = Execution.event_ids x in
      let hb_star = Relation.reflexive_transitive_closure hb ~carrier in
      let fences = fence_order Power x in
      let prop_base =
        Relation.compose (Relation.union fences (Relation.compose (Execution.rfe x) fences)) hb_star
      in
      let com_star = Relation.reflexive_transitive_closure (Execution.com x) ~carrier in
      let prop_base_star = Relation.reflexive_transitive_closure prop_base ~carrier in
      let prop =
        Relation.union
          (restrict_dir x prop_base ~dom:is_write ~rng:is_write)
          (Relation.compose com_star
             (Relation.compose prop_base_star (Relation.compose (sync_order x) hb_star)))
      in
      check "observation"
        (Relation.is_irreflexive
           (Relation.compose (Execution.fre x) (Relation.compose prop hb_star)));
      check "propagation" (Relation.is_acyclic (Relation.union x.Execution.co prop)));
  List.rev !problems

let consistent model x = violations model x = []

(* Silence unused warnings for helpers exposed mainly to tests. *)
let _ = mem_ids
let _ = read_ids
let _ = write_ids
