open Wmm_isa
type outcome = {
  registers : ((int * Instr.reg) * Instr.value) list;
  memory : (Instr.loc * Instr.value) list;
}

let compare_outcome a b =
  match compare a.registers b.registers with 0 -> compare a.memory b.memory | c -> c

let pp_outcome (p : Program.t) fmt o =
  let regs =
    List.map (fun ((tid, r), v) -> Printf.sprintf "%d:x%d=%d" tid r v) o.registers
  in
  let mem =
    List.map (fun (l, v) -> Printf.sprintf "%s=%d" (Program.location_name p l) v) o.memory
  in
  Format.fprintf fmt "{%s}" (String.concat "; " (regs @ mem))

let outcome_to_string p o = Format.asprintf "%a" (pp_outcome p) o

(* ------------------------------------------------------------------ *)
(* Thread interpretation.                                              *)
(* ------------------------------------------------------------------ *)

(* A local event recorded while interpreting one thread.  Reads are
   numbered (by [read_index]) so dependencies can refer to them before
   global event ids exist. *)
type local_event = {
  l_action : Event.action;
  l_addr_deps : int list;  (** read indices this event's address depends on *)
  l_data_deps : int list;  (** read indices a store's value depends on *)
  l_ctrl_deps : int list;  (** read indices controlling reachability *)
  l_read_index : int option;  (** Some i when this event is read number i *)
  l_rmw_source : int option;
      (** For a successful exclusive write: the read index of the
          paired exclusive read. *)
}

type run = {
  events : local_event list;  (** in program order *)
  final_regs : (Instr.reg * Instr.value) list;  (** registers written *)
}

(* Interpret one thread, branching over the possible values of every
   load (drawn from [pool]).  Returns every feasible run. *)
let run_thread ~fuel ~pool (thread : Program.thread) : run list =
  let length = Array.length thread in
  let results = ref [] in
  let module IM = Map.Make (Int) in
  let dedup l = List.sort_uniq compare l in
  let rec step pc steps regs reg_deps ctrl written events next_read monitor =
    if steps > fuel then failwith "Enumerate: thread interpretation fuel exhausted";
    if pc >= length then begin
      let final_regs =
        List.sort compare (IM.bindings (IM.filter (fun r _ -> List.mem r written) regs))
      in
      results := { events = List.rev events; final_regs } :: !results
    end
    else begin
      let get_reg r = try IM.find r regs with Not_found -> 0 in
      let deps_of_reg r = try IM.find r reg_deps with Not_found -> [] in
      let eval = function Instr.Imm v -> v | Instr.Reg r -> get_reg r in
      let deps_of_operand = function Instr.Imm _ -> [] | Instr.Reg r -> deps_of_reg r in
      match thread.(pc) with
      | Instr.Nop -> step (pc + 1) (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Barrier b ->
          let event =
            {
              l_action = Event.Fence b;
              l_addr_deps = [];
              l_data_deps = [];
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Mov { dst; src } ->
          let regs = IM.add dst (eval src) regs in
          let reg_deps = IM.add dst (deps_of_operand src) reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Op { op; dst; a; b } ->
          let regs = IM.add dst (Instr.eval_binop op (eval a) (eval b)) regs in
          let deps = dedup (deps_of_operand a @ deps_of_operand b) in
          let reg_deps = IM.add dst deps reg_deps in
          step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written) events next_read monitor
      | Instr.Cbnz { src; offset } | Instr.Cbz { src; offset } ->
          let taken =
            match thread.(pc) with
            | Instr.Cbnz _ -> get_reg src <> 0
            | _ -> get_reg src = 0
          in
          let ctrl = dedup (deps_of_reg src @ ctrl) in
          let pc' = if taken then pc + 1 + offset else pc + 1 in
          step pc' (steps + 1) regs reg_deps ctrl written events next_read monitor
      | Instr.Store { src; addr; order } ->
          let loc = eval addr in
          let event =
            {
              l_action = Event.Write { loc; value = eval src; order };
              l_addr_deps = dedup (deps_of_operand addr);
              l_data_deps = dedup (deps_of_operand src);
              l_ctrl_deps = dedup ctrl;
              l_read_index = None;
              l_rmw_source = None;
            }
          in
          step (pc + 1) (steps + 1) regs reg_deps ctrl written (event :: events) next_read monitor
      | Instr.Load_exclusive { dst; addr; order } ->
          let loc = eval addr in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1)
                (Some (loc, next_read)))
            (pool loc)
      | Instr.Store_exclusive { status; src; addr; order } ->
          let loc = eval addr in
          (* Failure branch: the monitor was lost (always possible -
             spurious failure is architecturally allowed). *)
          let fail_regs = IM.add status 1 regs in
          let fail_deps = IM.add status [] reg_deps in
          step (pc + 1) (steps + 1) fail_regs fail_deps ctrl (status :: written) events
            next_read None;
          (* Success branch: only when the monitor matches. *)
          (match monitor with
          | Some (mloc, ridx) when mloc = loc ->
              let event =
                {
                  l_action = Event.Write { loc; value = eval src; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = dedup (deps_of_operand src);
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = None;
                  l_rmw_source = Some ridx;
                }
              in
              let ok_regs = IM.add status 0 regs in
              let ok_deps = IM.add status [] reg_deps in
              step (pc + 1) (steps + 1) ok_regs ok_deps ctrl (status :: written)
                (event :: events) next_read None
          | Some _ | None -> ())
      | Instr.Load { dst; addr; order } ->
          let loc = eval addr in
          let candidates = pool loc in
          List.iter
            (fun value ->
              let event =
                {
                  l_action = Event.Read { loc; value; order };
                  l_addr_deps = dedup (deps_of_operand addr);
                  l_data_deps = [];
                  l_ctrl_deps = dedup ctrl;
                  l_read_index = Some next_read;
                  l_rmw_source = None;
                }
              in
              let regs = IM.add dst value regs in
              let reg_deps = IM.add dst [ next_read ] reg_deps in
              step (pc + 1) (steps + 1) regs reg_deps ctrl (dst :: written)
                (event :: events) (next_read + 1) monitor)
            candidates
    end
  in
  step 0 0 IM.empty IM.empty [] [] [] 0 None;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Phase one: value pool fixpoint.                                     *)
(* ------------------------------------------------------------------ *)

let value_pool ~fuel (p : Program.t) =
  let module LM = Map.Make (Int) in
  let module VS = Set.Make (Int) in
  let initial =
    List.fold_left
      (fun acc l -> LM.add l (VS.singleton (Program.initial_value p l)) acc)
      LM.empty (Program.locations p)
  in
  let lookup pool loc =
    match LM.find_opt loc pool with
    | Some vs -> VS.elements vs
    | None -> [ 0 ]
  in
  let grow pool =
    let additions = ref pool in
    Array.iter
      (fun thread ->
        let runs = run_thread ~fuel ~pool:(lookup pool) thread in
        List.iter
          (fun run ->
            List.iter
              (fun e ->
                match e.l_action with
                | Event.Write { loc; value; _ } ->
                    let current =
                      match LM.find_opt loc !additions with
                      | Some vs -> vs
                      | None -> VS.singleton (Program.initial_value p loc)
                    in
                    additions := LM.add loc (VS.add value current) !additions
                | Event.Read _ | Event.Fence _ -> ())
              run.events)
          runs)
      p.Program.threads;
    !additions
  in
  let rec fixpoint pool iterations =
    if iterations > 8 then pool
    else begin
      let next = grow pool in
      if LM.equal VS.equal next pool then pool else fixpoint next (iterations + 1)
    end
  in
  let pool = fixpoint initial 0 in
  lookup pool

(* ------------------------------------------------------------------ *)
(* Phase two: candidate generation.                                    *)
(* ------------------------------------------------------------------ *)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) choices

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* Build the executions arising from one choice of per-thread runs. *)
let executions_of_runs (p : Program.t) (runs : run array) =
  (* Locations touched by any event or named in the program. *)
  let module LS = Set.Make (Int) in
  let locs = ref (LS.of_list (Program.locations p)) in
  Array.iter
    (fun run ->
      List.iter
        (fun e ->
          match e.l_action with
          | Event.Read { loc; _ } | Event.Write { loc; _ } -> locs := LS.add loc !locs
          | Event.Fence _ -> ())
        run.events)
    runs;
  let locations = LS.elements !locs in
  (* Global events: init writes first, then thread events in order. *)
  let events = ref [] in
  let next_id = ref 0 in
  let push tid po_index action =
    let e = { Event.id = !next_id; tid; po_index; action } in
    incr next_id;
    events := e :: !events;
    e.Event.id
  in
  let init_ids =
    List.map
      (fun l ->
        ( l,
          push Event.init_tid 0
            (Event.Write { loc = l; value = Program.initial_value p l; order = Instr.Plain })
        ))
      locations
  in
  let po = ref Relation.empty in
  let addr = ref Relation.empty in
  let data = ref Relation.empty in
  let ctrl = ref Relation.empty in
  let rmw = ref Relation.empty in
  let read_global = Hashtbl.create 16 in
  (* (tid, read index) -> global id *)
  Array.iteri
    (fun tid run ->
      let ids =
        List.mapi
          (fun po_index e ->
            let gid = push tid po_index e.l_action in
            (match e.l_read_index with
            | Some i -> Hashtbl.replace read_global (tid, i) gid
            | None -> ());
            (gid, e))
          run.events
      in
      (* Transitive program order within the thread. *)
      List.iteri
        (fun i (gi, _) ->
          List.iteri (fun j (gj, _) -> if i < j then po := Relation.add gi gj !po) ids)
        ids;
      List.iter
        (fun (gid, e) ->
          let resolve idx = Hashtbl.find read_global (tid, idx) in
          List.iter (fun i -> addr := Relation.add (resolve i) gid !addr) e.l_addr_deps;
          List.iter (fun i -> data := Relation.add (resolve i) gid !data) e.l_data_deps;
          List.iter (fun i -> ctrl := Relation.add (resolve i) gid !ctrl) e.l_ctrl_deps;
          Option.iter (fun i -> rmw := Relation.add (resolve i) gid !rmw) e.l_rmw_source)
        ids)
    runs;
  let all_events =
    let arr = Array.make !next_id (List.hd !events) in
    List.iter (fun (e : Event.t) -> arr.(e.Event.id) <- e) !events;
    arr
  in
  (* Enumerate rf: each read picks a same-location same-value write. *)
  let reads =
    Array.to_list all_events |> List.filter Event.is_read |> List.map (fun e -> e.Event.id)
  in
  let writes =
    Array.to_list all_events |> List.filter Event.is_write |> List.map (fun e -> e.Event.id)
  in
  let rf_choices =
    List.map
      (fun r ->
        let er = all_events.(r) in
        let candidates =
          List.filter
            (fun w ->
              let ew = all_events.(w) in
              Event.same_loc ew er && Event.value ew = Event.value er)
            writes
        in
        List.map (fun w -> (w, r)) candidates)
      reads
  in
  if List.exists (fun c -> c = []) rf_choices then []
  else begin
    let rf_assignments = cartesian rf_choices in
    (* Enumerate co: per-location permutation of non-init writes,
       init first. *)
    let co_per_loc =
      List.map
        (fun l ->
          let init_id = List.assoc l init_ids in
          let others =
            List.filter
              (fun w -> w <> init_id && Event.loc all_events.(w) = Some l)
              writes
          in
          List.map (fun perm -> init_id :: perm) (permutations others))
        locations
    in
    let co_assignments = cartesian co_per_loc in
    let co_relation chains =
      List.fold_left
        (fun acc chain ->
          let rec pairs = function
            | [] | [ _ ] -> []
            | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
          in
          List.fold_left (fun acc (a, b) -> Relation.add a b acc) acc (pairs chain))
        Relation.empty chains
    in
    List.concat_map
      (fun rf_pairs ->
        let rf = Relation.of_list rf_pairs in
        List.filter_map
          (fun chains ->
            let co = co_relation chains in
            let x =
              {
                Execution.events = all_events;
                po = !po;
                rf;
                co;
                addr = !addr;
                data = !data;
                ctrl = !ctrl;
                rmw = !rmw;
              }
            in
            match Execution.well_formed x with Ok () -> Some x | Error _ -> None)
          co_assignments)
      rf_assignments
  end

let outcome_of (p : Program.t) (runs : run array) (x : Execution.t) =
  ignore p;
  let registers =
    Array.to_list runs
    |> List.mapi (fun tid run -> List.map (fun (r, v) -> ((tid, r), v)) run.final_regs)
    |> List.concat |> List.sort compare
  in
  { registers; memory = Execution.final_memory x }

let candidate_executions ?(fuel = 1024) (p : Program.t) =
  (match Program.validate p with Ok () -> () | Error msg -> invalid_arg msg);
  let pool = value_pool ~fuel p in
  let per_thread_runs =
    Array.to_list (Array.map (fun thread -> run_thread ~fuel ~pool thread) p.Program.threads)
  in
  let combos = cartesian per_thread_runs in
  List.concat_map
    (fun runs ->
      let runs = Array.of_list runs in
      List.map (fun x -> (x, outcome_of p runs x)) (executions_of_runs p runs))
    combos

let allowed_outcomes model p =
  candidate_executions p
  |> List.filter (fun (x, _) -> Axiomatic.consistent model x)
  |> List.map snd
  |> List.sort_uniq compare_outcome

let outcome_allowed model p query =
  let matches (full : outcome) =
    List.for_all
      (fun (key, v) ->
        match List.assoc_opt key full.registers with Some v' -> v = v' | None -> false)
      query.registers
    && List.for_all
         (fun (l, v) ->
           match List.assoc_opt l full.memory with Some v' -> v = v' | None -> false)
         query.memory
  in
  List.exists matches (allowed_outcomes model p)
