(** Target architecture descriptors.

    The paper evaluates on an X-Gene 1 ARMv8 (8 cores @ 2.4 GHz) and a
    POWER7 (12 cores @ 3.7 GHz).  We model both.  An [t] value is
    carried through every layer - fencing strategies, timing models
    and the simulator are all parameterised by it. *)

type t = Armv8 | Power7

val all : t list

val name : t -> string
(** Short lowercase name: ["arm"] or ["power"], matching the paper's
    figure legends. *)

val long_name : t -> string

val clock_ghz : t -> float
(** Paper hardware: 2.4 GHz ARMv8 X-Gene 1; 3.7 GHz POWER7. *)

val cycle_ns : t -> float
(** Nanoseconds per cycle, [1 / clock_ghz]. *)

val core_count : t -> int
(** Cores used in the paper's experiments (8 on ARM, 12 on POWER). *)

val cycles_of_ns : t -> float -> int
(** Round a duration in ns to cycles (at least 0). *)

val ns_of_cycles : t -> int -> float

val has_smt_interference : t -> bool
(** The paper attributes xalan's instability on POWER to the CPU's
    symmetric multithreading strategy; the POWER model carries an SMT
    interference noise source. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
