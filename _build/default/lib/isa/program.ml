type thread = Instr.t array

type t = {
  name : string;
  location_names : string array;
  init : (Instr.loc * Instr.value) list;
  threads : thread array;
}

let make ?(location_names = [||]) ?(init = []) ~name threads =
  { name; location_names; init; threads = Array.of_list threads }

let thread_count t = Array.length t.threads

let static_locations_of_instr instr =
  let of_operand = function Instr.Imm l -> [ l ] | Instr.Reg _ -> [] in
  match instr with
  | Instr.Load { addr; _ }
  | Instr.Store { addr; _ }
  | Instr.Load_exclusive { addr; _ }
  | Instr.Store_exclusive { addr; _ } ->
      of_operand addr
  | _ -> []

let locations t =
  let module IS = Set.Make (Int) in
  let set = ref IS.empty in
  List.iter (fun (l, _) -> set := IS.add l !set) t.init;
  Array.iter
    (fun thread ->
      Array.iter
        (fun instr -> List.iter (fun l -> set := IS.add l !set) (static_locations_of_instr instr))
        thread)
    t.threads;
  IS.elements !set

let location_name t l =
  if l >= 0 && l < Array.length t.location_names then t.location_names.(l)
  else "m" ^ string_of_int l

let initial_value t l = match List.assoc_opt l t.init with Some v -> v | None -> 0

let max_register t =
  let max_reg = ref 0 in
  let consider r = if r > !max_reg then max_reg := r in
  Array.iter
    (fun thread ->
      Array.iter
        (fun instr ->
          List.iter consider (Instr.input_regs instr);
          Option.iter consider (Instr.output_reg instr))
        thread)
    t.threads;
  !max_reg

let instruction_count t =
  Array.fold_left (fun acc thread -> acc + Array.length thread) 0 t.threads

let validate t =
  let problem = ref None in
  Array.iteri
    (fun tid thread ->
      Array.iteri
        (fun i instr ->
          let check_offset offset =
            let target = i + 1 + offset in
            if target < 0 || target > Array.length thread then
              problem :=
                Some
                  (Printf.sprintf "%s: thread %d instr %d: branch target %d out of range" t.name
                     tid i target)
          in
          (match instr with
          | Instr.Cbnz { offset; _ } | Instr.Cbz { offset; _ } -> check_offset offset
          | _ -> ());
          List.iter
            (fun r ->
              if r < 0 then
                problem :=
                  Some (Printf.sprintf "%s: thread %d instr %d: negative register" t.name tid i))
            (Instr.input_regs instr))
        thread)
    t.threads;
  match !problem with None -> Ok () | Some msg -> Error msg
