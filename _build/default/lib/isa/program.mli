(** Multi-threaded litmus-style programs.

    A program is a set of threads (straight-line instruction arrays,
    possibly with short relative branches), an initial memory state,
    and human-readable names for locations so tests print as
    [x], [y], ... instead of location indices. *)

type thread = Instr.t array

type t = {
  name : string;
  location_names : string array;
      (** [location_names.(l)] names location [l]; locations not
          listed print as ["m<l>"]. *)
  init : (Instr.loc * Instr.value) list;
      (** Initial values; unlisted locations start at 0. *)
  threads : thread array;
}

val make :
  ?location_names:string array ->
  ?init:(Instr.loc * Instr.value) list ->
  name:string ->
  Instr.t array list ->
  t

val thread_count : t -> int

val locations : t -> Instr.loc list
(** All location indices that appear in any thread (statically
    visible, i.e. immediate addresses) or in the initial state,
    sorted. *)

val location_name : t -> Instr.loc -> string

val initial_value : t -> Instr.loc -> Instr.value

val max_register : t -> Instr.reg
(** Largest register index used, for sizing register files. *)

val instruction_count : t -> int

val validate : t -> (unit, string) result
(** Static checks: branch offsets stay in range, register indices are
    non-negative.  The litmus library calls this for every test. *)
