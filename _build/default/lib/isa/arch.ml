type t = Armv8 | Power7

let all = [ Armv8; Power7 ]

let name = function Armv8 -> "arm" | Power7 -> "power"

let long_name = function
  | Armv8 -> "ARMv8 (X-Gene 1, 8 cores @ 2.4GHz)"
  | Power7 -> "POWER7 (12 cores @ 3.7GHz)"

let clock_ghz = function Armv8 -> 2.4 | Power7 -> 3.7

let cycle_ns t = 1. /. clock_ghz t

let core_count = function Armv8 -> 8 | Power7 -> 12

let cycles_of_ns t ns = max 0 (int_of_float (Float.round (ns /. cycle_ns t)))

let ns_of_cycles t cycles = float_of_int cycles *. cycle_ns t

let has_smt_interference = function Armv8 -> false | Power7 -> true

let of_string = function
  | "arm" | "armv8" -> Some Armv8
  | "power" | "power7" -> Some Power7
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (name t)
