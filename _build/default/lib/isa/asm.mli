(** Assembly pretty-printing for programs and instruction sequences.

    Used by the litmus tooling to display tests and by the bench
    harness to regenerate the paper's Figures 2 and 3 (the ARM and
    POWER cost-function listings). *)

val instr : Arch.t -> Instr.t -> string
(** Render one instruction in the given architecture's syntax.
    Immediate addresses render as [&name]-style absolute operands
    ([&m3] when no name is known). *)

val instr_named : Arch.t -> (Instr.loc -> string) -> Instr.t -> string
(** Like [instr] but resolving location names through the given
    function. *)

val thread : Arch.t -> (Instr.loc -> string) -> Program.thread -> string list

val program : Arch.t -> Program.t -> string
(** Multi-column litmus-style listing with the initial state header. *)
