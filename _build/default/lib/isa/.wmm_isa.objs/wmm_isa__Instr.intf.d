lib/isa/instr.mli: Arch
