lib/isa/asm.ml: Arch Array Buffer Instr List Printf Program String
