lib/isa/instr.ml: Arch
