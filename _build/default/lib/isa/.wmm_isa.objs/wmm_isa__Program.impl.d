lib/isa/program.ml: Array Instr Int List Option Printf Set
