lib/isa/arch.ml: Float Format
