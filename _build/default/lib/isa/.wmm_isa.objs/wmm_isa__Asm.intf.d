lib/isa/asm.mli: Arch Instr Program
