open Wmm_isa
open Wmm_machine

(** Cost functions: the spin loops of the paper's Figures 2 and 3.

    A cost function is a small instruction sequence with a parameter
    [n] (the loop iteration count) controlling how much time it
    takes.  It is injected inline into a code path; because it only
    touches a register (and, when no scratch register is available,
    one stack slot), it perturbs the memory subsystem as little as
    possible.  The [light] variant applies when the platform has a
    scratch register available (OpenJDK on ARMv8 has x9), eliding the
    stack spill. *)

type t = {
  arch : Arch.t;
  light : bool;  (** Scratch register available: no stack spill. *)
  iterations : int;
}

val make : ?light:bool -> Arch.t -> int -> t

val assembly : t -> string list
(** The exact instruction listing, matching the paper's Fig. 2 (ARM)
    and Fig. 3 (POWER). *)

val uop : t -> Uop.t
(** The simulator micro-op representing an inline injection. *)

val nop_padding : Arch.t -> t -> Uop.t
(** The placeholder [nop] sequence of equal instruction count used in
    base cases to keep binary layout identical. *)

val instruction_count : t -> int

val standalone_ns : t -> float
(** Execution time measured standalone in a timing loop, as used for
    the paper's Fig. 4 calibration.  Non-linear for small [n] due to
    the pipeline floor. *)

val calibrate : ?light:bool -> Arch.t -> int list -> (int * float) list
(** [(n, ns)] calibration table over the given iteration counts - the
    data behind Fig. 4.  Costs are subsequently expressed in ns using
    this table, matching the paper's methodology. *)
