lib/costfn/cost_function.mli: Arch Uop Wmm_isa Wmm_machine
