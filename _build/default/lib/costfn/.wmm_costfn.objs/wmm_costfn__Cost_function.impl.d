lib/costfn/cost_function.ml: Arch List Timing Uop Wmm_isa Wmm_machine
