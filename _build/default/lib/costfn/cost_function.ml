open Wmm_isa
open Wmm_machine

type t = { arch : Arch.t; light : bool; iterations : int }

let make ?(light = false) arch iterations =
  if iterations < 0 then invalid_arg "Cost_function.make: negative iteration count";
  (* The scratch-register variant only exists where a scratch register
     is guaranteed; the paper uses it for OpenJDK on ARMv8 (x9). *)
  let light = light && arch = Arch.Armv8 in
  { arch; light; iterations }

let assembly t =
  let n = string_of_int t.iterations in
  match (t.arch, t.light) with
  | Arch.Armv8, false ->
      [
        "stp x9, xzr, [sp, #-16]!";
        "mov x9, #" ^ n;
        "subs x9, x9, #1";
        "bne -4";
        "ldp x9, xzr, [sp], #16";
      ]
  | Arch.Armv8, true -> [ "mov x9, #" ^ n; "subs x9, x9, #1"; "bne -4" ]
  | Arch.Power7, _ ->
      [
        "std r11, -8, r1";
        "li r11, " ^ n;
        "addi r11, r11, -1";
        "cmpwi cr7, r11, 0";
        "bne cr7, -8";
        "ld r11, -8, r1";
      ]

let instruction_count t = List.length (assembly t)

let uop t =
  if t.light then Uop.Spin_light t.iterations else Uop.Spin t.iterations

let nop_padding _arch t = Uop.Nops (instruction_count t)

let standalone_ns t =
  let timing = Timing.for_arch t.arch in
  Timing.ns_of_cycles timing (Timing.spin_cycles timing ~light:t.light t.iterations)

let calibrate ?(light = false) arch counts =
  List.map (fun n -> (n, standalone_ns (make ~light arch n))) counts
