(** The paper's section 6 future work, realised:

    - redundant-barrier elimination as a model JIT optimisation, with
      an ablation showing what barrier coalescing is worth per
      benchmark;
    - the "dedicated cost function IR node" idea: probes placed at
      every site where the optimisation fires, so the sensitivity of
      a benchmark to the *optimisation code path* can be fitted with
      eq. 1 like any other code path;
    - model-based extrapolation (a Coz-style virtual speedup): use a
      fitted k to *predict* the gain from making a code path cheaper,
      then validate the prediction against actually performing the
      elimination. *)

open Wmm_isa
open Wmm_util
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

let arch = Arch.Armv8

let samples () = if Exp_common.fast () then 3 else 6

(* Run a profile with the optimiser applied to the generated streams. *)
let run_optimised ?probe (profile : Profile.t) platform ~seed =
  let streams = Generate.streams profile platform ~seed in
  let optimised, eliminated = Optimizer.optimise_streams ?probe streams in
  let config = Perf.config ~seed ~cores:(max 1 (Array.length optimised)) arch in
  let stats = Perf.run config optimised in
  (Perf.wall_ns config stats, eliminated)

let run_plain (profile : Profile.t) platform ~seed =
  let streams = Generate.streams profile platform ~seed in
  let config = Perf.config ~seed ~cores:(max 1 (Array.length streams)) arch in
  let stats = Perf.run config streams in
  Perf.wall_ns config stats

let ablation () =
  let table =
    Table.create
      [ "benchmark"; "fences eliminated"; "speedup from coalescing"; "per 1k uops" ]
  in
  List.iter
    (fun (profile : Profile.t) ->
      let platform = Generate.Jvm_platform (Jvm.default arch) in
      let seeds = List.init (samples ()) (fun i -> 101 + (i * 37)) in
      let base = List.map (fun seed -> run_plain profile platform ~seed) seeds in
      let optimised = List.map (fun seed -> run_optimised profile platform ~seed) seeds in
      let eliminated = snd (List.hd optimised) in
      let speedup =
        Stats.geometric_mean (Array.of_list base)
        /. Stats.geometric_mean (Array.of_list (List.map fst optimised))
      in
      let uops =
        Array.fold_left
          (fun acc s -> acc + Array.length s)
          0
          (Generate.streams ~units_override:profile.Profile.units_per_thread profile
             platform ~seed:101)
      in
      Table.add_row table
        [
          profile.Profile.name;
          string_of_int eliminated;
          Table.percent_cell (speedup -. 1.);
          Printf.sprintf "%.1f" (1000. *. float_of_int eliminated /. float_of_int uops);
        ])
    [ Dacapo.spark; Dacapo.h2; Dacapo.xalan; Dacapo.sunflow ];
  table

(* Sensitivity of a benchmark to the optimisation code path itself:
   probes at elimination sites, swept like any other code path. *)
let optimisation_sensitivity (profile : Profile.t) =
  let platform = Generate.Jvm_platform (Jvm.default arch) in
  let seeds = List.init (samples ()) (fun i -> 211 + (i * 61)) in
  let measure probe =
    Stats.geometric_mean
      (Array.of_list (List.map (fun seed -> fst (run_optimised ?probe profile platform ~seed)) seeds))
  in
  let base_time = measure (Some (Uop.Nops 3)) in
  let counts = if Exp_common.fast () then [ 8; 64; 512 ] else [ 1; 4; 16; 64; 256; 512 ] in
  let points =
    List.map
      (fun n ->
        let cf = Wmm_costfn.Cost_function.make ~light:true arch n in
        let time = measure (Some (Wmm_costfn.Cost_function.uop cf)) in
        (Wmm_costfn.Cost_function.standalone_ns cf, base_time /. time))
      counts
  in
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  (points, Sensitivity.fit_k ~xs ~ys)

(* Predicted-vs-actual: use the all-barriers sensitivity to predict
   the gain of barrier coalescing, then compare with the measured
   ablation. *)
let extrapolation (profile : Profile.t) =
  let platform = Generate.Jvm_platform (Jvm.default arch) in
  let light = true in
  let sweep =
    Experiment.sweep ~samples:(samples ()) ~light ~code_path:"all"
      ~iteration_counts:(Exp_common.sweep_counts ())
      ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf -> Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  let k = sweep.Experiment.fit.Sensitivity.k in
  (* The elimination removes a fraction of barrier time; predict via
     eq. 1 evaluated below the baseline (a < 1 is a speedup). *)
  let predicted savings_ns = Sensitivity.performance ~k ~a:(1. -. savings_ns) in
  let seeds = List.init (samples ()) (fun i -> 311 + (i * 29)) in
  let base = List.map (fun seed -> run_plain profile platform ~seed) seeds in
  let optimised = List.map (fun seed -> fst (run_optimised profile platform ~seed)) seeds in
  let actual =
    Stats.geometric_mean (Array.of_list base)
    /. Stats.geometric_mean (Array.of_list optimised)
  in
  (* How many ns per invocation would explain the actual speedup? *)
  let implied = Sensitivity.cost_of_change ~k ~p:actual in
  (k, actual, implied, predicted)

let report () =
  let buffer = Buffer.create 2048 in
  Buffer.add_string buffer
    (Exp_common.header "Section 6: barrier coalescing and optimisation code paths");
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (Table.render (ablation ()));
  Buffer.add_string buffer "\n\nSensitivity to the coalescing optimisation (probe at every site):\n";
  List.iter
    (fun (profile : Profile.t) ->
      let _, fit = optimisation_sensitivity profile in
      Buffer.add_string buffer
        (Printf.sprintf "  %-8s %s\n" profile.Profile.name (Exp_common.fmt_fit fit)))
    [ Dacapo.spark; Dacapo.h2 ];
  let k, actual, implied, predicted = extrapolation Dacapo.spark in
  Buffer.add_string buffer
    (Printf.sprintf
       "\nModel extrapolation (spark): fitted k=%.5f; coalescing speedup measured %+.1f%%,\n\
        implying %.1f ns saved per barrier invocation (eq. 2).  Model prediction for a\n\
        1 ns saving: %+.1f%%; for 2 ns: %+.1f%%.\n"
       k
       ((actual -. 1.) *. 100.)
       (-.implied)
       ((predicted 1. -. 1.) *. 100.)
       ((predicted 2. -. 1.) *. 100.));
  Buffer.contents buffer
