(** The in-text JVM results of paper sections 4.2 and 4.2.1:

    - T1: nop insertion into every elemental barrier (3 instructions
      on ARM, 6 on POWER): peak drop 4.5% (h2/ARM), mean 1.9% on ARM
      and 0.7% on POWER.
    - T2: the StoreStore experiment.  ARM [dmb ishst -> dmb ish]:
      -0.7%, inferred cost +1.8 ns, with microbenchmarks unable to
      separate the instructions.  POWER [lwsync -> sync]: -12.5%,
      inferred cost +11.7 ns against microbenchmark costs of 6.1 ns
      (lwsync) and 18.9 ns (sync); mean inferred cost over the other
      benchmarks 11.8 ns, i.e. POWER's behaviour is workload
      agnostic while ARM's is not.
    - T3: memory barriers vs load-acquire/store-release on ARM
      (JDK9): xalan +2.9%, sunflow +3.0%, h2 -0.3%, spark -0.5%,
      tomcat -1.7%, others not significant.
    - T4: the lock-path DMB-elimination patch (8135187) on spark/ARM:
      +2.9% under load-acquire/store-release, -1% under barriers. *)

open Wmm_isa
open Wmm_util
open Wmm_machine
open Wmm_platform
open Wmm_workload
open Wmm_core

let samples () = Exp_common.samples ()

(* ------------------------------------------------------------------ *)
(* T1: nop insertion.                                                  *)
(* ------------------------------------------------------------------ *)

let nop_table () =
  let table = Table.create [ "benchmark"; "arch"; "relative perf"; "change" ] in
  let drops =
    List.concat_map
      (fun arch ->
        let light = Exp_common.light_for arch in
        let nops = Exp_common.nop_uop arch ~light in
        List.map
          (fun (profile : Profile.t) ->
            let rel =
              Experiment.relative_performance ~samples:(samples ()) profile
                ~base:(Exp_common.jvm_platform arch)
                ~test:(Exp_common.jvm_platform ~inject_all:[ nops ] arch)
            in
            Table.add_row table
              [
                profile.Profile.name;
                Arch.name arch;
                Exp_common.fmt_summary rel;
                Exp_common.fmt_pct_change rel;
              ];
            (arch, rel.Stats.gmean))
          Dacapo.all)
      Arch.all
  in
  let mean_for arch =
    let values =
      List.filter_map (fun (a, v) -> if a = arch then Some v else None) drops
    in
    Stats.mean (Array.of_list values)
  in
  let peak = List.fold_left (fun acc (_, v) -> min acc v) 1. drops in
  ( table,
    Printf.sprintf
      "mean drop: arm %.1f%% (paper 1.9%%), power %.1f%% (paper 0.7%%); peak drop %.1f%% (paper 4.5%%)"
      ((1. -. mean_for Arch.Armv8) *. 100.)
      ((1. -. mean_for Arch.Power7) *. 100.)
      ((1. -. peak) *. 100.) )

(* ------------------------------------------------------------------ *)
(* T2: the StoreStore swap.                                            *)
(* ------------------------------------------------------------------ *)

let storestore_fit arch =
  (* Sensitivity of spark to the StoreStore code path, needed to
     convert the swap's relative performance into a cost via eq. 2. *)
  let light = Exp_common.light_for arch in
  Experiment.sweep ~samples:(samples ()) ~light
    ~iteration_counts:(Exp_common.sweep_counts ())
    ~code_path:"StoreStore"
    ~base:
      (Exp_common.jvm_platform
         ~inject:[ (Barrier.Store_store, [ Exp_common.nop_uop arch ~light ]) ]
         arch)
    ~inject:(fun cf ->
      Exp_common.jvm_platform
        ~inject:[ (Barrier.Store_store, [ Wmm_costfn.Cost_function.uop cf ]) ]
        arch)
    Dacapo.spark

let swap_relative arch profile =
  Experiment.relative_performance ~samples:(samples ()) profile
    ~base:(Exp_common.jvm_platform arch)
    ~test:(Exp_common.jvm_platform ~overrides:[ (Barrier.Store_store, Uop.Fence_full) ] arch)

let storestore_table () =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun arch ->
      let timing = Timing.for_arch arch in
      let fit = (storestore_fit arch).Experiment.fit in
      let rel = swap_relative arch Dacapo.spark in
      let inferred = Experiment.inferred_cost_ns fit rel in
      let micro_weak, micro_strong, weak_name, strong_name =
        match arch with
        | Arch.Armv8 ->
            ( Perf.sequence_cost_ns timing [ Uop.Fence_store ],
              Perf.sequence_cost_ns timing [ Uop.Fence_full ],
              "dmb ishst",
              "dmb ish" )
        | Arch.Power7 ->
            ( Perf.sequence_cost_ns timing [ Uop.Fence_lw ],
              Perf.sequence_cost_ns timing [ Uop.Fence_full ],
              "lwsync",
              "sync" )
      in
      (* The paper also averages the inferred cost over the other
         benchmarks (excluding the unstable xalan). *)
      let others =
        List.filter
          (fun (p : Profile.t) ->
            p.Profile.name <> "spark" && p.Profile.name <> "xalan")
          Dacapo.all
      in
      let other_costs =
        List.map
          (fun (p : Profile.t) ->
            let sweep =
              Experiment.sweep ~samples:(samples ())
                ~light:(Exp_common.light_for arch)
                ~iteration_counts:(Exp_common.sweep_counts ())
                ~code_path:"StoreStore"
                ~base:
                  (Exp_common.jvm_platform
                     ~inject:
                       [
                         ( Barrier.Store_store,
                           [ Exp_common.nop_uop arch ~light:(Exp_common.light_for arch) ] );
                       ]
                     arch)
                ~inject:(fun cf ->
                  Exp_common.jvm_platform
                    ~inject:[ (Barrier.Store_store, [ Wmm_costfn.Cost_function.uop cf ]) ]
                    arch)
                p
            in
            Experiment.inferred_cost_ns sweep.Experiment.fit (swap_relative arch p))
          others
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "%s: %s -> %s on spark: %s (%s); sensitivity %s\n\
           \  inferred cost change: %+.1f ns (paper: %s)\n\
           \  microbenchmark: %s %.1f ns, %s %.1f ns (paper: %s)\n\
           \  mean inferred over other stable benchmarks: %+.1f ns (paper: 11.8 ns on POWER)\n"
           (Arch.name arch) weak_name strong_name
           (Exp_common.fmt_pct_change (swap_relative arch Dacapo.spark))
           (match arch with
           | Arch.Armv8 -> "paper: -0.7%"
           | Arch.Power7 -> "paper: -12.5%")
           (Exp_common.fmt_fit fit) inferred
           (match arch with Arch.Armv8 -> "+1.8 ns" | Arch.Power7 -> "+11.7 ns")
           weak_name micro_weak strong_name micro_strong
           (match arch with
           | Arch.Armv8 -> "indistinguishable"
           | Arch.Power7 -> "6.1 ns vs 18.9 ns")
           (Stats.mean (Array.of_list other_costs))))
    Arch.all;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* T3: barriers vs load-acquire/store-release on ARM.                  *)
(* ------------------------------------------------------------------ *)

let paper_lasr = function
  | "xalan" -> "+2.9%"
  | "sunflow" -> "+3.0%"
  | "h2" -> "-0.3%"
  | "spark" -> "-0.5%"
  | "tomcat" -> "-1.7%"
  | "lusearch" | "tradebeans" | "tradesoap" -> "n.s."
  | _ -> "?"

let lasr_table () =
  let arch = Arch.Armv8 in
  let table = Table.create [ "benchmark"; "la/sr vs barriers"; "change"; "paper" ] in
  List.iter
    (fun (profile : Profile.t) ->
      let rel =
        Experiment.relative_performance ~samples:(samples ()) profile
          ~base:(Exp_common.jvm_platform ~mode:Jvm.Barriers arch)
          ~test:(Exp_common.jvm_platform ~mode:Jvm.Acqrel arch)
      in
      Table.add_row table
        [
          profile.Profile.name;
          Exp_common.fmt_summary rel;
          Exp_common.fmt_pct_change rel;
          paper_lasr profile.Profile.name;
        ])
    Dacapo.all;
  table

(* ------------------------------------------------------------------ *)
(* T4: the lock-path DMB elimination patch.                            *)
(* ------------------------------------------------------------------ *)

let lock_patch_table () =
  let arch = Arch.Armv8 in
  let table = Table.create [ "mode"; "patched vs unpatched (spark)"; "change"; "paper" ] in
  List.iter
    (fun (mode, name, paper) ->
      let rel =
        Experiment.relative_performance ~samples:(samples ()) Dacapo.spark
          ~base:(Exp_common.jvm_platform ~mode arch)
          ~test:(Exp_common.jvm_platform ~mode ~lock_patch:true arch)
      in
      Table.add_row table
        [ name; Exp_common.fmt_summary rel; Exp_common.fmt_pct_change rel; paper ])
    [
      (Jvm.Acqrel, "load-acquire/store-release", "+2.9%");
      (Jvm.Barriers, "memory barriers", "-1.0%");
    ];
  table

let report () =
  let nop, nop_summary = nop_table () in
  String.concat "\n"
    [
      Exp_common.header "In-text table: nop insertion into all elemental barriers (4.2)";
      Table.render nop;
      nop_summary;
      "";
      Exp_common.header "In-text table: the StoreStore swap (4.2.1)";
      storestore_table ();
      Exp_common.header "In-text table: barriers vs load-acquire/store-release, ARM (4.2.1)";
      Table.render (lasr_table ());
      "";
      Exp_common.header "In-text table: lock-path DMB elimination patch, spark/ARM (4.2.1)";
      Table.render (lock_patch_table ());
    ]
