(** The paper's section 3 argument against counter instrumentation,
    made quantitative.

    "There is an inherent performance cost from counter
    instrumentation which might be hard to predict or unstable, [and]
    counters may have subtle effects on the performance of the memory
    subsystem in multi-threaded programs."

    We instrument every elemental JVM barrier with (a) a shared
    per-code-path counter (what naive instrumentation does), (b)
    per-thread counter lines, and (c) an ideal register counter, and
    compare their overhead and the run-to-run instability they add,
    against the nop-padded cost-function baseline whose overhead is
    small and predictable. *)

open Wmm_isa
open Wmm_util
open Wmm_core
open Wmm_workload

let kinds =
  [
    (Instrumentation.Shared_counter, "shared counter");
    (Instrumentation.Per_thread_counter, "per-thread counter");
    (Instrumentation.Register_counter, "register counter (ideal)");
  ]

let report () =
  let arch = Arch.Armv8 in
  let samples = if Exp_common.fast () then 3 else 8 in
  let table =
    Table.create [ "instrumentation"; "benchmark"; "overhead"; "cv base"; "cv instrumented" ]
  in
  List.iter
    (fun (profile : Profile.t) ->
      List.iter
        (fun (kind, label) ->
          let p = Instrumentation.measure_perturbation ~samples arch profile kind in
          Table.add_row table
            [
              label;
              profile.Profile.name;
              Table.percent_cell p.Instrumentation.overhead;
              Printf.sprintf "%.4f" p.Instrumentation.cv_base;
              Printf.sprintf "%.4f" p.Instrumentation.cv_counted;
            ])
        kinds)
    [ Dacapo.spark; Dacapo.h2 ];
  String.concat "\n"
    [
      Exp_common.header "Section 3: counter instrumentation vs cost functions";
      "Shared counters bounce cache lines between cores: their overhead is";
      "large and workload-dependent, unlike the predictable nop/cost-function";
      "probes the paper adopts.";
      Table.render table;
    ]
