(** Paper Figs. 2 and 3: the ARM and POWER cost-function listings,
    regenerated from the cost-function module (including the ARMv8
    scratch-register note). *)

open Wmm_isa
open Wmm_costfn

let listing title cf =
  title :: List.map (fun line -> "  " ^ line) (Cost_function.assembly cf)

let report () =
  let arm = Cost_function.make Arch.Armv8 0 in
  let arm_light = Cost_function.make ~light:true Arch.Armv8 0 in
  let power = Cost_function.make Arch.Power7 0 in
  String.concat "\n"
    (Exp_common.header "Figures 2-3: cost function instruction sequences"
     :: listing "ARMv8 (Fig. 2), N the loop iteration count:" arm
    @ listing "ARMv8 with scratch register x9 (OpenJDK):" arm_light
    @ listing "POWER (Fig. 3), valid when cr7 is unused (OpenJDK):" power)
