lib/experiments/rbd.ml: Arch Array Exp_common Experiment Kernel Kernelbench List Printf Profile Stats String Table Wmm_core Wmm_costfn Wmm_isa Wmm_platform Wmm_util Wmm_workload
