lib/experiments/exp_common.ml: Arch Generate Jvm Kernel List Printf Sensitivity String Sys Wmm_core Wmm_costfn Wmm_isa Wmm_platform Wmm_util Wmm_workload
