lib/experiments/counters.ml: Arch Dacapo Exp_common Instrumentation List Printf Profile String Table Wmm_core Wmm_isa Wmm_util Wmm_workload
