lib/experiments/fig6.ml: Arch Barrier Cost_function Dacapo Exp_common Experiment List String Table Wmm_core Wmm_costfn Wmm_isa Wmm_platform Wmm_util Wmm_workload
