lib/experiments/fig5.ml: Arch Array Buffer Cost_function Dacapo Exp_common Experiment List Printf Profile Sensitivity Stats Table Wmm_core Wmm_costfn Wmm_isa Wmm_util Wmm_workload
