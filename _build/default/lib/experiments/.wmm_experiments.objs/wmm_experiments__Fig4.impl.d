lib/experiments/fig4.ml: Arch Cost_function Exp_common List String Table Wmm_costfn Wmm_isa Wmm_util
