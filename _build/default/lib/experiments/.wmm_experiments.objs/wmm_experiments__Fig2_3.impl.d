lib/experiments/fig2_3.ml: Arch Cost_function Exp_common List String Wmm_costfn Wmm_isa
