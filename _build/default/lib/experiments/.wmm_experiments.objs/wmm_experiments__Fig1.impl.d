lib/experiments/fig1.ml: Array Exp_common Float List Printf Rng Sensitivity String Table Wmm_core Wmm_util
