lib/experiments/exp_common.mli: Arch Barrier Generate Jvm Kernel Sensitivity Uop Wmm_core Wmm_isa Wmm_machine Wmm_platform Wmm_util Wmm_workload
