(** Paper Fig. 4: time taken to execute the cost functions as the
    loop count grows - linear only for large N because of the
    pipeline floor.  Series: arm (stack spill), arm-nostack (scratch
    register), power. *)

open Wmm_util
open Wmm_isa
open Wmm_costfn

let counts = List.init 11 (fun i -> 1 lsl i)

let series () =
  [
    ("arm", Cost_function.calibrate Arch.Armv8 counts);
    ("arm-nostack", Cost_function.calibrate ~light:true Arch.Armv8 counts);
    ("power", Cost_function.calibrate Arch.Power7 counts);
  ]

let report () =
  let table = Table.create [ "loop iterations"; "arm (ns)"; "arm-nostack (ns)"; "power (ns)" ] in
  let all = series () in
  let lookup name n = List.assoc n (List.assoc name all) in
  List.iter
    (fun n ->
      Table.add_row table
        [
          string_of_int n;
          Table.float_cell ~decimals:1 (lookup "arm" n);
          Table.float_cell ~decimals:1 (lookup "arm-nostack" n);
          Table.float_cell ~decimals:1 (lookup "power" n);
        ])
    counts;
  String.concat "\n"
    [
      Exp_common.header "Figure 4: cost function execution time vs loop count";
      "Flat at small N (pipeline floor), linear at large N, as in the paper.";
      Table.render table;
    ]
