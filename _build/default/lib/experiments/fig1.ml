(** Paper Fig. 1: example of fitting the sensitivity model.

    The paper's figure shows synthetic/sample relative-performance
    points over cost-function sizes 2^0..2^14 and the fitted curve
    with k = 0.00277 +- 2.5%.  We regenerate it by sampling eq. 1 at
    that k with measurement noise and re-fitting. *)

open Wmm_util
open Wmm_core

let true_k = 0.00277

let generate () =
  let rng = Rng.create 1977 in
  let sizes = List.init 15 (fun i -> float_of_int (1 lsl i)) in
  List.map
    (fun a ->
      let p = Sensitivity.performance ~k:true_k ~a in
      (a, p *. exp (Rng.gaussian rng ~mean:0. ~std:0.012)))
    sizes

let report () =
  let points = generate () in
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  let fit = Sensitivity.fit_k ~xs ~ys in
  let table = Table.create [ "cost fn size"; "sample p"; "fitted p" ] in
  List.iter
    (fun (a, p) ->
      Table.add_row table
        [
          Printf.sprintf "2^%d" (int_of_float (Float.round (log a /. log 2.)));
          Table.float_cell p;
          Table.float_cell (Sensitivity.performance ~k:fit.Sensitivity.k ~a);
        ])
    points;
  String.concat "\n"
    [
      Exp_common.header "Figure 1: example sensitivity fit";
      Printf.sprintf "paper: k=0.00277 +-2.5%%   measured: %s" (Exp_common.fmt_fit fit);
      Table.render table;
    ]
