open Wmm_util
open Wmm_machine
open Wmm_platform

type platform = Jvm_platform of Jvm.config | Kernel_platform of Kernel.config

let platform_arch = function
  | Jvm_platform c -> c.Jvm.arch
  | Kernel_platform c -> c.Kernel.arch

(* Draw an integer count from a fractional per-unit rate. *)
let draw_count rng rate =
  let base = int_of_float (floor rate) in
  let frac = rate -. float_of_int base in
  base + (if frac > 0. && Rng.unit_float rng < frac then 1 else 0)

let pick_location (p : Profile.t) rng tid =
  if Rng.unit_float rng < p.Profile.share_ratio then Rng.int rng p.Profile.shared_locations
  else begin
    let base = p.Profile.shared_locations + (tid * p.Profile.working_set) in
    base + Rng.int rng p.Profile.working_set
  end

let shared_location (p : Profile.t) rng = Rng.int rng p.Profile.shared_locations

let jvm_unit_ops (p : Profile.t) (config : Jvm.config) rng tid =
  let r = p.Profile.jvm in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  for _ = 1 to draw_count rng r.Profile.volatile_loads do
    emit (Jvm.Volatile_load (shared_location p rng))
  done;
  for _ = 1 to draw_count rng r.Profile.volatile_stores do
    emit (Jvm.Volatile_store (shared_location p rng))
  done;
  for _ = 1 to draw_count rng r.Profile.cas do
    emit (Jvm.Cas (shared_location p rng))
  done;
  ignore tid;
  let uops = List.concat_map (Jvm.compile config) (List.rev !ops) in
  let lock_uops =
    List.concat
      (List.init (draw_count rng r.Profile.locks) (fun _ ->
           let l = shared_location p rng in
           Jvm.compile config (Jvm.Lock_enter l)
           @ [ Uop.Busy 8 ]
           @ Jvm.compile config (Jvm.Lock_exit l)))
  in
  uops @ lock_uops

let kernel_unit_ops (p : Profile.t) (config : Kernel.config) rng =
  (* Distinct macro invocations are separated by a little surrounding
     work (argument setup, branching): they are not back-to-back in
     real kernel code, so injected cost functions at different sites
     do not overlap in the pipeline. *)
  List.concat_map
    (fun (macro, rate) ->
      List.concat
        (List.init (draw_count rng rate) (fun _ ->
             Kernel.expand config macro ~loc:(shared_location p rng) @ [ Uop.Busy 3 ])))
    p.Profile.kernel

let unit_uops (p : Profile.t) platform rng tid =
  let noise = p.Profile.noise in
  let busy =
    let mean = float_of_int p.Profile.unit_busy_cycles in
    let drawn =
      if noise.Profile.busy_std_frac > 0. then
        Rng.gaussian rng ~mean ~std:(mean *. noise.Profile.busy_std_frac)
      else mean
    in
    max 1 (int_of_float drawn)
  in
  let platform_ops =
    match platform with
    | Jvm_platform c -> jvm_unit_ops p c rng tid
    | Kernel_platform c -> kernel_unit_ops p c rng
  in
  let loads = List.init p.Profile.unit_loads (fun _ -> Uop.Load (pick_location p rng tid)) in
  let stores = List.init p.Profile.unit_stores (fun _ -> Uop.Store (pick_location p rng tid)) in
  let tail =
    if
      noise.Profile.unit_tail_prob > 0.
      && Rng.unit_float rng < noise.Profile.unit_tail_prob
    then
      [ Uop.Busy (int_of_float (Rng.pareto rng ~shape:1.5 ~scale:(float_of_int (max 1 noise.Profile.unit_tail_cycles)))) ]
    else []
  in
  (* Interleave compute with memory traffic and platform operations
     so barriers meet realistic store-buffer occupancy. *)
  [ Uop.Busy (busy / 4) ]
  @ loads
  @ [ Uop.Busy (busy / 4) ]
  @ stores
  @ platform_ops
  @ [ Uop.Busy (busy - (2 * (busy / 4))) ]
  @ tail

let streams ?units_override (p : Profile.t) platform ~seed =
  (match Profile.validate p with Ok () -> () | Error m -> invalid_arg m);
  let arch = platform_arch platform in
  let threads = Profile.effective_threads p arch in
  let units =
    match units_override with Some u -> u | None -> p.Profile.units_per_thread
  in
  let root = Rng.create (seed * 2654435761) in
  Array.init threads (fun tid ->
      let rng = Rng.split root in
      let buffer = ref [] in
      for _ = 1 to units do
        buffer := List.rev_append (unit_uops p platform rng tid) !buffer
      done;
      Array.of_list (List.rev !buffer))

let unit_uop_estimate (p : Profile.t) platform =
  let sample = streams ~units_override:8 p platform ~seed:99 in
  if Array.length sample = 0 then 0
  else Array.length sample.(0) / 8
