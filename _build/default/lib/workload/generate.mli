open Wmm_machine
open Wmm_platform

(** Compile a workload profile into per-core micro-op streams under a
    platform fencing configuration. *)

type platform = Jvm_platform of Jvm.config | Kernel_platform of Kernel.config

val platform_arch : platform -> Wmm_isa.Arch.t

val streams :
  ?units_override:int -> Profile.t -> platform -> seed:int -> Uop.t array array
(** One stream per effective thread.  Generation is deterministic in
    [seed]; different seeds vary the noise draws and access patterns
    but not the rates.  [units_override] replaces
    [units_per_thread] (used to slice response-mode runs into
    requests). *)

val unit_uop_estimate : Profile.t -> platform -> int
(** Rough micro-ops per work unit, for sizing experiments. *)
