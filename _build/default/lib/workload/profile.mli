open Wmm_isa
open Wmm_platform

(** Workload profiles: the synthetic stand-ins for the paper's
    benchmarks.

    A profile describes what one *work unit* of the benchmark does -
    computation, private and shared memory traffic, and how often it
    passes through each platform code path (JVM barriers or kernel
    macros).  The code-path densities are calibrated against the
    sensitivities the paper measures (DESIGN.md section 5): the paper
    itself characterises each benchmark by exactly these densities,
    so this is the faithful degree of freedom to import. *)

type jvm_rates = {
  volatile_loads : float;  (** Per work unit; fractional rates are drawn stochastically. *)
  volatile_stores : float;
  cas : float;
  locks : float;  (** Monitor enter/exit pairs per unit. *)
}

val no_jvm : jvm_rates

type noise = {
  busy_std_frac : float;  (** Gaussian spread of per-unit compute. *)
  unit_tail_prob : float;  (** Probability of a heavy-tailed stall per unit. *)
  unit_tail_cycles : int;  (** Scale of such stalls. *)
  run_jitter : float;
      (** Multiplicative run-level measurement noise (std dev),
          modelling everything the simulator does not: JIT, GC,
          scheduling. *)
  run_tail_prob : float;  (** Probability of an outlier run. *)
  run_tail_frac : float;  (** Magnitude of an outlier run (fraction of run time). *)
  smt_jitter : float;
      (** Extra run-level noise on POWER only - the SMT interference
          the paper blames for xalan's instability there. *)
}

val quiet : noise
(** Negligible noise, for tests. *)

type measurement =
  | Throughput  (** Performance = work units per unit time. *)
  | Response of int
      (** A request/response service: the run is split into this many
          independent requests; both mean and worst-case response
          times are reported (the paper's osm_stack avg/max). *)

type t = {
  name : string;
  threads : int;  (** Capped at the architecture's core count. *)
  units_per_thread : int;
  unit_busy_cycles : int;
  unit_loads : int;
  unit_stores : int;
  working_set : int;  (** Private locations per thread. *)
  shared_locations : int;
  share_ratio : float;  (** Fraction of accesses hitting shared locations. *)
  jvm : jvm_rates;
  kernel : (Kernel.macro * float) list;  (** Invocations per unit. *)
  noise : noise;
  measurement : measurement;
}

val make :
  ?threads:int ->
  ?units_per_thread:int ->
  ?unit_busy_cycles:int ->
  ?unit_loads:int ->
  ?unit_stores:int ->
  ?working_set:int ->
  ?shared_locations:int ->
  ?share_ratio:float ->
  ?jvm:jvm_rates ->
  ?kernel:(Kernel.macro * float) list ->
  ?noise:noise ->
  ?measurement:measurement ->
  string ->
  t

val effective_threads : t -> Arch.t -> int

val validate : t -> (unit, string) result
(** Rates non-negative, thread/unit counts positive, ratios in
    [0, 1]. *)
