open Wmm_isa
open Wmm_platform

type jvm_rates = {
  volatile_loads : float;
  volatile_stores : float;
  cas : float;
  locks : float;
}

let no_jvm = { volatile_loads = 0.; volatile_stores = 0.; cas = 0.; locks = 0. }

type noise = {
  busy_std_frac : float;
  unit_tail_prob : float;
  unit_tail_cycles : int;
  run_jitter : float;
  run_tail_prob : float;
  run_tail_frac : float;
  smt_jitter : float;
}

let quiet =
  {
    busy_std_frac = 0.;
    unit_tail_prob = 0.;
    unit_tail_cycles = 0;
    run_jitter = 0.;
    run_tail_prob = 0.;
    run_tail_frac = 0.;
    smt_jitter = 0.;
  }

type measurement = Throughput | Response of int

type t = {
  name : string;
  threads : int;
  units_per_thread : int;
  unit_busy_cycles : int;
  unit_loads : int;
  unit_stores : int;
  working_set : int;
  shared_locations : int;
  share_ratio : float;
  jvm : jvm_rates;
  kernel : (Kernel.macro * float) list;
  noise : noise;
  measurement : measurement;
}

let default_noise =
  {
    busy_std_frac = 0.05;
    unit_tail_prob = 0.;
    unit_tail_cycles = 0;
    run_jitter = 0.004;
    run_tail_prob = 0.;
    run_tail_frac = 0.;
    smt_jitter = 0.;
  }

let make ?(threads = 4) ?(units_per_thread = 600) ?(unit_busy_cycles = 2000) ?(unit_loads = 24)
    ?(unit_stores = 12) ?(working_set = 1024) ?(shared_locations = 64) ?(share_ratio = 0.1)
    ?(jvm = no_jvm) ?(kernel = []) ?(noise = default_noise) ?(measurement = Throughput) name =
  {
    name;
    threads;
    units_per_thread;
    unit_busy_cycles;
    unit_loads;
    unit_stores;
    working_set;
    shared_locations;
    share_ratio;
    jvm;
    kernel;
    noise;
    measurement;
  }

let effective_threads t arch = min t.threads (Arch.core_count arch)

let validate t =
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  check (t.threads > 0) "threads must be positive";
  check (t.units_per_thread > 0) "units_per_thread must be positive";
  check (t.unit_busy_cycles >= 0) "unit_busy_cycles must be non-negative";
  check (t.unit_loads >= 0 && t.unit_stores >= 0) "memory op counts must be non-negative";
  check (t.working_set > 0) "working_set must be positive";
  check (t.shared_locations > 0) "shared_locations must be positive";
  check (t.share_ratio >= 0. && t.share_ratio <= 1.) "share_ratio outside [0, 1]";
  check
    (t.jvm.volatile_loads >= 0. && t.jvm.volatile_stores >= 0. && t.jvm.cas >= 0.
   && t.jvm.locks >= 0.)
    "jvm rates must be non-negative";
  check (List.for_all (fun (_, r) -> r >= 0.) t.kernel) "kernel rates must be non-negative";
  (match t.measurement with
  | Throughput -> ()
  | Response n -> check (n > 0) "response request count must be positive");
  match !problems with [] -> Ok () | p -> Error (t.name ^ ": " ^ String.concat "; " p)
