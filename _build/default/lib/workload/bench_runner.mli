open Wmm_machine

(** Execute a profile on the performance simulator and extract the
    paper's performance measures. *)

type result = {
  throughput : float;  (** Work units per microsecond across all threads. *)
  wall_ns : float;
  response_mean_ns : float;  (** [nan] unless the profile is response-mode. *)
  response_max_ns : float;  (** [nan] unless the profile is response-mode. *)
  stats : Perf.stats;  (** Simulator statistics of the (last) run. *)
}

val run : Profile.t -> Generate.platform -> seed:int -> result
(** One measured run.  Throughput-mode profiles execute all units in
    one simulation; response-mode profiles are split into the
    profile's request count of independent mini-runs whose times give
    the mean and max response.  Run-level measurement noise
    (JIT/GC/scheduler effects outside the simulator's scope) is
    applied multiplicatively, with the extra SMT term on POWER. *)

val samples : Profile.t -> Generate.platform -> seeds:int list -> result list
