(** Synthetic stand-ins for the paper's JVM benchmarks: the DaCapo
    9.12 subset with notable concurrent behaviour (per Kalibera et
    al.) plus the Apache Spark GraphX PageRank workload.

    Volatile/CAS/lock densities are calibrated so each benchmark's
    sensitivity [k] to the elemental-barrier code paths lands near
    the paper's Fig. 5 fits; noise parameters reproduce the stability
    observations (spark stable on both architectures, xalan unstable
    on POWER due to SMT interference, lusearch/tomcat/tradebeans
    noisy on ARM). *)

val h2 : Profile.t
(** In-memory transactional database: store-heavy, lock-heavy,
    k_arm ~ 0.0034. *)

val lusearch : Profile.t
(** Text search over lucene: read-dominated, k_arm ~ 0.0021,
    unstable. *)

val spark : Profile.t
(** GraphX PageRank on the LiveJournal graph: the paper's most
    sensitive and stable benchmark (k_arm ~ 0.0087,
    k_power ~ 0.0123), dominated by volatile stores. *)

val sunflow : Profile.t
(** Ray tracer: compute-bound, low sensitivity (k ~ 0.0019). *)

val tomcat : Profile.t
(** Servlet container: moderate sensitivity, unstable on both
    architectures. *)

val tradebeans : Profile.t
val tradesoap : Profile.t

val xalan : Profile.t
(** XML-to-HTML transform: lock-dominated, k_arm ~ 0.0061; on POWER
    rendered unusable by SMT interference (the paper's +-14% fit). *)

val all : Profile.t list
(** In the paper's figure order: h2, lusearch, spark, sunflow,
    tomcat, tradebeans, tradesoap, xalan. *)

val by_name : string -> Profile.t option
