lib/workload/bench_runner.ml: Arch Array Float Generate Hashtbl List Perf Profile Rng Stats Wmm_isa Wmm_machine Wmm_util
