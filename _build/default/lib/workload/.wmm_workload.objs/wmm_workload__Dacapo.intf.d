lib/workload/dacapo.mli: Profile
