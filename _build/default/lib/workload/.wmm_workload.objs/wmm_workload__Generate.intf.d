lib/workload/generate.mli: Jvm Kernel Profile Uop Wmm_isa Wmm_machine Wmm_platform
