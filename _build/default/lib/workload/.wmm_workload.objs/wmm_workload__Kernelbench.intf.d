lib/workload/kernelbench.mli: Profile
