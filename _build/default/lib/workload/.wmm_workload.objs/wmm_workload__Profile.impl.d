lib/workload/profile.ml: Arch Kernel List String Wmm_isa Wmm_platform
