lib/workload/profile.mli: Arch Kernel Wmm_isa Wmm_platform
