lib/workload/generate.ml: Array Jvm Kernel List Profile Rng Uop Wmm_machine Wmm_platform Wmm_util
