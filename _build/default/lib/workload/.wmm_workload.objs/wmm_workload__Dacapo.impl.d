lib/workload/dacapo.ml: List Profile
