lib/workload/bench_runner.mli: Generate Perf Profile Wmm_machine
