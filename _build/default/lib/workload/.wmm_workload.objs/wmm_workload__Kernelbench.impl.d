lib/workload/kernelbench.ml: Kernel List Profile Wmm_platform
