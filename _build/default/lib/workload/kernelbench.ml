open Wmm_platform

let noise ?(busy = 0.06) ?(jitter = 0.006) ?(smt = 0.) ?(tail_prob = 0.) ?(tail_frac = 0.06)
    ?(unit_tail_prob = 0.) ?(unit_tail_cycles = 0) () =
  {
    Profile.busy_std_frac = busy;
    unit_tail_prob;
    unit_tail_cycles;
    run_jitter = jitter;
    run_tail_prob = tail_prob;
    run_tail_frac = tail_frac;
    smt_jitter = smt;
  }

(* Shorthand for macro density lists. *)
let m name rate = (name, rate)

let netperf_udp =
  Profile.make "netperf_udp" ~threads:2 ~units_per_thread:1400 ~unit_busy_cycles:420
    ~unit_loads:10 ~unit_stores:10 ~working_set:1024 ~shared_locations:64 ~share_ratio:0.3
    ~kernel:
      [
        m Kernel.Smp_mb 1.8;
        m Kernel.Read_once 2.4;
        m Kernel.Read_barrier_depends 3.1;
        m Kernel.Write_once 1.0;
        m Kernel.Smp_load_acquire 0.3;
        m Kernel.Smp_store_release 0.3;
        m Kernel.Smp_rmb 0.25;
        m Kernel.Smp_wmb 0.2;
        m Kernel.Smp_mb_before_atomic 0.15;
        m Kernel.Smp_mb_after_atomic 0.15;
        m Kernel.Smp_store_mb 0.1;
        m Kernel.Rmb 0.02;
        m Kernel.Mb 0.02;
        m Kernel.Wmb 0.01;
      ]
    ~noise:(noise ~busy:0.06 ~jitter:0.012 ())

let netperf_tcp =
  Profile.make "netperf_tcp" ~threads:2 ~units_per_thread:1400 ~unit_busy_cycles:640
    ~unit_loads:14 ~unit_stores:14 ~working_set:1024 ~shared_locations:64 ~share_ratio:0.3
    ~kernel:
      [
        m Kernel.Smp_mb 2.6;
        m Kernel.Read_once 3.2;
        m Kernel.Read_barrier_depends 1.7;
        m Kernel.Write_once 1.4;
        m Kernel.Smp_load_acquire 0.4;
        m Kernel.Smp_store_release 0.4;
        m Kernel.Smp_rmb 0.3;
        m Kernel.Smp_wmb 0.25;
        m Kernel.Smp_mb_before_atomic 0.2;
        m Kernel.Smp_mb_after_atomic 0.2;
        m Kernel.Smp_store_mb 0.12;
        m Kernel.Rmb 0.03;
        m Kernel.Mb 0.03;
        m Kernel.Wmb 0.02;
      ]
    ~noise:(noise ~busy:0.1 ~jitter:0.03 ~tail_prob:0.08 ~tail_frac:0.12 ())

let ebizzy =
  Profile.make "ebizzy" ~threads:4 ~units_per_thread:700 ~unit_busy_cycles:1200
    ~unit_loads:30 ~unit_stores:14 ~working_set:4096 ~shared_locations:64 ~share_ratio:0.1
    ~kernel:
      [
        m Kernel.Read_once 2.0;
        m Kernel.Write_once 1.2;
        m Kernel.Smp_mb 0.6;
        m Kernel.Read_barrier_depends 1.0;
        m Kernel.Smp_rmb 0.1;
        m Kernel.Smp_wmb 0.1;
        m Kernel.Smp_mb_before_atomic 0.08;
        m Kernel.Smp_mb_after_atomic 0.08;
        m Kernel.Smp_load_acquire 0.06;
        m Kernel.Smp_store_release 0.06;
        m Kernel.Smp_store_mb 0.04;
      ]
    ~noise:(noise ~busy:0.1 ~jitter:0.014 ~tail_prob:0.06 ~tail_frac:0.08 ())

let osm_tiles =
  Profile.make "osm_tiles" ~threads:4 ~units_per_thread:60 ~unit_busy_cycles:30000
    ~unit_loads:60 ~unit_stores:30 ~working_set:8192 ~shared_locations:64 ~share_ratio:0.06
    ~kernel:
      [
        m Kernel.Read_once 0.6;
        m Kernel.Smp_mb 0.3;
        m Kernel.Write_once 0.25;
        m Kernel.Read_barrier_depends 0.15;
        m Kernel.Smp_load_acquire 0.05;
        m Kernel.Smp_store_release 0.05;
      ]
    ~noise:(noise ~busy:0.08 ~jitter:0.01 ())

let osm_stack =
  Profile.make "osm_stack" ~threads:4 ~units_per_thread:240 ~unit_busy_cycles:20000
    ~unit_loads:50 ~unit_stores:25 ~working_set:8192 ~shared_locations:64 ~share_ratio:0.08
    ~measurement:(Profile.Response 24)
    ~kernel:
      [
        m Kernel.Read_once 0.8;
        m Kernel.Smp_mb 0.4;
        m Kernel.Write_once 0.3;
        m Kernel.Read_barrier_depends 1.8;
        m Kernel.Smp_load_acquire 0.1;
        m Kernel.Smp_store_release 0.1;
      ]
    ~noise:
      (noise ~busy:0.1 ~jitter:0.012 ~unit_tail_prob:0.01 ~unit_tail_cycles:30000 ())

let kernel_compile =
  Profile.make "kernel_compile" ~threads:8 ~units_per_thread:120 ~unit_busy_cycles:15000
    ~unit_loads:70 ~unit_stores:35 ~working_set:8192 ~shared_locations:64 ~share_ratio:0.05
    ~kernel:
      [
        m Kernel.Read_once 0.6;
        m Kernel.Smp_mb 0.35;
        m Kernel.Write_once 0.25;
        m Kernel.Read_barrier_depends 0.1;
        m Kernel.Smp_store_mb 0.05;
        m Kernel.Smp_rmb 0.04;
        m Kernel.Smp_wmb 0.04;
      ]
    ~noise:(noise ~busy:0.06 ~jitter:0.008 ())

(* The lmbench subset: single-threaded syscall timing loops with very
   high kernel entry density. *)
let lmbench_part name ~busy ~rbd ~smp_mb ~read_once =
  Profile.make name ~threads:1 ~units_per_thread:1600 ~unit_busy_cycles:busy ~unit_loads:12
    ~unit_stores:6 ~working_set:512 ~shared_locations:32 ~share_ratio:0.2
    ~kernel:
      [
        m Kernel.Smp_mb smp_mb;
        m Kernel.Read_once read_once;
        m Kernel.Read_barrier_depends rbd;
        m Kernel.Smp_load_acquire 0.35;
        m Kernel.Smp_store_release 0.35;
        m Kernel.Smp_rmb 0.25;
        m Kernel.Smp_wmb 0.2;
        m Kernel.Smp_mb_before_atomic 0.2;
        m Kernel.Smp_mb_after_atomic 0.2;
        m Kernel.Smp_store_mb 0.12;
        m Kernel.Mb 0.05;
        m Kernel.Rmb 0.04;
        m Kernel.Wmb 0.03;
      ]
    ~noise:(noise ~busy:0.04 ~jitter:0.006 ())

let lmbench_parts =
  [
    lmbench_part "lmbench_fcntl" ~busy:500 ~rbd:1.6 ~smp_mb:0.9 ~read_once:1.6;
    lmbench_part "lmbench_proc_exec" ~busy:2600 ~rbd:2.4 ~smp_mb:1.8 ~read_once:3.0;
    lmbench_part "lmbench_proc_fork" ~busy:2200 ~rbd:2.2 ~smp_mb:1.6 ~read_once:2.6;
    lmbench_part "lmbench_select_100" ~busy:900 ~rbd:2.0 ~smp_mb:0.8 ~read_once:2.2;
    lmbench_part "lmbench_sem" ~busy:550 ~rbd:1.5 ~smp_mb:1.2 ~read_once:1.5;
    lmbench_part "lmbench_sig_catch" ~busy:650 ~rbd:1.4 ~smp_mb:1.0 ~read_once:1.4;
    lmbench_part "lmbench_sig_install" ~busy:480 ~rbd:1.2 ~smp_mb:0.8 ~read_once:1.2;
    lmbench_part "lmbench_syscall_fstat" ~busy:420 ~rbd:1.5 ~smp_mb:0.7 ~read_once:1.5;
    lmbench_part "lmbench_syscall_null" ~busy:320 ~rbd:1.2 ~smp_mb:0.6 ~read_once:1.1;
    lmbench_part "lmbench_syscall_open" ~busy:700 ~rbd:1.8 ~smp_mb:0.9 ~read_once:1.9;
    lmbench_part "lmbench_syscall_read" ~busy:450 ~rbd:1.6 ~smp_mb:0.8 ~read_once:1.6;
    lmbench_part "lmbench_syscall_write" ~busy:460 ~rbd:1.6 ~smp_mb:0.8 ~read_once:1.6;
  ]

let lmbench = lmbench_part "lmbench" ~busy:480 ~rbd:1.6 ~smp_mb:0.9 ~read_once:1.7

(* JVM applications re-run as kernel benchmarks: they coordinate
   concurrency inside the VM and touch the kernel macros rarely -
   except xalan, whose heavy I/O gives it a measurable kernel-side
   sensitivity. *)
let h2 =
  Profile.make "h2" ~threads:6 ~units_per_thread:300 ~unit_busy_cycles:8000 ~unit_loads:40
    ~unit_stores:40 ~working_set:4096 ~shared_locations:96 ~share_ratio:0.12
    ~kernel:[ m Kernel.Read_once 0.02; m Kernel.Smp_mb 0.01; m Kernel.Read_barrier_depends 0.01 ]
    ~noise:(noise ~busy:0.08 ~jitter:0.006 ())

let spark =
  Profile.make "spark" ~threads:8 ~units_per_thread:300 ~unit_busy_cycles:3600 ~unit_loads:30
    ~unit_stores:18 ~working_set:8192 ~shared_locations:128 ~share_ratio:0.2
    ~kernel:
      [ m Kernel.Read_once 0.04; m Kernel.Smp_mb 0.02; m Kernel.Read_barrier_depends 0.02 ]
    ~noise:(noise ~busy:0.06 ~jitter:0.004 ())

let xalan =
  Profile.make "xalan" ~threads:8 ~units_per_thread:300 ~unit_busy_cycles:6000 ~unit_loads:35
    ~unit_stores:25 ~working_set:4096 ~shared_locations:64 ~share_ratio:0.15
    ~kernel:
      [
        m Kernel.Read_once 1.2;
        m Kernel.Smp_mb 0.4;
        m Kernel.Read_barrier_depends 2.4;
        m Kernel.Write_once 0.4;
        m Kernel.Smp_load_acquire 0.1;
        m Kernel.Smp_store_release 0.1;
      ]
    ~noise:(noise ~busy:0.08 ~jitter:0.008 ())

let all =
  [
    netperf_tcp;
    netperf_udp;
    ebizzy;
    osm_tiles;
    osm_stack;
    kernel_compile;
    lmbench;
    h2;
    spark;
    xalan;
  ]

let by_name name =
  List.find_opt (fun (p : Profile.t) -> p.Profile.name = name) (all @ lmbench_parts)
